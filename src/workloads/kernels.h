// Polybench-style compute kernels (§6.4, Fig. 9a): each kernel exists twice —
// a native C++ implementation and a genuine WebAssembly module authored with
// the builder and executed by the interpreter. Both run the same arithmetic
// in the same order and return a checksum, so tests can verify bit-level
// agreement and the benchmark can report wasm-vs-native ratios.
//
// The paper runs the 23-kernel Polybench/C suite through clang->wasm; with
// no offline toolchain this is a representative 8-kernel subset spanning the
// suite's categories (linear algebra BLAS, solvers, stencils).
#ifndef FAASM_WORKLOADS_KERNELS_H_
#define FAASM_WORKLOADS_KERNELS_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "wasm/compiled.h"

namespace faasm {

struct Kernel {
  std::string name;
  // Runs natively; returns the checksum.
  std::function<double(uint32_t n)> native;
  // Builds the wasm twin (exports "run": (i32) -> f64).
  std::function<Result<std::shared_ptr<const wasm::CompiledModule>>()> build_wasm;
};

// The kernel suite (gemm, atax, bicg, mvt, gesummv, jacobi-1d, jacobi-2d,
// trisolv).
const std::vector<Kernel>& PolybenchKernels();

// Instantiates the module and invokes run(n); returns the checksum.
Result<double> RunKernelWasm(std::shared_ptr<const wasm::CompiledModule> module, uint32_t n);

}  // namespace faasm

#endif  // FAASM_WORKLOADS_KERNELS_H_
