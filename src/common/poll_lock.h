// PollLock: a readers/writer lock whose blocked acquirers poll through a
// Clock instead of parking in the kernel. Under the virtual-time executor a
// thread blocked in a plain mutex would still count as runnable and stall the
// clock; PollLock keeps every wait visible to the clock, so the same state
// code runs identically under RealClock and SimClock.
//
// The internal mutex is held only for counter updates — never across waits.
#ifndef FAASM_COMMON_POLL_LOCK_H_
#define FAASM_COMMON_POLL_LOCK_H_

#include <mutex>

#include "common/clock.h"

namespace faasm {

class PollLock {
 public:
  explicit PollLock(Clock* clock, TimeNs poll_quantum_ns = 10 * kMicrosecond)
      : clock_(clock), quantum_(poll_quantum_ns) {}

  bool TryLockRead() {
    std::lock_guard<std::mutex> guard(mutex_);
    if (writer_) {
      return false;
    }
    ++readers_;
    return true;
  }

  bool TryLockWrite() {
    std::lock_guard<std::mutex> guard(mutex_);
    if (writer_ || readers_ > 0) {
      return false;
    }
    writer_ = true;
    return true;
  }

  void LockRead() {
    while (!TryLockRead()) {
      clock_->SleepFor(quantum_);
    }
  }

  void LockWrite() {
    while (!TryLockWrite()) {
      clock_->SleepFor(quantum_);
    }
  }

  void UnlockRead() {
    std::lock_guard<std::mutex> guard(mutex_);
    --readers_;
  }

  void UnlockWrite() {
    std::lock_guard<std::mutex> guard(mutex_);
    writer_ = false;
  }

  // RAII helpers.
  class ReadGuard {
   public:
    explicit ReadGuard(PollLock& lock) : lock_(lock) { lock_.LockRead(); }
    ~ReadGuard() { lock_.UnlockRead(); }
    ReadGuard(const ReadGuard&) = delete;
    ReadGuard& operator=(const ReadGuard&) = delete;

   private:
    PollLock& lock_;
  };

  class WriteGuard {
   public:
    explicit WriteGuard(PollLock& lock) : lock_(lock) { lock_.LockWrite(); }
    ~WriteGuard() { lock_.UnlockWrite(); }
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    PollLock& lock_;
  };

 private:
  Clock* clock_;
  TimeNs quantum_;
  std::mutex mutex_;
  int readers_ = 0;
  bool writer_ = false;
};

}  // namespace faasm

#endif  // FAASM_COMMON_POLL_LOCK_H_
