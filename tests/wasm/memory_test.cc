// Guest memory semantics: loads/stores of every width, offset immediates,
// bounds traps at exact page edges, memory.grow behaviour.
#include "tests/wasm/wasm_test_util.h"

#include "mem/page.h"

namespace faasm::wasm {
namespace {

std::unique_ptr<Instance> StoreLoadPair(Op store, Op load) {
  // f(addr, value) -> load(addr) after store(addr, value)
  return SingleFunction(
      {ValType::kI32, ValType::kI64}, {ValType::kI64},
      [&](FunctionBuilder& f) {
        f.LocalGet(0);
        f.LocalGet(1);
        f.Store(store);
        f.LocalGet(0);
        f.Load(load);
        f.End();
      },
      /*with_memory=*/true);
}

TEST(MemoryTest, StoreLoadAllI64Widths) {
  struct Case {
    Op store;
    Op load;
    uint64_t in;
    uint64_t expect;
  };
  const Case cases[] = {
      {Op::kI64Store, Op::kI64Load, 0x1122334455667788ull, 0x1122334455667788ull},
      {Op::kI64Store8, Op::kI64Load8U, 0x1FF, 0xFF},
      {Op::kI64Store8, Op::kI64Load8S, 0x80, 0xFFFFFFFFFFFFFF80ull},
      {Op::kI64Store16, Op::kI64Load16U, 0x18000, 0x8000},
      {Op::kI64Store16, Op::kI64Load16S, 0x8000, 0xFFFFFFFFFFFF8000ull},
      {Op::kI64Store32, Op::kI64Load32U, 0x180000000ull, 0x80000000ull},
      {Op::kI64Store32, Op::kI64Load32S, 0x80000000ull, 0xFFFFFFFF80000000ull},
  };
  for (const Case& c : cases) {
    auto instance = StoreLoadPair(c.store, c.load);
    auto out = RunBinary(*instance, MakeI32(256), MakeI64(c.in));
    ASSERT_TRUE(out.ok()) << out.status().ToString();
    EXPECT_EQ(out.value().i64, c.expect);
  }
}

TEST(MemoryTest, FloatStoreLoad) {
  auto instance = SingleFunction(
      {ValType::kI32, ValType::kF64}, {ValType::kF64},
      [](FunctionBuilder& f) {
        f.LocalGet(0);
        f.LocalGet(1);
        f.Store(Op::kF64Store);
        f.LocalGet(0);
        f.Load(Op::kF64Load);
        f.End();
      },
      /*with_memory=*/true);
  auto out = RunBinary(*instance, MakeI32(8), MakeF64(-2.5e300));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value().f64, -2.5e300);
}

TEST(MemoryTest, OffsetImmediateAdds) {
  auto instance = SingleFunction(
      {}, {ValType::kI32},
      [](FunctionBuilder& f) {
        f.I32Const(100);
        f.I32Const(0xAB);
        f.Store(Op::kI32Store8, /*offset=*/16);  // writes to 116
        f.I32Const(116);
        f.Load(Op::kI32Load8U);
        f.End();
      },
      /*with_memory=*/true);
  auto out = instance->CallExport("f", {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].i32, 0xABu);
}

TEST(MemoryTest, OutOfBoundsLoadTraps) {
  auto instance = SingleFunction(
      {ValType::kI32}, {ValType::kI32},
      [](FunctionBuilder& f) {
        f.LocalGet(0);
        f.Load(Op::kI32Load);
        f.End();
      },
      /*with_memory=*/true);
  // One page: last valid 4-byte load is at 65532.
  EXPECT_TRUE(RunUnary(*instance, MakeI32(kWasmPageBytes - 4)).ok());
  auto trap = RunUnary(*instance, MakeI32(kWasmPageBytes - 3));
  ASSERT_FALSE(trap.ok());
  EXPECT_NE(trap.status().message().find("out of bounds"), std::string::npos);
  EXPECT_FALSE(RunUnary(*instance, MakeI32(0xFFFFFFFF)).ok());
}

TEST(MemoryTest, OffsetOverflowTraps) {
  // addr + offset overflowing 32 bits must trap, not wrap.
  auto instance = SingleFunction(
      {ValType::kI32}, {ValType::kI32},
      [](FunctionBuilder& f) {
        f.LocalGet(0);
        f.Load(Op::kI32Load, /*offset=*/0xFFFFFFFF);
        f.End();
      },
      /*with_memory=*/true);
  EXPECT_FALSE(RunUnary(*instance, MakeI32(100)).ok());
}

TEST(MemoryTest, MemorySizeAndGrow) {
  auto instance = SingleFunction(
      {ValType::kI32}, {ValType::kI32},
      [](FunctionBuilder& f) {
        f.LocalGet(0);
        f.MemoryGrow();
        f.Drop();
        f.MemorySize();
        f.End();
      },
      /*with_memory=*/true);  // min 1, max 4
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).value().i32, 1u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(2)).value().i32, 3u);
  // Growing past max fails, size unchanged.
  EXPECT_EQ(RunUnary(*instance, MakeI32(100)).value().i32, 3u);
}

TEST(MemoryTest, GrowReturnsMinusOneOnFailure) {
  auto instance = SingleFunction(
      {ValType::kI32}, {ValType::kI32},
      [](FunctionBuilder& f) {
        f.LocalGet(0);
        f.MemoryGrow();
        f.End();
      },
      /*with_memory=*/true);
  EXPECT_EQ(RunUnary(*instance, MakeI32(100)).value().i32, UINT32_MAX);
  EXPECT_EQ(RunUnary(*instance, MakeI32(1)).value().i32, 1u);  // old size
}

TEST(MemoryTest, GrownMemoryAccessible) {
  auto instance = SingleFunction(
      {}, {ValType::kI32},
      [](FunctionBuilder& f) {
        f.I32Const(1);
        f.MemoryGrow();
        f.Drop();
        // Store past the first page.
        f.I32Const(static_cast<int32_t>(kWasmPageBytes + 10));
        f.I32Const(77);
        f.Store(Op::kI32Store);
        f.I32Const(static_cast<int32_t>(kWasmPageBytes + 10));
        f.Load(Op::kI32Load);
        f.End();
      },
      /*with_memory=*/true);
  auto out = instance->CallExport("f", {});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()[0].i32, 77u);
}

TEST(MemoryTest, DataSegmentOutOfBoundsFailsInstantiation) {
  ModuleBuilder b;
  b.AddMemory(1, 1);
  b.AddData(kWasmPageBytes - 1, Bytes{1, 2, 3});  // spills past the page
  auto& f = b.AddFunction("f", {}, {});
  f.End();
  auto decoded = DecodeModule(b.Build());
  ASSERT_TRUE(decoded.ok());
  auto compiled = CompileModule(std::move(decoded).value());
  ASSERT_TRUE(compiled.ok());
  auto instance = Instance::Create(compiled.value(), nullptr);
  EXPECT_FALSE(instance.ok());
}

}  // namespace
}  // namespace faasm::wasm
