#include "kvs/kvs_client.h"

#include <algorithm>
#include <functional>
#include <map>

#include "kvs/batch_codec.h"
#include "net/framing.h"

namespace faasm {

// The wire codec (WriteStatus/ReadStatus, the batch sub-op dialects) lives
// in kvs/batch_codec.{h,cc}, shared with the replication forward channel.

// --- Server -------------------------------------------------------------------

KvsServer::KvsServer(KvStore* store, InProcNetwork* network, std::string endpoint,
                     const ShardMap* map)
    : store_(store), network_(network), endpoint_(std::move(endpoint)), map_(map) {
  network_->RegisterEndpoint(endpoint_, [this](const Bytes& request) { return Handle(request); });
}

KvsServer::~KvsServer() { network_->UnregisterEndpoint(endpoint_); }

Bytes KvsServer::Handle(const Bytes& request) {
  Bytes response;
  ByteWriter writer(response);
  ByteReader reader(request);

  auto op_byte = reader.Get<uint8_t>();
  if (!op_byte.ok()) {
    WriteStatus(writer, InvalidArgument("malformed request"));
    return response;
  }
  const KvsOp op = static_cast<KvsOp>(op_byte.value());
  if (op == KvsOp::kGet || op == KvsOp::kGetRange || op == KvsOp::kSize ||
      op == KvsOp::kGetBatch) {
    read_rpcs_.Increment();
  }
  // Write-side twin of the read tally. kBatch counts as one write RPC (its
  // sub-ops may mix, but only a mutating batch ships as kBatch);
  // kMigrateInstall is excluded — stream traffic is accounted by the
  // migration/replication subsystems, not as client write load.
  if (IsMutatingOp(op) || op == KvsOp::kBatch) {
    write_rpcs_.Increment();
  }
  if (op == KvsOp::kBatch || op == KvsOp::kGetBatch) {
    // Batched request: no top-level key — each framed sub-op carries its
    // own, and ownership is checked per op.
    HandleBatch(reader, writer, /*read_only=*/op == KvsOp::kGetBatch);
    return response;
  }
  auto key = reader.GetString();
  if (!key.ok()) {
    WriteStatus(writer, InvalidArgument("malformed request"));
    return response;
  }

  // Epoch-aware ownership check: a request routed under a stale shard map
  // lands here although mastership moved — redirect the client instead of
  // serving (or worse, creating) a stranded copy. Migration installs are
  // exempt: they stream a key in BEFORE the epoch flips it to this shard.
  if (map_ != nullptr && static_cast<KvsOp>(op_byte.value()) != KvsOp::kMigrateInstall &&
      map_->MasterFor(key.value()) != endpoint_) {
    WriteStatus(writer, WrongMaster("kvs: '" + key.value() + "' is not mastered by " + endpoint_));
    return response;
  }

  switch (static_cast<KvsOp>(op_byte.value())) {
    case KvsOp::kGet: {
      auto value = store_->Get(key.value());
      WriteStatus(writer, value.status());
      if (value.ok()) {
        writer.PutBytes(value.value());
      }
      break;
    }
    case KvsOp::kSet: {
      auto value = reader.GetBytes();
      if (!value.ok()) {
        WriteStatus(writer, value.status());
        break;
      }
      WriteStatus(writer, store_->Set(key.value(), std::move(value).value()));
      break;
    }
    case KvsOp::kGetRange: {
      auto offset = reader.Get<uint64_t>();
      auto len = reader.Get<uint64_t>();
      if (!offset.ok() || !len.ok()) {
        WriteStatus(writer, InvalidArgument("malformed range"));
        break;
      }
      auto value = store_->GetRange(key.value(), offset.value(), len.value());
      WriteStatus(writer, value.status());
      if (value.ok()) {
        writer.PutBytes(value.value());
      }
      break;
    }
    case KvsOp::kSetRange: {
      auto offset = reader.Get<uint64_t>();
      auto value = reader.GetBytes();
      if (!offset.ok() || !value.ok()) {
        WriteStatus(writer, InvalidArgument("malformed range write"));
        break;
      }
      WriteStatus(writer, store_->SetRange(key.value(), offset.value(), value.value()));
      break;
    }
    case KvsOp::kSetRanges: {
      auto count = reader.Get<uint32_t>();
      if (!count.ok()) {
        WriteStatus(writer, count.status());
        break;
      }
      std::vector<ValueRange> ranges;
      // `count` is wire data; cap the reservation and let the per-range
      // parse loop reject truncated payloads instead of pre-allocating for
      // an attacker-chosen count.
      ranges.reserve(std::min<uint32_t>(count.value(), 1024));
      Status parse = OkStatus();
      for (uint32_t i = 0; i < count.value(); ++i) {
        auto offset = reader.Get<uint64_t>();
        auto bytes = reader.GetBytes();
        if (!offset.ok() || !bytes.ok()) {
          parse = InvalidArgument("malformed range-batch write");
          break;
        }
        ranges.push_back(ValueRange{offset.value(), std::move(bytes).value()});
      }
      WriteStatus(writer, parse.ok() ? store_->SetRanges(key.value(), ranges) : parse);
      break;
    }
    case KvsOp::kAppend: {
      auto value = reader.GetBytes();
      if (!value.ok()) {
        WriteStatus(writer, value.status());
        break;
      }
      auto new_len = store_->Append(key.value(), value.value());
      WriteStatus(writer, new_len.status());
      if (new_len.ok()) {
        writer.Put<uint64_t>(new_len.value());
      }
      break;
    }
    case KvsOp::kDelete:
      WriteStatus(writer, store_->Delete(key.value()));
      break;
    case KvsOp::kExists:
      WriteStatus(writer, OkStatus());
      writer.Put<uint8_t>(store_->Exists(key.value()) ? 1 : 0);
      break;
    case KvsOp::kSize: {
      auto size = store_->Size(key.value());
      WriteStatus(writer, size.status());
      if (size.ok()) {
        writer.Put<uint64_t>(size.value());
      }
      break;
    }
    case KvsOp::kLockRead:
    case KvsOp::kLockWrite: {
      auto owner = reader.GetString();
      if (!owner.ok()) {
        WriteStatus(writer, owner.status());
        break;
      }
      auto acquired = op_byte.value() == static_cast<uint8_t>(KvsOp::kLockRead)
                          ? store_->TryLockRead(key.value(), owner.value())
                          : store_->TryLockWrite(key.value(), owner.value());
      WriteStatus(writer, acquired.status());
      if (acquired.ok()) {
        writer.Put<uint8_t>(acquired.value() ? 1 : 0);
      }
      break;
    }
    case KvsOp::kUnlockRead:
    case KvsOp::kUnlockWrite: {
      auto owner = reader.GetString();
      if (!owner.ok()) {
        WriteStatus(writer, owner.status());
        break;
      }
      WriteStatus(writer, op_byte.value() == static_cast<uint8_t>(KvsOp::kUnlockRead)
                              ? store_->UnlockRead(key.value(), owner.value())
                              : store_->UnlockWrite(key.value(), owner.value()));
      break;
    }
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove: {
      auto member = reader.GetString();
      if (!member.ok()) {
        WriteStatus(writer, member.status());
        break;
      }
      auto changed = op_byte.value() == static_cast<uint8_t>(KvsOp::kSetAdd)
                         ? store_->SetAdd(key.value(), member.value())
                         : store_->SetRemove(key.value(), member.value());
      WriteStatus(writer, changed.status());
      if (changed.ok()) {
        writer.Put<uint8_t>(changed.value() ? 1 : 0);
      }
      break;
    }
    case KvsOp::kSetMembers: {
      auto members = store_->SetMembers(key.value());
      WriteStatus(writer, OkStatus());
      writer.Put<uint32_t>(static_cast<uint32_t>(members.size()));
      for (const std::string& member : members) {
        writer.PutString(member);
      }
      break;
    }
    case KvsOp::kMigrateInstall: {
      auto record_bytes = reader.GetBytes();
      if (!record_bytes.ok()) {
        WriteStatus(writer, record_bytes.status());
        break;
      }
      auto record = KeyExport::Deserialize(record_bytes.value());
      if (!record.ok()) {
        WriteStatus(writer, record.status());
        break;
      }
      store_->InstallKey(key.value(), record.value());
      WriteStatus(writer, OkStatus());
      break;
    }
    default:
      WriteStatus(writer, InvalidArgument("unknown kvs op"));
      break;
  }
  return response;
}

void KvsServer::HandleBatch(ByteReader& reader, ByteWriter& writer, bool read_only) {
  auto parts = ReadFrameBatch(reader);
  if (!parts.ok()) {
    WriteStatus(writer, InvalidArgument("malformed batch request"));
    return;
  }
  std::vector<KvsBatchOp> ops;
  ops.reserve(parts.value().size());
  std::vector<KvsBatchResult> results(parts.value().size());
  // Ops the per-op checks already settled keep their slot but are excluded
  // from execution; `to_run[i]` says whether results[i] comes from the store.
  std::vector<bool> to_run(parts.value().size(), false);
  std::vector<const KvsBatchOp*> runnable;
  for (size_t i = 0; i < parts.value().size(); ++i) {
    auto op = DecodeBatchOp(parts.value()[i]);
    if (!op.ok()) {
      ops.emplace_back();
      results[i].status = op.status();
      continue;
    }
    ops.push_back(std::move(op).value());
    // A kGetBatch is read-only by contract: a mutating sub-op smuggled in
    // is rejected here, before it can touch the store.
    if (read_only && !IsReadBatchOp(ops[i].op)) {
      results[i].status = InvalidArgument("kvs: mutating op in read batch");
      continue;
    }
    // Same epoch-aware ownership check as single ops, applied per sub-op so
    // a batch straddling a membership change bounces only the moved keys.
    if (map_ != nullptr && map_->MasterFor(ops[i].key) != endpoint_) {
      results[i].status =
          WrongMaster("kvs: '" + ops[i].key + "' is not mastered by " + endpoint_);
      continue;
    }
    to_run[i] = true;
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    if (to_run[i]) {
      runnable.push_back(&ops[i]);
    }
  }
  std::vector<KvsBatchResult> executed = store_->ExecuteBatch(runnable);
  for (size_t i = 0, next = 0; i < ops.size(); ++i) {
    if (to_run[i]) {
      results[i] = std::move(executed[next++]);
    }
  }

  WriteStatus(writer, OkStatus());  // framing-level status; per-op below
  BeginFrameBatch(writer, static_cast<uint32_t>(results.size()));
  for (size_t i = 0; i < results.size(); ++i) {
    AppendFrame(writer, EncodeBatchResult(ops[i].op, results[i]));
  }
}

// --- Client -------------------------------------------------------------------

KvsClient::KvsClient(InProcNetwork* network, std::string source, std::string server)
    : network_(network),
      source_(std::move(source)),
      server_(std::move(server)),
      read_cache_(&network->clock(), nullptr) {}

KvsClient::KvsClient(InProcNetwork* network, std::string source, const ShardMap* shards,
                     KvStore* local_store)
    : network_(network),
      source_(std::move(source)),
      shards_(shards),
      local_store_(local_store),
      local_endpoint_(ShardMap::EndpointForHost(source_)),
      read_cache_(&network->clock(), shards) {}

Status KvsClient::RedirectBudgetExhausted(const std::string& key, const std::string& endpoint,
                                          int attempts, const Status& last) {
  return DeadlineExceeded("kvs: retry budget exhausted for key '" + key + "' after " +
                          std::to_string(attempts) + " attempts (last endpoint: " +
                          (endpoint.empty() ? "<local>" : endpoint) +
                          ", last error: " + last.ToString() + ")");
}

KvsClient::Route KvsClient::RouteFor(const std::string& key) const {
  if (shards_ == nullptr) {
    return Route{nullptr, server_};
  }
  std::string master = shards_->MasterFor(key);
  if (local_store_ != nullptr && master == local_endpoint_) {
    // Local fast path: this host IS the key's master. Direct in-process
    // store call; no round trip, no accounted bytes.
    return Route{local_store_, std::move(master)};
  }
  return Route{nullptr, std::move(master)};
}

bool KvsClient::MasterLocal(const std::string& key) const {
  // Defined in terms of RouteFor so the scheduler's placement hint can never
  // diverge from the routing the ops actually take.
  return RouteFor(key).local != nullptr;
}

std::string KvsClient::MasterHostFor(const std::string& key) const {
  if (shards_ == nullptr) {
    return "";
  }
  return ShardMap::HostForEndpoint(shards_->MasterFor(key));
}

std::vector<std::string> KvsClient::HolderHostsFor(const std::string& key) const {
  std::vector<std::string> hosts;
  if (shards_ == nullptr) {
    return hosts;  // centralised mode: no host-colocated holders
  }
  for (const std::string& endpoint : shards_->HoldersFor(key)) {
    const std::string host = ShardMap::HostForEndpoint(endpoint);
    if (!host.empty()) {
      hosts.push_back(host);
    }
  }
  return hosts;
}

bool KvsClient::LocallyBacked(const std::string& master_endpoint) const {
  if (replica_cfg_.replica == nullptr || shards_ == nullptr || local_endpoint_.empty()) {
    return false;
  }
  std::lock_guard<std::mutex> guard(holder_mutex_);
  const uint64_t epoch = shards_->epoch();
  if (epoch != holder_epoch_) {
    // One recompute per flip. A flip racing between the epoch read and the
    // snapshot can memoise the newer set under the older id; the mismatch
    // only costs a spurious attempt or fall-through — ReplicaShard's
    // certified-epoch check is the authoritative validity gate.
    backed_masters_.clear();
    const ShardAssignment snapshot = shards_->Snapshot();
    for (const std::string& endpoint : snapshot.endpoints()) {
      if (endpoint == local_endpoint_) {
        continue;
      }
      for (const std::string& backup :
           BackupsFor(snapshot.endpoints(), endpoint, replica_cfg_.factor)) {
        if (backup == local_endpoint_) {
          backed_masters_.insert(endpoint);
          break;
        }
      }
    }
    holder_epoch_ = epoch;
  }
  return backed_masters_.count(master_endpoint) > 0;
}

bool KvsClient::ReplicaStalenessCovered(const ReadOptions& options) const {
  if (options.max_staleness == ReadOptions::kLeaseStaleness) {
    // The lease sentinel bounds CACHE staleness; it says nothing about
    // replication lag, so async mode treats it as strict — default reads
    // provably fall through to the master.
    return false;
  }
  return options.max_staleness >= replica_cfg_.async_lag_bound_ns;
}

bool KvsClient::HasPendingAmbientWrite(const std::string& key) const {
  std::lock_guard<std::mutex> guard(ambient_mutex_);
  for (const OpBatch::Pending& pending : ambient_.ops_) {
    if (pending.op.key == key && IsMutatingOp(pending.op.op)) {
      return true;
    }
  }
  return false;
}

std::optional<Result<Bytes>> KvsClient::TryReplicaRead(const std::string& key,
                                                       const ReadOptions& options) {
  if (!replica_cfg_.sync) {
    // Async gate, both halves: the read must explicitly tolerate the
    // configured lag bound, AND the copy must provably have caught up —
    // every forwarded op on the key at or below the primary's KeySeq has
    // been folded in. Either failing means the master answers.
    if (!ReplicaStalenessCovered(options) || replica_cfg_.primary_seq == nullptr ||
        replica_cfg_.replica->FloorSeq(key) < replica_cfg_.primary_seq(key)) {
      return std::nullopt;
    }
  }
  Result<Bytes> result = replica_cfg_.replica->ReadValue(key, options.offset, options.len);
  if (result.ok() || result.status().code() == StatusCode::kNotFound) {
    // Served (a certified copy's NotFound is the truth — the master would
    // answer the same).
    replica_served_.Increment();
    return result;
  }
  if (result.status().code() == StatusCode::kUnavailable) {
    // Our own mirror is fenced: the cluster declared THIS host dead and a
    // zombie is still reading. Feed the detector (it resolves "rep:<host>")
    // and fall through — the master path's ownership checks handle the rest.
    if (suspicion_hook_ != nullptr) {
      suspicion_hook_(ReplicaEndpointForHost(ShardMap::HostForEndpoint(local_endpoint_)));
    }
  }
  // kFailedPrecondition (stale certification) and anything unexpected fall
  // through to the master.
  return std::nullopt;
}

Result<Bytes> KvsClient::Invoke(const std::string& server, KvsOp op,
                                const std::function<void(ByteWriter&)>& write_args) {
  Bytes request;
  ByteWriter writer(request);
  writer.Put<uint8_t>(static_cast<uint8_t>(op));
  write_args(writer);
  return network_->Call(source_, server, request);
}
Status KvsClient::Set(const std::string& key, const Bytes& value) {
  read_cache_.Invalidate(key);
  return Routed(
      key, [&](KvStore& store) { return store.Set(key, value); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kSet, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutBytes(value);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<Bytes> KvsClient::Read(const std::string& key, const ReadOptions& options) {
  // Cache consult — only for reads that would cross the network (master-
  // local reads are already free, and caching them would only add
  // staleness).
  const bool cacheable = read_cache_.enabled() && !options.bypass_cache;
  if (cacheable && RouteFor(key).local == nullptr) {
    if (auto hit = read_cache_.Lookup(key, options.offset, options.len, options.max_staleness)) {
      return std::move(*hit);
    }
  }
  // Tier two: a co-located replica. When this host mirrors the key's shard
  // and the copy is certified for the live epoch (sync mode) or provably
  // within the read's staleness budget (async mode), the backup answers
  // in-process — zero network bytes.
  if (replica_cfg_.replica != nullptr && RouteFor(key).local == nullptr) {
    const std::string master = shards_ != nullptr ? shards_->MasterFor(key) : "";
    if (!master.empty() && LocallyBacked(master)) {
      // Read-your-writes: an ambient batch holding a pending write to this
      // key must land on the master before a replica may answer.
      if (HasPendingAmbientWrite(key)) {
        FlushBatch();
      }
      if (auto served = TryReplicaRead(key, options)) {
        if (cacheable && served->ok() && options.whole_value()) {
          read_cache_.InsertFull(key, served->value());  // tier two refreshes tier one
        }
        return std::move(*served);
      }
    }
  }
  // Whole-value reads travel as kGet, ranged ones as kGetRange; both are
  // one wire read either way.
  bool remote = false;
  auto result = Routed(
      key,
      [&](KvStore& store) -> Result<Bytes> {
        remote = false;
        return options.whole_value() ? store.Get(key)
                                     : store.GetRange(key, options.offset, options.len);
      },
      [&](const std::string& server) -> Result<Bytes> {
        remote = true;
        auto response =
            options.whole_value()
                ? Invoke(server, KvsOp::kGet, [&](ByteWriter& w) { w.PutString(key); })
                : Invoke(server, KvsOp::kGetRange, [&](ByteWriter& w) {
                    w.PutString(key);
                    w.Put<uint64_t>(options.offset);
                    w.Put<uint64_t>(options.len);
                  });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        return reader.GetBytes();
      });
  // Only whole values populate the cache (a lookup can then serve any
  // sub-range of them without ever inventing bytes it did not fetch).
  if (remote && cacheable && result.ok() && options.whole_value()) {
    read_cache_.InsertFull(key, result.value());
  }
  return result;
}

Status KvsClient::SetRange(const std::string& key, uint64_t offset, const Bytes& bytes) {
  read_cache_.Invalidate(key);
  return Routed(
      key, [&](KvStore& store) { return store.SetRange(key, offset, bytes); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kSetRange, [&](ByteWriter& w) {
          w.PutString(key);
          w.Put<uint64_t>(offset);
          w.PutBytes(bytes);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Status KvsClient::SetRanges(const std::string& key, const std::vector<ValueRange>& ranges) {
  read_cache_.Invalidate(key);
  return Routed(
      key, [&](KvStore& store) { return store.SetRanges(key, ranges); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kSetRanges, [&](ByteWriter& w) {
          w.PutString(key);
          w.Put<uint32_t>(static_cast<uint32_t>(ranges.size()));
          for (const ValueRange& range : ranges) {
            w.Put<uint64_t>(range.offset);
            w.PutBytes(range.bytes);
          }
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<uint64_t> KvsClient::Append(const std::string& key, const Bytes& bytes) {
  read_cache_.Invalidate(key);
  return Routed(
      key,
      [&](KvStore& store) -> Result<uint64_t> {
        FAASM_ASSIGN_OR_RETURN(size_t new_len, store.Append(key, bytes));
        return static_cast<uint64_t>(new_len);
      },
      [&](const std::string& server) -> Result<uint64_t> {
        auto response = Invoke(server, KvsOp::kAppend, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutBytes(bytes);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        return reader.Get<uint64_t>();
      });
}

Status KvsClient::Delete(const std::string& key) {
  read_cache_.Invalidate(key);
  return Routed(
      key, [&](KvStore& store) { return store.Delete(key); },
      [&](const std::string& server) {
        auto response =
            Invoke(server, KvsOp::kDelete, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<bool> KvsClient::Exists(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) -> Result<bool> { return store.Exists(key); },
      [&](const std::string& server) -> Result<bool> {
        auto response =
            Invoke(server, KvsOp::kExists, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        auto flag = reader.Get<uint8_t>();
        if (!flag.ok()) {
          return flag.status();
        }
        return flag.value() != 0;
      });
}

Result<uint64_t> KvsClient::Size(const std::string& key) {
  // A fresh cached value (or size-only entry) answers without a round trip;
  // a remote answer refreshes the size stamp so a following Pull's fetch
  // decision and its sizing agree.
  if (read_cache_.enabled() && RouteFor(key).local == nullptr) {
    if (auto hit = read_cache_.LookupSize(key, ReadOptions::kLeaseStaleness)) {
      return *hit;
    }
  }
  bool remote = false;
  auto sized = Routed(
      key,
      [&](KvStore& store) -> Result<uint64_t> {
        remote = false;
        FAASM_ASSIGN_OR_RETURN(size_t size, store.Size(key));
        return static_cast<uint64_t>(size);
      },
      [&](const std::string& server) -> Result<uint64_t> {
        remote = true;
        auto response = Invoke(server, KvsOp::kSize, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        return reader.Get<uint64_t>();
      });
  if (remote && read_cache_.enabled() && sized.ok()) {
    read_cache_.InsertSize(key, sized.value());
  }
  return sized;
}

Result<bool> KvsClient::TryLockRead(const std::string& key) {
  auto acquired = Routed(
      key, [&](KvStore& store) { return store.TryLockRead(key, source_); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kLockRead, key, source_); });
  if (acquired.ok() && acquired.value()) {
    // No stale read under a lock: the first read after acquisition must
    // refetch the bytes the lock serialises, not a leased copy.
    read_cache_.Invalidate(key);
  }
  return acquired;
}
Result<bool> KvsClient::TryLockWrite(const std::string& key) {
  auto acquired = Routed(
      key, [&](KvStore& store) { return store.TryLockWrite(key, source_); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kLockWrite, key, source_); });
  if (acquired.ok() && acquired.value()) {
    read_cache_.Invalidate(key);  // as TryLockRead
  }
  return acquired;
}

Status KvsClient::UnlockRead(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.UnlockRead(key, source_); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kUnlockRead, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutString(source_);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Status KvsClient::UnlockWrite(const std::string& key) {
  return Routed(
      key, [&](KvStore& store) { return store.UnlockWrite(key, source_); },
      [&](const std::string& server) {
        auto response = Invoke(server, KvsOp::kUnlockWrite, [&](ByteWriter& w) {
          w.PutString(key);
          w.PutString(source_);
        });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        return ReadStatus(reader);
      });
}

Result<bool> KvsClient::BoolOp(const std::string& server, KvsOp op, const std::string& key,
                               const std::string& arg) {
  auto response = Invoke(server, op, [&](ByteWriter& w) {
    w.PutString(key);
    w.PutString(arg);
  });
  if (!response.ok()) {
    return response.status();
  }
  ByteReader reader(response.value());
  FAASM_RETURN_IF_ERROR(ReadStatus(reader));
  auto flag = reader.Get<uint8_t>();
  if (!flag.ok()) {
    return flag.status();
  }
  return flag.value() != 0;
}

Result<bool> KvsClient::SetAdd(const std::string& key, const std::string& member) {
  return Routed(
      key, [&](KvStore& store) { return store.SetAdd(key, member); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kSetAdd, key, member); });
}
Result<bool> KvsClient::SetRemove(const std::string& key, const std::string& member) {
  return Routed(
      key, [&](KvStore& store) { return store.SetRemove(key, member); },
      [&](const std::string& server) { return BoolOp(server, KvsOp::kSetRemove, key, member); });
}

// --- Batched ops ----------------------------------------------------------------

void OpBatch::Push(KvsBatchOp op, Ack done, ReadAck read_done) {
  Pending pending;
  pending.op = std::move(op);
  pending.done = std::move(done);
  pending.read_done = std::move(read_done);
  ops_.push_back(std::move(pending));
}

void OpBatch::Set(std::string key, Bytes value, Ack done) {
  KvsBatchOp op;
  op.op = KvsOp::kSet;
  op.key = std::move(key);
  op.bytes = std::move(value);
  Push(std::move(op), std::move(done));
}

void OpBatch::SetRange(std::string key, uint64_t offset, Bytes bytes, Ack done) {
  KvsBatchOp op;
  op.op = KvsOp::kSetRange;
  op.key = std::move(key);
  op.offset = offset;
  op.bytes = std::move(bytes);
  Push(std::move(op), std::move(done));
}

void OpBatch::SetRanges(std::string key, std::vector<ValueRange> ranges, Ack done) {
  // Coalesce with an immediately preceding SetRanges on the same key: two
  // pushes of one value in one batch ship as a single sub-op with merged
  // (adjacent/overlapping fused) runs; both acks fire with its status.
  if (!ops_.empty() && ops_.back().op.op == KvsOp::kSetRanges && ops_.back().op.key == key) {
    Pending& prev = ops_.back();
    prev.op.ranges.insert(prev.op.ranges.end(), std::make_move_iterator(ranges.begin()),
                          std::make_move_iterator(ranges.end()));
    prev.op.ranges = MergeValueRanges(std::move(prev.op.ranges));
    if (done != nullptr) {
      if (prev.done == nullptr) {
        prev.done = std::move(done);
      } else {
        prev.done = [first = std::move(prev.done),
                     second = std::move(done)](const Status& status) {
          first(status);
          second(status);
        };
      }
    }
    return;
  }
  KvsBatchOp op;
  op.op = KvsOp::kSetRanges;
  op.key = std::move(key);
  op.ranges = MergeValueRanges(std::move(ranges));
  Push(std::move(op), std::move(done));
}

void OpBatch::Append(std::string key, Bytes bytes, Ack done) {
  KvsBatchOp op;
  op.op = KvsOp::kAppend;
  op.key = std::move(key);
  op.bytes = std::move(bytes);
  Push(std::move(op), std::move(done));
}

void OpBatch::Delete(std::string key, Ack done) {
  KvsBatchOp op;
  op.op = KvsOp::kDelete;
  op.key = std::move(key);
  Push(std::move(op), std::move(done));
}

void OpBatch::SetAdd(std::string key, std::string member, Ack done) {
  KvsBatchOp op;
  op.op = KvsOp::kSetAdd;
  op.key = std::move(key);
  op.member = std::move(member);
  Push(std::move(op), std::move(done));
}

void OpBatch::SetRemove(std::string key, std::string member, Ack done) {
  KvsBatchOp op;
  op.op = KvsOp::kSetRemove;
  op.key = std::move(key);
  op.member = std::move(member);
  Push(std::move(op), std::move(done));
}

void OpBatch::Read(std::string key, ReadOptions options, ReadAck done) {
  KvsBatchOp op;
  op.op = options.whole_value() ? KvsOp::kGet : KvsOp::kGetRange;
  op.key = std::move(key);
  op.offset = options.offset;
  op.len = options.len;
  Push(std::move(op), nullptr, std::move(done));
  ops_.back().read_options = options;
}

Status BatchHandle::Wait(TimeNs deadline_ns) {
  if (shared_ == nullptr) {
    return OkStatus();
  }
  const TimeNs start = clock_->Now();
  while (true) {
    int outstanding;
    {
      std::lock_guard<std::mutex> guard(shared_->mutex);
      if (shared_->outstanding == 0) {
        return shared_->status;
      }
      outstanding = shared_->outstanding;
    }
    // Deadline check AFTER the completion check, so a batch that finished
    // exactly at the deadline still reports its real status.
    if (deadline_ns > 0 && clock_->Now() - start >= deadline_ns) {
      return DeadlineExceeded("kvs batch wait: " + std::to_string(outstanding) +
                              " op group(s) still outstanding after " +
                              std::to_string(deadline_ns / kMillisecond) + "ms");
    }
    clock_->SleepFor(50 * kMicrosecond);
  }
}

bool BatchHandle::done() const {
  if (shared_ == nullptr) {
    return true;
  }
  std::lock_guard<std::mutex> guard(shared_->mutex);
  return shared_->outstanding == 0;
}

void KvsClient::CompleteOp(OpBatch::Pending& pending, KvsBatchResult result) {
  if (pending.read_done != nullptr) {
    if (result.status.ok()) {
      pending.read_done(std::move(result.value));
    } else {
      pending.read_done(result.status);
    }
    pending.read_done = nullptr;
  }
  if (pending.done != nullptr) {
    pending.done(result.status);
    pending.done = nullptr;
  }
}

std::vector<KvsBatchResult> KvsClient::RemoteBatch(const std::string& endpoint,
                                                   const std::vector<OpBatch::Pending>& ops) {
  std::vector<Bytes> parts;
  parts.reserve(ops.size());
  bool all_reads = true;
  for (const OpBatch::Pending& pending : ops) {
    parts.push_back(EncodeBatchOp(pending.op));
    all_reads = all_reads && IsReadBatchOp(pending.op.op);
  }
  // A pure read group ships as kGetBatch — the wire-visible read-only twin
  // (the server rejects any mutating sub-op in one).
  auto response = Invoke(endpoint, all_reads ? KvsOp::kGetBatch : KvsOp::kBatch,
                         [&](ByteWriter& w) { WriteFrameBatch(w, parts); });
  std::vector<KvsBatchResult> results(ops.size());
  auto fail_all = [&](const Status& status) {
    for (KvsBatchResult& result : results) {
      result.status = status;
    }
    return results;
  };
  if (!response.ok()) {
    return fail_all(response.status());
  }
  ByteReader reader(response.value());
  Status framing = ReadStatus(reader);
  if (!framing.ok()) {
    return fail_all(framing);
  }
  auto result_parts = ReadFrameBatch(reader);
  if (!result_parts.ok() || result_parts.value().size() != ops.size()) {
    return fail_all(Internal("kvs: malformed batch response"));
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    results[i] = DecodeBatchResult(ops[i].op.op, result_parts.value()[i]);
  }
  return results;
}

Status KvsClient::RunGroup(std::vector<OpBatch::Pending> ops) {
  Status first_error = OkStatus();
  int attempt = 0;
  while (!ops.empty()) {
    // Regroup by the keys' CURRENT masters: after a kWrongMaster bounce the
    // epoch may have flipped, splitting the survivors across new endpoints.
    std::map<std::string, std::vector<OpBatch::Pending>> groups;
    std::vector<OpBatch::Pending> local;
    for (OpBatch::Pending& pending : ops) {
      Route route = RouteFor(pending.op.key);
      if (route.local != nullptr) {
        local.push_back(std::move(pending));
      } else {
        groups[route.endpoint].push_back(std::move(pending));
      }
    }
    ops.clear();

    auto settle = [&](std::vector<OpBatch::Pending>& group,
                      std::vector<KvsBatchResult> results, const std::string& endpoint) {
      const bool from_remote = !endpoint.empty();
      for (size_t i = 0; i < group.size(); ++i) {
        // kUnavailable bounces like kWrongMaster: the master crashed and its
        // endpoint vanished; the failover epoch flip reroutes the retry. The
        // bounce is also crash evidence — report it so the detector probes
        // the silent host instead of waiting out the heartbeat timeout.
        const bool unavailable = results[i].status.code() == StatusCode::kUnavailable;
        if (unavailable && from_remote && suspicion_hook_ != nullptr) {
          suspicion_hook_(endpoint);
        }
        const bool bounced =
            results[i].status.code() == StatusCode::kWrongMaster || unavailable;
        if (bounced && shards_ != nullptr && attempt < kMaxRedirectRetries) {
          ops.push_back(std::move(group[i]));  // retry just this op
          continue;
        }
        if (bounced && shards_ != nullptr) {
          // Budget ran dry while the op was still bouncing: surface the
          // typed deadline error so the ack can tell an extended outage from
          // a permanent one-shot failure. The op completes — a stranded op
          // must never leave its BatchHandle waiting forever.
          results[i].status = RedirectBudgetExhausted(group[i].op.key, endpoint, attempt,
                                                      results[i].status);
        }
        if (!results[i].status.ok() && first_error.ok()) {
          first_error = results[i].status;
        }
        // A whole-value read that crossed the network refreshes the cache
        // (same rule as the single-op path: partial values never populate).
        if (from_remote && read_cache_.enabled() && results[i].status.ok() &&
            group[i].op.op == KvsOp::kGet && !group[i].read_options.bypass_cache) {
          read_cache_.InsertFull(group[i].op.key, results[i].value);
        }
        CompleteOp(group[i], std::move(results[i]));
      }
    };

    if (!local.empty()) {
      std::vector<const KvsBatchOp*> pointers;
      pointers.reserve(local.size());
      for (const OpBatch::Pending& pending : local) {
        pointers.push_back(&pending.op);
      }
      settle(local, local_store_->ExecuteBatch(pointers), /*endpoint=*/"");
    }
    for (auto& [endpoint, group] : groups) {
      settle(group, RemoteBatch(endpoint, group), endpoint);
    }

    if (!ops.empty()) {
      ++attempt;
      network_->clock().SleepFor(kRedirectBackoffNs);
    }
  }
  return first_error;
}

BatchHandle KvsClient::DispatchBatch(OpBatch&& batch) {
  BatchHandle handle;
  if (batch.ops_.empty()) {
    return handle;
  }

  // Initial grouping by current master. Each group becomes one activity;
  // the master-local group and single-group batches run inline (no thread
  // spawn for the degenerate cases). Mutating ops drop the key's cached
  // read here (before any RPC, so the cache can never mask an op already
  // accepted into a batch); cross-host reads consult the cache and ops it
  // serves complete immediately with zero network bytes.
  std::map<std::string, std::vector<OpBatch::Pending>> groups;
  // Keys this batch itself mutates: a later read of one in the SAME batch
  // must not be served by a replica — it would jump the batch's own write.
  std::set<std::string> mutated_in_batch;
  for (OpBatch::Pending& pending : batch.ops_) {
    Route route = RouteFor(pending.op.key);
    if (!IsReadBatchOp(pending.op.op)) {
      read_cache_.Invalidate(pending.op.key);
      if (replica_cfg_.replica != nullptr) {
        mutated_in_batch.insert(pending.op.key);
      }
    } else if (route.local == nullptr) {
      if (read_cache_.enabled() && !pending.read_options.bypass_cache) {
        if (auto hit = read_cache_.Lookup(pending.op.key, pending.read_options.offset,
                                          pending.read_options.len,
                                          pending.read_options.max_staleness)) {
          KvsBatchResult served;
          served.value = std::move(*hit);
          CompleteOp(pending, std::move(served));
          continue;
        }
      }
      // Tier two: a co-located replica serves the read in-process. Skipped
      // for keys this batch or the ambient batch mutates (their writes must
      // land first; those ops fall through to the master group instead —
      // cheaper than a flush barrier inside dispatch).
      if (replica_cfg_.replica != nullptr && mutated_in_batch.count(pending.op.key) == 0 &&
          LocallyBacked(route.endpoint) && !HasPendingAmbientWrite(pending.op.key)) {
        if (auto from_replica = TryReplicaRead(pending.op.key, pending.read_options)) {
          KvsBatchResult served;
          served.status = from_replica->status();
          if (from_replica->ok()) {
            served.value = std::move(*from_replica).value();
          }
          if (served.status.ok() && read_cache_.enabled() &&
              !pending.read_options.bypass_cache && pending.read_options.whole_value()) {
            read_cache_.InsertFull(pending.op.key, served.value);
          }
          CompleteOp(pending, std::move(served));
          continue;
        }
      }
    }
    const std::string& slot = route.local != nullptr ? local_endpoint_ : route.endpoint;
    groups[slot].push_back(std::move(pending));
  }
  batch.ops_.clear();
  if (groups.empty()) {
    return handle;  // every op was served from the cache
  }
  handle.clock_ = &network_->clock();
  handle.shared_ = std::make_shared<BatchHandle::Shared>();
  handle.shared_->outstanding = static_cast<int>(groups.size());
  {
    // Register before any group runs: a concurrent FlushBatch barrier must
    // see (and wait out) this dispatch even though the ambient batch no
    // longer holds its ops.
    std::lock_guard<std::mutex> guard(ambient_mutex_);
    inflight_.push_back(handle.shared_);
  }

  size_t remote_groups = 0;
  for (const auto& [endpoint, group] : groups) {
    remote_groups += (local_store_ != nullptr && endpoint == local_endpoint_) ? 0 : 1;
  }
  for (auto& [endpoint, group] : groups) {
    auto run = [this, shared = handle.shared_, ops = std::move(group)]() mutable {
      Status status = RunGroup(std::move(ops));
      bool last = false;
      {
        std::lock_guard<std::mutex> guard(shared->mutex);
        if (!status.ok() && shared->status.ok()) {
          shared->status = status;
        }
        shared->outstanding -= 1;
        last = shared->outstanding == 0;
      }
      if (last) {
        std::lock_guard<std::mutex> guard(ambient_mutex_);
        inflight_.erase(std::remove(inflight_.begin(), inflight_.end(), shared),
                        inflight_.end());
      }
    };
    const bool is_local = local_store_ != nullptr && endpoint == local_endpoint_;
    // Pipelining: overlap round trips only when more than one group crosses
    // the network; everything else runs on the caller's activity.
    if (spawner_ != nullptr && !is_local && remote_groups > 1) {
      spawner_(std::move(run));
    } else {
      run();
    }
  }
  return handle;
}

// --- Ambient state-op batching ---------------------------------------------------

namespace {
// Batch scopes are per ACTIVITY: a StateBatch opened by one Faaslet's call
// must not demote a concurrent call's scopeless Push from being its own
// barrier. Every call runs whole on one executor thread, so thread-local
// depth (keyed by client, in case several instances share a thread over its
// lifetime) is exactly per-call scoping.
int& ScopeDepthForThisThread(const void* client) {
  static thread_local std::map<const void*, int> depths;
  return depths[client];
}
}  // namespace

void KvsClient::EnqueueSetRanges(const std::string& key, std::vector<ValueRange> ranges,
                                 OpBatch::Ack done) {
  // Invalidate at ENQUEUE time: this host's own pending (not yet flushed)
  // write must never be masked by a leased read of the old bytes.
  read_cache_.Invalidate(key);
  std::lock_guard<std::mutex> guard(ambient_mutex_);
  ambient_.SetRanges(key, std::move(ranges), std::move(done));
}

void KvsClient::BeginBatchScope() { ++ScopeDepthForThisThread(this); }

void KvsClient::EndBatchScope() {
  int& depth = ScopeDepthForThisThread(this);
  if (depth > 0) {
    --depth;
  }
}

bool KvsClient::InBatchScope() const { return ScopeDepthForThisThread(this) > 0; }

Status KvsClient::FlushBatch() {
  OpBatch taken;
  std::vector<std::shared_ptr<BatchHandle::Shared>> inflight;
  {
    std::lock_guard<std::mutex> guard(ambient_mutex_);
    taken = std::move(ambient_);
    ambient_ = OpBatch{};
    inflight = inflight_;  // dispatches other callers have in flight
  }
  if (taken.empty() && inflight.empty()) {
    return OkStatus();  // idle fast path (hot: every sync point calls this)
  }
  Status status = OkStatus();
  if (!taken.empty()) {
    status = DispatchBatch(std::move(taken)).Wait();
  }
  // Barrier completeness: an op enqueued before this call may have been
  // taken by a concurrent flush that is still dispatching. "FlushBatch
  // returned Ok" must mean EVERY previously enqueued op is durable, so wait
  // those out too (their first error joins the aggregate).
  for (const auto& shared : inflight) {
    BatchHandle other;
    other.shared_ = shared;
    other.clock_ = &network_->clock();
    Status theirs = other.Wait();
    if (status.ok() && !theirs.ok()) {
      status = theirs;
    }
  }
  return status;
}

size_t KvsClient::pending_batch_ops() const {
  std::lock_guard<std::mutex> guard(ambient_mutex_);
  return ambient_.size();
}

Result<std::vector<std::string>> KvsClient::SetMembers(const std::string& key) {
  return Routed(
      key,
      [&](KvStore& store) -> Result<std::vector<std::string>> { return store.SetMembers(key); },
      [&](const std::string& server) -> Result<std::vector<std::string>> {
        auto response =
            Invoke(server, KvsOp::kSetMembers, [&](ByteWriter& w) { w.PutString(key); });
        if (!response.ok()) {
          return response.status();
        }
        ByteReader reader(response.value());
        FAASM_RETURN_IF_ERROR(ReadStatus(reader));
        auto count = reader.Get<uint32_t>();
        if (!count.ok()) {
          return count.status();
        }
        std::vector<std::string> members;
        members.reserve(count.value());
        for (uint32_t i = 0; i < count.value(); ++i) {
          auto member = reader.GetString();
          if (!member.ok()) {
            return member.status();
          }
          members.push_back(std::move(member).value());
        }
        return members;
      });
}

}  // namespace faasm
