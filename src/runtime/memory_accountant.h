// MemoryAccountant: integrates a host's memory usage over (virtual) time to
// produce the "billable memory" metric of §6.1 (GB-seconds), and enforces the
// host memory capacity that makes the container baseline exhaust memory at
// high parallelism (Fig. 6).
#ifndef FAASM_RUNTIME_MEMORY_ACCOUNTANT_H_
#define FAASM_RUNTIME_MEMORY_ACCOUNTANT_H_

#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/status.h"

namespace faasm {

class MemoryAccountant {
 public:
  MemoryAccountant(Clock* clock, size_t capacity_bytes)
      : clock_(clock), capacity_(capacity_bytes) {}

  // Reserves `bytes`; fails when the host would exceed physical memory.
  Status Allocate(size_t bytes) {
    std::lock_guard<std::mutex> guard(mutex_);
    AccumulateLocked();
    if (current_ + bytes > capacity_) {
      return ResourceExhausted("host out of memory");
    }
    current_ += bytes;
    peak_ = std::max(peak_, current_);
    return OkStatus();
  }

  void Release(size_t bytes) {
    std::lock_guard<std::mutex> guard(mutex_);
    AccumulateLocked();
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  size_t current_bytes() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return current_;
  }

  size_t peak_bytes() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return peak_;
  }

  size_t capacity_bytes() const { return capacity_; }

  // Billable memory so far, in GB-seconds. Logically const: the lazily
  // folded integration state is mutable, so const holders (cluster-wide
  // metric sweeps) can read it without a const_cast.
  double GbSeconds() const {
    std::lock_guard<std::mutex> guard(mutex_);
    AccumulateLocked();
    return byte_ns_ / (1e9 * 1024.0 * 1024.0 * 1024.0);
  }

 private:
  void AccumulateLocked() const {
    const TimeNs now = clock_->Now();
    byte_ns_ += static_cast<double>(current_) * static_cast<double>(now - last_change_);
    last_change_ = now;
  }

  Clock* clock_;
  size_t capacity_;
  mutable std::mutex mutex_;
  size_t current_ = 0;
  size_t peak_ = 0;
  mutable TimeNs last_change_ = 0;
  mutable double byte_ns_ = 0;
};

}  // namespace faasm

#endif  // FAASM_RUNTIME_MEMORY_ACCOUNTANT_H_
