#include "mem/snapshot.h"

#include <gtest/gtest.h>

#include <cstring>

#include "mem/page.h"

namespace faasm {
namespace {

TEST(SnapshotTest, CaptureAndCowRestore) {
  auto memory = LinearMemory::Create(2, 10);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  std::memset(m.base(), 0x3C, m.size_bytes());

  auto snapshot = MemorySnapshot::Capture("snap", m.base(), m.size_bytes());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  // Dirty the memory, then restore.
  std::memset(m.base(), 0xFF, m.size_bytes());
  ASSERT_TRUE(snapshot.value()->RestoreInto(m).ok());
  EXPECT_EQ(m.base()[0], 0x3C);
  EXPECT_EQ(m.base()[m.size_bytes() - 1], 0x3C);
}

TEST(SnapshotTest, CowWriteDoesNotCorruptSnapshot) {
  auto mem_a = LinearMemory::Create(1, 10);
  auto mem_b = LinearMemory::Create(1, 10);
  ASSERT_TRUE(mem_a.ok());
  ASSERT_TRUE(mem_b.ok());
  std::memset(mem_a.value()->base(), 0x10, kWasmPageBytes);

  auto snapshot = MemorySnapshot::Capture("snap", mem_a.value()->base(), kWasmPageBytes);
  ASSERT_TRUE(snapshot.ok());

  // Restore into two memories; writes in one must not leak into the other or
  // into the snapshot (copy-on-write isolation).
  ASSERT_TRUE(snapshot.value()->RestoreInto(*mem_a.value()).ok());
  ASSERT_TRUE(snapshot.value()->RestoreInto(*mem_b.value()).ok());
  mem_a.value()->base()[7] = 0xEE;
  EXPECT_EQ(mem_b.value()->base()[7], 0x10);
  ASSERT_TRUE(snapshot.value()->RestoreInto(*mem_a.value()).ok());
  EXPECT_EQ(mem_a.value()->base()[7], 0x10);
}

TEST(SnapshotTest, EagerRestoreMatchesCow) {
  auto memory = LinearMemory::Create(1, 10);
  ASSERT_TRUE(memory.ok());
  auto& m = *memory.value();
  for (size_t i = 0; i < kWasmPageBytes; ++i) {
    m.base()[i] = static_cast<uint8_t>(i * 31);
  }
  auto snapshot = MemorySnapshot::Capture("snap", m.base(), kWasmPageBytes);
  ASSERT_TRUE(snapshot.ok());
  std::memset(m.base(), 0, kWasmPageBytes);
  ASSERT_TRUE(snapshot.value()->RestoreIntoEager(m).ok());
  for (size_t i = 0; i < kWasmPageBytes; i += 997) {
    EXPECT_EQ(m.base()[i], static_cast<uint8_t>(i * 31));
  }
}

TEST(SnapshotTest, SerializeDeserializeRoundTrip) {
  Bytes image(10000);
  for (size_t i = 0; i < image.size(); ++i) {
    image[i] = static_cast<uint8_t>(i);
  }
  auto snapshot = MemorySnapshot::Capture("snap", image.data(), image.size());
  ASSERT_TRUE(snapshot.ok());
  Bytes serialized = snapshot.value()->Serialize();
  EXPECT_EQ(serialized, image);

  // Cross-host path: rebuild from bytes, restore, verify.
  auto remote = MemorySnapshot::Deserialize("remote", serialized);
  ASSERT_TRUE(remote.ok());
  auto memory = LinearMemory::Create(1, 10);
  ASSERT_TRUE(memory.ok());
  ASSERT_TRUE(remote.value()->RestoreInto(*memory.value()).ok());
  EXPECT_EQ(memory.value()->base()[9999], static_cast<uint8_t>(9999));
}

TEST(SnapshotTest, RestoreGrowsSmallMemory) {
  auto big = LinearMemory::Create(4, 10);
  ASSERT_TRUE(big.ok());
  std::memset(big.value()->base(), 0x44, big.value()->size_bytes());
  auto snapshot =
      MemorySnapshot::Capture("snap", big.value()->base(), big.value()->size_bytes());
  ASSERT_TRUE(snapshot.ok());

  auto small = LinearMemory::Create(1, 10);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(snapshot.value()->RestoreInto(*small.value()).ok());
  EXPECT_GE(small.value()->size_pages(), 4u);
  EXPECT_EQ(small.value()->base()[4 * kWasmPageBytes - 1], 0x44);
}

TEST(SnapshotTest, RestoreFailsPastMemoryLimit) {
  auto big = LinearMemory::Create(4, 4);
  ASSERT_TRUE(big.ok());
  auto snapshot =
      MemorySnapshot::Capture("snap", big.value()->base(), big.value()->size_bytes());
  ASSERT_TRUE(snapshot.ok());
  auto tiny = LinearMemory::Create(1, 2);  // limit below snapshot size
  ASSERT_TRUE(tiny.ok());
  EXPECT_FALSE(snapshot.value()->RestoreInto(*tiny.value()).ok());
}

}  // namespace
}  // namespace faasm
