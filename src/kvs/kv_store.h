// KvStore: the in-memory key/value store backing the global state tier
// (the paper deploys Redis; this is the offline equivalent with the same
// API surface the two-tier architecture needs: whole-value and ranged
// reads/writes, append, distributed read/write locks, and the set operations
// the Omega-style scheduler keeps its warm sets in).
//
// Shard migration support (kvs/migration.h). Three mechanisms, all checked
// under the same shard mutex that applies the op, so nothing slips between
// a coordinator's snapshot and the handoff:
//
//   - FROZEN keys (FreezeKey): a key mid-stream bounces ops with
//     kWrongMaster until the epoch flips; routing clients back off and
//     retry against the key's post-flip master.
//   - The MIGRATION FILTER (SetMigrationFilter): while a membership change
//     is in progress, ops on any key the filter marks as moving bounce —
//     including keys that do not exist yet, which closes the enumeration
//     race (a key created after the coordinator listed the store can never
//     be stranded, because creating it bounces until the flip).
//   - The OWNERSHIP GUARD (SetOwnershipGuard): a permanent predicate
//     host-colocated shards install at creation, answering "does this
//     store master `key` under the LIVE shard map?". A straggler op that
//     resolved its route epochs ago bounces here instead of resurrecting a
//     moved key; because the guard reads the live map, a key whose
//     mastership later returns is immediately servable again.
//
// Only Exists/SetMembers keep answering regardless (their bool/vector
// signatures have no error channel); their consumers — warm-set scheduling
// — tolerate a stale view. ExportKey / InstallKey / EraseKey move a key's
// full footprint (value bytes, lock state, set members) between stores.
#ifndef FAASM_KVS_KV_STORE_H_
#define FAASM_KVS_KV_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace faasm {

// Operation codes of the KVS wire protocol (kvs_client.h). They live here —
// below the client/server pair — because batched requests (KvsBatchOp,
// ExecuteBatch) carry them through the store layer.
enum class KvsOp : uint8_t {
  kGet = 1,
  kSet = 2,
  kGetRange = 3,
  kSetRange = 4,
  kAppend = 5,
  kDelete = 6,
  kExists = 7,
  kSize = 8,
  kLockRead = 9,
  kLockWrite = 10,
  kUnlockRead = 11,
  kUnlockWrite = 12,
  kSetAdd = 13,
  kSetRemove = 14,
  kSetMembers = 15,
  kSetRanges = 16,
  // Shard migration: installs a KeyExport streamed from the key's previous
  // master. Exempt from the server's ownership check (it arrives BEFORE the
  // epoch flips the key to this shard).
  kMigrateInstall = 17,
  // A framed group of sub-ops executed as one request (ExecuteBatch): the
  // cross-shard ops of one state push travel as ONE RPC per endpoint.
  kBatch = 18,
  // Read-only twin of kBatch: carries only kGet/kGetRange sub-ops (the
  // grouped pulls of one prefetch). Same framing and per-op result vector;
  // a mutating sub-op smuggled into one is rejected per op with
  // InvalidArgument instead of executing.
  kGetBatch = 19,
};

// True for the sub-ops a kGetBatch (read-only batch) may carry.
inline bool IsReadBatchOp(KvsOp op) { return op == KvsOp::kGet || op == KvsOp::kGetRange; }

// True for ops that mutate store state. This is the set the replication
// substrate (kvs/replication.h) forwards primary→backup; the lock ops count
// because lock state must survive a failover exactly as it survives a
// migration.
inline bool IsMutatingOp(KvsOp op) {
  switch (op) {
    case KvsOp::kSet:
    case KvsOp::kSetRange:
    case KvsOp::kSetRanges:
    case KvsOp::kAppend:
    case KvsOp::kDelete:
    case KvsOp::kLockRead:
    case KvsOp::kLockWrite:
    case KvsOp::kUnlockRead:
    case KvsOp::kUnlockWrite:
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove:
      return true;
    default:
      return false;
  }
}

// One write range of a batched SetRanges: `bytes` lands at `offset`.
struct ValueRange {
  uint64_t offset = 0;
  Bytes bytes;
};

// Merges adjacent and overlapping ranges into maximal runs so contiguous
// dirty pages ship as one wire range. Later ranges win on overlap (they are
// the newer write), matching the order SetRanges applies them. Ranges are
// returned sorted by offset; total covered extent (and the bytes at every
// covered offset) are unchanged.
std::vector<ValueRange> MergeValueRanges(std::vector<ValueRange> ranges);

// One sub-op of a batched request. `op` says which fields are meaningful:
//   kGet                 — key only
//   kGetRange            — offset + len
//   kSet / kAppend       — bytes
//   kSetRange            — offset + bytes
//   kSetRanges           — ranges
//   kSetAdd / kSetRemove — member
//   kDelete              — key only
struct KvsBatchOp {
  KvsOp op = KvsOp::kGet;
  std::string key;
  uint64_t offset = 0;
  uint64_t len = 0;  // kGetRange only
  Bytes bytes;
  std::vector<ValueRange> ranges;
  std::string member;
  // Replication forward channel only (kvs/batch_codec.h, replica dialect):
  // the primary's apply sequence for this op. Always 0 on the public kBatch
  // wire and for locally built batches.
  uint64_t seq = 0;
};

// Per-op outcome of ExecuteBatch, index-aligned with the request. At most
// one payload field is meaningful, depending on the op.
struct KvsBatchResult {
  Status status = OkStatus();
  Bytes value;          // kGet / kGetRange
  uint64_t length = 0;  // kAppend: value length after the append
  bool flag = false;    // kSetAdd / kSetRemove: membership changed
};

// A key's complete store-side footprint, as moved by shard migration: the
// value (if any), the distributed-lock state (ownership travels with the
// key, so a lock held across a migration keeps excluding), and set members.
struct KeyExport {
  bool has_value = false;
  Bytes value;
  int lock_readers = 0;
  std::string lock_writer;
  std::vector<std::string> set_members;
  // The exporting store's apply sequence at snapshot time. A backup that
  // installs this record uses it as the key's duplicate-filter floor:
  // forwarded ops with seq <= this were already folded into the snapshot.
  uint64_t seq = 0;

  // Wire encoding (payload of the kMigrateInstall op).
  Bytes Serialize() const;
  static Result<KeyExport> Deserialize(const Bytes& bytes);
  // True when the key has no footprint at all (nothing to migrate).
  bool empty() const {
    return !has_value && lock_readers == 0 && lock_writer.empty() && set_members.empty();
  }
  // Footprint equality IGNORING `seq`: a primary's sequence moves on every
  // mutation anywhere in the store, so reconciliation must compare content,
  // not counters, or it would re-stream every key every pass.
  bool SameContent(const KeyExport& other) const;
};

class KvStore {
 public:
  static constexpr int kShards = 16;

  // --- Values ---------------------------------------------------------------
  Status Set(const std::string& key, Bytes value);
  Result<Bytes> Get(const std::string& key) const;
  bool Exists(const std::string& key) const;
  Result<size_t> Size(const std::string& key) const;
  Status Delete(const std::string& key);

  // Ranged access (state chunks). SetRange extends the value when needed.
  Result<Bytes> GetRange(const std::string& key, size_t offset, size_t len) const;
  Status SetRange(const std::string& key, size_t offset, const Bytes& bytes);
  // Applies all ranges atomically under one shard lock (delta push: the N
  // dirty runs of a replica land as one operation).
  Status SetRanges(const std::string& key, const std::vector<ValueRange>& ranges);

  // Appends and returns the new length.
  Result<size_t> Append(const std::string& key, const Bytes& bytes);

  // --- Batched execution (the kBatch op) ---------------------------------------
  // Executes a group of sub-ops as one request. Ops are bucketed by internal
  // shard and each bucket runs under ONE shard-mutex acquisition (per-op
  // order is preserved within a bucket; ops on distinct keys in different
  // buckets are independent). Every op passes CheckServableLocked
  // individually, so a batch straddling a migration bounces ONLY the moving
  // keys with kWrongMaster — including keys that do not exist yet but match
  // the migration filter (the enumeration-race guard) — while the rest of
  // the batch lands. Returns one result per op, index-aligned.
  std::vector<KvsBatchResult> ExecuteBatch(const std::vector<const KvsBatchOp*>& ops);
  std::vector<KvsBatchResult> ExecuteBatch(const std::vector<KvsBatchOp>& ops);

  // --- Distributed locks -----------------------------------------------------
  // Non-blocking; callers poll. Multiple readers or one writer per key.
  Result<bool> TryLockRead(const std::string& key, const std::string& owner);
  Result<bool> TryLockWrite(const std::string& key, const std::string& owner);
  Status UnlockRead(const std::string& key, const std::string& owner);
  Status UnlockWrite(const std::string& key, const std::string& owner);

  // --- Sets (scheduler warm sets) ---------------------------------------------
  Result<bool> SetAdd(const std::string& key, const std::string& member);     // true if new
  Result<bool> SetRemove(const std::string& key, const std::string& member);  // true if removed
  std::vector<std::string> SetMembers(const std::string& key) const;

  // --- Shard migration (kvs/migration.h) ---------------------------------------
  // Every key with any footprint (value, lock state, or set members).
  std::vector<std::string> Keys() const;
  // Marks `key` migrating: ops on it return kWrongMaster until UnfreezeKey,
  // EraseKey, or an InstallKey moving it back in. Idempotent.
  void FreezeKey(const std::string& key);
  void UnfreezeKey(const std::string& key);
  bool IsFrozen(const std::string& key) const;
  // Installs (or clears, with nullptr) the migration filter: ops on keys
  // for which `filter` returns true bounce with kWrongMaster, whether or
  // not the key exists. Set by the migrator BEFORE it lists the store, so
  // no moving key can be created behind the enumeration.
  void SetMigrationFilter(std::function<bool(const std::string&)> filter);
  void ClearMigrationFilter() { SetMigrationFilter(nullptr); }
  // Installs the permanent ownership guard: ops on keys for which `owns`
  // returns false bounce with kWrongMaster. Host-colocated shards pass a
  // live-map predicate ("this endpoint masters the key under the current
  // epoch"), which redirects straggler ops that raced a membership change —
  // even on this host's in-process fast path. Install before serving.
  void SetOwnershipGuard(std::function<bool(const std::string&)> owns);
  // Snapshot of `key`'s footprint (value + lock state + set members), taken
  // under the shard mutex so it is consistent with the frozen state.
  KeyExport ExportKey(const std::string& key) const;
  // Installs an exported footprint, replacing any existing entry for `key`
  // and unfreezing it (the key just moved in).
  void InstallKey(const std::string& key, const KeyExport& record);
  // Drops every trace of `key` (value, locks, sets) and unfreezes it; the
  // ownership guard is what keeps stragglers off the moved key afterwards.
  void EraseKey(const std::string& key);

  // --- Introspection -----------------------------------------------------------
  size_t key_count() const;
  size_t total_bytes() const;

  // --- Replication forwarding (kvs/replication.h) -------------------------------
  // One successfully applied mutating op, as handed to the update hook.
  // `op` stays valid only for the duration of the hook call; `seq` is the
  // store-wide apply sequence captured under the op's shard mutex, so for
  // any single key, seq order equals apply order.
  struct ForwardedOp {
    const KvsBatchOp* op = nullptr;
    uint64_t seq = 0;
  };
  using UpdateHook = std::function<void(const std::vector<ForwardedOp>&)>;
  // Installs the hook fired — OUTSIDE every shard mutex, on the mutating
  // caller's thread — after each successful mutating apply (per op for the
  // single-op methods; once per batch, with every applied op, for
  // ExecuteBatch). Wire it before the store serves traffic: installation is
  // not synchronised against in-flight ops. Lock acquisitions that did not
  // acquire (flag=false) changed nothing and are not forwarded.
  void SetUpdateHook(UpdateHook hook) { hook_ = std::move(hook); }
  // Ops currently between "entered the store" and "hook returned". The
  // failover quiesce barrier waits for 0: with the dead store fenced, zero
  // here means every op that will ever be acked has finished forwarding.
  int inflight_mutations() const { return inflight_.load(); }

  // The apply sequence of the last FORWARDED mutation on `key` in this
  // store's sequence space (0 = never mutated with forwarding active, or
  // migrated away). Recorded under the key's shard mutex alongside the
  // sequence capture, so it is exact with respect to the forward stream. The
  // async replica-read freshness probe compares a backup's per-key floor
  // against this: floor >= KeySeq means every forwarded op on the key has
  // reached the backup. InstallKey re-bases it to the installing store's
  // current sequence (the same value a subsequent ExportKey would stamp).
  uint64_t KeySeq(const std::string& key) const;

  // RAII: suppresses update-hook calls from the current thread. Seeding and
  // mirror paths (ShardedKvs, the replication manager's own installs) write
  // stores whose replication is handled by other means — and may run on
  // threads that must not touch the network clock — so forwarding them
  // again would double-apply or deadlock.
  class HookPause {
   public:
    HookPause() { ++Depth(); }
    ~HookPause() { --Depth(); }
    HookPause(const HookPause&) = delete;
    HookPause& operator=(const HookPause&) = delete;
    static bool active() { return Depth() > 0; }

   private:
    static int& Depth();
  };

 private:
  struct LockState {
    int readers = 0;
    std::string writer;  // empty when unlocked
  };

  // Predicates are stored per shard (set under each shard's mutex, read
  // under the op's shard mutex) so the hot path takes no extra lock.
  using KeyPredicate = std::shared_ptr<const std::function<bool(const std::string&)>>;

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Bytes> values;
    std::map<std::string, LockState> locks;
    std::map<std::string, std::set<std::string>> sets;
    std::set<std::string> frozen;  // keys mid-stream: ops bounce
    KeyPredicate filter;           // migration window: moving keys bounce
    KeyPredicate owns;             // live ownership guard: foreign keys bounce
    // Last forwarded-mutation sequence per key (see KeySeq).
    std::map<std::string, uint64_t> key_seq;
  };

  size_t ShardIndexFor(const std::string& key) const {
    return HashBytes(reinterpret_cast<const uint8_t*>(key.data()), key.size()) % kShards;
  }
  Shard& ShardFor(const std::string& key) const { return shards_[ShardIndexFor(key)]; }

  // Single-op appliers shared by the public methods and ExecuteBatch. All
  // require the key's shard.mutex and assume CheckServableLocked passed.
  static Status SetLocked(Shard& shard, const std::string& key, Bytes value);
  static Result<Bytes> GetLocked(const Shard& shard, const std::string& key);
  static Result<Bytes> GetRangeLocked(const Shard& shard, const std::string& key, size_t offset,
                                      size_t len);
  static Status SetRangeLocked(Shard& shard, const std::string& key, size_t offset,
                               const Bytes& bytes);
  static Status SetRangesLocked(Shard& shard, const std::string& key,
                                const std::vector<ValueRange>& ranges);
  static Result<size_t> AppendLocked(Shard& shard, const std::string& key, const Bytes& bytes);
  static Status DeleteLocked(Shard& shard, const std::string& key);
  static Result<bool> SetAddLocked(Shard& shard, const std::string& key,
                                   const std::string& member);
  static Result<bool> SetRemoveLocked(Shard& shard, const std::string& key,
                                      const std::string& member);
  // Applies one batch sub-op (shard.mutex held, servability checked).
  static KvsBatchResult ApplyLocked(Shard& shard, const KvsBatchOp& op);

  // The single-op mutation funnel: servability check + ApplyLocked under
  // the key's shard mutex, then — outside the mutex — the update hook with
  // the op's captured apply sequence. Every public mutating method routes
  // through here so none can dodge the forwarding path.
  KvsBatchResult MutateOne(const KvsBatchOp& op);
  // True when `op`'s successful result changed state worth forwarding (a
  // lock try that did not acquire is applied-but-inert).
  static bool ShouldForward(const KvsBatchOp& op, const KvsBatchResult& result);
  // Forward only when a hook is installed and this thread is not inside a
  // HookPause (seeding / mirror writes).
  bool ForwardingActive() const { return hook_ != nullptr && !HookPause::active(); }

  // Requires shard.mutex. The single point every status-capable op funnels
  // through, so none can forget the freeze, the migration filter, or the
  // ownership guard.
  static Status CheckServableLocked(const Shard& shard, const std::string& key) {
    if (shard.frozen.count(key) > 0) {
      return WrongMaster("kvs: key is migrating: " + key);
    }
    if (shard.filter != nullptr && (*shard.filter)(key)) {
      return WrongMaster("kvs: key is changing master: " + key);
    }
    if (shard.owns != nullptr && !(*shard.owns)(key)) {
      return WrongMaster("kvs: key is not mastered by this shard: " + key);
    }
    return OkStatus();
  }

  mutable Shard shards_[kShards];
  // Set once before the store serves traffic (SetUpdateHook); read
  // unsynchronised on the mutation path.
  UpdateHook hook_;
  // Store-wide apply sequence, incremented under the mutating op's shard
  // mutex, so per-key ordering is exact. Starts at 1 (0 = "no floor").
  std::atomic<uint64_t> mutation_seq_{0};
  // See inflight_mutations().
  mutable std::atomic<int> inflight_{0};
};

}  // namespace faasm

#endif  // FAASM_KVS_KV_STORE_H_
