#include "kvs/kv_store.h"

#include <algorithm>

namespace faasm {

namespace {
// Upper bound on a single value's extent. Offsets come straight off the wire
// in the range ops; without a bound an overflowing (or merely huge) offset
// would corrupt memory or force an absurd resize.
constexpr size_t kMaxValueBytes = size_t{1} << 34;  // 16 GiB

bool RangeIsSane(size_t offset, size_t len) {
  return offset <= kMaxValueBytes && len <= kMaxValueBytes - offset;
}
}  // namespace

void KvStore::Set(const std::string& key, Bytes value) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.values[key] = std::move(value);
}

Result<Bytes> KvStore::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  return it->second;
}

bool KvStore::Exists(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  return shard.values.count(key) > 0;
}

Result<size_t> KvStore::Size(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  return it->second.size();
}

Status KvStore::Delete(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  return shard.values.erase(key) > 0 ? OkStatus() : NotFound("kvs: no such key: " + key);
}

Result<Bytes> KvStore::GetRange(const std::string& key, size_t offset, size_t len) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  const Bytes& value = it->second;
  if (offset > value.size()) {
    return OutOfRange("kvs: range start past end of value");
  }
  const size_t end = std::min(value.size(), offset + len);
  return Bytes(value.begin() + offset, value.begin() + end);
}

Status KvStore::SetRange(const std::string& key, size_t offset, const Bytes& bytes) {
  if (!RangeIsSane(offset, bytes.size())) {
    return InvalidArgument("kvs: range write exceeds maximum value size");
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  Bytes& value = shard.values[key];
  if (value.size() < offset + bytes.size()) {
    value.resize(offset + bytes.size());
  }
  std::copy(bytes.begin(), bytes.end(), value.begin() + offset);
  return OkStatus();
}

Status KvStore::SetRanges(const std::string& key, const std::vector<ValueRange>& ranges) {
  for (const ValueRange& range : ranges) {
    if (!RangeIsSane(range.offset, range.bytes.size())) {
      return InvalidArgument("kvs: range write exceeds maximum value size");
    }
  }
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  Bytes& value = shard.values[key];
  size_t needed = value.size();
  for (const ValueRange& range : ranges) {
    needed = std::max(needed, static_cast<size_t>(range.offset) + range.bytes.size());
  }
  if (value.size() < needed) {
    value.resize(needed);
  }
  for (const ValueRange& range : ranges) {
    std::copy(range.bytes.begin(), range.bytes.end(), value.begin() + range.offset);
  }
  return OkStatus();
}

size_t KvStore::Append(const std::string& key, const Bytes& bytes) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  Bytes& value = shard.values[key];
  value.insert(value.end(), bytes.begin(), bytes.end());
  return value.size();
}

bool KvStore::TryLockRead(const std::string& key, const std::string& /*owner*/) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  LockState& lock = shard.locks[key];
  if (!lock.writer.empty()) {
    return false;
  }
  ++lock.readers;
  return true;
}

bool KvStore::TryLockWrite(const std::string& key, const std::string& owner) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  LockState& lock = shard.locks[key];
  if (!lock.writer.empty() || lock.readers > 0) {
    return false;
  }
  lock.writer = owner;
  return true;
}

Status KvStore::UnlockRead(const std::string& key, const std::string& /*owner*/) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  LockState& lock = shard.locks[key];
  if (lock.readers <= 0) {
    return FailedPrecondition("kvs: read-unlock without lock: " + key);
  }
  --lock.readers;
  return OkStatus();
}

Status KvStore::UnlockWrite(const std::string& key, const std::string& owner) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  LockState& lock = shard.locks[key];
  if (lock.writer != owner) {
    return FailedPrecondition("kvs: write-unlock by non-owner: " + key);
  }
  lock.writer.clear();
  return OkStatus();
}

bool KvStore::SetAdd(const std::string& key, const std::string& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  return shard.sets[key].insert(member).second;
}

bool KvStore::SetRemove(const std::string& key, const std::string& member) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.sets.find(key);
  if (it == shard.sets.end()) {
    return false;
  }
  return it->second.erase(member) > 0;
}

std::vector<std::string> KvStore::SetMembers(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.sets.find(key);
  if (it == shard.sets.end()) {
    return {};
  }
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

size_t KvStore::key_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    count += shard.values.size();
  }
  return count;
}

size_t KvStore::total_bytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    for (const auto& [key, value] : shard.values) {
      bytes += value.size();
    }
  }
  return bytes;
}

}  // namespace faasm
