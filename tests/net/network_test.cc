#include "net/network.h"

#include <gtest/gtest.h>

#include "sim/sim_clock.h"

namespace faasm {
namespace {

TEST(NetworkTest, RpcDeliversAndAccounts) {
  RealClock clock;
  NetworkConfig config;
  config.charge_latency = false;
  InProcNetwork net(&clock, config);
  net.RegisterEndpoint("kvs", [](const Bytes& request) {
    Bytes response = request;
    response.push_back(0xFF);
    return response;
  });
  auto out = net.Call("host-0", "kvs", Bytes{1, 2, 3});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value(), (Bytes{1, 2, 3, 0xFF}));
  // Each direction pays payload + the fixed per-message envelope.
  const uint64_t overhead = config.per_message_overhead_bytes;
  EXPECT_EQ(net.total_bytes(), 7u + 2 * overhead);  // 3 request + 4 response
  EXPECT_EQ(net.StatsFor("host-0").tx_bytes, 3u + overhead);
  EXPECT_EQ(net.StatsFor("host-0").rx_bytes, 4u + overhead);
  EXPECT_EQ(net.StatsFor("kvs").rx_bytes, 3u + overhead);
}

TEST(NetworkTest, UnknownEndpointFails) {
  RealClock clock;
  NetworkConfig config;
  config.charge_latency = false;
  InProcNetwork net(&clock, config);
  EXPECT_EQ(net.Call("a", "nowhere", {}).status().code(), StatusCode::kUnavailable);
}

TEST(NetworkTest, MailboxSendPoll) {
  RealClock clock;
  NetworkConfig config;
  config.charge_latency = false;
  InProcNetwork net(&clock, config);
  // A mailbox only exists behind a registered endpoint: sends to a missing
  // (or already-removed) receiver fail fast instead of queueing forever.
  EXPECT_EQ(net.Send("host-0", "host-1", Bytes{7}).code(), StatusCode::kUnavailable);
  net.RegisterEndpoint("host-1", [](const Bytes&) { return Bytes{}; });
  EXPECT_FALSE(net.Poll("host-1").has_value());
  EXPECT_EQ(net.PendingCount("host-1"), 0u);
  ASSERT_TRUE(net.Send("host-0", "host-1", Bytes{9}).ok());
  ASSERT_TRUE(net.Send("host-0", "host-1", Bytes{8}).ok());
  EXPECT_EQ(net.PendingCount("host-1"), 2u);
  auto first = net.Poll("host-1");
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ((*first)[0], 9);  // FIFO order
  auto second = net.Poll("host-1");
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ((*second)[0], 8);
  EXPECT_FALSE(net.Poll("host-1").has_value());
}

TEST(NetworkTest, LatencyChargedToVirtualClock) {
  SimExecutor executor;
  NetworkConfig config;
  config.base_latency_ns = 1 * kMillisecond;
  config.bandwidth_bytes_per_sec = 1e6;  // 1 MB/s: 1000 bytes = 1 ms
  config.per_message_overhead_bytes = 0;  // keep the arithmetic exact below
  InProcNetwork net(&executor.clock(), config);
  net.RegisterEndpoint("svc", [](const Bytes&) { return Bytes(1000); });

  TimeNs elapsed = 0;
  executor.Spawn([&] {
    const TimeNs start = executor.clock().Now();
    auto out = net.Call("host", "svc", Bytes(1000));
    ASSERT_TRUE(out.ok());
    elapsed = executor.clock().Now() - start;
  });
  executor.JoinAll();
  // Two directions: (1 ms latency + 1 ms transfer) each.
  EXPECT_EQ(elapsed, 4 * kMillisecond);
}

TEST(NetworkTest, ResetStatsClears) {
  RealClock clock;
  NetworkConfig config;
  config.charge_latency = false;
  InProcNetwork net(&clock, config);
  net.RegisterEndpoint("svc", [](const Bytes&) { return Bytes{}; });
  ASSERT_TRUE(net.Call("a", "svc", Bytes(10)).ok());
  EXPECT_GT(net.total_bytes(), 0u);
  net.ResetStats();
  EXPECT_EQ(net.total_bytes(), 0u);
}

}  // namespace
}  // namespace faasm
