// The batched + cached read path (the read-side twin of batch_push_test):
// LocalTier::Prefetch must pull K keys mastered on M hosts in at most M
// kGetBatch RPCs and make the keys' next Pull free; the per-host read cache
// must serve repeat pulls with zero network bytes while never serving stale
// bytes after this host's own writes or under a global lock.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>

#include "state/local_tier.h"

namespace faasm {
namespace {

constexpr size_t kPage = StateKeyValue::kStatePageBytes;

// Sharded fixture: four host-colocated shards; this host ("host-0") serves
// its own shard in process and reaches the other three over the network.
class ReadPathTest : public ::testing::Test {
 protected:
  static constexpr int kHosts = 4;

  ReadPathTest() : network_(&clock_, NoLatency()) {
    for (int i = 0; i < kHosts; ++i) {
      map_.AddShard(ShardMap::EndpointForHost(HostName(i)));
    }
    for (int i = 1; i < kHosts; ++i) {
      servers_.push_back(std::make_unique<KvsServer>(
          &shards_[i], &network_, ShardMap::EndpointForHost(HostName(i)), &map_));
    }
    kvs_ = std::make_unique<KvsClient>(&network_, HostName(0), &map_, &shards_[0]);
    kvs_->EnableBatching(nullptr);  // groups inline; no pipelining needed here
    tier_ = std::make_unique<LocalTier>(kvs_.get(), &clock_);
  }

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  static std::string HostName(int i) { return "host-" + std::to_string(i); }

  KvStore& ShardMastering(const std::string& key) {
    const std::string master = map_.MasterFor(key);
    for (int i = 0; i < kHosts; ++i) {
      if (master == ShardMap::EndpointForHost(HostName(i))) {
        return shards_[i];
      }
    }
    ADD_FAILURE() << "no shard masters " << key;
    return shards_[0];
  }

  // Picks a key NOT mastered by this host's shard (pulls cross the network).
  std::string RemoteKey(const std::string& hint) {
    for (int i = 0; i < 100000; ++i) {
      std::string probe = hint + "-" + std::to_string(i);
      if (map_.MasterFor(probe) != ShardMap::EndpointForHost(HostName(0))) {
        return probe;
      }
    }
    ADD_FAILURE() << "no remote-mastered key found";
    return hint;
  }

  uint64_t TxMessages() { return network_.StatsFor(HostName(0)).tx_messages; }

  RealClock clock_;
  InProcNetwork network_;
  ShardMap map_;
  KvStore shards_[kHosts];
  std::vector<std::unique_ptr<KvsServer>> servers_;
  std::unique_ptr<KvsClient> kvs_;
  std::unique_ptr<LocalTier> tier_;
};

TEST_F(ReadPathTest, PrefetchCostsAtMostOneRpcPerMasterHostAndMakesPullFree) {
  constexpr int kKeys = 12;
  std::vector<std::string> keys;
  int remote_keys = 0;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back("pf-" + std::to_string(i));
    ASSERT_TRUE(ShardMastering(keys.back()).Set(keys.back(), Bytes(kPage, uint8_t(i + 1))).ok());
    remote_keys += map_.MasterFor(keys.back()) == ShardMap::EndpointForHost(HostName(0)) ? 0 : 1;
  }
  ASSERT_GT(remote_keys, kHosts - 1) << "want more remote keys than remote hosts";

  network_.ResetStats();
  ASSERT_TRUE(tier_->Prefetch(keys).ok());

  // THE read-side acceptance bound: K keys mastered on M hosts cost at most
  // M-1 grouped read RPCs (this host's own group runs in process), although
  // `remote_keys` > M-1 keys crossed shards — previously each key's Pull
  // paid its own sizing + fetch round trips.
  const uint64_t prefetch_rpcs = TxMessages();
  EXPECT_LE(prefetch_rpcs, uint64_t{kHosts - 1});
  EXPECT_GE(prefetch_rpcs, 1u);

  // The values are installed and every key's next Pull is free: no further
  // network traffic, and the replica bytes match the masters'.
  for (int i = 0; i < kKeys; ++i) {
    auto kv = tier_->Lookup(keys[i]);
    ASSERT_TRUE(kv->Pull().ok()) << keys[i];
    ASSERT_NE(kv->data(), nullptr);
    EXPECT_EQ(kv->data()[0], uint8_t(i + 1)) << keys[i];
    EXPECT_EQ(kv->size(), kPage);
  }
  EXPECT_EQ(TxMessages(), prefetch_rpcs);
}

TEST_F(ReadPathTest, PrefetchFallsBackToPerKeyPullsWhenReadBatchingOff) {
  constexpr int kKeys = 8;
  std::vector<std::string> keys;
  for (int i = 0; i < kKeys; ++i) {
    keys.push_back(RemoteKey("unbatched-" + std::to_string(i)));
    ASSERT_TRUE(ShardMastering(keys.back()).Set(keys.back(), Bytes{uint8_t(i)}).ok());
  }

  kvs_->set_read_batching(false);  // the --read-batch=off ablation
  network_.ResetStats();
  ASSERT_TRUE(tier_->Prefetch(keys).ok());
  // Every key paid its own pull (sizing + fetch): at least one RPC per key,
  // strictly more than the grouped protocol's M-1 bound.
  EXPECT_GE(TxMessages(), uint64_t{kKeys});
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(tier_->Lookup(keys[i])->data()[0], uint8_t(i));
  }
}

TEST_F(ReadPathTest, CachedPullServesRepeatsButNeverMasksOwnWrites) {
  kvs_->EnableReadCache(kSecond);
  const std::string key = RemoteKey("cached");
  ASSERT_TRUE(ShardMastering(key).Set(key, Bytes(kPage, 0x11)).ok());

  auto kv = tier_->Lookup(key);
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x11);

  // A repeat pull after dropping the replica is served from the read cache:
  // zero network traffic.
  network_.ResetStats();
  kv->InvalidateReplica();
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x11);
  EXPECT_EQ(TxMessages(), 0u);

  // This host's own write invalidates at enqueue: a pull after push must
  // observe the new bytes, leased cache entry or not.
  uint8_t* dst = kv->WritableData(0, kPage);
  ASSERT_NE(dst, nullptr);
  std::memset(dst, 0x22, kPage);
  ASSERT_TRUE(kv->Push().ok());
  kv->InvalidateReplica();
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x22);
  EXPECT_EQ(ShardMastering(key).Get(key).value(), Bytes(kPage, 0x22));
}

TEST_F(ReadPathTest, GlobalLockForcesFreshPullPastTheLease) {
  kvs_->EnableReadCache(kSecond);
  const std::string key = RemoteKey("locked");
  ASSERT_TRUE(ShardMastering(key).Set(key, Bytes(kPage, 0x01)).ok());

  auto kv = tier_->Lookup(key);
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x01);

  // Another host writes behind this host's cache (directly at the master:
  // no invalidation reaches host-0). An unlocked re-pull inside the lease
  // may serve the stale cached value — the documented, opted-into contract.
  ASSERT_TRUE(ShardMastering(key).Set(key, Bytes(kPage, 0x02)).ok());
  kv->InvalidateReplica();
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x01);  // stale, allowed without a lock

  // Under a global lock there is no staleness: acquisition drops both the
  // client's cached read and the replica's clean pages, so the first pull
  // under the lock refetches the serialised bytes.
  ASSERT_TRUE(kv->LockGlobalRead().ok());
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x02);
  ASSERT_TRUE(kv->UnlockGlobalRead().ok());
}

TEST_F(ReadPathTest, LockRefreshKeepsUnpushedLocalWrites) {
  const std::string key = RemoteKey("dirty");
  ASSERT_TRUE(ShardMastering(key).Set(key, Bytes(kPage * 2, 0x0A)).ok());

  auto kv = tier_->Lookup(key);
  ASSERT_TRUE(kv->Pull().ok());
  // Unpushed local write to the first page only.
  uint8_t* dst = kv->WritableData(0, kPage);
  ASSERT_NE(dst, nullptr);
  std::memset(dst, 0xBB, kPage);

  // Lock acquisition refreshes CLEAN pages but must keep the dirty one: a
  // refetch over it would read global bytes over the unpushed write.
  ASSERT_TRUE(kv->LockGlobalWrite().ok());
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0xBB);          // dirty page survived
  EXPECT_EQ(kv->data()[kPage], 0x0A);      // clean page refetched
  ASSERT_TRUE(kv->Push().ok());
  ASSERT_TRUE(kv->UnlockGlobalWrite().ok());
  EXPECT_EQ(ShardMastering(key).Get(key).value()[0], 0xBB);
  EXPECT_EQ(ShardMastering(key).Get(key).value()[kPage], 0x0A);
}

}  // namespace
}  // namespace faasm
