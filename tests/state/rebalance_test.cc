// Chaos tests for live shard rebalancing (ISSUE 4 acceptance): writer
// functions hammer counters through DDOs while hosts join and leave the
// sharded tier. Every acknowledged increment must be reflected in the final
// counter values — migration may stall ops (kWrongMaster redirects) but must
// never lose or double an update — and a distributed lock held across a
// migration keeps excluding a second acquirer.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <memory>

#include "runtime/cluster.h"
#include "state/ddo.h"

namespace faasm {
namespace {

constexpr int kCounters = 8;

std::string CounterKey(int i) { return "counter-" + std::to_string(i); }

// Registers "inc": reads a counter index from the input, then performs an
// exact cross-host increment — global write lock, invalidate + pull (the
// lock makes the re-pull see every prior push), increment, delta push,
// unlock. Any failure path returns a distinct nonzero code so a lost ack is
// distinguishable from a refused one.
void RegisterIncrement(FaasmCluster& cluster) {
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("inc",
                                  [](InvocationContext& ctx) {
                                    ByteReader reader(ctx.Input());
                                    auto index = reader.Get<uint32_t>();
                                    if (!index.ok()) {
                                      return 1;
                                    }
                                    SharedArray<uint64_t> counter(&ctx.state(),
                                                                  CounterKey(index.value()));
                                    if (!counter.kv().LockGlobalWrite().ok()) {
                                      return 2;
                                    }
                                    counter.kv().InvalidateReplica();
                                    if (!counter.Attach().ok()) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 3;
                                    }
                                    uint64_t* value = counter.WritableElements(0, 1);
                                    if (value == nullptr) {
                                      (void)counter.kv().UnlockGlobalWrite();
                                      return 4;
                                    }
                                    *value += 1;
                                    counter.MarkDirtyElements(0, 1);
                                    const bool pushed = counter.Push().ok();
                                    const bool unlocked =
                                        counter.kv().UnlockGlobalWrite().ok();
                                    return pushed && unlocked ? 0 : 5;
                                  })
                  .ok());
}

uint64_t ReadCounter(FaasmCluster& cluster, int i) {
  auto value = cluster.kvs().Get(CounterKey(i));
  if (!value.ok() || value.value().size() != sizeof(uint64_t)) {
    ADD_FAILURE() << "counter " << i << " unreadable: " << value.status().ToString();
    return 0;
  }
  uint64_t count = 0;
  std::memcpy(&count, value.value().data(), sizeof(count));
  return count;
}

TEST(RebalanceTest, NoAcknowledgedIncrementLostAcrossHostChurn) {
  ClusterConfig config;
  config.hosts = 4;  // sharded tier is the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  RegisterIncrement(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  std::array<uint64_t, kCounters> acked{};

  cluster.Run([&](Frontend& frontend) {
    // Each round: launch a batch of increments, churn the membership while
    // they are in flight, then await the batch. The schedule removes both
    // original hosts (shards populated since epoch 0) and a freshly added
    // one, wandering between 4 and 5 hosts.
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},          // + host-4
        {false, "host-1"},   // - an original host
        {true, ""},          // + host-5
        {false, "host-4"},   // - a host added under load
        {true, ""},          // + host-6
        {false, "host-0"},   // - another original
    };
    for (const auto& [add, name] : churn) {
      std::vector<std::pair<uint64_t, uint32_t>> batch;
      for (int i = 0; i < 3 * kCounters; ++i) {
        const uint32_t counter = i % kCounters;
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(counter);
        auto id = frontend.Submit("inc", std::move(input));
        ASSERT_TRUE(id.ok());
        batch.emplace_back(id.value(), counter);
      }

      if (add) {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        Status removed = cluster.RemoveHost(name);
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (const auto& [id, counter] : batch) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0) << "increment refused mid-churn";
        acked[counter] += 1;
      }
    }
  });

  // Six membership changes happened and keys really moved between shards.
  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 6);
  EXPECT_EQ(cluster.shard_map().shard_count(), 4u);  // 4 seed + 3 added - 3 removed
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_GT(cluster.migration_stats().bytes_moved, 0u);
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 6u);

  // THE acceptance property: every acknowledged increment — and nothing
  // else — is in the final values, wherever each key's master ended up.
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked[i]) << CounterKey(i);
  }
}

// Registers "inc_all": one call increments EVERY counter exactly once
// through the BATCHED push path — global write locks on all counters
// (ordered, so concurrent calls serialise instead of deadlocking), fresh
// pulls, increments, deferred pushes inside one StateBatch scope, then the
// scope's flush barrier (per-op kWrongMaster retry underneath) and the
// unlocks. The call acks only if the barrier and every unlock succeeded.
void RegisterBatchedIncrementAll(FaasmCluster& cluster) {
  ASSERT_TRUE(
      cluster.registry()
          .RegisterNative(
              "inc_all",
              [](InvocationContext& ctx) {
                std::array<std::unique_ptr<SharedArray<uint64_t>>, kCounters> counters;
                for (int i = 0; i < kCounters; ++i) {
                  counters[i] = std::make_unique<SharedArray<uint64_t>>(&ctx.state(),
                                                                       CounterKey(i));
                  if (!counters[i]->kv().LockGlobalWrite().ok()) {
                    for (int j = 0; j < i; ++j) {
                      (void)counters[j]->kv().UnlockGlobalWrite();
                    }
                    return 2;
                  }
                }
                int code = 0;
                // Pull + increment everything BEFORE the batch scope: Pull
                // is itself a flush barrier, so pulls interleaved with the
                // deferred pushes would flush them one by one.
                for (int i = 0; i < kCounters && code == 0; ++i) {
                  counters[i]->kv().InvalidateReplica();
                  if (!counters[i]->Attach().ok()) {
                    code = 3;
                    break;
                  }
                  uint64_t* value = counters[i]->WritableElements(0, 1);
                  if (value == nullptr) {
                    code = 4;
                    break;
                  }
                  *value += 1;
                  counters[i]->MarkDirtyElements(0, 1);
                }
                if (code == 0) {
                  StateBatch batch(ctx.state());
                  for (int i = 0; i < kCounters && code == 0; ++i) {
                    if (!counters[i]->Push().ok()) {  // accepted into the batch
                      code = 5;
                    }
                  }
                  // THE barrier: all eight pushes become durable here, in at
                  // most one RPC per master shard, before any lock releases.
                  if (!batch.Close().ok() && code == 0) {
                    code = 6;
                  }
                }
                for (int i = kCounters - 1; i >= 0; --i) {
                  if (!counters[i]->kv().UnlockGlobalWrite().ok() && code == 0) {
                    code = 7;
                  }
                }
                return code;
              })
          .ok());
}

TEST(RebalanceTest, BatchedCountersSurviveHostChurnWithoutLostAcks) {
  // The PR-4 churn harness rerun through the BATCHED path: counters are
  // hammered via StateBatch-scoped multi-key pushes while six membership
  // changes migrate their masters underneath. A batch racing a migration
  // bounces per op and retries only the bounced ops; every acked call must
  // be reflected exactly once in the final values.
  ClusterConfig config;
  config.hosts = 4;
  ASSERT_TRUE(config.batch_state_ops);  // batched protocol is the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kCounters; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0)).ok());
  }
  RegisterBatchedIncrementAll(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  uint64_t acked_calls = 0;

  cluster.Run([&](Frontend& frontend) {
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},         {false, "host-1"}, {true, ""},
        {false, "host-4"},  {true, ""},        {false, "host-0"},
    };
    for (const auto& [add, name] : churn) {
      std::vector<uint64_t> batch_ids;
      for (int i = 0; i < 4; ++i) {
        auto id = frontend.Submit("inc_all", Bytes{});
        ASSERT_TRUE(id.ok());
        batch_ids.push_back(id.value());
      }

      if (add) {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        Status removed = cluster.RemoveHost(name);
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (uint64_t id : batch_ids) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0) << "batched increment refused mid-churn";
        acked_calls += 1;
      }
    }
  });

  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 6);
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 6u);

  // Every acked call incremented every counter exactly once — nothing lost,
  // nothing doubled, wherever each key's master ended up.
  for (int i = 0; i < kCounters; ++i) {
    EXPECT_EQ(ReadCounter(cluster, i), acked_calls) << CounterKey(i);
  }
}

constexpr int kFrozenKeys = 12;
constexpr size_t kFrozenBytes = 64;

std::string FrozenKey(int i) { return "frozen-" + std::to_string(i); }

// Registers "read_all": drops every local replica, then pulls all frozen
// keys through the GROUPED read path (one kGetBatch per master endpoint,
// per-op kWrongMaster retry underneath) and byte-checks each value against
// its seeded pattern. Distinct nonzero codes separate a refused prefetch
// from a stale or torn read.
void RegisterBatchedReadAll(FaasmCluster& cluster) {
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("read_all",
                                  [](InvocationContext& ctx) {
                                    std::vector<std::string> keys;
                                    for (int i = 0; i < kFrozenKeys; ++i) {
                                      keys.push_back(FrozenKey(i));
                                      ctx.state().Lookup(keys.back())->InvalidateReplica();
                                    }
                                    if (!ctx.state().Prefetch(keys).ok()) {
                                      return 2;
                                    }
                                    for (int i = 0; i < kFrozenKeys; ++i) {
                                      auto kv = ctx.state().Lookup(keys[i]);
                                      if (kv->Pull().ok() == false || kv->size() != kFrozenBytes) {
                                        return 3;
                                      }
                                      const uint8_t* bytes = kv->data();
                                      for (size_t b = 0; b < kFrozenBytes; ++b) {
                                        if (bytes[b] != uint8_t(i + 1)) {
                                          return 4;  // stale or torn read
                                        }
                                      }
                                    }
                                    return 0;
                                  })
                  .ok());
}

TEST(RebalanceTest, BatchedReadsSurviveHostChurnWithoutBadReads) {
  // The read-side churn harness: immutable values are prefetched via
  // kGetBatch groups while six membership changes migrate their masters
  // underneath. A grouped read racing a migration bounces per op and
  // retries against the new route; every acked call must have observed
  // every key's exact seeded bytes — zero stale or torn reads.
  ClusterConfig config;
  config.hosts = 4;
  ASSERT_TRUE(config.batch_state_reads);  // grouped reads are the default
  FaasmCluster cluster(config);
  for (int i = 0; i < kFrozenKeys; ++i) {
    ASSERT_TRUE(cluster.kvs().Set(FrozenKey(i), Bytes(kFrozenBytes, uint8_t(i + 1))).ok());
  }
  RegisterBatchedReadAll(cluster);

  const uint64_t epoch_before = cluster.shard_map().epoch();
  uint64_t acked_calls = 0;

  cluster.Run([&](Frontend& frontend) {
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""},         {false, "host-1"}, {true, ""},
        {false, "host-4"},  {true, ""},        {false, "host-0"},
    };
    for (const auto& [add, name] : churn) {
      std::vector<uint64_t> batch_ids;
      for (int i = 0; i < 4; ++i) {
        auto id = frontend.Submit("read_all", Bytes{});
        ASSERT_TRUE(id.ok());
        batch_ids.push_back(id.value());
      }

      if (add) {
        auto added = cluster.AddHost();
        ASSERT_TRUE(added.ok()) << added.status().ToString();
      } else {
        Status removed = cluster.RemoveHost(name);
        ASSERT_TRUE(removed.ok()) << removed.ToString();
      }

      for (uint64_t id : batch_ids) {
        auto code = frontend.Await(id);
        ASSERT_TRUE(code.ok()) << code.status().ToString();
        ASSERT_EQ(code.value(), 0) << "batched read failed mid-churn";
        acked_calls += 1;
      }
    }
  });

  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before + 6);
  EXPECT_GT(cluster.migration_stats().keys_moved, 0u);
  EXPECT_EQ(acked_calls, 24u);
}

TEST(RebalanceTest, LockHeldAcrossMigrationStillExcludes) {
  ClusterConfig config;
  config.hosts = 4;
  FaasmCluster cluster(config);

  // Pick a key that WILL move to the next host added ("host-4"): the
  // prospective assignment is a pure function of the endpoint set.
  const ShardAssignment before = cluster.shard_map().Snapshot();
  const ShardAssignment after = before.With(ShardMap::EndpointForHost("host-4"));
  std::string key;
  for (int i = 0; i < 100000 && key.empty(); ++i) {
    std::string probe = "lock-probe-" + std::to_string(i);
    if (before.MasterFor(probe) != after.MasterFor(probe)) {
      key = std::move(probe);
    }
  }
  ASSERT_FALSE(key.empty());
  ASSERT_TRUE(cluster.kvs().Set(key, Bytes{1, 2, 3}).ok());

  cluster.Run([&](Frontend&) {
    // host-0 takes the global write lock, the key migrates to the new
    // host's shard, and the lock must keep excluding host-1 afterwards.
    ASSERT_TRUE(cluster.host(0).kvs().TryLockWrite(key).value());

    auto added = cluster.AddHost();
    ASSERT_TRUE(added.ok());
    EXPECT_EQ(cluster.shard_map().MasterFor(key), ShardMap::EndpointForHost(added.value()));

    EXPECT_FALSE(cluster.host(1).kvs().TryLockWrite(key).value());
    EXPECT_FALSE(cluster.host(1).kvs().TryLockRead(key).value());
    // Ownership travelled with the key: the original holder unlocks against
    // the NEW master, then the second acquirer gets in.
    ASSERT_TRUE(cluster.host(0).kvs().UnlockWrite(key).ok());
    EXPECT_TRUE(cluster.host(1).kvs().TryLockWrite(key).value());
    ASSERT_TRUE(cluster.host(1).kvs().UnlockWrite(key).ok());

    // The value itself survived the move.
    EXPECT_EQ(cluster.host(2).kvs().Read(key).value(), (Bytes{1, 2, 3}));
  });
}

TEST(RebalanceTest, RemovedHostsShardEndsEmpty) {
  // After a removal every key the leaver mastered is readable through the
  // survivors — the leaver's shard keeps no data, and its live-map
  // ownership guard bounces any straggler op.
  ClusterConfig config;
  config.hosts = 3;
  FaasmCluster cluster(config);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(cluster.kvs().Set("seed-" + std::to_string(i), Bytes(128, 1)).ok());
  }
  cluster.Run([&](Frontend&) {
    ASSERT_TRUE(cluster.RemoveHost("host-2").ok());
    for (int i = 0; i < 32; ++i) {
      auto value = cluster.kvs().Get("seed-" + std::to_string(i));
      ASSERT_TRUE(value.ok()) << "seed-" << i << ": " << value.status().ToString();
      EXPECT_EQ(value.value().size(), 128u);
      EXPECT_NE(cluster.shard_map().MasterFor("seed-" + std::to_string(i)),
                ShardMap::EndpointForHost("host-2"));
    }
  });
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 1u);
}

}  // namespace
}  // namespace faasm
