// Clock abstraction. Runtime components never call std::chrono directly;
// they take a Clock& so the same code runs against wall-clock time (real
// deployments, micro-benchmarks) and against the deterministic virtual clock
// of the cluster simulator (macro experiments).
#ifndef FAASM_COMMON_CLOCK_H_
#define FAASM_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace faasm {

// Nanoseconds since an arbitrary epoch.
using TimeNs = int64_t;

constexpr TimeNs kMicrosecond = 1000;
constexpr TimeNs kMillisecond = 1000 * kMicrosecond;
constexpr TimeNs kSecond = 1000 * kMillisecond;

class Clock {
 public:
  virtual ~Clock() = default;

  // Current time in nanoseconds.
  virtual TimeNs Now() const = 0;

  // Block (really or virtually) for the given duration.
  virtual void SleepFor(TimeNs duration_ns) = 0;
};

// Monotonic wall-clock implementation.
class RealClock final : public Clock {
 public:
  TimeNs Now() const override;
  void SleepFor(TimeNs duration_ns) override;

  // Process-wide instance for call sites that have no injected clock.
  static RealClock& Instance();
};

// Scoped stopwatch measuring real elapsed nanoseconds, independent of any
// injected Clock (used to charge actually-executed compute to virtual time).
class Stopwatch {
 public:
  Stopwatch() { Reset(); }
  void Reset() { start_ = std::chrono::steady_clock::now(); }
  TimeNs ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(std::chrono::steady_clock::now() -
                                                                start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace faasm

#endif  // FAASM_COMMON_CLOCK_H_
