// InvocationContext: the language-level face of the Faaslet host interface
// (Table 2). Workload functions are written once against this interface and
// run unmodified on both platforms, exactly as the paper's evaluation does
// ("all experiments are implemented using the same code for both FAASM and
// Knative", §6.1):
//   - FAASM:   Faaslet implements it with the shared local tier, direct
//              memory sharing and Proto-Faaslet restores.
//   - Knative: ContainerContext implements it with a private per-container
//              tier, so every state access ships data from the global tier.
#ifndef FAASM_CORE_INVOCATION_CONTEXT_H_
#define FAASM_CORE_INVOCATION_CONTEXT_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "common/status.h"
#include "state/local_tier.h"

namespace faasm {

class InvocationContext {
 public:
  virtual ~InvocationContext() = default;

  // --- Calls (read_call_input / write_call_output / chain / await) ----------
  virtual const Bytes& Input() const = 0;
  virtual void WriteOutput(Bytes output) = 0;
  virtual Result<uint64_t> ChainCall(const std::string& function, Bytes input) = 0;
  virtual Result<int> AwaitCall(uint64_t call_id) = 0;
  virtual Result<Bytes> GetCallOutput(uint64_t call_id) = 0;

  // --- State -------------------------------------------------------------------
  // The tier this invocation sees. On FAASM this is the host-wide shared
  // local tier; on the container baseline it is private to the container.
  virtual LocalTier& state() = 0;

  // --- Environment ---------------------------------------------------------------
  virtual Clock& clock() = 0;
  virtual Rng& rng() = 0;

  // Charges `ns` of CPU work to this invocation under the host's fair-share
  // model (no-op outside the simulator). Workloads call this with measured
  // compute time so virtual-time experiments reflect real work.
  virtual void ChargeCompute(TimeNs ns) = 0;
};

// A function body implemented natively (stand-in for code the paper compiles
// to WebAssembly; see DESIGN.md substitutions). Returns the call's exit code.
using NativeFn = std::function<int(InvocationContext&)>;

// Convenience: chain `n` calls of `function` with per-index inputs and await
// them all — the chain/await loop pattern of Listing 1.
Result<int> ChainAndAwaitAll(InvocationContext& ctx, const std::string& function,
                             const std::vector<Bytes>& inputs);

}  // namespace faasm

#endif  // FAASM_CORE_INVOCATION_CONTEXT_H_
