// Shared helpers for wasm tests: build a single-function module around an
// emitted body and run it through the full binary pipeline.
#ifndef FAASM_TESTS_WASM_WASM_TEST_UTIL_H_
#define FAASM_TESTS_WASM_WASM_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/instance.h"

namespace faasm::wasm {

inline std::unique_ptr<Instance> InstantiateBuilder(ModuleBuilder& b,
                                                    ImportResolver* resolver = nullptr) {
  auto decoded = DecodeModule(b.Build());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto compiled = CompileModule(std::move(decoded).value());
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  auto instance = Instance::Create(compiled.value(), resolver);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

// Builds a module with one exported function "f" of the given signature whose
// body is produced by `emit`, and returns the instance.
inline std::unique_ptr<Instance> SingleFunction(const std::vector<ValType>& params,
                                                const std::vector<ValType>& results,
                                                const std::function<void(FunctionBuilder&)>& emit,
                                                bool with_memory = false) {
  ModuleBuilder b;
  if (with_memory) {
    b.AddMemory(1, 4);
  }
  auto& f = b.AddFunction("f", params, results);
  emit(f);
  return InstantiateBuilder(b);
}

inline Result<Value> RunUnary(Instance& instance, Value arg) {
  auto out = instance.CallExport("f", {arg});
  if (!out.ok()) {
    return out.status();
  }
  return out.value()[0];
}

inline Result<Value> RunBinary(Instance& instance, Value a, Value b) {
  auto out = instance.CallExport("f", {a, b});
  if (!out.ok()) {
    return out.status();
  }
  return out.value()[0];
}

}  // namespace faasm::wasm

#endif  // FAASM_TESTS_WASM_WASM_TEST_UTIL_H_
