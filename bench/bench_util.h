// Shared helpers for the benchmark harnesses that regenerate the paper's
// tables and figures.
#ifndef FAASM_BENCH_BENCH_UTIL_H_
#define FAASM_BENCH_BENCH_UTIL_H_

#include <cstdio>

#include "baseline/container_model.h"

namespace faasm {

inline void PrintHeader(const char* title) {
  std::printf("\n==================================================================\n");
  std::printf("%s\n", title);
  std::printf("==================================================================\n");
}

// Every benchmark that uses the container baseline prints its calibration so
// the substitution (see DESIGN.md) is explicit in the output.
inline void PrintContainerCalibration(const ContainerModel& model) {
  std::printf("[container model calibrated from the paper's measurements:\n");
  std::printf("  cold start %.1f s, python cold start %.1f s, footprint %zu MB,\n",
              model.cold_start_ns / 1e9, model.python_cold_start_ns / 1e9,
              model.base_footprint_bytes / (1024 * 1024));
  std::printf("  http overhead %.1f ms, daemon parallelism %d]\n",
              model.http_overhead_ns / 1e6, model.max_concurrent_cold_starts);
}

}  // namespace faasm

#endif  // FAASM_BENCH_BENCH_UTIL_H_
