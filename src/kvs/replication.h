// Per-shard primary-backup replication: the migration stream promoted into a
// standing replication substrate (the generalisation of kvs/migration.h).
//
// Each host's primary shard keeps R-1 live BACKUP copies on the next R-1
// hosts clockwise from it in sorted endpoint order (BackupsFor). Three data
// paths keep the backups current:
//
//   - FORWARDING: every mutating op a primary applies is handed to its
//     ShardReplicator through KvStore::SetUpdateHook and shipped to each
//     backup's ReplicaServer ("rep:<host>") as a kBatch of replica-dialect
//     sub-ops (kvs/batch_codec.h) — the same framed protocol the public
//     batch path rides. In SYNC mode the ship happens on the mutating
//     caller's thread before the op returns, so an acked op is on every
//     live backup. In ASYNC mode ops queue and ship once max_lag_ops
//     accumulate: the bounded-lag ablation, which may lose the queue on a
//     crash.
//   - CATCH-UP (Reconcile): after any membership change, each primary
//     streams the keys its backups are missing — the migration stream
//     (kMigrateInstall + KeyExport) aimed at a replica endpoint. Lock state
//     and SET members travel with the key, exactly as they do in migration.
//   - FAILOVER: when a host dies abruptly, every key it mastered is
//     promoted from a surviving backup copy into the key's post-failover
//     master, installs landing BEFORE the ShardMap epoch flips
//     (migration's install-before-flip guarantee, inherited), so clients
//     recover through the ordinary kWrongMaster/kUnavailable bounce and
//     the (key, epoch)-keyed read cache invalidates implicitly. Two
//     callers drive it: the oracle (FaasmCluster::KillHost — the test
//     harness says who died, kept for deterministic tests) and the
//     heartbeat failure detector (runtime/failure_detector.h — CrashHost
//     pulls the plug and the alive → suspect → probe → dead machine
//     notices on its own); both funnel into the same fence → quiesce →
//     Failover → Reconcile pipeline. FenceHost additionally seals a dead
//     host's rep: mirror — its fenced ReplicaShard drops its copies so a
//     racing second failover can never promote from memory that no
//     longer exists, and Reconcile re-homes the backups it held.
//
// DUPLICATE FILTERING. Every forwarded op carries the primary's apply
// sequence (captured under the op's shard mutex, so per-key seq order equals
// apply order), and a streamed KeyExport carries the sequence its snapshot
// folded in. A ReplicaShard keeps a per-key floor — the highest sequence it
// has applied or installed — and drops anything at or below it: a forwarded
// op that raced the snapshot that already contains it can never double-apply
// (the paired Append/lock hazard of naive resend).
//
// ORDERING CONTRACT. Per key, forwards apply in primary-apply order for any
// lock-serialised or single-writer workload (the state layer's push
// discipline). Two UNSERIALISED writers racing the same key may see their
// forwards arrive reordered; the floor then keeps the newest write and the
// next Reconcile converges the copies — the last-writer-wins relaxation
// replicated KVS tiers (Anna, Cloudburst) make for exactly this case.
//
// REPLICA READS (ReplicaShard::ReadValue — the middle tier of the client's
// cache → replica → master read path, kvs/kvs_client.h). A backup copy may
// serve a read only when it is PROVABLY CURRENT, decided by an anchor-only
// epoch stamp: each key carries the shard-map epoch at which a driver-side
// flow (Install from a snapshot, AnchorFloor from a content match — both
// serialised with membership changes) last certified the copy, and a read is
// served only while that stamp equals the LIVE map epoch. Forwarded ops keep
// a certified copy exact (between the anchor and the next membership change
// the key's master — hence its sequence space — cannot change, and in sync
// mode every acked write is applied here before its ack), but they never
// re-certify: any epoch flip invalidates every stamp at once, exactly like
// the (key, epoch)-keyed read cache, and the Reconcile that follows every
// membership change re-certifies under the same serialisation. Fenced
// replicas answer kUnavailable (crash evidence for the suspicion hook); in
// ASYNC mode the stamp alone is not enough — the client additionally proves
// per-key floor >= primary KeySeq before trusting a lagging copy.
#ifndef FAASM_KVS_REPLICATION_H_
#define FAASM_KVS_REPLICATION_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/stats.h"
#include "kvs/kv_store.h"
#include "kvs/router.h"
#include "net/network.h"

namespace faasm {

struct ReplicationConfig {
  // Copies per shard, primary included. 1 = no replication (today's
  // behaviour, byte-for-byte: no hooks fire, no replica endpoints exist).
  int factor = 1;
  // Sync: a mutating op acks only after every live backup applied its
  // forward. Async: forwards queue per primary and ship every max_lag_ops.
  bool sync = true;
  int max_lag_ops = 32;
  // Async mode: the advertised bound on how far (in virtual time) a backup
  // copy may lag its primary. A replica read is policy-legal only when the
  // read's ReadOptions::max_staleness covers this bound; the per-key
  // floor-vs-KeySeq probe then proves actual freshness. Ignored in sync
  // mode (an acked write is on every live backup before its ack).
  TimeNs async_lag_bound_ns = 5 * kMillisecond;
};

// BackupsFor (the R-1 clockwise backup endpoints of a primary) lives in
// kvs/router.h with the rest of holder resolution; re-exported here via that
// include for the replication callers that grew up with it.

// Replica-channel endpoint of `host` ("rep:<host>"), beside its primary
// shard endpoint "kvs:<host>".
std::string ReplicaEndpointForHost(const std::string& host);

// Cumulative substrate counters (bench gates and tests).
struct ReplicationStats {
  Counter forwarded_ops;      // replica-dialect sub-ops shipped
  Counter forward_rpcs;       // kBatch RPCs carrying them
  Counter dropped_forward_ops;  // ops whose ship failed (dead backup)
  Counter skipped_ops;        // duplicates the floor filter dropped
  Counter catchup_keys;       // keys streamed by Reconcile
  Counter catchup_bytes;
  Counter replica_gc_keys;    // stale replica copies reclaimed
  Counter failovers;
  Counter promoted_keys;
  Counter lost_keys;          // no surviving copy (R=1, or every backup dead)
  Counter async_dropped_ops;  // queued-not-shipped ops lost to a crash
  // Promotions parked for later: the key's post-failover master was itself
  // unreachable (a double crash, recovery pending), so the surviving copy
  // stays on its replica until THAT master's failover promotes it.
  Counter deferred_promotions;
};

// One failover's outcome (KillHost returns it; the cluster accumulates).
struct FailoverStats {
  uint64_t promoted_keys = 0;
  uint64_t lost_keys = 0;
  uint64_t bytes_streamed = 0;
  uint64_t async_dropped_ops = 0;
  TimeNs duration_ns = 0;
  uint64_t epoch = 0;  // map epoch after the flip

  FailoverStats& operator+=(const FailoverStats& other) {
    promoted_keys += other.promoted_keys;
    lost_keys += other.lost_keys;
    bytes_streamed += other.bytes_streamed;
    async_dropped_ops += other.async_dropped_ops;
    duration_ns += other.duration_ns;
    epoch = other.epoch > epoch ? other.epoch : epoch;
    return *this;
  }
};

// One host's backup store: the KvStore holding every key this host backs up
// for OTHER primaries, plus the per-key duplicate-filter floor. The store
// has no ownership guard (it deliberately holds keys the map says belong
// elsewhere) and no update hook (backups never forward).
class ReplicaShard {
 public:
  // `map` keys replica-read certification to the live epoch; a map-less
  // shard (unit tests) certifies against the constant epoch 0.
  ReplicaShard() = default;
  explicit ReplicaShard(const ShardMap* map) : map_(map) {}

  KvStore* store() { return &store_; }
  const KvStore* store() const { return &store_; }

  // Applies forwarded ops in order, dropping any whose seq is at or below
  // the key's floor (already folded into an installed snapshot, or an older
  // racing write). Applied ops raise the floor to their seq. Returns one
  // result per op, index-aligned; dropped duplicates answer Ok. Forwards
  // keep a certified copy exact but never (re-)certify it for reads — only
  // the membership-serialised Install/AnchorFloor flows stamp epochs.
  std::vector<KvsBatchResult> ApplyForwarded(const std::vector<KvsBatchOp>& ops);

  // Installs a streamed snapshot, re-anchors the floor to its seq, and
  // certifies the copy for replica reads at `synced_epoch` (the Install
  // overload: the live map epoch — correct for network installs, whose
  // senders hold the membership lock). With `only_if_newer` (the in-process
  // mirror path) a snapshot older than the floor is skipped instead of
  // regressing state a forward already applied — and the skip does NOT
  // certify; catch-up and failover installs force, because they re-anchor
  // the floor across a primary change (a NEW sequence space).
  void Install(const std::string& key, const KeyExport& record, bool only_if_newer = false);
  void InstallAt(const std::string& key, const KeyExport& record, bool only_if_newer,
                 uint64_t synced_epoch);
  // Re-anchors the floor without touching data (Reconcile, on content match:
  // the primary changed but the bytes did not) and certifies the copy at
  // `synced_epoch` (the AnchorFloor overload: the live map epoch).
  void AnchorFloor(const std::string& key, uint64_t seq);
  void AnchorFloorAt(const std::string& key, uint64_t seq, uint64_t synced_epoch);
  void Erase(const std::string& key);
  void Clear();

  // The replica-read serving point (tier two of cache → replica → master).
  // Serves the requested window of `key`'s value from this backup copy —
  // `offset`/`len` follow ReadOptions exactly ({0, kWholeValue} = the whole
  // value, anything else a ranged read) — iff the copy is provably current:
  //   - fenced            → kUnavailable (this host failed over; callers
  //                         feed the suspicion hook and fall through);
  //   - not certified, or certified at a stale epoch → kFailedPrecondition
  //                         (membership moved under the copy; fall through
  //                         to the master, Reconcile re-certifies);
  //   - certified current → the store's own answer, NotFound included (the
  //                         copy is exact, so "no value" is the truth).
  // In async mode callers must ALSO run the freshness probe (FloorSeq vs
  // the primary's KeySeq) before trusting the answer; the stamp only proves
  // the copy tracks the right sequence space.
  Result<Bytes> ReadValue(const std::string& key, uint64_t offset, uint64_t len);

  // Highest primary apply-seq folded into this copy of `key` (0 = none):
  // the async freshness probe's replica half.
  uint64_t FloorSeq(const std::string& key) const;

  // Reads ReadValue served (the replica-tier twin of KvsServer's
  // read_rpc_count; every one of these is a read RPC that never happened).
  uint64_t replica_read_count() const { return replica_reads_.value(); }

  // Crash fence — the replica-side twin of the dead PRIMARY's migration
  // filter (FaasmCluster::HandleConfirmedDeath). The corpse's mirror store
  // holds backups it kept for OTHER shards; fencing drops them and rejects
  // everything after — forwards answer kUnavailable, installs and floor
  // anchors no-op — so a zombie's in-process mirror can never land state on
  // a host the map no longer trusts, and a later double-crash can never
  // promote from a corpse. Reconcile re-homes the dropped backups onto the
  // post-failover backup set. Unfence() re-arms a re-added host name.
  void Fence();
  void Unfence();
  bool fenced() const;

  uint64_t skipped_op_count() const { return skipped_ops_.value(); }

 private:
  // Per-key replication metadata: the duplicate-filter floor plus the
  // replica-read certification stamp (see the header comment's REPLICA READS
  // contract — `synced` epoch-stamps are written ONLY by Install/AnchorFloor,
  // never by forwards).
  struct KeyMeta {
    uint64_t floor = 0;
    uint64_t synced_epoch = 0;
    bool synced = false;
  };

  // The live map epoch certification compares against (0 without a map).
  uint64_t CurrentEpoch() const { return map_ == nullptr ? 0 : map_->epoch(); }

  const ShardMap* map_ = nullptr;
  KvStore store_;
  // Serialises meta reads/updates against installs; the store has its own
  // internal locking.
  mutable std::mutex mutex_;
  std::map<std::string, KeyMeta> meta_;
  bool fenced_ = false;
  Counter skipped_ops_;
  Counter replica_reads_;
};

// Serves one host's ReplicaShard on "rep:<host>": kBatch carries replica-
// dialect forwards, kMigrateInstall carries catch-up snapshots. Separate
// from the host's KvsServer so backup traffic can never be mistaken for
// (or bounced by) the primary protocol's ownership checks.
class ReplicaServer {
 public:
  ReplicaServer(ReplicaShard* shard, InProcNetwork* network, std::string endpoint);
  ~ReplicaServer();

  const std::string& endpoint() const { return endpoint_; }
  // Forward kBatch RPCs this replica answered (tests bound the forwarded-op
  // overhead with this, the write-side twin of KvsServer::read_rpc_count).
  uint64_t forward_rpc_count() const { return forward_rpcs_.value(); }
  uint64_t forwarded_op_count() const { return forwarded_ops_.value(); }
  // Reads the served shard answered in-process (ablation accounting: the
  // read-side split between the serving tiers lives beside the RPC
  // counters it offsets).
  uint64_t replica_read_count() const { return shard_->replica_read_count(); }

 private:
  Bytes Handle(const Bytes& request);

  ReplicaShard* shard_;
  InProcNetwork* network_;
  std::string endpoint_;
  Counter forward_rpcs_;
  Counter forwarded_ops_;
};

// One primary's forwarding half: the KvStore update-hook target. Encodes
// applied ops in the replica dialect and ships them — synchronously (sync
// mode) or once max_lag_ops queue up (async) — to each current backup's
// replica endpoint, resolved against the live map at ship time.
class ShardReplicator {
 public:
  ShardReplicator(InProcNetwork* network, const ShardMap* map, std::string primary_endpoint,
                  const ReplicationConfig* config, ReplicationStats* stats);

  // The update hook body. Runs on the mutating caller's thread, outside
  // every store shard mutex; in sync mode it returns only after every live
  // backup applied (which is what makes an ack cover the backups).
  void OnApplied(const std::vector<KvStore::ForwardedOp>& ops);

  // Ships whatever the async queue holds (Reconcile barrier; no-op in sync
  // mode). Must run on a clock-registered thread.
  void Flush();
  // Discards the queue (the owning host crashed); returns the ops lost.
  size_t DropQueue();
  size_t queued_op_count() const;

 private:
  void Ship(std::vector<Bytes> parts, size_t op_count);
  std::vector<std::string> BackupReplicaEndpoints() const;

  InProcNetwork* network_;
  const ShardMap* map_;
  std::string primary_endpoint_;
  const ReplicationConfig* config_;
  ReplicationStats* stats_;

  mutable std::mutex queue_mutex_;
  std::vector<Bytes> queue_;  // async mode: encoded, unshipped forwards
  size_t queued_ops_ = 0;
};

// The cluster-side orchestrator: owns every host's ReplicaShard and
// ShardReplicator, wires primaries' update hooks, and runs the catch-up,
// mirror and failover flows. All membership-changing entry points
// (Reconcile, Failover) must be called from the driver activity, like the
// migration flows they generalise; AttachHost/MirrorKey may run before the
// cluster serves traffic.
class ReplicationManager {
 public:
  ReplicationManager(InProcNetwork* network, ShardMap* map,
                     const std::map<std::string, KvStore*>* primary_stores,
                     ReplicationConfig config);

  // Creates (idempotently) `host`'s replica shard + replicator and installs
  // the forwarding hook on its primary store. Call before the host serves.
  void AttachHost(const std::string& host, KvStore* primary);
  ReplicaShard* ReplicaForHost(const std::string& host);
  const ReplicaShard* ReplicaForHost(const std::string& host) const;

  // Fences `host`'s replica shard (see ReplicaShard::Fence). Part of the
  // crash path: the cluster fences BOTH of a dead host's stores — primary
  // (migration filter) and mirror (this) — before quiescing and failing
  // over, so neither side of the corpse can absorb or serve state again.
  void FenceHost(const std::string& host);

  // In-process mirror of one key's current footprint onto its backups
  // (seeding writes from ShardedKvs: no network, no clock — safe from
  // unregistered threads).
  void MirrorKey(const std::string& key);

  // Converges every backup with its primary: flushes async queues, streams
  // keys whose content differs (freezing each key across its export, so no
  // forward races the snapshot), re-anchors floors across primary changes,
  // and reclaims replica copies this epoch no longer assigns. Call after
  // every membership change.
  void Reconcile();

  // Promotes every key `dead_endpoint` mastered from a surviving backup
  // copy into the key's post-failover master (installs BEFORE the epoch
  // flips), counts the keys with no surviving copy, then flips the map.
  // The caller must have fenced and quiesced the dead store first.
  FailoverStats Failover(const std::string& dead_endpoint);

  void FlushAll();

  const ReplicationConfig& config() const { return config_; }
  const ReplicationStats& stats() const { return stats_; }

 private:
  struct HostState {
    std::unique_ptr<ReplicaShard> replica;
    std::unique_ptr<ReplicaServer> server;
    std::unique_ptr<ShardReplicator> replicator;
  };

  KvStore* PrimaryStoreAt(const std::string& endpoint) const;
  // Streams one snapshot over the interconnect as a kMigrateInstall aimed at
  // `to` (a replica endpoint, or a primary endpoint during promotion).
  // Returns the request size for byte accounting.
  Result<uint64_t> StreamInstall(const std::string& from, const std::string& to,
                                 const std::string& key, const KeyExport& record);

  InProcNetwork* network_;
  ShardMap* map_;
  const std::map<std::string, KvStore*>* primary_stores_;  // endpoint -> shard
  ReplicationConfig config_;
  ReplicationStats stats_;
  std::map<std::string, HostState> hosts_;  // host name -> state
};

}  // namespace faasm

#endif  // FAASM_KVS_REPLICATION_H_
