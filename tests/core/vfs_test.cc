#include "core/vfs.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(VfsTest, ReadGlobalFile) {
  GlobalFileStore global;
  global.Put("/lib/model.bin", Bytes{1, 2, 3, 4});
  VirtualFilesystem vfs(&global);

  auto fd = vfs.Open("/lib/model.bin", VirtualFilesystem::kOpenRead);
  ASSERT_TRUE(fd.ok());
  uint8_t buffer[8] = {};
  EXPECT_EQ(vfs.Read(fd.value(), buffer, 2).value(), 2u);
  EXPECT_EQ(buffer[0], 1);
  EXPECT_EQ(vfs.Read(fd.value(), buffer, 8).value(), 2u);  // remainder
  EXPECT_EQ(vfs.Read(fd.value(), buffer, 8).value(), 0u);  // EOF
  ASSERT_TRUE(vfs.Close(fd.value()).ok());
}

TEST(VfsTest, MissingFileFails) {
  GlobalFileStore global;
  VirtualFilesystem vfs(&global);
  EXPECT_EQ(vfs.Open("/nope", VirtualFilesystem::kOpenRead).status().code(),
            StatusCode::kNotFound);
}

TEST(VfsTest, WriteLocalOverlayShadowsGlobal) {
  GlobalFileStore global;
  global.Put("/data.txt", BytesFromString("global"));
  VirtualFilesystem vfs(&global);

  // Writes land in the overlay, not the global store.
  auto wfd = vfs.Open("/data.txt", VirtualFilesystem::kOpenWrite | VirtualFilesystem::kOpenCreate);
  ASSERT_TRUE(wfd.ok());
  const std::string text = "local";
  ASSERT_TRUE(vfs.Write(wfd.value(), reinterpret_cast<const uint8_t*>(text.data()), 5).ok());
  ASSERT_TRUE(vfs.Close(wfd.value()).ok());

  auto rfd = vfs.Open("/data.txt", VirtualFilesystem::kOpenRead);
  ASSERT_TRUE(rfd.ok());
  uint8_t buffer[16] = {};
  EXPECT_EQ(vfs.Read(rfd.value(), buffer, 16).value(), 5u);
  EXPECT_EQ(std::string(buffer, buffer + 5), "local");
  // Global store untouched (read-global, write-local).
  EXPECT_EQ(StringFromBytes(global.Get("/data.txt").value()), "global");
}

TEST(VfsTest, WriteToReadOnlyFdRejected) {
  GlobalFileStore global;
  global.Put("/f", Bytes{1});
  VirtualFilesystem vfs(&global);
  auto fd = vfs.Open("/f", VirtualFilesystem::kOpenRead);
  ASSERT_TRUE(fd.ok());
  uint8_t byte = 0;
  EXPECT_EQ(vfs.Write(fd.value(), &byte, 1).status().code(), StatusCode::kPermissionDenied);
}

TEST(VfsTest, FdsAreCapabilities) {
  GlobalFileStore global;
  global.Put("/f", Bytes{1});
  VirtualFilesystem vfs(&global);
  uint8_t buffer;
  // Unopened fd values are unusable (unforgeable handles).
  EXPECT_FALSE(vfs.Read(7, &buffer, 1).ok());
  EXPECT_FALSE(vfs.Close(99).ok());
  EXPECT_FALSE(vfs.Dup(42).ok());
}

TEST(VfsTest, DupSharesPathButNotCursorState) {
  GlobalFileStore global;
  global.Put("/f", Bytes{10, 20, 30});
  VirtualFilesystem vfs(&global);
  auto fd = vfs.Open("/f", VirtualFilesystem::kOpenRead);
  ASSERT_TRUE(fd.ok());
  uint8_t buffer;
  ASSERT_TRUE(vfs.Read(fd.value(), &buffer, 1).ok());
  auto dup_fd = vfs.Dup(fd.value());
  ASSERT_TRUE(dup_fd.ok());
  EXPECT_NE(dup_fd.value(), fd.value());
  // The duplicate starts from the duplicated cursor position.
  ASSERT_TRUE(vfs.Read(dup_fd.value(), &buffer, 1).ok());
  EXPECT_EQ(buffer, 20);
}

TEST(VfsTest, SeekRepositionsCursor) {
  GlobalFileStore global;
  global.Put("/f", Bytes{10, 20, 30});
  VirtualFilesystem vfs(&global);
  auto fd = vfs.Open("/f", VirtualFilesystem::kOpenRead);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(vfs.Seek(fd.value(), 2).ok());
  uint8_t buffer;
  ASSERT_TRUE(vfs.Read(fd.value(), &buffer, 1).ok());
  EXPECT_EQ(buffer, 30);
}

TEST(VfsTest, StatReportsSizeAndWritability) {
  GlobalFileStore global;
  global.Put("/g", Bytes(100));
  VirtualFilesystem vfs(&global);
  auto stat = vfs.StatPath("/g");
  ASSERT_TRUE(stat.ok());
  EXPECT_EQ(stat.value().size, 100u);
  EXPECT_FALSE(stat.value().writable);
  EXPECT_FALSE(vfs.StatPath("/missing").ok());
}

TEST(VfsTest, ResetClearsOverlayAndFds) {
  GlobalFileStore global;
  global.Put("/f", Bytes{1});
  VirtualFilesystem vfs(&global);
  auto wfd = vfs.Open("/tmp/x", VirtualFilesystem::kOpenWrite | VirtualFilesystem::kOpenCreate);
  ASSERT_TRUE(wfd.ok());
  EXPECT_EQ(vfs.open_fd_count(), 1u);
  vfs.Reset();
  EXPECT_EQ(vfs.open_fd_count(), 0u);
  EXPECT_FALSE(vfs.StatPath("/tmp/x").ok());  // overlay gone
  EXPECT_TRUE(vfs.StatPath("/f").ok());       // global untouched
}

}  // namespace
}  // namespace faasm
