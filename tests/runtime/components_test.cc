// Unit tests for the runtime's bookkeeping components: call lifecycle,
// billable-memory accounting, function registry semantics.
#include <gtest/gtest.h>

#include "runtime/call_table.h"
#include "runtime/memory_accountant.h"
#include "runtime/registry.h"
#include "sim/sim_clock.h"

namespace faasm {
namespace {

TEST(CallTableTest, LifecycleTimestamps) {
  SimExecutor executor;
  CallTable table(&executor.clock());
  uint64_t id = 0;
  executor.Spawn([&] {
    id = table.Create("fn", Bytes{1, 2});
    EXPECT_FALSE(table.IsFinished(id));
    executor.clock().SleepFor(5 * kMillisecond);
    ASSERT_TRUE(table.MarkRunning(id, "host-0", true).ok());
    executor.clock().SleepFor(10 * kMillisecond);
    ASSERT_TRUE(table.Complete(id, 0, Bytes{9}).ok());
  });
  executor.JoinAll();

  auto record = table.Get(id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, CallState::kDone);
  EXPECT_TRUE(record.value().cold_start);
  EXPECT_EQ(record.value().executed_on, "host-0");
  EXPECT_EQ(record.value().started_at - record.value().submitted_at, 5 * kMillisecond);
  EXPECT_EQ(record.value().finished_at - record.value().started_at, 10 * kMillisecond);
  EXPECT_EQ(table.Output(id).value(), (Bytes{9}));
}

TEST(CallTableTest, TakeInputConsumesOnce) {
  SimExecutor executor;
  CallTable table(&executor.clock());
  const uint64_t id = table.Create("fn", Bytes{1, 2, 3});
  EXPECT_EQ(table.TakeInput(id).value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(table.TakeInput(id).value().empty());  // moved out
}

TEST(CallTableTest, FailureRecorded) {
  SimExecutor executor;
  CallTable table(&executor.clock());
  const uint64_t id = table.Create("fn", {});
  ASSERT_TRUE(table.Fail(id, "exploded").ok());
  EXPECT_TRUE(table.IsFinished(id));
  auto record = table.Get(id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record.value().state, CallState::kFailed);
  EXPECT_EQ(record.value().error, "exploded");
  // Output of a failed call is a precondition error, not garbage.
  EXPECT_EQ(table.Output(id).status().code(), StatusCode::kFailedPrecondition);
}

TEST(CallTableTest, UnknownIdsRejected) {
  SimExecutor executor;
  CallTable table(&executor.clock());
  EXPECT_FALSE(table.MarkRunning(42, "h", false).ok());
  EXPECT_FALSE(table.Complete(42, 0, {}).ok());
  EXPECT_FALSE(table.Fail(42, "x").ok());
  EXPECT_FALSE(table.Get(42).ok());
  EXPECT_FALSE(table.IsFinished(42));
}

TEST(CallTableTest, FinishedRecordsAndColdCounts) {
  SimExecutor executor;
  CallTable table(&executor.clock());
  const uint64_t a = table.Create("fn", {});
  const uint64_t b = table.Create("fn", {});
  const uint64_t c = table.Create("fn", {});
  (void)table.MarkRunning(a, "h", true);
  (void)table.Complete(a, 0, {});
  (void)table.MarkRunning(b, "h", false);
  (void)table.Fail(b, "x");
  (void)c;  // still pending
  EXPECT_EQ(table.FinishedRecords().size(), 2u);
  EXPECT_EQ(table.cold_start_count(), 1u);
}

TEST(MemoryAccountantTest, CapacityEnforced) {
  SimExecutor executor;
  MemoryAccountant accountant(&executor.clock(), 1000);
  EXPECT_TRUE(accountant.Allocate(600).ok());
  EXPECT_TRUE(accountant.Allocate(400).ok());
  EXPECT_EQ(accountant.Allocate(1).code(), StatusCode::kResourceExhausted);
  accountant.Release(500);
  EXPECT_TRUE(accountant.Allocate(100).ok());
  EXPECT_EQ(accountant.current_bytes(), 600u);
  EXPECT_EQ(accountant.peak_bytes(), 1000u);
}

TEST(MemoryAccountantTest, GbSecondsIntegratesOverVirtualTime) {
  SimExecutor executor;
  MemoryAccountant accountant(&executor.clock(), size_t{4} * 1024 * 1024 * 1024);
  executor.Spawn([&] {
    ASSERT_TRUE(accountant.Allocate(size_t{2} * 1024 * 1024 * 1024).ok());  // 2 GB
    executor.clock().SleepFor(3 * kSecond);
    accountant.Release(size_t{2} * 1024 * 1024 * 1024);
    executor.clock().SleepFor(10 * kSecond);  // idle time contributes nothing
  });
  executor.JoinAll();
  EXPECT_NEAR(accountant.GbSeconds(), 6.0, 0.01);  // 2 GB x 3 s
}

TEST(MemoryAccountantTest, ReleaseClampsAtZero) {
  SimExecutor executor;
  MemoryAccountant accountant(&executor.clock(), 1000);
  ASSERT_TRUE(accountant.Allocate(100).ok());
  accountant.Release(500);  // over-release must not underflow
  EXPECT_EQ(accountant.current_bytes(), 0u);
}

TEST(RegistryTest, DuplicateNamesRejected) {
  FunctionRegistry registry;
  ASSERT_TRUE(registry.RegisterNative("fn", [](InvocationContext&) { return 0; }).ok());
  EXPECT_EQ(registry.RegisterNative("fn", [](InvocationContext&) { return 1; }).code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(RegistryTest, LookupReturnsSpecCopy) {
  FunctionRegistry registry;
  FunctionOptions options;
  options.max_memory_pages = 77;
  options.simulated_init_ns = 5 * kMillisecond;
  ASSERT_TRUE(
      registry.RegisterNative("fn", [](InvocationContext&) { return 0; }, options).ok());
  auto spec = registry.Lookup("fn");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec.value().max_memory_pages, 77u);
  EXPECT_EQ(spec.value().simulated_init_ns, 5 * kMillisecond);
  EXPECT_FALSE(registry.Lookup("other").ok());
  EXPECT_TRUE(registry.Contains("fn"));
  EXPECT_FALSE(registry.Contains("other"));
}

}  // namespace
}  // namespace faasm
