// MemorySnapshot: the byte image behind a Proto-Faaslet (§5.2). The snapshot
// lives in a memfd so restores can be zero-copy: a MAP_PRIVATE mapping of the
// snapshot gives the new Faaslet copy-on-write pages that alias the snapshot
// until first write. Snapshots are OS-thread independent and serialisable, so
// the runtime can ship them across (simulated) hosts.
#ifndef FAASM_MEM_SNAPSHOT_H_
#define FAASM_MEM_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "mem/linear_memory.h"

namespace faasm {

class MemorySnapshot {
 public:
  // Captures `len` bytes from `src` into a new snapshot memfd.
  static Result<std::unique_ptr<MemorySnapshot>> Capture(const std::string& name,
                                                         const uint8_t* src, size_t len);

  // Rebuilds a snapshot from serialised bytes (cross-host restore).
  static Result<std::unique_ptr<MemorySnapshot>> Deserialize(const std::string& name,
                                                             const Bytes& bytes);

  ~MemorySnapshot();

  MemorySnapshot(const MemorySnapshot&) = delete;
  MemorySnapshot& operator=(const MemorySnapshot&) = delete;

  size_t size() const { return size_; }
  int fd() const { return fd_; }

  // Copy-on-write restore into `memory` (preferred, sub-millisecond).
  Status RestoreInto(LinearMemory& memory) const;

  // Eager memcpy restore, kept for the ablation benchmark.
  Status RestoreIntoEager(LinearMemory& memory) const;

  // Delta restore: copies back only the pages `memory`'s dirty tracker saw
  // written since the last restore/capture. Valid only when the non-dirty
  // pages already match this snapshot (warm Faaslet resets).
  Status RestoreDirty(LinearMemory& memory) const;

  // Serialises the image so it can be stored in the global tier and restored
  // on another host.
  Bytes Serialize() const;

 private:
  MemorySnapshot(int fd, size_t size, const uint8_t* view)
      : fd_(fd), size_(size), view_(view) {}

  int fd_;
  size_t size_;
  const uint8_t* view_;  // read-only host view of the snapshot contents
};

}  // namespace faasm

#endif  // FAASM_MEM_SNAPSHOT_H_
