// Unit tests for the replication substrate (kvs/replication.h): backup
// placement, sync forwarding through the update hook, the per-key seq-floor
// duplicate filter (the double-Append hazard), forward RPC accounting
// against the new write_rpc_count() twin, the bounded-lag async queue, and
// Reconcile catch-up / GC.
#include "kvs/replication.h"

#include <gtest/gtest.h>

#include "kvs/batch_codec.h"
#include "kvs/kvs_client.h"
#include "net/network.h"

namespace faasm {
namespace {

// --- BackupsFor ----------------------------------------------------------------

std::set<std::string> Endpoints(int n) {
  std::set<std::string> endpoints;
  for (int i = 0; i < n; ++i) {
    endpoints.insert(ShardMap::EndpointForHost("host-" + std::to_string(i)));
  }
  return endpoints;
}

TEST(BackupsForTest, NextClockwiseDistinctExcludingPrimary) {
  const auto endpoints = Endpoints(4);  // kvs:host-0 .. kvs:host-3 (sorted)
  EXPECT_EQ(BackupsFor(endpoints, "kvs:host-0", 3),
            (std::vector<std::string>{"kvs:host-1", "kvs:host-2"}));
  EXPECT_EQ(BackupsFor(endpoints, "kvs:host-1", 2),
            (std::vector<std::string>{"kvs:host-2"}));
}

TEST(BackupsForTest, WrapsAroundTheSortedOrder) {
  const auto endpoints = Endpoints(3);
  EXPECT_EQ(BackupsFor(endpoints, "kvs:host-2", 3),
            (std::vector<std::string>{"kvs:host-0", "kvs:host-1"}));
}

TEST(BackupsForTest, FactorClampedToAvailableHosts) {
  const auto endpoints = Endpoints(2);
  // Asking for 5 copies of a 2-host cluster yields the one possible backup.
  EXPECT_EQ(BackupsFor(endpoints, "kvs:host-0", 5),
            (std::vector<std::string>{"kvs:host-1"}));
}

TEST(BackupsForTest, FactorOneMeansNoBackups) {
  EXPECT_TRUE(BackupsFor(Endpoints(4), "kvs:host-0", 1).empty());
}

TEST(BackupsForTest, PrimaryAbsentFromTheSetStillResolves) {
  // Mid-failover lookups resolve backups for a shard the map has already
  // dropped: the walk starts from where the primary WOULD sort.
  auto endpoints = Endpoints(4);
  endpoints.erase("kvs:host-1");
  EXPECT_EQ(BackupsFor(endpoints, "kvs:host-1", 2),
            (std::vector<std::string>{"kvs:host-2"}));
}

TEST(BackupsForTest, EveryHostComputesTheSamePlacement) {
  // Pure function of (endpoint set, primary, factor): recomputing is
  // coordination-free, like mastership itself.
  const auto endpoints = Endpoints(5);
  for (const std::string& primary : endpoints) {
    const auto once = BackupsFor(endpoints, primary, 3);
    EXPECT_EQ(once, BackupsFor(endpoints, primary, 3));
    EXPECT_EQ(once.size(), 2u);
    for (const std::string& backup : once) {
      EXPECT_NE(backup, primary);
      EXPECT_TRUE(endpoints.count(backup) > 0);
    }
  }
}

// --- The substrate -------------------------------------------------------------

constexpr int kHosts = 3;

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest() : network_(&clock_, NoLatency()) {
    for (int i = 0; i < kHosts; ++i) {
      const std::string name = "host-" + std::to_string(i);
      const std::string endpoint = ShardMap::EndpointForHost(name);
      stores_[endpoint] = &shards_[i];
      servers_.push_back(
          std::make_unique<KvsServer>(&shards_[i], &network_, endpoint, &map_));
      map_.AddShard(endpoint);
    }
  }

  void Attach(ReplicationManager& manager) {
    for (int i = 0; i < kHosts; ++i) {
      manager.AttachHost("host-" + std::to_string(i),
                         stores_[ShardMap::EndpointForHost("host-" + std::to_string(i))]);
    }
  }

  ReplicationConfig SyncConfig(int factor) {
    ReplicationConfig config;
    config.factor = factor;
    return config;
  }

  // A key mastered by `host`'s shard under the current map.
  std::string KeyMasteredBy(const std::string& host) {
    const std::string endpoint = ShardMap::EndpointForHost(host);
    for (int i = 0; i < 100000; ++i) {
      std::string probe = "probe-" + std::to_string(i);
      if (map_.MasterFor(probe) == endpoint) {
        return probe;
      }
    }
    ADD_FAILURE() << "no key mastered by " << host;
    return "";
  }

  KvStore* StoreOf(const std::string& host) {
    return stores_[ShardMap::EndpointForHost(host)];
  }

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore shards_[kHosts];
  std::map<std::string, KvStore*> stores_;
  std::vector<std::unique_ptr<KvsServer>> servers_;
  ShardMap map_;
};

TEST_F(ReplicationTest, SyncForwardPutsTheWriteOnEveryBackup) {
  ReplicationManager manager(&network_, &map_, &stores_, SyncConfig(3));
  Attach(manager);

  const std::string key = KeyMasteredBy("host-0");
  ASSERT_TRUE(StoreOf("host-0")->Set(key, Bytes{1, 2, 3}).ok());

  // R=3 over 3 hosts: both other hosts back the key up, synchronously.
  const auto backups =
      BackupsFor(map_.Snapshot().endpoints(), ShardMap::EndpointForHost("host-0"), 3);
  ASSERT_EQ(backups.size(), 2u);
  for (const std::string& backup : backups) {
    ReplicaShard* replica = manager.ReplicaForHost(ShardMap::HostForEndpoint(backup));
    ASSERT_NE(replica, nullptr);
    EXPECT_EQ(replica->store()->Get(key).value(), (Bytes{1, 2, 3}));
  }
  EXPECT_EQ(manager.stats().forwarded_ops.value(), 2u);  // one op, two backups
  EXPECT_EQ(manager.stats().forward_rpcs.value(), 2u);
  EXPECT_EQ(manager.stats().dropped_forward_ops.value(), 0u);
}

TEST_F(ReplicationTest, LockAndSetOpsForwardTooAndPublicBatchStillRejectsThem) {
  ReplicationManager manager(&network_, &map_, &stores_, SyncConfig(2));
  Attach(manager);

  const std::string key = KeyMasteredBy("host-0");
  ASSERT_TRUE(StoreOf("host-0")->TryLockWrite(key, "host-9").value());
  ASSERT_TRUE(StoreOf("host-0")->SetAdd(key + ":set", "member-a").value());

  const auto backups =
      BackupsFor(map_.Snapshot().endpoints(), ShardMap::EndpointForHost("host-0"), 2);
  ASSERT_EQ(backups.size(), 1u);
  ReplicaShard* replica = manager.ReplicaForHost(ShardMap::HostForEndpoint(backups[0]));
  ASSERT_NE(replica, nullptr);
  // Lock ownership is backup state: a promoted replica must keep excluding.
  EXPECT_FALSE(replica->store()->TryLockRead(key, "host-8").value());
  EXPECT_EQ(replica->store()->SetMembers(key + ":set"),
            (std::vector<std::string>{"member-a"}));

  // The replica dialect does NOT leak into the public batch protocol: a
  // public kBatch op still refuses lock sub-ops.
  KvsBatchOp op;
  op.op = KvsOp::kLockWrite;
  op.key = key;
  op.member = "host-8";
  Bytes encoded = EncodeBatchOp(op);
  auto decoded = DecodeBatchOp(encoded);
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ReplicationTest, SeqFloorDropsDuplicateAndStaleForwards) {
  ReplicaShard replica;
  KvsBatchOp append;
  append.op = KvsOp::kAppend;
  append.key = "log";
  append.bytes = Bytes{1, 2};

  std::vector<KvsBatchOp> ops;
  ops.push_back(append);
  ops.back().seq = 7;
  ASSERT_TRUE(replica.ApplyForwarded(ops)[0].status.ok());
  EXPECT_EQ(replica.store()->Get("log").value(), (Bytes{1, 2}));

  // The same forward resent (seq 7 again): dropped, NOT double-appended —
  // the hazard the floor exists for — and still answered Ok.
  EXPECT_TRUE(replica.ApplyForwarded(ops)[0].status.ok());
  EXPECT_EQ(replica.store()->Get("log").value(), (Bytes{1, 2}));
  EXPECT_EQ(replica.skipped_op_count(), 1u);

  // A STALE forward (seq 5 < floor 7) is dropped too; a fresh one applies.
  ops.back().seq = 5;
  EXPECT_TRUE(replica.ApplyForwarded(ops)[0].status.ok());
  ops.back().seq = 8;
  EXPECT_TRUE(replica.ApplyForwarded(ops)[0].status.ok());
  EXPECT_EQ(replica.store()->Get("log").value(), (Bytes{1, 2, 1, 2}));
  EXPECT_EQ(replica.skipped_op_count(), 2u);
}

TEST_F(ReplicationTest, InstallAnchorsTheFloorAcrossTheSnapshotSeq) {
  ReplicaShard replica;
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{9}).ok());
  const KeyExport record = primary.ExportKey("key");

  replica.Install("key", record);
  EXPECT_EQ(replica.store()->Get("key").value(), (Bytes{9}));

  // A forward the snapshot already folded in (seq <= snapshot seq) is a
  // duplicate; the next one is fresh.
  KvsBatchOp op;
  op.op = KvsOp::kAppend;
  op.key = "key";
  op.bytes = Bytes{5};
  op.seq = record.seq;
  std::vector<KvsBatchOp> ops{op};
  EXPECT_TRUE(replica.ApplyForwarded(ops)[0].status.ok());
  EXPECT_EQ(replica.store()->Get("key").value(), (Bytes{9}));  // dropped
  ops[0].seq = record.seq + 1;
  EXPECT_TRUE(replica.ApplyForwarded(ops)[0].status.ok());
  EXPECT_EQ(replica.store()->Get("key").value(), (Bytes{9, 5}));
}

TEST_F(ReplicationTest, OnlyIfNewerInstallNeverRegressesPastAForward) {
  // The in-process mirror path: a stale snapshot racing a newer forward
  // must not roll the replica back.
  ReplicaShard replica;
  KvStore primary;
  ASSERT_TRUE(primary.Set("key", Bytes{1}).ok());
  const KeyExport stale = primary.ExportKey("key");

  KvsBatchOp op;
  op.op = KvsOp::kSet;
  op.key = "key";
  op.bytes = Bytes{2};
  op.seq = stale.seq + 3;
  ASSERT_TRUE(replica.ApplyForwarded({op})[0].status.ok());

  replica.Install("key", stale, /*only_if_newer=*/true);
  EXPECT_EQ(replica.store()->Get("key").value(), (Bytes{2}));  // kept the forward

  // A FORCED install (catch-up/failover) re-anchors even downward: it is a
  // fresh seq space.
  replica.Install("key", stale);
  EXPECT_EQ(replica.store()->Get("key").value(), (Bytes{1}));
}

TEST_F(ReplicationTest, ForwardRpcAccountingMatchesWriteRpcTwin) {
  ReplicationManager manager(&network_, &map_, &stores_, SyncConfig(2));
  Attach(manager);

  const std::string key = KeyMasteredBy("host-1");
  KvsClient client(&network_, "client", &map_, nullptr);
  ASSERT_TRUE(client.Set(key, Bytes{4}).ok());
  ASSERT_TRUE(client.Set(key, Bytes{5}).ok());

  // Two mutating RPCs at the primary's KvsServer (the new write-side
  // counter), each forwarded once (R=2): the replica channel answered
  // exactly as many forward RPCs, and no reads were miscounted.
  KvsServer* primary = nullptr;
  for (auto& server : servers_) {
    if (server->endpoint() == ShardMap::EndpointForHost("host-1")) {
      primary = server.get();
    }
  }
  ASSERT_NE(primary, nullptr);
  EXPECT_EQ(primary->write_rpc_count(), 2u);
  EXPECT_EQ(primary->read_rpc_count(), 0u);
  EXPECT_EQ(manager.stats().forward_rpcs.value(), 2u);
  EXPECT_EQ(manager.stats().forwarded_ops.value(), 2u);
}

TEST_F(ReplicationTest, AsyncModeQueuesUntilMaxLagThenShips) {
  ReplicationConfig config;
  config.factor = 2;
  config.sync = false;
  config.max_lag_ops = 4;
  ReplicationManager manager(&network_, &map_, &stores_, config);
  Attach(manager);

  const std::string key = KeyMasteredBy("host-0");
  const auto backups =
      BackupsFor(map_.Snapshot().endpoints(), ShardMap::EndpointForHost("host-0"), 2);
  ReplicaShard* replica = manager.ReplicaForHost(ShardMap::HostForEndpoint(backups[0]));
  ASSERT_NE(replica, nullptr);

  // Three writes: below the lag bound, nothing ships.
  for (uint8_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(StoreOf("host-0")->Set(key, Bytes{i}).ok());
  }
  EXPECT_FALSE(replica->store()->Exists(key));
  EXPECT_EQ(manager.stats().forward_rpcs.value(), 0u);

  // The fourth reaches max_lag_ops: the whole queue ships as ONE RPC.
  ASSERT_TRUE(StoreOf("host-0")->Set(key, Bytes{9}).ok());
  EXPECT_EQ(replica->store()->Get(key).value(), (Bytes{9}));
  EXPECT_EQ(manager.stats().forward_rpcs.value(), 1u);
  EXPECT_EQ(manager.stats().forwarded_ops.value(), 4u);

  // FlushAll drains a partial queue (the Reconcile barrier).
  ASSERT_TRUE(StoreOf("host-0")->Set(key, Bytes{7}).ok());
  EXPECT_EQ(replica->store()->Get(key).value(), (Bytes{9}));
  manager.FlushAll();
  EXPECT_EQ(replica->store()->Get(key).value(), (Bytes{7}));
}

TEST_F(ReplicationTest, ReconcileCatchesUpABackupThatMissedForwards) {
  // Writes land BEFORE the substrate attaches (no hook, no backups) — the
  // stand-in for any divergence window. Reconcile streams the missing keys.
  const std::string key = KeyMasteredBy("host-2");
  ASSERT_TRUE(StoreOf("host-2")->Set(key, Bytes{42}).ok());
  ASSERT_TRUE(StoreOf("host-2")->SetAdd(key + ":set", "m").value());

  ReplicationManager manager(&network_, &map_, &stores_, SyncConfig(2));
  Attach(manager);
  manager.Reconcile();

  const auto backups =
      BackupsFor(map_.Snapshot().endpoints(), ShardMap::EndpointForHost("host-2"), 2);
  ReplicaShard* replica = manager.ReplicaForHost(ShardMap::HostForEndpoint(backups[0]));
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->store()->Get(key).value(), (Bytes{42}));
  EXPECT_GT(manager.stats().catchup_keys.value(), 0u);
  EXPECT_GT(manager.stats().catchup_bytes.value(), 0u);

  // Idempotent: a second pass finds the content already matching and
  // streams nothing new.
  const uint64_t streamed = manager.stats().catchup_keys.value();
  manager.Reconcile();
  EXPECT_EQ(manager.stats().catchup_keys.value(), streamed);
}

TEST_F(ReplicationTest, ReconcileReclaimsCopiesTheAssignmentNoLongerWants) {
  ReplicationManager manager(&network_, &map_, &stores_, SyncConfig(2));
  Attach(manager);

  const std::string key = KeyMasteredBy("host-0");
  ASSERT_TRUE(StoreOf("host-0")->Set(key, Bytes{3}).ok());
  const auto backups =
      BackupsFor(map_.Snapshot().endpoints(), ShardMap::EndpointForHost("host-0"), 2);
  const std::string backup_host = ShardMap::HostForEndpoint(backups[0]);
  ASSERT_TRUE(manager.ReplicaForHost(backup_host)->store()->Exists(key));

  // The primary deletes the key: the forward erases the backup copy; a
  // Reconcile afterwards has nothing left to reclaim but must not recreate
  // it either.
  ASSERT_TRUE(StoreOf("host-0")->Delete(key).ok());
  manager.Reconcile();
  EXPECT_FALSE(manager.ReplicaForHost(backup_host)->store()->Exists(key));
}

TEST_F(ReplicationTest, FailoverPromotesEveryKeyTheDeadShardMastered) {
  ReplicationManager manager(&network_, &map_, &stores_, SyncConfig(2));
  Attach(manager);

  // A handful of keys mastered by host-1, written through its primary (so
  // the backups hold them), plus a held lock that must survive promotion.
  std::vector<std::string> keys;
  for (int i = 0; keys.size() < 5 && i < 100000; ++i) {
    std::string probe = "fo-" + std::to_string(i);
    if (map_.MasterFor(probe) == ShardMap::EndpointForHost("host-1")) {
      ASSERT_TRUE(
          StoreOf("host-1")->Set(probe, Bytes{uint8_t(keys.size())}).ok());
      keys.push_back(probe);
    }
  }
  ASSERT_EQ(keys.size(), 5u);
  ASSERT_TRUE(StoreOf("host-1")->TryLockWrite(keys[0], "locker").value());

  const uint64_t epoch_before = map_.epoch();
  const FailoverStats stats = manager.Failover(ShardMap::EndpointForHost("host-1"));
  manager.Reconcile();

  EXPECT_EQ(map_.epoch(), epoch_before + 1);  // Failover flips inside
  EXPECT_EQ(stats.epoch, map_.epoch());
  EXPECT_GE(stats.promoted_keys, 5u);
  EXPECT_EQ(stats.lost_keys, 0u);

  for (size_t i = 0; i < keys.size(); ++i) {
    const std::string master = map_.MasterFor(keys[i]);
    ASSERT_NE(master, ShardMap::EndpointForHost("host-1"));
    auto value = stores_[master]->Get(keys[i]);
    ASSERT_TRUE(value.ok()) << keys[i];
    EXPECT_EQ(value.value(), Bytes{uint8_t(i)});
  }
  // The lock travelled: the promoted master still excludes other owners,
  // and the original holder can unlock there.
  KvStore* new_master = stores_[map_.MasterFor(keys[0])];
  EXPECT_FALSE(new_master->TryLockWrite(keys[0], "intruder").value());
  EXPECT_TRUE(new_master->UnlockWrite(keys[0], "locker").ok());
}

}  // namespace
}  // namespace faasm
