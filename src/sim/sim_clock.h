// SimClock + SimExecutor: deterministic virtual-time execution.
//
// Every simulated activity (a Faaslet invocation, a scheduler, a load
// generator) runs on a real OS thread registered with the SimClock. Threads
// block in SleepFor/SleepUntil; when the last runnable thread blocks, the
// clock jumps to the earliest pending deadline and wakes the threads due at
// it. Real compute executed by a thread is charged explicitly via SleepFor
// (see Faaslet::ChargeCompute), so macro experiments combine really-executed
// algorithms with modelled network/cold-start delays — wall-clock seconds of
// paper-scale experiments complete in milliseconds of virtual bookkeeping.
//
// Condition-style waits are built by polling with a small virtual quantum,
// which keeps the executor free of cross-component wake-up plumbing while
// remaining deterministic.
#ifndef FAASM_SIM_SIM_CLOCK_H_
#define FAASM_SIM_SIM_CLOCK_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/clock.h"

namespace faasm {

class SimClock final : public Clock {
 public:
  SimClock() = default;

  TimeNs Now() const override;

  // Must be called from a registered thread.
  void SleepFor(TimeNs duration_ns) override;
  void SleepUntil(TimeNs deadline_ns);

  // Thread participation. A registered thread counts as runnable until it
  // blocks in SleepFor/SleepUntil or unregisters.
  void RegisterThread();
  void UnregisterThread();

  // RAII hold that keeps the clock from advancing while an *unregistered*
  // thread (e.g. a test main) orchestrates multiple spawns. Without it the
  // clock may advance between two Spawn calls once the already-spawned
  // activities block.
  class Hold {
   public:
    explicit Hold(SimClock& clock) : clock_(clock) { clock_.RegisterThread(); }
    ~Hold() { clock_.UnregisterThread(); }
    Hold(const Hold&) = delete;
    Hold& operator=(const Hold&) = delete;

   private:
    SimClock& clock_;
  };

  // Polls `pred` every `quantum_ns` of virtual time until it returns true or
  // `deadline_ns` passes. Returns pred()'s final value.
  bool WaitFor(const std::function<bool()>& pred, TimeNs quantum_ns = 100 * kMicrosecond,
               TimeNs deadline_ns = INT64_MAX);

 private:
  struct Waiter {
    TimeNs deadline;
    bool ready = false;
    std::condition_variable cv;
  };

  void SleepUntilLockedImpl(std::unique_lock<std::mutex>& lock, TimeNs deadline_ns);
  void AdvanceIfIdleLocked();

  mutable std::mutex mutex_;
  TimeNs now_ = 0;
  int runnable_ = 0;
  std::vector<Waiter*> waiters_;
};

// Owns a set of worker threads registered with a SimClock. Spawn() starts a
// simulated activity; JoinAll() waits for every activity to finish.
class SimExecutor {
 public:
  SimExecutor() = default;
  ~SimExecutor();

  SimExecutor(const SimExecutor&) = delete;
  SimExecutor& operator=(const SimExecutor&) = delete;

  SimClock& clock() { return clock_; }

  void Spawn(std::function<void()> fn);
  void JoinAll();

 private:
  SimClock clock_;
  std::mutex threads_mutex_;
  std::vector<std::thread> threads_;
};

}  // namespace faasm

#endif  // FAASM_SIM_SIM_CLOCK_H_
