// Binary decoder: wasm bytes -> Module (spec §5.5). Performs structural
// validation (section order, counts, types); full code validation happens in
// the compiler. This is the first step of the trusted "code generation"
// phase of §3.4: user-supplied binaries are never executed before passing
// both this decoder and the validator.
#ifndef FAASM_WASM_DECODER_H_
#define FAASM_WASM_DECODER_H_

#include "common/bytes.h"
#include "common/status.h"
#include "wasm/module.h"

namespace faasm::wasm {

Result<Module> DecodeModule(const Bytes& binary);
Result<Module> DecodeModule(const uint8_t* data, size_t size);

}  // namespace faasm::wasm

#endif  // FAASM_WASM_DECODER_H_
