#include "kvs/router.h"

#include <algorithm>
#include <cstdlib>

#include "common/bytes.h"
#include "common/log.h"

namespace faasm {

namespace {
constexpr char kShardEndpointPrefix[] = "kvs:";

// Murmur3 finaliser: full-avalanche mix. The repo-wide FNV-1a leaves
// near-identical strings ("kvs:host-3#41" vs "#42") with near-identical
// hashes, which would cluster every vnode of a host into one tight ring arc
// and wreck the balance consistent hashing depends on; the finaliser
// scatters them uniformly.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

uint64_t HashString(const std::string& s) {
  return Mix64(HashBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

// Ring point of virtual node `vnode` of `endpoint`.
uint64_t RingPoint(const std::string& endpoint, int vnode) {
  return HashString(endpoint + "#" + std::to_string(vnode));
}

void InsertEndpointPoints(std::map<uint64_t, std::string>& ring, const std::string& endpoint) {
  for (int vnode = 0; vnode < ShardMap::kVirtualNodes; ++vnode) {
    // Hash collisions between distinct endpoints are theoretically possible;
    // first-placed wins, which only shifts a sliver of keyspace.
    ring.emplace(RingPoint(endpoint, vnode), endpoint);
  }
}

// First ring entry clockwise from `h`, wrapping past the top. Requires a
// non-empty ring.
const std::string& RingOwnerOf(const std::map<uint64_t, std::string>& ring, uint64_t h) {
  auto it = ring.lower_bound(h);
  if (it == ring.end()) {
    it = ring.begin();
  }
  return it->second;
}
}  // namespace

// --- BackupsFor ---------------------------------------------------------------

std::vector<std::string> BackupsFor(const std::set<std::string>& endpoints,
                                    const std::string& primary, int factor) {
  std::vector<std::string> backups;
  if (factor <= 1 || endpoints.empty()) {
    return backups;
  }
  const std::vector<std::string> ordered(endpoints.begin(), endpoints.end());
  const size_t others = ordered.size() - (endpoints.count(primary) > 0 ? 1 : 0);
  const size_t want = std::min<size_t>(static_cast<size_t>(factor - 1), others);
  // First endpoint strictly after `primary` in sorted order, wrapping: the
  // clockwise walk that mirrors ring succession.
  size_t start = std::upper_bound(ordered.begin(), ordered.end(), primary) - ordered.begin();
  for (size_t step = 0; step < ordered.size() && backups.size() < want; ++step) {
    const std::string& candidate = ordered[(start + step) % ordered.size()];
    if (candidate != primary) {
      backups.push_back(candidate);
    }
  }
  return backups;
}

// --- ShardAssignment ----------------------------------------------------------

ShardAssignment::ShardAssignment(const std::set<std::string>& endpoints, uint64_t epoch)
    : endpoints_(endpoints), epoch_(epoch) {
  for (const std::string& endpoint : endpoints_) {
    InsertEndpointPoints(ring_, endpoint);
  }
}

std::string ShardAssignment::MasterFor(const std::string& key) const {
  if (ring_.empty()) {
    return "";
  }
  return RingOwnerOf(ring_, HashString(key));
}

const std::string& ShardAssignment::OwnerOf(uint64_t h) const { return RingOwnerOf(ring_, h); }

ShardAssignment ShardAssignment::With(const std::string& endpoint) const {
  std::set<std::string> endpoints = endpoints_;
  endpoints.insert(endpoint);
  return ShardAssignment(endpoints);
}

ShardAssignment ShardAssignment::Without(const std::string& endpoint) const {
  std::set<std::string> endpoints = endpoints_;
  endpoints.erase(endpoint);
  return ShardAssignment(endpoints);
}

std::vector<KeyMove> DiffKeys(const ShardAssignment& before, const ShardAssignment& after,
                              const std::vector<std::string>& keys) {
  std::vector<KeyMove> moves;
  if (before.ring_.empty() && after.ring_.empty()) {
    return moves;
  }
  if (before.ring_.empty() || after.ring_.empty()) {
    // Degenerate epochs (bootstrap / teardown): every key moves.
    for (const std::string& key : keys) {
      moves.push_back(KeyMove{key, before.MasterFor(key), after.MasterFor(key)});
    }
    return moves;
  }

  // Owner-change arc table. Between two consecutive points of the MERGED
  // boundary set, neither ring has a point, so both owners are constant over
  // the half-open arc (prev, point] — one lookup per merged point yields the
  // exact owner pair for every hash in its arc.
  std::vector<uint64_t> points;
  points.reserve(before.ring_.size() + after.ring_.size());
  for (const auto& [point, endpoint] : before.ring_) {
    points.push_back(point);
  }
  for (const auto& [point, endpoint] : after.ring_) {
    points.push_back(point);
  }
  std::sort(points.begin(), points.end());
  points.erase(std::unique(points.begin(), points.end()), points.end());

  struct ArcOwners {
    const std::string* from;
    const std::string* to;
  };
  std::vector<ArcOwners> owners;
  owners.reserve(points.size());
  for (uint64_t point : points) {
    owners.push_back(ArcOwners{&before.OwnerOf(point), &after.OwnerOf(point)});
  }

  for (const std::string& key : keys) {
    const uint64_t h = HashString(key);
    // Arc lookup mirrors RingOwnerOf: first merged point >= h, wrapping.
    auto it = std::lower_bound(points.begin(), points.end(), h);
    const size_t arc = it == points.end() ? 0 : static_cast<size_t>(it - points.begin());
    const ArcOwners& arc_owners = owners[arc];
    if (*arc_owners.from != *arc_owners.to) {
      moves.push_back(KeyMove{key, *arc_owners.from, *arc_owners.to});
    }
  }
  return moves;
}

// --- ShardMap -----------------------------------------------------------------

ShardMap::ShardMap(const std::vector<std::string>& endpoints) {
  for (const std::string& endpoint : endpoints) {
    AddShard(endpoint);
  }
}

std::string ShardMap::EndpointForHost(const std::string& host) {
  return kShardEndpointPrefix + host;
}

std::string ShardMap::HostForEndpoint(const std::string& endpoint) {
  const size_t prefix_len = sizeof(kShardEndpointPrefix) - 1;
  if (endpoint.compare(0, prefix_len, kShardEndpointPrefix) != 0) {
    return "";
  }
  return endpoint.substr(prefix_len);
}

void ShardMap::AddShard(const std::string& endpoint) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  if (!endpoints_.insert(endpoint).second) {
    return;
  }
  InsertEndpointPoints(ring_, endpoint);
  ++epoch_;
}

void ShardMap::RemoveShard(const std::string& endpoint) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  if (endpoints_.erase(endpoint) == 0) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == endpoint ? ring_.erase(it) : std::next(it);
  }
  ++epoch_;
}

std::string ShardMap::MasterFor(const std::string& key) const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  if (ring_.empty()) {
    return "";
  }
  return RingOwnerOf(ring_, HashString(key));
}

std::vector<std::string> ShardMap::HoldersFor(const std::string& key) const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  std::vector<std::string> holders;
  if (ring_.empty()) {
    return holders;
  }
  const std::string master = RingOwnerOf(ring_, HashString(key));
  holders.push_back(master);
  for (std::string& backup : BackupsFor(endpoints_, master, replication_factor_)) {
    holders.push_back(std::move(backup));
  }
  return holders;
}

void ShardMap::set_replication_factor(int factor) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  replication_factor_ = factor < 1 ? 1 : factor;
}

int ShardMap::replication_factor() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return replication_factor_;
}

uint64_t ShardMap::epoch() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return epoch_;
}

ShardAssignment ShardMap::Snapshot() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return ShardAssignment(endpoints_, epoch_);
}

std::vector<std::string> ShardMap::shards() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return std::vector<std::string>(endpoints_.begin(), endpoints_.end());
}

size_t ShardMap::shard_count() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return endpoints_.size();
}

// --- ShardedKvs ---------------------------------------------------------------

KvStore* ShardedKvs::StoreFor(const std::string& key) const {
  if (map_ != nullptr && !stores_.empty()) {
    const std::string master = map_->MasterFor(key);
    auto it = stores_.find(master);
    if (it != stores_.end()) {
      return it->second;
    }
    if (single_ == nullptr) {
      // Misconfiguration (a shard was added to the map with no attached
      // store): every caller dereferences the result, so fail loudly here
      // rather than segfault downstream.
      LOG_ERROR << "sharded kvs: no store attached for '" << master << "' (master of '" << key
                << "'); map and stores are out of sync";
      std::abort();
    }
    LOG_ERROR << "sharded kvs: no store attached for master of '" << key
              << "'; falling back to the single store";
  }
  return single_;
}

size_t ShardedKvs::key_count() const {
  if (stores_.empty()) {
    return single_ != nullptr ? single_->key_count() : 0;
  }
  size_t count = 0;
  for (const auto& [endpoint, store] : stores_) {
    count += store->key_count();
  }
  return count;
}

size_t ShardedKvs::total_bytes() const {
  if (stores_.empty()) {
    return single_ != nullptr ? single_->total_bytes() : 0;
  }
  size_t bytes = 0;
  for (const auto& [endpoint, store] : stores_) {
    bytes += store->total_bytes();
  }
  return bytes;
}

}  // namespace faasm
