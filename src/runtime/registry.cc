#include "runtime/registry.h"

#include "wasm/decoder.h"

namespace faasm {

namespace {
FunctionSpec SpecFromOptions(const std::string& name, const FunctionOptions& options) {
  FunctionSpec spec;
  spec.name = name;
  spec.entrypoint = options.entrypoint;
  spec.wasm_init_export = options.wasm_init_export;
  spec.native_init = options.native_init;
  spec.min_memory_pages = options.min_memory_pages;
  spec.max_memory_pages = options.max_memory_pages;
  spec.simulated_init_ns = options.simulated_init_ns;
  spec.state_affinity_key = options.state_affinity_key;
  spec.state_affinity_read_mostly = options.state_affinity_read_mostly;
  return spec;
}
}  // namespace

Status FunctionRegistry::UploadWasm(const std::string& name, const Bytes& binary,
                                    FunctionOptions options) {
  FAASM_ASSIGN_OR_RETURN(wasm::Module module, wasm::DecodeModule(binary));
  FAASM_ASSIGN_OR_RETURN(auto compiled, wasm::CompileModule(std::move(module)));
  return RegisterWasm(name, std::move(compiled), std::move(options));
}

Status FunctionRegistry::RegisterWasm(const std::string& name,
                                      std::shared_ptr<const wasm::CompiledModule> module,
                                      FunctionOptions options) {
  FunctionSpec spec = SpecFromOptions(name, options);
  spec.module = std::move(module);
  return Register(name, std::move(spec));
}

Status FunctionRegistry::RegisterNative(const std::string& name, NativeFn fn,
                                        FunctionOptions options) {
  FunctionSpec spec = SpecFromOptions(name, options);
  spec.native = std::move(fn);
  return Register(name, std::move(spec));
}

Status FunctionRegistry::Register(const std::string& name, FunctionSpec spec) {
  std::lock_guard<std::mutex> guard(mutex_);
  if (functions_.count(name) > 0) {
    return AlreadyExists("function already registered: " + name);
  }
  functions_[name] = std::move(spec);
  return OkStatus();
}

std::string FunctionRegistry::StateAffinityKey(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = functions_.find(name);
  return it == functions_.end() ? "" : it->second.state_affinity_key;
}

bool FunctionRegistry::StateAffinityReadMostly(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = functions_.find(name);
  return it != functions_.end() && it->second.state_affinity_read_mostly;
}

Result<FunctionSpec> FunctionRegistry::Lookup(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = functions_.find(name);
  if (it == functions_.end()) {
    return NotFound("no function named '" + name + "'");
  }
  return it->second;
}

bool FunctionRegistry::Contains(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return functions_.count(name) > 0;
}

size_t FunctionRegistry::size() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return functions_.size();
}

}  // namespace faasm
