// Faaslet (§3): the lightweight isolation unit. One Faaslet owns
//   - a WebAssembly instance (or a native function stand-in) plus its
//     bounds-checked linear memory,
//   - shared-memory mappings of state replicas (zero-copy local tier access),
//   - a virtual network interface with token-bucket traffic shaping,
//   - a read-global/write-local filesystem view with fd capabilities,
//   - a CPU fair-share attachment (the cgroup stand-in),
// and implements InvocationContext so workload code sees the Table 2 API.
//
// Faaslets are reset from their creation-time snapshot between calls, which
// is the multi-tenancy guarantee of §5.2: no data from a previous call can
// be observed by the next one.
#ifndef FAASM_CORE_FAASLET_H_
#define FAASM_CORE_FAASLET_H_

#include <map>
#include <memory>
#include <string>

#include "core/invocation_context.h"
#include "core/vfs.h"
#include "mem/linear_memory.h"
#include "mem/snapshot.h"
#include "net/network.h"
#include "net/token_bucket.h"
#include "sim/cpu_model.h"
#include "wasm/instance.h"

namespace faasm {

class ProtoFaaslet;

// What to run inside a Faaslet. Exactly one of `module` / `native` is set.
struct FunctionSpec {
  std::string name;
  std::shared_ptr<const wasm::CompiledModule> module;  // wasm function
  NativeFn native;                                     // native stand-in
  std::string entrypoint = "main";                     // wasm export: () -> i32
  // Optional user-defined initialisation code run once before the creation
  // snapshot is taken (§5.2); for wasm it names an export, for native
  // functions it is a callback.
  std::string wasm_init_export;
  std::function<Status(InvocationContext&)> native_init;
  uint32_t min_memory_pages = 1;
  uint32_t max_memory_pages = 2048;  // 128 MiB per-function memory limit
  // Models initialisation work that the offline build cannot execute for
  // real (e.g. a dynamic language runtime booting): charged to virtual time
  // at cold start, captured away by Proto-Faaslet snapshots.
  TimeNs simulated_init_ns = 0;
  // Optional state key this function's traffic is centred on. The scheduler
  // uses it as a locality hint: placement prefers the host mastering the
  // key's global-tier shard, whose push/pull cost zero network bytes.
  std::string state_affinity_key;
  // Read-mostly widening: any HOLDER of the key's shard (master or replica
  // backup) is an equally good placement, because the replica read tier
  // serves the key in-process on backup hosts too (kvs_client.h).
  bool state_affinity_read_mostly = false;
};

// Host-side wiring a Faaslet needs: clock, state tier, network, file store,
// CPU model, and the runtime's chain/await hooks.
struct FaasletEnv {
  Clock* clock = nullptr;
  LocalTier* tier = nullptr;
  GlobalFileStore* files = nullptr;
  InProcNetwork* network = nullptr;  // optional
  std::string host_endpoint;         // network identity for accounting
  HostCpuModel* cpu = nullptr;       // optional
  uint64_t rng_seed = 1;

  std::function<Result<uint64_t>(const std::string&, Bytes)> chain;
  std::function<Result<int>(uint64_t)> await;
  std::function<Result<Bytes>(uint64_t)> get_output;

  // Per-Faaslet vnet traffic shaping (tc equivalent); 1 Gbps line rate.
  double vnet_rate_bytes_per_sec = 125e6;
  double vnet_burst_bytes = 2e6;

  // Guest execution tiers (wasm/instance.h); defaults are the fast tiers,
  // downgraded automatically when the build cannot support them.
  wasm::GuestBounds guest_bounds = wasm::GuestBounds::kGuardPage;
  wasm::GuestDispatch guest_dispatch = wasm::GuestDispatch::kThreaded;
};

class Faaslet : public InvocationContext {
 public:
  // Instantiates the function, runs its initialisation code and captures the
  // creation snapshot used by Reset().
  static Result<std::unique_ptr<Faaslet>> Create(FunctionSpec spec, FaasletEnv env);

  // Cold-start fast path (§5.2): instantiates the function skeleton, then
  // restores the Proto-Faaslet snapshot instead of running initialisation
  // code. Works with snapshots captured on other hosts.
  static Result<std::unique_ptr<Faaslet>> CreateFromProto(
      FunctionSpec spec, FaasletEnv env, std::shared_ptr<const ProtoFaaslet> proto);

  ~Faaslet() override;

  const std::string& function() const { return spec_.name; }
  uint64_t id() const { return id_; }
  bool is_wasm() const { return instance_ != nullptr; }

  // Executes one call and returns its exit code. The Faaslet is busy for the
  // duration; callers serialise calls per Faaslet.
  Result<int> Execute(Bytes input);

  // Restores the creation-time snapshot: private memory, globals, filesystem
  // overlay and state mappings all revert, guaranteeing no information from
  // the previous call is disclosed to the next (§5.2). Once the memory is
  // known to be snapshot-based, resets restore only the pages the linear
  // memory's dirty tracker saw written since the last reset, instead of
  // re-materialising the whole image.
  Status Reset();

  // --- InvocationContext -----------------------------------------------------
  const Bytes& Input() const override { return input_; }
  void WriteOutput(Bytes output) override { output_ = std::move(output); }
  Result<uint64_t> ChainCall(const std::string& function, Bytes input) override;
  Result<int> AwaitCall(uint64_t call_id) override;
  Result<Bytes> GetCallOutput(uint64_t call_id) override;
  LocalTier& state() override { return *env_.tier; }
  Clock& clock() override { return *env_.clock; }
  Rng& rng() override { return rng_; }
  void ChargeCompute(TimeNs ns) override;

  Bytes TakeOutput() { return std::move(output_); }

  // --- Guest-facing state mapping (§3.3) ---------------------------------------
  // Maps the replica of `key` (sized to at least `len`) into the guest linear
  // memory and returns its guest offset. Idempotent per key.
  Result<uint32_t> MapStateIntoGuest(const std::string& key, size_t len);

  // --- Introspection ------------------------------------------------------------
  LinearMemory& memory() { return *memory_; }
  const LinearMemory& memory() const { return *memory_; }
  wasm::Instance* instance() { return instance_.get(); }
  VirtualFilesystem& vfs() { return vfs_; }
  const FunctionSpec& spec() const { return spec_; }
  const FaasletEnv& env() const { return env_; }

  // Approximate private memory footprint (linear memory private pages +
  // interpreter stacks); used alongside real RSS measurements in Table 3.
  size_t FootprintBytes() const;

  // Sends `len` bytes through the Faaslet's shaped virtual interface to a
  // named endpoint and returns the response (client-side networking, §3.2).
  Result<Bytes> VnetCall(const std::string& endpoint, const Bytes& request);

  // --- Virtual sockets (client-side networking, §3.2) -------------------------
  // Sockets buffer sends; the first recv flushes the request through the
  // shaped virtual interface and buffers the peer's response.
  int SocketOpen();
  Status SocketConnect(int fd, const std::string& endpoint);
  Result<size_t> SocketSend(int fd, const uint8_t* data, size_t len);
  Result<size_t> SocketRecv(int fd, uint8_t* buf, size_t len);
  Status SocketClose(int fd);

  // --- Dynamic loading (§3.2 "Dynamic linking") --------------------------------
  // dlopen loads a wasm binary from the virtual filesystem, validates it via
  // the standard pipeline, and instantiates it sharing this Faaslet's linear
  // memory. dlsym returns a process-unique symbol id callable via DynCall.
  Result<uint32_t> DlOpen(const std::string& path);
  Result<uint32_t> DlSym(uint32_t handle, const std::string& symbol);
  Result<int32_t> DynCall(uint32_t symbol_id, int32_t arg);
  Status DlClose(uint32_t handle);

  // Per-tenant monotonic clock (ns since Faaslet creation).
  TimeNs MonotonicTimeNs() const;

 private:
  friend class ProtoFaaslet;

  Faaslet(FunctionSpec spec, FaasletEnv env);

  Status Instantiate();
  Status RunInitCode();
  // Applies shaping delay for `bytes` on the virtual interface.
  void ShapeTraffic(size_t bytes);

  static std::atomic<uint64_t> next_id_;

  FunctionSpec spec_;
  FaasletEnv env_;
  uint64_t id_;
  Rng rng_;
  TimeNs created_at_ = 0;

  std::unique_ptr<LinearMemory> memory_;
  std::unique_ptr<wasm::Instance> instance_;
  std::unique_ptr<wasm::MapImportResolver> resolver_;
  VirtualFilesystem vfs_;
  TokenBucket vnet_shaper_;

  Bytes input_;
  Bytes output_;

  // key -> guest offset of the mapped shared region.
  std::map<std::string, uint32_t> guest_state_offsets_;

  // Creation-time snapshot used by Reset().
  std::shared_ptr<const ProtoFaaslet> reset_proto_;
  // True when every non-dirty private page matches reset_proto_ (set after a
  // capture or a full restore); enables the dirty-page-only reset.
  bool snapshot_synced_ = false;

  // Dynamically loaded modules (dlopen) and their symbols.
  struct DynModule {
    std::unique_ptr<wasm::Instance> instance;
    std::map<std::string, uint32_t> symbol_ids;
  };
  std::vector<DynModule> dyn_modules_;
  std::vector<std::pair<uint32_t, uint32_t>> dyn_symbols_;  // (module, func idx)

  // Virtual sockets: fd -> (endpoint, tx buffer, rx buffer+cursor).
  struct VSocket {
    std::string endpoint;
    Bytes tx;
    Bytes rx;
    size_t rx_cursor = 0;
  };
  std::map<int, VSocket> sockets_;
  int next_socket_fd_ = 1000;
};

// Proto-Faaslet (§5.2): an OS-independent snapshot of an initialised Faaslet
// — private linear memory, wasm globals — restorable in O(100 µs) via
// copy-on-write mappings, and serialisable for cross-host restores.
class ProtoFaaslet {
 public:
  static Result<std::shared_ptr<const ProtoFaaslet>> CaptureFrom(const Faaslet& faaslet);
  static Result<std::shared_ptr<const ProtoFaaslet>> Deserialize(const Bytes& bytes);

  Bytes Serialize() const;
  Status RestoreInto(Faaslet& faaslet) const;
  // Eager (memcpy) restore, for the snapshot-mechanism ablation.
  Status RestoreIntoEager(Faaslet& faaslet) const;
  // Delta restore for warm resets: restores only the pages dirtied since the
  // last restore/capture. Valid only when the Faaslet's memory is already
  // based on this snapshot.
  Status RestoreDirtyInto(Faaslet& faaslet) const;

  const std::string& function() const { return function_; }
  size_t snapshot_bytes() const { return snapshot_ == nullptr ? 0 : snapshot_->size(); }

 private:
  ProtoFaaslet() = default;

  // Shared restore tail: memory restore strategy varies, everything else
  // (globals, fs overlay, sockets, state mappings, call I/O) resets the same.
  Status RestoreCommon(Faaslet& faaslet, const std::function<Status()>& restore_memory) const;

  std::string function_;
  std::unique_ptr<MemorySnapshot> snapshot_;
  std::vector<wasm::Value> globals_;
};

}  // namespace faasm

#endif  // FAASM_CORE_FAASLET_H_
