// Figure 10: function churn — cold-start creation latency vs offered
// creation rate for Docker containers, Faaslets and Proto-Faaslets.
//
// Faaslet/Proto service times are measured for real on this machine; Docker
// uses the calibrated constants. The latency-vs-rate curve comes from an
// open-loop M/D/c queue simulation with those service times (the paper's
// single-host experiment shape: flat latency until the creation-throughput
// knee, then unbounded queueing).
//
// HOST-CHURN MODE (--hosts-churn): the cluster-level churn story for the
// sharded tier. A FAASM cluster serves a stream of exact counter increments
// (global lock + pull + delta push per op) while hosts are added and
// removed mid-run; every membership change migrates the affected keys and
// flips the ShardMap epoch (kvs/migration.h). Reports migration traffic and
// the p50/p99/max op latency ACROSS the epoch flips — ops that race a
// migration stall on kWrongMaster redirects, which is exactly the tail this
// mode quantifies — plus a lost-update check (acked increments vs final
// counter values). --tier=central runs the ablation where membership
// changes never touch the tier.
//
// KILL MODE (--kill): the crash-failover story for the sharded tier. The
// same cluster serves a sustained MIXED load — lock-serialised counter
// increments plus byte-checking payload reads — while hosts are KILLED
// abruptly (FaasmCluster::KillHost: no drain, mail dropped, endpoints gone).
// With --replicas=N > 1 the replication substrate (kvs/replication.h)
// promotes every key a dead shard mastered from a live backup before the
// epoch flips, and the bench GATES on zero lost (or doubled) acked updates,
// zero bad reads and every shard ending with a live master. --repl=async is
// the bounded-lag ablation: liveness is still gated, losses are reported.
//
// With --detect the oracle is taken out of the loop: hosts are crashed with
// NO notification (FaasmCluster::CrashHost) and the heartbeat failure
// detector (runtime/failure_detector.h) must notice, confirm and run the
// failover itself. The bench measures crash-to-confirmation latency per kill
// and additionally gates that every crash was confirmed within
// suspicion_timeout + one heartbeat interval.
//
//   fig10_churn [--tiny]                                 # single-host figure
//   fig10_churn --hosts-churn [--tier=sharded|central] [--tiny] [--json <path>]
//   fig10_churn --kill [--replicas=<n>] [--repl=sync|async] [--detect] [--tiny]
//               [--json <path>]
#include <cstring>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/faaslet.h"
#include "runtime/cluster.h"
#include "state/ddo.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"

namespace faasm {
namespace {

// Minimal discrete-event M/D/c queue: Poisson arrivals, deterministic
// service, c parallel creation slots. Returns median sojourn (queue+service).
double SimulateCreationQueue(double rate_per_s, double service_s, int servers,
                             double duration_s) {
  Rng rng(99);
  std::priority_queue<double, std::vector<double>, std::greater<>> server_free;
  for (int i = 0; i < servers; ++i) {
    server_free.push(0.0);
  }
  Summary sojourn_ms;
  double t = 0;
  while (t < duration_s) {
    t += rng.NextExponential(1.0 / rate_per_s);
    const double free_at = server_free.top();
    server_free.pop();
    const double start = std::max(t, free_at);
    const double done = start + service_s;
    server_free.push(done);
    sojourn_ms.Add((done - t) * 1e3);
  }
  return sojourn_ms.Median();
}

struct BenchEnv {
  RealClock clock;
  InProcNetwork network;
  KvStore store;
  KvsServer server;
  KvsClient kvs;
  LocalTier tier;
  GlobalFileStore files;

  BenchEnv()
      : network(&clock, NoLatency()), server(&store, &network), kvs(&network, "bench-host"),
        tier(&kvs, &clock) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  FaasletEnv Env() {
    FaasletEnv env;
    env.clock = &clock;
    env.tier = &tier;
    env.files = &files;
    env.network = &network;
    env.host_endpoint = "bench-host";
    return env;
  }
};

double MeasureServiceSeconds(const std::function<Status()>& create, int iters) {
  Summary ns;
  for (int i = 0; i < iters; ++i) {
    Stopwatch watch;
    Status status = create();
    if (!status.ok()) {
      std::fprintf(stderr, "creation failed: %s\n", status.ToString().c_str());
      return 1.0;
    }
    ns.Add(static_cast<double>(watch.ElapsedNs()));
  }
  return ns.Median() / 1e9;
}

// --- Host-churn mode ----------------------------------------------------------

struct ChurnResult {
  bool tiny = false;
  StateTier tier = StateTier::kSharded;
  size_t ops = 0;
  size_t acked = 0;
  uint64_t lost_updates = 0;
  MigrationStats migration;
  uint64_t final_hosts = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double max_ms = 0;
  double seconds = 0;  // virtual run time
};

std::string CounterKey(int i) { return "churn-counter-" + std::to_string(i); }

// Exact cross-host increment: global write lock, invalidate+pull, bump,
// delta push, unlock (the rebalance_test.cc protocol).
void RegisterIncrement(FaasmCluster& cluster) {
  (void)cluster.registry().RegisterNative("inc", [](InvocationContext& ctx) {
    ByteReader reader(ctx.Input());
    auto index = reader.Get<uint32_t>();
    if (!index.ok()) {
      return 1;
    }
    SharedArray<uint64_t> counter(&ctx.state(), CounterKey(index.value()));
    if (!counter.kv().LockGlobalWrite().ok()) {
      return 2;
    }
    counter.kv().InvalidateReplica();
    if (!counter.Attach().ok()) {
      (void)counter.kv().UnlockGlobalWrite();
      return 3;
    }
    uint64_t* value = counter.WritableElements(0, 1);
    if (value == nullptr) {
      (void)counter.kv().UnlockGlobalWrite();
      return 4;
    }
    *value += 1;
    counter.MarkDirtyElements(0, 1);
    const bool ok = counter.Push().ok() && counter.kv().UnlockGlobalWrite().ok();
    return ok ? 0 : 5;
  });
}

ChurnResult RunHostChurn(bool tiny, StateTier tier) {
  ChurnResult result;
  result.tiny = tiny;
  result.tier = tier;

  ClusterConfig config;
  config.hosts = 4;
  config.state_tier = tier;
  FaasmCluster cluster(config);

  const int counters = tiny ? 4 : 16;
  const int ops_per_round = tiny ? 24 : 160;
  for (int i = 0; i < counters; ++i) {
    (void)cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0));
  }
  // Bulk payload keys so migrations move real bytes, not just counters.
  const int payload_keys = tiny ? 32 : 256;
  const size_t payload_bytes = tiny ? 16 * 1024 : 64 * 1024;
  for (int i = 0; i < payload_keys; ++i) {
    (void)cluster.kvs().Set("payload-" + std::to_string(i), Bytes(payload_bytes, 7));
  }
  RegisterIncrement(cluster);

  std::vector<uint64_t> acked_per_counter(counters, 0);
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    // Membership schedule: grow, shrink an original host, grow, shrink the
    // newcomer — every round with a batch of increments in flight.
    const std::vector<std::pair<bool, std::string>> churn = {
        {true, ""}, {false, "host-1"}, {true, ""}, {false, "host-4"}};
    for (const auto& [add, name] : churn) {
      std::vector<std::pair<uint64_t, uint32_t>> batch;
      for (int i = 0; i < ops_per_round; ++i) {
        const uint32_t counter = static_cast<uint32_t>(i % counters);
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(counter);
        auto id = frontend.Submit("inc", std::move(input));
        if (id.ok()) {
          batch.emplace_back(id.value(), counter);
        }
        result.ops += 1;
      }
      if (add) {
        auto added = cluster.AddHost();
        if (!added.ok()) {
          std::fprintf(stderr, "AddHost failed: %s\n", added.status().ToString().c_str());
        }
      } else {
        Status removed = cluster.RemoveHost(name);
        if (!removed.ok()) {
          std::fprintf(stderr, "RemoveHost failed: %s\n", removed.ToString().c_str());
        }
      }
      for (const auto& [id, counter] : batch) {
        auto code = frontend.Await(id);
        if (code.ok() && code.value() == 0) {
          result.acked += 1;
          acked_per_counter[counter] += 1;
        }
      }
    }
    result.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
  });

  // Correctness sweep: acked increments vs final counter values.
  for (int i = 0; i < counters; ++i) {
    uint64_t count = 0;
    auto value = cluster.kvs().Get(CounterKey(i));
    if (value.ok() && value.value().size() == sizeof(count)) {
      std::memcpy(&count, value.value().data(), sizeof(count));
    }
    result.lost_updates +=
        count > acked_per_counter[i] ? count - acked_per_counter[i]
                                     : acked_per_counter[i] - count;
  }

  // Per-op latency across the run, epoch flips included.
  Summary latency_ms;
  for (const CallRecord& record : cluster.calls().FinishedRecords()) {
    latency_ms.Add(static_cast<double>(record.finished_at - record.submitted_at) / 1e6);
  }
  result.p50_ms = latency_ms.Median();
  result.p99_ms = latency_ms.Percentile(99.0);
  result.max_ms = latency_ms.Max();
  result.migration = cluster.migration_stats();
  result.final_hosts = cluster.host_count();
  return result;
}

void PrintChurn(const ChurnResult& r) {
  std::printf("%10s | %6zu %6zu %6llu | %8llu %10.1f %6llu | %8.2f %8.2f %8.2f\n",
              r.tier == StateTier::kSharded ? "sharded" : "central", r.ops, r.acked,
              static_cast<unsigned long long>(r.lost_updates),
              static_cast<unsigned long long>(r.migration.keys_moved),
              static_cast<double>(r.migration.bytes_moved) / 1e3,
              static_cast<unsigned long long>(r.migration.epoch_flips), r.p50_ms, r.p99_ms,
              r.max_ms);
}

bool WriteChurnJson(const std::string& path, const ChurnResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig10_churn\",\n  \"mode\": \"hosts-churn\",\n");
  std::fprintf(f, "  \"tiny\": %s,\n  \"tier\": \"%s\",\n", r.tiny ? "true" : "false",
               r.tier == StateTier::kSharded ? "sharded" : "central");
  std::fprintf(f, "  \"ops\": %zu,\n  \"acked\": %zu,\n  \"lost_updates\": %llu,\n", r.ops,
               r.acked, static_cast<unsigned long long>(r.lost_updates));
  std::fprintf(f,
               "  \"migration\": {\"keys_moved\": %llu, \"bytes_moved\": %llu, "
               "\"epoch_flips\": %llu},\n",
               static_cast<unsigned long long>(r.migration.keys_moved),
               static_cast<unsigned long long>(r.migration.bytes_moved),
               static_cast<unsigned long long>(r.migration.epoch_flips));
  std::fprintf(f, "  \"final_hosts\": %llu,\n  \"virtual_seconds\": %.4f,\n",
               static_cast<unsigned long long>(r.final_hosts), r.seconds);
  std::fprintf(f, "  \"latency_ms\": {\"p50\": %.3f, \"p99\": %.3f, \"max\": %.3f}\n}\n",
               r.p50_ms, r.p99_ms, r.max_ms);
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return true;
}

int HostChurnMain(bool tiny, StateTier tier, const std::string& json_path) {
  const bool sharded = tier == StateTier::kSharded;
  if (sharded) {
    PrintHeader("Figure 10b: host churn on the sharded tier (add/remove under load)");
    std::printf("exact counter increments (global lock + delta push) while the membership\n"
                "changes; ops racing a migration stall on kWrongMaster redirects until the\n"
                "epoch flips — the p99/max columns price that stall.\n\n");
  } else {
    PrintHeader("Figure 10b ablation: host churn on the CENTRAL tier (no-op for state)");
    std::printf("the same increment load and membership schedule, but every key lives in\n"
                "the one central store: membership changes move no state and flip no\n"
                "epoch — the migration columns must read zero.\n\n");
  }
  std::printf("%10s | %6s %6s %6s | %8s %10s %6s | %8s %8s %8s\n", "tier", "ops", "acked",
              "lost", "keys", "moved(KB)", "flips", "p50(ms)", "p99(ms)", "max(ms)");
  const ChurnResult result = RunHostChurn(tiny, tier);
  PrintChurn(result);
  if (result.lost_updates != 0) {
    std::fprintf(stderr, "LOST UPDATES DETECTED: %llu\n",
                 static_cast<unsigned long long>(result.lost_updates));
  }
  if (sharded) {
    std::printf(
        "(migration streams each moving key master→master over the interconnect)\n");
  }
  if (!json_path.empty() && !WriteChurnJson(json_path, result)) {
    return 1;
  }
  return result.lost_updates == 0 ? 0 : 1;
}

// --- Kill (crash failover) mode -----------------------------------------------

struct KillResult {
  bool tiny = false;
  int replicas = 2;
  bool sync = true;
  bool detect = false;
  size_t kills = 0;
  // --detect only: confirmed deaths, per-kill detection latency (crash ->
  // detector confirmation, failover excluded) and the gated bound
  // (suspicion_timeout + one heartbeat interval).
  size_t detected = 0;
  std::vector<double> detect_ms;
  double detect_bound_ms = 0;
  uint64_t heartbeats = 0;
  uint64_t hints = 0;
  uint64_t false_suspicions = 0;
  size_t ops = 0;
  size_t acked_increments = 0;
  size_t good_reads = 0;
  // Awaits that surfaced an error or a non-verification failure: the crash's
  // visible casualties (mailbox calls failed by FailAbandonedMail, reads of
  // keys lost at replicas=1). Never silent — just not silent data loss.
  size_t failed_ops = 0;
  // |final counter - acked increments| summed: catches losses AND doubles.
  uint64_t lost_acked = 0;
  uint64_t bad_reads = 0;  // reads that returned wrong bytes
  std::vector<double> recovery_ms;  // one per kill (KillHost duration)
  FailoverStats failover;
  uint64_t forwarded_ops = 0;
  uint64_t forward_rpcs = 0;
  uint64_t dropped_forwards = 0;
  bool all_shards_live = false;
  uint64_t final_epoch = 0;
  double seconds = 0;
};

std::string PayloadKey(int i) { return "payload-" + std::to_string(i); }

// Byte-checking payload read: fresh pull, then verify the fill byte. Exit
// codes: 0 good, 6 unreadable (lost key), 7 wrong bytes.
void RegisterPayloadCheck(FaasmCluster& cluster, size_t payload_bytes) {
  (void)cluster.registry().RegisterNative("readpay", [payload_bytes](InvocationContext& ctx) {
    ByteReader reader(ctx.Input());
    auto index = reader.Get<uint32_t>();
    if (!index.ok()) {
      return 1;
    }
    SharedArray<uint8_t> payload(&ctx.state(), PayloadKey(static_cast<int>(index.value())));
    payload.kv().InvalidateReplica();
    if (!payload.Attach().ok()) {
      return 6;
    }
    if (payload.size() != payload_bytes) {
      return 7;
    }
    for (size_t i = 0; i < payload_bytes; i += 1024) {
      if (payload[i] != 7) {
        return 7;
      }
    }
    return 0;
  });
}

KillResult RunKill(bool tiny, int replicas, bool sync, bool detect) {
  KillResult result;
  result.tiny = tiny;
  result.replicas = replicas;
  result.sync = sync;
  result.detect = detect;

  ClusterConfig config;
  config.hosts = tiny ? 5 : 6;
  config.state_tier = StateTier::kSharded;
  config.replication_factor = replicas;
  config.replication_sync = sync;
  config.failure_detection = detect;
  FaasmCluster cluster(config);
  result.detect_bound_ms =
      static_cast<double>(config.suspicion_timeout_ns + config.heartbeat_interval_ns) / 1e6;

  const int counters = tiny ? 4 : 8;
  const int ops_per_round = tiny ? 24 : 96;
  const int payload_keys = tiny ? 24 : 96;
  const size_t payload_bytes = tiny ? 16 * 1024 : 64 * 1024;
  for (int i = 0; i < counters; ++i) {
    (void)cluster.kvs().Set(CounterKey(i), Bytes(sizeof(uint64_t), 0));
  }
  for (int i = 0; i < payload_keys; ++i) {
    (void)cluster.kvs().Set(PayloadKey(i), Bytes(payload_bytes, 7));
  }
  RegisterIncrement(cluster);
  RegisterPayloadCheck(cluster, payload_bytes);

  std::vector<uint64_t> acked_per_counter(counters, 0);
  const std::vector<std::string> victims = {"host-1", "host-3", "host-0"};
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    for (const std::string& victim : victims) {
      // A batch of mixed ops in flight, then the kill lands in the middle of
      // it: some ops are already done, some are executing on the victim
      // (zombies — they finish through the failover bounce), some sit in its
      // mailbox (failed, surfaced at Await), and the rest race the epoch
      // flip.
      struct Pending {
        uint64_t id;
        bool is_inc;
        uint32_t index;
      };
      std::vector<Pending> batch;
      for (int i = 0; i < ops_per_round; ++i) {
        const bool is_inc = i % 3 != 2;  // 2/3 writes, 1/3 reads
        const uint32_t index =
            static_cast<uint32_t>(is_inc ? i % counters : i % payload_keys);
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(index);
        auto id = frontend.Submit(is_inc ? "inc" : "readpay", std::move(input));
        if (id.ok()) {
          batch.push_back({id.value(), is_inc, index});
        }
        result.ops += 1;
      }
      if (detect) {
        // NO oracle: pull the plug and wait for the detector to notice and
        // self-heal. Detection latency = crash -> confirmation (deaths());
        // recovery duration is the cluster failover-accounting delta.
        const TimeNs killed_at = cluster.clock().Now();
        const TimeNs recovery_before = cluster.failover_stats().duration_ns;
        Status crashed = cluster.CrashHost(victim);
        if (crashed.ok()) {
          result.kills += 1;
          const size_t want = result.kills;
          const FailureDetector* detector = cluster.failure_detector();
          const bool confirmed =
              cluster.clock().WaitFor([&] { return detector->death_count() >= want; },
                                      100 * kMicrosecond, killed_at + kSecond);
          if (confirmed) {
            for (const DeathRecord& death : detector->deaths()) {
              if (death.host == victim) {
                result.detect_ms.push_back(
                    static_cast<double>(death.confirmed_at_ns - killed_at) / 1e6);
              }
            }
            result.recovery_ms.push_back(
                static_cast<double>(cluster.failover_stats().duration_ns - recovery_before) /
                1e6);
          } else {
            std::fprintf(stderr, "detector never confirmed %s\n", victim.c_str());
          }
        } else {
          std::fprintf(stderr, "CrashHost(%s) failed: %s\n", victim.c_str(),
                       crashed.ToString().c_str());
        }
      } else {
        auto killed = cluster.KillHost(victim);
        if (killed.ok()) {
          result.kills += 1;
          result.recovery_ms.push_back(static_cast<double>(killed.value().duration_ns) / 1e6);
        } else {
          std::fprintf(stderr, "KillHost(%s) failed: %s\n", victim.c_str(),
                       killed.status().ToString().c_str());
        }
      }
      for (const Pending& pending : batch) {
        auto code = frontend.Await(pending.id);
        if (!code.ok()) {
          result.failed_ops += 1;
          continue;
        }
        if (pending.is_inc) {
          if (code.value() == 0) {
            result.acked_increments += 1;
            acked_per_counter[pending.index] += 1;
          } else {
            result.failed_ops += 1;
          }
        } else if (code.value() == 0) {
          result.good_reads += 1;
        } else if (code.value() == 7) {
          result.bad_reads += 1;
        } else {
          result.failed_ops += 1;
        }
      }
    }
    result.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
  });

  // Acked-update sweep: every acked increment must be in the tier exactly
  // once (abs diff, so doubles fail the gate the same way losses do).
  for (int i = 0; i < counters; ++i) {
    uint64_t count = 0;
    auto value = cluster.kvs().Get(CounterKey(i));
    if (value.ok() && value.value().size() == sizeof(count)) {
      std::memcpy(&count, value.value().data(), sizeof(count));
    }
    result.lost_acked += count > acked_per_counter[i] ? count - acked_per_counter[i]
                                                      : acked_per_counter[i] - count;
  }

  // Liveness sweep: after three crashes every shard in the map must belong
  // to a host that is still alive — no key routed at a corpse.
  std::set<std::string> live_shards;
  for (size_t i = 0; i < cluster.host_count(); ++i) {
    live_shards.insert(ShardMap::EndpointForHost(cluster.host(i).name()));
  }
  const std::vector<std::string> shards = cluster.shard_map().shards();
  result.all_shards_live = shards.size() == live_shards.size();
  for (const std::string& shard : shards) {
    result.all_shards_live = result.all_shards_live && live_shards.count(shard) > 0;
  }

  if (cluster.failure_detector() != nullptr) {
    const FailureDetector* detector = cluster.failure_detector();
    result.detected = detector->death_count();
    result.heartbeats = detector->heartbeats_seen();
    result.hints = detector->hints();
    result.false_suspicions = detector->false_suspicions();
  }
  result.failover = cluster.failover_stats();
  if (cluster.replication() != nullptr) {
    const ReplicationStats& stats = cluster.replication()->stats();
    result.forwarded_ops = stats.forwarded_ops.value();
    result.forward_rpcs = stats.forward_rpcs.value();
    result.dropped_forwards = stats.dropped_forward_ops.value();
  }
  result.final_epoch = cluster.shard_map().epoch();
  return result;
}

double MeanOf(const std::vector<double>& values) {
  if (values.empty()) {
    return 0;
  }
  double total = 0;
  for (double v : values) {
    total += v;
  }
  return total / static_cast<double>(values.size());
}

double MaxOf(const std::vector<double>& values) {
  double max = 0;
  for (double v : values) {
    max = std::max(max, v);
  }
  return max;
}

bool WriteKillJson(const std::string& path, const KillResult& r) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig10_churn\",\n  \"mode\": \"kill\",\n");
  std::fprintf(f, "  \"tiny\": %s,\n  \"replicas\": %d,\n  \"sync\": %s,\n  \"detect\": %s,\n",
               r.tiny ? "true" : "false", r.replicas, r.sync ? "true" : "false",
               r.detect ? "true" : "false");
  if (r.detect) {
    Summary detect_ms;
    for (double v : r.detect_ms) {
      detect_ms.Add(v);
    }
    std::fprintf(f,
                 "  \"detection\": {\"confirmed\": %zu, \"latency_ms\": {\"p50\": %.3f, "
                 "\"p99\": %.3f, \"max\": %.3f}, \"bound_ms\": %.3f,\n"
                 "    \"heartbeats\": %llu, \"hints\": %llu, \"false_suspicions\": %llu},\n",
                 r.detected, detect_ms.Median(), detect_ms.Percentile(99.0), detect_ms.Max(),
                 r.detect_bound_ms, static_cast<unsigned long long>(r.heartbeats),
                 static_cast<unsigned long long>(r.hints),
                 static_cast<unsigned long long>(r.false_suspicions));
  }
  std::fprintf(f, "  \"kills\": %zu,\n  \"ops\": %zu,\n  \"acked_increments\": %zu,\n",
               r.kills, r.ops, r.acked_increments);
  std::fprintf(f, "  \"good_reads\": %zu,\n  \"failed_ops\": %zu,\n", r.good_reads,
               r.failed_ops);
  std::fprintf(f, "  \"lost_acked_updates\": %llu,\n  \"bad_reads\": %llu,\n",
               static_cast<unsigned long long>(r.lost_acked),
               static_cast<unsigned long long>(r.bad_reads));
  std::fprintf(f, "  \"recovery_ms\": {\"mean\": %.3f, \"max\": %.3f},\n",
               MeanOf(r.recovery_ms), MaxOf(r.recovery_ms));
  std::fprintf(f,
               "  \"promoted_keys\": %llu,\n  \"lost_keys\": %llu,\n"
               "  \"async_dropped_ops\": %llu,\n",
               static_cast<unsigned long long>(r.failover.promoted_keys),
               static_cast<unsigned long long>(r.failover.lost_keys),
               static_cast<unsigned long long>(r.failover.async_dropped_ops));
  std::fprintf(f,
               "  \"replication\": {\"forwarded_ops\": %llu, \"forward_rpcs\": %llu, "
               "\"dropped_forwards\": %llu},\n",
               static_cast<unsigned long long>(r.forwarded_ops),
               static_cast<unsigned long long>(r.forward_rpcs),
               static_cast<unsigned long long>(r.dropped_forwards));
  std::fprintf(f, "  \"all_shards_live\": %s,\n  \"final_epoch\": %llu,\n",
               r.all_shards_live ? "true" : "false",
               static_cast<unsigned long long>(r.final_epoch));
  std::fprintf(f, "  \"virtual_seconds\": %.4f\n}\n", r.seconds);
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return true;
}

int KillMain(bool tiny, int replicas, bool sync, bool detect, const std::string& json_path) {
  PrintHeader(detect
                  ? "Figure 10c: crash failover with HEARTBEAT DETECTION (no oracle)"
                  : "Figure 10c: crash failover — abrupt host kills under mixed load");
  std::printf("lock-serialised increments + byte-checking reads while hosts are killed\n"
              "with no drain (mail dropped, endpoints gone). replicas=%d, %s forwarding:\n"
              "%s\n",
              replicas, sync ? "sync" : "async",
              replicas > 1
                  ? (sync ? "an acked op is on every live backup, so the gate is ZERO lost"
                            " or doubled acked updates."
                          : "the bounded-lag ablation — liveness gated, losses reported.")
                  : "no replication — lost keys are counted, liveness still gated.");
  if (detect) {
    std::printf("detection: nobody tells the cluster — hosts heartbeat, the detector\n"
                "suspects silence, probes, confirms, and runs the failover itself. The\n"
                "gate adds: every crash confirmed, max detection latency within\n"
                "suspicion_timeout + one heartbeat interval.\n");
  }
  std::printf("\n");
  const KillResult r = RunKill(tiny, replicas, sync, detect);
  std::printf("%6s %6s %6s %6s | %6s %6s | %10s %10s | %9s %9s\n", "kills", "ops", "acked",
              "failed", "lost", "badrd", "promoted", "lostkeys", "rec(ms)", "max(ms)");
  std::printf("%6zu %6zu %6zu %6zu | %6llu %6llu | %10llu %10llu | %9.2f %9.2f\n", r.kills,
              r.ops, r.acked_increments, r.failed_ops,
              static_cast<unsigned long long>(r.lost_acked),
              static_cast<unsigned long long>(r.bad_reads),
              static_cast<unsigned long long>(r.failover.promoted_keys),
              static_cast<unsigned long long>(r.failover.lost_keys), MeanOf(r.recovery_ms),
              MaxOf(r.recovery_ms));
  std::printf("replication: %llu ops over %llu forward RPCs, %llu dropped; epoch %llu; "
              "all shards live: %s\n",
              static_cast<unsigned long long>(r.forwarded_ops),
              static_cast<unsigned long long>(r.forward_rpcs),
              static_cast<unsigned long long>(r.dropped_forwards),
              static_cast<unsigned long long>(r.final_epoch),
              r.all_shards_live ? "yes" : "NO");
  if (detect) {
    std::printf("detection: %zu/%zu crashes confirmed, latency mean %.2f ms max %.2f ms "
                "(bound %.2f ms); %llu heartbeats, %llu hints, %llu false suspicions\n",
                r.detected, r.kills, MeanOf(r.detect_ms), MaxOf(r.detect_ms),
                r.detect_bound_ms, static_cast<unsigned long long>(r.heartbeats),
                static_cast<unsigned long long>(r.hints),
                static_cast<unsigned long long>(r.false_suspicions));
  }

  bool ok = r.kills == 3 && r.all_shards_live;
  if (replicas > 1 && sync) {
    ok = ok && r.lost_acked == 0 && r.bad_reads == 0 && r.failover.lost_keys == 0 &&
         r.failover.promoted_keys > 0;
  }
  if (detect) {
    ok = ok && r.detected == r.kills && r.detect_ms.size() == r.kills &&
         MaxOf(r.detect_ms) <= r.detect_bound_ms;
  }
  if (!ok) {
    std::fprintf(stderr, "FAILOVER GATE FAILED\n");
  }
  if (!json_path.empty() && !WriteKillJson(json_path, r)) {
    return 1;
  }
  return ok ? 0 : 1;
}

// --- Flags ---------------------------------------------------------------------

// The one table both the parser and the usage text are generated from: a
// flag that is not listed here does not parse, and vice versa.
struct FlagSpec {
  const char* form;
  const char* help;
};
constexpr FlagSpec kFlagSpecs[] = {
    {"--hosts-churn", "cluster mode: membership churn under increment load"},
    {"--kill", "cluster mode: crash failover, abrupt host kills under load"},
    {"--tier=sharded|central", "global-tier layout for --hosts-churn (default sharded)"},
    {"--replicas=<n>", "copies per shard for --kill (default 2)"},
    {"--repl=sync|async", "forward mode for --kill (default sync)"},
    {"--detect", "for --kill: no oracle — heartbeat detection finds and recovers crashes"},
    {"--tiny", "smaller datasets and op counts (CI smoke)"},
    {"--json <path>", "write the cluster-mode result as JSON"},
};

void PrintUsage(const char* argv0) {
  std::fprintf(stderr, "usage: %s", argv0);
  for (const FlagSpec& flag : kFlagSpecs) {
    std::fprintf(stderr, " [%s]", flag.form);
  }
  std::fprintf(stderr, "\n");
  for (const FlagSpec& flag : kFlagSpecs) {
    std::fprintf(stderr, "  %-24s %s\n", flag.form, flag.help);
  }
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  using namespace faasm;
  bool tiny = false;
  bool hosts_churn = false;
  bool kill = false;
  bool detect = false;
  StateTier tier = StateTier::kSharded;
  int replicas = 2;
  bool repl_sync = true;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--hosts-churn") {
      hosts_churn = true;
    } else if (arg == "--kill") {
      kill = true;
    } else if (arg == "--detect") {
      detect = true;
    } else if (arg == "--tier=sharded") {
      tier = StateTier::kSharded;
    } else if (arg == "--tier=central") {
      tier = StateTier::kCentral;
    } else if (arg.rfind("--replicas=", 0) == 0) {
      replicas = std::atoi(arg.c_str() + std::strlen("--replicas="));
      if (replicas < 1) {
        std::fprintf(stderr, "%s: bad value in '%s'\n", argv[0], arg.c_str());
        PrintUsage(argv[0]);
        return 2;
      }
    } else if (arg == "--repl=sync") {
      repl_sync = true;
    } else if (arg == "--repl=async") {
      repl_sync = false;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "%s: unknown or malformed flag '%s'\n", argv[0], arg.c_str());
      PrintUsage(argv[0]);
      return 2;
    }
  }
  if (hosts_churn && kill) {
    std::fprintf(stderr, "%s: --hosts-churn and --kill are exclusive\n", argv[0]);
    PrintUsage(argv[0]);
    return 2;
  }
  if (detect && !kill) {
    std::fprintf(stderr, "%s: --detect requires --kill\n", argv[0]);
    PrintUsage(argv[0]);
    return 2;
  }
  if (kill) {
    return KillMain(tiny, replicas, repl_sync, detect, json_path);
  }
  if (hosts_churn) {
    return HostChurnMain(tiny, tier, json_path);
  }

  PrintHeader("Figure 10: creation latency vs churn rate (single host)");
  ContainerModel docker;
  PrintContainerCalibration(docker);

  BenchEnv env;
  wasm::ModuleBuilder b;
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {wasm::ValType::kI32});
  f.I32Const(0);
  f.End();
  auto module = wasm::CompileModule(wasm::DecodeModule(b.Build()).value()).value();
  FunctionSpec spec;
  spec.name = "noop";
  spec.module = module;

  const double faaslet_service = MeasureServiceSeconds(
      [&] { return Faaslet::Create(spec, env.Env()).status(); }, 200);
  auto prototype = Faaslet::Create(spec, env.Env()).value();
  auto proto = ProtoFaaslet::CaptureFrom(*prototype).value();
  const double proto_service = MeasureServiceSeconds(
      [&] { return Faaslet::CreateFromProto(spec, env.Env(), proto).status(); }, 200);
  const double docker_service = docker.cold_start_ns / 1e9;

  std::printf("\nmeasured service times: faaslet %.2f ms, proto-faaslet %.3f ms; docker %.1f s"
              " (calibrated)\n",
              faaslet_service * 1e3, proto_service * 1e3, docker_service);
  std::printf("creation parallelism: docker %d (daemon), faaslets 4 (cores)\n\n",
              docker.max_concurrent_cold_starts);

  std::printf("%14s | %14s %14s %16s\n", "rate (1/s)", "docker (ms)", "faaslet (ms)",
              "proto-faaslet (ms)");
  for (double rate : {0.1, 0.3, 1.0, 3.0, 10.0, 100.0, 1000.0, 3000.0, 10000.0, 20000.0,
                      50000.0, 100000.0, 200000.0}) {
    const double docker_ms =
        rate <= 3.5 ? SimulateCreationQueue(rate, docker_service, docker.max_concurrent_cold_starts,
                                            200.0)
                    : -1;
    const double faaslet_ms =
        rate <= 4.0 / faaslet_service
            ? SimulateCreationQueue(rate, faaslet_service, 4, std::min(200.0, 20000.0 / rate))
            : -1;
    const double proto_ms =
        rate <= 4.0 / proto_service
            ? SimulateCreationQueue(rate, proto_service, 4, std::min(200.0, 20000.0 / rate))
            : -1;
    auto cell = [](double v) {
      static char buffer[4][32];
      static int slot = 0;
      char* out = buffer[slot++ % 4];
      if (v < 0) {
        std::snprintf(out, 32, "%14s", "saturated");
      } else {
        std::snprintf(out, 32, "%14.2f", v);
      }
      return out;
    };
    std::printf("%14.1f | %s %s %s\n", rate, cell(docker_ms), cell(faaslet_ms), cell(proto_ms));
  }
  std::printf("\nExpected shape (paper): Docker saturates at ~3 creations/s; Faaslets reach\n"
              "hundreds/s and Proto-Faaslets thousands/s before their knees.\n");
  return 0;
}
