// Distributed divide-and-conquer matrix multiplication (§6.4, Fig. 8).
// A multiplication recursively splits into quadrant products chained as
// serverless functions: with two levels of splitting each multiplication
// uses 64 leaf multiplication functions and 9 merging functions, exactly the
// shape the paper reports. Inputs live in the global tier; workers pull only
// the block rows/columns they need; intermediate results flow through state.
#ifndef FAASM_WORKLOADS_MATMUL_H_
#define FAASM_WORKLOADS_MATMUL_H_

#include "core/invocation_context.h"
#include "kvs/router.h"
#include "runtime/registry.h"

namespace faasm {

struct MatmulConfig {
  uint32_t n = 256;        // matrix dimension (n x n doubles)
  uint32_t split_levels = 2;  // 8^levels leaf multiplications
  uint64_t seed = 7;
};

inline const char* kMatmulAKey = "mm:A";
inline const char* kMatmulBKey = "mm:B";
inline const char* kMatmulOutPrefix = "mm:out:";

// Seeds A and B (row-major n*n doubles); returns bytes written.
size_t SeedMatmulInputs(ShardedKvs& kvs, const MatmulConfig& config);

// "mm_div": multiplies an (size x size) block pair; recursion by chaining.
// Input: u32 n, u32 size, u32 a_row, u32 a_col, u32 b_row, u32 b_col,
//        u32 levels_left, string out_key.
int MatmulDivideFunction(InvocationContext& ctx);

// "mm_merge": out = sum of two child products per quadrant placement.
// Input: u32 size, string out_key, 8x string child keys (quadrant-major:
// q0t0 q0t1 q1t0 q1t1 ...).
int MatmulMergeFunction(InvocationContext& ctx);

Status RegisterMatmulFunctions(FunctionRegistry& registry);

Bytes EncodeMatmulDivideInput(uint32_t n, uint32_t size, uint32_t a_row, uint32_t a_col,
                              uint32_t b_row, uint32_t b_col, uint32_t levels_left,
                              const std::string& out_key);

// Reference single-node multiply for correctness checks.
std::vector<double> ReferenceMatmul(const std::vector<double>& a, const std::vector<double>& b,
                                    uint32_t n);

// Drives one full multiplication; returns the out key holding C.
template <typename Client>
Result<std::string> RunMatmul(Client& client, const MatmulConfig& config) {
  const std::string out_key = std::string(kMatmulOutPrefix) + "root";
  FAASM_ASSIGN_OR_RETURN(
      uint64_t id,
      client.Submit("mm_div", EncodeMatmulDivideInput(config.n, config.n, 0, 0, 0, 0,
                                                      config.split_levels, out_key)));
  FAASM_ASSIGN_OR_RETURN(int code, client.Await(id));
  if (code != 0) {
    return Internal("mm_div failed with code " + std::to_string(code));
  }
  return out_key;
}

}  // namespace faasm

#endif  // FAASM_WORKLOADS_MATMUL_H_
