#include "common/clock.h"

#include <thread>

namespace faasm {

TimeNs RealClock::Now() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void RealClock::SleepFor(TimeNs duration_ns) {
  if (duration_ns > 0) {
    std::this_thread::sleep_for(std::chrono::nanoseconds(duration_ns));
  }
}

RealClock& RealClock::Instance() {
  static RealClock clock;
  return clock;
}

}  // namespace faasm
