// Minimal leveled logger. Serverless runtimes are latency sensitive, so log
// calls below the configured level compile down to a level check and nothing
// else; there is no allocation unless a message is actually emitted.
#ifndef FAASM_COMMON_LOG_H_
#define FAASM_COMMON_LOG_H_

#include <sstream>
#include <string>

namespace faasm {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4, kOff = 5 };

// Process-wide log level; defaults to kWarn so tests and benchmarks stay quiet.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace log_internal {
void Emit(LogLevel level, const char* file, int line, const std::string& message);

class LineLogger {
 public:
  LineLogger(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LineLogger() { Emit(level_, file_, line_, stream_.str()); }

  template <typename T>
  LineLogger& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace log_internal

#define FAASM_LOG(level)                                   \
  if (::faasm::GetLogLevel() <= ::faasm::LogLevel::level)  \
  ::faasm::log_internal::LineLogger(::faasm::LogLevel::level, __FILE__, __LINE__)

#define LOG_TRACE FAASM_LOG(kTrace)
#define LOG_DEBUG FAASM_LOG(kDebug)
#define LOG_INFO FAASM_LOG(kInfo)
#define LOG_WARN FAASM_LOG(kWarn)
#define LOG_ERROR FAASM_LOG(kError)

}  // namespace faasm

#endif  // FAASM_COMMON_LOG_H_
