// Control-flow tests: blocks, loops, branches with value transfer, br_table,
// early return, nested structures — the parts that exercise the validator's
// preprocessed branch targets.
#include "tests/wasm/wasm_test_util.h"

namespace faasm::wasm {
namespace {

TEST(ControlTest, BlockWithResult) {
  auto instance = SingleFunction({}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.Block(BlockType::Of(ValType::kI32));
    f.I32Const(42);
    f.End();
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).status().code(), StatusCode::kInvalidArgument);
  auto out = instance->CallExport("f", {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].i32, 42u);
}

TEST(ControlTest, BrWithValueUnwindsStack) {
  // Push extra operands, then branch out of the block carrying one value; the
  // extra operands must be discarded.
  auto instance = SingleFunction({}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.Block(BlockType::Of(ValType::kI32));
    f.I32Const(111);  // clutter
    f.I32Const(222);  // clutter
    f.I32Const(7);    // branch value
    f.Br(0);
    f.End();
    f.End();
  });
  auto out = instance->CallExport("f", {});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()[0].i32, 7u);
}

TEST(ControlTest, BrIfTakenAndNotTaken) {
  auto instance = SingleFunction({ValType::kI32}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.Block();
    f.LocalGet(0);
    f.BrIf(0);       // skip the overwrite when arg != 0
    f.I32Const(99);
    f.Return();
    f.End();
    f.I32Const(1);
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(1)).value().i32, 1u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).value().i32, 99u);
}

TEST(ControlTest, LoopCountsToTen) {
  auto instance = SingleFunction({}, {ValType::kI32}, [](FunctionBuilder& f) {
    uint32_t i = f.AddLocal(ValType::kI32);
    f.ForConstLimit(i, 0, 10, [&] {});
    f.LocalGet(i);
    f.End();
  });
  auto out = instance->CallExport("f", {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].i32, 10u);
}

TEST(ControlTest, NestedLoopsComputeProduct) {
  auto instance = SingleFunction({ValType::kI32, ValType::kI32}, {ValType::kI32},
                                 [](FunctionBuilder& f) {
    uint32_t i = f.AddLocal(ValType::kI32);
    uint32_t j = f.AddLocal(ValType::kI32);
    uint32_t acc = f.AddLocal(ValType::kI32);
    f.ForLocalLimit(i, 0, 0, [&] {
      f.ForLocalLimit(j, 0, 1, [&] {
        f.LocalGet(acc);
        f.I32Const(1);
        f.Emit(Op::kI32Add);
        f.LocalSet(acc);
      });
    });
    f.LocalGet(acc);
    f.End();
  });
  EXPECT_EQ(RunBinary(*instance, MakeI32(7), MakeI32(6)).value().i32, 42u);
  EXPECT_EQ(RunBinary(*instance, MakeI32(0), MakeI32(100)).value().i32, 0u);
}

TEST(ControlTest, WhileHelper) {
  // Collatz step count for 27 (known: 111 steps).
  auto instance = SingleFunction({ValType::kI32}, {ValType::kI32}, [](FunctionBuilder& f) {
    uint32_t n = 0;
    uint32_t steps = f.AddLocal(ValType::kI32);
    f.While(
        [&] {
          f.LocalGet(n);
          f.I32Const(1);
          f.Emit(Op::kI32Ne);
        },
        [&] {
          f.LocalGet(n);
          f.I32Const(1);
          f.Emit(Op::kI32And);
          f.If();
          // odd: n = 3n + 1
          f.LocalGet(n);
          f.I32Const(3);
          f.Emit(Op::kI32Mul);
          f.I32Const(1);
          f.Emit(Op::kI32Add);
          f.LocalSet(n);
          f.Else();
          // even: n = n / 2
          f.LocalGet(n);
          f.I32Const(1);
          f.Emit(Op::kI32ShrU);
          f.LocalSet(n);
          f.End();
          f.LocalGet(steps);
          f.I32Const(1);
          f.Emit(Op::kI32Add);
          f.LocalSet(steps);
        });
    f.LocalGet(steps);
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(27)).value().i32, 111u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(1)).value().i32, 0u);
}

TEST(ControlTest, BrTableSelectsArm) {
  auto instance = SingleFunction({ValType::kI32}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.Block();  // depth 2 at br_table -> returns 30
    f.Block();  // depth 1 -> returns 20
    f.Block();  // depth 0 -> returns 10
    f.LocalGet(0);
    f.BrTable({0, 1}, 2);
    f.End();
    f.I32Const(10);
    f.Return();
    f.End();
    f.I32Const(20);
    f.Return();
    f.End();
    f.I32Const(30);
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).value().i32, 10u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(1)).value().i32, 20u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(2)).value().i32, 30u);   // default
  EXPECT_EQ(RunUnary(*instance, MakeI32(99)).value().i32, 30u);  // default clamps
}

TEST(ControlTest, BrToLoopHeadRepeats) {
  // Explicit br-to-loop (not via helper): sum 1..n.
  auto instance = SingleFunction({ValType::kI32}, {ValType::kI32}, [](FunctionBuilder& f) {
    uint32_t sum = f.AddLocal(ValType::kI32);
    uint32_t i = f.AddLocal(ValType::kI32);
    f.Block();
    f.Loop();
    f.LocalGet(i);
    f.LocalGet(0);
    f.Emit(Op::kI32GeS);
    f.BrIf(1);
    f.LocalGet(i);
    f.I32Const(1);
    f.Emit(Op::kI32Add);
    f.LocalTee(i);
    f.LocalGet(sum);
    f.Emit(Op::kI32Add);
    f.LocalSet(sum);
    f.Br(0);
    f.End();
    f.End();
    f.LocalGet(sum);
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(100)).value().i32, 5050u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).value().i32, 0u);
}

TEST(ControlTest, EarlyReturnFromNestedBlocks) {
  auto instance = SingleFunction({ValType::kI32}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.Block();
    f.Block();
    f.Block();
    f.LocalGet(0);
    f.If();
    f.I32Const(1);
    f.Return();  // return from three levels deep
    f.End();
    f.End();
    f.End();
    f.End();
    f.I32Const(2);
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(1)).value().i32, 1u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).value().i32, 2u);
}

TEST(ControlTest, IfWithoutElseNoResult) {
  auto instance = SingleFunction({ValType::kI32}, {ValType::kI32}, [](FunctionBuilder& f) {
    uint32_t out = f.AddLocal(ValType::kI32);
    f.I32Const(5);
    f.LocalSet(out);
    f.LocalGet(0);
    f.If();
    f.I32Const(6);
    f.LocalSet(out);
    f.End();
    f.LocalGet(out);
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(1)).value().i32, 6u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).value().i32, 5u);
}

TEST(ControlTest, SelectPicksOperand) {
  auto instance = SingleFunction({ValType::kI32}, {ValType::kI32}, [](FunctionBuilder& f) {
    f.I32Const(100);
    f.I32Const(200);
    f.LocalGet(0);
    f.Select();
    f.End();
  });
  EXPECT_EQ(RunUnary(*instance, MakeI32(1)).value().i32, 100u);
  EXPECT_EQ(RunUnary(*instance, MakeI32(0)).value().i32, 200u);
}

TEST(ControlTest, DeeplyNestedBlocks) {
  auto instance = SingleFunction({}, {ValType::kI32}, [](FunctionBuilder& f) {
    constexpr int kDepth = 100;
    for (int i = 0; i < kDepth; ++i) {
      f.Block();
    }
    f.I32Const(1);
    f.If();
    f.Br(kDepth - 1);  // jump almost all the way out
    f.End();
    for (int i = 0; i < kDepth; ++i) {
      f.End();
    }
    f.I32Const(123);
    f.End();
  });
  auto out = instance->CallExport("f", {});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()[0].i32, 123u);
}

TEST(ControlTest, MutualRecursion) {
  // is_even / is_odd via mutual recursion.
  ModuleBuilder b;
  uint32_t even_index = b.num_imports() + 0;
  uint32_t odd_index = b.num_imports() + 1;
  auto& even = b.AddFunction("is_even", {ValType::kI32}, {ValType::kI32});
  even.LocalGet(0);
  even.Emit(Op::kI32Eqz);
  even.If(BlockType::Of(ValType::kI32));
  even.I32Const(1);
  even.Else();
  even.LocalGet(0);
  even.I32Const(1);
  even.Emit(Op::kI32Sub);
  even.Call(odd_index);
  even.End();
  even.End();
  auto& odd = b.AddFunction("is_odd", {ValType::kI32}, {ValType::kI32});
  odd.LocalGet(0);
  odd.Emit(Op::kI32Eqz);
  odd.If(BlockType::Of(ValType::kI32));
  odd.I32Const(0);
  odd.Else();
  odd.LocalGet(0);
  odd.I32Const(1);
  odd.Emit(Op::kI32Sub);
  odd.Call(even_index);
  odd.End();
  odd.End();

  auto instance = InstantiateBuilder(b);
  auto out = instance->CallExport("is_even", {MakeI32(10)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].i32, 1u);
  out = instance->CallExport("is_even", {MakeI32(7)});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].i32, 0u);
}

}  // namespace
}  // namespace faasm::wasm
