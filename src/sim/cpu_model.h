// HostCpuModel: userspace stand-in for the cgroup cpu-shares isolation of
// §3.1. Each Faaslet's measured compute is charged to virtual time inflated
// by the host's current oversubscription factor (active runners / cores),
// approximating the Linux CFS fair share each thread would receive.
#ifndef FAASM_SIM_CPU_MODEL_H_
#define FAASM_SIM_CPU_MODEL_H_

#include <atomic>
#include <cstdint>

#include "common/clock.h"

namespace faasm {

class HostCpuModel {
 public:
  HostCpuModel(Clock* clock, int cores) : clock_(clock), cores_(cores) {}

  // Charges `compute_ns` of CPU work under fair sharing: with more active
  // runners than cores, each runner progresses proportionally slower.
  void Charge(TimeNs compute_ns) {
    const int active = active_.load(std::memory_order_relaxed);
    const double factor =
        active > cores_ ? static_cast<double>(active) / static_cast<double>(cores_) : 1.0;
    clock_->SleepFor(static_cast<TimeNs>(static_cast<double>(compute_ns) * factor));
  }

  // RAII marker for "this activity is on-CPU".
  class Running {
   public:
    explicit Running(HostCpuModel& model) : model_(model) {
      model_.active_.fetch_add(1, std::memory_order_relaxed);
    }
    ~Running() { model_.active_.fetch_sub(1, std::memory_order_relaxed); }
    Running(const Running&) = delete;
    Running& operator=(const Running&) = delete;

   private:
    HostCpuModel& model_;
  };

  int cores() const { return cores_; }

 private:
  Clock* clock_;
  int cores_;
  std::atomic<int> active_{0};
};

}  // namespace faasm

#endif  // FAASM_SIM_CPU_MODEL_H_
