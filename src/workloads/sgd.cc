#include "workloads/sgd.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "state/ddo.h"

namespace faasm {

size_t SeedSgdDataset(ShardedKvs& kvs, const SgdConfig& config) {
  Rng rng(config.seed);

  // Hidden ground-truth weights generate linearly-separable-ish labels so the
  // training loss demonstrably falls.
  std::vector<double> truth(config.n_features);
  for (auto& w : truth) {
    w = rng.NextGaussian();
  }

  // CSC arrays.
  std::vector<uint64_t> col_ptr(config.n_examples + 1, 0);
  std::vector<uint32_t> row_idx;
  std::vector<double> values;
  std::vector<double> labels(config.n_examples);

  for (uint32_t col = 0; col < config.n_examples; ++col) {
    double label = 0;
    for (uint32_t k = 0; k < config.nnz_per_example; ++k) {
      const uint32_t row = static_cast<uint32_t>(rng.NextBelow(config.n_features));
      const double value = rng.NextGaussian();
      row_idx.push_back(row);
      values.push_back(value);
      label += truth[row] * value;
    }
    col_ptr[col + 1] = values.size();
    labels[col] = label + 0.1 * rng.NextGaussian();  // noisy target
  }

  auto put = [&kvs](const std::string& key, const void* data, size_t bytes) {
    const auto* p = static_cast<const uint8_t*>(data);
    kvs.Set(key, Bytes(p, p + bytes));
    return bytes;
  };

  size_t total = 0;
  const std::string matrix = kSgdMatrixKey;
  total += put(matrix + ":vals", values.data(), values.size() * sizeof(double));
  total += put(matrix + ":rows", row_idx.data(), row_idx.size() * sizeof(uint32_t));
  total += put(matrix + ":cols", col_ptr.data(), col_ptr.size() * sizeof(uint64_t));
  total += put(kSgdLabelsKey, labels.data(), labels.size() * sizeof(double));

  std::vector<double> weights(config.n_features, 0.0);
  total += put(kSgdWeightsKey, weights.data(), weights.size() * sizeof(double));
  return total;
}

Bytes EncodeSgdWorkerInput(uint32_t col_start, uint32_t col_end, float learning_rate,
                           uint32_t push_interval, bool delta_push) {
  Bytes out;
  ByteWriter writer(out);
  writer.Put<uint32_t>(col_start);
  writer.Put<uint32_t>(col_end);
  writer.Put<float>(learning_rate);
  writer.Put<uint32_t>(push_interval);
  writer.Put<uint8_t>(delta_push ? 1 : 0);
  return out;
}

int SgdUpdateFunction(InvocationContext& ctx) {
  ByteReader reader(ctx.Input());
  auto col_start = reader.Get<uint32_t>();
  auto col_end = reader.Get<uint32_t>();
  auto learning_rate = reader.Get<float>();
  auto push_interval = reader.Get<uint32_t>();
  auto delta_push = reader.Get<uint8_t>();
  if (!col_start.ok() || !col_end.ok() || !learning_rate.ok() || !push_interval.ok() ||
      !delta_push.ok()) {
    return 2;
  }

  // DDOs over the two-tier state API (Listing 1 lines 1-3).
  SparseMatrixCsc matrix(&ctx.state(), kSgdMatrixKey);
  SharedArray<double> labels(&ctx.state(), kSgdLabelsKey);
  AsyncArray<double> weights(&ctx.state(), kSgdWeightsKey,
                             static_cast<int>(push_interval.value()));
  weights.set_delta_push(delta_push.value() != 0);
  if (!matrix.Attach().ok() || !weights.Attach().ok()) {
    return 3;
  }
  // Replicate only this worker's column range and label slice.
  if (!matrix.PullColumns(col_start.value(), col_end.value()).ok()) {
    return 4;
  }
  if (!labels.PullElements(col_start.value(), col_end.value() - col_start.value()).ok()) {
    return 5;
  }

  const uint64_t* col_ptr = matrix.col_ptr();
  const double* values = matrix.values();
  const uint32_t* rows = matrix.row_indices();
  double* w = weights.data();
  const double lr = learning_rate.value();

  Stopwatch compute;
  for (uint32_t col = col_start.value(); col < col_end.value(); ++col) {
    // Prediction with the current (racily shared) weights — HOGWILD.
    double prediction = 0;
    for (uint64_t k = col_ptr[col]; k < col_ptr[col + 1]; ++k) {
      prediction += w[rows[k]] * values[k];
    }
    const double error = labels[col] - prediction;
    for (uint64_t k = col_ptr[col]; k < col_ptr[col + 1]; ++k) {
      w[rows[k]] += lr * error * values[k];
      // Report the racy write so delta pushes ship only the touched pages.
      weights.MarkDirtyElements(rows[k], 1);
    }
    // Sporadic push of the shared vector to the global tier (line 13).
    if (!weights.MaybePush().ok()) {
      return 6;
    }
  }
  ctx.ChargeCompute(compute.ElapsedNs());

  if (!weights.Push().ok()) {
    return 7;
  }
  return 0;
}

int SgdLossFunction(InvocationContext& ctx) {
  SparseMatrixCsc matrix(&ctx.state(), kSgdMatrixKey);
  SharedArray<double> labels(&ctx.state(), kSgdLabelsKey);
  SharedArray<double> weights(&ctx.state(), kSgdWeightsKey);
  if (!matrix.Attach().ok() || !labels.Attach().ok() || !weights.Attach().ok()) {
    return 3;
  }
  // Evaluate on a fixed sample so the metric pass does not dominate the
  // experiment's data movement.
  const size_t n = std::min<size_t>(matrix.num_cols(), 1024);
  if (!matrix.PullColumns(0, n).ok()) {
    return 4;
  }

  const uint64_t* col_ptr = matrix.col_ptr();
  const double* values = matrix.values();
  const uint32_t* rows = matrix.row_indices();
  const double* w = weights.data();

  Stopwatch compute;
  double sum_sq = 0;
  for (size_t col = 0; col < n; ++col) {
    double prediction = 0;
    for (uint64_t k = col_ptr[col]; k < col_ptr[col + 1]; ++k) {
      prediction += w[rows[k]] * values[k];
    }
    const double error = labels[col] - prediction;
    sum_sq += error * error;
  }
  ctx.ChargeCompute(compute.ElapsedNs());

  const double mse = sum_sq / static_cast<double>(n);
  Bytes out;
  ByteWriter writer(out);
  writer.Put<double>(mse);
  ctx.WriteOutput(std::move(out));
  return 0;
}

Status RegisterSgdFunctions(FunctionRegistry& registry) {
  // Both functions hammer the shared weights vector; declaring it as the
  // placement affinity key lets the scheduler prefer the host mastering its
  // global-tier shard, whose weight pushes/pulls cost zero network bytes.
  FunctionOptions options;
  options.state_affinity_key = kSgdWeightsKey;
  FAASM_RETURN_IF_ERROR(registry.RegisterNative("sgd_update", SgdUpdateFunction, options));
  return registry.RegisterNative("sgd_loss", SgdLossFunction, options);
}

}  // namespace faasm
