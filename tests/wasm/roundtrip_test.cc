// Builder -> encode -> decode -> re-encode round trips, checking that the
// binary pipeline (the untrusted upload path of §3.4) is self-consistent.
#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/compiled.h"
#include "wasm/decoder.h"
#include "wasm/encoder.h"

namespace faasm::wasm {
namespace {

Bytes BuildAddModule() {
  ModuleBuilder b;
  auto& f = b.AddFunction("add", {ValType::kI32, ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.LocalGet(1);
  f.Emit(Op::kI32Add);
  f.End();
  b.AddMemory(1, 4);
  b.ExportMemory("memory");
  return b.Build();
}

TEST(RoundTripTest, MagicAndVersion) {
  Bytes binary = BuildAddModule();
  ASSERT_GE(binary.size(), 8u);
  EXPECT_EQ(binary[0], 0x00);
  EXPECT_EQ(binary[1], 'a');
  EXPECT_EQ(binary[2], 's');
  EXPECT_EQ(binary[3], 'm');
  EXPECT_EQ(binary[4], 1);
}

TEST(RoundTripTest, DecodePreservesStructure) {
  Bytes binary = BuildAddModule();
  auto module = DecodeModule(binary);
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  const Module& m = module.value();
  EXPECT_EQ(m.types.size(), 1u);
  EXPECT_EQ(m.types[0].params.size(), 2u);
  EXPECT_EQ(m.types[0].results.size(), 1u);
  EXPECT_EQ(m.function_types.size(), 1u);
  EXPECT_EQ(m.bodies.size(), 1u);
  ASSERT_TRUE(m.memory.has_value());
  EXPECT_EQ(m.memory->min, 1u);
  EXPECT_EQ(m.memory->max, 4u);
  EXPECT_TRUE(m.FindExport("add", ExternalKind::kFunction).has_value());
  EXPECT_TRUE(m.FindExport("memory", ExternalKind::kMemory).has_value());
}

TEST(RoundTripTest, EncodeDecodeEncodeIsStable) {
  Bytes binary = BuildAddModule();
  auto module = DecodeModule(binary);
  ASSERT_TRUE(module.ok());
  Bytes re_encoded = EncodeModule(module.value());
  EXPECT_EQ(binary, re_encoded);
}

TEST(RoundTripTest, ComplexModuleRoundTrips) {
  ModuleBuilder b;
  uint32_t imported = b.ImportFunction("env", "host_fn", {ValType::kI32}, {ValType::kI32});
  uint32_t g = b.AddGlobal(ValType::kI64, true, MakeI64(99));

  auto& f = b.AddFunction("run", {}, {ValType::kI64});
  f.I32Const(7);
  f.Call(imported);
  f.Drop();
  f.GlobalGet(g);
  f.End();

  auto& callee = b.AddFunction("", {ValType::kF64}, {ValType::kF64});
  callee.LocalGet(0);
  callee.Emit(Op::kF64Sqrt);
  callee.End();

  b.AddMemory(2, 8);
  b.AddData(16, Bytes{1, 2, 3, 4});
  b.AddTable(4);
  b.AddElementSegment(1, {callee.index()});

  Bytes binary = b.Build();
  auto module = DecodeModule(binary);
  ASSERT_TRUE(module.ok()) << module.status().ToString();
  const Module& m = module.value();
  EXPECT_EQ(m.imports.size(), 1u);
  EXPECT_EQ(m.imports[0].module, "env");
  EXPECT_EQ(m.globals.size(), 1u);
  EXPECT_TRUE(m.globals[0].mutable_);
  EXPECT_EQ(m.globals[0].init.i64, 99u);
  EXPECT_EQ(m.data.size(), 1u);
  EXPECT_EQ(m.data[0].offset, 16u);
  EXPECT_EQ(m.elements.size(), 1u);
  EXPECT_EQ(m.elements[0].offset, 1u);
  EXPECT_EQ(EncodeModule(m), binary);
}

TEST(RoundTripTest, RejectsBadMagic) {
  Bytes binary = BuildAddModule();
  binary[1] = 'x';
  EXPECT_FALSE(DecodeModule(binary).ok());
}

TEST(RoundTripTest, RejectsBadVersion) {
  Bytes binary = BuildAddModule();
  binary[4] = 9;
  EXPECT_FALSE(DecodeModule(binary).ok());
}

TEST(RoundTripTest, RejectsTruncatedBinary) {
  Bytes binary = BuildAddModule();
  for (size_t cut : {binary.size() - 1, binary.size() / 2, size_t{9}}) {
    Bytes truncated(binary.begin(), binary.begin() + cut);
    EXPECT_FALSE(DecodeModule(truncated).ok()) << "cut at " << cut;
  }
}

TEST(RoundTripTest, RejectsOutOfOrderSections) {
  // Hand-craft: memory section (5) before type section (1).
  Bytes binary;
  AppendScalar(binary, kWasmMagic);
  AppendScalar(binary, kWasmVersion);
  // memory section: 1 memory, min 1 no max
  binary.insert(binary.end(), {5, 3, 1, 0, 1});
  // type section: empty vec
  binary.insert(binary.end(), {1, 1, 0});
  EXPECT_FALSE(DecodeModule(binary).ok());
}

TEST(RoundTripTest, CompiledModuleSharesAcrossInstances) {
  Bytes binary = BuildAddModule();
  auto module = DecodeModule(binary);
  ASSERT_TRUE(module.ok());
  auto compiled = CompileModule(std::move(module).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  EXPECT_EQ(compiled.value()->functions.size(), 1u);
  EXPECT_EQ(compiled.value()->functions[0].param_count, 2u);
  EXPECT_EQ(compiled.value()->functions[0].result_arity, 1u);
}

}  // namespace
}  // namespace faasm::wasm
