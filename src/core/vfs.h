// Read-global / write-local virtual filesystem (§3.1). Files are served from
// a cluster-wide GlobalFileStore (the paper's object store / file server);
// writes land in a per-Faaslet local overlay. Open files are capabilities:
// unforgeable fd handles per Faaslet (WASI model), so no chroot or layered
// filesystem is needed.
#ifndef FAASM_CORE_VFS_H_
#define FAASM_CORE_VFS_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace faasm {

// Cluster-wide read-only file contents, e.g. library code and model files.
class GlobalFileStore {
 public:
  void Put(const std::string& path, Bytes contents);
  Result<Bytes> Get(const std::string& path) const;
  bool Exists(const std::string& path) const;
  size_t file_count() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Bytes> files_;
};

// Per-Faaslet filesystem view: fd table + local write overlay.
class VirtualFilesystem {
 public:
  explicit VirtualFilesystem(GlobalFileStore* global) : global_(global) {}

  static constexpr int kOpenRead = 0x1;
  static constexpr int kOpenWrite = 0x2;
  static constexpr int kOpenCreate = 0x4;

  // Opens a file; reads hit the local overlay first, then the global store.
  Result<int> Open(const std::string& path, int flags);
  Status Close(int fd);
  Result<int> Dup(int fd);

  // Sequential read/write at the fd's cursor; returns bytes moved.
  Result<size_t> Read(int fd, uint8_t* dst, size_t len);
  Result<size_t> Write(int fd, const uint8_t* src, size_t len);
  Result<size_t> Seek(int fd, size_t position);

  struct Stat {
    size_t size = 0;
    bool writable = false;
  };
  Result<Stat> StatPath(const std::string& path) const;

  // Resets the overlay and fd table (Faaslet reset between tenants).
  void Reset();

  size_t open_fd_count() const;

 private:
  struct OpenFile {
    std::string path;
    size_t cursor = 0;
    bool writable = false;
    // Read snapshot for global files; writable files point into overlay_.
    std::shared_ptr<Bytes> read_data;
  };

  GlobalFileStore* global_;
  std::map<std::string, std::shared_ptr<Bytes>> overlay_;
  std::map<int, OpenFile> fds_;
  int next_fd_ = 3;  // 0-2 reserved, POSIX style
};

}  // namespace faasm

#endif  // FAASM_CORE_VFS_H_
