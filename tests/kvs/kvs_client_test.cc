#include "kvs/kvs_client.h"

#include <gtest/gtest.h>

#include "net/framing.h"
#include "runtime/cluster.h"

namespace faasm {
namespace {

class KvsClientTest : public ::testing::Test {
 protected:
  KvsClientTest() : network_(&clock_, NoLatency()), server_(&store_, &network_) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore store_;
  KvsServer server_;
};

TEST_F(KvsClientTest, SetGetRoundTrip) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("key", Bytes{5, 6, 7}).ok());
  EXPECT_EQ(client.Read("key").value(), (Bytes{5, 6, 7}));
  EXPECT_EQ(store_.Get("key").value(), (Bytes{5, 6, 7}));  // really server-side
}

TEST_F(KvsClientTest, MissingKeyPropagatesNotFound) {
  KvsClient client(&network_, "host-0");
  EXPECT_EQ(client.Read("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Size("missing").status().code(), StatusCode::kNotFound);
}

TEST_F(KvsClientTest, RangedOps) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("key", Bytes{0, 1, 2, 3, 4}).ok());
  EXPECT_EQ(client.Read("key", ReadOptions{.offset = 1, .len = 3}).value(), (Bytes{1, 2, 3}));
  ASSERT_TRUE(client.SetRange("key", 4, Bytes{9, 9}).ok());
  EXPECT_EQ(client.Size("key").value(), 6u);
}

TEST_F(KvsClientTest, SetRangesAppliesAllRangesInOneRoundTrip) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("key", Bytes(6, 0)).ok());
  network_.ResetStats();
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{1, Bytes{7, 7}});
  ranges.push_back(ValueRange{4, Bytes{8, 8, 8}});  // extends the value to 7
  ASSERT_TRUE(client.SetRanges("key", ranges).ok());
  EXPECT_EQ(store_.Get("key").value(), (Bytes{0, 7, 7, 0, 8, 8, 8}));
  // The whole batch costs one request/response pair.
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 1u);
  EXPECT_EQ(network_.StatsFor("host-0").rx_messages, 1u);
}

TEST_F(KvsClientTest, AbsurdRangeOffsetsRejected) {
  // Offsets come off the wire: an overflowing offset + length must be
  // rejected, not wrap around and scribble past the value buffer.
  KvsClient client(&network_, "host-0");
  EXPECT_FALSE(client.SetRange("key", ~uint64_t{0} - 1, Bytes{1, 2}).ok());
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{~uint64_t{0} - 1, Bytes{1, 2}});
  EXPECT_FALSE(client.SetRanges("key", ranges).ok());
  EXPECT_FALSE(store_.Exists("key"));
}

TEST_F(KvsClientTest, SetRangesOnMissingKeyCreatesIt) {
  KvsClient client(&network_, "host-0");
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{2, Bytes{9}});
  ASSERT_TRUE(client.SetRanges("fresh", ranges).ok());
  EXPECT_EQ(store_.Get("fresh").value(), (Bytes{0, 0, 9}));
}

TEST_F(KvsClientTest, AppendReturnsNewLength) {
  KvsClient client(&network_, "host-0");
  EXPECT_EQ(client.Append("log", Bytes{1, 2}).value(), 2u);
  EXPECT_EQ(client.Append("log", Bytes{3}).value(), 3u);
}

TEST_F(KvsClientTest, ExistsAndDelete) {
  KvsClient client(&network_, "host-0");
  EXPECT_FALSE(client.Exists("k").value());
  ASSERT_TRUE(client.Set("k", Bytes{1}).ok());
  EXPECT_TRUE(client.Exists("k").value());
  ASSERT_TRUE(client.Delete("k").ok());
  EXPECT_FALSE(client.Exists("k").value());
}

TEST_F(KvsClientTest, DistributedLocks) {
  KvsClient host_a(&network_, "host-a");
  KvsClient host_b(&network_, "host-b");
  EXPECT_TRUE(host_a.TryLockWrite("key").value());
  EXPECT_FALSE(host_b.TryLockWrite("key").value());
  EXPECT_FALSE(host_b.TryLockRead("key").value());
  ASSERT_TRUE(host_a.UnlockWrite("key").ok());
  EXPECT_TRUE(host_b.TryLockRead("key").value());
  ASSERT_TRUE(host_b.UnlockRead("key").ok());
}

TEST_F(KvsClientTest, SetOps) {
  KvsClient client(&network_, "host-0");
  EXPECT_TRUE(client.SetAdd("warm:f", "host-0").value());
  EXPECT_FALSE(client.SetAdd("warm:f", "host-0").value());
  auto members = client.SetMembers("warm:f");
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members.value(), (std::vector<std::string>{"host-0"}));
  EXPECT_TRUE(client.SetRemove("warm:f", "host-0").value());
}

// --- kWrongMaster redirect path ------------------------------------------------

TEST_F(KvsClientTest, WrongMasterSurfacesImmediatelyWithoutShardMap) {
  // A centralised client has no alternate route: when its one server
  // answers kWrongMaster (here: an ownership-checking shard server that
  // does not master the key), the error surfaces instead of retrying.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  map.AddShard(ShardMap::EndpointForHost("host-2"));
  KvStore shard;
  KvsServer shard_server(&shard, &network_, ShardMap::EndpointForHost("host-1"), &map);

  std::string foreign_key;
  for (int i = 0; i < 100000 && foreign_key.empty(); ++i) {
    std::string probe = "probe-" + std::to_string(i);
    if (map.MasterFor(probe) == ShardMap::EndpointForHost("host-2")) {
      foreign_key = std::move(probe);
    }
  }
  ASSERT_FALSE(foreign_key.empty());

  KvsClient pinned(&network_, "host-0", ShardMap::EndpointForHost("host-1"));
  network_.ResetStats();
  EXPECT_EQ(pinned.Set(foreign_key, Bytes{1}).code(), StatusCode::kWrongMaster);
  EXPECT_EQ(pinned.Read(foreign_key).status().code(), StatusCode::kWrongMaster);
  // No retry storm: exactly one round trip per op.
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 2u);
  EXPECT_FALSE(shard.Exists(foreign_key));
}

TEST_F(KvsClientTest, RoutedClientRetriesWrongMasterUntilOpLands) {
  // A sharded client that gets kWrongMaster (stale route / key frozen
  // mid-migration) backs off and retries the op; when the redirect clears
  // (here: a scripted endpoint that bounces the first two attempts, as a
  // mid-handoff shard would) the op lands. This is the client half of the
  // redirect protocol; the store half is covered by kv_store_test.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  int attempts = 0;
  network_.RegisterEndpoint(ShardMap::EndpointForHost("host-1"), [&](const Bytes&) {
    ++attempts;
    const StatusCode code = attempts <= 2 ? StatusCode::kWrongMaster : StatusCode::kOk;
    return Bytes{static_cast<uint8_t>(code)};
  });
  KvsClient client(&network_, "host-0", &map, /*local_store=*/nullptr);
  Status status = client.Set("migrating-key", Bytes{7});
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(attempts, 3);  // two redirects, then the op landed
  network_.UnregisterEndpoint(ShardMap::EndpointForHost("host-1"));
}

// --- Central-tier no-op membership behaviour -----------------------------------

TEST_F(KvsClientTest, CentralTierAddRemoveHostLeavesTierUntouched) {
  // With state_tier = kCentral, AddHost/RemoveHost change compute only: the
  // single "kvs" endpoint keeps mastering everything, the epoch never
  // moves, nothing migrates, and clients never see a redirect.
  ClusterConfig config;
  config.hosts = 2;
  config.state_tier = StateTier::kCentral;
  FaasmCluster cluster(config);
  ASSERT_TRUE(cluster.kvs().Set("stable", Bytes{4, 2}).ok());
  const uint64_t epoch_before = cluster.shard_map().epoch();

  cluster.Run([&](Frontend&) {
    auto added = cluster.AddHost();
    ASSERT_TRUE(added.ok());
    EXPECT_EQ(cluster.host(cluster.host_count() - 1).name(), added.value());
    // The new host's client routes to the central endpoint like everyone.
    EXPECT_FALSE(cluster.host(cluster.host_count() - 1).kvs().MasterLocal("stable"));
    EXPECT_EQ(cluster.host(0).kvs().Read("stable").value(), (Bytes{4, 2}));

    ASSERT_TRUE(cluster.RemoveHost(added.value()).ok());
    EXPECT_EQ(cluster.host(0).kvs().Read("stable").value(), (Bytes{4, 2}));
  });

  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before);
  EXPECT_EQ(cluster.shard_map().MasterFor("stable"), "kvs");
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 0u);
  EXPECT_EQ(cluster.migration_stats().keys_moved, 0u);
  EXPECT_EQ(cluster.migration_stats().bytes_moved, 0u);
}

// --- Batched ops ----------------------------------------------------------------

TEST_F(KvsClientTest, BatchShipsAllOpsInOneRpc) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("seed", Bytes{1, 2, 3}).ok());
  network_.ResetStats();

  Status set_status = Internal("ack never fired");
  Result<Bytes> got = Internal("ack never fired");
  bool added = false;

  OpBatch batch;
  batch.Set("a", Bytes{4}, [&](const Status& s) { set_status = s; });
  batch.SetRange("seed", 1, Bytes{9});
  batch.SetAdd("members", "m1", [&](const Status& s) { added = s.ok(); });
  batch.Read("seed", [&](const Result<Bytes>& value) { got = value; });
  batch.Append("log", Bytes{7, 7});
  ASSERT_EQ(batch.size(), 5u);

  Status status = client.ExecuteBatchNow(std::move(batch));
  ASSERT_TRUE(status.ok()) << status.ToString();
  // Five ops, ONE round trip.
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 1u);
  EXPECT_EQ(network_.StatsFor("host-0").rx_messages, 1u);

  EXPECT_TRUE(set_status.ok());
  EXPECT_TRUE(added);
  ASSERT_TRUE(got.ok());
  // The Get ran after the SetRange in the same batch (per-key order holds).
  EXPECT_EQ(got.value(), (Bytes{1, 9, 3}));
  EXPECT_EQ(store_.Get("a").value(), (Bytes{4}));
  EXPECT_EQ(store_.Get("log").value(), (Bytes{7, 7}));
}

TEST_F(KvsClientTest, BatchAggregateStatusReportsPerOpFailure) {
  KvsClient client(&network_, "host-0");
  OpBatch batch;
  Status get_status = OkStatus();
  batch.Read("missing", [&](const Result<Bytes>& value) { get_status = value.status(); });
  batch.Set("fine", Bytes{1});
  Status status = client.ExecuteBatchNow(std::move(batch));
  EXPECT_EQ(status.code(), StatusCode::kNotFound);  // aggregate carries the op error
  EXPECT_EQ(get_status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(store_.Exists("fine"));  // the other op still landed
}

TEST_F(KvsClientTest, ConsecutiveSetRangesOnOneKeyCoalesce) {
  KvsClient client(&network_, "host-0");
  int acks = 0;
  OpBatch batch;
  std::vector<ValueRange> first;
  first.push_back(ValueRange{0, Bytes{1, 2}});
  std::vector<ValueRange> second;
  second.push_back(ValueRange{2, Bytes{3, 4}});  // adjacent to the first push
  batch.SetRanges("k", std::move(first), [&](const Status& s) { acks += s.ok() ? 1 : 0; });
  batch.SetRanges("k", std::move(second), [&](const Status& s) { acks += s.ok() ? 1 : 0; });
  // Two pushes of one key in one batch: a single sub-op with merged runs.
  EXPECT_EQ(batch.size(), 1u);
  ASSERT_TRUE(client.ExecuteBatchNow(std::move(batch)).ok());
  EXPECT_EQ(acks, 2);  // both acks fire with the merged op's status
  EXPECT_EQ(store_.Get("k").value(), (Bytes{1, 2, 3, 4}));
}

TEST_F(KvsClientTest, BatchGroupsPerEndpointAndRunsMasterLocalInProcess) {
  // Sharded layout: host-0 serves its own shard, host-1's shard is remote.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-0"));
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  KvStore local_shard;
  KvStore remote_shard;
  KvsServer remote_server(&remote_shard, &network_, ShardMap::EndpointForHost("host-1"), &map);
  KvsClient client(&network_, "host-0", &map, &local_shard);

  // Pick keys mastered on each side.
  std::string local_key, remote_key;
  for (int i = 0; i < 100000 && (local_key.empty() || remote_key.empty()); ++i) {
    std::string probe = "probe-" + std::to_string(i);
    std::string& slot =
        map.MasterFor(probe) == ShardMap::EndpointForHost("host-0") ? local_key : remote_key;
    if (slot.empty()) {
      slot = std::move(probe);
    }
  }

  network_.ResetStats();
  OpBatch batch;
  batch.Set(local_key, Bytes{1});
  batch.Set(remote_key, Bytes{3});
  ASSERT_TRUE(client.ExecuteBatchNow(std::move(batch)).ok());

  // The master-local group ran in process: at most ONE RPC left this host
  // (the remote group), regardless of how many keys each group held.
  EXPECT_LE(network_.StatsFor("host-0").tx_messages, 1u);
  EXPECT_EQ(remote_shard.Get(remote_key).value(), (Bytes{3}));
  EXPECT_EQ(local_shard.Get(local_key).value(), (Bytes{1}));
}

TEST_F(KvsClientTest, BatchRetriesOnlyBouncedOpsUntilTheyLand) {
  // Scripted shard: bounces every op of the first two batch requests with a
  // per-op kWrongMaster (a shard mid-handoff), then serves for real. The
  // client must retry JUST the bounced ops against the (unchanged) route
  // until they land.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  KvStore shard;
  int requests = 0;
  network_.RegisterEndpoint(ShardMap::EndpointForHost("host-1"), [&](const Bytes& request) {
    ++requests;
    ByteReader reader(request);
    auto op = reader.Get<uint8_t>();
    EXPECT_EQ(op.value(), 18);  // kBatch
    auto count_in = ReadFrameBatch(reader);
    Bytes response;
    ByteWriter writer(response);
    writer.Put<uint8_t>(0);  // framing-level OK
    if (requests <= 2) {
      // Bounce every sub-op individually.
      BeginFrameBatch(writer, static_cast<uint32_t>(count_in.value().size()));
      for (size_t i = 0; i < count_in.value().size(); ++i) {
        Bytes part;
        ByteWriter part_writer(part);
        part_writer.Put<uint8_t>(static_cast<uint8_t>(StatusCode::kWrongMaster));
        AppendFrame(writer, part);
      }
      return response;
    }
    // Serve for real from the third request on.
    BeginFrameBatch(writer, static_cast<uint32_t>(count_in.value().size()));
    for (const Bytes& part : count_in.value()) {
      ByteReader part_reader(part);
      (void)part_reader.Get<uint8_t>();
      auto key = part_reader.GetString();
      auto value = part_reader.GetBytes();
      (void)shard.Set(key.value(), value.value());
      Bytes out;
      ByteWriter out_writer(out);
      out_writer.Put<uint8_t>(0);
      AppendFrame(writer, out);
    }
    return response;
  });

  KvsClient client(&network_, "host-0", &map, /*local_store=*/nullptr);
  OpBatch batch;
  batch.Set("k1", Bytes{1});
  batch.Set("k2", Bytes{2});
  Status status = client.ExecuteBatchNow(std::move(batch));
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(requests, 3);  // two full bounces, then the ops landed together
  EXPECT_EQ(shard.Get("k1").value(), (Bytes{1}));
  EXPECT_EQ(shard.Get("k2").value(), (Bytes{2}));
  network_.UnregisterEndpoint(ShardMap::EndpointForHost("host-1"));
}

TEST_F(KvsClientTest, BatchStraddlingMigrationBouncesOnlyMovingKeys) {
  // An ownership-checking server bounces the sub-ops for keys it does not
  // master; without a routable alternative (centralised client pinned at
  // this server) the bounce surfaces per-op while the mastered ops land.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  map.AddShard(ShardMap::EndpointForHost("host-2"));
  KvStore shard;
  KvsServer shard_server(&shard, &network_, ShardMap::EndpointForHost("host-1"), &map);

  std::string mine, foreign;
  for (int i = 0; i < 100000 && (mine.empty() || foreign.empty()); ++i) {
    std::string probe = "probe-" + std::to_string(i);
    std::string& slot =
        map.MasterFor(probe) == ShardMap::EndpointForHost("host-1") ? mine : foreign;
    if (slot.empty()) {
      slot = std::move(probe);
    }
  }

  KvsClient pinned(&network_, "host-0", ShardMap::EndpointForHost("host-1"));
  Status mine_status = Internal("unset");
  Status foreign_status = Internal("unset");
  OpBatch batch;
  batch.Set(mine, Bytes{1}, [&](const Status& s) { mine_status = s; });
  batch.Set(foreign, Bytes{2}, [&](const Status& s) { foreign_status = s; });
  Status status = pinned.ExecuteBatchNow(std::move(batch));
  EXPECT_EQ(status.code(), StatusCode::kWrongMaster);
  EXPECT_TRUE(mine_status.ok());
  EXPECT_EQ(foreign_status.code(), StatusCode::kWrongMaster);
  EXPECT_EQ(shard.Get(mine).value(), (Bytes{1}));
  EXPECT_FALSE(shard.Exists(foreign));
}

// --- Unified read API + read cache ----------------------------------------------

TEST_F(KvsClientTest, ReadCacheServesRepeatReadsWithoutRpcs) {
  KvsClient client(&network_, "host-0");
  client.EnableReadCache(kSecond);
  ASSERT_TRUE(client.Set("key", Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(client.Read("key").ok());  // miss: fetches and installs

  network_.ResetStats();
  auto again = client.Read("key");  // hit: served locally
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value(), (Bytes{1, 2, 3}));
  // Ranged reads slice the cached full value; Size() is answered from it too.
  EXPECT_EQ(client.Read("key", ReadOptions{.offset = 1, .len = 2}).value(), (Bytes{2, 3}));
  EXPECT_EQ(client.Size("key").value(), 3u);
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 0u);  // zero network bytes
  EXPECT_GE(client.read_cache().hits(), 3u);
}

TEST_F(KvsClientTest, OwnWritesInvalidateCachedReads) {
  KvsClient client(&network_, "host-0");
  client.EnableReadCache(kSecond);
  ASSERT_TRUE(client.Set("key", Bytes{1}).ok());
  ASSERT_TRUE(client.Read("key").ok());
  // The host's own write drops its cached read: the next read refetches.
  ASSERT_TRUE(client.Set("key", Bytes{2}).ok());
  EXPECT_EQ(client.Read("key").value(), (Bytes{2}));
  EXPECT_GE(client.read_cache().invalidations(), 1u);
}

TEST_F(KvsClientTest, LockAcquisitionForcesFreshReadOfForeignWrite) {
  KvsClient client(&network_, "host-0");
  client.EnableReadCache(kSecond);
  ASSERT_TRUE(client.Set("key", Bytes{1}).ok());
  ASSERT_TRUE(client.Read("key").ok());

  // Another host writes behind this client's cache (directly at the store:
  // no invalidation reaches host-0). Within the lease the cached read is
  // allowed to be stale...
  ASSERT_TRUE(store_.Set("key", Bytes{9}).ok());
  EXPECT_EQ(client.Read("key").value(), (Bytes{1}));

  // ...but never under a global lock: acquisition drops the cached entry,
  // so the first read under the lock observes the serialised bytes.
  ASSERT_TRUE(client.TryLockWrite("key").value());
  EXPECT_EQ(client.Read("key").value(), (Bytes{9}));
  ASSERT_TRUE(client.UnlockWrite("key").ok());
}

TEST_F(KvsClientTest, ZeroStalenessAndBypassSkipTheCache) {
  KvsClient client(&network_, "host-0");
  client.EnableReadCache(kSecond);
  ASSERT_TRUE(client.Set("key", Bytes{1}).ok());
  ASSERT_TRUE(client.Read("key").ok());
  ASSERT_TRUE(store_.Set("key", Bytes{7}).ok());  // foreign write

  // max_staleness = 0 forces the fetch (and refreshes the cache with it).
  EXPECT_EQ(client.Read("key", ReadOptions{.max_staleness = 0}).value(), (Bytes{7}));
  EXPECT_EQ(client.Read("key").value(), (Bytes{7}));  // refreshed entry serves

  // bypass_cache neither serves from nor installs into the cache.
  ASSERT_TRUE(store_.Set("key", Bytes{8}).ok());
  EXPECT_EQ(client.Read("key", ReadOptions{.bypass_cache = true}).value(), (Bytes{8}));
  EXPECT_EQ(client.Read("key").value(), (Bytes{7}));  // old entry still cached
}

TEST_F(KvsClientTest, PureReadBatchShipsAsGetBatchInOneRpc) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("a", Bytes{1}).ok());
  ASSERT_TRUE(client.Set("b", Bytes{2, 2}).ok());
  network_.ResetStats();
  const uint64_t reads_before = server_.read_rpc_count();

  Result<Bytes> got_a = Internal("ack never fired");
  Result<Bytes> got_b = Internal("ack never fired");
  OpBatch batch;
  batch.Read("a", [&](const Result<Bytes>& value) { got_a = value; });
  batch.Read("b", ReadOptions{.offset = 1, .len = 1},
             [&](const Result<Bytes>& value) { got_b = value; });
  ASSERT_TRUE(client.ExecuteBatchNow(std::move(batch)).ok());

  EXPECT_EQ(got_a.value(), (Bytes{1}));
  EXPECT_EQ(got_b.value(), (Bytes{2}));
  // One RPC for the group, and it arrived as kGetBatch: the server's read-RPC
  // counter moved (kBatch would not count).
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 1u);
  EXPECT_EQ(server_.read_rpc_count(), reads_before + 1);
}

TEST_F(KvsClientTest, MixedBatchShipsAsMutatingBatch) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("seed", Bytes{5}).ok());
  const uint64_t reads_before = server_.read_rpc_count();
  Result<Bytes> got = Internal("ack never fired");
  OpBatch batch;
  batch.Set("w", Bytes{1});
  batch.Read("seed", [&](const Result<Bytes>& value) { got = value; });
  ASSERT_TRUE(client.ExecuteBatchNow(std::move(batch)).ok());
  EXPECT_EQ(got.value(), (Bytes{5}));
  EXPECT_TRUE(store_.Exists("w"));
  // The group held a mutation, so it travelled as kBatch (not counted as a
  // read RPC).
  EXPECT_EQ(server_.read_rpc_count(), reads_before);
}

TEST_F(KvsClientTest, ServerRejectsMutatingOpSmuggledIntoReadBatch) {
  // Hand-craft a kGetBatch frame holding a kGet AND a kSet: the server must
  // serve the read and reject the mutation per-op, leaving the store clean.
  ASSERT_TRUE(store_.Set("present", Bytes{3}).ok());
  Bytes get_part;
  {
    ByteWriter w(get_part);
    w.Put<uint8_t>(static_cast<uint8_t>(KvsOp::kGet));
    w.PutString("present");
  }
  Bytes set_part;
  {
    ByteWriter w(set_part);
    w.Put<uint8_t>(static_cast<uint8_t>(KvsOp::kSet));
    w.PutString("smuggled");
    w.PutBytes(Bytes{9});
  }
  Bytes request;
  ByteWriter writer(request);
  writer.Put<uint8_t>(static_cast<uint8_t>(KvsOp::kGetBatch));
  WriteFrameBatch(writer, {get_part, set_part});

  auto response = network_.Call("host-0", "kvs", request);
  ASSERT_TRUE(response.ok());
  ByteReader reader(response.value());
  EXPECT_EQ(reader.Get<uint8_t>().value(), 0u);  // framing-level OK
  auto parts = ReadFrameBatch(reader);
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts.value().size(), 2u);
  EXPECT_EQ(static_cast<StatusCode>(parts.value()[0][0]), StatusCode::kOk);
  EXPECT_EQ(static_cast<StatusCode>(parts.value()[1][0]), StatusCode::kInvalidArgument);
  EXPECT_FALSE(store_.Exists("smuggled"));  // the mutation never ran
}

TEST_F(KvsClientTest, TrafficIsAccounted) {
  KvsClient client(&network_, "host-0");
  network_.ResetStats();
  ASSERT_TRUE(client.Set("key", Bytes(1000)).ok());
  // Request carries at least the 1000-byte value.
  EXPECT_GT(network_.StatsFor("host-0").tx_bytes, 1000u);
  const uint64_t after_set = network_.total_bytes();
  auto value = client.Read("key");
  ASSERT_TRUE(value.ok());
  EXPECT_GT(network_.total_bytes(), after_set + 1000);  // response carries value
}

// --- Crash-path error surfacing (ISSUE 9 satellites) ---------------------------
// A shard whose endpoint never answers (a crashed master nobody recovered)
// must cost a BOUNDED retry budget and then surface a typed
// kDeadlineExceeded naming the key, the endpoint, and the attempt count —
// for single ops, for every stranded op in a batch, and for a Wait whose
// dispatch wedged. Virtual time makes the 2048-retry budget free to test.

TEST(KvsClientDeadShardTest, RedirectBudgetExhaustionIsTypedAndAttributed) {
  SimExecutor executor;
  NetworkConfig netcfg;
  netcfg.charge_latency = false;
  InProcNetwork network(&executor.clock(), netcfg);
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));  // never registered: dead
  KvsClient client(&network, "host-0", &map, nullptr);

  uint64_t hints = 0;
  client.SetSuspicionHook([&](const std::string& endpoint) {
    EXPECT_EQ(endpoint, ShardMap::EndpointForHost("host-1"));
    ++hints;
  });

  Status status = OkStatus();
  executor.Spawn([&] { status = client.Set("orphan-key", Bytes{1}); });
  executor.JoinAll();

  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  const std::string text = status.ToString();
  EXPECT_NE(text.find("orphan-key"), std::string::npos) << text;
  EXPECT_NE(text.find(ShardMap::EndpointForHost("host-1")), std::string::npos) << text;
  EXPECT_NE(text.find(std::to_string(KvsClient::kMaxRedirectRetries)), std::string::npos)
      << text;
  // Every bounce was reported as detector evidence, not silently retried.
  EXPECT_GE(hints, static_cast<uint64_t>(KvsClient::kMaxRedirectRetries));
}

TEST(KvsClientDeadShardTest, StrandedBatchOpsEachGetTypedAcks) {
  SimExecutor executor;
  NetworkConfig netcfg;
  netcfg.charge_latency = false;
  InProcNetwork network(&executor.clock(), netcfg);
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  KvsClient client(&network, "host-0", &map, nullptr);

  Status set_ack = OkStatus();
  Status read_ack = OkStatus();
  executor.Spawn([&] {
    OpBatch batch;
    batch.Set("orphan-a", Bytes{1}, [&](const Status& s) { set_ack = s; });
    batch.Read("orphan-b", [&](const Result<Bytes>& v) { read_ack = v.status(); });
    const Status aggregate = client.ExecuteBatchNow(std::move(batch));
    EXPECT_EQ(aggregate.code(), StatusCode::kDeadlineExceeded);
  });
  executor.JoinAll();

  // Both acks fired — stranded, not hung — and each names ITS OWN key.
  EXPECT_EQ(set_ack.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(set_ack.ToString().find("orphan-a"), std::string::npos);
  EXPECT_EQ(read_ack.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(read_ack.ToString().find("orphan-b"), std::string::npos);
}

TEST(KvsClientDeadShardTest, WaitDeadlineFiresOnWedgedDispatch) {
  // A spawner that drops its closures models a wedged executor: the groups
  // never run, outstanding never reaches zero, and Wait's own deadline is
  // the only way out.
  SimExecutor executor;
  NetworkConfig netcfg;
  netcfg.charge_latency = false;
  InProcNetwork network(&executor.clock(), netcfg);
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  map.AddShard(ShardMap::EndpointForHost("host-2"));
  KvsClient client(&network, "host-0", &map, nullptr);
  client.SetSpawner([](std::function<void()>) {});  // drops every group

  // One key per shard, so both groups are remote and both go to the spawner.
  std::string key_1;
  std::string key_2;
  for (int i = 0; i < 100000 && (key_1.empty() || key_2.empty()); ++i) {
    std::string probe = "wedge-probe-" + std::to_string(i);
    if (map.MasterFor(probe) == ShardMap::EndpointForHost("host-1")) {
      if (key_1.empty()) key_1 = std::move(probe);
    } else if (key_2.empty()) {
      key_2 = std::move(probe);
    }
  }
  ASSERT_FALSE(key_1.empty());
  ASSERT_FALSE(key_2.empty());

  Status status = OkStatus();
  bool done_after_wait = true;
  executor.Spawn([&] {
    OpBatch batch;
    batch.Set(key_1, Bytes{1});
    batch.Set(key_2, Bytes{2});
    BatchHandle handle = client.DispatchBatch(std::move(batch));
    status = handle.Wait(10 * kMillisecond);
    done_after_wait = handle.done();
  });
  executor.JoinAll();

  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(status.ToString().find("outstanding"), std::string::npos) << status.ToString();
  EXPECT_FALSE(done_after_wait);  // the deadline reported, it did not fabricate completion
}

TEST(KvsClientDeadShardTest, CrashWithoutRecoveryStrandsOpsWithTypedErrorNotAHang) {
  // The kill-mid-batch regression: CrashHost with NO failure detection and
  // NO oracle recovery leaves the dead shard orphaned in the map. A batch
  // with one op on the corpse and one on a survivor must complete the
  // survivor, strand the corpse op with the typed budget error, and return
  // from Wait — the pre-deadline client hung here forever.
  ClusterConfig config;
  config.hosts = 3;  // replication_factor 1, failure_detection off
  FaasmCluster cluster(config);

  std::string doomed;
  std::string safe;
  for (int i = 0; i < 100000 && (doomed.empty() || safe.empty()); ++i) {
    std::string probe = "crash-probe-" + std::to_string(i);
    const std::string master = cluster.shard_map().MasterFor(probe);
    if (master == ShardMap::EndpointForHost("host-1")) {
      if (doomed.empty()) doomed = std::move(probe);
    } else if (master == ShardMap::EndpointForHost("host-0") && safe.empty()) {
      safe = std::move(probe);
    }
  }
  ASSERT_FALSE(doomed.empty());
  ASSERT_FALSE(safe.empty());

  cluster.Run([&](Frontend&) {
    ASSERT_TRUE(cluster.CrashHost("host-1").ok());  // nobody will ever recover it

    Status doomed_ack = OkStatus();
    Status safe_ack = Internal("never fired");
    OpBatch batch;
    batch.Set(doomed, Bytes{1}, [&](const Status& s) { doomed_ack = s; });
    batch.Set(safe, Bytes{2}, [&](const Status& s) { safe_ack = s; });
    BatchHandle handle = cluster.host(0).kvs().DispatchBatch(std::move(batch));

    const Status aggregate = handle.Wait();
    EXPECT_TRUE(handle.done());  // every group resolved — errored, not wedged
    EXPECT_EQ(aggregate.code(), StatusCode::kDeadlineExceeded);
    EXPECT_EQ(doomed_ack.code(), StatusCode::kDeadlineExceeded);
    EXPECT_NE(doomed_ack.ToString().find(doomed), std::string::npos)
        << doomed_ack.ToString();
    EXPECT_TRUE(safe_ack.ok()) << safe_ack.ToString();
    EXPECT_EQ(cluster.kvs().Get(safe).value(), (Bytes{2}));
  });
}

}  // namespace
}  // namespace faasm
