// KvsServer / KvsClient: the wire between hosts and the global tier.
//
// The global tier is sharded (kvs/router.h): each host serves a KvStore
// shard on "kvs:<host>", and a ShardMap assigns every key a master shard by
// consistent hashing. KvsClient is the routing client — each operation
// resolves its key's master and either
//
//   - takes the LOCAL FAST PATH: when the master is the calling host's own
//     shard, the op is a direct in-process KvStore call. No InProcNetwork
//     round trip, zero accounted network bytes — a replica co-located with
//     its key's master syncs for free (§4.3); or
//   - is serialised through InProcNetwork to the owning endpoint, so the
//     experiments' network-transfer numbers include exactly the cross-host
//     global-tier traffic a sharded Redis/Anna deployment would generate.
//
// MEMBERSHIP CHANGES (kvs/migration.h) make routes stale: an op can resolve
// its master at epoch N and land on a shard that flipped to epoch N+1, or
// reach a key frozen mid-handoff. Both answer kWrongMaster — a server given
// a ShardMap rejects ops for keys it does not master, and the store bounces
// mutations of frozen keys (the local fast path hits the same store-level
// check, so in-process writers cannot slip past a migration either). The
// client treats kWrongMaster as "re-resolve and retry": it backs off a
// quantum of virtual time and routes against the map's current epoch,
// surfacing the error only after kMaxRedirectRetries (a membership change
// that never converges). The kMigrateInstall op is exempt from the
// ownership check: it is how the migration subsystem streams a key into its
// new master before the epoch flips.
//
// CRASHES (runtime/cluster.h KillHost) are discovered the same way, one
// error code earlier: a killed host's endpoints vanish from the network, so
// ops against it fail with kUnavailable at the transport. With a map the
// client treats that exactly like kWrongMaster — back off, re-resolve,
// retry — because the failover path (kvs/replication.h) promotes a backup
// and flips the epoch, after which the retry routes to the new master.
// Without a map, kUnavailable surfaces immediately, like every other error.
//
// Constructed without a ShardMap, the client is an ADAPTER over the same
// routed machinery: every key resolves to the single configured endpoint
// (the pre-sharding baseline, kept for ablations and component tests), all
// ops — single and batched — take the identical code path, and with no map
// there is no alternate route, so a kWrongMaster answer surfaces to the
// caller as a typed Status (code kWrongMaster) immediately, after exactly
// one round trip, never as a silent success.
//
// BATCHED OPS (the kBatch / kGetBatch wire ops). An OpBatch accumulates
// mutating ops plus Read ops and DispatchBatch groups them by each key's
// CURRENT master endpoint: every group travels as ONE framed RPC
// (net/framing.h), the master-local group runs in process for zero network
// bytes, and groups bound for different shards are issued concurrently when
// a spawner is configured — a push (or prefetch) touching K keys mastered
// on M hosts costs at most M round trips, overlapped, instead of K
// serialised ones. A group made entirely of reads ships as kGetBatch, the
// read-only twin the server refuses to let mutate anything. The server
// answers a per-op status vector (KvStore::ExecuteBatch runs each touched
// store shard's group under one mutex acquisition), so a batch that
// straddles a live migration bounces ONLY the moving keys with
// kWrongMaster; the client re-resolves just those ops against the new epoch
// and retries them, with the same backoff budget as single-op redirects.
// Per-op error/ack model: each enqueued op can carry a completion callback,
// invoked exactly once with the op's final status after retries — an op is
// "acked" only when its callback has fired with Ok, which is what the state
// layer's push visibility barrier (FlushBatch) waits for.
//
// THE UNIFIED READ API. Read(key, ReadOptions) is the one read surface:
// whole-value and ranged reads, cached and uncached, single and batched
// (OpBatch::Read) all take it. ReadOptions selects the window
// ({offset, len}, len defaulting to the whole value) and the staleness
// contract ({max_staleness, bypass_cache}).
//
// THE THREE-TIER READ PATH. A read that is not master-local resolves through
// up to three tiers, cheapest first, each with its own staleness contract:
//
//   1. READ CACHE (kvs/read_cache.h, opt-in via EnableReadCache): a per-host
//      cache of previously pulled full values. A hit costs nothing and MAY
//      be stale by at most min(lease, max_staleness) of virtual time
//      relative to OTHER hosts' writes.
//   2. CO-LOCATED REPLICA (opt-in via EnableReplicaReads): when this host
//      keeps a backup of the key's shard (replication_factor > 1 and
//      BackupsFor places a copy here), the read is served from the local
//      ReplicaShard in process — zero network bytes — under the validity
//      rules below. OpBatch reads and LocalTier::Prefetch take the same
//      shortcut per op while grouping.
//   3. MASTER: the cross-host RPC (kGet/kGetRange, or the grouped
//      kGetBatch), always correct, always paid for.
//
// REPLICA-READ VALIDITY. A backup copy serves only when provably current:
//   - SYNC replication: an acked write is applied at every live backup
//     before its ack, so a certified copy can never miss an acked write.
//     Read-your-writes still requires one step — a pending ambient write on
//     the key flushes (single-op Read) or disqualifies the shortcut for that
//     op (batched reads), so a replica serve never precedes this host's own
//     enqueued write of the key.
//   - Validity is keyed by (key, shard-map epoch) exactly like the read
//     cache: the copy must have been certified (installed or re-anchored by
//     the membership-serialised mirror/Reconcile flows) at the LIVE epoch,
//     so any migration or failover promotion invalidates every replica read
//     at the flip and Reconcile re-certifies afterwards.
//   - A FENCED replica (its host crashed and failed over) answers
//     kUnavailable; the client reports it to the suspicion hook and falls
//     through to the master — a dead host's copies never serve.
//   - ASYNC replication: the copy may lag by up to the configured bound, so
//     a replica read is legal only when the read EXPLICITLY tolerates it
//     (max_staleness >= ReplicationConfig::async_lag_bound_ns — the default
//     lease sentinel does not qualify) AND the per-key freshness probe
//     proves the copy has caught up (replica floor seq >= primary KeySeq);
//     otherwise the read falls through to the master.
//
// READ CACHE COHERENCE (tier one). A cached read is NEVER stale with
// respect to:
//   - this host's own writes — every local mutation (Set/SetRange/
//     SetRanges/Append/Delete, batched ops at ENQUEUE time) invalidates the
//     key's entry;
//   - membership changes — entries are keyed by shard-map epoch, and an
//     epoch flip invalidates implicitly;
//   - reads under a global lock — acquiring TryLockRead/TryLockWrite
//     invalidates the key's entry, so the first read under the lock refetches
//     the bytes the lock serialises. Readers needing one fresh read without
//     a lock pass max_staleness = 0 (or bypass_cache).
// Whole-value serves from tier two refresh tier one (a replica read is as
// authoritative as the RPC it replaced), so later sub-range reads hit cache.
#ifndef FAASM_KVS_KVS_CLIENT_H_
#define FAASM_KVS_KVS_CLIENT_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.h"
#include "kvs/kv_store.h"
#include "kvs/read_cache.h"
#include "kvs/replication.h"
#include "kvs/router.h"
#include "net/network.h"

namespace faasm {

// Registers an RPC endpoint (default name "kvs") that serves a KvStore
// shard. Sharded clusters run one per host on "kvs:<host>". When `map` is
// given, the server validates per-op that it still masters the key under
// the map's current epoch and answers kWrongMaster otherwise, which is what
// redirects clients that raced a membership change.
class KvsServer {
 public:
  KvsServer(KvStore* store, InProcNetwork* network, std::string endpoint = "kvs",
            const ShardMap* map = nullptr);
  ~KvsServer();

  const std::string& endpoint() const { return endpoint_; }

  // Read RPCs (kGet / kGetRange / kSize / kGetBatch) this server answered
  // over the network. Master-local reads never reach the server, so this is
  // exactly the cross-host pull RPC count the benches gate on.
  uint64_t read_rpc_count() const { return read_rpcs_.value(); }
  // Write-side twin: mutating single-op RPCs plus kBatch requests this
  // server answered. Excludes kMigrateInstall (migration/replication
  // streams are accounted by their own subsystems). Replication tests bound
  // the forwarded-op RPC overhead against this baseline.
  uint64_t write_rpc_count() const { return write_rpcs_.value(); }

 private:
  Bytes Handle(const Bytes& request);
  // kBatch / kGetBatch: decodes the framed sub-ops, pre-checks ownership per
  // op (a batch straddling a membership change bounces only the moved keys),
  // executes the rest through KvStore::ExecuteBatch, and frames the per-op
  // results back. `read_only` (kGetBatch) rejects mutating sub-ops per op.
  void HandleBatch(ByteReader& reader, ByteWriter& writer, bool read_only);

  KvStore* store_;
  InProcNetwork* network_;
  std::string endpoint_;
  const ShardMap* map_;
  Counter read_rpcs_;
  Counter write_rpcs_;
};

// Options of the unified read API (KvsClient::Read / OpBatch::Read):
// the read window and the staleness contract in one place.
struct ReadOptions {
  // `len` sentinel: read from `offset` to the end of the value.
  static constexpr uint64_t kWholeValue = ~uint64_t{0};
  // `max_staleness` sentinel: bound cached reads by the client's lease alone.
  static constexpr TimeNs kLeaseStaleness = -1;

  uint64_t offset = 0;
  uint64_t len = kWholeValue;
  // Tightest staleness this read tolerates from the read cache; 0 forces a
  // fetch (the result still refreshes the cache).
  TimeNs max_staleness = kLeaseStaleness;
  // Skip the cache entirely: neither served from it nor installed into it.
  bool bypass_cache = false;

  bool whole_value() const { return offset == 0 && len == kWholeValue; }
};

// Builder for one batched request: accumulates sub-ops (with optional
// per-op completion callbacks) until a KvsClient dispatches it. Not thread
// safe; build on one thread, then hand over to DispatchBatch.
class OpBatch {
 public:
  // Invoked exactly once with the op's final status (after any redirects).
  using Ack = std::function<void(const Status&)>;
  // Read completion: the value (the requested window), or the op's error.
  using ReadAck = std::function<void(const Result<Bytes>&)>;

  void Set(std::string key, Bytes value, Ack done = nullptr);
  void SetRange(std::string key, uint64_t offset, Bytes bytes, Ack done = nullptr);
  // Consecutive SetRanges on the same key coalesce into one sub-op with the
  // merged (adjacent/overlapping fused) range list; both acks still fire.
  void SetRanges(std::string key, std::vector<ValueRange> ranges, Ack done = nullptr);
  void Append(std::string key, Bytes bytes, Ack done = nullptr);
  void Delete(std::string key, Ack done = nullptr);
  void SetAdd(std::string key, std::string member, Ack done = nullptr);
  void SetRemove(std::string key, std::string member, Ack done = nullptr);
  // The unified read, batched: ships as kGet (whole value) or kGetRange
  // inside the group; cache-eligible under the same rules as
  // KvsClient::Read.
  void Read(std::string key, ReadOptions options, ReadAck done);
  void Read(std::string key, ReadAck done) { Read(std::move(key), ReadOptions{}, std::move(done)); }

  size_t size() const { return ops_.size(); }
  bool empty() const { return ops_.empty(); }

 private:
  friend class KvsClient;

  struct Pending {
    KvsBatchOp op;
    Ack done;            // status-only ops
    ReadAck read_done;   // kGet / kGetRange
    ReadOptions read_options;  // read ops: the cache contract
  };

  void Push(KvsBatchOp op, Ack done, ReadAck read_done = nullptr);

  std::vector<Pending> ops_;
};

// Completion handle for a dispatched batch. Wait() blocks (in virtual time)
// until every per-endpoint group — including per-op redirect retries — has
// finished, and returns the batch's aggregate status: Ok only when every op
// landed. Callers holding several handles pipeline batches to different
// shards: the round trips overlap instead of serialising.
class BatchHandle {
 public:
  // Wait() is deadline-bounded: a batch whose ops never complete (a crashed
  // endpoint with no failover to reroute to, a wedged group activity) makes
  // Wait return kDeadlineExceeded instead of spinning forever. The default
  // budget dwarfs the per-op redirect budget (kMaxRedirectRetries ×
  // kRedirectBackoffNs ≈ 0.41s virtual), so it only fires on genuine wedges.
  static constexpr TimeNs kDefaultWaitDeadlineNs = 30 * kSecond;

  BatchHandle() = default;

  Status Wait() { return Wait(kDefaultWaitDeadlineNs); }
  // deadline_ns <= 0 waits forever (the pre-deadline behaviour; tests only).
  Status Wait(TimeNs deadline_ns);
  bool done() const;

 private:
  friend class KvsClient;

  struct Shared {
    std::mutex mutex;
    int outstanding = 0;
    Status status = OkStatus();  // first op error, sticky
  };

  std::shared_ptr<Shared> shared_;
  Clock* clock_ = nullptr;
};

// Routing client stub. `source` is the calling host's endpoint name (for
// accounting and lock ownership).
class KvsClient {
 public:
  // Runs a closure concurrently with the caller (the runtime passes the
  // executor's Spawn). Used to overlap per-endpoint batch groups.
  using Spawner = std::function<void(std::function<void()>)>;
  // Centralised mode: every key lives behind the single `server` endpoint.
  KvsClient(InProcNetwork* network, std::string source, std::string server = "kvs");
  // Sharded mode: `shards` maps keys to master endpoints; `local_store` is
  // the shard this host serves on "kvs:<source>" (may be null when the host
  // serves no shard — e.g. an external client — disabling the fast path).
  KvsClient(InProcNetwork* network, std::string source, const ShardMap* shards,
            KvStore* local_store);

  Status Set(const std::string& key, const Bytes& value);
  // The unified read: Read(key) is a whole-value read, Read(key, {.offset,
  // .len}) a ranged one; {.max_staleness, .bypass_cache} pin the staleness
  // contract per read. Routed like every other op (master-local reads are
  // in-process); cross-host reads consult the read cache first when one is
  // enabled, and whole-value fetches refresh it.
  Result<Bytes> Read(const std::string& key, const ReadOptions& options = {});
  Status SetRange(const std::string& key, uint64_t offset, const Bytes& bytes);
  // Batched multi-range write: N ranges cost one round trip (delta push).
  Status SetRanges(const std::string& key, const std::vector<ValueRange>& ranges);
  Result<uint64_t> Append(const std::string& key, const Bytes& bytes);
  Status Delete(const std::string& key);
  Result<bool> Exists(const std::string& key);
  Result<uint64_t> Size(const std::string& key);

  Result<bool> TryLockRead(const std::string& key);
  Result<bool> TryLockWrite(const std::string& key);
  Status UnlockRead(const std::string& key);
  Status UnlockWrite(const std::string& key);

  Result<bool> SetAdd(const std::string& key, const std::string& member);
  Result<bool> SetRemove(const std::string& key, const std::string& member);
  Result<std::vector<std::string>> SetMembers(const std::string& key);

  // --- Batched ops (kBatch) -----------------------------------------------------
  // Dispatches `batch`: ops grouped per current master endpoint, one framed
  // RPC per group (master-local group in process), groups overlapped via the
  // spawner when more than one crosses the network. Per-op kWrongMaster
  // answers are re-resolved and retried individually. Fire-and-collect: use
  // the returned handle (or per-op acks) to learn the outcome.
  BatchHandle DispatchBatch(OpBatch&& batch);
  // DispatchBatch + Wait: the synchronous convenience form.
  Status ExecuteBatchNow(OpBatch&& batch) { return DispatchBatch(std::move(batch)).Wait(); }

  // --- Ambient state-op batching (per-instance lifecycle) -----------------------
  // The runtime enables this per FaasmInstance; the state layer then routes
  // Push() traffic through an ambient OpBatch owned by this client.
  void EnableBatching() { batching_enabled_ = true; }
  void EnableBatching(Spawner spawner) {
    SetSpawner(std::move(spawner));
    batching_enabled_ = true;
  }
  // Concurrency for DispatchBatch groups, independent of the write-batching
  // toggle (read batches pipeline even under the --batch=off ablation).
  void SetSpawner(Spawner spawner) { spawner_ = std::move(spawner); }
  bool batching_enabled() const { return batching_enabled_; }

  // --- Read-side controls --------------------------------------------------------
  // Grouped-read toggle consumed by the state layer's prefetch paths: when
  // off (the --read-batch=off ablation), multi-key reads fall back to one
  // RPC per op. Batches already built still execute either way.
  void set_read_batching(bool on) { read_batching_ = on; }
  bool read_batching() const { return read_batching_; }
  // Turns on the per-host read cache with the given lease (see the coherence
  // rules above). Off by default: cached reads may lag other hosts' writes
  // by up to the lease, which read-modify-write workloads must not opt into.
  void EnableReadCache(TimeNs lease_ns) { read_cache_.set_lease(lease_ns); }
  bool read_cache_enabled() const { return read_cache_.enabled(); }
  const ReadCache& read_cache() const { return read_cache_; }
  // Drops the key's cached read (exposed for DDOs/tests; internal callers
  // are the mutating ops and the lock acquisitions).
  void InvalidateCachedReads(const std::string& key) { read_cache_.Invalidate(key); }

  // --- Replica reads (tier two of the three-tier read path) --------------------
  // Wiring for serving reads from this host's co-located backup copies. The
  // cluster passes the host's own ReplicaShard plus the replication policy;
  // `primary_seq` is the async-mode freshness probe — it answers the
  // primary's KeySeq for a key. The simulation resolves it with an
  // in-process lookup, modelling the per-key sequence metadata a real
  // deployment piggybacks on the replication channel it already pays for
  // (so the probe itself moves zero accounted bytes).
  struct ReplicaReadConfig {
    ReplicaShard* replica = nullptr;
    int factor = 1;           // cluster replication factor (backup resolution)
    bool sync = true;         // replication mode (async adds the probe)
    TimeNs async_lag_bound_ns = 0;
    std::function<uint64_t(const std::string&)> primary_seq;
  };
  void EnableReplicaReads(ReplicaReadConfig config) { replica_cfg_ = std::move(config); }
  bool replica_reads_enabled() const { return replica_cfg_.replica != nullptr; }
  // Reads this client served from the co-located replica (each one a
  // cross-host read RPC that never happened — the per-client twin of
  // ReplicaShard::replica_read_count).
  uint64_t replica_served_count() const { return replica_served_.value(); }

  // Enqueues a delta push into the ambient batch (callers: StateKeyValue).
  void EnqueueSetRanges(const std::string& key, std::vector<ValueRange> ranges,
                        OpBatch::Ack done);
  // While at least one scope is open, enqueued ops defer to the next flush
  // barrier; with no scope open each enqueue is flushed by its caller.
  void BeginBatchScope();
  void EndBatchScope();
  bool InBatchScope() const;
  // Flush barrier: dispatches every pending ambient op (grouped, pipelined)
  // and waits for all of them, retries included. The push-visibility point:
  // after FlushBatch returns Ok, every previously enqueued op is durable in
  // the global tier. No-op when nothing is pending.
  Status FlushBatch();
  // Pending ambient ops (tests/diagnostics).
  size_t pending_batch_ops() const;

  // --- Mastership hints (locality-aware scheduling) ---------------------------
  // True when `key` is mastered by this host's own shard: ops on it are
  // in-process and move zero network bytes.
  bool MasterLocal(const std::string& key) const;
  // Host name mastering `key`, or "" when the master is not a host-colocated
  // shard (centralised mode). Pure local computation — no network.
  std::string MasterHostFor(const std::string& key) const;
  // Every host holding a copy of `key` under the current epoch: its master
  // first, then its backups (ShardMap::HoldersFor). The scheduler widens
  // read-mostly state affinity over this set — any holder serves the
  // function's reads without crossing the network. Pure local computation.
  std::vector<std::string> HolderHostsFor(const std::string& key) const;

  const std::string& source() const { return source_; }

  // --- Failure-detection evidence ---------------------------------------------
  // Invoked (when set) with the endpoint of every op that bounced with
  // kUnavailable, BEFORE the retry sleeps. The cluster wires this to
  // FailureDetector::ReportSuspicion so client traffic accelerates crash
  // detection: the client still retries (the bounce is transient once the
  // failover reroutes it), but the detector gets to probe the silent host on
  // its next sweep instead of waiting out the heartbeat timeout. Must be
  // cheap and non-blocking — it runs on the op's own activity.
  using SuspicionHook = std::function<void(const std::string& endpoint)>;
  void SetSuspicionHook(SuspicionHook hook) { suspicion_hook_ = std::move(hook); }

  // Bound on kWrongMaster redirect retries before the error surfaces. The
  // op stalls while its key is frozen mid-migration, so the retry budget
  // (kMaxRedirectRetries × kRedirectBackoffNs of virtual time) must cover a
  // full migration batch: freeze → stream → epoch flip.
  static constexpr int kMaxRedirectRetries = 2048;
  static constexpr TimeNs kRedirectBackoffNs = 200 * kMicrosecond;

 private:
  // Resolved destination of one key's op: in-process store, or endpoint.
  struct Route {
    KvStore* local = nullptr;
    std::string endpoint;
  };
  Route RouteFor(const std::string& key) const;

  static bool IsWrongMaster(const Status& status) {
    return status.code() == StatusCode::kWrongMaster;
  }
  template <typename T>
  static bool IsWrongMaster(const Result<T>& result) {
    return !result.ok() && result.status().code() == StatusCode::kWrongMaster;
  }
  // A crashed master (FaasmCluster::KillHost) is discovered as kUnavailable:
  // its endpoints unregister abruptly, so in-flight and fresh ops fail at
  // the transport. With a map, that is as transient as kWrongMaster — the
  // failover flips the epoch and the retry reroutes to the promoted master —
  // so both share the redirect/backoff budget.
  static bool IsUnavailable(const Status& status) {
    return status.code() == StatusCode::kUnavailable;
  }
  template <typename T>
  static bool IsUnavailable(const Result<T>& result) {
    return !result.ok() && result.status().code() == StatusCode::kUnavailable;
  }
  static Status StatusFrom(const Status& status) { return status; }
  template <typename T>
  static Status StatusFrom(const Result<T>& result) {
    return result.status();
  }
  // The typed budget-exhaustion error (kDeadlineExceeded): carries the key,
  // the endpoint last tried, the attempt count, and the last transport
  // error, so callers can tell "master gone for good" from "map stale".
  static Status RedirectBudgetExhausted(const std::string& key, const std::string& endpoint,
                                        int attempts, const Status& last);

  // Resolves `key`'s route and dispatches: master-local ops run `local`
  // against the in-process store (zero network bytes), the rest run
  // `remote` against the owning endpoint. Every public op goes through this
  // so none can forget the fast path. Both callables must return the same
  // type (annotate the remote lambda when its returns mix Status/Result).
  //
  // A kWrongMaster answer means the route went stale (membership change) or
  // the key is frozen mid-migration: back off one virtual-time quantum and
  // retry against the map's CURRENT epoch. Without a map there is no other
  // route, so the error surfaces immediately.
  template <typename LocalOp, typename RemoteOp>
  auto Routed(const std::string& key, LocalOp&& local, RemoteOp&& remote) {
    using R = decltype(remote(std::declval<const std::string&>()));
    int attempt = 0;
    while (true) {
      Route route = RouteFor(key);
      const std::string endpoint = route.local != nullptr ? local_endpoint_ : route.endpoint;
      R result = route.local != nullptr ? R(local(*route.local)) : R(remote(route.endpoint));
      const bool unavailable = IsUnavailable(result);
      if (unavailable && suspicion_hook_ != nullptr && route.local == nullptr) {
        suspicion_hook_(endpoint);
      }
      const bool retryable = IsWrongMaster(result) || unavailable;
      if (!retryable || shards_ == nullptr) {
        return result;
      }
      if (attempt >= kMaxRedirectRetries) {
        // The budget covers any single migration or failover window; running
        // it dry means the op waited out an extended outage with no new
        // route appearing. Surface the typed deadline error, not the raw
        // bounce, so the caller knows the client did not just give up early.
        return R(RedirectBudgetExhausted(key, endpoint, attempt, StatusFrom(result)));
      }
      ++attempt;
      network_->clock().SleepFor(kRedirectBackoffNs);
    }
  }

  Result<Bytes> Invoke(const std::string& server, KvsOp op,
                       const std::function<void(ByteWriter&)>& write_args);
  Result<bool> BoolOp(const std::string& server, KvsOp op, const std::string& key,
                      const std::string& arg);

  // --- Replica-read internals ---------------------------------------------------
  // True when this host's replica shard backs `master_endpoint`'s primary
  // under the current epoch. Memoised per epoch (the backup set is a pure
  // function of the endpoint set, recomputed once per flip, like the read
  // cache's epoch key).
  bool LocallyBacked(const std::string& master_endpoint) const;
  // Attempts to serve `key`'s read from the co-located replica. Engaged
  // result = the read's final answer (served, counted); nullopt = fall
  // through to the master (not locally backed was already checked by the
  // caller; here: fenced → suspicion hook, stale certification, or an async
  // copy the staleness policy or freshness probe disqualifies).
  std::optional<Result<Bytes>> TryReplicaRead(const std::string& key,
                                              const ReadOptions& options);
  // Policy half of the async gate: does this read EXPLICITLY tolerate the
  // configured lag bound? (The kLeaseStaleness sentinel is strict: default
  // reads provably fall through in async mode.)
  bool ReplicaStalenessCovered(const ReadOptions& options) const;
  // True when the ambient batch holds a not-yet-flushed mutating op on
  // `key` (the read-your-writes trigger).
  bool HasPendingAmbientWrite(const std::string& key) const;

  // One per-endpoint slice of a dispatched batch. RunGroup drives the slice
  // to completion: issue the framed RPC (or the in-process ExecuteBatch),
  // fire the acks of landed ops, and loop the kWrongMaster bounces through
  // re-resolution + backoff until they land or the retry budget runs out.
  // Returns the group's first op error (Ok when every op landed).
  Status RunGroup(std::vector<OpBatch::Pending> ops);
  // Sends one group's ops to `endpoint` as a single framed RPC — kGetBatch
  // when the whole group is reads, kBatch otherwise — and decodes the
  // per-op results; a transport/framing error fails every op alike.
  std::vector<KvsBatchResult> RemoteBatch(const std::string& endpoint,
                                          const std::vector<OpBatch::Pending>& ops);
  // Completes `pending` with `result`, firing its ack exactly once.
  static void CompleteOp(OpBatch::Pending& pending, KvsBatchResult result);

  InProcNetwork* network_;
  std::string source_;
  std::string server_;  // centralised mode only
  const ShardMap* shards_ = nullptr;
  KvStore* local_store_ = nullptr;
  std::string local_endpoint_;  // "kvs:<source>"

  // Ambient batching state. `ambient_` accumulates under ambient_mutex_;
  // FlushBatch swaps it out and dispatches outside the lock, so concurrent
  // flushes each take disjoint op sets (flushing another caller's ops early
  // is always safe — deferral, never reordering, is the relaxation). For
  // barrier completeness FlushBatch also waits on `inflight_`: batches a
  // CONCURRENT flush already took but has not finished dispatching — without
  // that wait a barrier could report durability for an op another caller is
  // still flying. Batch scopes are per activity (thread-local depth), so a
  // scope on one Faaslet's call never demotes another call's scopeless
  // Push from being its own barrier.
  bool batching_enabled_ = false;
  bool read_batching_ = true;
  Spawner spawner_;
  SuspicionHook suspicion_hook_;
  mutable std::mutex ambient_mutex_;
  OpBatch ambient_;
  std::vector<std::shared_ptr<BatchHandle::Shared>> inflight_;  // guarded by ambient_mutex_

  // Per-host read cache (disabled until EnableReadCache). Thread-safe;
  // consulted/installed only for routes that would cross the network.
  ReadCache read_cache_;

  // Replica-read state (disabled until EnableReplicaReads). The memoised
  // backed-master set is guarded by holder_mutex_ (client ops run on many
  // Faaslet threads at once).
  ReplicaReadConfig replica_cfg_;
  Counter replica_served_;
  mutable std::mutex holder_mutex_;
  mutable uint64_t holder_epoch_ = ~uint64_t{0};       // guarded by holder_mutex_
  mutable std::set<std::string> backed_masters_;       // guarded by holder_mutex_
};

}  // namespace faasm

#endif  // FAASM_KVS_KVS_CLIENT_H_
