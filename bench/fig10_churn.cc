// Figure 10: function churn — cold-start creation latency vs offered
// creation rate for Docker containers, Faaslets and Proto-Faaslets.
//
// Faaslet/Proto service times are measured for real on this machine; Docker
// uses the calibrated constants. The latency-vs-rate curve comes from an
// open-loop M/D/c queue simulation with those service times (the paper's
// single-host experiment shape: flat latency until the creation-throughput
// knee, then unbounded queueing).
#include <queue>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/faaslet.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"

namespace faasm {
namespace {

// Minimal discrete-event M/D/c queue: Poisson arrivals, deterministic
// service, c parallel creation slots. Returns median sojourn (queue+service).
double SimulateCreationQueue(double rate_per_s, double service_s, int servers,
                             double duration_s) {
  Rng rng(99);
  std::priority_queue<double, std::vector<double>, std::greater<>> server_free;
  for (int i = 0; i < servers; ++i) {
    server_free.push(0.0);
  }
  Summary sojourn_ms;
  double t = 0;
  while (t < duration_s) {
    t += rng.NextExponential(1.0 / rate_per_s);
    const double free_at = server_free.top();
    server_free.pop();
    const double start = std::max(t, free_at);
    const double done = start + service_s;
    server_free.push(done);
    sojourn_ms.Add((done - t) * 1e3);
  }
  return sojourn_ms.Median();
}

struct BenchEnv {
  RealClock clock;
  InProcNetwork network;
  KvStore store;
  KvsServer server;
  KvsClient kvs;
  LocalTier tier;
  GlobalFileStore files;

  BenchEnv()
      : network(&clock, NoLatency()), server(&store, &network), kvs(&network, "bench-host"),
        tier(&kvs, &clock) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  FaasletEnv Env() {
    FaasletEnv env;
    env.clock = &clock;
    env.tier = &tier;
    env.files = &files;
    env.network = &network;
    env.host_endpoint = "bench-host";
    return env;
  }
};

double MeasureServiceSeconds(const std::function<Status()>& create, int iters) {
  Summary ns;
  for (int i = 0; i < iters; ++i) {
    Stopwatch watch;
    Status status = create();
    if (!status.ok()) {
      std::fprintf(stderr, "creation failed: %s\n", status.ToString().c_str());
      return 1.0;
    }
    ns.Add(static_cast<double>(watch.ElapsedNs()));
  }
  return ns.Median() / 1e9;
}

}  // namespace
}  // namespace faasm

int main() {
  using namespace faasm;
  PrintHeader("Figure 10: creation latency vs churn rate (single host)");
  ContainerModel docker;
  PrintContainerCalibration(docker);

  BenchEnv env;
  wasm::ModuleBuilder b;
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {wasm::ValType::kI32});
  f.I32Const(0);
  f.End();
  auto module = wasm::CompileModule(wasm::DecodeModule(b.Build()).value()).value();
  FunctionSpec spec;
  spec.name = "noop";
  spec.module = module;

  const double faaslet_service = MeasureServiceSeconds(
      [&] { return Faaslet::Create(spec, env.Env()).status(); }, 200);
  auto prototype = Faaslet::Create(spec, env.Env()).value();
  auto proto = ProtoFaaslet::CaptureFrom(*prototype).value();
  const double proto_service = MeasureServiceSeconds(
      [&] { return Faaslet::CreateFromProto(spec, env.Env(), proto).status(); }, 200);
  const double docker_service = docker.cold_start_ns / 1e9;

  std::printf("\nmeasured service times: faaslet %.2f ms, proto-faaslet %.3f ms; docker %.1f s"
              " (calibrated)\n",
              faaslet_service * 1e3, proto_service * 1e3, docker_service);
  std::printf("creation parallelism: docker %d (daemon), faaslets 4 (cores)\n\n",
              docker.max_concurrent_cold_starts);

  std::printf("%14s | %14s %14s %16s\n", "rate (1/s)", "docker (ms)", "faaslet (ms)",
              "proto-faaslet (ms)");
  for (double rate : {0.1, 0.3, 1.0, 3.0, 10.0, 100.0, 1000.0, 3000.0, 10000.0, 20000.0,
                      50000.0, 100000.0, 200000.0}) {
    const double docker_ms =
        rate <= 3.5 ? SimulateCreationQueue(rate, docker_service, docker.max_concurrent_cold_starts,
                                            200.0)
                    : -1;
    const double faaslet_ms =
        rate <= 4.0 / faaslet_service
            ? SimulateCreationQueue(rate, faaslet_service, 4, std::min(200.0, 20000.0 / rate))
            : -1;
    const double proto_ms =
        rate <= 4.0 / proto_service
            ? SimulateCreationQueue(rate, proto_service, 4, std::min(200.0, 20000.0 / rate))
            : -1;
    auto cell = [](double v) {
      static char buffer[4][32];
      static int slot = 0;
      char* out = buffer[slot++ % 4];
      if (v < 0) {
        std::snprintf(out, 32, "%14s", "saturated");
      } else {
        std::snprintf(out, 32, "%14.2f", v);
      }
      return out;
    };
    std::printf("%14.1f | %s %s %s\n", rate, cell(docker_ms), cell(faaslet_ms), cell(proto_ms));
  }
  std::printf("\nExpected shape (paper): Docker saturates at ~3 creations/s; Faaslets reach\n"
              "hundreds/s and Proto-Faaslets thousands/s before their knees.\n");
  return 0;
}
