#include "runtime/instance.h"

#include "common/log.h"
#include "runtime/failure_detector.h"

namespace faasm {

namespace {
// Wire format of a shared call: id, function, input.
Bytes EncodeSharedCall(uint64_t id, const std::string& function, const Bytes& input) {
  Bytes out;
  ByteWriter writer(out);
  writer.Put<uint64_t>(id);
  writer.PutString(function);
  writer.PutBytes(input);
  return out;
}

struct SharedCall {
  uint64_t id;
  std::string function;
  Bytes input;
};

Result<SharedCall> DecodeSharedCall(const Bytes& bytes) {
  SharedCall call;
  ByteReader reader(bytes);
  FAASM_ASSIGN_OR_RETURN(call.id, reader.Get<uint64_t>());
  FAASM_ASSIGN_OR_RETURN(call.function, reader.GetString());
  FAASM_ASSIGN_OR_RETURN(call.input, reader.GetBytes());
  return call;
}
}  // namespace

FaasmInstance::FaasmInstance(HostConfig config, SimExecutor* executor, InProcNetwork* network,
                             FunctionRegistry* registry, CallTable* calls,
                             GlobalFileStore* files, const ShardMap* shard_map,
                             KvStore* local_shard)
    : config_(std::move(config)),
      executor_(executor),
      network_(network),
      registry_(registry),
      calls_(calls),
      files_(files),
      // No server-side map check: the shard store's live-map ownership
      // guard (KvStore::SetOwnershipGuard, installed by the cluster)
      // already redirects ops for keys whose mastership moved — doing it
      // again in the server would charge every remote op a second ring
      // lookup for the same answer.
      shard_server_(local_shard == nullptr
                        ? nullptr
                        : std::make_unique<KvsServer>(
                              local_shard, network, ShardMap::EndpointForHost(config_.name))),
      kvs_(shard_map != nullptr ? KvsClient(network, config_.name, shard_map, local_shard)
                                : KvsClient(network, config_.name)),
      tier_(std::make_unique<LocalTier>(&kvs_, &executor->clock())),
      memory_(&executor->clock(), config_.memory_bytes),
      cpu_(&executor->clock(), config_.cores),
      share_rng_(HashBytes(reinterpret_cast<const uint8_t*>(config_.name.data()),
                           config_.name.size())) {
  // Multi-endpoint batch groups (writes AND grouped reads) overlap their
  // round trips on spawned activities regardless of the batching toggles.
  kvs_.SetSpawner([this](std::function<void()> fn) { executor_->Spawn(std::move(fn)); });
  if (config_.batch_state_ops) {
    // Batched state-op protocol: state pushes enqueue into the client's
    // ambient batch.
    kvs_.EnableBatching();
  }
  kvs_.set_read_batching(config_.batch_state_reads);
  if (config_.read_cache) {
    kvs_.EnableReadCache(config_.read_lease_ns);
  }
}

FaasmInstance::~FaasmInstance() { Stop(); }

void FaasmInstance::Start() {
  if (started_.exchange(true)) {
    return;
  }
  // The host endpoint answers nothing synchronously; work sharing uses the
  // mailbox. Registering makes the name routable for accounting.
  network_->RegisterEndpoint(config_.name, [](const Bytes&) { return Bytes{}; });
  executor_->Spawn([this] { DispatchLoop(); });
  if (!config_.failure_detector_endpoint.empty() && config_.heartbeat_interval_ns > 0) {
    executor_->Spawn([this] { HeartbeatLoop(); });
  }
}

void FaasmInstance::Stop() { stop_.store(true); }

void FaasmInstance::HeartbeatLoop() {
  // Publish liveness until the host stops. Send (not Call): a heartbeat is
  // fire-and-forget mail into the detector's mailbox, and a host must never
  // block on the detector. Kill() silences this loop via stop_ atomically
  // with unregistering the endpoints, so a crashed host's last heartbeat
  // strictly precedes the probe failure that confirms its death.
  while (!stop_.load()) {
    if (!heartbeats_suppressed_.load()) {
      network_->Send(config_.name, config_.failure_detector_endpoint,
                     EncodeHeartbeat(config_.name));
    }
    executor_->clock().SleepFor(config_.heartbeat_interval_ns);
  }
}

void FaasmInstance::BeginDrain() {
  if (draining_.exchange(true)) {
    return;
  }
  // Withdraw from every warm set so peers stop sharing work here. The
  // draining_ flag keeps AcquireFaaslet/UpdateWarmAdvertisement from
  // re-advertising while the in-flight calls (and the chained calls they
  // spawn) run down.
  std::vector<std::string> functions;
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    for (const auto& [name, pool] : pools_) {
      if (pool.total > 0) {
        functions.push_back(name);
      }
    }
  }
  UpdateWarmSets(functions, /*advertise=*/false);
}

void FaasmInstance::CancelDrain() {
  if (!draining_.exchange(false)) {
    return;
  }
  // Re-advertise the pools withdrawn by BeginDrain (unless saturated).
  if (advertised_saturated_.load()) {
    return;
  }
  std::vector<std::string> functions;
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    for (const auto& [name, pool] : pools_) {
      if (pool.total > 0) {
        functions.push_back(name);
      }
    }
  }
  UpdateWarmSets(functions, /*advertise=*/true);
}

void FaasmInstance::UpdateWarmSets(const std::vector<std::string>& functions, bool advertise) {
  if (functions.empty()) {
    return;
  }
  if (config_.batch_state_ops && functions.size() > 1) {
    // The warm keys hash across shards: one batched dispatch groups the
    // membership updates into at most one RPC per master endpoint instead
    // of one round trip per function.
    OpBatch batch;
    for (const std::string& function : functions) {
      if (advertise) {
        batch.SetAdd("warm:" + function, config_.name);
      } else {
        batch.SetRemove("warm:" + function, config_.name);
      }
    }
    (void)kvs_.ExecuteBatchNow(std::move(batch));
  } else {
    for (const std::string& function : functions) {
      if (advertise) {
        (void)kvs_.SetAdd("warm:" + function, config_.name);
      } else {
        (void)kvs_.SetRemove("warm:" + function, config_.name);
      }
    }
  }
  for (const std::string& function : functions) {
    InvalidateWarmCache(function);
  }
}

bool FaasmInstance::Drained() const {
  // A call flows mailbox → accepting_ → running_calls_, each stage counted
  // before the previous releases it. Reading UPSTREAM FIRST means a call
  // can only dodge all three zero-reads by entering the mailbox after the
  // first read — impossible once CloseIntake() stopped new sends, which is
  // when this barrier is authoritative (the pre-migration wait is only a
  // best-effort quiescence; correctness there rests on freeze/filter).
  return network_->PendingCount(config_.name) == 0 && accepting_.load() == 0 &&
         running_calls_.load() == 0;
}

void FaasmInstance::ReleaseRetiredMemory() {
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    for (auto& [function, pool] : pools_) {
      // Drained: every pooled Faaslet is idle (total == idle.size()).
      for (const auto& faaslet : pool.idle) {
        memory_.Release(faaslet->FootprintBytes());
      }
    }
    pools_.clear();
    proto_cache_.clear();
  }
  // The local tier's replicas die with the host too.
  tier_->Clear();
  SyncTierAccounting();
}

void FaasmInstance::Kill() {
  // Crash semantics: everything vanishes at once, with no handoff. Order
  // matters only in that stop_/draining_ go first, so any zombie activity
  // that wakes after this observes a dead host and stops re-advertising.
  stop_.store(true);
  draining_.store(true);
  network_->UnregisterEndpoint(config_.name);
  if (shard_server_ != nullptr) {
    network_->UnregisterEndpoint(shard_server_->endpoint());
  }
  // The replica channel (kvs/replication.h) dies with the host too. The
  // endpoint exists only when the cluster runs replication; unregistering a
  // never-registered name is a no-op.
  network_->UnregisterEndpoint("rep:" + config_.name);
  // NOTE: shard_server_ (and the instance itself) must stay alive — a
  // handler on another thread may be mid-request; unregistering only stops
  // NEW calls from routing here.
}

void FaasmInstance::FailAbandonedMail() {
  while (auto message = network_->Poll(config_.name)) {
    auto call = DecodeSharedCall(*message);
    if (call.ok()) {
      (void)calls_->Fail(call.value().id,
                         "host '" + config_.name + "' crashed before executing call");
    }
  }
}

void FaasmInstance::CloseIntake() {
  // Late work-sharing sends now fail at the sender, which falls back to
  // executing locally (ScheduleCall), so no NEW call can be stranded; the
  // dispatcher keeps polling until the caller observes Drained() and stops
  // it. The shard server (if any) stays registered: its epoch-aware
  // ownership check redirects every straggler op to the key's new master.
  network_->UnregisterEndpoint(config_.name);
}

void FaasmInstance::DispatchLoop() {
  SimClock& clock = executor_->clock();
  while (!stop_.load()) {
    // accepting_ covers the gap between a message leaving the mailbox
    // (PendingCount drops) and its call being counted in running_calls_:
    // without it a concurrent drain barrier could observe both counters at
    // zero and retire the host around a just-accepted call.
    accepting_.fetch_add(1);
    auto message = network_->Poll(config_.name);
    if (!message.has_value()) {
      accepting_.fetch_sub(1);
      clock.SleepFor(200 * kMicrosecond);
      continue;
    }
    auto call = DecodeSharedCall(*message);
    if (call.ok()) {
      ExecuteLocal(call.value().id, call.value().function, std::move(call.value().input));
    } else {
      LOG_ERROR << config_.name << ": bad shared-call message: " << call.status().ToString();
    }
    accepting_.fetch_sub(1);
  }
}

Result<uint64_t> FaasmInstance::Submit(const std::string& function, Bytes input) {
  if (!registry_->Contains(function)) {
    return NotFound("no function named '" + function + "'");
  }
  const uint64_t id = calls_->Create(function, Bytes{});  // input travels with the schedule
  FAASM_RETURN_IF_ERROR(ScheduleCall(id, function, std::move(input)));
  return id;
}

Status FaasmInstance::ScheduleCall(uint64_t call_id, const std::string& function, Bytes input) {
  // Omega-style shared-state decision (§5.1): execute locally when this host
  // is warm for the function and has capacity; otherwise share with a warm
  // host found in the global tier; otherwise cold start — preferring the
  // host that masters the function's state, so its push/pull traffic takes
  // the shard-local fast path.
  bool warm_here = false;
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    auto it = pools_.find(function);
    warm_here = it != pools_.end() && it->second.total > 0;
  }
  const bool has_capacity = running_calls_.load() < config_.max_concurrent_calls;
  if (warm_here && has_capacity) {
    ExecuteLocal(call_id, function, std::move(input));
    return OkStatus();
  }

  // State-affinity hint: the host mastering the function's declared state
  // key syncs that state with zero network bytes. Resolving the master is a
  // pure hash over the shard map — no tier traffic. Read-mostly functions
  // widen the hint to every HOLDER (master or replica backup) — on any of
  // them the key's reads are served in-process by the replica tier, so
  // placement spreads across R hosts instead of funnelling at one.
  std::vector<std::string> affinity_hosts;  // master first when non-empty
  if (const std::string affinity_key = registry_->StateAffinityKey(function);
      !affinity_key.empty()) {
    if (registry_->StateAffinityReadMostly(function)) {
      affinity_hosts = kvs_.HolderHostsFor(affinity_key);
    } else if (std::string master = kvs_.MasterHostFor(affinity_key); !master.empty()) {
      affinity_hosts.push_back(std::move(master));
    }
  }

  // Not warm (or saturated): look for another warm host in the global tier
  // (short-TTL cached view; see WarmMembers).
  FAASM_ASSIGN_OR_RETURN(auto warm_hosts, WarmMembers(function));
  std::vector<std::string> others;
  for (const std::string& host : warm_hosts) {
    if (host != config_.name) {
      others.push_back(host);
    }
  }
  if (!others.empty()) {
    // Share with a warm affinity host when one exists — the master first,
    // then (read-mostly) any backup holder — else a random warm host
    // (paper: "share it with another warm host if one exists").
    const std::string* target = nullptr;
    for (const std::string& affinity_host : affinity_hosts) {
      for (const std::string& host : others) {
        if (host == affinity_host) {
          target = &host;
          break;
        }
      }
      if (target != nullptr) {
        break;
      }
    }
    if (target == nullptr) {
      target = &others[share_rng_.NextBelow(others.size())];
    }
    Status shared = network_->Send(config_.name, *target, EncodeSharedCall(call_id, function, input));
    if (shared.ok()) {
      return OkStatus();
    }
    // The warm host left the cluster between our (cached) warm-set view and
    // the send: execute here instead of failing the call.
    InvalidateWarmCache(function);
    ExecuteLocal(call_id, function, std::move(input));
    return OkStatus();
  }

  // No warm host anywhere. If this host has EVER seen a warm host for the
  // function, the set is empty because someone saturated and withdrew — do
  // NOT funnel more load at the master (that would bypass the withdrawal
  // backpressure); cold start locally to spread. Only a genuinely cold
  // function (never warm anywhere we've looked) is forwarded to the state's
  // master, so its replicas sync in-process from the first call.
  bool function_seen_warm = false;
  {
    std::lock_guard<std::mutex> guard(warm_cache_mutex_);
    function_seen_warm = warm_ever_.count(function) > 0;
  }
  if (!function_seen_warm && !affinity_hosts.empty() && affinity_hosts[0] != config_.name) {
    // Cold start forwards to the MASTER holder even for read-mostly
    // functions: the first call writes the warm-set entry and often the
    // state itself, and the master absorbs both without a forward hop.
    Status forwarded = network_->Send(config_.name, affinity_hosts[0],
                                      EncodeSharedCall(call_id, function, input));
    if (forwarded.ok()) {
      return OkStatus();
    }
    // The master host is mid-removal; fall through to a local cold start
    // (the next epoch's master picks the affinity back up).
  }
  ExecuteLocal(call_id, function, std::move(input));
  return OkStatus();
}

Result<std::vector<std::string>> FaasmInstance::WarmMembers(const std::string& function) {
  const TimeNs ttl = config_.warm_set_ttl_ns;
  const TimeNs now = executor_->clock().Now();
  if (ttl > 0) {
    std::lock_guard<std::mutex> guard(warm_cache_mutex_);
    auto it = warm_cache_.find(function);
    if (it != warm_cache_.end() && now - it->second.fetched_at <= ttl) {
      return it->second.hosts;
    }
  }
  FAASM_ASSIGN_OR_RETURN(auto hosts, kvs_.SetMembers("warm:" + function));
  {
    std::lock_guard<std::mutex> guard(warm_cache_mutex_);
    if (ttl > 0) {
      warm_cache_[function] = CachedWarmSet{hosts, now};
    }
    if (!hosts.empty()) {
      warm_ever_.insert(function);
    }
  }
  return hosts;
}

void FaasmInstance::InvalidateWarmCache(const std::string& function) {
  std::lock_guard<std::mutex> guard(warm_cache_mutex_);
  warm_cache_.erase(function);
}

void FaasmInstance::UpdateWarmAdvertisement() {
  const bool saturated = running_calls_.load() >= config_.max_concurrent_calls;
  if (advertised_saturated_.exchange(saturated) == saturated) {
    return;
  }
  std::vector<std::string> functions;
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    for (const auto& [name, pool] : pools_) {
      if (pool.total > 0) {
        functions.push_back(name);
      }
    }
  }
  if (saturated) {
    UpdateWarmSets(functions, /*advertise=*/false);
  } else if (!draining_.load()) {
    // A draining host never re-advertises: it must run down, not attract.
    UpdateWarmSets(functions, /*advertise=*/true);
  } else {
    for (const std::string& function : functions) {
      InvalidateWarmCache(function);
    }
  }
}

void FaasmInstance::ExecuteLocal(uint64_t call_id, const std::string& function, Bytes input) {
  // Count the call at ACCEPTANCE, on the caller's thread — not inside the
  // spawned activity. Otherwise a drain barrier (Drained()) could observe
  // the mailbox already emptied but the call not yet counted, and retire
  // the host with an acknowledged call about to start. The (possibly
  // remote) warm-set advertisement update stays inside the activity: it
  // must not serialise the dispatch hot path behind tier RPCs.
  running_calls_.fetch_add(1);
  executor_->Spawn([this, call_id, function, input = std::move(input)]() mutable {
    SimClock& clock = executor_->clock();
    UpdateWarmAdvertisement();
    bool cold = false;
    auto faaslet = AcquireFaaslet(function, &cold);
    if (!faaslet.ok()) {
      (void)calls_->Fail(call_id, faaslet.status().ToString());
      running_calls_.fetch_sub(1);
      return;
    }
    (void)calls_->MarkRunning(call_id, config_.name, cold);
    clock.SleepFor(config_.per_call_overhead_ns);

    Faaslet& f = *faaslet.value();
    Result<int> code = 0;
    {
      HostCpuModel::Running running(cpu_);
      Stopwatch execute_watch;
      code = f.Execute(std::move(input));
      if (f.is_wasm()) {
        // Wasm functions cannot self-report compute; charge the measured
        // interpreter time (native functions call ChargeCompute themselves).
        cpu_.Charge(execute_watch.ElapsedNs());
      }
    }
    Bytes output = code.ok() ? f.TakeOutput() : Bytes{};

    // Flush barrier: no state op the call enqueued (e.g. inside a StateBatch
    // scope it failed to close) may outlive its Faaslet — an awaiter must
    // observe every push the call made as durable the moment completion is
    // visible. No-op when the call's pushes already flushed themselves.
    Status flushed = kvs_.FlushBatch();
    if (!flushed.ok()) {
      LOG_WARN << config_.name << ": state batch flush failed at call completion: "
               << flushed.ToString();
    }

    // Reset from the creation snapshot so the next call (possibly another
    // tenant) sees a pristine Faaslet; charge the real restore cost. The
    // reset happens BEFORE the call is marked finished: an awaiter's next
    // call may land here the instant completion is visible, and must find
    // the Faaslet back in the pool instead of cold-starting a redundant one.
    Stopwatch reset_watch;
    Status reset = f.Reset();
    clock.SleepFor(reset_watch.ElapsedNs());
    const size_t footprint = f.FootprintBytes();
    if (reset.ok()) {
      ReleaseFaaslet(std::move(faaslet).value());
    } else {
      LOG_WARN << config_.name << ": faaslet reset failed: " << reset.ToString();
      memory_.Release(footprint);
    }
    SyncTierAccounting();

    if (code.ok()) {
      (void)calls_->Complete(call_id, code.value(), std::move(output));
    } else {
      (void)calls_->Fail(call_id, code.status().ToString());
    }
    executed_calls_.fetch_add(1);
    running_calls_.fetch_sub(1);
    UpdateWarmAdvertisement();
  });
}

FaasletEnv FaasmInstance::MakeEnv() {
  FaasletEnv env;
  env.clock = &executor_->clock();
  env.tier = tier_.get();
  env.files = files_;
  env.network = network_;
  env.host_endpoint = config_.name;
  env.cpu = &cpu_;
  env.chain = [this](const std::string& fn, Bytes in) { return Submit(fn, std::move(in)); };
  env.await = [this](uint64_t id) { return Await(id); };
  env.get_output = [this](uint64_t id) { return calls_->Output(id); };
  env.guest_bounds = config_.guest_bounds;
  env.guest_dispatch = config_.guest_dispatch;
  return env;
}

Result<std::unique_ptr<Faaslet>> FaasmInstance::ColdStart(const FunctionSpec& spec) {
  SimClock& clock = executor_->clock();
  cold_starts_.fetch_add(1);

  // Proto-Faaslets capture initialised wasm images (§5.2); native stand-in
  // functions have nothing worth snapshotting globally, so skip the global
  // tier for them (they still keep a local creation snapshot for resets).
  const bool use_global_proto = spec.module != nullptr;

  // Prefer a Proto-Faaslet: local cache first, then the global tier (§5.2:
  // snapshots restore across hosts).
  std::shared_ptr<const ProtoFaaslet> proto;
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    auto it = proto_cache_.find(spec.name);
    if (it != proto_cache_.end()) {
      proto = it->second;
    }
  }
  if (proto == nullptr && use_global_proto) {
    auto remote = kvs_.Read("proto:" + spec.name);
    if (remote.ok()) {
      auto parsed = ProtoFaaslet::Deserialize(remote.value());
      if (parsed.ok()) {
        proto = parsed.value();
        std::lock_guard<std::mutex> guard(pools_mutex_);
        proto_cache_[spec.name] = proto;
      }
    }
  }

  Stopwatch watch;
  Result<std::unique_ptr<Faaslet>> faaslet =
      proto != nullptr ? Faaslet::CreateFromProto(spec, MakeEnv(), proto)
                       : Faaslet::Create(spec, MakeEnv());
  // Charge the real creation cost to virtual time (simulated_init_ns inside
  // Create slept virtually already).
  clock.SleepFor(watch.ElapsedNs());
  if (!faaslet.ok()) {
    return faaslet.status();
  }

  if (proto == nullptr) {
    // First instantiation anywhere: publish the snapshot for other hosts.
    auto captured = ProtoFaaslet::CaptureFrom(*faaslet.value());
    if (captured.ok()) {
      {
        std::lock_guard<std::mutex> guard(pools_mutex_);
        proto_cache_[spec.name] = captured.value();
      }
      if (use_global_proto) {
        (void)kvs_.Set("proto:" + spec.name, captured.value()->Serialize());
      }
    }
  }
  return faaslet;
}

Result<std::unique_ptr<Faaslet>> FaasmInstance::AcquireFaaslet(const std::string& function,
                                                               bool* cold) {
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    auto it = pools_.find(function);
    if (it != pools_.end() && !it->second.idle.empty()) {
      auto faaslet = std::move(it->second.idle.back());
      it->second.idle.pop_back();
      *cold = false;
      return faaslet;
    }
  }
  *cold = true;
  FAASM_ASSIGN_OR_RETURN(FunctionSpec spec, registry_->Lookup(function));
  FAASM_ASSIGN_OR_RETURN(auto faaslet, ColdStart(spec));
  FAASM_RETURN_IF_ERROR(memory_.Allocate(faaslet->FootprintBytes()));
  {
    std::lock_guard<std::mutex> guard(pools_mutex_);
    pools_[function].total += 1;
  }
  // Advertise this host as warm for the function (unless saturated or on
  // the way out of the cluster).
  if (!advertised_saturated_.load() && !draining_.load()) {
    (void)kvs_.SetAdd("warm:" + function, config_.name);
    InvalidateWarmCache(function);
  }
  return faaslet;
}

void FaasmInstance::ReleaseFaaslet(std::unique_ptr<Faaslet> faaslet) {
  std::lock_guard<std::mutex> guard(pools_mutex_);
  pools_[faaslet->function()].idle.push_back(std::move(faaslet));
}

Result<int> FaasmInstance::Await(uint64_t call_id) {
  SimClock& clock = executor_->clock();
  clock.WaitFor([this, call_id] { return calls_->IsFinished(call_id); }, 200 * kMicrosecond);
  FAASM_ASSIGN_OR_RETURN(CallRecord record, calls_->Get(call_id));
  if (record.state == CallState::kFailed) {
    return Internal("call #" + std::to_string(call_id) + " failed: " + record.error);
  }
  return record.return_code;
}

void FaasmInstance::SyncTierAccounting() {
  const size_t now_bytes = tier_->resident_bytes();
  const size_t before = tier_bytes_accounted_.exchange(now_bytes);
  if (now_bytes > before) {
    // Local tier growth counts against host memory; on overflow we log but do
    // not fail the call (the state already exists in the region).
    Status status = memory_.Allocate(now_bytes - before);
    if (!status.ok()) {
      LOG_WARN << config_.name << ": local tier exceeds host memory";
    }
  } else if (before > now_bytes) {
    memory_.Release(before - now_bytes);
  }
}

size_t FaasmInstance::warm_faaslet_count() const {
  std::lock_guard<std::mutex> guard(pools_mutex_);
  size_t count = 0;
  for (const auto& [name, pool] : pools_) {
    count += pool.total;
  }
  return count;
}

}  // namespace faasm
