// Sub-op codec shared by the public batch protocol (kvs_client.cc) and the
// replication forward channel (kvs/replication.h).
//
// Two wire dialects over the same framed container (net/framing.h):
//
//   - the PUBLIC dialect (EncodeBatchOp/DecodeBatchOp): what kBatch /
//     kGetBatch sub-ops have always looked like — u8 op, key, op-specific
//     args. Lock ops are NOT batchable here (DecodeBatchOp rejects them), so
//     extracting the codec changed no public byte.
//   - the REPLICA dialect (EncodeReplicaOp/DecodeReplicaOp): the
//     primary→backup forward channel. Same layout plus (a) a u64 apply
//     sequence after the key — the backup's duplicate filter — and (b) the
//     four lock ops, because lock state must travel to backups exactly as it
//     travels in migration (the owner rides in `member`).
//
// Results (EncodeBatchResult/DecodeBatchResult) are shared: status byte,
// then an op-keyed payload. Lock-acquire results carry the acquired flag;
// the public dialect never produces them (its decode refused the op).
#ifndef FAASM_KVS_BATCH_CODEC_H_
#define FAASM_KVS_BATCH_CODEC_H_

#include "common/bytes.h"
#include "common/status.h"
#include "kvs/kv_store.h"

namespace faasm {

// Response layout shared by every KVS wire answer: u8 status code first,
// payload after (only when ok).
void WriteStatus(ByteWriter& writer, const Status& status);
Status ReadStatus(ByteReader& reader);

// Public dialect (kBatch / kGetBatch sub-ops). DecodeBatchOp answers
// InvalidArgument("kvs: op not batchable") for any op outside the public
// batchable set — including the lock ops the replica dialect accepts.
Bytes EncodeBatchOp(const KvsBatchOp& op);
Result<KvsBatchOp> DecodeBatchOp(const Bytes& part);

// Replica dialect (primary→backup forwards). `seq` is the primary's apply
// sequence for the op; DecodeReplicaOp fills KvsBatchOp::seq with it.
Bytes EncodeReplicaOp(const KvsBatchOp& op, uint64_t seq);
Result<KvsBatchOp> DecodeReplicaOp(const Bytes& part);

// Per-op result, both dialects.
Bytes EncodeBatchResult(KvsOp op, const KvsBatchResult& result);
KvsBatchResult DecodeBatchResult(KvsOp op, const Bytes& part);

}  // namespace faasm

#endif  // FAASM_KVS_BATCH_CODEC_H_
