#include "wasm/instance.h"

#include <atomic>
#include <bit>
#include <cmath>
#include <csetjmp>
#include <cstring>
#include <limits>
#include <mutex>

#include "wasm/guard_trap.h"

namespace faasm::wasm {

namespace {

constexpr uint32_t kNullFunc = UINT32_MAX;

// --- Float helpers implementing wasm NaN / signed-zero semantics ------------

template <typename F>
F WasmFMin(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? a : b;  // min(+0,-0) = -0
  }
  return a < b ? a : b;
}

template <typename F>
F WasmFMax(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? b : a;  // max(+0,-0) = +0
  }
  return a > b ? a : b;
}

template <typename F, typename I>
Status TruncChecked(F value, F lo, F hi, bool lo_inclusive, I* out) {
  if (std::isnan(value)) {
    return TrapStatus(TrapKind::kInvalidConversion);
  }
  const bool lo_ok = lo_inclusive ? value >= lo : value > lo;
  if (!lo_ok || !(value < hi)) {
    return TrapStatus(TrapKind::kIntegerOverflow);
  }
  *out = static_cast<I>(std::trunc(value));
  return OkStatus();
}

}  // namespace

// --- MapImportResolver -------------------------------------------------------

void MapImportResolver::Register(const std::string& module, const std::string& name, HostFn fn) {
  entries_.emplace_back(module, name, std::move(fn));
}

Result<HostFn> MapImportResolver::Resolve(const Import& import, const FuncType& /*type*/) {
  for (const auto& [module, name, fn] : entries_) {
    if (module == import.module && name == import.name) {
      return fn;
    }
  }
  return NotFound("unresolved import " + import.module + "." + import.name);
}

// --- Instantiation -----------------------------------------------------------

Result<std::unique_ptr<Instance>> Instance::Create(std::shared_ptr<const CompiledModule> compiled,
                                                   ImportResolver* resolver,
                                                   LinearMemory* external_memory,
                                                   const InstanceOptions& options) {
  auto instance = std::unique_ptr<Instance>(new Instance(std::move(compiled), options));
  FAASM_RETURN_IF_ERROR(instance->Instantiate(resolver, external_memory));
  return instance;
}

Status Instance::Instantiate(ImportResolver* resolver, LinearMemory* external_memory) {
  const Module& module = compiled_->module;

  // Resolve the requested execution tiers against what this build supports;
  // the start function (below) already runs on the effective tiers.
  effective_bounds_ = options_.bounds;
  if (effective_bounds_ == GuestBounds::kGuardPage && !GuardTrapSupported()) {
    effective_bounds_ = GuestBounds::kChecked;  // sanitizer builds
  }
#if FAASM_INTERP_COMPUTED_GOTO
  effective_dispatch_ = options_.dispatch;
#else
  effective_dispatch_ = GuestDispatch::kSwitch;
#endif

  // Imports.
  for (const Import& import : module.imports) {
    if (resolver == nullptr) {
      return InvalidArgument("module has imports but no resolver given");
    }
    const FuncType& type = module.types[import.type_index];
    if (type.params.size() > 32) {
      return Unimplemented("imports with >32 params unsupported");
    }
    FAASM_ASSIGN_OR_RETURN(HostFn fn, resolver->Resolve(import, type));
    host_functions_.push_back(std::move(fn));
  }

  // Memory.
  if (external_memory != nullptr) {
    memory_ = external_memory;
    if (module.memory.has_value() && memory_->size_pages() < module.memory->min) {
      const uint32_t delta = module.memory->min - memory_->size_pages();
      if (memory_->Grow(delta) == UINT32_MAX) {
        return ResourceExhausted("external memory smaller than module minimum");
      }
    }
  } else if (module.memory.has_value()) {
    const uint32_t max_pages =
        module.memory->has_max ? module.memory->max : options_.default_max_pages;
    FAASM_ASSIGN_OR_RETURN(owned_memory_, LinearMemory::Create(module.memory->min, max_pages));
    memory_ = owned_memory_.get();
  }

  // Data segments.
  for (const DataSegment& segment : module.data) {
    if (memory_ == nullptr) {
      return InvalidArgument("data segment without memory");
    }
    FAASM_RETURN_IF_ERROR(memory_->Write(segment.offset, segment.bytes.data(),
                                         segment.bytes.size()));
  }

  // Globals.
  globals_.reserve(module.globals.size());
  for (const GlobalDef& global : module.globals) {
    globals_.push_back(global.init);
  }

  // Table + element segments.
  if (module.table.has_value()) {
    table_.assign(module.table->min, kNullFunc);
    for (const ElementSegment& segment : module.elements) {
      const uint64_t end = static_cast<uint64_t>(segment.offset) + segment.func_indices.size();
      if (end > table_.size()) {
        return OutOfRange("element segment out of table bounds");
      }
      for (size_t i = 0; i < segment.func_indices.size(); ++i) {
        table_[segment.offset + i] = segment.func_indices[i];
      }
    }
  }

  stack_.resize(4096);

  // Start function.
  if (module.start_function.has_value()) {
    auto result = CallFunction(*module.start_function, {});
    FAASM_RETURN_IF_ERROR(result.status());
  }
  return OkStatus();
}

Status Instance::SetGlobals(std::vector<Value> globals) {
  if (globals.size() != globals_.size()) {
    return InvalidArgument("global count mismatch on restore");
  }
  globals_ = std::move(globals);
  return OkStatus();
}

bool Instance::EnsureStack(size_t needed_slots) {
  if (needed_slots <= stack_.size()) {
    return true;
  }
  if (needed_slots > options_.max_stack_values) {
    return false;
  }
  size_t new_size = stack_.size() * 2;
  while (new_size < needed_slots) {
    new_size *= 2;
  }
  stack_.resize(std::min<size_t>(new_size, options_.max_stack_values));
  return true;
}

Status Instance::PushFrame(uint32_t func_index) {
  if (frames_.size() >= options_.max_call_depth) {
    return TrapStatus(TrapKind::kCallStackExhausted);
  }
  const CompiledFunction& fn = compiled_->function(func_index);
  const uint32_t locals_base = static_cast<uint32_t>(sp_ - fn.param_count);
  if (!EnsureStack(sp_ + fn.local_count + fn.max_operand_height + 8)) {
    return TrapStatus(TrapKind::kValueStackExhausted);
  }
  // Zero-initialise locals.
  for (uint32_t i = 0; i < fn.local_count; ++i) {
    stack_[sp_++] = MakeI64(0);
  }
  frames_.push_back(Frame{&fn, 0, locals_base, static_cast<uint32_t>(sp_)});
  return OkStatus();
}

Status Instance::CallHostFunction(uint32_t func_index) {
  const FuncType& type = compiled_->module.function_type(func_index);
  const size_t n_args = type.params.size();
  Value args[32];
  for (size_t i = 0; i < n_args; ++i) {
    args[i] = stack_[sp_ - n_args + i];
  }
  sp_ -= n_args;
  Value results[2] = {};
  Status status = host_functions_[func_index](*this, args, n_args, results);
  if (!status.ok()) {
    return IsTrap(status) ? status : TrapStatus(TrapKind::kHostError, status.ToString());
  }
  if (!type.results.empty()) {
    if (!EnsureStack(sp_ + 1)) {
      return TrapStatus(TrapKind::kValueStackExhausted);
    }
    stack_[sp_++] = results[0];
  }
  return OkStatus();
}

Result<std::vector<Value>> Instance::CallExport(const std::string& name, std::vector<Value> args) {
  auto index = compiled_->module.FindExport(name, ExternalKind::kFunction);
  if (!index.has_value()) {
    return NotFound("no exported function named '" + name + "'");
  }
  return CallFunction(*index, std::move(args));
}

Result<std::vector<Value>> Instance::CallFunction(uint32_t func_index, std::vector<Value> args) {
  if (func_index >= compiled_->module.num_functions()) {
    return InvalidArgument("function index out of range");
  }
  const FuncType& type = compiled_->module.function_type(func_index);
  if (args.size() != type.params.size()) {
    return InvalidArgument("argument count mismatch: expected " +
                           std::to_string(type.params.size()));
  }

  const size_t saved_sp = sp_;
  const size_t saved_frames = frames_.size();

  if (!EnsureStack(sp_ + args.size())) {
    return TrapStatus(TrapKind::kValueStackExhausted);
  }
  for (const Value& v : args) {
    stack_[sp_++] = v;
  }

  Status status;
  if (compiled_->is_import(func_index)) {
    status = CallHostFunction(func_index);
  } else {
    status = PushFrame(func_index);
    if (status.ok()) {
      status = Run();
    }
  }
  if (!status.ok()) {
    sp_ = saved_sp;
    frames_.resize(saved_frames);
    return status;
  }

  std::vector<Value> results;
  for (size_t i = 0; i < type.results.size(); ++i) {
    results.push_back(stack_[sp_ - type.results.size() + i]);
  }
  sp_ -= type.results.size();
  return results;
}

// --- Interpreter core ---------------------------------------------------------

// RAII accounting for one Run() activation. Keeping the counters in members
// (saved/restored here for nesting through host functions) makes the retired
// count exact on every exit path, including a guard-page longjmp that
// abandons the dispatch loop's stack frame mid-segment.
class Instance::CallScope {
 public:
  explicit CallScope(Instance* instance)
      : instance_(instance),
        entry_depth_(instance->frames_.size() - 1),
        saved_retired_(instance->retired_in_call_),
        saved_block_start_(instance->block_start_pc_) {
    instance->retired_in_call_ = 0;
    instance->block_start_pc_ = instance->frames_.back().pc;
  }

  ~CallScope() {
    uint64_t total = instance_->retired_in_call_;
    if (instance_->frames_.size() > entry_depth_) {
      // Abrupt exit (trap): charge the in-flight segment of the top frame.
      const Frame& top = instance_->frames_.back();
      const uint32_t* prefix = top.fn->retired_prefix.data();
      total += prefix[top.pc] - prefix[instance_->block_start_pc_];
    }
    instance_->instructions_retired_ += total;
    instance_->retired_in_call_ = saved_retired_;
    instance_->block_start_pc_ = saved_block_start_;
  }

  CallScope(const CallScope&) = delete;
  CallScope& operator=(const CallScope&) = delete;

 private:
  Instance* instance_;
  size_t entry_depth_;
  uint64_t saved_retired_;
  uint32_t saved_block_start_;
};

Status Instance::Run() {
  CallScope scope(this);
  if (effective_bounds_ == GuestBounds::kGuardPage && memory_ != nullptr) {
    return RunWithGuard();
  }
  return RunLoop<true>();
}

Status Instance::RunWithGuard() {
  GuardTrapScope guard(memory_->base(), LinearMemory::kReservationBytes);
  if (sigsetjmp(guard.jump_buffer(), 1) != 0) {
    // A guest access faulted on the PROT_NONE tail of the reservation. A
    // store that straddles the committed frontier may have written its first
    // bytes before faulting, so conservatively dirty the frontier page to
    // keep delta extraction sound.
    if (memory_->size_bytes() > 0) {
      memory_->MarkDirty(memory_->size_bytes() - 1, 1);
    }
    return TrapStatus(TrapKind::kMemoryOutOfBounds);
  }
  return RunLoop<false>();
}

template <bool kChecked>
Status Instance::RunLoop() {
#if FAASM_INTERP_COMPUTED_GOTO
  if (effective_dispatch_ == GuestDispatch::kThreaded) {
    return RunThreaded<kChecked>();
  }
#endif
  return RunSwitch<kChecked>();
}

template <bool kChecked>
Status Instance::RunSwitch() {
#define FAASM_THREADED 0
#include "wasm/interp_body.inc"
#undef FAASM_THREADED
}

#if FAASM_INTERP_COMPUTED_GOTO
template <bool kChecked>
Status Instance::RunThreaded() {
#define FAASM_THREADED 1
#include "wasm/interp_body.inc"
#undef FAASM_THREADED
}
#endif

}  // namespace faasm::wasm
