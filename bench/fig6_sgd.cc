// Figure 6: distributed SGD training — (a) training time, (b) network
// transfers, (c) billable memory — vs number of parallel functions, on FAASM
// and the container baseline. Also reproduces the §6.2 small-data variant
// (pass --small).
//
// Scale-down vs the paper (documented in EXPERIMENTS.md): synthetic
// RCV1-shaped dataset and proportionally smaller hosts, so the baseline hits
// the same memory wall at high parallelism the paper reports.
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "baseline/knative.h"
#include "runtime/cluster.h"
#include "workloads/sgd.h"

namespace faasm {
namespace {

struct Point {
  double seconds = 0;
  double network_mb = 0;
  double billable_gb_s = 0;
  size_t failed = 0;
  bool ok = false;
};

// Global-tier layout under test (--tier=central|sharded; default sharded,
// the production path).
StateTier g_tier = StateTier::kSharded;

ClusterConfig MakeClusterConfig(bool small_data) {
  ClusterConfig config;
  config.hosts = 10;
  config.state_tier = g_tier;
  config.cores_per_host = 4;
  // One training function per core before a host withdraws from the warm set
  // (mirrors the baseline's per-pod concurrency target of 1).
  config.max_concurrent_per_host = 6;
  // Scaled host memory: dataset is ~2000x smaller than RCV1-on-16GB-hosts,
  // hosts shrink accordingly so container copies exhaust memory at high
  // parallelism exactly as in the paper.
  config.host_memory_bytes = small_data ? size_t{512} * 1024 * 1024 : size_t{56} * 1024 * 1024;
  return config;
}

SgdConfig MakeSgdConfig(bool small_data, uint32_t workers) {
  SgdConfig config;
  if (small_data) {
    config.n_examples = 128;  // §6.2: "training examples reduced ... to 128"
    config.n_features = 512;
    config.nnz_per_example = 8;
    config.n_epochs = 1;
  } else {
    config.n_examples = 16384;
    config.n_features = 4096;
    config.nnz_per_example = 32;
    config.n_epochs = 3;
  }
  config.n_workers = workers;
  return config;
}

template <typename Cluster, typename Client>
Point RunOn(Cluster& cluster, const SgdConfig& config,
            const std::function<void(const std::function<void(Client&)>&)>& run) {
  Point point;
  SeedSgdDataset(cluster.kvs(), config);
  if (!RegisterSgdFunctions(cluster.registry()).ok()) {
    return point;
  }
  run([&](Client& client) {
    const TimeNs start = cluster.clock().Now();
    auto result = RunSgdTraining(client, config);
    point.ok = result.ok();
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
    point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
    point.billable_gb_s = cluster.billable_gb_seconds();
  });
  return point;
}

Point RunFaasm(bool small_data, uint32_t workers) {
  FaasmCluster cluster(MakeClusterConfig(small_data));
  const SgdConfig config = MakeSgdConfig(small_data, workers);
  Point point = RunOn<FaasmCluster, Frontend>(
      cluster, config, [&](const std::function<void(Frontend&)>& driver) {
        cluster.Run(driver);
      });
  return point;
}

Point RunKnative(bool small_data, uint32_t workers) {
  ContainerModel model;  // full calibrated costs
  KnativeCluster cluster(MakeClusterConfig(small_data), model);
  const SgdConfig config = MakeSgdConfig(small_data, workers);
  Point point = RunOn<KnativeCluster, KnativeCluster::Client>(
      cluster, config, [&](const std::function<void(KnativeCluster::Client&)>& driver) {
        cluster.Run(driver);
      });
  point.failed = cluster.failed_call_count();
  return point;
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  using namespace faasm;
  bool small = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--small") {
      small = true;
    } else if (arg == "--tier=central") {
      g_tier = StateTier::kCentral;
    } else if (arg == "--tier=sharded") {
      g_tier = StateTier::kSharded;
    } else {
      std::fprintf(stderr, "usage: %s [--small] [--tier=central|sharded]\n", argv[0]);
      return 2;
    }
  }
  std::printf("[FAASM global tier: %s]\n",
              g_tier == StateTier::kSharded ? "sharded (per-host masters)" : "central");

  if (small) {
    PrintHeader("Sec 6.2 small-data variant (128 examples, 32 parallel functions)");
    PrintContainerCalibration(ContainerModel{});
    Point f = RunFaasm(true, 32);
    Point k = RunKnative(true, 32);
    std::printf("%-10s %14s %16s %18s\n", "platform", "time (ms)", "network (MB)",
                "billable (GB-s)");
    std::printf("%-10s %14.0f %16.1f %18.3f\n", "FAASM", f.seconds * 1e3, f.network_mb,
                f.billable_gb_s);
    std::printf("%-10s %14.0f %16.1f %18.3f\n", "Knative", k.seconds * 1e3, k.network_mb,
                k.billable_gb_s);
    return 0;
  }

  PrintHeader("Figure 6: SGD training vs parallelism (FAASM vs container baseline)");
  PrintContainerCalibration(ContainerModel{});
  std::printf("[synthetic RCV1-shaped dataset; 10 hosts; scaled-down sizes — see EXPERIMENTS.md]\n");
  std::printf("\n%8s | %12s %12s %12s | %12s %12s %12s %s\n", "workers", "faasm_t(s)",
              "faasm_netMB", "faasm_GBs", "knative_t(s)", "kn_netMB", "kn_GBs", "kn_status");
  for (uint32_t workers : {2u, 5u, 10u, 15u, 20u, 25u, 30u, 34u, 38u}) {
    Point f = RunFaasm(false, workers);
    Point k = RunKnative(false, workers);
    std::printf("%8u | %12.2f %12.1f %12.3f | %12.2f %12.1f %12.3f %s\n", workers, f.seconds,
                f.network_mb, f.billable_gb_s, k.seconds, k.network_mb, k.billable_gb_s,
                k.failed > 0 ? "OOM" : (k.ok ? "ok" : "FAILED"));
  }
  std::printf("\nExpected shape (paper): FAASM time keeps improving past the point where the\n"
              "baseline flattens and then exhausts host memory (>30 workers); FAASM moves\n"
              "less data and accrues far less billable memory.\n");
  return 0;
}
