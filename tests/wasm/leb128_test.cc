#include "wasm/leb128.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace faasm::wasm {
namespace {

TEST(Leb128Test, U32RoundTrip) {
  for (uint32_t v : {0u, 1u, 127u, 128u, 300u, 16384u, 0xFFFFFFFFu, 624485u}) {
    Bytes out;
    WriteVarU32(out, v);
    ByteCursor cursor(out.data(), out.size());
    auto back = cursor.ReadVarU32();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
    EXPECT_TRUE(cursor.done());
  }
}

TEST(Leb128Test, S64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{63}, int64_t{64}, int64_t{-64}, int64_t{-65},
                    int64_t{INT64_MAX}, int64_t{INT64_MIN}, int64_t{-123456789}}) {
    Bytes out;
    WriteVarS64(out, v);
    ByteCursor cursor(out.data(), out.size());
    auto back = cursor.ReadVarS64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);
    EXPECT_TRUE(cursor.done());
  }
}

TEST(Leb128Test, KnownEncodings) {
  // 624485 encodes as E5 8E 26 (classic LEB example).
  Bytes out;
  WriteVarU32(out, 624485);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], 0xE5);
  EXPECT_EQ(out[1], 0x8E);
  EXPECT_EQ(out[2], 0x26);
  // -123456 encodes as C0 BB 78.
  Bytes neg;
  WriteVarS64(neg, -123456);
  ASSERT_EQ(neg.size(), 3u);
  EXPECT_EQ(neg[0], 0xC0);
  EXPECT_EQ(neg[1], 0xBB);
  EXPECT_EQ(neg[2], 0x78);
}

TEST(Leb128Test, TruncatedInputFails) {
  Bytes out;
  WriteVarU32(out, 1u << 30);
  out.pop_back();
  ByteCursor cursor(out.data(), out.size());
  EXPECT_FALSE(cursor.ReadVarU32().ok());
}

TEST(Leb128Test, OverlongU32Rejected) {
  // Six continuation bytes exceed the 35-bit budget for u32.
  Bytes out{0x80, 0x80, 0x80, 0x80, 0x80, 0x01};
  ByteCursor cursor(out.data(), out.size());
  EXPECT_FALSE(cursor.ReadVarU32().ok());
}

class LebPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LebPropertyTest, U64RoundTrip) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  for (int i = 0; i < 1000; ++i) {
    // Bias towards interesting widths.
    const int shift = static_cast<int>(rng.NextBelow(64));
    const uint64_t v = rng.NextU64() >> shift;
    Bytes out;
    WriteVarU64(out, v);
    ByteCursor cursor(out.data(), out.size());
    auto back = cursor.ReadVarU64();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), v);

    const int64_t s = static_cast<int64_t>(rng.NextU64()) >> shift;
    Bytes sout;
    WriteVarS64(sout, s);
    ByteCursor scursor(sout.data(), sout.size());
    auto sback = scursor.ReadVarS64();
    ASSERT_TRUE(sback.ok());
    EXPECT_EQ(sback.value(), s);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LebPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Leb128Test, ReadName) {
  Bytes out;
  WriteVarU32(out, 5);
  for (char c : std::string("hello")) {
    out.push_back(static_cast<uint8_t>(c));
  }
  ByteCursor cursor(out.data(), out.size());
  auto name = cursor.ReadName();
  ASSERT_TRUE(name.ok());
  EXPECT_EQ(name.value(), "hello");
}

}  // namespace
}  // namespace faasm::wasm
