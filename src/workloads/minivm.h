// MiniVM (§6.4 substitute for CPython-in-a-Faaslet): a small stack-bytecode
// language runtime implemented twice —
//   1. natively in C++ (the "CPython on the host" side), and
//   2. as a *guest WebAssembly program*: a bytecode interpreter authored with
//      the module builder that executes the same bytecode inside a Faaslet's
//      linear memory (the "CPython compiled to wasm" side).
// Running the same benchmark programs on both reproduces the structure of
// the paper's Python Performance Benchmark experiment: a dynamic language
// runtime double-interpreted under wasm vs running natively.
#ifndef FAASM_WORKLOADS_MINIVM_H_
#define FAASM_WORKLOADS_MINIVM_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "wasm/compiled.h"

namespace faasm {

// Bytecode opcodes.
enum class MviOp : uint8_t {
  kHalt = 0,   // result = pop
  kPush = 1,   // imm i32 (little endian)
  kLoad = 2,   // global index u8
  kStore = 3,  // global index u8
  kAdd = 4,
  kSub = 5,
  kMul = 6,
  kDiv = 7,
  kMod = 8,
  kEq = 9,
  kNe = 10,
  kLt = 11,
  kLe = 12,
  kGt = 13,
  kGe = 14,
  kJmp = 15,  // absolute target u16
  kJz = 16,   // absolute target u16; pops condition
  kALoad = 17,   // pop idx; push heap[idx]
  kAStore = 18,  // pop value, pop idx; heap[idx] = value
};

constexpr int kMviOpCount = 19;
constexpr uint32_t kMviGlobalSlots = 64;
constexpr uint32_t kMviHeapSlots = 1u << 16;

// Tiny assembler with label fix-ups.
class MviAssembler {
 public:
  void Push(int32_t value);
  void Load(uint8_t global);
  void Store(uint8_t global);
  void Op(MviOp op);
  // Control flow via named labels.
  void Label(const std::string& name);
  void Jmp(const std::string& label);
  void Jz(const std::string& label);
  void Halt();

  Result<Bytes> Assemble();

 private:
  Bytes code_;
  std::map<std::string, uint16_t> labels_;
  std::vector<std::pair<size_t, std::string>> fixups_;
};

// Native reference interpreter; returns the program result.
Result<int32_t> RunMiniVmNative(const Bytes& program, uint64_t max_steps = 500'000'000);

// Builds the guest-wasm MiniVM: a module whose "run" export interprets the
// program placed in its memory as a data segment. One module per program.
Result<std::shared_ptr<const wasm::CompiledModule>> BuildMiniVmWasm(const Bytes& program);

// Runs the program on the guest-wasm interpreter.
Result<int32_t> RunMiniVmWasm(const Bytes& program);

// Benchmark programs (the "Python performance suite" stand-ins).
struct MviProgram {
  std::string name;
  Bytes code;
};
const std::vector<MviProgram>& MiniVmBenchmarks();

}  // namespace faasm

#endif  // FAASM_WORKLOADS_MINIVM_H_
