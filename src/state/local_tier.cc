#include "state/local_tier.h"

namespace faasm {

std::shared_ptr<StateKeyValue> LocalTier::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = values_.find(key);
  if (it != values_.end()) {
    return it->second;
  }
  auto value = std::make_shared<StateKeyValue>(key, kvs_, clock_);
  values_[key] = value;
  return value;
}

bool LocalTier::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return values_.count(key) > 0;
}

size_t LocalTier::resident_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t bytes = 0;
  for (const auto& [key, value] : values_) {
    if (value->allocated()) {
      bytes += value->size();
    }
  }
  return bytes;
}

size_t LocalTier::key_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return values_.size();
}

Status LocalTier::Prefetch(const std::vector<std::string>& keys) {
  if (keys.empty()) {
    return OkStatus();
  }
  // Sync point: like Pull, a prefetch must observe this host's own earlier
  // (possibly still batched) pushes.
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());
  if (!kvs_->read_batching()) {
    // Ablation fallback: one sized pull per key, serialised.
    for (const std::string& key : keys) {
      FAASM_RETURN_IF_ERROR(Lookup(key)->Pull());
    }
    return OkStatus();
  }
  // Whole-value reads for every key, grouped per master endpoint into
  // kGetBatch RPCs; each ack installs into the replica as it lands.
  auto first_error = std::make_shared<std::mutex>();
  auto status = std::make_shared<Status>(OkStatus());
  OpBatch batch;
  for (const std::string& key : keys) {
    std::shared_ptr<StateKeyValue> replica = Lookup(key);
    batch.Read(key, [replica, first_error, status](const Result<Bytes>& value) {
      Status installed = value.ok() ? replica->InstallPulled(value.value()) : value.status();
      if (!installed.ok()) {
        std::lock_guard<std::mutex> guard(*first_error);
        if (status->ok()) {
          *status = installed;
        }
      }
    });
  }
  FAASM_RETURN_IF_ERROR(kvs_->ExecuteBatchNow(std::move(batch)));
  std::lock_guard<std::mutex> guard(*first_error);
  return *status;
}

void LocalTier::Clear() {
  // Settle pending batched pushes first: their acks re-mark/mark-present
  // against the replicas about to be dropped.
  (void)kvs_->FlushBatch();
  std::lock_guard<std::mutex> guard(mutex_);
  values_.clear();
}

}  // namespace faasm
