// WebAssembly opcode bytes (spec §5.4), MVP plus sign-extension operators.
#ifndef FAASM_WASM_OPCODES_H_
#define FAASM_WASM_OPCODES_H_

#include <cstdint>

namespace faasm::wasm {

enum class Op : uint8_t {
  kUnreachable = 0x00,
  kNop = 0x01,
  kBlock = 0x02,
  kLoop = 0x03,
  kIf = 0x04,
  kElse = 0x05,
  kEnd = 0x0B,
  kBr = 0x0C,
  kBrIf = 0x0D,
  kBrTable = 0x0E,
  kReturn = 0x0F,
  kCall = 0x10,
  kCallIndirect = 0x11,

  kDrop = 0x1A,
  kSelect = 0x1B,

  kLocalGet = 0x20,
  kLocalSet = 0x21,
  kLocalTee = 0x22,
  kGlobalGet = 0x23,
  kGlobalSet = 0x24,

  kI32Load = 0x28,
  kI64Load = 0x29,
  kF32Load = 0x2A,
  kF64Load = 0x2B,
  kI32Load8S = 0x2C,
  kI32Load8U = 0x2D,
  kI32Load16S = 0x2E,
  kI32Load16U = 0x2F,
  kI64Load8S = 0x30,
  kI64Load8U = 0x31,
  kI64Load16S = 0x32,
  kI64Load16U = 0x33,
  kI64Load32S = 0x34,
  kI64Load32U = 0x35,
  kI32Store = 0x36,
  kI64Store = 0x37,
  kF32Store = 0x38,
  kF64Store = 0x39,
  kI32Store8 = 0x3A,
  kI32Store16 = 0x3B,
  kI64Store8 = 0x3C,
  kI64Store16 = 0x3D,
  kI64Store32 = 0x3E,
  kMemorySize = 0x3F,
  kMemoryGrow = 0x40,

  kI32Const = 0x41,
  kI64Const = 0x42,
  kF32Const = 0x43,
  kF64Const = 0x44,

  kI32Eqz = 0x45,
  kI32Eq = 0x46,
  kI32Ne = 0x47,
  kI32LtS = 0x48,
  kI32LtU = 0x49,
  kI32GtS = 0x4A,
  kI32GtU = 0x4B,
  kI32LeS = 0x4C,
  kI32LeU = 0x4D,
  kI32GeS = 0x4E,
  kI32GeU = 0x4F,

  kI64Eqz = 0x50,
  kI64Eq = 0x51,
  kI64Ne = 0x52,
  kI64LtS = 0x53,
  kI64LtU = 0x54,
  kI64GtS = 0x55,
  kI64GtU = 0x56,
  kI64LeS = 0x57,
  kI64LeU = 0x58,
  kI64GeS = 0x59,
  kI64GeU = 0x5A,

  kF32Eq = 0x5B,
  kF32Ne = 0x5C,
  kF32Lt = 0x5D,
  kF32Gt = 0x5E,
  kF32Le = 0x5F,
  kF32Ge = 0x60,

  kF64Eq = 0x61,
  kF64Ne = 0x62,
  kF64Lt = 0x63,
  kF64Gt = 0x64,
  kF64Le = 0x65,
  kF64Ge = 0x66,

  kI32Clz = 0x67,
  kI32Ctz = 0x68,
  kI32Popcnt = 0x69,
  kI32Add = 0x6A,
  kI32Sub = 0x6B,
  kI32Mul = 0x6C,
  kI32DivS = 0x6D,
  kI32DivU = 0x6E,
  kI32RemS = 0x6F,
  kI32RemU = 0x70,
  kI32And = 0x71,
  kI32Or = 0x72,
  kI32Xor = 0x73,
  kI32Shl = 0x74,
  kI32ShrS = 0x75,
  kI32ShrU = 0x76,
  kI32Rotl = 0x77,
  kI32Rotr = 0x78,

  kI64Clz = 0x79,
  kI64Ctz = 0x7A,
  kI64Popcnt = 0x7B,
  kI64Add = 0x7C,
  kI64Sub = 0x7D,
  kI64Mul = 0x7E,
  kI64DivS = 0x7F,
  kI64DivU = 0x80,
  kI64RemS = 0x81,
  kI64RemU = 0x82,
  kI64And = 0x83,
  kI64Or = 0x84,
  kI64Xor = 0x85,
  kI64Shl = 0x86,
  kI64ShrS = 0x87,
  kI64ShrU = 0x88,
  kI64Rotl = 0x89,
  kI64Rotr = 0x8A,

  kF32Abs = 0x8B,
  kF32Neg = 0x8C,
  kF32Ceil = 0x8D,
  kF32Floor = 0x8E,
  kF32Trunc = 0x8F,
  kF32Nearest = 0x90,
  kF32Sqrt = 0x91,
  kF32Add = 0x92,
  kF32Sub = 0x93,
  kF32Mul = 0x94,
  kF32Div = 0x95,
  kF32Min = 0x96,
  kF32Max = 0x97,
  kF32Copysign = 0x98,

  kF64Abs = 0x99,
  kF64Neg = 0x9A,
  kF64Ceil = 0x9B,
  kF64Floor = 0x9C,
  kF64Trunc = 0x9D,
  kF64Nearest = 0x9E,
  kF64Sqrt = 0x9F,
  kF64Add = 0xA0,
  kF64Sub = 0xA1,
  kF64Mul = 0xA2,
  kF64Div = 0xA3,
  kF64Min = 0xA4,
  kF64Max = 0xA5,
  kF64Copysign = 0xA6,

  kI32WrapI64 = 0xA7,
  kI32TruncF32S = 0xA8,
  kI32TruncF32U = 0xA9,
  kI32TruncF64S = 0xAA,
  kI32TruncF64U = 0xAB,
  kI64ExtendI32S = 0xAC,
  kI64ExtendI32U = 0xAD,
  kI64TruncF32S = 0xAE,
  kI64TruncF32U = 0xAF,
  kI64TruncF64S = 0xB0,
  kI64TruncF64U = 0xB1,
  kF32ConvertI32S = 0xB2,
  kF32ConvertI32U = 0xB3,
  kF32ConvertI64S = 0xB4,
  kF32ConvertI64U = 0xB5,
  kF32DemoteF64 = 0xB6,
  kF64ConvertI32S = 0xB7,
  kF64ConvertI32U = 0xB8,
  kF64ConvertI64S = 0xB9,
  kF64ConvertI64U = 0xBA,
  kF64PromoteF32 = 0xBB,
  kI32ReinterpretF32 = 0xBC,
  kI64ReinterpretF64 = 0xBD,
  kF32ReinterpretI32 = 0xBE,
  kF64ReinterpretI64 = 0xBF,

  kI32Extend8S = 0xC0,
  kI32Extend16S = 0xC1,
  kI64Extend8S = 0xC2,
  kI64Extend16S = 0xC3,
  kI64Extend32S = 0xC4,
};

// Internal (non-encodable) opcodes used only in preprocessed code.
enum class IOp : uint16_t {
  // 0x00-0xFF mirror the wire opcodes above.
  kJump = 0x100,       // unconditional jump, no stack unwind (if/else plumbing)
  kJumpIfZero = 0x101, // conditional forward jump, no stack unwind
  kReturnEnd = 0x102,  // implicit return at the end of the function body

  // --- Superinstructions (0x110+) -------------------------------------------
  //
  // Emitted by the peephole fusion pass in compiler.cc (CompileOptions::
  // fuse_superinstructions). Each replaces a run of 2-4 wire instructions;
  // InstrRetireWeight (compiled.h) maps it back to that count so the
  // instructions_retired counter is invariant under fusion. Fusion never
  // crosses a branch-target boundary, so these only appear inside straight-
  // line code. Several are "prefix" superinstructions: they push operands and
  // then re-dispatch to the opcode carried in a field, reusing the plain
  // handler for the tail instruction.

  // local.get a; local.get b
  kFuseGetGet = 0x110,
  // local.get a; local.get b; <binop> — imm = the binop opcode (redispatch)
  kFuseGetGetOp = 0x111,
  // local.get a; <const>; <binop> — b = the binop opcode, imm = const bits
  kFuseGetConstOp = 0x112,
  // local.get a; <load/store> — b = the memory opcode, imm = its offset
  kFuseGetMem = 0x113,
  // i32.const; <load> — b = the load opcode, imm = folded const+offset
  // address (the handler sees a zero address operand)
  kFuseConstLoad = 0x114,
  // local.get a; i32.const imm; i32.add; local.set b  (loop increment)
  kFuseIncLocal = 0x115,
  // <i32 compare>; br_if — a = target pc, b = arity, imm = unwind height
  kFuseGeSBrIf = 0x116,
  kFuseLtSBrIf = 0x117,
  kFuseEqzBrIf = 0x118,
  kFuseEqBrIf = 0x119,
  kFuseNeBrIf = 0x11A,
  // Counted-loop exit test, arity 0 (builder.cc For* skeleton):
  // local.get l1; local.get l2; i32.ge_s; br_if — b = (l1 << 16) | l2
  kFuseLoopGeSLL = 0x11B,
  // local.get l; i32.const c; i32.ge_s; br_if — b = l,
  // imm = (height << 32) | (uint32_t)c
  kFuseLoopGeSLC = 0x11C,
  // local.get a; <binop> — b = the binop opcode (redispatch)
  kFuseGetOp = 0x11D,
  // <const>; <binop> — b = the binop opcode, imm = const bits (redispatch)
  kFuseConstOp = 0x11E,
  // f64.mul; f64.add; local.set a — the dot-product accumulation tail.
  // Evaluated as two separately-rounded operations, never contracted to an
  // fma, so results stay bit-identical to the unfused tier.
  kFuseF64MulAddSet = 0x11F,
  // local.get a; local.get n; i32.mul; local.get b; i32.add — the row-major
  // index idiom (a*n+b, both ops wrapping mod 2^32). a = l_a, b = l_n,
  // imm = l_b.
  kFuseRowMajor = 0x120,
  // local.get x; <row-major a,n,b> — the same with a leading operand push
  // (e.g. the accumulator before an indexed load). All four locals must be
  // < 0x10000: a = (l_x << 16) | l_a, b = (l_n << 16) | l_b.
  kFuseGetRowMajor = 0x121,
  // i32.const c; i32.mul; <load> — index scaling folded into the address
  // operand: pushes (u32)(idx * c), then redispatches to the load in b with
  // imm = the load's offset. The 32-bit wrap of the multiply is preserved.
  kFuseScaleLoad = 0x122,
};

// Upper bound on preprocessed opcode values; sizes the threaded-dispatch
// jump table in the interpreter.
inline constexpr size_t kInterpOpLimit = 0x130;

}  // namespace faasm::wasm

#endif  // FAASM_WASM_OPCODES_H_
