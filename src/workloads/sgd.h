// Distributed HOGWILD SGD (§6.2, Listing 1): sparse linear-model training
// with a shared weights vector updated racily by parallel workers, batched
// to the global tier through an AsyncArray (the paper's VectorAsync).
//
// The dataset is a synthetic stand-in for Reuters RCV1 with the same shape:
// a sparse CSC feature matrix plus a dense label vector (see DESIGN.md
// substitutions). Functions are written against InvocationContext so the
// identical code runs on FAASM and on the container baseline.
#ifndef FAASM_WORKLOADS_SGD_H_
#define FAASM_WORKLOADS_SGD_H_

#include <string>

#include "core/invocation_context.h"
#include "kvs/router.h"
#include "runtime/registry.h"

namespace faasm {

struct SgdConfig {
  uint32_t n_examples = 8192;    // columns of the CSC matrix
  uint32_t n_features = 2048;    // rows
  uint32_t nnz_per_example = 16; // sparsity (RCV1 is ~0.16% dense)
  uint32_t n_workers = 8;
  uint32_t n_epochs = 3;
  float learning_rate = 0.05f;
  uint32_t push_interval = 64;   // AsyncArray batching of weight pushes
  // Delta (dirty-run) weight pushes vs full-value pushes (ablation knob;
  // delta is the production path).
  bool delta_push = true;
  uint64_t seed = 42;
};

// State keys used by the workload.
inline const char* kSgdMatrixKey = "training_a";   // CSC triple under :vals/:rows/:cols
inline const char* kSgdLabelsKey = "training_b";
inline const char* kSgdWeightsKey = "weights";
inline const char* kSgdLossKey = "losses";

// Generates the synthetic dataset, computes ground-truth-ish weights and
// seeds the global tier directly (datasets pre-exist in storage; seeding is
// not experiment traffic). Returns total dataset bytes.
size_t SeedSgdDataset(ShardedKvs& kvs, const SgdConfig& config);

// The worker function body ("sgd_update"): trains on a column range.
// Input: u32 col_start, u32 col_end, f32 learning_rate, u32 push_interval.
int SgdUpdateFunction(InvocationContext& ctx);

// Computes mean squared error over the full dataset ("sgd_loss").
int SgdLossFunction(InvocationContext& ctx);

// Registers "sgd_update" and "sgd_loss" with a registry (both platforms).
Status RegisterSgdFunctions(FunctionRegistry& registry);

// Encodes a worker input.
Bytes EncodeSgdWorkerInput(uint32_t col_start, uint32_t col_end, float learning_rate,
                           uint32_t push_interval, bool delta_push = true);

// Drives one full training run through a platform client (Frontend or
// KnativeCluster::Client): chains n_workers updates per epoch and awaits
// them, Listing-1 style. Returns final loss.
template <typename Client>
Result<double> RunSgdTraining(Client& client, const SgdConfig& config) {
  double final_loss = 0;
  for (uint32_t epoch = 0; epoch < config.n_epochs; ++epoch) {
    const uint32_t per_worker = config.n_examples / config.n_workers;
    std::vector<uint64_t> ids;
    for (uint32_t w = 0; w < config.n_workers; ++w) {
      const uint32_t start = w * per_worker;
      const uint32_t end =
          w + 1 == config.n_workers ? config.n_examples : start + per_worker;
      FAASM_ASSIGN_OR_RETURN(
          uint64_t id,
          client.Submit("sgd_update", EncodeSgdWorkerInput(start, end, config.learning_rate,
                                                           config.push_interval,
                                                           config.delta_push)));
      ids.push_back(id);
    }
    for (uint64_t id : ids) {
      FAASM_ASSIGN_OR_RETURN(int code, client.Await(id));
      if (code != 0) {
        return Internal("sgd_update failed with code " + std::to_string(code));
      }
    }
    FAASM_ASSIGN_OR_RETURN(uint64_t loss_id, client.Submit("sgd_loss", Bytes{}));
    FAASM_ASSIGN_OR_RETURN(int loss_code, client.Await(loss_id));
    if (loss_code != 0) {
      return Internal("sgd_loss failed");
    }
    FAASM_ASSIGN_OR_RETURN(Bytes loss_bytes, client.Output(loss_id));
    ByteReader reader(loss_bytes);
    FAASM_ASSIGN_OR_RETURN(final_loss, reader.Get<double>());
  }
  return final_loss;
}

}  // namespace faasm

#endif  // FAASM_WORKLOADS_SGD_H_
