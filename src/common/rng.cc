#include "common/rng.h"

#include <cmath>

namespace faasm {

double Rng::NextExponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) {
    u = 1e-12;
  }
  return -mean * std::log(u);
}

double Rng::NextGaussian() {
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) {
    u1 = 1e-12;
  }
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace faasm
