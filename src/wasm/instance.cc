#include "wasm/instance.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace faasm::wasm {

namespace {

constexpr uint32_t kNullFunc = UINT32_MAX;

// --- Float helpers implementing wasm NaN / signed-zero semantics ------------

template <typename F>
F WasmFMin(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? a : b;  // min(+0,-0) = -0
  }
  return a < b ? a : b;
}

template <typename F>
F WasmFMax(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) {
    return std::numeric_limits<F>::quiet_NaN();
  }
  if (a == b) {
    return std::signbit(a) ? b : a;  // max(+0,-0) = +0
  }
  return a > b ? a : b;
}

template <typename F, typename I>
Status TruncChecked(F value, F lo, F hi, bool lo_inclusive, I* out) {
  if (std::isnan(value)) {
    return TrapStatus(TrapKind::kInvalidConversion);
  }
  const bool lo_ok = lo_inclusive ? value >= lo : value > lo;
  if (!lo_ok || !(value < hi)) {
    return TrapStatus(TrapKind::kIntegerOverflow);
  }
  *out = static_cast<I>(std::trunc(value));
  return OkStatus();
}

}  // namespace

// --- MapImportResolver -------------------------------------------------------

void MapImportResolver::Register(const std::string& module, const std::string& name, HostFn fn) {
  entries_.emplace_back(module, name, std::move(fn));
}

Result<HostFn> MapImportResolver::Resolve(const Import& import, const FuncType& /*type*/) {
  for (const auto& [module, name, fn] : entries_) {
    if (module == import.module && name == import.name) {
      return fn;
    }
  }
  return NotFound("unresolved import " + import.module + "." + import.name);
}

// --- Instantiation -----------------------------------------------------------

Result<std::unique_ptr<Instance>> Instance::Create(std::shared_ptr<const CompiledModule> compiled,
                                                   ImportResolver* resolver,
                                                   LinearMemory* external_memory,
                                                   const InstanceOptions& options) {
  auto instance = std::unique_ptr<Instance>(new Instance(std::move(compiled), options));
  FAASM_RETURN_IF_ERROR(instance->Instantiate(resolver, external_memory));
  return instance;
}

Status Instance::Instantiate(ImportResolver* resolver, LinearMemory* external_memory) {
  const Module& module = compiled_->module;

  // Imports.
  for (const Import& import : module.imports) {
    if (resolver == nullptr) {
      return InvalidArgument("module has imports but no resolver given");
    }
    const FuncType& type = module.types[import.type_index];
    if (type.params.size() > 32) {
      return Unimplemented("imports with >32 params unsupported");
    }
    FAASM_ASSIGN_OR_RETURN(HostFn fn, resolver->Resolve(import, type));
    host_functions_.push_back(std::move(fn));
  }

  // Memory.
  if (external_memory != nullptr) {
    memory_ = external_memory;
    if (module.memory.has_value() && memory_->size_pages() < module.memory->min) {
      const uint32_t delta = module.memory->min - memory_->size_pages();
      if (memory_->Grow(delta) == UINT32_MAX) {
        return ResourceExhausted("external memory smaller than module minimum");
      }
    }
  } else if (module.memory.has_value()) {
    const uint32_t max_pages =
        module.memory->has_max ? module.memory->max : options_.default_max_pages;
    FAASM_ASSIGN_OR_RETURN(owned_memory_, LinearMemory::Create(module.memory->min, max_pages));
    memory_ = owned_memory_.get();
  }

  // Data segments.
  for (const DataSegment& segment : module.data) {
    if (memory_ == nullptr) {
      return InvalidArgument("data segment without memory");
    }
    FAASM_RETURN_IF_ERROR(memory_->Write(segment.offset, segment.bytes.data(),
                                         segment.bytes.size()));
  }

  // Globals.
  globals_.reserve(module.globals.size());
  for (const GlobalDef& global : module.globals) {
    globals_.push_back(global.init);
  }

  // Table + element segments.
  if (module.table.has_value()) {
    table_.assign(module.table->min, kNullFunc);
    for (const ElementSegment& segment : module.elements) {
      const uint64_t end = static_cast<uint64_t>(segment.offset) + segment.func_indices.size();
      if (end > table_.size()) {
        return OutOfRange("element segment out of table bounds");
      }
      for (size_t i = 0; i < segment.func_indices.size(); ++i) {
        table_[segment.offset + i] = segment.func_indices[i];
      }
    }
  }

  stack_.resize(4096);

  // Start function.
  if (module.start_function.has_value()) {
    auto result = CallFunction(*module.start_function, {});
    FAASM_RETURN_IF_ERROR(result.status());
  }
  return OkStatus();
}

Status Instance::SetGlobals(std::vector<Value> globals) {
  if (globals.size() != globals_.size()) {
    return InvalidArgument("global count mismatch on restore");
  }
  globals_ = std::move(globals);
  return OkStatus();
}

bool Instance::EnsureStack(size_t needed_slots) {
  if (needed_slots <= stack_.size()) {
    return true;
  }
  if (needed_slots > options_.max_stack_values) {
    return false;
  }
  size_t new_size = stack_.size() * 2;
  while (new_size < needed_slots) {
    new_size *= 2;
  }
  stack_.resize(std::min<size_t>(new_size, options_.max_stack_values));
  return true;
}

Status Instance::PushFrame(uint32_t func_index) {
  if (frames_.size() >= options_.max_call_depth) {
    return TrapStatus(TrapKind::kCallStackExhausted);
  }
  const CompiledFunction& fn = compiled_->function(func_index);
  const uint32_t locals_base = static_cast<uint32_t>(sp_ - fn.param_count);
  if (!EnsureStack(sp_ + fn.local_count + fn.max_operand_height + 8)) {
    return TrapStatus(TrapKind::kValueStackExhausted);
  }
  // Zero-initialise locals.
  for (uint32_t i = 0; i < fn.local_count; ++i) {
    stack_[sp_++] = MakeI64(0);
  }
  frames_.push_back(Frame{&fn, 0, locals_base, static_cast<uint32_t>(sp_)});
  return OkStatus();
}

Status Instance::CallHostFunction(uint32_t func_index) {
  const FuncType& type = compiled_->module.function_type(func_index);
  const size_t n_args = type.params.size();
  Value args[32];
  for (size_t i = 0; i < n_args; ++i) {
    args[i] = stack_[sp_ - n_args + i];
  }
  sp_ -= n_args;
  Value results[2] = {};
  Status status = host_functions_[func_index](*this, args, n_args, results);
  if (!status.ok()) {
    return IsTrap(status) ? status : TrapStatus(TrapKind::kHostError, status.ToString());
  }
  if (!type.results.empty()) {
    if (!EnsureStack(sp_ + 1)) {
      return TrapStatus(TrapKind::kValueStackExhausted);
    }
    stack_[sp_++] = results[0];
  }
  return OkStatus();
}

Result<std::vector<Value>> Instance::CallExport(const std::string& name, std::vector<Value> args) {
  auto index = compiled_->module.FindExport(name, ExternalKind::kFunction);
  if (!index.has_value()) {
    return NotFound("no exported function named '" + name + "'");
  }
  return CallFunction(*index, std::move(args));
}

Result<std::vector<Value>> Instance::CallFunction(uint32_t func_index, std::vector<Value> args) {
  if (func_index >= compiled_->module.num_functions()) {
    return InvalidArgument("function index out of range");
  }
  const FuncType& type = compiled_->module.function_type(func_index);
  if (args.size() != type.params.size()) {
    return InvalidArgument("argument count mismatch: expected " +
                           std::to_string(type.params.size()));
  }

  const size_t saved_sp = sp_;
  const size_t saved_frames = frames_.size();

  if (!EnsureStack(sp_ + args.size())) {
    return TrapStatus(TrapKind::kValueStackExhausted);
  }
  for (const Value& v : args) {
    stack_[sp_++] = v;
  }

  Status status;
  if (compiled_->is_import(func_index)) {
    status = CallHostFunction(func_index);
  } else {
    status = PushFrame(func_index);
    if (status.ok()) {
      status = Run();
    }
  }
  if (!status.ok()) {
    sp_ = saved_sp;
    frames_.resize(saved_frames);
    return status;
  }

  std::vector<Value> results;
  for (size_t i = 0; i < type.results.size(); ++i) {
    results.push_back(stack_[sp_ - type.results.size() + i]);
  }
  sp_ -= type.results.size();
  return results;
}

// --- Interpreter core ---------------------------------------------------------

Status Instance::Run() {
  const size_t entry_depth = frames_.size() - 1;
  Frame* frame = &frames_.back();
  const Instr* code = frame->fn->code.data();

  uint64_t fuel = fuel_limit_ == 0 ? UINT64_MAX : fuel_limit_;
  uint64_t retired = 0;

  LinearMemory* mem = memory_;

// Convenience accessors over the operand stack.
#define TOP() stack_[sp_ - 1]
#define TOP2() stack_[sp_ - 2]
#define POP() stack_[--sp_]
#define PUSH(v)                                     \
  do {                                              \
    stack_[sp_++] = (v);                            \
  } while (0)

#define MEM_CHECK(addr64, len)                                       \
  if (mem == nullptr || !mem->InBounds((addr64), (len))) {           \
    instructions_retired_ += retired;                                \
    return TrapStatus(TrapKind::kMemoryOutOfBounds);                 \
  }

  for (;;) {
    if (--fuel == 0) {
      instructions_retired_ += retired;
      return TrapStatus(TrapKind::kFuelExhausted);
    }
    ++retired;
    const Instr ins = code[frame->pc++];
    switch (ins.op) {
      case static_cast<uint16_t>(Op::kUnreachable):
        instructions_retired_ += retired;
        return TrapStatus(TrapKind::kUnreachable);

      case static_cast<uint16_t>(IOp::kJump):
        frame->pc = ins.a;
        break;
      case static_cast<uint16_t>(IOp::kJumpIfZero): {
        const uint32_t cond = POP().i32;
        if (cond == 0) {
          frame->pc = ins.a;
        }
        break;
      }

      case static_cast<uint16_t>(Op::kBr): {
        const uint32_t arity = ins.b;
        const size_t target_sp = frame->operand_base + ins.imm;
        for (uint32_t i = 0; i < arity; ++i) {
          stack_[target_sp + i] = stack_[sp_ - arity + i];
        }
        sp_ = target_sp + arity;
        frame->pc = ins.a;
        break;
      }
      case static_cast<uint16_t>(Op::kBrIf): {
        const uint32_t cond = POP().i32;
        if (cond != 0) {
          const uint32_t arity = ins.b;
          const size_t target_sp = frame->operand_base + ins.imm;
          for (uint32_t i = 0; i < arity; ++i) {
            stack_[target_sp + i] = stack_[sp_ - arity + i];
          }
          sp_ = target_sp + arity;
          frame->pc = ins.a;
        }
        break;
      }
      case static_cast<uint16_t>(Op::kBrTable): {
        const BrTableData& table = frame->fn->br_tables[ins.a];
        uint32_t index = POP().i32;
        if (index >= table.targets.size() - 1) {
          index = static_cast<uint32_t>(table.targets.size() - 1);  // default
        }
        const BrTableTarget& target = table.targets[index];
        const uint32_t arity = table.arity;
        const size_t target_sp = frame->operand_base + target.height;
        for (uint32_t i = 0; i < arity; ++i) {
          stack_[target_sp + i] = stack_[sp_ - arity + i];
        }
        sp_ = target_sp + arity;
        frame->pc = target.pc;
        break;
      }

      case static_cast<uint16_t>(Op::kReturn):
      case static_cast<uint16_t>(IOp::kReturnEnd): {
        const uint32_t arity =
            ins.op == static_cast<uint16_t>(Op::kReturn) ? ins.b : frame->fn->result_arity;
        const size_t result_base = frame->locals_base;
        for (uint32_t i = 0; i < arity; ++i) {
          stack_[result_base + i] = stack_[sp_ - arity + i];
        }
        sp_ = result_base + arity;
        frames_.pop_back();
        if (frames_.size() == entry_depth) {
          instructions_retired_ += retired;
          return OkStatus();
        }
        frame = &frames_.back();
        code = frame->fn->code.data();
        break;
      }

      case static_cast<uint16_t>(Op::kCall): {
        const uint32_t callee = ins.a;
        if (compiled_->is_import(callee)) {
          Status status = CallHostFunction(callee);
          if (!status.ok()) {
            instructions_retired_ += retired;
            return status;
          }
        } else {
          Status status = PushFrame(callee);
          if (!status.ok()) {
            instructions_retired_ += retired;
            return status;
          }
          frame = &frames_.back();
          code = frame->fn->code.data();
        }
        break;
      }
      case static_cast<uint16_t>(Op::kCallIndirect): {
        const uint32_t table_slot = POP().i32;
        if (table_slot >= table_.size()) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kUndefinedElement);
        }
        const uint32_t callee = table_[table_slot];
        if (callee == kNullFunc) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kUninitializedElement);
        }
        const FuncType& expected = compiled_->module.types[ins.a];
        const FuncType& actual = compiled_->module.function_type(callee);
        if (!(expected == actual)) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIndirectCallTypeMismatch);
        }
        if (compiled_->is_import(callee)) {
          Status status = CallHostFunction(callee);
          if (!status.ok()) {
            instructions_retired_ += retired;
            return status;
          }
        } else {
          Status status = PushFrame(callee);
          if (!status.ok()) {
            instructions_retired_ += retired;
            return status;
          }
          frame = &frames_.back();
          code = frame->fn->code.data();
        }
        break;
      }

      case static_cast<uint16_t>(Op::kDrop):
        --sp_;
        break;
      case static_cast<uint16_t>(Op::kSelect): {
        const uint32_t cond = POP().i32;
        const Value b = POP();
        if (cond == 0) {
          TOP() = b;
        }
        break;
      }

      case static_cast<uint16_t>(Op::kLocalGet):
        PUSH(stack_[frame->locals_base + ins.a]);
        break;
      case static_cast<uint16_t>(Op::kLocalSet):
        stack_[frame->locals_base + ins.a] = POP();
        break;
      case static_cast<uint16_t>(Op::kLocalTee):
        stack_[frame->locals_base + ins.a] = TOP();
        break;
      case static_cast<uint16_t>(Op::kGlobalGet):
        PUSH(globals_[ins.a]);
        break;
      case static_cast<uint16_t>(Op::kGlobalSet):
        globals_[ins.a] = POP();
        break;

      // --- Loads ------------------------------------------------------------
      case static_cast<uint16_t>(Op::kI32Load): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 4);
        uint32_t v;
        std::memcpy(&v, mem->base() + addr, 4);
        TOP() = MakeI32(v);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Load): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 8);
        uint64_t v;
        std::memcpy(&v, mem->base() + addr, 8);
        TOP() = MakeI64(v);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Load): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 4);
        float v;
        std::memcpy(&v, mem->base() + addr, 4);
        TOP() = MakeF32(v);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Load): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 8);
        double v;
        std::memcpy(&v, mem->base() + addr, 8);
        TOP() = MakeF64(v);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Load8S): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 1);
        int8_t v;
        std::memcpy(&v, mem->base() + addr, 1);
        TOP() = MakeI32(static_cast<uint32_t>(static_cast<int32_t>(v)));
        break;
      }
      case static_cast<uint16_t>(Op::kI32Load8U): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 1);
        uint8_t v;
        std::memcpy(&v, mem->base() + addr, 1);
        TOP() = MakeI32(v);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Load16S): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 2);
        int16_t v;
        std::memcpy(&v, mem->base() + addr, 2);
        TOP() = MakeI32(static_cast<uint32_t>(static_cast<int32_t>(v)));
        break;
      }
      case static_cast<uint16_t>(Op::kI32Load16U): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 2);
        uint16_t v;
        std::memcpy(&v, mem->base() + addr, 2);
        TOP() = MakeI32(v);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Load8S): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 1);
        int8_t v;
        std::memcpy(&v, mem->base() + addr, 1);
        TOP() = MakeI64(static_cast<uint64_t>(static_cast<int64_t>(v)));
        break;
      }
      case static_cast<uint16_t>(Op::kI64Load8U): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 1);
        uint8_t v;
        std::memcpy(&v, mem->base() + addr, 1);
        TOP() = MakeI64(v);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Load16S): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 2);
        int16_t v;
        std::memcpy(&v, mem->base() + addr, 2);
        TOP() = MakeI64(static_cast<uint64_t>(static_cast<int64_t>(v)));
        break;
      }
      case static_cast<uint16_t>(Op::kI64Load16U): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 2);
        uint16_t v;
        std::memcpy(&v, mem->base() + addr, 2);
        TOP() = MakeI64(v);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Load32S): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 4);
        int32_t v;
        std::memcpy(&v, mem->base() + addr, 4);
        TOP() = MakeI64(static_cast<uint64_t>(static_cast<int64_t>(v)));
        break;
      }
      case static_cast<uint16_t>(Op::kI64Load32U): {
        const uint64_t addr = static_cast<uint64_t>(TOP().i32) + ins.imm;
        MEM_CHECK(addr, 4);
        uint32_t v;
        std::memcpy(&v, mem->base() + addr, 4);
        TOP() = MakeI64(v);
        break;
      }

      // --- Stores -------------------------------------------------------------
      case static_cast<uint16_t>(Op::kI32Store): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 4);
        std::memcpy(mem->base() + addr, &v.i32, 4);
        mem->MarkDirty(addr, 4);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Store): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 8);
        std::memcpy(mem->base() + addr, &v.i64, 8);
        mem->MarkDirty(addr, 8);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Store): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 4);
        std::memcpy(mem->base() + addr, &v.f32, 4);
        mem->MarkDirty(addr, 4);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Store): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 8);
        std::memcpy(mem->base() + addr, &v.f64, 8);
        mem->MarkDirty(addr, 8);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Store8): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 1);
        const uint8_t byte = static_cast<uint8_t>(v.i32);
        std::memcpy(mem->base() + addr, &byte, 1);
        mem->MarkDirty(addr, 1);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Store16): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 2);
        const uint16_t half = static_cast<uint16_t>(v.i32);
        std::memcpy(mem->base() + addr, &half, 2);
        mem->MarkDirty(addr, 2);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Store8): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 1);
        const uint8_t byte = static_cast<uint8_t>(v.i64);
        std::memcpy(mem->base() + addr, &byte, 1);
        mem->MarkDirty(addr, 1);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Store16): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 2);
        const uint16_t half = static_cast<uint16_t>(v.i64);
        std::memcpy(mem->base() + addr, &half, 2);
        mem->MarkDirty(addr, 2);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Store32): {
        const Value v = POP();
        const uint64_t addr = static_cast<uint64_t>(POP().i32) + ins.imm;
        MEM_CHECK(addr, 4);
        const uint32_t word = static_cast<uint32_t>(v.i64);
        std::memcpy(mem->base() + addr, &word, 4);
        mem->MarkDirty(addr, 4);
        break;
      }

      case static_cast<uint16_t>(Op::kMemorySize):
        PUSH(MakeI32(mem != nullptr ? mem->size_pages() : 0));
        break;
      case static_cast<uint16_t>(Op::kMemoryGrow): {
        const uint32_t delta = TOP().i32;
        TOP() = MakeI32(mem != nullptr ? mem->Grow(delta) : UINT32_MAX);
        break;
      }

      // --- Constants ----------------------------------------------------------
      case static_cast<uint16_t>(Op::kI32Const):
        PUSH(MakeI32(static_cast<uint32_t>(ins.imm)));
        break;
      case static_cast<uint16_t>(Op::kI64Const):
        PUSH(MakeI64(ins.imm));
        break;
      case static_cast<uint16_t>(Op::kF32Const): {
        float f;
        const uint32_t bits = static_cast<uint32_t>(ins.imm);
        std::memcpy(&f, &bits, 4);
        PUSH(MakeF32(f));
        break;
      }
      case static_cast<uint16_t>(Op::kF64Const): {
        double d;
        std::memcpy(&d, &ins.imm, 8);
        PUSH(MakeF64(d));
        break;
      }

      // --- i32 comparisons ------------------------------------------------------
      case static_cast<uint16_t>(Op::kI32Eqz):
        TOP() = MakeI32(TOP().i32 == 0);
        break;
      case static_cast<uint16_t>(Op::kI32Eq): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 == b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Ne): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 != b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32LtS): {
        const int32_t b = static_cast<int32_t>(POP().i32);
        TOP() = MakeI32(static_cast<int32_t>(TOP().i32) < b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32LtU): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 < b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32GtS): {
        const int32_t b = static_cast<int32_t>(POP().i32);
        TOP() = MakeI32(static_cast<int32_t>(TOP().i32) > b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32GtU): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 > b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32LeS): {
        const int32_t b = static_cast<int32_t>(POP().i32);
        TOP() = MakeI32(static_cast<int32_t>(TOP().i32) <= b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32LeU): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 <= b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32GeS): {
        const int32_t b = static_cast<int32_t>(POP().i32);
        TOP() = MakeI32(static_cast<int32_t>(TOP().i32) >= b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32GeU): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 >= b);
        break;
      }

      // --- i64 comparisons ------------------------------------------------------
      case static_cast<uint16_t>(Op::kI64Eqz):
        TOP() = MakeI32(TOP().i64 == 0);
        break;
      case static_cast<uint16_t>(Op::kI64Eq): {
        const uint64_t b = POP().i64;
        TOP() = MakeI32(TOP().i64 == b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Ne): {
        const uint64_t b = POP().i64;
        TOP() = MakeI32(TOP().i64 != b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64LtS): {
        const int64_t b = static_cast<int64_t>(POP().i64);
        TOP() = MakeI32(static_cast<int64_t>(TOP().i64) < b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64LtU): {
        const uint64_t b = POP().i64;
        TOP() = MakeI32(TOP().i64 < b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64GtS): {
        const int64_t b = static_cast<int64_t>(POP().i64);
        TOP() = MakeI32(static_cast<int64_t>(TOP().i64) > b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64GtU): {
        const uint64_t b = POP().i64;
        TOP() = MakeI32(TOP().i64 > b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64LeS): {
        const int64_t b = static_cast<int64_t>(POP().i64);
        TOP() = MakeI32(static_cast<int64_t>(TOP().i64) <= b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64LeU): {
        const uint64_t b = POP().i64;
        TOP() = MakeI32(TOP().i64 <= b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64GeS): {
        const int64_t b = static_cast<int64_t>(POP().i64);
        TOP() = MakeI32(static_cast<int64_t>(TOP().i64) >= b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64GeU): {
        const uint64_t b = POP().i64;
        TOP() = MakeI32(TOP().i64 >= b);
        break;
      }

      // --- float comparisons -----------------------------------------------------
      case static_cast<uint16_t>(Op::kF32Eq): {
        const float b = POP().f32;
        TOP() = MakeI32(TOP().f32 == b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Ne): {
        const float b = POP().f32;
        TOP() = MakeI32(TOP().f32 != b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Lt): {
        const float b = POP().f32;
        TOP() = MakeI32(TOP().f32 < b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Gt): {
        const float b = POP().f32;
        TOP() = MakeI32(TOP().f32 > b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Le): {
        const float b = POP().f32;
        TOP() = MakeI32(TOP().f32 <= b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Ge): {
        const float b = POP().f32;
        TOP() = MakeI32(TOP().f32 >= b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Eq): {
        const double b = POP().f64;
        TOP() = MakeI32(TOP().f64 == b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Ne): {
        const double b = POP().f64;
        TOP() = MakeI32(TOP().f64 != b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Lt): {
        const double b = POP().f64;
        TOP() = MakeI32(TOP().f64 < b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Gt): {
        const double b = POP().f64;
        TOP() = MakeI32(TOP().f64 > b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Le): {
        const double b = POP().f64;
        TOP() = MakeI32(TOP().f64 <= b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Ge): {
        const double b = POP().f64;
        TOP() = MakeI32(TOP().f64 >= b);
        break;
      }

      // --- i32 arithmetic --------------------------------------------------------
      case static_cast<uint16_t>(Op::kI32Clz):
        TOP() = MakeI32(TOP().i32 == 0 ? 32 : std::countl_zero(TOP().i32));
        break;
      case static_cast<uint16_t>(Op::kI32Ctz):
        TOP() = MakeI32(TOP().i32 == 0 ? 32 : std::countr_zero(TOP().i32));
        break;
      case static_cast<uint16_t>(Op::kI32Popcnt):
        TOP() = MakeI32(std::popcount(TOP().i32));
        break;
      case static_cast<uint16_t>(Op::kI32Add): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 + b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Sub): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 - b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Mul): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 * b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32DivS): {
        const int32_t b = static_cast<int32_t>(POP().i32);
        const int32_t a = static_cast<int32_t>(TOP().i32);
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        if (a == INT32_MIN && b == -1) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerOverflow);
        }
        TOP() = MakeI32(static_cast<uint32_t>(a / b));
        break;
      }
      case static_cast<uint16_t>(Op::kI32DivU): {
        const uint32_t b = POP().i32;
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        TOP() = MakeI32(TOP().i32 / b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32RemS): {
        const int32_t b = static_cast<int32_t>(POP().i32);
        const int32_t a = static_cast<int32_t>(TOP().i32);
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        TOP() = MakeI32(static_cast<uint32_t>(b == -1 ? 0 : a % b));
        break;
      }
      case static_cast<uint16_t>(Op::kI32RemU): {
        const uint32_t b = POP().i32;
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        TOP() = MakeI32(TOP().i32 % b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32And): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 & b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Or): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 | b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Xor): {
        const uint32_t b = POP().i32;
        TOP() = MakeI32(TOP().i32 ^ b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Shl): {
        const uint32_t b = POP().i32 & 31;
        TOP() = MakeI32(TOP().i32 << b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32ShrS): {
        const uint32_t b = POP().i32 & 31;
        TOP() = MakeI32(static_cast<uint32_t>(static_cast<int32_t>(TOP().i32) >> b));
        break;
      }
      case static_cast<uint16_t>(Op::kI32ShrU): {
        const uint32_t b = POP().i32 & 31;
        TOP() = MakeI32(TOP().i32 >> b);
        break;
      }
      case static_cast<uint16_t>(Op::kI32Rotl): {
        const uint32_t b = POP().i32 & 31;
        TOP() = MakeI32(std::rotl(TOP().i32, static_cast<int>(b)));
        break;
      }
      case static_cast<uint16_t>(Op::kI32Rotr): {
        const uint32_t b = POP().i32 & 31;
        TOP() = MakeI32(std::rotr(TOP().i32, static_cast<int>(b)));
        break;
      }

      // --- i64 arithmetic --------------------------------------------------------
      case static_cast<uint16_t>(Op::kI64Clz):
        TOP() = MakeI64(TOP().i64 == 0 ? 64 : std::countl_zero(TOP().i64));
        break;
      case static_cast<uint16_t>(Op::kI64Ctz):
        TOP() = MakeI64(TOP().i64 == 0 ? 64 : std::countr_zero(TOP().i64));
        break;
      case static_cast<uint16_t>(Op::kI64Popcnt):
        TOP() = MakeI64(std::popcount(TOP().i64));
        break;
      case static_cast<uint16_t>(Op::kI64Add): {
        const uint64_t b = POP().i64;
        TOP() = MakeI64(TOP().i64 + b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Sub): {
        const uint64_t b = POP().i64;
        TOP() = MakeI64(TOP().i64 - b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Mul): {
        const uint64_t b = POP().i64;
        TOP() = MakeI64(TOP().i64 * b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64DivS): {
        const int64_t b = static_cast<int64_t>(POP().i64);
        const int64_t a = static_cast<int64_t>(TOP().i64);
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        if (a == INT64_MIN && b == -1) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerOverflow);
        }
        TOP() = MakeI64(static_cast<uint64_t>(a / b));
        break;
      }
      case static_cast<uint16_t>(Op::kI64DivU): {
        const uint64_t b = POP().i64;
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        TOP() = MakeI64(TOP().i64 / b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64RemS): {
        const int64_t b = static_cast<int64_t>(POP().i64);
        const int64_t a = static_cast<int64_t>(TOP().i64);
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        TOP() = MakeI64(static_cast<uint64_t>(b == -1 ? 0 : a % b));
        break;
      }
      case static_cast<uint16_t>(Op::kI64RemU): {
        const uint64_t b = POP().i64;
        if (b == 0) {
          instructions_retired_ += retired;
          return TrapStatus(TrapKind::kIntegerDivideByZero);
        }
        TOP() = MakeI64(TOP().i64 % b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64And): {
        const uint64_t b = POP().i64;
        TOP() = MakeI64(TOP().i64 & b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Or): {
        const uint64_t b = POP().i64;
        TOP() = MakeI64(TOP().i64 | b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Xor): {
        const uint64_t b = POP().i64;
        TOP() = MakeI64(TOP().i64 ^ b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Shl): {
        const uint64_t b = POP().i64 & 63;
        TOP() = MakeI64(TOP().i64 << b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64ShrS): {
        const uint64_t b = POP().i64 & 63;
        TOP() = MakeI64(static_cast<uint64_t>(static_cast<int64_t>(TOP().i64) >> b));
        break;
      }
      case static_cast<uint16_t>(Op::kI64ShrU): {
        const uint64_t b = POP().i64 & 63;
        TOP() = MakeI64(TOP().i64 >> b);
        break;
      }
      case static_cast<uint16_t>(Op::kI64Rotl): {
        const uint64_t b = POP().i64 & 63;
        TOP() = MakeI64(std::rotl(TOP().i64, static_cast<int>(b)));
        break;
      }
      case static_cast<uint16_t>(Op::kI64Rotr): {
        const uint64_t b = POP().i64 & 63;
        TOP() = MakeI64(std::rotr(TOP().i64, static_cast<int>(b)));
        break;
      }

      // --- f32 arithmetic --------------------------------------------------------
      case static_cast<uint16_t>(Op::kF32Abs):
        TOP() = MakeF32(std::fabs(TOP().f32));
        break;
      case static_cast<uint16_t>(Op::kF32Neg):
        TOP() = MakeF32(-TOP().f32);
        break;
      case static_cast<uint16_t>(Op::kF32Ceil):
        TOP() = MakeF32(std::ceil(TOP().f32));
        break;
      case static_cast<uint16_t>(Op::kF32Floor):
        TOP() = MakeF32(std::floor(TOP().f32));
        break;
      case static_cast<uint16_t>(Op::kF32Trunc):
        TOP() = MakeF32(std::trunc(TOP().f32));
        break;
      case static_cast<uint16_t>(Op::kF32Nearest):
        TOP() = MakeF32(std::nearbyintf(TOP().f32));
        break;
      case static_cast<uint16_t>(Op::kF32Sqrt):
        TOP() = MakeF32(std::sqrt(TOP().f32));
        break;
      case static_cast<uint16_t>(Op::kF32Add): {
        const float b = POP().f32;
        TOP() = MakeF32(TOP().f32 + b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Sub): {
        const float b = POP().f32;
        TOP() = MakeF32(TOP().f32 - b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Mul): {
        const float b = POP().f32;
        TOP() = MakeF32(TOP().f32 * b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Div): {
        const float b = POP().f32;
        TOP() = MakeF32(TOP().f32 / b);
        break;
      }
      case static_cast<uint16_t>(Op::kF32Min): {
        const float b = POP().f32;
        TOP() = MakeF32(WasmFMin(TOP().f32, b));
        break;
      }
      case static_cast<uint16_t>(Op::kF32Max): {
        const float b = POP().f32;
        TOP() = MakeF32(WasmFMax(TOP().f32, b));
        break;
      }
      case static_cast<uint16_t>(Op::kF32Copysign): {
        const float b = POP().f32;
        TOP() = MakeF32(std::copysign(TOP().f32, b));
        break;
      }

      // --- f64 arithmetic --------------------------------------------------------
      case static_cast<uint16_t>(Op::kF64Abs):
        TOP() = MakeF64(std::fabs(TOP().f64));
        break;
      case static_cast<uint16_t>(Op::kF64Neg):
        TOP() = MakeF64(-TOP().f64);
        break;
      case static_cast<uint16_t>(Op::kF64Ceil):
        TOP() = MakeF64(std::ceil(TOP().f64));
        break;
      case static_cast<uint16_t>(Op::kF64Floor):
        TOP() = MakeF64(std::floor(TOP().f64));
        break;
      case static_cast<uint16_t>(Op::kF64Trunc):
        TOP() = MakeF64(std::trunc(TOP().f64));
        break;
      case static_cast<uint16_t>(Op::kF64Nearest):
        TOP() = MakeF64(std::nearbyint(TOP().f64));
        break;
      case static_cast<uint16_t>(Op::kF64Sqrt):
        TOP() = MakeF64(std::sqrt(TOP().f64));
        break;
      case static_cast<uint16_t>(Op::kF64Add): {
        const double b = POP().f64;
        TOP() = MakeF64(TOP().f64 + b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Sub): {
        const double b = POP().f64;
        TOP() = MakeF64(TOP().f64 - b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Mul): {
        const double b = POP().f64;
        TOP() = MakeF64(TOP().f64 * b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Div): {
        const double b = POP().f64;
        TOP() = MakeF64(TOP().f64 / b);
        break;
      }
      case static_cast<uint16_t>(Op::kF64Min): {
        const double b = POP().f64;
        TOP() = MakeF64(WasmFMin(TOP().f64, b));
        break;
      }
      case static_cast<uint16_t>(Op::kF64Max): {
        const double b = POP().f64;
        TOP() = MakeF64(WasmFMax(TOP().f64, b));
        break;
      }
      case static_cast<uint16_t>(Op::kF64Copysign): {
        const double b = POP().f64;
        TOP() = MakeF64(std::copysign(TOP().f64, b));
        break;
      }

      // --- Conversions -------------------------------------------------------------
      case static_cast<uint16_t>(Op::kI32WrapI64):
        TOP() = MakeI32(static_cast<uint32_t>(TOP().i64));
        break;
      case static_cast<uint16_t>(Op::kI32TruncF32S): {
        int32_t out = 0;
        Status s = TruncChecked<float, int32_t>(TOP().f32, -2147483648.0f, 2147483648.0f, true, &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI32(static_cast<uint32_t>(out));
        break;
      }
      case static_cast<uint16_t>(Op::kI32TruncF32U): {
        uint32_t out = 0;
        Status s = TruncChecked<float, uint32_t>(TOP().f32, -1.0f, 4294967296.0f, false, &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI32(out);
        break;
      }
      case static_cast<uint16_t>(Op::kI32TruncF64S): {
        int32_t out = 0;
        Status s = TruncChecked<double, int32_t>(TOP().f64, -2147483649.0, 2147483648.0, false, &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI32(static_cast<uint32_t>(out));
        break;
      }
      case static_cast<uint16_t>(Op::kI32TruncF64U): {
        uint32_t out = 0;
        Status s = TruncChecked<double, uint32_t>(TOP().f64, -1.0, 4294967296.0, false, &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI32(out);
        break;
      }
      case static_cast<uint16_t>(Op::kI64ExtendI32S):
        TOP() = MakeI64(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(TOP().i32))));
        break;
      case static_cast<uint16_t>(Op::kI64ExtendI32U):
        TOP() = MakeI64(TOP().i32);
        break;
      case static_cast<uint16_t>(Op::kI64TruncF32S): {
        int64_t out = 0;
        Status s = TruncChecked<float, int64_t>(TOP().f32, -9223372036854775808.0f,
                                                9223372036854775808.0f, true, &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI64(static_cast<uint64_t>(out));
        break;
      }
      case static_cast<uint16_t>(Op::kI64TruncF32U): {
        uint64_t out = 0;
        Status s = TruncChecked<float, uint64_t>(TOP().f32, -1.0f, 18446744073709551616.0f, false,
                                                 &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI64(out);
        break;
      }
      case static_cast<uint16_t>(Op::kI64TruncF64S): {
        int64_t out = 0;
        Status s = TruncChecked<double, int64_t>(TOP().f64, -9223372036854775808.0,
                                                 9223372036854775808.0, true, &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI64(static_cast<uint64_t>(out));
        break;
      }
      case static_cast<uint16_t>(Op::kI64TruncF64U): {
        uint64_t out = 0;
        Status s = TruncChecked<double, uint64_t>(TOP().f64, -1.0, 18446744073709551616.0, false,
                                                  &out);
        if (!s.ok()) {
          instructions_retired_ += retired;
          return s;
        }
        TOP() = MakeI64(out);
        break;
      }
      case static_cast<uint16_t>(Op::kF32ConvertI32S):
        TOP() = MakeF32(static_cast<float>(static_cast<int32_t>(TOP().i32)));
        break;
      case static_cast<uint16_t>(Op::kF32ConvertI32U):
        TOP() = MakeF32(static_cast<float>(TOP().i32));
        break;
      case static_cast<uint16_t>(Op::kF32ConvertI64S):
        TOP() = MakeF32(static_cast<float>(static_cast<int64_t>(TOP().i64)));
        break;
      case static_cast<uint16_t>(Op::kF32ConvertI64U):
        TOP() = MakeF32(static_cast<float>(TOP().i64));
        break;
      case static_cast<uint16_t>(Op::kF32DemoteF64):
        TOP() = MakeF32(static_cast<float>(TOP().f64));
        break;
      case static_cast<uint16_t>(Op::kF64ConvertI32S):
        TOP() = MakeF64(static_cast<double>(static_cast<int32_t>(TOP().i32)));
        break;
      case static_cast<uint16_t>(Op::kF64ConvertI32U):
        TOP() = MakeF64(static_cast<double>(TOP().i32));
        break;
      case static_cast<uint16_t>(Op::kF64ConvertI64S):
        TOP() = MakeF64(static_cast<double>(static_cast<int64_t>(TOP().i64)));
        break;
      case static_cast<uint16_t>(Op::kF64ConvertI64U):
        TOP() = MakeF64(static_cast<double>(TOP().i64));
        break;
      case static_cast<uint16_t>(Op::kF64PromoteF32):
        TOP() = MakeF64(static_cast<double>(TOP().f32));
        break;
      case static_cast<uint16_t>(Op::kI32ReinterpretF32): {
        uint32_t bits;
        std::memcpy(&bits, &TOP().f32, 4);
        TOP() = MakeI32(bits);
        break;
      }
      case static_cast<uint16_t>(Op::kI64ReinterpretF64): {
        uint64_t bits;
        std::memcpy(&bits, &TOP().f64, 8);
        TOP() = MakeI64(bits);
        break;
      }
      case static_cast<uint16_t>(Op::kF32ReinterpretI32): {
        float f;
        std::memcpy(&f, &TOP().i32, 4);
        TOP() = MakeF32(f);
        break;
      }
      case static_cast<uint16_t>(Op::kF64ReinterpretI64): {
        double d;
        std::memcpy(&d, &TOP().i64, 8);
        TOP() = MakeF64(d);
        break;
      }

      case static_cast<uint16_t>(Op::kI32Extend8S):
        TOP() = MakeI32(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(TOP().i32))));
        break;
      case static_cast<uint16_t>(Op::kI32Extend16S):
        TOP() =
            MakeI32(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(TOP().i32))));
        break;
      case static_cast<uint16_t>(Op::kI64Extend8S):
        TOP() = MakeI64(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(TOP().i64))));
        break;
      case static_cast<uint16_t>(Op::kI64Extend16S):
        TOP() =
            MakeI64(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int16_t>(TOP().i64))));
        break;
      case static_cast<uint16_t>(Op::kI64Extend32S):
        TOP() =
            MakeI64(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(TOP().i64))));
        break;

      default:
        instructions_retired_ += retired;
        return Internal("interpreter: unknown preprocessed opcode " + std::to_string(ins.op));
    }
  }

#undef TOP
#undef TOP2
#undef POP
#undef PUSH
#undef MEM_CHECK
}

}  // namespace faasm::wasm
