#include "runtime/failure_detector.h"

#include <utility>

#include "kvs/router.h"

namespace faasm {

namespace {
constexpr char kHeartbeatTag[] = "hb ";
constexpr size_t kHeartbeatTagLen = 3;
}  // namespace

Bytes EncodeHeartbeat(const std::string& host) {
  const std::string payload = kHeartbeatTag + host;
  return Bytes(payload.begin(), payload.end());
}

std::string DecodeHeartbeat(const Bytes& message) {
  if (message.size() <= kHeartbeatTagLen ||
      std::string(message.begin(), message.begin() + kHeartbeatTagLen) != kHeartbeatTag) {
    return "";
  }
  return std::string(message.begin() + kHeartbeatTagLen, message.end());
}

FailureDetector::FailureDetector(InProcNetwork* network, Clock* clock,
                                 FailureDetectorConfig config, DeathHandler on_death)
    : network_(network), clock_(clock), config_(std::move(config)), on_death_(std::move(on_death)) {
  if (config_.sweep_interval_ns <= 0) {
    // Half the heartbeat period: a crash is then CONFIRMED at most
    // suspicion_timeout + sweep + probe-RTT after the last heartbeat, which
    // keeps total detection latency under timeout + one heartbeat interval.
    config_.sweep_interval_ns = config_.heartbeat_interval_ns / 2;
  }
  if (config_.sweep_interval_ns <= 0) {
    config_.sweep_interval_ns = kMillisecond;
  }
  // Register the mailbox endpoint so instance heartbeats (Send) have a live
  // destination; the synchronous handler answers nothing.
  network_->RegisterEndpoint(config_.endpoint, [](const Bytes&) { return Bytes{}; });
}

FailureDetector::~FailureDetector() { network_->UnregisterEndpoint(config_.endpoint); }

void FailureDetector::Track(const std::string& host) {
  std::lock_guard<std::mutex> guard(mutex_);
  HostState& state = hosts_[host];
  state.last_seen = clock_->Now();
  state.health = HostHealth::kAlive;
  state.hinted = false;
}

void FailureDetector::Forget(const std::string& host) {
  std::lock_guard<std::mutex> guard(mutex_);
  hosts_.erase(host);
}

void FailureDetector::ReportSuspicion(const std::string& endpoint) {
  // Accept any of the host's endpoint spellings: "kvs:<host>" (a client's
  // routed op), "rep:<host>" (a forward), or the bare host name.
  std::string host = ShardMap::HostForEndpoint(endpoint);
  if (host.empty()) {
    const size_t colon = endpoint.find(':');
    host = colon == std::string::npos ? endpoint : endpoint.substr(colon + 1);
  }
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = hosts_.find(host);
  if (it == hosts_.end() || it->second.health == HostHealth::kDead) {
    return;
  }
  if (!it->second.hinted) {
    it->second.hinted = true;
    hints_.fetch_add(1);
  }
}

void FailureDetector::DrainMailbox() {
  while (auto message = network_->Poll(config_.endpoint)) {
    const std::string host = DecodeHeartbeat(*message);
    if (host.empty()) {
      continue;
    }
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = hosts_.find(host);
    if (it == hosts_.end() || it->second.health == HostHealth::kDead) {
      continue;  // untracked, or a zombie's last words — dead is terminal
    }
    it->second.last_seen = clock_->Now();
    if (it->second.health == HostHealth::kSuspect) {
      it->second.health = HostHealth::kAlive;
      false_suspicions_.fetch_add(1);
    }
    it->second.hinted = false;
    heartbeats_seen_.fetch_add(1);
  }
}

bool FailureDetector::ProbeAlive(const std::string& host) {
  static const Bytes kProbe = {'p', 'i', 'n', 'g'};
  return network_->Call(config_.endpoint, host, kProbe).ok();
}

void FailureDetector::ConfirmDeath(const std::string& host, bool hinted) {
  // The confirmation timestamp is taken BEFORE recovery runs: deaths() prices
  // pure detection latency, not detection + failover.
  const TimeNs confirmed_at = clock_->Now();
  // Recovery runs BEFORE the death becomes observable, so a driver that
  // waited out death_count() == N sees the failover complete too.
  if (on_death_ != nullptr) {
    on_death_(host);
  }
  DeathRecord record;
  record.host = host;
  record.confirmed_at_ns = confirmed_at;
  record.hinted = hinted;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    deaths_.push_back(std::move(record));
  }
  death_count_.fetch_add(1);
}

void FailureDetector::Sweep() {
  DrainMailbox();

  // Decide who needs a probe under the mutex, but probe OUTSIDE it: a probe
  // sleeps virtual time, and client threads calling ReportSuspicion must
  // never block behind that sleep (a registered thread parked in a mutex
  // would stall the virtual clock).
  struct Candidate {
    std::string host;
    bool hinted;
  };
  std::vector<Candidate> probes;
  {
    const TimeNs now = clock_->Now();
    std::lock_guard<std::mutex> guard(mutex_);
    for (auto& [host, state] : hosts_) {
      if (state.health == HostHealth::kDead) {
        continue;
      }
      const bool silent = now - state.last_seen > config_.suspicion_timeout_ns;
      if (silent && state.health == HostHealth::kAlive) {
        state.health = HostHealth::kSuspect;
        suspicions_.fetch_add(1);
      }
      if (state.health == HostHealth::kSuspect || state.hinted) {
        probes.push_back({host, state.hinted});
      }
    }
  }

  for (const Candidate& candidate : probes) {
    const bool alive = ProbeAlive(candidate.host);
    bool confirm = false;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      auto it = hosts_.find(candidate.host);
      if (it == hosts_.end() || it->second.health == HostHealth::kDead) {
        continue;  // Forget() raced the probe, or already confirmed
      }
      if (alive) {
        // False positive (a slow host) or a transient hint: the host
        // answers, so it is NOT failed over — suspicion clears and the
        // silence window restarts from now.
        if (it->second.health == HostHealth::kSuspect) {
          false_suspicions_.fetch_add(1);
        }
        it->second.health = HostHealth::kAlive;
        it->second.last_seen = clock_->Now();
        it->second.hinted = false;
      } else {
        // The endpoint is gone: only a crash unregisters it while the host
        // is tracked. Confirm — through suspect, so the state machine never
        // skips a state even on the hint fast path.
        it->second.health = HostHealth::kDead;
        it->second.hinted = false;
        confirm = true;
      }
    }
    if (confirm) {
      ConfirmDeath(candidate.host, candidate.hinted);
    }
  }
}

void FailureDetector::Run() {
  while (!stop_.load()) {
    Sweep();
    clock_->SleepFor(config_.sweep_interval_ns);
  }
}

HostHealth FailureDetector::HealthOf(const std::string& host) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = hosts_.find(host);
  return it == hosts_.end() ? HostHealth::kAlive : it->second.health;
}

std::vector<DeathRecord> FailureDetector::deaths() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return deaths_;
}

}  // namespace faasm
