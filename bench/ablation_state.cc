// Ablations on the two-tier state design (DESIGN.md §3):
//   1. AsyncArray push interval (the VectorAsync consistency/traffic knob of
//      Listing 1) × delta-vs-full push: network bytes vs interval for SGD,
//      with the weight sync shipping either dirty-run deltas (one batched
//      multi-range write per push) or the whole value.
//   2. Chunked vs full pulls (state chunks, Fig. 4): bytes moved when workers
//      touch column slices of a large matrix.
//   3. Centralised vs sharded global tier (§4.3): the same SGD workload
//      against one central KVS endpoint vs per-host shards with per-key
//      mastership, quantifying the cross-host traffic the sharded layout
//      (plus master-affinity scheduling) removes.
//   4. Batched vs unbatched state protocol (kvs_client.h kBatch): K
//      counters pushed per step through one StateBatch barrier vs one RPC
//      per key, at zero lost updates either way.
//
// Flags:
//   --tiny           seconds-scale smoke configuration (CI)
//   --tier=central|sharded
//                    force the global-tier layout for ablations 1 and 2
//                    and restrict ablation 3 to that column (default:
//                    central for 1/2 so the delta-vs-full and chunk deltas
//                    stay visible, both columns for 3)
//   --batch=on|off   force the state-op protocol for ablations 1-3 and
//                    restrict ablation 4 to that column (default: batched
//                    for 1-3, both columns for 4)
//   --json <path>    write the measured delta-push, tier and batch columns
//                    as JSON (the CI perf artifact BENCH_state.json)
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/state_batch_util.h"
#include "runtime/cluster.h"
#include "state/ddo.h"
#include "workloads/sgd.h"

namespace faasm {
namespace {

struct SgdPoint {
  double network_mb = 0;
  double seconds = 0;
  double loss = -1;
};

struct DeltaRow {
  uint32_t interval = 0;
  SgdPoint delta;
  SgdPoint full;
};

// Collected results for --json.
struct BenchResults {
  bool tiny = false;
  std::vector<DeltaRow> delta_rows;
  std::optional<SgdPoint> tier_central;
  std::optional<SgdPoint> tier_sharded;
  std::optional<BatchMicroPoint> batch_on;
  std::optional<BatchMicroPoint> batch_off;
};

// Protocol under ablation for the SGD runs (--batch flag); batched is the
// production default.
bool g_batch_state_ops = true;

SgdPoint RunSgdOnce(bool tiny, uint32_t interval, bool delta_push, StateTier tier) {
  ClusterConfig cluster_config;
  cluster_config.hosts = 4;
  cluster_config.state_tier = tier;
  cluster_config.batch_state_ops = g_batch_state_ops;
  FaasmCluster cluster(cluster_config);
  SgdConfig config;
  // Weights span many state pages (features * 8 B) while each inter-push
  // window dirties only a few, so the delta-vs-full gap is visible.
  config.n_examples = tiny ? 512 : 4096;
  config.n_features = tiny ? 8192 : 16384;
  config.nnz_per_example = 8;
  config.n_workers = tiny ? 4 : 8;
  config.n_epochs = 2;
  config.push_interval = interval;
  config.delta_push = delta_push;
  SeedSgdDataset(cluster.kvs(), config);
  (void)RegisterSgdFunctions(cluster.registry());
  SgdPoint point;
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    auto result = RunSgdTraining(frontend, config);
    point.loss = result.ok() ? result.value() : -1;
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
  });
  point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  return point;
}

void PushIntervalAblation(bool tiny, StateTier tier, BenchResults& results) {
  PrintHeader("Ablation 1: push interval x delta-vs-full push (SGD weight vector)");
  std::printf("[tier=%s]\n", tier == StateTier::kSharded ? "sharded" : "central");
  std::printf("%14s | %12s %12s %12s | %12s %12s %12s | %8s\n", "push interval",
              "delta (MB)", "time (ms)", "loss", "full (MB)", "time (ms)", "loss",
              "MB saved");
  const std::vector<uint32_t> intervals =
      tiny ? std::vector<uint32_t>{1u, 16u} : std::vector<uint32_t>{1u, 4u, 16u, 64u, 256u};
  for (uint32_t interval : intervals) {
    DeltaRow row;
    row.interval = interval;
    row.delta = RunSgdOnce(tiny, interval, /*delta_push=*/true, tier);
    row.full = RunSgdOnce(tiny, interval, /*delta_push=*/false, tier);
    results.delta_rows.push_back(row);
    std::printf("%14u | %12.1f %12.0f %12.4f | %12.1f %12.0f %12.4f | %7.0f%%\n", interval,
                row.delta.network_mb, row.delta.seconds * 1e3, row.delta.loss,
                row.full.network_mb, row.full.seconds * 1e3, row.full.loss,
                row.full.network_mb > 0
                    ? 100.0 * (row.full.network_mb - row.delta.network_mb) / row.full.network_mb
                    : 0.0);
  }
  std::printf("(delta pushes ship only dirtied weight pages as one batched multi-range\n"
              " write; larger intervals trade weight freshness for traffic either way)\n");
}

void ChunkAblation(bool tiny, StateTier tier) {
  PrintHeader("Ablation 2: chunked vs full state pulls (Fig. 4 state chunks)");
  std::printf("[tier=%s]\n", tier == StateTier::kSharded ? "sharded" : "central");
  // One big matrix; 16 workers each touch a 1/16 column slice.
  const size_t rows = tiny ? 64 : 256;
  const size_t cols = tiny ? 1024 : 4096;
  const size_t matrix_bytes = rows * cols * sizeof(double);

  for (bool chunked : {true, false}) {
    ClusterConfig cluster_config;
    cluster_config.hosts = 4;
    cluster_config.state_tier = tier;
    FaasmCluster cluster(cluster_config);
    std::vector<double> matrix(rows * cols, 1.0);
    const auto* p = reinterpret_cast<const uint8_t*>(matrix.data());
    cluster.kvs().Set("big", Bytes(p, p + matrix_bytes));

    (void)cluster.registry().RegisterNative(
        "touch", [rows, cols, chunked](InvocationContext& ctx) {
          ByteReader reader(ctx.Input());
          auto slice = reader.Get<uint32_t>();
          ReadOnlyMatrix<double> m(&ctx.state(), "big", rows, cols);
          if (!m.Init().ok()) {
            return 1;
          }
          const size_t per_slice = cols / 16;
          Status pull = chunked
                            ? m.PullColumns(slice.value() * per_slice,
                                            (slice.value() + 1) * per_slice)
                            : m.PullColumns(0, cols);  // full-value pull
          if (!pull.ok()) {
            return 2;
          }
          double sum = 0;
          for (size_t c = slice.value() * per_slice; c < (slice.value() + 1) * per_slice; ++c) {
            sum += m.At(0, c);
          }
          return sum > 0 ? 0 : 3;
        });

    cluster.Run([&](Frontend& frontend) {
      std::vector<uint64_t> ids;
      for (uint32_t slice = 0; slice < 16; ++slice) {
        Bytes input;
        ByteWriter writer(input);
        writer.Put<uint32_t>(slice);
        auto id = frontend.Submit("touch", std::move(input));
        if (id.ok()) {
          ids.push_back(id.value());
        }
      }
      for (uint64_t id : ids) {
        (void)frontend.Await(id);
      }
    });
    std::printf("%-18s network %8.1f MB  (matrix is %.1f MB; 4 hosts)\n",
                chunked ? "chunked pulls:" : "full pulls:",
                static_cast<double>(cluster.network_bytes()) / 1e6, matrix_bytes / 1e6);
  }
  std::printf("(chunked pulls replicate only the columns a worker touches)\n");
}

void TierAblation(bool tiny, std::optional<StateTier> only, BenchResults& results) {
  PrintHeader("Ablation 3: centralised vs sharded global tier (SGD, same workload)");
  std::printf("%10s | %12s %12s %12s\n", "tier", "net (MB)", "time (ms)", "loss");
  // Production path: delta pushes at the default interval.
  constexpr uint32_t kInterval = 16;
  if (!only.has_value() || *only == StateTier::kCentral) {
    const SgdPoint central = RunSgdOnce(tiny, kInterval, /*delta_push=*/true, StateTier::kCentral);
    results.tier_central = central;
    std::printf("%10s | %12.1f %12.0f %12.4f\n", "central", central.network_mb,
                central.seconds * 1e3, central.loss);
  }
  if (!only.has_value() || *only == StateTier::kSharded) {
    const SgdPoint sharded = RunSgdOnce(tiny, kInterval, /*delta_push=*/true, StateTier::kSharded);
    results.tier_sharded = sharded;
    std::printf("%10s | %12.1f %12.0f %12.4f\n", "sharded", sharded.network_mb,
                sharded.seconds * 1e3, sharded.loss);
  }
  if (results.tier_central && results.tier_sharded && results.tier_central->network_mb > 0) {
    // Loss is "no worse", not "equal": affinity placement also changes which
    // hosts the workers land on (often converging better, as all workers
    // share one in-memory replica).
    std::printf("(sharding + master-affinity placement removes %.0f%% of the cross-host\n"
                " tier traffic at %s final loss: master-local push/pull are in-process)\n",
                100.0 *
                    (results.tier_central->network_mb - results.tier_sharded->network_mb) /
                    results.tier_central->network_mb,
                results.tier_sharded->loss <= results.tier_central->loss * 1.05
                    ? "no-worse"
                    : "DEGRADED");
  }
}

void BatchAblation(bool tiny, std::optional<bool> only, BenchResults& results) {
  PrintHeader("Ablation 4: batched vs unbatched state protocol (multi-key pushes)");
  std::printf("%10s | %10s %12s %12s %8s\n", "protocol", "tier RPCs", "net (MB)",
              "time (ms)", "lost");
  auto row = [&](bool batched) {
    const BatchMicroPoint point = RunStateBatchMicro(BatchMicroConfig::ForScale(tiny, batched));
    PrintBatchMicroRow(batched ? "batched" : "unbatched", point);
    return point;
  };
  if (!only.has_value() || *only) {
    results.batch_on = row(true);
  }
  if (!only.has_value() || !*only) {
    results.batch_off = row(false);
  }
  if (results.batch_on && results.batch_off && results.batch_off->tier_rpcs > 0) {
    std::printf("(grouping each step's cross-shard pushes into per-endpoint kBatch RPCs\n"
                " removes %.0f%% of the tier round trips at %s loss)\n",
                100.0 *
                    static_cast<double>(results.batch_off->tier_rpcs -
                                        results.batch_on->tier_rpcs) /
                    static_cast<double>(results.batch_off->tier_rpcs),
                results.batch_on->lost_updates == 0 ? "zero" : "NONZERO");
  }
}

void WritePoint(std::FILE* f, const char* name, const SgdPoint& p, const char* suffix) {
  std::fprintf(f, "    \"%s\": {\"network_mb\": %.3f, \"seconds\": %.4f, \"loss\": %.5f}%s\n",
               name, p.network_mb, p.seconds, p.loss, suffix);
}

// Writes the perf-trajectory artifact (CI uploads it as BENCH_state.json).
bool WriteJson(const std::string& path, const BenchResults& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"ablation_state\",\n  \"tiny\": %s,\n",
               results.tiny ? "true" : "false");
  std::fprintf(f, "  \"delta_push\": [\n");
  for (size_t i = 0; i < results.delta_rows.size(); ++i) {
    const DeltaRow& row = results.delta_rows[i];
    std::fprintf(f, "    {\"push_interval\": %u,\n", row.interval);
    WritePoint(f, "delta", row.delta, ",");
    WritePoint(f, "full", row.full, "");
    std::fprintf(f, "    }%s\n", i + 1 < results.delta_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"tier\": {\n");
  const bool both = results.tier_central.has_value() && results.tier_sharded.has_value();
  if (results.tier_central) {
    WritePoint(f, "central", *results.tier_central, both ? "," : "");
  }
  if (results.tier_sharded) {
    WritePoint(f, "sharded", *results.tier_sharded, "");
  }
  std::fprintf(f, "  },\n  \"batch\": {\n");
  const bool both_batch = results.batch_on.has_value() && results.batch_off.has_value();
  if (results.batch_on) {
    WriteBatchMicroPointJson(f, "batched", *results.batch_on, both_batch ? "," : "");
  }
  if (results.batch_off) {
    WriteBatchMicroPointJson(f, "unbatched", *results.batch_off, "");
  }
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return true;
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  bool tiny = false;
  std::optional<faasm::StateTier> tier_flag;
  std::optional<bool> batch_flag;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--tier=central") {
      tier_flag = faasm::StateTier::kCentral;
    } else if (arg == "--tier=sharded") {
      tier_flag = faasm::StateTier::kSharded;
    } else if (arg == "--batch=on") {
      batch_flag = true;
    } else if (arg == "--batch=off") {
      batch_flag = false;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: %s [--tiny] [--tier=central|sharded] [--batch=on|off] "
                   "[--json <path>]\n",
                   argv[0]);
      return 2;
    }
  }

  faasm::BenchResults results;
  results.tiny = tiny;
  // Ablations 1-3 run the production (batched) protocol unless --batch=off
  // pins the unbatched baseline.
  faasm::g_batch_state_ops = batch_flag.value_or(true);
  // Ablations 1/2 default to the central tier so their deltas stay visible
  // (under sharding, master-local syncs are free and both columns collapse).
  const faasm::StateTier base_tier = tier_flag.value_or(faasm::StateTier::kCentral);
  faasm::PushIntervalAblation(tiny, base_tier, results);
  faasm::ChunkAblation(tiny, base_tier);
  faasm::TierAblation(tiny, tier_flag, results);
  faasm::BatchAblation(tiny, batch_flag, results);
  if (!json_path.empty() && !faasm::WriteJson(json_path, results)) {
    return 1;
  }
  return 0;
}
