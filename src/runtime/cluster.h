// FaasmCluster: the whole deployment — N FaasmInstance hosts, the sharded
// global tier (one byte-accounted KvsServer shard per host, per-key
// mastership via a consistent-hash ShardMap — see kvs/router.h), a global
// file store, the function registry and the shared virtual-time executor.
// Benchmarks drive it through Frontend, a simulated external client.
#ifndef FAASM_RUNTIME_CLUSTER_H_
#define FAASM_RUNTIME_CLUSTER_H_

#include <map>
#include <memory>
#include <vector>

#include "core/vfs.h"
#include "kvs/kvs_client.h"
#include "kvs/router.h"
#include "net/network.h"
#include "runtime/call_table.h"
#include "runtime/instance.h"
#include "runtime/registry.h"
#include "sim/sim_clock.h"

namespace faasm {

// Layout of the global state tier.
enum class StateTier {
  // One KVS endpoint ("kvs") serves the whole cluster — the pre-sharding
  // serialisation point, kept as the ablation baseline (--tier=central).
  kCentral,
  // One shard per host ("kvs:<host>"); each key is mastered by one shard
  // and ops on locally-mastered keys bypass the network entirely.
  kSharded,
};

struct ClusterConfig {
  int hosts = 4;
  int cores_per_host = 4;
  size_t host_memory_bytes = size_t{16} * 1024 * 1024 * 1024;
  int max_concurrent_per_host = 64;
  StateTier state_tier = StateTier::kSharded;
  // Scheduler warm-set cache TTL (see HostConfig::warm_set_ttl_ns).
  TimeNs warm_set_ttl_ns = 2 * kMillisecond;
  NetworkConfig network;
};

// Simulated external client (e.g. the platform's HTTP frontend): submits
// calls round-robin across hosts, as Knative's default endpoints do (§6.1).
class Frontend {
 public:
  Frontend(std::vector<std::unique_ptr<FaasmInstance>>* hosts, CallTable* calls)
      : hosts_(hosts), calls_(calls) {}

  Result<uint64_t> Submit(const std::string& function, Bytes input) {
    const size_t host_index = next_++ % hosts_->size();
    FAASM_ASSIGN_OR_RETURN(uint64_t id, (*hosts_)[host_index]->Submit(function, std::move(input)));
    // Bound the map for fire-and-forget drivers that never Await: finished
    // calls fall back to the call_id spread below, so dropping them is safe.
    if (submitted_on_.size() >= kMaxTrackedSubmissions) {
      for (auto it = submitted_on_.begin(); it != submitted_on_.end();) {
        it = calls_->IsFinished(it->first) ? submitted_on_.erase(it) : std::next(it);
      }
    }
    submitted_on_[id] = host_index;
    return id;
  }

  // Awaits on the host the call was submitted to, so no single host becomes
  // a hidden serialisation point for every client await.
  Result<int> Await(uint64_t call_id) {
    size_t host_index = call_id % hosts_->size();  // spread unknown ids too
    auto it = submitted_on_.find(call_id);
    if (it != submitted_on_.end()) {
      host_index = it->second;
    }
    auto code = (*hosts_)[host_index]->Await(call_id);
    if (it != submitted_on_.end()) {
      submitted_on_.erase(it);
    }
    return code;
  }

  Result<int> Invoke(const std::string& function, Bytes input) {
    FAASM_ASSIGN_OR_RETURN(uint64_t id, Submit(function, std::move(input)));
    return Await(id);
  }

  Result<Bytes> Output(uint64_t call_id) { return calls_->Output(call_id); }

 private:
  static constexpr size_t kMaxTrackedSubmissions = 1 << 16;

  std::vector<std::unique_ptr<FaasmInstance>>* hosts_;
  CallTable* calls_;
  size_t next_ = 0;
  // call id -> round-robin host it was submitted to (one driver activity per
  // Frontend, so no locking).
  std::map<uint64_t, size_t> submitted_on_;
};

class FaasmCluster {
 public:
  explicit FaasmCluster(ClusterConfig config = {});
  ~FaasmCluster();

  FaasmCluster(const FaasmCluster&) = delete;
  FaasmCluster& operator=(const FaasmCluster&) = delete;

  // --- Components ---------------------------------------------------------------
  FunctionRegistry& registry() { return registry_; }
  GlobalFileStore& files() { return files_; }
  // Direct, unaccounted view over every global-tier shard, routed by the
  // same ShardMap the hosts use (dataset seeding and test inspection).
  ShardedKvs& kvs() { return kvs_; }
  const ShardMap& shard_map() const { return shard_map_; }
  InProcNetwork& network() { return *network_; }
  SimClock& clock() { return executor_.clock(); }
  SimExecutor& executor() { return executor_; }
  CallTable& calls() { return calls_; }
  FaasmInstance& host(size_t index) { return *hosts_[index]; }
  size_t host_count() const { return hosts_.size(); }

  // Runs `driver` as a simulated client activity and blocks (in real time)
  // until it completes. Virtual time advances as needed.
  void Run(const std::function<void(Frontend&)>& driver);

  // --- Cluster-wide metrics --------------------------------------------------------
  uint64_t network_bytes() const { return network_->total_bytes(); }
  double billable_gb_seconds() const;
  size_t cold_start_count() const;
  size_t warm_faaslet_count() const;

  void Shutdown();

 private:
  ClusterConfig config_;
  SimExecutor executor_;
  std::unique_ptr<InProcNetwork> network_;
  // Global tier: per-host shards (kSharded) or one store (kCentral). The
  // shards outlive hosts_ (each host serves its shard on "kvs:<host>").
  ShardMap shard_map_;
  std::vector<std::unique_ptr<KvStore>> kvs_shards_;
  std::unique_ptr<KvsServer> central_kvs_server_;  // kCentral only
  ShardedKvs kvs_;
  GlobalFileStore files_;
  FunctionRegistry registry_;
  CallTable calls_;
  std::vector<std::unique_ptr<FaasmInstance>> hosts_;
  bool shut_down_ = false;
};

}  // namespace faasm

#endif  // FAASM_RUNTIME_CLUSTER_H_
