// Cluster-level delta-push test: the same SGD training run must converge to
// the same loss regime while moving measurably fewer network bytes when the
// weight vector syncs via dirty-run delta pushes instead of full-value
// pushes.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "workloads/sgd.h"

namespace faasm {
namespace {

struct SgdOutcome {
  uint64_t network_bytes = 0;
  double loss = -1;
  bool ok = false;
};

SgdOutcome RunSgd(bool delta_push) {
  ClusterConfig cluster_config;
  cluster_config.hosts = 2;
  // Pin the centralised tier: this test isolates the delta-vs-full push
  // traffic difference, which the sharded tier would hide (master-local
  // pushes cost zero bytes either way — locked in by sharded_tier_test).
  cluster_config.state_tier = StateTier::kCentral;
  FaasmCluster cluster(cluster_config);

  SgdConfig config;
  // Weights span many state pages while each inter-push window touches only
  // a few of them — the regime where delta push pays off.
  config.n_examples = 512;
  config.n_features = 16384;  // 128 KiB of weights = 32 state pages
  config.nnz_per_example = 4;
  config.n_workers = 4;
  config.n_epochs = 2;
  config.push_interval = 4;
  config.delta_push = delta_push;

  SeedSgdDataset(cluster.kvs(), config);
  EXPECT_TRUE(RegisterSgdFunctions(cluster.registry()).ok());

  SgdOutcome outcome;
  cluster.Run([&](Frontend& frontend) {
    auto result = RunSgdTraining(frontend, config);
    outcome.ok = result.ok();
    outcome.loss = result.ok() ? result.value() : -1;
  });
  outcome.network_bytes = cluster.network_bytes();
  return outcome;
}

TEST(DeltaPushClusterTest, SgdMovesFewerBytesAtEqualLoss) {
  const SgdOutcome delta = RunSgd(/*delta_push=*/true);
  const SgdOutcome full = RunSgd(/*delta_push=*/false);
  ASSERT_TRUE(delta.ok);
  ASSERT_TRUE(full.ok);

  // Equal final loss: both modes land in the same regime, well below the
  // initial MSE of this dataset (~4.0 with 4 unit-variance terms per
  // example), and within noise of each other.
  EXPECT_LT(delta.loss, 2.5);
  EXPECT_LT(full.loss, 2.5);
  EXPECT_NEAR(delta.loss, full.loss, 0.25 * full.loss);

  // The delta run ships only dirtied weight pages and must move measurably
  // less data overall (the shared pull/chain traffic is identical).
  EXPECT_LT(delta.network_bytes, full.network_bytes * 3 / 4)
      << "delta=" << delta.network_bytes << " full=" << full.network_bytes;
}

}  // namespace
}  // namespace faasm
