#include "state/state_key_value.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace faasm {

StateKeyValue::StateKeyValue(std::string key, KvsClient* kvs, Clock* clock)
    : key_(std::move(key)), kvs_(kvs), clock_(clock), local_lock_(clock) {}

Status StateKeyValue::EnsureCapacity(size_t size) {
  if (region_ != nullptr) {
    if (size > region_->mapped_size()) {
      return ResourceExhausted("state value '" + key_ + "' exceeds replica capacity");
    }
    size_ = std::max(size_, size);
    return OkStatus();
  }
  FAASM_ASSIGN_OR_RETURN(auto region, SharedRegion::Create("state:" + key_, size));
  region_ = std::move(region);
  size_ = size;
  {
    std::lock_guard<std::mutex> guard(pages_mutex_);
    page_present_.assign((size + kStatePageBytes - 1) / kStatePageBytes, false);
  }
  return OkStatus();
}

uint8_t* StateKeyValue::data() { return region_ == nullptr ? nullptr : region_->host_view(); }

Status StateKeyValue::FetchRange(size_t offset, size_t len) {
  FAASM_ASSIGN_OR_RETURN(Bytes chunk, kvs_->GetRange(key_, offset, len));
  if (offset + chunk.size() > region_->mapped_size()) {
    return Internal("state fetch larger than replica");
  }
  LockWrite();
  std::memcpy(region_->host_view() + offset, chunk.data(), chunk.size());
  UnlockWrite();
  return OkStatus();
}

Status StateKeyValue::Pull() {
  FAASM_ASSIGN_OR_RETURN(uint64_t global_size, kvs_->Size(key_));
  FAASM_RETURN_IF_ERROR(EnsureCapacity(global_size));
  return PullChunk(0, global_size);
}

Status StateKeyValue::PullChunk(size_t offset, size_t len) {
  if (region_ == nullptr) {
    // Chunked access without prior sizing: allocate at the global size.
    FAASM_ASSIGN_OR_RETURN(uint64_t global_size, kvs_->Size(key_));
    FAASM_RETURN_IF_ERROR(EnsureCapacity(global_size));
  }
  if (len == 0) {
    return OkStatus();
  }
  if (offset + len > size_) {
    return OutOfRange("pull chunk past end of state value '" + key_ + "'");
  }
  const size_t first_page = offset / kStatePageBytes;
  const size_t last_page = (offset + len - 1) / kStatePageBytes;

  // Coalesce runs of missing pages into single ranged fetches.
  size_t run_start = SIZE_MAX;
  for (size_t page = first_page; page <= last_page + 1; ++page) {
    bool missing = false;
    if (page <= last_page) {
      std::lock_guard<std::mutex> guard(pages_mutex_);
      missing = !page_present_[page];
    }
    if (missing && run_start == SIZE_MAX) {
      run_start = page;
    } else if (!missing && run_start != SIZE_MAX) {
      const size_t byte_start = run_start * kStatePageBytes;
      const size_t byte_end = std::min(size_, page * kStatePageBytes);
      FAASM_RETURN_IF_ERROR(FetchRange(byte_start, byte_end - byte_start));
      {
        std::lock_guard<std::mutex> guard(pages_mutex_);
        for (size_t p = run_start; p < page; ++p) {
          page_present_[p] = true;
        }
      }
      run_start = SIZE_MAX;
    }
  }
  return OkStatus();
}

Status StateKeyValue::Push() { return PushChunk(0, size_); }

Status StateKeyValue::PushChunk(size_t offset, size_t len) {
  if (region_ == nullptr) {
    return FailedPrecondition("push before any local write to '" + key_ + "'");
  }
  if (offset + len > size_) {
    return OutOfRange("push chunk past end of state value '" + key_ + "'");
  }
  Bytes staging(len);
  LockRead();
  std::memcpy(staging.data(), region_->host_view() + offset, len);
  UnlockRead();
  FAASM_RETURN_IF_ERROR(kvs_->SetRange(key_, offset, staging));
  // Everything we pushed is by definition in sync with the global tier.
  std::lock_guard<std::mutex> guard(pages_mutex_);
  if (len > 0) {
    const size_t first_page = offset / kStatePageBytes;
    const size_t last_page = (offset + len - 1) / kStatePageBytes;
    for (size_t p = first_page; p <= last_page && p < page_present_.size(); ++p) {
      page_present_[p] = true;
    }
  }
  return OkStatus();
}

Status StateKeyValue::Append(const Bytes& bytes) {
  auto result = kvs_->Append(key_ + ":log", bytes);
  return result.status();
}

Result<Bytes> StateKeyValue::ReadAppended() { return kvs_->Get(key_ + ":log"); }

Status StateKeyValue::LockGlobalRead() {
  while (true) {
    FAASM_ASSIGN_OR_RETURN(bool acquired, kvs_->TryLockRead(key_));
    if (acquired) {
      return OkStatus();
    }
    clock_->SleepFor(100 * kMicrosecond);
  }
}

Status StateKeyValue::LockGlobalWrite() {
  while (true) {
    FAASM_ASSIGN_OR_RETURN(bool acquired, kvs_->TryLockWrite(key_));
    if (acquired) {
      return OkStatus();
    }
    clock_->SleepFor(100 * kMicrosecond);
  }
}

Status StateKeyValue::UnlockGlobalRead() { return kvs_->UnlockRead(key_); }
Status StateKeyValue::UnlockGlobalWrite() { return kvs_->UnlockWrite(key_); }

void StateKeyValue::InvalidateReplica() {
  std::lock_guard<std::mutex> guard(pages_mutex_);
  std::fill(page_present_.begin(), page_present_.end(), false);
}

size_t StateKeyValue::resident_pages() const {
  std::lock_guard<std::mutex> guard(pages_mutex_);
  size_t count = 0;
  for (bool present : page_present_) {
    count += present ? 1 : 0;
  }
  return count;
}

}  // namespace faasm
