// Distributed data objects (§4.1): typed, high-level wrappers over the state
// API. These are the C++ analogues of the paper's Python DDOs in Listing 1 —
// SharedArray ~ a plain shared vector, AsyncArray ~ VectorAsync (batched
// push), ReadOnlyMatrix ~ MatrixReadOnly (chunked column pulls),
// SparseMatrixCsc ~ SparseMatrixReadOnly, AppendLog ~ an eventually
// consistent event list.
#ifndef FAASM_STATE_DDO_H_
#define FAASM_STATE_DDO_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "state/local_tier.h"

namespace faasm {

// Fixed-length array of trivially-copyable T shared through the two-tier
// state architecture. Element access is a direct pointer into the local
// replica: no serialisation, no copies.
template <typename T>
class SharedArray {
 public:
  SharedArray(LocalTier* tier, const std::string& key)
      : kv_(tier->Lookup(key)) {}

  // Creates/attaches the replica for n elements (idempotent).
  Status Init(size_t n) {
    FAASM_RETURN_IF_ERROR(kv_->EnsureCapacity(n * sizeof(T)));
    return OkStatus();
  }

  // Attaches at the size currently in the global tier and pulls the content.
  Status Attach() { return kv_->Pull(); }

  size_t size() const { return kv_->size() / sizeof(T); }

  T* data() { return reinterpret_cast<T*>(kv_->data()); }
  T& operator[](size_t i) { return data()[i]; }
  const T& operator[](size_t i) const { return reinterpret_cast<const T*>(kv_->data())[i]; }

  // --- Tracked writes ----------------------------------------------------------
  // Pointer to elements [first, first+count) with their pages marked dirty,
  // so Push() ships them as a delta. Writers going through data() instead
  // must call MarkDirtyElements for the delta push to see the write.
  T* WritableElements(size_t first, size_t count) {
    return reinterpret_cast<T*>(kv_->WritableData(first * sizeof(T), count * sizeof(T)));
  }
  void MarkDirtyElements(size_t first, size_t count) {
    kv_->MarkDirty(first * sizeof(T), count * sizeof(T));
  }

  Status Push() { return kv_->Push(); }
  Status PushFull() { return kv_->PushFull(); }
  Status Pull() { return kv_->Pull(); }
  Status PushElements(size_t first, size_t count) {
    return kv_->PushChunk(first * sizeof(T), count * sizeof(T));
  }
  Status PullElements(size_t first, size_t count) {
    return kv_->PullChunk(first * sizeof(T), count * sizeof(T));
  }

  void LockRead() { kv_->LockRead(); }
  void UnlockRead() { kv_->UnlockRead(); }
  void LockWrite() { kv_->LockWrite(); }
  void UnlockWrite() { kv_->UnlockWrite(); }

  StateKeyValue& kv() { return *kv_; }

 private:
  std::shared_ptr<StateKeyValue> kv_;
};

// SharedArray with batched global-tier synchronisation: writes stay local
// until every `push_interval` calls to MaybePush (or an explicit Push). This
// is VectorAsync from Listing 1 — it trades inter-tier consistency for a
// large reduction in network traffic, which SGD tolerates.
template <typename T>
class AsyncArray {
 public:
  AsyncArray(LocalTier* tier, const std::string& key, int push_interval = 16)
      : array_(tier, key), push_interval_(push_interval) {}

  Status Init(size_t n) { return array_.Init(n); }
  Status Attach() { return array_.Pull(); }
  size_t size() const { return array_.size(); }
  T* data() { return array_.data(); }
  T& operator[](size_t i) { return array_[i]; }

  void MarkDirtyElements(size_t first, size_t count) {
    array_.MarkDirtyElements(first, count);
  }

  // When false, every push ships the whole value regardless of dirty
  // tracking (the pre-delta behaviour; the ablation baseline).
  void set_delta_push(bool delta) { delta_push_ = delta; }

  // Counts an update; pushes to the global tier every push_interval calls.
  Status MaybePush() {
    const int count = updates_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count % push_interval_ == 0) {
      return Push();
    }
    return OkStatus();
  }

  Status Push() { return delta_push_ ? array_.Push() : array_.PushFull(); }
  Status Pull() { return array_.Pull(); }

 private:
  SharedArray<T> array_;
  int push_interval_;
  bool delta_push_ = true;
  std::atomic<int> updates_{0};
};

// Dense column-major read-only matrix; PullColumns replicates only the
// columns a function touches (state chunks, Fig. 4: C1/C2).
template <typename T>
class ReadOnlyMatrix {
 public:
  ReadOnlyMatrix(LocalTier* tier, const std::string& key, size_t rows, size_t cols)
      : kv_(tier->Lookup(key)), rows_(rows), cols_(cols) {}

  Status Init() { return kv_->EnsureCapacity(rows_ * cols_ * sizeof(T)); }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  // Ensures columns [c0, c1) are resident in the local tier.
  Status PullColumns(size_t c0, size_t c1) {
    return kv_->PullChunk(c0 * rows_ * sizeof(T), (c1 - c0) * rows_ * sizeof(T));
  }

  const T& At(size_t r, size_t c) const {
    return reinterpret_cast<const T*>(kv_->data())[c * rows_ + r];
  }
  const T* Column(size_t c) const {
    return reinterpret_cast<const T*>(kv_->data()) + c * rows_;
  }
  T* MutableData() { return reinterpret_cast<T*>(kv_->data()); }

  Status Push() { return kv_->Push(); }

 private:
  std::shared_ptr<StateKeyValue> kv_;
  size_t rows_;
  size_t cols_;
};

// Compressed-sparse-column matrix split across three state keys (values, row
// indices, column pointers). Column pointers are small and pulled eagerly;
// values/indices are pulled per column range, mirroring the paper's
// SparseMatrixReadOnly which replicates only required column subsets.
class SparseMatrixCsc {
 public:
  SparseMatrixCsc(LocalTier* tier, const std::string& key)
      : values_(tier->Lookup(key + ":vals")),
        row_idx_(tier->Lookup(key + ":rows")),
        col_ptr_(tier->Lookup(key + ":cols")) {}

  // Attaches to an existing matrix in the global tier. Only the (small)
  // column-pointer array transfers; values/indices replicas are sized lazily
  // on the first PullColumns.
  Status Attach() { return col_ptr_->Pull(); }

  size_t num_cols() const { return col_ptr_->size() / sizeof(uint64_t) - 1; }

  const uint64_t* col_ptr() const {
    return reinterpret_cast<const uint64_t*>(col_ptr_->data());
  }

  // Pulls values and row indices for columns [c0, c1).
  Status PullColumns(size_t c0, size_t c1) {
    const uint64_t* cp = col_ptr();
    const uint64_t first = cp[c0];
    const uint64_t last = cp[c1];
    FAASM_RETURN_IF_ERROR(values_->PullChunk(first * sizeof(double), (last - first) * sizeof(double)));
    FAASM_RETURN_IF_ERROR(row_idx_->PullChunk(first * sizeof(uint32_t), (last - first) * sizeof(uint32_t)));
    return OkStatus();
  }

  const double* values() const { return reinterpret_cast<const double*>(values_->data()); }
  const uint32_t* row_indices() const {
    return reinterpret_cast<const uint32_t*>(row_idx_->data());
  }

  StateKeyValue& values_kv() { return *values_; }
  StateKeyValue& row_idx_kv() { return *row_idx_; }
  StateKeyValue& col_ptr_kv() { return *col_ptr_; }

 private:
  std::shared_ptr<StateKeyValue> values_;
  std::shared_ptr<StateKeyValue> row_idx_;
  std::shared_ptr<StateKeyValue> col_ptr_;
};

// Append-only record log in the global tier (e.g. per-epoch losses).
template <typename T>
class AppendLog {
 public:
  AppendLog(LocalTier* tier, const std::string& key) : kv_(tier->Lookup(key)) {}

  Status Append(const T& record) {
    Bytes bytes(sizeof(T));
    std::memcpy(bytes.data(), &record, sizeof(T));
    return kv_->Append(bytes);
  }

  Result<std::vector<T>> ReadAll() {
    auto bytes = kv_->ReadAppended();
    if (!bytes.ok()) {
      if (bytes.status().code() == StatusCode::kNotFound) {
        return std::vector<T>{};
      }
      return bytes.status();
    }
    std::vector<T> records(bytes.value().size() / sizeof(T));
    std::memcpy(records.data(), bytes.value().data(), records.size() * sizeof(T));
    return records;
  }

 private:
  std::shared_ptr<StateKeyValue> kv_;
};

}  // namespace faasm

#endif  // FAASM_STATE_DDO_H_
