#include "core/invocation_context.h"

namespace faasm {

Result<int> ChainAndAwaitAll(InvocationContext& ctx, const std::string& function,
                             const std::vector<Bytes>& inputs) {
  std::vector<uint64_t> call_ids;
  call_ids.reserve(inputs.size());
  for (const Bytes& input : inputs) {
    FAASM_ASSIGN_OR_RETURN(uint64_t id, ctx.ChainCall(function, input));
    call_ids.push_back(id);
  }
  int worst = 0;
  for (uint64_t id : call_ids) {
    FAASM_ASSIGN_OR_RETURN(int code, ctx.AwaitCall(id));
    if (code != 0) {
      worst = code;
    }
  }
  return worst;
}

}  // namespace faasm
