// Figure 7: machine-learning inference serving — (a) median latency vs
// throughput for cold-start ratios {0%, 2%, 20%}, (b) latency CDF at a fixed
// rate. FAASM serves the genuine wasm MLP; the baseline serves the native
// twin from containers with calibrated cold starts.
#include <atomic>
#include <string>

#include "bench/bench_util.h"
#include "baseline/knative.h"
#include "common/stats.h"
#include "runtime/cluster.h"
#include "workloads/inference.h"

namespace faasm {
namespace {

constexpr int kUserPool = 64;  // pre-registered per-user functions

// Registers "infer-u<i>" user functions; cold requests target fresh users.
template <typename RegisterFn>
void RegisterUsers(RegisterFn register_fn, int count) {
  for (int i = 0; i < count; ++i) {
    register_fn("infer-u" + std::to_string(i));
  }
}

struct LoadResult {
  Summary latency_ms;
};

// Open-loop Poisson load: each request is its own simulated activity.
template <typename Cluster, typename Client>
LoadResult RunLoad(Cluster& cluster, double rate_per_s, double cold_ratio, double duration_s,
                   const std::function<uint64_t(Client&, const std::string&, Bytes)>& submit,
                   const std::function<void(Client&, uint64_t)>& await) {
  LoadResult result;
  std::mutex result_mutex;
  const MlpDims dims;

  std::atomic<int> outstanding{0};
  cluster.Run([&](Client& client) {
    Rng rng(1234);
    int next_cold_user = kUserPool;
    double t = 0;
    int request_index = 0;
    SimClock& clock = cluster.clock();
    while (t < duration_s) {
      const double gap = rng.NextExponential(1.0 / rate_per_s);
      t += gap;
      clock.SleepFor(static_cast<TimeNs>(gap * 1e9));
      std::string function;
      if (rng.NextDouble() < cold_ratio) {
        function = "infer-u" + std::to_string(next_cold_user++ % 4096);
      } else {
        function = "infer-u" + std::to_string(request_index % kUserPool);
      }
      const int index = request_index++;
      outstanding.fetch_add(1);
      cluster.executor().Spawn([&, function, index] {
        Client inner_client = client;
        const TimeNs start = cluster.clock().Now();
        auto image = SyntheticImage(dims, index);
        const uint64_t id = submit(inner_client, function, EncodeImage(image));
        if (id != 0) {
          await(inner_client, id);
          const double ms = static_cast<double>(cluster.clock().Now() - start) / 1e6;
          std::lock_guard<std::mutex> guard(result_mutex);
          result.latency_ms.Add(ms);
        }
        outstanding.fetch_sub(1);
      });
    }
    clock.WaitFor([&] { return outstanding.load() == 0; }, kMillisecond,
                  clock.Now() + static_cast<TimeNs>(120 * 1e9));
  });
  return result;
}

LoadResult RunFaasm(double rate, double cold_ratio, double duration_s, int warm_pool) {
  ClusterConfig config;
  config.hosts = 4;
  config.cores_per_host = 4;
  config.max_concurrent_per_host = 256;
  FaasmCluster cluster(config);
  const MlpDims dims;
  SeedMlpWeights(cluster.kvs(), dims);
  auto module = BuildMlpWasmModule(dims).value();
  for (int i = 0; i < 4096 + kUserPool; ++i) {
    (void)cluster.registry().RegisterWasm("infer-u" + std::to_string(i), module);
  }
  // Pre-warm the steady-state user pool.
  cluster.Run([&](Frontend& frontend) {
    for (int i = 0; i < warm_pool; ++i) {
      auto image = SyntheticImage(dims, i);
      auto id = frontend.Submit("infer-u" + std::to_string(i % kUserPool), EncodeImage(image));
      if (id.ok()) {
        (void)frontend.Await(id.value());
      }
    }
  });

  return RunLoad<FaasmCluster, Frontend>(
      cluster, rate, cold_ratio, duration_s,
      [](Frontend& frontend, const std::string& fn, Bytes input) -> uint64_t {
        auto id = frontend.Submit(fn, std::move(input));
        return id.ok() ? id.value() : 0;
      },
      [](Frontend& frontend, uint64_t id) { (void)frontend.Await(id); });
}

LoadResult RunKnative(double rate, double cold_ratio, double duration_s, int warm_pool) {
  ClusterConfig config;
  config.hosts = 4;
  config.cores_per_host = 4;
  KnativeCluster cluster(config, ContainerModel{});
  const MlpDims dims;
  SeedMlpWeights(cluster.kvs(), dims);
  for (int i = 0; i < 4096 + kUserPool; ++i) {
    (void)cluster.registry().RegisterNative("infer-u" + std::to_string(i), MlpInferNative);
  }
  cluster.Run([&](KnativeCluster::Client& client) {
    for (int i = 0; i < warm_pool; ++i) {
      auto image = SyntheticImage(dims, i);
      auto id = client.Submit("infer-u" + std::to_string(i % kUserPool), EncodeImage(image));
      if (id.ok()) {
        (void)client.Await(id.value());
      }
    }
  });

  return RunLoad<KnativeCluster, KnativeCluster::Client>(
      cluster, rate, cold_ratio, duration_s,
      [](KnativeCluster::Client& client, const std::string& fn, Bytes input) -> uint64_t {
        auto id = client.Submit(fn, std::move(input));
        return id.ok() ? id.value() : 0;
      },
      [](KnativeCluster::Client& client, uint64_t id) { (void)client.Await(id); });
}

}  // namespace
}  // namespace faasm

int main() {
  using namespace faasm;
  PrintHeader("Figure 7a: median inference latency vs throughput");
  PrintContainerCalibration(ContainerModel{});

  const double duration_s = 2.0;
  std::printf("\n%10s | %12s | %14s %14s\n", "rate(req/s)", "faasm med(ms)", "kn 0%% cold",
              "kn 20%% cold");
  std::fflush(stdout);
  for (double rate : {2.0, 10.0, 25.0, 50.0}) {
    LoadResult faasm = RunFaasm(rate, 0.20, duration_s, kUserPool);  // one line covers all ratios
    LoadResult kn0 = RunKnative(rate, 0.0, duration_s, kUserPool);
    LoadResult kn20 = RunKnative(rate, 0.20, duration_s, kUserPool);
    std::printf("%10.0f | %12.1f | %14.1f %14.1f\n", rate, faasm.latency_ms.Median(),
                kn0.latency_ms.Median(), kn20.latency_ms.Median());
    std::fflush(stdout);
  }

  PrintHeader("Figure 7b: latency CDF at 10 req/s");
  LoadResult faasm = RunFaasm(10.0, 0.20, duration_s, kUserPool);
  LoadResult kn2 = RunKnative(10.0, 0.02, duration_s, kUserPool);
  LoadResult kn20 = RunKnative(10.0, 0.20, duration_s, kUserPool);
  std::fflush(stdout);
  std::printf("%12s %14s %14s %14s\n", "percentile", "faasm (ms)", "kn 2%% (ms)", "kn 20%% (ms)");
  for (double p : {10.0, 25.0, 50.0, 75.0, 90.0, 95.0, 99.0, 100.0}) {
    std::printf("%11.0f%% %14.1f %14.1f %14.1f\n", p, faasm.latency_ms.Percentile(p),
                kn2.latency_ms.Percentile(p), kn20.latency_ms.Percentile(p));
  }
  std::printf("\nExpected shape (paper): FAASM cold starts add <1 ms, so one line covers all\n"
              "ratios and the tail stays flat; the container baseline's median explodes once\n"
              "cold-start queueing kicks in, with multi-second tails at 20%% cold.\n");
  return 0;
}
