// StateKeyValue: one state value's local-tier replica (§4.2).
//
// The replica lives in a memfd-backed SharedRegion, so (i) every Faaslet on
// the host that maps the key sees the same bytes with zero copies, and
// (ii) the bytes can be mapped directly into a Faaslet's wasm linear memory
// (get_state returns a pointer, not a copy — §3.3).
//
// Synchronisation with the authoritative copy in the global tier is explicit
// via push/pull. The global tier is SHARDED (kvs/router.h): each key has a
// master shard co-located with one host ("kvs:<host>", per-key consistent
// hashing), and the KvsClient underneath routes every push/pull/lock to the
// key's master. When this host IS the master (master_local()), push/pull run
// against the in-process shard and move zero network bytes — replicas
// co-located with their master sync for free (§4.3). Traffic is otherwise
// proportional to what was touched in BOTH directions:
//
//   Pull  — page-granular presence tracking (`page_present_`): only missing
//           state pages are fetched, so sparse readers (e.g. the SGD matrix
//           column slices) transfer only what they read. Fetches go through
//           the client's unified read API (KvsClient::Read), so whole-value
//           pulls are served by (and refresh) the per-host read cache when
//           one is enabled, and multi-key prefetches group into kGetBatch
//           RPCs (LocalTier::Prefetch → InstallPulled).
//   Push  — page-granular dirty tracking (the SharedRegion's DirtyTracker):
//           writers that go through WritableData()/MarkDirty() — the host
//           interface, the DDOs, and guest stores into mapped state — record
//           the pages they touch, and Push() coalesces the dirty pages into
//           runs (adjacent/overlapping runs fused into maximal wire ranges)
//           and ships them as ONE batched multi-range write
//           (KvsClient::SetRanges), so N dirty runs cost one accounted round
//           trip. ClearDirty happens atomically with run collection; a push
//           failure re-marks the runs.
//
// BATCHED PUSH PROTOCOL (kvs_client.h kBatch). When the host's KvsClient has
// batching enabled (the per-FaasmInstance default), Push() does not issue
// its own RPC: it enqueues the merged dirty runs into the client's ambient
// OpBatch with a completion ack, and the batch ships grouped per master
// endpoint — pushes of K keys mastered on M hosts cost at most M round
// trips, pipelined, instead of K.
//
// Flush/visibility semantics:
//   - With no StateBatch scope open (local_tier.h), every Push() is its own
//     flush barrier: it returns only after ITS op's ack fired, so Push() ==
//     "durable in the global tier", exactly as unbatched. The grouping win
//     then comes from whatever else was already pending on the client.
//   - Inside a StateBatch scope, Push() returns kOk meaning ACCEPTED: the
//     op is durable only once a flush barrier completes. Barriers are the
//     scope's Close()/destructor, and every global-tier sync point —
//     Pull/PullChunk, LockGlobal*/UnlockGlobal* (pushes made under a global
//     lock are durable before the lock releases), chain/await in the host
//     interface — plus call completion in the runtime, so no op ever
//     outlives its Faaslet.
//   - Per-op error model: each enqueued push carries an ack; on failure the
//     ack re-marks the runs dirty (the next push retries them) and the
//     error surfaces at the flush barrier. A push racing a shard migration
//     bounces per op with kWrongMaster and the client retries just that op
//     against the new epoch — acked increments can stall, never get lost.
//
// CLUSTER MEMBERSHIP IS ELASTIC (kvs/migration.h): a key's master shard can
// move while replicas hold it. The epoch/redirect/migration protocol keeps
// the two-tier contract intact:
//   - Mastership is always resolved against the live ShardMap, so
//     master_local() and every push/pull/lock follow the key's CURRENT
//     master; nothing here caches a route across ops.
//   - While a key is mid-handoff (frozen on the source shard, or reached
//     through a stale route after the epoch flipped), global-tier ops
//     answer kWrongMaster; the KvsClient underneath backs off and retries
//     against the new epoch's route, so a Push/Pull/lock racing a
//     migration STALLS briefly instead of failing or losing data.
//   - Distributed-lock ownership migrates with the key: a global lock held
//     across a membership change keeps excluding, and the holder's unlock
//     lands on the new master.
//   - Membership can also change by CRASH (runtime/cluster.h KillHost).
//     With the replication substrate on (kvs/replication.h,
//     replication_factor > 1) the contract above survives abrupt master
//     loss: in SYNC mode a push ack means the write (and any lock state) is
//     on every live backup, so when a backup is promoted into the new
//     master nothing an acked push wrote — and no held lock — is lost; the
//     push merely stalls through the kUnavailable/kWrongMaster bounce while
//     the epoch flips, exactly like a migration race. In ASYNC mode the ack
//     is weaker by design (the bounded-lag ablation): up to max_lag_ops
//     acked-but-queued forwards can die with the primary, so acked pushes
//     may be lost on a crash — the ack then means "applied at the master",
//     not "replicated". At replication_factor 1 a crash loses the dead
//     shard's keys outright (counted, never silently).
//   - The local replica itself never moves — only mastership does. After a
//     migration a formerly master-local replica simply pays cross-host
//     round trips again (and vice versa); the bytes it holds stay valid
//     because a frozen key cannot be mutated during the handoff.
//
// READ CACHE COHERENCE (kvs/read_cache.h, opt-in per host). When the host's
// client has the read cache enabled, a cross-host pull may be served from a
// leased local copy. When is a cached read ALLOWED to be stale, and when is
// it not?
//   - ALLOWED: relative to writes pushed by OTHER hosts within the lease —
//     the ordinary two-tier weak-consistency window (§4.3), merely extended
//     by a bounded lease. Keys that cannot tolerate this must not enable
//     the cache (or read with max_staleness = 0 / bypass_cache).
//   - NEVER: relative to this host's own pushes (every local write, batched
//     or not, invalidates the key's cached read at enqueue time); across a
//     membership change (entries are epoch-keyed); and under a global lock —
//     acquiring LockGlobalRead/Write drops the client's cached read AND this
//     replica's clean pages (dirty pages hold unpushed local writes and are
//     kept), so the first pull under the lock refetches the bytes the lock
//     serialises. No stale read under a lock, ever.
//
// Consistency rules of the delta-push protocol:
//   - Between pushes, the global tier may lag the replica arbitrarily; a
//     reader on another host observes the value as of that host's last pull
//     and the writers' last push (two-tier weak consistency, §4.3). Use the
//     global locks for stronger guarantees.
//   - A delta push writes ONLY dirtied pages, so concurrently-pushed deltas
//     from different hosts interleave at page granularity instead of
//     last-writer-wins over the whole value.
//   - Writers that bypass the write API (raw data() stores from host code)
//     are invisible to the tracker. If a value has NEVER been marked dirty,
//     Push() falls back to a conservative full-value push; once any writer
//     has marked the value, unmarked writes may be lost — route every writer
//     through WritableData()/MarkDirty (guest stores through mapped state
//     regions are forwarded automatically by LinearMemory).
//   - Pushed pages are recorded as present only when the pushed range covers
//     the page entirely (up to the value size): a partially-pushed page may
//     still hold bytes the replica never pulled, and must stay fetchable.
//
// Local consistency uses a clock-aware readers/writer lock; global
// consistency uses the KVS distributed locks.
#ifndef FAASM_STATE_STATE_KEY_VALUE_H_
#define FAASM_STATE_STATE_KEY_VALUE_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/poll_lock.h"
#include "common/status.h"
#include "kvs/kvs_client.h"
#include "mem/shared_region.h"

namespace faasm {

class StateKeyValue {
 public:
  // Pull/push granularity for chunk tracking.
  static constexpr size_t kStatePageBytes = 4096;

  StateKeyValue(std::string key, KvsClient* kvs, Clock* clock);

  const std::string& key() const { return key_; }
  size_t size() const { return size_; }
  bool allocated() const { return region_ != nullptr; }

  // Allocates (or verifies) the replica with capacity for `size` bytes.
  // The first allocation fixes the capacity: other Faaslets may already have
  // the region mapped, so it can never move.
  Status EnsureCapacity(size_t size);

  // Direct pointer into the replica (host view). Callers needing consistency
  // guard accesses with the local lock; HOGWILD-style code reads/writes racily
  // by design.
  uint8_t* data();
  std::shared_ptr<SharedRegion> region() { return region_; }

  // --- Write API (dirty tracking) ---------------------------------------------
  // Pointer into [offset, offset+len) with the covered pages marked dirty, so
  // the next Push() ships them. Returns nullptr when the replica is not
  // allocated or the range is out of bounds. Writers must route through this
  // (or MarkDirty) for delta pushes to see their writes.
  //
  // Partially covered boundary pages that are not yet resident are pulled
  // first (write-allocate): delta pushes ship whole pages, and an unfilled
  // page would push local zeros over live global bytes. Because of that pull,
  // do not call this while holding the local write lock unless the range
  // covers its pages end to end.
  //
  // The pages are marked dirty when the pointer is handed out, BEFORE the
  // caller writes. When another Faaslet may Push() this value concurrently,
  // call MarkDirty again after the bytes land: a push racing with the write
  // could otherwise collect-and-clear the early mark while the data was
  // still in flight, and the write would never be delta-pushed.
  uint8_t* WritableData(size_t offset, size_t len);
  // Records a write to [offset, offset+len) done through a raw pointer. No
  // write-allocate: the bytes are already written, so the caller must have
  // pulled the surrounding pages (or own them outright) for delta pushes to
  // be faithful — guest code gets this by calling pull_state before writing.
  void MarkDirty(size_t offset, size_t len);

  // --- Local tier locks (lock_state_read / lock_state_write) -----------------
  void LockRead() { local_lock_.LockRead(); }
  void UnlockRead() { local_lock_.UnlockRead(); }
  void LockWrite() { local_lock_.LockWrite(); }
  void UnlockWrite() { local_lock_.UnlockWrite(); }

  // --- Two-tier synchronisation ------------------------------------------------
  // Pull the whole value; allocates the replica at the global size if needed.
  // No-op (beyond a size check) if every page is already present, and a pure
  // no-op when a Prefetch already installed the value since the last
  // invalidation.
  Status Pull();
  // Installs a complete value fetched out of band (the batched-prefetch
  // path, LocalTier::Prefetch): a wholesale refresh equivalent to
  // InvalidateReplica() + Pull() — every page is replaced, including pages
  // holding unpushed local writes. The next Pull() is then free.
  Status InstallPulled(const Bytes& value);
  // Pull only [offset, offset+len); fetches just the missing state pages.
  Status PullChunk(size_t offset, size_t len);
  // Delta push: coalesces the dirty pages into runs and ships them as one
  // batched multi-range write. No-op when nothing is dirty. Falls back to a
  // full-value push if no writer has ever marked this value (legacy raw
  // writers — see the consistency rules above).
  Status Push();
  // Unconditional full-value push (the pre-delta behaviour; ablation baseline).
  Status PushFull();
  Status PushChunk(size_t offset, size_t len);
  // Append bytes to the global value (event-stream style; bypasses replica).
  Status Append(const Bytes& bytes);
  Result<Bytes> ReadAppended();

  // --- Global locks (lock_state_global_read / write) -----------------------------
  Status LockGlobalRead();
  Status LockGlobalWrite();
  Status UnlockGlobalRead();
  Status UnlockGlobalWrite();

  // True when this key's global-tier master shard lives on this host: the
  // paper's co-location case, where Push/Pull are in-process and free. The
  // scheduler uses this as a placement hint (state_affinity_key).
  bool master_local() const { return kvs_->MasterLocal(key_); }

  // Marks all pages absent so the next pull refetches (used by tests and
  // consistency-sensitive DDOs).
  void InvalidateReplica();

  // Number of state pages currently resident in the local tier.
  size_t resident_pages() const;

 private:
  // Settled exactly once per batched push: status of THIS op after retries.
  struct PushAck {
    std::atomic<bool> done{false};
    Status status = OkStatus();  // written before done (release/acquire)
  };

  // Fetches [offset,len) from the global tier into the replica.
  Status FetchRange(size_t offset, size_t len);

  // Batched-push tail of Push(): enqueues the merged ranges into the
  // client's ambient batch; flushes immediately (and waits for this op's
  // ack) unless a StateBatch scope defers to a later barrier.
  Status PushRangesBatched(std::vector<ValueRange> ranges);
  // Re-marks failed ranges dirty / marks pushed ranges present.
  void RemarkRanges(const std::vector<ValueRange>& ranges);
  void MarkRangesPresent(const std::vector<ValueRange>& ranges);

  // Marks the pages fully covered by a pushed [offset,len) as present (the
  // last page counts as covered when the range reaches the value size).
  // Requires pages_mutex_.
  void MarkPushedRangePresentLocked(size_t offset, size_t len);

  // Lock-acquisition freshness (see the coherence rules above): drops the
  // prefetch freshness flag and every CLEAN page's present bit, keeping
  // dirty pages (unpushed local writes must not be refetched over).
  void RefreshForLock();

  std::string key_;
  KvsClient* kvs_;
  Clock* clock_;

  std::shared_ptr<SharedRegion> region_;
  size_t size_ = 0;

  PollLock local_lock_;
  mutable std::mutex pages_mutex_;
  std::vector<bool> page_present_;
  // Set by InstallPulled, consumed by the next Pull() (which then skips even
  // the sizing RPC); cleared by InvalidateReplica and lock acquisition.
  std::atomic<bool> pulled_fresh_{false};
};

}  // namespace faasm

#endif  // FAASM_STATE_STATE_KEY_VALUE_H_
