// KvStore: the in-memory key/value store backing the global state tier
// (the paper deploys Redis; this is the offline equivalent with the same
// API surface the two-tier architecture needs: whole-value and ranged
// reads/writes, append, distributed read/write locks, and the set operations
// the Omega-style scheduler keeps its warm sets in).
#ifndef FAASM_KVS_KV_STORE_H_
#define FAASM_KVS_KV_STORE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace faasm {

// One write range of a batched SetRanges: `bytes` lands at `offset`.
struct ValueRange {
  uint64_t offset = 0;
  Bytes bytes;
};

class KvStore {
 public:
  static constexpr int kShards = 16;

  // --- Values ---------------------------------------------------------------
  void Set(const std::string& key, Bytes value);
  Result<Bytes> Get(const std::string& key) const;
  bool Exists(const std::string& key) const;
  Result<size_t> Size(const std::string& key) const;
  Status Delete(const std::string& key);

  // Ranged access (state chunks). SetRange extends the value when needed.
  Result<Bytes> GetRange(const std::string& key, size_t offset, size_t len) const;
  Status SetRange(const std::string& key, size_t offset, const Bytes& bytes);
  // Applies all ranges atomically under one shard lock (delta push: the N
  // dirty runs of a replica land as one operation).
  Status SetRanges(const std::string& key, const std::vector<ValueRange>& ranges);

  // Appends and returns the new length.
  size_t Append(const std::string& key, const Bytes& bytes);

  // --- Distributed locks -----------------------------------------------------
  // Non-blocking; callers poll. Multiple readers or one writer per key.
  bool TryLockRead(const std::string& key, const std::string& owner);
  bool TryLockWrite(const std::string& key, const std::string& owner);
  Status UnlockRead(const std::string& key, const std::string& owner);
  Status UnlockWrite(const std::string& key, const std::string& owner);

  // --- Sets (scheduler warm sets) ---------------------------------------------
  bool SetAdd(const std::string& key, const std::string& member);     // true if new
  bool SetRemove(const std::string& key, const std::string& member);  // true if removed
  std::vector<std::string> SetMembers(const std::string& key) const;

  // --- Introspection -----------------------------------------------------------
  size_t key_count() const;
  size_t total_bytes() const;

 private:
  struct LockState {
    int readers = 0;
    std::string writer;  // empty when unlocked
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::string, Bytes> values;
    std::map<std::string, LockState> locks;
    std::map<std::string, std::set<std::string>> sets;
  };

  Shard& ShardFor(const std::string& key) const {
    return shards_[HashBytes(reinterpret_cast<const uint8_t*>(key.data()), key.size()) % kShards];
  }

  mutable Shard shards_[kShards];
};

}  // namespace faasm

#endif  // FAASM_KVS_KV_STORE_H_
