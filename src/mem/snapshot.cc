#include "mem/snapshot.h"

#include <sys/mman.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "mem/page.h"

namespace faasm {

Result<std::unique_ptr<MemorySnapshot>> MemorySnapshot::Capture(const std::string& name,
                                                                const uint8_t* src, size_t len) {
  int fd = static_cast<int>(syscall(SYS_memfd_create, name.c_str(), 0));
  if (fd < 0) {
    return Unavailable(std::string("snapshot memfd_create failed: ") + std::strerror(errno));
  }
  const size_t mapped_len = RoundUpTo(len == 0 ? 1 : len, kHostPageBytes);
  if (ftruncate(fd, static_cast<off_t>(mapped_len)) != 0) {
    close(fd);
    return ResourceExhausted(std::string("snapshot ftruncate failed: ") + std::strerror(errno));
  }
  void* view = mmap(nullptr, mapped_len, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (view == MAP_FAILED) {
    close(fd);
    return ResourceExhausted(std::string("snapshot mmap failed: ") + std::strerror(errno));
  }
  std::memcpy(view, src, len);
  // Downgrade the view to read-only: the snapshot is immutable once captured.
  mprotect(view, mapped_len, PROT_READ);
  return std::unique_ptr<MemorySnapshot>(
      new MemorySnapshot(fd, len, static_cast<const uint8_t*>(view)));
}

Result<std::unique_ptr<MemorySnapshot>> MemorySnapshot::Deserialize(const std::string& name,
                                                                    const Bytes& bytes) {
  return Capture(name, bytes.data(), bytes.size());
}

MemorySnapshot::~MemorySnapshot() {
  if (view_ != nullptr) {
    munmap(const_cast<uint8_t*>(view_), RoundUpTo(size_ == 0 ? 1 : size_, kHostPageBytes));
  }
  if (fd_ >= 0) {
    close(fd_);
  }
}

Status MemorySnapshot::RestoreInto(LinearMemory& memory) const {
  return memory.RestoreCopyOnWrite(fd_, size_);
}

Status MemorySnapshot::RestoreIntoEager(LinearMemory& memory) const {
  return memory.RestoreFromBytes(view_, size_);
}

Status MemorySnapshot::RestoreDirty(LinearMemory& memory) const {
  return memory.RestoreDirtyFrom(view_, size_);
}

Bytes MemorySnapshot::Serialize() const { return Bytes(view_, view_ + size_); }

}  // namespace faasm
