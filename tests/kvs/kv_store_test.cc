#include "kvs/kv_store.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(KvStoreTest, SetGetDelete) {
  KvStore store;
  store.Set("k", Bytes{1, 2, 3});
  EXPECT_TRUE(store.Exists("k"));
  EXPECT_EQ(store.Get("k").value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(store.Size("k").value(), 3u);
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k"));
  EXPECT_EQ(store.Get("k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Delete("k").code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, RangeReadWrite) {
  KvStore store;
  store.Set("k", Bytes{0, 1, 2, 3, 4, 5, 6, 7});
  EXPECT_EQ(store.GetRange("k", 2, 3).value(), (Bytes{2, 3, 4}));
  // Range past end is clamped.
  EXPECT_EQ(store.GetRange("k", 6, 100).value(), (Bytes{6, 7}));
  EXPECT_EQ(store.GetRange("k", 9, 1).status().code(), StatusCode::kOutOfRange);

  // SetRange extends the value.
  ASSERT_TRUE(store.SetRange("k", 10, Bytes{9, 9}).ok());
  EXPECT_EQ(store.Size("k").value(), 12u);
  EXPECT_EQ(store.GetRange("k", 10, 2).value(), (Bytes{9, 9}));
  // SetRange on a missing key creates it.
  ASSERT_TRUE(store.SetRange("new", 4, Bytes{1}).ok());
  EXPECT_EQ(store.Size("new").value(), 5u);
}

TEST(KvStoreTest, Append) {
  KvStore store;
  EXPECT_EQ(store.Append("log", Bytes{1}), 1u);
  EXPECT_EQ(store.Append("log", Bytes{2, 3}), 3u);
  EXPECT_EQ(store.Get("log").value(), (Bytes{1, 2, 3}));
}

TEST(KvStoreTest, ReadWriteLocks) {
  KvStore store;
  EXPECT_TRUE(store.TryLockRead("k", "a"));
  EXPECT_TRUE(store.TryLockRead("k", "b"));   // shared readers
  EXPECT_FALSE(store.TryLockWrite("k", "c"));  // blocked by readers
  ASSERT_TRUE(store.UnlockRead("k", "a").ok());
  ASSERT_TRUE(store.UnlockRead("k", "b").ok());
  EXPECT_TRUE(store.TryLockWrite("k", "c"));
  EXPECT_FALSE(store.TryLockRead("k", "a"));   // blocked by writer
  EXPECT_FALSE(store.TryLockWrite("k", "d"));  // exclusive
  EXPECT_EQ(store.UnlockWrite("k", "other").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store.UnlockWrite("k", "c").ok());
  EXPECT_TRUE(store.TryLockRead("k", "a"));
}

TEST(KvStoreTest, UnlockWithoutLockFails) {
  KvStore store;
  EXPECT_EQ(store.UnlockRead("k", "a").code(), StatusCode::kFailedPrecondition);
}

TEST(KvStoreTest, SetOperations) {
  KvStore store;
  EXPECT_TRUE(store.SetAdd("warm:f", "host-1"));
  EXPECT_FALSE(store.SetAdd("warm:f", "host-1"));  // duplicate
  EXPECT_TRUE(store.SetAdd("warm:f", "host-2"));
  auto members = store.SetMembers("warm:f");
  EXPECT_EQ(members.size(), 2u);
  EXPECT_TRUE(store.SetRemove("warm:f", "host-1"));
  EXPECT_FALSE(store.SetRemove("warm:f", "host-1"));
  EXPECT_EQ(store.SetMembers("warm:f").size(), 1u);
  EXPECT_TRUE(store.SetMembers("nonexistent").empty());
}

TEST(KvStoreTest, Accounting) {
  KvStore store;
  store.Set("a", Bytes(100));
  store.Set("b", Bytes(50));
  EXPECT_EQ(store.key_count(), 2u);
  EXPECT_EQ(store.total_bytes(), 150u);
}

}  // namespace
}  // namespace faasm
