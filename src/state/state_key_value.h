// StateKeyValue: one state value's local-tier replica (§4.2).
//
// The replica lives in a memfd-backed SharedRegion, so (i) every Faaslet on
// the host that maps the key sees the same bytes with zero copies, and
// (ii) the bytes can be mapped directly into a Faaslet's wasm linear memory
// (get_state returns a pointer, not a copy — §3.3).
//
// Synchronisation with the authoritative copy in the global tier (the KVS)
// is explicit via push/pull, full-value or chunked; chunk tracking is page
// granular so sparse access patterns (e.g. the SGD training matrix columns)
// transfer only what they touch. Local consistency uses a clock-aware
// readers/writer lock; global consistency uses the KVS distributed locks.
#ifndef FAASM_STATE_STATE_KEY_VALUE_H_
#define FAASM_STATE_STATE_KEY_VALUE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/poll_lock.h"
#include "common/status.h"
#include "kvs/kvs_client.h"
#include "mem/shared_region.h"

namespace faasm {

class StateKeyValue {
 public:
  // Pull/push granularity for chunk tracking.
  static constexpr size_t kStatePageBytes = 4096;

  StateKeyValue(std::string key, KvsClient* kvs, Clock* clock);

  const std::string& key() const { return key_; }
  size_t size() const { return size_; }
  bool allocated() const { return region_ != nullptr; }

  // Allocates (or verifies) the replica with capacity for `size` bytes.
  // The first allocation fixes the capacity: other Faaslets may already have
  // the region mapped, so it can never move.
  Status EnsureCapacity(size_t size);

  // Direct pointer into the replica (host view). Callers needing consistency
  // guard accesses with the local lock; HOGWILD-style code reads/writes racily
  // by design.
  uint8_t* data();
  std::shared_ptr<SharedRegion> region() { return region_; }

  // --- Local tier locks (lock_state_read / lock_state_write) -----------------
  void LockRead() { local_lock_.LockRead(); }
  void UnlockRead() { local_lock_.UnlockRead(); }
  void LockWrite() { local_lock_.LockWrite(); }
  void UnlockWrite() { local_lock_.UnlockWrite(); }

  // --- Two-tier synchronisation ------------------------------------------------
  // Pull the whole value; allocates the replica at the global size if needed.
  // No-op (beyond a size check) if every page is already present.
  Status Pull();
  // Pull only [offset, offset+len); fetches just the missing state pages.
  Status PullChunk(size_t offset, size_t len);
  // Push the whole value / a chunk to the global tier.
  Status Push();
  Status PushChunk(size_t offset, size_t len);
  // Append bytes to the global value (event-stream style; bypasses replica).
  Status Append(const Bytes& bytes);
  Result<Bytes> ReadAppended();

  // --- Global locks (lock_state_global_read / write) -----------------------------
  Status LockGlobalRead();
  Status LockGlobalWrite();
  Status UnlockGlobalRead();
  Status UnlockGlobalWrite();

  // Marks all pages absent so the next pull refetches (used by tests and
  // consistency-sensitive DDOs).
  void InvalidateReplica();

  // Number of state pages currently resident in the local tier.
  size_t resident_pages() const;

 private:
  // Fetches [offset,len) from the global tier into the replica.
  Status FetchRange(size_t offset, size_t len);

  std::string key_;
  KvsClient* kvs_;
  Clock* clock_;

  std::shared_ptr<SharedRegion> region_;
  size_t size_ = 0;

  PollLock local_lock_;
  mutable std::mutex pages_mutex_;
  std::vector<bool> page_present_;
};

}  // namespace faasm

#endif  // FAASM_STATE_STATE_KEY_VALUE_H_
