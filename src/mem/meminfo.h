// Process memory accounting helpers used by the Table 3 benchmark (RSS/PSS
// deltas per Faaslet) — reads /proc, Linux only.
#ifndef FAASM_MEM_MEMINFO_H_
#define FAASM_MEM_MEMINFO_H_

#include <cstddef>
#include <cstdint>

namespace faasm {

// Resident set size of the current process in bytes (from /proc/self/statm).
size_t CurrentRssBytes();

// Proportional set size in bytes (from /proc/self/smaps_rollup); returns 0 if
// unavailable.
size_t CurrentPssBytes();

}  // namespace faasm

#endif  // FAASM_MEM_MEMINFO_H_
