#include "workloads/matmul.h"

#include <cstring>

#include "common/rng.h"
#include "state/ddo.h"

namespace faasm {

size_t SeedMatmulInputs(ShardedKvs& kvs, const MatmulConfig& config) {
  Rng rng(config.seed);
  const size_t n = config.n;
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  for (auto& v : a) {
    v = rng.NextDouble() - 0.5;
  }
  for (auto& v : b) {
    v = rng.NextDouble() - 0.5;
  }
  const auto* pa = reinterpret_cast<const uint8_t*>(a.data());
  const auto* pb = reinterpret_cast<const uint8_t*>(b.data());
  kvs.Set(kMatmulAKey, Bytes(pa, pa + n * n * sizeof(double)));
  kvs.Set(kMatmulBKey, Bytes(pb, pb + n * n * sizeof(double)));
  return 2 * n * n * sizeof(double);
}

Bytes EncodeMatmulDivideInput(uint32_t n, uint32_t size, uint32_t a_row, uint32_t a_col,
                              uint32_t b_row, uint32_t b_col, uint32_t levels_left,
                              const std::string& out_key) {
  Bytes out;
  ByteWriter writer(out);
  writer.Put<uint32_t>(n);
  writer.Put<uint32_t>(size);
  writer.Put<uint32_t>(a_row);
  writer.Put<uint32_t>(a_col);
  writer.Put<uint32_t>(b_row);
  writer.Put<uint32_t>(b_col);
  writer.Put<uint32_t>(levels_left);
  writer.PutString(out_key);
  return out;
}

namespace {

struct DivideInput {
  uint32_t n, size, a_row, a_col, b_row, b_col, levels_left;
  std::string out_key;
};

Result<DivideInput> DecodeDivideInput(const Bytes& bytes) {
  DivideInput in;
  ByteReader reader(bytes);
  FAASM_ASSIGN_OR_RETURN(in.n, reader.Get<uint32_t>());
  FAASM_ASSIGN_OR_RETURN(in.size, reader.Get<uint32_t>());
  FAASM_ASSIGN_OR_RETURN(in.a_row, reader.Get<uint32_t>());
  FAASM_ASSIGN_OR_RETURN(in.a_col, reader.Get<uint32_t>());
  FAASM_ASSIGN_OR_RETURN(in.b_row, reader.Get<uint32_t>());
  FAASM_ASSIGN_OR_RETURN(in.b_col, reader.Get<uint32_t>());
  FAASM_ASSIGN_OR_RETURN(in.levels_left, reader.Get<uint32_t>());
  FAASM_ASSIGN_OR_RETURN(in.out_key, reader.GetString());
  return in;
}

// Pulls a size x size block of an n x n row-major matrix (row-segment
// chunks), reading through the local tier replica.
Status PullBlock(StateKeyValue& kv, uint32_t n, uint32_t row0, uint32_t col0, uint32_t size) {
  for (uint32_t r = 0; r < size; ++r) {
    const size_t offset = (static_cast<size_t>(row0 + r) * n + col0) * sizeof(double);
    FAASM_RETURN_IF_ERROR(kv.PullChunk(offset, size * sizeof(double)));
  }
  return OkStatus();
}

int LeafMultiply(InvocationContext& ctx, const DivideInput& in) {
  auto a_kv = ctx.state().Lookup(kMatmulAKey);
  auto b_kv = ctx.state().Lookup(kMatmulBKey);
  if (!PullBlock(*a_kv, in.n, in.a_row, in.a_col, in.size).ok() ||
      !PullBlock(*b_kv, in.n, in.b_row, in.b_col, in.size).ok()) {
    return 4;
  }
  auto out_kv = ctx.state().Lookup(in.out_key);
  if (!out_kv->EnsureCapacity(static_cast<size_t>(in.size) * in.size * sizeof(double)).ok()) {
    return 5;
  }

  const auto* a = reinterpret_cast<const double*>(a_kv->data());
  const auto* b = reinterpret_cast<const double*>(b_kv->data());
  auto* out = reinterpret_cast<double*>(
      out_kv->WritableData(0, static_cast<size_t>(in.size) * in.size * sizeof(double)));
  if (out == nullptr) {
    return 5;
  }

  Stopwatch compute;
  // ikj loop order for locality over the row-major operands.
  for (uint32_t i = 0; i < in.size; ++i) {
    double* out_row = out + static_cast<size_t>(i) * in.size;
    std::memset(out_row, 0, in.size * sizeof(double));
    const double* a_row = a + (static_cast<size_t>(in.a_row + i) * in.n + in.a_col);
    for (uint32_t k = 0; k < in.size; ++k) {
      const double aik = a_row[k];
      const double* b_row = b + (static_cast<size_t>(in.b_row + k) * in.n + in.b_col);
      for (uint32_t j = 0; j < in.size; ++j) {
        out_row[j] += aik * b_row[j];
      }
    }
  }
  ctx.ChargeCompute(compute.ElapsedNs());

  // Re-mark after the writes so a concurrent push cannot have cleared the
  // WritableData mark while the tile was still being filled.
  out_kv->MarkDirty(0, static_cast<size_t>(in.size) * in.size * sizeof(double));
  return out_kv->Push().ok() ? 0 : 6;
}

}  // namespace

int MatmulDivideFunction(InvocationContext& ctx) {
  auto input = DecodeDivideInput(ctx.Input());
  if (!input.ok()) {
    return 2;
  }
  const DivideInput& in = input.value();
  if (in.size % 2 != 0 && in.levels_left > 0) {
    return 3;
  }
  if (in.levels_left == 0) {
    return LeafMultiply(ctx, in);
  }

  // Internal node: chain the 8 quadrant-term products (Listing-1 pattern),
  // then one merge function (64 mult + 9 merge per two-level multiply).
  const uint32_t half = in.size / 2;
  std::vector<uint64_t> child_calls;
  std::vector<std::string> child_keys;
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 2; ++j) {
      for (uint32_t t = 0; t < 2; ++t) {
        const std::string child_key = in.out_key + "." + std::to_string(i) +
                                      std::to_string(j) + std::to_string(t);
        child_keys.push_back(child_key);
        Bytes child_input = EncodeMatmulDivideInput(
            in.n, half, in.a_row + i * half, in.a_col + t * half, in.b_row + t * half,
            in.b_col + j * half, in.levels_left - 1, child_key);
        auto id = ctx.ChainCall("mm_div", std::move(child_input));
        if (!id.ok()) {
          return 7;
        }
        child_calls.push_back(id.value());
      }
    }
  }
  for (uint64_t id : child_calls) {
    auto code = ctx.AwaitCall(id);
    if (!code.ok() || code.value() != 0) {
      return 8;
    }
  }

  Bytes merge_input;
  ByteWriter writer(merge_input);
  writer.Put<uint32_t>(in.size);
  writer.PutString(in.out_key);
  for (const std::string& key : child_keys) {
    writer.PutString(key);
  }
  auto merge_id = ctx.ChainCall("mm_merge", std::move(merge_input));
  if (!merge_id.ok()) {
    return 9;
  }
  auto merge_code = ctx.AwaitCall(merge_id.value());
  if (!merge_code.ok() || merge_code.value() != 0) {
    return 10;
  }
  return 0;
}

int MatmulMergeFunction(InvocationContext& ctx) {
  ByteReader reader(ctx.Input());
  auto size = reader.Get<uint32_t>();
  auto out_key = reader.GetString();
  if (!size.ok() || !out_key.ok()) {
    return 2;
  }
  std::vector<std::string> child_keys;
  for (int k = 0; k < 8; ++k) {
    auto key = reader.GetString();
    if (!key.ok()) {
      return 2;
    }
    child_keys.push_back(std::move(key).value());
  }

  const uint32_t half = size.value() / 2;
  const size_t child_bytes = static_cast<size_t>(half) * half * sizeof(double);

  auto out_kv = ctx.state().Lookup(out_key.value());
  if (!out_kv->EnsureCapacity(static_cast<size_t>(size.value()) * size.value() * sizeof(double))
           .ok()) {
    return 5;
  }
  auto* out = reinterpret_cast<double*>(out_kv->WritableData(
      0, static_cast<size_t>(size.value()) * size.value() * sizeof(double)));
  if (out == nullptr) {
    return 5;
  }

  Stopwatch compute;
  int child_index = 0;
  for (uint32_t i = 0; i < 2; ++i) {
    for (uint32_t j = 0; j < 2; ++j) {
      auto t0 = ctx.state().Lookup(child_keys[child_index]);
      auto t1 = ctx.state().Lookup(child_keys[child_index + 1]);
      child_index += 2;
      if (!t0->PullChunk(0, child_bytes).ok() || !t1->PullChunk(0, child_bytes).ok()) {
        return 4;
      }
      const auto* p0 = reinterpret_cast<const double*>(t0->data());
      const auto* p1 = reinterpret_cast<const double*>(t1->data());
      for (uint32_t r = 0; r < half; ++r) {
        double* out_row = out + (static_cast<size_t>(i) * half + r) * size.value() +
                          static_cast<size_t>(j) * half;
        const double* row0 = p0 + static_cast<size_t>(r) * half;
        const double* row1 = p1 + static_cast<size_t>(r) * half;
        for (uint32_t c = 0; c < half; ++c) {
          out_row[c] = row0[c] + row1[c];
        }
      }
    }
  }
  ctx.ChargeCompute(compute.ElapsedNs());

  out_kv->MarkDirty(0, static_cast<size_t>(size.value()) * size.value() * sizeof(double));
  return out_kv->Push().ok() ? 0 : 6;
}

Status RegisterMatmulFunctions(FunctionRegistry& registry) {
  FAASM_RETURN_IF_ERROR(registry.RegisterNative("mm_div", MatmulDivideFunction));
  return registry.RegisterNative("mm_merge", MatmulMergeFunction);
}

std::vector<double> ReferenceMatmul(const std::vector<double>& a, const std::vector<double>& b,
                                    uint32_t n) {
  std::vector<double> c(static_cast<size_t>(n) * n, 0.0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t k = 0; k < n; ++k) {
      const double aik = a[static_cast<size_t>(i) * n + k];
      for (uint32_t j = 0; j < n; ++j) {
        c[static_cast<size_t>(i) * n + j] += aik * b[static_cast<size_t>(k) * n + j];
      }
    }
  }
  return c;
}

}  // namespace faasm
