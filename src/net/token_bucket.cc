#include "net/token_bucket.h"

#include <algorithm>
#include <cmath>

namespace faasm {

void TokenBucket::Refill(TimeNs now_ns) {
  if (now_ns <= last_refill_ns_) {
    return;
  }
  const double elapsed_s = static_cast<double>(now_ns - last_refill_ns_) / 1e9;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
  last_refill_ns_ = now_ns;
}

bool TokenBucket::TryConsume(double bytes, TimeNs now_ns) {
  Refill(now_ns);
  if (tokens_ >= bytes) {
    tokens_ -= bytes;
    return true;
  }
  return false;
}

TimeNs TokenBucket::NextAvailable(double bytes, TimeNs now_ns) {
  Refill(now_ns);
  double overflow_wait_s = 0;
  if (bytes > burst_) {
    // The bucket can never hold this many tokens; waiting for them would
    // spin forever. Drain the full burst and pace the overflow at the line
    // rate instead.
    overflow_wait_s = (bytes - burst_) / rate_;
    bytes = burst_;
  }
  if (tokens_ >= bytes && overflow_wait_s == 0) {
    return now_ns;
  }
  const double deficit = std::max(0.0, bytes - tokens_);
  const double wait_s = deficit / rate_ + overflow_wait_s;
  return now_ns + static_cast<TimeNs>(std::ceil(wait_s * 1e9));
}

}  // namespace faasm
