// End-to-end interpreter tests: build -> encode -> decode -> compile ->
// instantiate -> call, i.e. exactly the path an uploaded function takes.
#include <gtest/gtest.h>

#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/instance.h"

namespace faasm::wasm {
namespace {

std::shared_ptr<const CompiledModule> MustCompile(ModuleBuilder& b) {
  auto decoded = DecodeModule(b.Build());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto compiled = CompileModule(std::move(decoded).value());
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  return compiled.value();
}

std::unique_ptr<Instance> MustInstantiate(ModuleBuilder& b, ImportResolver* resolver = nullptr) {
  auto instance = Instance::Create(MustCompile(b), resolver);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

uint32_t CallI32(Instance& instance, const std::string& name, std::vector<Value> args) {
  auto out = instance.CallExport(name, std::move(args));
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value().size(), 1u);
  return out.value()[0].i32;
}

TEST(InterpreterTest, AddTwoNumbers) {
  ModuleBuilder b;
  auto& f = b.AddFunction("add", {ValType::kI32, ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.LocalGet(1);
  f.Emit(Op::kI32Add);
  f.End();
  auto instance = MustInstantiate(b);
  EXPECT_EQ(CallI32(*instance, "add", {MakeI32(2), MakeI32(40)}), 42u);
  EXPECT_EQ(CallI32(*instance, "add", {MakeI32(0xFFFFFFFF), MakeI32(1)}), 0u);  // wraps
}

TEST(InterpreterTest, LocalsAreZeroInitialised) {
  ModuleBuilder b;
  auto& f = b.AddFunction("zero", {}, {ValType::kI64});
  uint32_t local = f.AddLocal(ValType::kI64);
  f.LocalGet(local);
  f.End();
  auto instance = MustInstantiate(b);
  auto out = instance->CallExport("zero", {});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out.value()[0].i64, 0u);
}

TEST(InterpreterTest, RecursiveFibonacci) {
  ModuleBuilder b;
  auto& f = b.AddFunction("fib", {ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.I32Const(2);
  f.Emit(Op::kI32LtS);
  f.If(BlockType::Of(ValType::kI32));
  f.LocalGet(0);
  f.Else();
  f.LocalGet(0);
  f.I32Const(1);
  f.Emit(Op::kI32Sub);
  f.Call(f.index());
  f.LocalGet(0);
  f.I32Const(2);
  f.Emit(Op::kI32Sub);
  f.Call(f.index());
  f.Emit(Op::kI32Add);
  f.End();
  f.End();
  auto instance = MustInstantiate(b);
  EXPECT_EQ(CallI32(*instance, "fib", {MakeI32(10)}), 55u);
  EXPECT_EQ(CallI32(*instance, "fib", {MakeI32(20)}), 6765u);
}

TEST(InterpreterTest, IterativeFactorialWithLoop) {
  ModuleBuilder b;
  auto& f = b.AddFunction("fact", {ValType::kI32}, {ValType::kI64});
  uint32_t acc = f.AddLocal(ValType::kI64);
  uint32_t i = f.AddLocal(ValType::kI32);
  f.I64Const(1);
  f.LocalSet(acc);
  f.ForLocalLimit(i, 1, 0 /*limit = param 0*/, [&] {
    f.LocalGet(acc);
    f.LocalGet(i);
    f.Emit(Op::kI64ExtendI32S);
    f.Emit(Op::kI64Mul);
    f.LocalSet(acc);
  });
  // multiply by n itself (loop ran i in [1, n))
  f.LocalGet(acc);
  f.LocalGet(0);
  f.Emit(Op::kI64ExtendI32S);
  f.Emit(Op::kI64Mul);
  f.End();
  auto instance = MustInstantiate(b);
  auto out = instance->CallExport("fact", {MakeI32(10)});
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out.value()[0].i64, 3628800u);
}

TEST(InterpreterTest, HostImportCalled) {
  ModuleBuilder b;
  uint32_t host = b.ImportFunction("env", "triple", {ValType::kI32}, {ValType::kI32});
  auto& f = b.AddFunction("run", {ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.Call(host);
  f.I32Const(1);
  f.Emit(Op::kI32Add);
  f.End();

  MapImportResolver resolver;
  int call_count = 0;
  resolver.Register("env", "triple",
                    [&call_count](Instance&, const Value* args, size_t n, Value* results) {
                      EXPECT_EQ(n, 1u);
                      results[0] = MakeI32(args[0].i32 * 3);
                      ++call_count;
                      return OkStatus();
                    });
  auto instance = MustInstantiate(b, &resolver);
  EXPECT_EQ(CallI32(*instance, "run", {MakeI32(5)}), 16u);
  EXPECT_EQ(call_count, 1);
}

TEST(InterpreterTest, UnresolvedImportFailsInstantiation) {
  ModuleBuilder b;
  b.ImportFunction("env", "missing", {}, {});
  auto& f = b.AddFunction("run", {}, {});
  f.End();
  MapImportResolver resolver;
  auto instance = Instance::Create(MustCompile(b), &resolver);
  EXPECT_FALSE(instance.ok());
}

TEST(InterpreterTest, HostErrorBecomesTrap) {
  ModuleBuilder b;
  uint32_t host = b.ImportFunction("env", "fail", {}, {});
  auto& f = b.AddFunction("run", {}, {});
  f.Call(host);
  f.End();
  MapImportResolver resolver;
  resolver.Register("env", "fail", [](Instance&, const Value*, size_t, Value*) {
    return Internal("boom");
  });
  auto instance = MustInstantiate(b, &resolver);
  auto out = instance->CallExport("run", {});
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(IsTrap(out.status()));
}

TEST(InterpreterTest, GlobalsReadWrite) {
  ModuleBuilder b;
  uint32_t g = b.AddGlobal(ValType::kI32, true, MakeI32(100));
  auto& bump = b.AddFunction("bump", {}, {ValType::kI32});
  bump.GlobalGet(g);
  bump.I32Const(1);
  bump.Emit(Op::kI32Add);
  bump.GlobalSet(g);
  bump.GlobalGet(g);
  bump.End();
  auto instance = MustInstantiate(b);
  EXPECT_EQ(CallI32(*instance, "bump", {}), 101u);
  EXPECT_EQ(CallI32(*instance, "bump", {}), 102u);
  EXPECT_EQ(instance->globals()[0].i32, 102u);
}

TEST(InterpreterTest, CallIndirectDispatch) {
  ModuleBuilder b;
  auto& f1 = b.AddFunction("", {ValType::kI32}, {ValType::kI32});
  f1.LocalGet(0);
  f1.I32Const(10);
  f1.Emit(Op::kI32Add);
  f1.End();
  auto& f2 = b.AddFunction("", {ValType::kI32}, {ValType::kI32});
  f2.LocalGet(0);
  f2.I32Const(100);
  f2.Emit(Op::kI32Mul);
  f2.End();
  b.AddTable(2);
  b.AddElementSegment(0, {f1.index(), f2.index()});

  uint32_t type = b.AddType({ValType::kI32}, {ValType::kI32});
  auto& dispatch = b.AddFunction("dispatch", {ValType::kI32, ValType::kI32}, {ValType::kI32});
  dispatch.LocalGet(1);  // argument
  dispatch.LocalGet(0);  // table slot
  dispatch.CallIndirect(type);
  dispatch.End();

  auto instance = MustInstantiate(b);
  EXPECT_EQ(CallI32(*instance, "dispatch", {MakeI32(0), MakeI32(5)}), 15u);
  EXPECT_EQ(CallI32(*instance, "dispatch", {MakeI32(1), MakeI32(5)}), 500u);
}

TEST(InterpreterTest, CallIndirectTraps) {
  ModuleBuilder b;
  auto& f1 = b.AddFunction("", {}, {});  // () -> ()
  f1.End();
  b.AddTable(4);
  b.AddElementSegment(0, {f1.index()});

  uint32_t wrong_type = b.AddType({}, {ValType::kI32});
  auto& bad_sig = b.AddFunction("bad_sig", {}, {ValType::kI32});
  bad_sig.I32Const(0);
  bad_sig.CallIndirect(wrong_type);
  bad_sig.End();

  uint32_t void_type = b.AddType({}, {});
  auto& null_slot = b.AddFunction("null_slot", {}, {});
  null_slot.I32Const(2);  // in table but never initialised
  null_slot.CallIndirect(void_type);
  null_slot.End();

  auto& oob_slot = b.AddFunction("oob_slot", {}, {});
  oob_slot.I32Const(99);
  oob_slot.CallIndirect(void_type);
  oob_slot.End();

  auto instance = MustInstantiate(b);
  auto r1 = instance->CallExport("bad_sig", {});
  ASSERT_FALSE(r1.ok());
  EXPECT_NE(r1.status().message().find("type mismatch"), std::string::npos);
  auto r2 = instance->CallExport("null_slot", {});
  ASSERT_FALSE(r2.ok());
  EXPECT_NE(r2.status().message().find("uninitialized"), std::string::npos);
  auto r3 = instance->CallExport("oob_slot", {});
  ASSERT_FALSE(r3.ok());
  EXPECT_NE(r3.status().message().find("undefined"), std::string::npos);
}

TEST(InterpreterTest, DeepRecursionTrapsNotCrashes) {
  ModuleBuilder b;
  auto& f = b.AddFunction("inf", {}, {});
  f.Call(f.index());
  f.End();
  auto instance = MustInstantiate(b);
  auto out = instance->CallExport("inf", {});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("call stack exhausted"), std::string::npos);
}

TEST(InterpreterTest, FuelLimitStopsInfiniteLoop) {
  ModuleBuilder b;
  auto& f = b.AddFunction("spin", {}, {});
  f.Loop();
  f.Br(0);
  f.End();
  f.End();
  auto instance = MustInstantiate(b);
  instance->set_fuel_limit(10000);
  auto out = instance->CallExport("spin", {});
  ASSERT_FALSE(out.ok());
  EXPECT_NE(out.status().message().find("fuel"), std::string::npos);
  EXPECT_GT(instance->instructions_retired(), 0u);
}

TEST(InterpreterTest, UnreachableTraps) {
  ModuleBuilder b;
  auto& f = b.AddFunction("die", {}, {});
  f.Unreachable();
  f.End();
  auto instance = MustInstantiate(b);
  auto out = instance->CallExport("die", {});
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(IsTrap(out.status()));
}

TEST(InterpreterTest, StartFunctionRuns) {
  ModuleBuilder b;
  uint32_t g = b.AddGlobal(ValType::kI32, true, MakeI32(0));
  auto& init = b.AddFunction("", {}, {});
  init.I32Const(77);
  init.GlobalSet(g);
  init.End();
  b.SetStart(init.index());
  auto& get = b.AddFunction("get", {}, {ValType::kI32});
  get.GlobalGet(g);
  get.End();
  auto instance = MustInstantiate(b);
  EXPECT_EQ(CallI32(*instance, "get", {}), 77u);
}

TEST(InterpreterTest, DataSegmentsApplied) {
  ModuleBuilder b;
  b.AddMemory(1, 1);
  b.AddData(64, Bytes{0xAA, 0xBB, 0xCC});
  auto& load = b.AddFunction("load", {ValType::kI32}, {ValType::kI32});
  load.LocalGet(0);
  load.Load(Op::kI32Load8U);
  load.End();
  auto instance = MustInstantiate(b);
  EXPECT_EQ(CallI32(*instance, "load", {MakeI32(64)}), 0xAAu);
  EXPECT_EQ(CallI32(*instance, "load", {MakeI32(66)}), 0xCCu);
  EXPECT_EQ(CallI32(*instance, "load", {MakeI32(67)}), 0u);
}

TEST(InterpreterTest, WrongArgumentCountRejected) {
  ModuleBuilder b;
  auto& f = b.AddFunction("one", {ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.End();
  auto instance = MustInstantiate(b);
  EXPECT_FALSE(instance->CallExport("one", {}).ok());
  EXPECT_FALSE(instance->CallExport("one", {MakeI32(1), MakeI32(2)}).ok());
  EXPECT_FALSE(instance->CallExport("nope", {}).ok());
}

TEST(InterpreterTest, ExternalMemoryShared) {
  auto memory = LinearMemory::Create(1, 16);
  ASSERT_TRUE(memory.ok());
  ModuleBuilder b;
  b.AddMemory(1, 16);
  auto& store = b.AddFunction("store", {ValType::kI32, ValType::kI32}, {});
  store.LocalGet(0);
  store.LocalGet(1);
  store.Store(Op::kI32Store);
  store.End();
  auto instance = Instance::Create(MustCompile(b), nullptr, memory.value().get());
  ASSERT_TRUE(instance.ok());
  auto out = instance.value()->CallExport("store", {MakeI32(8), MakeI32(0x1234)});
  ASSERT_TRUE(out.ok());
  uint32_t v = 0;
  ASSERT_TRUE(memory.value()->Read(8, &v, 4).ok());
  EXPECT_EQ(v, 0x1234u);
}

}  // namespace
}  // namespace faasm::wasm
