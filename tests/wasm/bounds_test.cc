// Out-of-bounds boundary tests for the guest memory tiers: every load/store
// width probed at the last-valid and first-invalid byte, with and without a
// nonzero static offset, plus addr+offset combinations that overflow 32 bits.
// Each probe runs under every (bounds, dispatch) tier combination and must
// agree exactly — same ok/trap outcome, same trap kind. The guard-page tier
// has no inline bounds branches, so these tests are the proof that the
// SIGSEGV-to-trap conversion reproduces the checked tier's semantics at the
// byte level.
//
// Deliberately NOT tested: memory contents after a trapped store. The guard
// tier may have written the in-bounds prefix of a frontier-straddling store
// before faulting; the checked tier writes nothing. The spec allows either.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "mem/linear_memory.h"
#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/instance.h"

namespace faasm::wasm {
namespace {

struct Tier {
  GuestBounds bounds;
  GuestDispatch dispatch;
  const char* name;
};

const Tier kTiers[] = {
    {GuestBounds::kChecked, GuestDispatch::kSwitch, "checked/switch"},
    {GuestBounds::kChecked, GuestDispatch::kThreaded, "checked/threaded"},
    {GuestBounds::kGuardPage, GuestDispatch::kSwitch, "guard/switch"},
    {GuestBounds::kGuardPage, GuestDispatch::kThreaded, "guard/threaded"},
};

// One memory access shape: the op, its access width, and whether it stores.
struct AccessCase {
  Op op;
  uint32_t len;
  bool is_store;
  const char* name;
};

const AccessCase kAccesses[] = {
    {Op::kI32Load, 4, false, "i32.load"},
    {Op::kI64Load, 8, false, "i64.load"},
    {Op::kF32Load, 4, false, "f32.load"},
    {Op::kF64Load, 8, false, "f64.load"},
    {Op::kI32Load8S, 1, false, "i32.load8_s"},
    {Op::kI32Load8U, 1, false, "i32.load8_u"},
    {Op::kI32Load16S, 2, false, "i32.load16_s"},
    {Op::kI32Load16U, 2, false, "i32.load16_u"},
    {Op::kI64Load8S, 1, false, "i64.load8_s"},
    {Op::kI64Load8U, 1, false, "i64.load8_u"},
    {Op::kI64Load16S, 2, false, "i64.load16_s"},
    {Op::kI64Load16U, 2, false, "i64.load16_u"},
    {Op::kI64Load32S, 4, false, "i64.load32_s"},
    {Op::kI64Load32U, 4, false, "i64.load32_u"},
    {Op::kI32Store, 4, true, "i32.store"},
    {Op::kI64Store, 8, true, "i64.store"},
    {Op::kF32Store, 4, true, "f32.store"},
    {Op::kF64Store, 8, true, "f64.store"},
    {Op::kI32Store8, 1, true, "i32.store8"},
    {Op::kI32Store16, 2, true, "i32.store16"},
    {Op::kI64Store8, 1, true, "i64.store8"},
    {Op::kI64Store16, 2, true, "i64.store16"},
    {Op::kI64Store32, 4, true, "i64.store32"},
};

// Pushes a stored value of the type `op` expects.
void EmitStoreValue(FunctionBuilder& f, Op op) {
  switch (op) {
    case Op::kI64Store:
    case Op::kI64Store8:
    case Op::kI64Store16:
    case Op::kI64Store32:
      f.I64Const(-1);
      break;
    case Op::kF32Store:
      f.F32Const(1.5f);
      break;
    case Op::kF64Store:
      f.F64Const(2.5);
      break;
    default:
      f.I32Const(-1);
      break;
  }
}

// Builds a one-page module whose export "f"(addr: i32) performs `op` at
// addr+offset, and instantiates it under `tier`.
std::unique_ptr<Instance> MakeProbe(const AccessCase& access, uint32_t offset,
                                    const Tier& tier) {
  ModuleBuilder b;
  b.AddMemory(1, 1);  // exactly one page: the frontier is kWasmPageBytes
  auto& f = b.AddFunction("f", {ValType::kI32}, {});
  f.LocalGet(0);
  if (access.is_store) {
    EmitStoreValue(f, access.op);
    f.Store(access.op, offset);
  } else {
    f.Load(access.op, offset);
    f.Drop();
  }
  auto decoded = DecodeModule(b.Build());
  EXPECT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto compiled = CompileModule(std::move(decoded).value());
  EXPECT_TRUE(compiled.ok()) << compiled.status().ToString();
  InstanceOptions options;
  options.bounds = tier.bounds;
  options.dispatch = tier.dispatch;
  auto instance = Instance::Create(compiled.value(), nullptr, nullptr, options);
  EXPECT_TRUE(instance.ok()) << instance.status().ToString();
  return std::move(instance).value();
}

// Runs the probe at `addr` and asserts the expected outcome; OOB must be the
// kMemoryOutOfBounds trap specifically (not fuel, not a host error).
void Probe(Instance& instance, uint32_t addr, bool expect_ok,
           const std::string& context) {
  auto out = instance.CallExport("f", {MakeI32(static_cast<int32_t>(addr))});
  if (expect_ok) {
    EXPECT_TRUE(out.ok()) << context << ": " << out.status().ToString();
  } else {
    ASSERT_FALSE(out.ok()) << context << ": access unexpectedly succeeded";
    EXPECT_NE(out.status().message().find("out of bounds memory access"),
              std::string::npos)
        << context << ": wrong trap: " << out.status().ToString();
  }
}

TEST(BoundsTest, EveryWidthAtTheFrontier) {
  for (const auto& access : kAccesses) {
    for (const auto& tier : kTiers) {
      auto instance = MakeProbe(access, /*offset=*/0, tier);
      ASSERT_NE(instance, nullptr);
      const std::string context =
          std::string(access.name) + " under " + tier.name;
      const uint32_t last_valid = kWasmPageBytes - access.len;
      Probe(*instance, 0, true, context + " @0");
      Probe(*instance, last_valid, true, context + " @last-valid");
      Probe(*instance, last_valid + 1, false, context + " @first-invalid");
      Probe(*instance, kWasmPageBytes, false, context + " @frontier");
    }
  }
}

TEST(BoundsTest, NonzeroStaticOffset) {
  constexpr uint32_t kOffset = 4096 + 3;  // page-crossing, unaligned
  for (const auto& access : kAccesses) {
    for (const auto& tier : kTiers) {
      auto instance = MakeProbe(access, kOffset, tier);
      ASSERT_NE(instance, nullptr);
      const std::string context = std::string(access.name) + " offset=" +
                                  std::to_string(kOffset) + " under " +
                                  tier.name;
      const uint32_t last_valid = kWasmPageBytes - kOffset - access.len;
      Probe(*instance, last_valid, true, context + " @last-valid");
      Probe(*instance, last_valid + 1, false, context + " @first-invalid");
    }
  }
}

TEST(BoundsTest, AddrPlusOffsetOverflows32Bits) {
  // addr + offset exceeding 2^32 must trap, not wrap back into the heap. The
  // guard tier relies on the reservation covering the full u32+u32 range
  // (LinearMemory::kReservationBytes > 2^33), so the farthest reachable
  // effective address still lands on PROT_NONE pages.
  constexpr uint32_t kMaxU32 = 0xFFFFFFFFu;
  for (const auto& tier : kTiers) {
    const std::string context = std::string("overflow under ") + tier.name;
    {
      auto instance = MakeProbe(kAccesses[0], /*offset=*/kMaxU32, tier);
      ASSERT_NE(instance, nullptr);
      Probe(*instance, kMaxU32, false, context + " (load max+max)");
      Probe(*instance, 0, false, context + " (load 0+max)");
    }
    {
      // i64.store: the widest store at the farthest effective address.
      auto instance = MakeProbe(kAccesses[15], /*offset=*/kMaxU32, tier);
      ASSERT_NE(instance, nullptr);
      Probe(*instance, kMaxU32, false, context + " (store max+max)");
    }
    {
      auto instance = MakeProbe(kAccesses[0], /*offset=*/0, tier);
      ASSERT_NE(instance, nullptr);
      Probe(*instance, kMaxU32, false, context + " (load max+0)");
    }
  }
}

TEST(BoundsTest, TiersAgreeOnEveryBoundaryProbe) {
  // Byte-exact cross-tier agreement: sweep a window of addresses around the
  // frontier for a representative op set and require the identical ok/trap
  // verdict from all four tier combinations at every address.
  const AccessCase sweep_ops[] = {kAccesses[0], kAccesses[1], kAccesses[14],
                                  kAccesses[15], kAccesses[18]};
  for (const auto& access : sweep_ops) {
    std::vector<std::unique_ptr<Instance>> instances;
    for (const auto& tier : kTiers) {
      instances.push_back(MakeProbe(access, /*offset=*/8, tier));
      ASSERT_NE(instances.back(), nullptr);
    }
    for (uint32_t addr = kWasmPageBytes - 24; addr < kWasmPageBytes + 8;
         ++addr) {
      const auto base = instances[0]->CallExport(
          "f", {MakeI32(static_cast<int32_t>(addr))});
      for (size_t t = 1; t < instances.size(); ++t) {
        const auto out = instances[t]->CallExport(
            "f", {MakeI32(static_cast<int32_t>(addr))});
        EXPECT_EQ(base.ok(), out.ok())
            << access.name << " @" << addr << ": " << kTiers[0].name
            << " vs " << kTiers[t].name;
        if (!base.ok() && !out.ok()) {
          EXPECT_EQ(base.status().message(), out.status().message())
              << access.name << " @" << addr;
        }
      }
    }
  }
}

TEST(BoundsTest, GuardTierStillTrapsAfterGrow) {
  // memory.grow moves the frontier; the guard tier's reservation is fixed, so
  // newly committed pages become accessible and the trap line moves with the
  // logical size — no re-arming required.
  ModuleBuilder b;
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("f", {ValType::kI32}, {ValType::kI32});
  f.LocalGet(0);
  f.Load(Op::kI32Load, 0);
  auto& g = b.AddFunction("grow", {}, {ValType::kI32});
  g.I32Const(1);
  g.MemoryGrow();
  auto decoded = DecodeModule(b.Build());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  auto compiled = CompileModule(std::move(decoded).value());
  ASSERT_TRUE(compiled.ok()) << compiled.status().ToString();
  for (const auto& tier : kTiers) {
    InstanceOptions options;
    options.bounds = tier.bounds;
    options.dispatch = tier.dispatch;
    auto instance = Instance::Create(compiled.value(), nullptr, nullptr, options);
    ASSERT_TRUE(instance.ok()) << instance.status().ToString();
    auto& inst = *instance.value();
    Probe(inst, kWasmPageBytes, false, std::string("pre-grow ") + tier.name);
    auto grew = inst.CallExport("grow", {});
    ASSERT_TRUE(grew.ok()) << grew.status().ToString();
    ASSERT_EQ(grew.value()[0].i32, 1);  // old size in pages
    Probe(inst, kWasmPageBytes, true, std::string("post-grow ") + tier.name);
    Probe(inst, 2 * kWasmPageBytes, false,
          std::string("post-grow frontier ") + tier.name);
  }
}

}  // namespace
}  // namespace faasm::wasm
