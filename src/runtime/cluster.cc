#include "runtime/cluster.h"

#include <chrono>
#include <thread>

namespace faasm {

FaasmCluster::FaasmCluster(ClusterConfig config)
    : config_(config),
      network_(std::make_unique<InProcNetwork>(&executor_.clock(), config.network)),
      calls_(&executor_.clock()) {
  const bool sharded = config.state_tier == StateTier::kSharded;
  if (sharded) {
    // Replication substrate first: RegisterShard attaches each host to it
    // as the shard appears, so backups exist before any traffic does.
    if (config.replication_factor > 1) {
      ReplicationConfig replication_config;
      replication_config.factor = config.replication_factor;
      replication_config.sync = config.replication_sync;
      replication_config.max_lag_ops = config.replication_max_lag_ops;
      replication_config.async_lag_bound_ns = config.replication_async_lag_bound_ns;
      replication_ = std::make_unique<ReplicationManager>(network_.get(), &shard_map_,
                                                          &shard_stores_, replication_config);
      // The map answers HoldersFor (scheduler placement, client holder
      // memoisation) with the same factor the substrate replicates at.
      shard_map_.set_replication_factor(config.replication_factor);
    }
    // One shard per host, mastered by consistent hashing. Each host serves
    // its shard on "kvs:<host>" (the FaasmInstance registers the server).
    for (int i = 0; i < config.hosts; ++i) {
      RegisterShard("host-" + std::to_string(i));
      shard_map_.AddShard(ShardMap::EndpointForHost("host-" + std::to_string(i)));
    }
  } else {
    // Centralised baseline: every key is mastered by the standalone "kvs"
    // endpoint, which is co-located with no host — all tier traffic crosses
    // the network, exactly the pre-sharding serialisation point.
    kvs_shards_.push_back(std::make_unique<KvStore>());
    shard_map_.AddShard("kvs");
    kvs_.AddStore("kvs", kvs_shards_.back().get());
    central_kvs_server_ =
        std::make_unique<KvsServer>(kvs_shards_.back().get(), network_.get());
  }
  kvs_.Attach(&shard_map_);
  if (replication_ != nullptr) {
    // Seeding writes through the direct view get backups too, via the
    // in-process mirror (no network, no clock — seeding threads are
    // typically not registered with the simulation).
    kvs_.SetMutationObserver(
        [this](const std::string& key) { replication_->MirrorKey(key); });
  }

  if (config.failure_detection) {
    // Detector before the hosts: MakeHost reads its endpoint into every
    // HostConfig so heartbeat activities have a mailbox from their first
    // beat.
    FailureDetectorConfig detector_config;
    detector_config.heartbeat_interval_ns = config.heartbeat_interval_ns;
    detector_config.suspicion_timeout_ns = config.suspicion_timeout_ns;
    detector_ = std::make_unique<FailureDetector>(
        network_.get(), &executor_.clock(), detector_config,
        [this](const std::string& host) { HandleConfirmedDeath(host); });
  }

  for (int i = 0; i < config.hosts; ++i) {
    const std::string name = "host-" + std::to_string(next_host_index_++);
    hosts_.push_back(MakeHost(name, sharded ? kvs_shards_[i].get() : nullptr));
  }
  for (auto& host : hosts_) {
    host->Start();
    if (detector_ != nullptr) {
      detector_->Track(host->name());
    }
  }
  if (detector_ != nullptr) {
    executor_.Spawn([this] { detector_->Run(); });
  }
}

FaasmCluster::~FaasmCluster() { Shutdown(); }

KvStore* FaasmCluster::RegisterShard(const std::string& name) {
  const std::string endpoint = ShardMap::EndpointForHost(name);
  kvs_shards_.push_back(std::make_unique<KvStore>());
  KvStore* store = kvs_shards_.back().get();
  {
    // PrimaryKeySeq reads this map from client threads; every other reader
    // already serialises against this insert via membership_lock_.
    std::lock_guard<std::mutex> guard(shard_stores_mutex_);
    shard_stores_[endpoint] = store;
  }
  kvs_.AddStore(endpoint, store);
  // Live-map ownership guard: an op that reaches this store for a key it
  // does not master under the CURRENT epoch — a straggler that resolved its
  // route before a membership change, even on the in-process fast path —
  // bounces with kWrongMaster and re-routes.
  store->SetOwnershipGuard([map = &shard_map_, endpoint](const std::string& key) {
    return map->MasterFor(key) == endpoint;
  });
  if (replication_ != nullptr) {
    replication_->AttachHost(name, store);
  }
  return store;
}

std::unique_ptr<FaasmInstance> FaasmCluster::MakeHost(const std::string& name,
                                                      KvStore* local_shard) {
  HostConfig host_config;
  host_config.name = name;
  host_config.cores = config_.cores_per_host;
  host_config.memory_bytes = config_.host_memory_bytes;
  host_config.max_concurrent_calls = config_.max_concurrent_per_host;
  host_config.warm_set_ttl_ns = config_.warm_set_ttl_ns;
  host_config.batch_state_ops = config_.batch_state_ops;
  host_config.batch_state_reads = config_.batch_state_reads;
  host_config.read_cache = config_.read_cache;
  host_config.read_lease_ns = config_.read_lease_ns;
  host_config.replica_reads = config_.replica_reads;
  if (detector_ != nullptr) {
    host_config.failure_detector_endpoint = detector_->config().endpoint;
    host_config.heartbeat_interval_ns = config_.heartbeat_interval_ns;
    host_config.suspicion_timeout_ns = config_.suspicion_timeout_ns;
  }
  auto host = std::make_unique<FaasmInstance>(host_config, &executor_, network_.get(), &registry_,
                                              &calls_, &files_, &shard_map_, local_shard);
  if (detector_ != nullptr) {
    // Client evidence feeds detection: every kUnavailable bounce this host's
    // ops see schedules a corroborating probe on the detector's next sweep.
    FailureDetector* detector = detector_.get();
    host->kvs().SetSuspicionHook(
        [detector](const std::string& endpoint) { detector->ReportSuspicion(endpoint); });
  }
  if (replication_ != nullptr && host_config.replica_reads) {
    // Tier two of the read path: hand the client its co-located mirror so
    // reads of keys this host backs are served in-process. The async
    // freshness probe models seq metadata the replication channel already
    // piggybacks, so it crosses no accounted network.
    KvsClient::ReplicaReadConfig replica_config;
    replica_config.replica = replication_->ReplicaForHost(name);
    replica_config.factor = config_.replication_factor;
    replica_config.sync = config_.replication_sync;
    replica_config.async_lag_bound_ns = config_.replication_async_lag_bound_ns;
    replica_config.primary_seq = [this](const std::string& key) { return PrimaryKeySeq(key); };
    host->kvs().EnableReplicaReads(std::move(replica_config));
  }
  return host;
}

uint64_t FaasmCluster::PrimaryKeySeq(const std::string& key) {
  const std::string master = shard_map_.MasterFor(key);
  KvStore* store = nullptr;
  {
    std::lock_guard<std::mutex> guard(shard_stores_mutex_);
    if (auto it = shard_stores_.find(master); it != shard_stores_.end()) {
      store = it->second;
    }
  }
  if (store == nullptr) {
    return ~uint64_t{0};  // unresolvable master: force the fall-through
  }
  return store->KeySeq(key);
}

Result<std::string> FaasmCluster::AddHost() {
  PollLock::WriteGuard membership(membership_lock_);
  const bool sharded = config_.state_tier == StateTier::kSharded;
  const std::string name = "host-" + std::to_string(next_host_index_++);

  KvStore* shard = sharded ? RegisterShard(name) : nullptr;

  // Start the instance first: its shard server must be registered before
  // the migration streams keys at it. Until the epoch flips the new shard
  // masters nothing, so no regular traffic reaches it early.
  std::unique_ptr<FaasmInstance> host = MakeHost(name, shard);
  host->Start();

  if (sharded) {
    ShardMigrator migrator(network_.get(), &shard_map_, &shard_stores_);
    auto stats = migrator.AddShard(ShardMap::EndpointForHost(name));
    if (!stats.ok()) {
      // The instance must outlive its dispatcher activity (joined at
      // Shutdown), so park it retired instead of destroying it here.
      host->CloseIntake();
      host->Stop();
      retired_hosts_.push_back(std::move(host));
      return stats.status();
    }
    migration_stats_ += stats.value();
    if (replication_ != nullptr) {
      // The new epoch rotated some backup assignments: catch the new
      // backups up and reclaim copies the old assignment left behind.
      replication_->Reconcile();
    }
  }

  // Only now expose the host to frontend round-robin (and the detector:
  // Track starts the suspicion window at now, so the new host has a full
  // timeout before its first heartbeat is due).
  if (detector_ != nullptr) {
    detector_->Track(name);
  }
  hosts_.push_back(std::move(host));
  return name;
}

Status FaasmCluster::RemoveHost(const std::string& name) {
  PollLock::WriteGuard membership(membership_lock_);
  auto it = hosts_.begin();
  for (; it != hosts_.end(); ++it) {
    if ((*it)->name() == name) {
      break;
    }
  }
  if (it == hosts_.end()) {
    return NotFound("cluster: no host named '" + name + "'");
  }
  if (hosts_.size() <= 1) {
    return FailedPrecondition("cluster: cannot remove the last host");
  }

  // Stand the detector down FIRST: removal stops the host's heartbeats and
  // (at CloseIntake) unregisters its probe endpoint, which an armed
  // detector would read as a crash and fail over a host that is handing its
  // keys off cleanly.
  if (detector_ != nullptr) {
    detector_->Forget(name);
  }

  // Take the host out of frontend rotation, then drain: it withdraws from
  // every warm set (peers stop sharing work here) and its in-flight calls —
  // plus whatever its mailbox already holds — run down.
  std::unique_ptr<FaasmInstance> host = std::move(*it);
  hosts_.erase(it);
  host->BeginDrain();
  executor_.clock().WaitFor([&] { return host->Drained(); });

  // Hand every key the departing shard masters to the survivors, flipping
  // the epoch. Ops racing the handoff bounce (kWrongMaster) and retry
  // against the new route; held locks travel with their keys.
  if (config_.state_tier == StateTier::kSharded) {
    ShardMigrator migrator(network_.get(), &shard_map_, &shard_stores_);
    auto stats = migrator.RemoveShard(ShardMap::EndpointForHost(name));
    if (!stats.ok()) {
      // Migration abandoned pre-flip: the shard is still in the map, so the
      // host must keep serving. Restore it fully — back into rotation,
      // re-advertising its warm pools, re-armed in the detector — and leave
      // the removal retryable.
      host->CancelDrain();
      if (detector_ != nullptr) {
        detector_->Track(name);
      }
      hosts_.push_back(std::move(host));
      return stats.status();
    }
    migration_stats_ += stats.value();
    if (replication_ != nullptr) {
      replication_->Reconcile();
    }
  }

  // Close intake and drain AGAIN: a peer with a stale warm-set view may
  // have enqueued work between the first drain and now (its sends
  // succeeded, so it did not fall back); the dispatcher must poll those
  // calls out before it stops, or they would be acknowledged yet never run.
  // After CloseIntake new sends fail fast at the sender, so the mailbox
  // can only shrink.
  host->CloseIntake();
  executor_.clock().WaitFor([&] { return host->Drained(); });

  // Retire: the instance object stays alive (inert) for pending Awaits and
  // cumulative metrics until Shutdown, but its memory goes back to the
  // accountant now — a removed host must stop accruing billable GB-seconds.
  host->Stop();
  host->ReleaseRetiredMemory();
  retired_hosts_.push_back(std::move(host));
  return OkStatus();
}

Result<FailoverStats> FaasmCluster::KillHost(const std::string& name) {
  PollLock::WriteGuard membership(membership_lock_);
  auto it = hosts_.begin();
  for (; it != hosts_.end(); ++it) {
    if ((*it)->name() == name) {
      break;
    }
  }
  if (it == hosts_.end()) {
    return NotFound("cluster: no host named '" + name + "'");
  }
  if (hosts_.size() <= 1) {
    return FailedPrecondition("cluster: cannot kill the last host");
  }

  std::unique_ptr<FaasmInstance> host = std::move(*it);
  hosts_.erase(it);

  // The oracle handles this death itself: stand the detector down so its
  // eventual probe failure does not race a second recovery (Recover is
  // idempotent anyway; Forget just saves the detector the probe).
  if (detector_ != nullptr) {
    detector_->Forget(name);
  }

  // The crash: every endpoint the host serves vanishes at once and nothing
  // in its mailbox will ever run — fail those calls now so their Awaits
  // return an error instead of hanging. In-flight executions are zombies:
  // they run to completion but the cluster no longer routes anything at
  // them.
  host->Kill();
  host->FailAbandonedMail();

  FailoverStats stats = RecoverDeadShardLocked(name);

  // Retire the corpse. Unlike graceful removal, its memory is NOT released:
  // zombie executions may still be accounting against it, and a crashed
  // host's bill stopping instantly is an accounting fiction anyway.
  retired_hosts_.push_back(std::move(host));
  return stats;
}

Status FaasmCluster::CrashHost(const std::string& name) {
  PollLock::WriteGuard membership(membership_lock_);
  auto it = hosts_.begin();
  for (; it != hosts_.end(); ++it) {
    if ((*it)->name() == name) {
      break;
    }
  }
  if (it == hosts_.end()) {
    return NotFound("cluster: no host named '" + name + "'");
  }
  if (hosts_.size() <= 1) {
    return FailedPrecondition("cluster: cannot crash the last host");
  }

  // The plug, pulled: same abrupt death as KillHost, but NOTHING downstream
  // is told. The shard map still routes at the corpse (ops bounce
  // kUnavailable and retry), the backup sets still list it, and recovery
  // starts only when the failure detector confirms the silence. The
  // detector is deliberately NOT told either — noticing is its job.
  std::unique_ptr<FaasmInstance> host = std::move(*it);
  hosts_.erase(it);
  host->Kill();
  host->FailAbandonedMail();
  // The machine's MEMORY died with it: seal both of its stores now, exactly
  // as the recovery fence will again later. Without this, the corpse's own
  // zombie executions keep the in-process fast path into its primary store
  // — and when an overlapping failover transiently re-masters a key onto
  // the (unconfirmed-dead) corpse, a zombie's lock/unlock applies against a
  // store that never held the key's promoted state, silently corrupting
  // lock ownership (a lock released into the void is held forever).
  // Fencing makes every such op bounce kWrongMaster and retry until the
  // detector-driven failover routes it at the promoted copy. The mirror
  // fence also drops its backup copies, so no later failover can promote
  // from memory that no longer exists.
  if (config_.state_tier == StateTier::kSharded) {
    if (auto store = shard_stores_.find(ShardMap::EndpointForHost(name));
        store != shard_stores_.end()) {
      store->second->SetMigrationFilter([](const std::string&) { return true; });
    }
    if (replication_ != nullptr) {
      replication_->FenceHost(name);
    }
  }
  retired_hosts_.push_back(std::move(host));
  return OkStatus();
}

void FaasmCluster::HandleConfirmedDeath(const std::string& name) {
  // Runs on the detector activity. The membership lock serialises this
  // recovery against concurrent AddHost/RemoveHost/KillHost flows (all of
  // which sleep virtual time inside — hence a PollLock).
  PollLock::WriteGuard membership(membership_lock_);
  RecoverDeadShardLocked(name);
}

FailoverStats FaasmCluster::RecoverDeadShardLocked(const std::string& name) {
  FailoverStats stats;
  if (!recovered_hosts_.insert(name).second) {
    return stats;  // the other path (oracle vs detection) got here first
  }
  const TimeNs start = executor_.clock().Now();

  if (config_.state_tier == StateTier::kSharded) {
    const std::string endpoint = ShardMap::EndpointForHost(name);
    KvStore* dead_store = shard_stores_[endpoint];
    // Fence the corpse — BOTH of its stores, before anything is promoted:
    //   - its primary shard: a zombie execution that already resolved its
    //     route at the dead shard must not mutate state the failover is
    //     about to snapshot — from here every op on it bounces kWrongMaster;
    //   - its replica mirror: backups it held for OTHER shards are dropped
    //     and rejected from now on, so no later failover can promote from a
    //     corpse (Reconcile below re-homes them onto live backups).
    dead_store->SetMigrationFilter([](const std::string&) { return true; });
    if (replication_ != nullptr) {
      replication_->FenceHost(name);
    }
    // Quiesce: mutations that passed the fence before it went up finish
    // under the shard mutexes; wait them out so the promotion below reads a
    // stable store.
    executor_.clock().WaitFor([&] { return dead_store->inflight_mutations() == 0; });

    if (replication_ != nullptr) {
      // Promote every key the dead shard mastered from a surviving backup
      // into its post-failover master, then flip the epoch (inside
      // Failover). Clients recover through the ordinary kWrongMaster /
      // kUnavailable bounce; the (key, epoch)-keyed read cache invalidates
      // implicitly at the flip.
      stats = replication_->Failover(endpoint);
      // Restore the invariant the crash broke: every surviving shard has
      // R-1 live backups again (the promoted keys' new masters included).
      replication_->Reconcile();
    } else {
      // No replication: the dead shard's keys have no other copy. Count
      // them as lost, erase the corpse (hygiene — the store object stays
      // allocated so stragglers bounce on the fence) and flip the epoch so
      // survivors re-master the keyspace.
      for (const auto& key : dead_store->Keys()) {
        ++stats.lost_keys;
        dead_store->EraseKey(key);
      }
      shard_map_.RemoveShard(endpoint);
      stats.epoch = shard_map_.epoch();
    }
  }
  stats.duration_ns = executor_.clock().Now() - start;
  failover_stats_ += stats;
  return stats;
}

void FaasmCluster::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  if (detector_ != nullptr) {
    detector_->Stop();
  }
  for (auto& host : hosts_) {
    host->Stop();
  }
  for (auto& host : retired_hosts_) {
    host->Stop();
  }
  executor_.JoinAll();
}

void FaasmCluster::Run(const std::function<void(Frontend&)>& driver) {
  std::atomic<bool> done{false};
  executor_.Spawn([this, &driver, &done] {
    Frontend frontend(&hosts_, &calls_);
    driver(frontend);
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

double FaasmCluster::billable_gb_seconds() const {
  double total = 0;
  for (const auto& host : hosts_) {
    total += host->memory_accountant().GbSeconds();
  }
  for (const auto& host : retired_hosts_) {
    total += host->memory_accountant().GbSeconds();
  }
  return total;
}

size_t FaasmCluster::cold_start_count() const {
  size_t count = 0;
  for (const auto& host : hosts_) {
    count += host->cold_start_count();
  }
  for (const auto& host : retired_hosts_) {
    count += host->cold_start_count();
  }
  return count;
}

size_t FaasmCluster::warm_faaslet_count() const {
  size_t count = 0;
  for (const auto& host : hosts_) {
    count += host->warm_faaslet_count();
  }
  return count;
}

}  // namespace faasm
