#include "common/rng.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
  EXPECT_EQ(rng.NextBelow(0), 0u);
}

TEST(RngTest, ExponentialMeanApproximately) {
  Rng rng(42);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    sum += rng.NextExponential(5.0);
  }
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

}  // namespace
}  // namespace faasm
