#include "kvs/kv_store.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(KvStoreTest, SetGetDelete) {
  KvStore store;
  ASSERT_TRUE(store.Set("k", Bytes{1, 2, 3}).ok());
  EXPECT_TRUE(store.Exists("k"));
  EXPECT_EQ(store.Get("k").value(), (Bytes{1, 2, 3}));
  EXPECT_EQ(store.Size("k").value(), 3u);
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_FALSE(store.Exists("k"));
  EXPECT_EQ(store.Get("k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Delete("k").code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, RangeReadWrite) {
  KvStore store;
  ASSERT_TRUE(store.Set("k", Bytes{0, 1, 2, 3, 4, 5, 6, 7}).ok());
  EXPECT_EQ(store.GetRange("k", 2, 3).value(), (Bytes{2, 3, 4}));
  // Range past end is clamped.
  EXPECT_EQ(store.GetRange("k", 6, 100).value(), (Bytes{6, 7}));
  EXPECT_EQ(store.GetRange("k", 9, 1).status().code(), StatusCode::kOutOfRange);

  // SetRange extends the value.
  ASSERT_TRUE(store.SetRange("k", 10, Bytes{9, 9}).ok());
  EXPECT_EQ(store.Size("k").value(), 12u);
  EXPECT_EQ(store.GetRange("k", 10, 2).value(), (Bytes{9, 9}));
  // SetRange on a missing key creates it.
  ASSERT_TRUE(store.SetRange("new", 4, Bytes{1}).ok());
  EXPECT_EQ(store.Size("new").value(), 5u);
}

TEST(KvStoreTest, Append) {
  KvStore store;
  EXPECT_EQ(store.Append("log", Bytes{1}).value(), 1u);
  EXPECT_EQ(store.Append("log", Bytes{2, 3}).value(), 3u);
  EXPECT_EQ(store.Get("log").value(), (Bytes{1, 2, 3}));
}

TEST(KvStoreTest, ReadWriteLocks) {
  KvStore store;
  EXPECT_TRUE(store.TryLockRead("k", "a").value());
  EXPECT_TRUE(store.TryLockRead("k", "b").value());    // shared readers
  EXPECT_FALSE(store.TryLockWrite("k", "c").value());  // blocked by readers
  ASSERT_TRUE(store.UnlockRead("k", "a").ok());
  ASSERT_TRUE(store.UnlockRead("k", "b").ok());
  EXPECT_TRUE(store.TryLockWrite("k", "c").value());
  EXPECT_FALSE(store.TryLockRead("k", "a").value());   // blocked by writer
  EXPECT_FALSE(store.TryLockWrite("k", "d").value());  // exclusive
  EXPECT_EQ(store.UnlockWrite("k", "other").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store.UnlockWrite("k", "c").ok());
  EXPECT_TRUE(store.TryLockRead("k", "a").value());
}

TEST(KvStoreTest, UnlockWithoutLockFails) {
  KvStore store;
  EXPECT_EQ(store.UnlockRead("k", "a").code(), StatusCode::kFailedPrecondition);
}

TEST(KvStoreTest, SetOperations) {
  KvStore store;
  EXPECT_TRUE(store.SetAdd("warm:f", "host-1").value());
  EXPECT_FALSE(store.SetAdd("warm:f", "host-1").value());  // duplicate
  EXPECT_TRUE(store.SetAdd("warm:f", "host-2").value());
  auto members = store.SetMembers("warm:f");
  EXPECT_EQ(members.size(), 2u);
  EXPECT_TRUE(store.SetRemove("warm:f", "host-1").value());
  EXPECT_FALSE(store.SetRemove("warm:f", "host-1").value());
  EXPECT_EQ(store.SetMembers("warm:f").size(), 1u);
  EXPECT_TRUE(store.SetMembers("nonexistent").empty());
}

TEST(KvStoreTest, Accounting) {
  KvStore store;
  ASSERT_TRUE(store.Set("a", Bytes(100)).ok());
  ASSERT_TRUE(store.Set("b", Bytes(50)).ok());
  EXPECT_EQ(store.key_count(), 2u);
  EXPECT_EQ(store.total_bytes(), 150u);
}

TEST(KvStoreTest, KeysListsEveryFootprint) {
  KvStore store;
  ASSERT_TRUE(store.Set("value-key", Bytes{1}).ok());
  ASSERT_TRUE(store.TryLockWrite("lock-key", "owner").value());
  ASSERT_TRUE(store.SetAdd("set-key", "member").value());
  auto keys = store.Keys();
  EXPECT_EQ(keys.size(), 3u);
  // Released locks and emptied sets drop out of the listing.
  ASSERT_TRUE(store.UnlockWrite("lock-key", "owner").ok());
  ASSERT_TRUE(store.SetRemove("set-key", "member").value());
  EXPECT_EQ(store.Keys(), std::vector<std::string>{"value-key"});
}

TEST(KvStoreTest, FrozenKeyBouncesOpsUntilUnfrozen) {
  KvStore store;
  ASSERT_TRUE(store.Set("k", Bytes{1, 2}).ok());
  store.FreezeKey("k");
  EXPECT_TRUE(store.IsFrozen("k"));
  // Mutations AND value reads answer kWrongMaster (the migration redirect);
  // other keys are untouched.
  EXPECT_EQ(store.Set("k", Bytes{9}).code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.Get("k").status().code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.SetRange("k", 0, Bytes{9}).code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.Append("k", Bytes{9}).status().code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.Delete("k").code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.TryLockWrite("k", "a").status().code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.SetAdd("k", "m").status().code(), StatusCode::kWrongMaster);
  ASSERT_TRUE(store.Set("other", Bytes{3}).ok());

  store.UnfreezeKey("k");
  EXPECT_EQ(store.Get("k").value(), (Bytes{1, 2}));  // untouched by bounced ops
}

TEST(KvStoreTest, ExportInstallMovesFullFootprint) {
  KvStore source;
  KvStore destination;
  ASSERT_TRUE(source.Set("k", Bytes{7, 8}).ok());
  ASSERT_TRUE(source.TryLockWrite("k", "host-3").value());
  ASSERT_TRUE(source.SetAdd("k", "member-a").value());

  KeyExport record = source.ExportKey("k");
  // Round-trips through the wire encoding.
  auto decoded = KeyExport::Deserialize(record.Serialize());
  ASSERT_TRUE(decoded.ok());
  destination.InstallKey("k", decoded.value());

  EXPECT_EQ(destination.Get("k").value(), (Bytes{7, 8}));
  EXPECT_EQ(destination.SetMembers("k"), std::vector<std::string>{"member-a"});
  // Lock ownership travelled: the original owner can unlock, others cannot
  // acquire.
  EXPECT_FALSE(destination.TryLockWrite("k", "host-4").value());
  EXPECT_TRUE(destination.UnlockWrite("k", "host-3").ok());
}

TEST(KvStoreTest, EraseKeyUnfreezesAndClearsFootprint) {
  KvStore store;
  ASSERT_TRUE(store.Set("k", Bytes{1}).ok());
  store.FreezeKey("k");
  store.EraseKey("k");
  EXPECT_FALSE(store.Exists("k"));
  EXPECT_FALSE(store.IsFrozen("k"));
  // InstallKey likewise thaws a frozen key as it moves (back) in.
  store.FreezeKey("k");
  store.InstallKey("k", KeyExport{true, Bytes{5}, 0, "", {}});
  EXPECT_FALSE(store.IsFrozen("k"));
  EXPECT_EQ(store.Get("k").value(), (Bytes{5}));
}

TEST(KvStoreTest, MigrationFilterBouncesMovingKeysEvenBeforeTheyExist) {
  KvStore store;
  ASSERT_TRUE(store.Set("kept", Bytes{1}).ok());
  store.SetMigrationFilter([](const std::string& key) { return key.rfind("mv-", 0) == 0; });
  // A moving key cannot be CREATED behind the migration's enumeration...
  EXPECT_EQ(store.Set("mv-new", Bytes{2}).code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.TryLockWrite("mv-new", "a").status().code(), StatusCode::kWrongMaster);
  EXPECT_FALSE(store.Exists("mv-new"));
  // ...while non-moving keys are untouched.
  EXPECT_TRUE(store.SetRange("kept", 0, Bytes{9}).ok());
  store.ClearMigrationFilter();
  EXPECT_TRUE(store.Set("mv-new", Bytes{2}).ok());
}

TEST(KvStoreTest, OwnershipGuardBouncesForeignKeys) {
  KvStore store;
  // Guard mimicking a live shard map: this store masters only "mine-*".
  store.SetOwnershipGuard([](const std::string& key) { return key.rfind("mine-", 0) == 0; });
  EXPECT_TRUE(store.Set("mine-a", Bytes{1}).ok());
  EXPECT_EQ(store.Set("theirs-b", Bytes{1}).code(), StatusCode::kWrongMaster);
  EXPECT_EQ(store.Get("theirs-b").status().code(), StatusCode::kWrongMaster);
  // InstallKey is exempt (migration streams arrive before the flip makes
  // this store the master), and the guard follows its predicate live.
  store.InstallKey("theirs-b", KeyExport{true, Bytes{3}, 0, "", {}});
  store.SetOwnershipGuard([](const std::string&) { return true; });
  EXPECT_EQ(store.Get("theirs-b").value(), (Bytes{3}));
}

// --- Batched execution ----------------------------------------------------------

TEST(KvStoreTest, ExecuteBatchMixedOpsReturnPerOpResults) {
  KvStore store;
  ASSERT_TRUE(store.Set("existing", Bytes{1, 2, 3}).ok());

  std::vector<KvsBatchOp> ops(5);
  ops[0].op = KvsOp::kSet;
  ops[0].key = "a";
  ops[0].bytes = Bytes{9};
  ops[1].op = KvsOp::kGet;
  ops[1].key = "existing";
  ops[2].op = KvsOp::kGet;
  ops[2].key = "missing";
  ops[3].op = KvsOp::kSetAdd;
  ops[3].key = "set";
  ops[3].member = "m1";
  ops[4].op = KvsOp::kAppend;
  ops[4].key = "existing";
  ops[4].bytes = Bytes{4};

  std::vector<KvsBatchResult> results = store.ExecuteBatch(ops);
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_EQ(results[1].value, (Bytes{1, 2, 3}));
  // One op failing (per-op NotFound) does not poison its neighbours.
  EXPECT_EQ(results[2].status.code(), StatusCode::kNotFound);
  EXPECT_TRUE(results[3].status.ok());
  EXPECT_TRUE(results[3].flag);
  EXPECT_TRUE(results[4].status.ok());
  EXPECT_EQ(results[4].length, 4u);
  EXPECT_EQ(store.Get("a").value(), (Bytes{9}));
  EXPECT_EQ(store.Get("existing").value(), (Bytes{1, 2, 3, 4}));
}

TEST(KvStoreTest, ExecuteBatchPreservesPerKeyOrder) {
  KvStore store;
  std::vector<KvsBatchOp> ops(3);
  for (auto& op : ops) {
    op.key = "k";
  }
  ops[0].op = KvsOp::kSet;
  ops[0].bytes = Bytes{1};
  ops[1].op = KvsOp::kAppend;
  ops[1].bytes = Bytes{2};
  ops[2].op = KvsOp::kGet;
  auto results = store.ExecuteBatch(ops);
  EXPECT_EQ(results[2].value, (Bytes{1, 2}));
}

TEST(KvStoreTest, ExecuteBatchBouncesFilteredKeysEvenBeforeTheyExist) {
  // Regression for the batched flavour of the enumeration race: a batch
  // containing a key that does NOT exist yet on a shard whose migration
  // filter marks it as moving must bounce that op per-op — creating it
  // would strand the key behind the coordinator's enumeration — while the
  // non-moving ops in the same batch land.
  KvStore store;
  ASSERT_TRUE(store.Set("kept", Bytes{1}).ok());
  store.SetMigrationFilter([](const std::string& key) { return key.rfind("mv-", 0) == 0; });

  std::vector<KvsBatchOp> ops(3);
  ops[0].op = KvsOp::kSet;
  ops[0].key = "mv-new";  // does not exist; filter says it is moving
  ops[0].bytes = Bytes{2};
  ops[1].op = KvsOp::kSetRange;
  ops[1].key = "kept";
  ops[1].offset = 0;
  ops[1].bytes = Bytes{9};
  ops[2].op = KvsOp::kSetAdd;
  ops[2].key = "mv-other";  // also moving, also nonexistent
  ops[2].member = "m";

  auto results = store.ExecuteBatch(ops);
  EXPECT_EQ(results[0].status.code(), StatusCode::kWrongMaster);
  EXPECT_TRUE(results[1].status.ok());
  EXPECT_EQ(results[2].status.code(), StatusCode::kWrongMaster);
  EXPECT_FALSE(store.Exists("mv-new"));
  EXPECT_EQ(store.Get("kept").value(), (Bytes{9}));

  // After the flip the filter clears and the same batch lands whole.
  store.ClearMigrationFilter();
  auto retried = store.ExecuteBatch(ops);
  EXPECT_TRUE(retried[0].status.ok());
  EXPECT_TRUE(retried[2].status.ok());
  EXPECT_EQ(store.Get("mv-new").value(), (Bytes{2}));
}

TEST(KvStoreTest, ExecuteBatchBouncesFrozenKeyOnly) {
  KvStore store;
  ASSERT_TRUE(store.Set("frozen", Bytes{1}).ok());
  ASSERT_TRUE(store.Set("live", Bytes{2}).ok());
  store.FreezeKey("frozen");
  std::vector<KvsBatchOp> ops(2);
  ops[0].op = KvsOp::kSet;
  ops[0].key = "frozen";
  ops[0].bytes = Bytes{9};
  ops[1].op = KvsOp::kSet;
  ops[1].key = "live";
  ops[1].bytes = Bytes{9};
  auto results = store.ExecuteBatch(ops);
  EXPECT_EQ(results[0].status.code(), StatusCode::kWrongMaster);
  EXPECT_TRUE(results[1].status.ok());
  store.UnfreezeKey("frozen");
  EXPECT_EQ(store.Get("frozen").value(), (Bytes{1}));  // the write never landed
}

// --- Range coalescing -----------------------------------------------------------

TEST(MergeValueRangesTest, AdjacentRangesFuseIntoOneRun) {
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{0, Bytes{1, 2}});
  ranges.push_back(ValueRange{2, Bytes{3, 4}});  // touches the first: [0,2)+[2,4)
  ranges.push_back(ValueRange{10, Bytes{5}});    // disjoint
  auto merged = MergeValueRanges(std::move(ranges));
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].offset, 0u);
  EXPECT_EQ(merged[0].bytes, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(merged[1].offset, 10u);
  EXPECT_EQ(merged[1].bytes, (Bytes{5}));
}

TEST(MergeValueRangesTest, OverlappingRangesLaterWriteWins) {
  // Applying the ranges sequentially through SetRanges would leave the
  // later write's bytes on the overlap; the merge must preserve that.
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{0, Bytes{1, 1, 1, 1}});
  ranges.push_back(ValueRange{2, Bytes{7, 7}});
  auto merged = MergeValueRanges(std::move(ranges));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].offset, 0u);
  EXPECT_EQ(merged[0].bytes, (Bytes{1, 1, 7, 7}));
}

TEST(MergeValueRangesTest, UnsortedInputAndEmptyRangesHandled) {
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{8, Bytes{8, 9}});
  ranges.push_back(ValueRange{4, Bytes{}});  // empty: dropped
  ranges.push_back(ValueRange{6, Bytes{6, 7}});
  auto merged = MergeValueRanges(std::move(ranges));
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].offset, 6u);
  EXPECT_EQ(merged[0].bytes, (Bytes{6, 7, 8, 9}));
}

TEST(MergeValueRangesTest, DisjointRangesUnchangedBytesAndCount) {
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{0, Bytes{1}});
  ranges.push_back(ValueRange{5, Bytes{2}});
  auto merged = MergeValueRanges(ranges);
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].bytes, (Bytes{1}));
  EXPECT_EQ(merged[1].bytes, (Bytes{2}));
}

}  // namespace
}  // namespace faasm
