// Container-baseline tests: the same workload API with container semantics —
// private state tiers, slow cold starts, HTTP-chained calls.
#include "baseline/knative.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "state/ddo.h"

namespace faasm {
namespace {

ClusterConfig SmallCluster(int hosts = 2) {
  ClusterConfig config;
  config.hosts = hosts;
  config.cores_per_host = 2;
  return config;
}

ContainerModel FastModel() {
  // Shrink latencies so tests stay fast; mechanisms unchanged.
  ContainerModel model;
  model.cold_start_ns = 20 * kMillisecond;
  model.python_cold_start_ns = 30 * kMillisecond;
  model.await_poll_interval_ns = kMillisecond;
  return model;
}

TEST(KnativeTest, InvokeNativeFunction) {
  KnativeCluster cluster(SmallCluster(), FastModel());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("echo",
                                  [](InvocationContext& ctx) {
                                    ctx.WriteOutput(ctx.Input());
                                    return 0;
                                  })
                  .ok());
  cluster.Run([&](KnativeCluster::Client& client) {
    auto id = client.Submit("echo", Bytes{5, 5});
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(client.Await(id.value()).value(), 0);
    EXPECT_EQ(client.Output(id.value()).value(), (Bytes{5, 5}));
  });
}

TEST(KnativeTest, ColdStartTakesContainerTime) {
  KnativeCluster cluster(SmallCluster(1), FastModel());
  ASSERT_TRUE(
      cluster.registry().RegisterNative("fn", [](InvocationContext&) { return 0; }).ok());
  cluster.Run([&](KnativeCluster::Client& client) {
    ASSERT_EQ(client.Invoke("fn", {}).value(), 0);
  });
  auto records = cluster.calls().FinishedRecords();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_TRUE(records[0].cold_start);
  // Start delayed by at least the container boot.
  EXPECT_GE(records[0].started_at - records[0].submitted_at, 20 * kMillisecond);
  EXPECT_EQ(cluster.cold_start_count(), 1u);
}

TEST(KnativeTest, WarmContainerReused) {
  KnativeCluster cluster(SmallCluster(1), FastModel());
  ASSERT_TRUE(
      cluster.registry().RegisterNative("fn", [](InvocationContext&) { return 0; }).ok());
  cluster.Run([&](KnativeCluster::Client& client) {
    for (int i = 0; i < 5; ++i) {
      ASSERT_EQ(client.Invoke("fn", {}).value(), 0);
    }
  });
  EXPECT_EQ(cluster.cold_start_count(), 1u);  // single host: container reused
}

TEST(KnativeTest, AutoscalerScalesOutUnderConcurrency) {
  // Sequential (closed-loop) calls reuse the single pod; concurrent calls
  // push the per-pod concurrency above target and scale out to more hosts,
  // each paying a cold start.
  KnativeCluster cluster(SmallCluster(3), FastModel());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("fn",
                                  [](InvocationContext& ctx) {
                                    ctx.ChargeCompute(30 * kMillisecond);
                                    return 0;
                                  })
                  .ok());
  cluster.Run([&](KnativeCluster::Client& client) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_EQ(client.Invoke("fn", {}).value(), 0);
    }
  });
  EXPECT_EQ(cluster.cold_start_count(), 1u);  // closed loop: one pod suffices

  cluster.Run([&](KnativeCluster::Client& client) {
    std::vector<uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
      auto id = client.Submit("fn", {});
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    for (uint64_t id : ids) {
      ASSERT_EQ(client.Await(id).value(), 0);
    }
  });
  // Scaled out to all three hosts; hosts may also add containers for their
  // own queued calls (per-pod concurrency target of 1).
  EXPECT_GE(cluster.cold_start_count(), 3u);
  EXPECT_LE(cluster.cold_start_count(), 6u);
}

TEST(KnativeTest, ContainersDoNotShareState) {
  // Two containers for the same function pull independent copies: a local
  // write in one is invisible to the other until pushed globally.
  KnativeCluster cluster(SmallCluster(2), FastModel());
  cluster.kvs().Set("value", Bytes(8, 0));
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("bump_local",
                                  [](InvocationContext& ctx) {
                                    SharedArray<uint64_t> value(&ctx.state(), "value");
                                    if (!value.Attach().ok()) {
                                      return 1;
                                    }
                                    value[0] += 1;  // local only, never pushed
                                    ctx.ChargeCompute(20 * kMillisecond);
                                    Bytes out;
                                    ByteWriter writer(out);
                                    writer.Put<uint64_t>(value[0]);
                                    ctx.WriteOutput(std::move(out));
                                    return 0;
                                  })
                  .ok());
  std::vector<uint64_t> observed;
  cluster.Run([&](KnativeCluster::Client& client) {
    // Two rounds of two concurrent calls: the autoscaler spreads each round
    // over two containers (per-pod target concurrency is 1).
    for (int round = 0; round < 2; ++round) {
      std::vector<uint64_t> ids;
      for (int i = 0; i < 2; ++i) {
        auto id = client.Submit("bump_local", {});
        ASSERT_TRUE(id.ok());
        ids.push_back(id.value());
      }
      for (uint64_t id : ids) {
        ASSERT_EQ(client.Await(id).value(), 0);
        const Bytes output = client.Output(id).value();
        ByteReader reader(output);
        observed.push_back(reader.Get<uint64_t>().value());
      }
    }
  });
  // Each container counts only its own private copy: 1 in round one, 2 in
  // round two, never 3 or 4 — no cross-container memory sharing.
  std::sort(observed.begin(), observed.end());
  EXPECT_EQ(observed, (std::vector<uint64_t>{1, 1, 2, 2}));
}

TEST(KnativeTest, ChainingGoesThroughIngress) {
  KnativeCluster cluster(SmallCluster(1), FastModel());
  ASSERT_TRUE(
      cluster.registry().RegisterNative("leaf", [](InvocationContext&) { return 0; }).ok());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("parent",
                                  [](InvocationContext& ctx) {
                                    auto id = ctx.ChainCall("leaf", Bytes(100));
                                    if (!id.ok()) {
                                      return 1;
                                    }
                                    auto code = ctx.AwaitCall(id.value());
                                    return code.ok() ? code.value() : 2;
                                  })
                  .ok());
  cluster.Run([&](KnativeCluster::Client& client) {
    const uint64_t before = cluster.network_bytes();
    ASSERT_EQ(client.Invoke("parent", {}).value(), 0);
    // Chained call + result polling all travelled over HTTP.
    EXPECT_GT(cluster.network_bytes() - before,
              100 + cluster.model().http_envelope_bytes);
  });
}

TEST(KnativeTest, HostMemoryExhaustionFailsColdStarts) {
  ClusterConfig config = SmallCluster(1);
  config.host_memory_bytes = 20 * 1024 * 1024;  // fits two 8 MB containers
  ContainerModel model = FastModel();
  KnativeCluster cluster(config, model);
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("fn",
                                  [](InvocationContext& ctx) {
                                    ctx.ChargeCompute(50 * kMillisecond);
                                    return 0;
                                  })
                  .ok());
  cluster.Run([&](KnativeCluster::Client& client) {
    // Submit 4 concurrent calls: each wants its own container; the third+
    // allocation exceeds host memory and fails (the Fig. 6 OOM behaviour).
    std::vector<uint64_t> ids;
    for (int i = 0; i < 4; ++i) {
      auto id = client.Submit("fn", {});
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    int failures = 0;
    for (uint64_t id : ids) {
      auto code = client.Await(id);
      failures += code.ok() ? 0 : 1;
    }
    EXPECT_GE(failures, 1);
  });
  EXPECT_GE(cluster.failed_call_count(), 1u);
}

TEST(KnativeTest, ElasticMembershipDrainsAndNeverTouchesTier) {
  // Baseline parity for AddHost/RemoveHost: hosts come and go, calls drain
  // gracefully, and the central tier is untouched throughout (the baseline
  // has no shards to migrate — its tier "membership" never changes).
  KnativeCluster cluster(SmallCluster(2), FastModel());
  ASSERT_TRUE(cluster.kvs().Set("seeded", Bytes{9}).ok());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("fn",
                                  [](InvocationContext& ctx) {
                                    ctx.ChargeCompute(5 * kMillisecond);
                                    auto kv = ctx.state().Lookup("seeded");
                                    return kv->Pull().ok() ? 0 : 1;
                                  })
                  .ok());
  cluster.Run([&](KnativeCluster::Client& client) {
    auto added = cluster.AddHost();
    ASSERT_TRUE(added.ok());
    // Concurrent calls scale out over the (now three) hosts.
    std::vector<uint64_t> ids;
    for (int i = 0; i < 6; ++i) {
      auto id = client.Submit("fn", {});
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    // Remove a host while calls are in flight: it drains, nothing is lost.
    ASSERT_TRUE(cluster.RemoveHost(added.value()).ok());
    EXPECT_EQ(cluster.RemoveHost(added.value()).code(), StatusCode::kNotFound);
    for (uint64_t id : ids) {
      auto code = client.Await(id);
      ASSERT_TRUE(code.ok()) << code.status().ToString();
      EXPECT_EQ(code.value(), 0);
    }
    // New work routes around the removed host.
    EXPECT_EQ(client.Invoke("fn", {}).value(), 0);
  });
  // The tier was never sharded or migrated: the value sits where it always
  // was, in the one central store.
  EXPECT_EQ(cluster.kvs().Get("seeded").value(), (Bytes{9}));
}

}  // namespace
}  // namespace faasm
