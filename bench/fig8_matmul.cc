// Figure 8: distributed divide-and-conquer matrix multiplication — duration
// and network transfer vs matrix size, FAASM vs container baseline. The
// paper's headline: durations are nearly identical while FAASM ships ~13%
// less data by keeping intermediate results in the local tier.
//
// Sizes are scaled down from the paper's 100..8000 sweep so that the real
// leaf computations finish in seconds on this machine (see EXPERIMENTS.md).
#include "bench/bench_util.h"
#include "baseline/knative.h"
#include "runtime/cluster.h"
#include "workloads/matmul.h"

namespace faasm {
namespace {

struct Point {
  double seconds = 0;
  double network_mb = 0;
  bool ok = false;
};

ClusterConfig MakeClusterConfig() {
  ClusterConfig config;
  config.hosts = 8;
  config.cores_per_host = 4;
  config.host_memory_bytes = size_t{2} * 1024 * 1024 * 1024;
  config.max_concurrent_per_host = 96;
  return config;
}

Point RunFaasm(uint32_t n) {
  FaasmCluster cluster(MakeClusterConfig());
  MatmulConfig config;
  config.n = n;
  SeedMatmulInputs(cluster.kvs(), config);
  (void)RegisterMatmulFunctions(cluster.registry());
  Point point;
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    point.ok = RunMatmul(frontend, config).ok();
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
    point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  });
  return point;
}

Point RunKnative(uint32_t n) {
  KnativeCluster cluster(MakeClusterConfig(), ContainerModel{});
  MatmulConfig config;
  config.n = n;
  SeedMatmulInputs(cluster.kvs(), config);
  (void)RegisterMatmulFunctions(cluster.registry());
  Point point;
  cluster.Run([&](KnativeCluster::Client& client) {
    const TimeNs start = cluster.clock().Now();
    point.ok = RunMatmul(client, config).ok();
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
    point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;
  });
  return point;
}

}  // namespace
}  // namespace faasm

int main() {
  using namespace faasm;
  PrintHeader("Figure 8: distributed matmul (64 mult + 9 merge functions per multiply)");
  PrintContainerCalibration(ContainerModel{});
  std::printf("\n%8s | %12s %14s | %12s %14s | %10s\n", "size", "faasm_t(s)", "faasm_net(MB)",
              "kn_t(s)", "kn_net(MB)", "traffic");
  for (uint32_t n : {128u, 256u, 512u, 768u}) {
    Point f = RunFaasm(n);
    Point k = RunKnative(n);
    std::printf("%8u | %12.2f %14.1f | %12.2f %14.1f | %8.1f%%%s\n", n, f.seconds,
                f.network_mb, k.seconds, k.network_mb,
                k.network_mb > 0 ? 100.0 * (k.network_mb - f.network_mb) / k.network_mb : 0.0,
                (f.ok && k.ok) ? "" : " (FAILED)");
  }
  std::printf("\nExpected shape (paper): near-identical durations once warm, with FAASM\n"
              "moving ~13%% less data across all sizes.\n");
  return 0;
}
