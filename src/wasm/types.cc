#include "wasm/types.h"

namespace faasm::wasm {

const char* ValTypeName(ValType t) {
  switch (t) {
    case ValType::kI32:
      return "i32";
    case ValType::kI64:
      return "i64";
    case ValType::kF32:
      return "f32";
    case ValType::kF64:
      return "f64";
  }
  return "?";
}

bool IsValidValType(uint8_t byte) {
  return byte == 0x7F || byte == 0x7E || byte == 0x7D || byte == 0x7C;
}

std::string FuncType::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += ValTypeName(params[i]);
  }
  out += ") -> (";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) {
      out += ", ";
    }
    out += ValTypeName(results[i]);
  }
  out += ")";
  return out;
}

const char* TrapKindName(TrapKind kind) {
  switch (kind) {
    case TrapKind::kUnreachable:
      return "unreachable";
    case TrapKind::kMemoryOutOfBounds:
      return "out of bounds memory access";
    case TrapKind::kIntegerDivideByZero:
      return "integer divide by zero";
    case TrapKind::kIntegerOverflow:
      return "integer overflow";
    case TrapKind::kInvalidConversion:
      return "invalid conversion to integer";
    case TrapKind::kUndefinedElement:
      return "undefined element";
    case TrapKind::kUninitializedElement:
      return "uninitialized element";
    case TrapKind::kIndirectCallTypeMismatch:
      return "indirect call type mismatch";
    case TrapKind::kCallStackExhausted:
      return "call stack exhausted";
    case TrapKind::kValueStackExhausted:
      return "value stack exhausted";
    case TrapKind::kFuelExhausted:
      return "fuel exhausted";
    case TrapKind::kHostError:
      return "host error";
  }
  return "unknown";
}

Status TrapStatus(TrapKind kind, const std::string& detail) {
  std::string message = "trap: ";
  message += TrapKindName(kind);
  if (!detail.empty()) {
    message += " (";
    message += detail;
    message += ")";
  }
  return Status(StatusCode::kFailedPrecondition, message);
}

bool IsTrap(const Status& status) {
  return status.code() == StatusCode::kFailedPrecondition &&
         status.message().rfind("trap:", 0) == 0;
}

}  // namespace faasm::wasm
