// Cluster-level tests for the three-tier read path (cache → co-located
// replica → master): a backup host's reads are served in-process with zero
// network bytes and zero master read RPCs; non-holders still pay the RPC;
// async mode provably falls through unless the read's staleness budget
// covers the lag bound AND the copy has caught up; and the scheduler's
// read-mostly affinity widening resolves every holder of a key's shard.
#include <gtest/gtest.h>

#include <memory>

#include "runtime/cluster.h"

namespace faasm {
namespace {

// Resolves the cluster host index running `name`.
size_t HostIndex(FaasmCluster& cluster, const std::string& name) {
  for (size_t i = 0; i < cluster.host_count(); ++i) {
    if (cluster.host(i).name() == name) {
      return i;
    }
  }
  ADD_FAILURE() << "unknown host " << name;
  return 0;
}

// A key mastered by `master` whose first backup is NOT this host (R=2 ring
// walk), plus the backup's host name.
struct HeldKey {
  std::string key;
  std::string master_host;
  std::string backup_host;
};

HeldKey FindHeldKey(const FaasmCluster& cluster) {
  const auto snapshot = cluster.shard_map().Snapshot();
  for (int i = 0; i < 100000; ++i) {
    std::string probe = "held-" + std::to_string(i);
    const std::string master = cluster.shard_map().MasterFor(probe);
    const auto backups = BackupsFor(snapshot.endpoints(), master, 2);
    if (!backups.empty()) {
      return HeldKey{probe, ShardMap::HostForEndpoint(master),
                     ShardMap::HostForEndpoint(backups[0])};
    }
  }
  ADD_FAILURE() << "no held key found";
  return {};
}

uint64_t TotalReadRpcs(FaasmCluster& cluster) {
  uint64_t total = 0;
  for (size_t i = 0; i < cluster.host_count(); ++i) {
    if (const KvsServer* server = cluster.host(i).shard_server()) {
      total += server->read_rpc_count();
    }
  }
  return total;
}

TEST(ReplicaReadPathTest, BackupHostServesReadsWithZeroNetworkBytes) {
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  ASSERT_TRUE(config.replica_reads);  // the three-tier path is the default
  FaasmCluster cluster(config);

  const HeldKey held = FindHeldKey(cluster);
  ASSERT_TRUE(cluster.kvs().Set(held.key, Bytes{1, 2, 3}).ok());

  cluster.Run([&](Frontend&) {
    FaasmInstance& backup = cluster.host(HostIndex(cluster, held.backup_host));
    const uint64_t rpcs_before = TotalReadRpcs(cluster);
    const uint64_t bytes_before = cluster.network_bytes();

    // Seeding mirrored the key onto the backup (certified at the seed
    // epoch, which has not moved): the read is served in-process.
    auto read = backup.kvs().Read(held.key);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), (Bytes{1, 2, 3}));
    EXPECT_EQ(TotalReadRpcs(cluster), rpcs_before);
    EXPECT_EQ(cluster.network_bytes(), bytes_before);
    EXPECT_EQ(backup.kvs().replica_served_count(), 1u);

    // An acked write through another host's client is observed by the very
    // next replica-served read (sync mode: the ack covers the backup).
    FaasmInstance& master = cluster.host(HostIndex(cluster, held.master_host));
    ASSERT_TRUE(master.kvs().Set(held.key, Bytes{9}).ok());
    auto fresh = backup.kvs().Read(held.key);
    ASSERT_TRUE(fresh.ok());
    EXPECT_EQ(fresh.value(), (Bytes{9}));
    EXPECT_EQ(backup.kvs().replica_served_count(), 2u);

    // A host that holds NO copy still pays the master RPC.
    for (size_t i = 0; i < cluster.host_count(); ++i) {
      FaasmInstance& host = cluster.host(i);
      if (host.name() == held.master_host || host.name() == held.backup_host) {
        continue;
      }
      const uint64_t outsider_rpcs = TotalReadRpcs(cluster);
      ASSERT_TRUE(host.kvs().Read(held.key).ok());
      EXPECT_EQ(TotalReadRpcs(cluster), outsider_rpcs + 1);
      EXPECT_EQ(host.kvs().replica_served_count(), 0u);
    }

    // The per-shard counter matches: both serves hit the backup's mirror.
    ASSERT_NE(cluster.replication(), nullptr);
    EXPECT_EQ(cluster.replication()->ReplicaForHost(held.backup_host)->replica_read_count(),
              2u);
  });
}

TEST(ReplicaReadPathTest, MembershipChangeInvalidatesUntilReconciled) {
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  FaasmCluster cluster(config);

  const HeldKey held = FindHeldKey(cluster);
  ASSERT_TRUE(cluster.kvs().Set(held.key, Bytes{5}).ok());

  cluster.Run([&](Frontend&) {
    FaasmInstance& backup = cluster.host(HostIndex(cluster, held.backup_host));
    ASSERT_TRUE(backup.kvs().Read(held.key).ok());
    ASSERT_EQ(backup.kvs().replica_served_count(), 1u);

    // A host joins: the epoch flips, AddHost's Reconcile re-certifies the
    // surviving copies under the NEW epoch. Whether this host still backs
    // the key is a ring question; either way the read returns the acked
    // bytes — the replica tier can change WHO answers, never WHAT.
    ASSERT_TRUE(cluster.AddHost().ok());
    auto read = backup.kvs().Read(held.key);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), (Bytes{5}));
  });
}

TEST(ReplicaReadPathTest, AsyncModeFallsThroughUnlessBudgetAndProbeAllow) {
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  config.replication_sync = false;
  config.replication_max_lag_ops = 1;  // every op ships immediately (caught up)
  config.replication_async_lag_bound_ns = 5 * kMillisecond;
  FaasmCluster cluster(config);

  const HeldKey held = FindHeldKey(cluster);
  ASSERT_TRUE(cluster.kvs().Set(held.key, Bytes{1}).ok());

  cluster.Run([&](Frontend&) {
    FaasmInstance& backup = cluster.host(HostIndex(cluster, held.backup_host));
    FaasmInstance& master = cluster.host(HostIndex(cluster, held.master_host));
    ASSERT_TRUE(master.kvs().Set(held.key, Bytes{2}).ok());  // ships at lag 1

    // Default staleness (the lease sentinel) is strict in async mode: the
    // read pays the master RPC even though the copy IS caught up.
    auto strict = backup.kvs().Read(held.key);
    ASSERT_TRUE(strict.ok());
    EXPECT_EQ(strict.value(), (Bytes{2}));
    EXPECT_EQ(backup.kvs().replica_served_count(), 0u);

    // A read that explicitly tolerates the lag bound is served locally —
    // and still observes the acked write, because the probe proved the copy
    // caught up before serving.
    ReadOptions tolerant;
    tolerant.max_staleness = 10 * kMillisecond;
    auto served = backup.kvs().Read(held.key, tolerant);
    ASSERT_TRUE(served.ok());
    EXPECT_EQ(served.value(), (Bytes{2}));
    EXPECT_EQ(backup.kvs().replica_served_count(), 1u);

    // A budget tighter than the configured lag bound falls through: the
    // policy gate is per read, not per copy.
    ReadOptions tight;
    tight.max_staleness = 1 * kMillisecond;
    ASSERT_TRUE(backup.kvs().Read(held.key, tight).ok());
    EXPECT_EQ(backup.kvs().replica_served_count(), 1u);
  });
}

TEST(ReplicaReadPathTest, AsyncLaggingCopyFallsThroughOnTheProbe) {
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  config.replication_sync = false;
  config.replication_max_lag_ops = 1000;  // the queue holds everything
  FaasmCluster cluster(config);

  const HeldKey held = FindHeldKey(cluster);
  ASSERT_TRUE(cluster.kvs().Set(held.key, Bytes{1}).ok());

  cluster.Run([&](Frontend&) {
    FaasmInstance& backup = cluster.host(HostIndex(cluster, held.backup_host));
    FaasmInstance& master = cluster.host(HostIndex(cluster, held.master_host));
    // The write is acked at the master but parked in the async queue: the
    // backup's copy provably lags (FloorSeq < the primary's KeySeq), so
    // even a tolerant read falls through — and gets the ACKED bytes.
    ASSERT_TRUE(master.kvs().Set(held.key, Bytes{7}).ok());
    ReadOptions tolerant;
    tolerant.max_staleness = kSecond;
    auto read = backup.kvs().Read(held.key, tolerant);
    ASSERT_TRUE(read.ok());
    EXPECT_EQ(read.value(), (Bytes{7}));
    EXPECT_EQ(backup.kvs().replica_served_count(), 0u);
  });
}

TEST(ReplicaReadPathTest, ReadMostlyAffinityResolvesEveryHolder) {
  ClusterConfig config;
  config.hosts = 4;
  config.replication_factor = 2;
  FaasmCluster cluster(config);

  const HeldKey held = FindHeldKey(cluster);

  // The registry round-trips the widening flag...
  FunctionOptions options;
  options.state_affinity_key = held.key;
  options.state_affinity_read_mostly = true;
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("reader", [](InvocationContext&) { return 0; }, options)
                  .ok());
  EXPECT_TRUE(cluster.registry().StateAffinityReadMostly("reader"));
  EXPECT_EQ(cluster.registry().StateAffinityKey("reader"), held.key);

  // ...and the holder set the scheduler widens over is master-first and
  // contains exactly the R hosts that can serve the key without a wire hop.
  const auto holders = cluster.host(0).kvs().HolderHostsFor(held.key);
  ASSERT_EQ(holders.size(), 2u);
  EXPECT_EQ(holders[0], held.master_host);
  EXPECT_EQ(holders[1], held.backup_host);

  // A function without the flag keeps the master-only hint (the write-heavy
  // default, unchanged behaviour).
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("writer", [](InvocationContext&) { return 0; },
                                  FunctionOptions{})
                  .ok());
  EXPECT_FALSE(cluster.registry().StateAffinityReadMostly("writer"));
}

}  // namespace
}  // namespace faasm
