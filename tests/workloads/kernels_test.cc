// Every kernel's wasm twin must agree with its native implementation across
// sizes (property-style parameterised sweep over the full suite).
#include "workloads/kernels.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

class KernelAgreement
    : public ::testing::TestWithParam<std::tuple<size_t, uint32_t>> {};

TEST_P(KernelAgreement, WasmMatchesNative) {
  const auto [kernel_index, n] = GetParam();
  const Kernel& kernel = PolybenchKernels()[kernel_index];
  const double native = kernel.native(n);
  auto module = kernel.build_wasm();
  ASSERT_TRUE(module.ok()) << kernel.name << ": " << module.status().ToString();
  auto wasm = RunKernelWasm(module.value(), n);
  ASSERT_TRUE(wasm.ok()) << kernel.name << ": " << wasm.status().ToString();
  // Same operations in the same order: results should agree to double
  // round-off noise.
  const double tolerance = std::abs(native) * 1e-12 + 1e-12;
  EXPECT_NEAR(wasm.value(), native, tolerance) << kernel.name << " n=" << n;
}

std::string CaseName(const ::testing::TestParamInfo<std::tuple<size_t, uint32_t>>& info) {
  const auto [kernel_index, n] = info.param;
  std::string name = PolybenchKernels()[kernel_index].name + "_n" + std::to_string(n);
  for (char& c : name) {
    if (c == '-') {
      c = '_';
    }
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelAgreement,
    ::testing::Combine(::testing::Range<size_t>(0, 8), ::testing::Values(16u, 33u, 64u)),
    CaseName);

TEST(KernelsTest, SuiteIsComplete) {
  EXPECT_EQ(PolybenchKernels().size(), 8u);
  for (const Kernel& kernel : PolybenchKernels()) {
    EXPECT_FALSE(kernel.name.empty());
  }
}

TEST(KernelsTest, ChecksumsAreNonTrivial) {
  for (const Kernel& kernel : PolybenchKernels()) {
    EXPECT_NE(kernel.native(24), 0.0) << kernel.name;
  }
}

TEST(KernelsTest, ModulesSurviveReuse) {
  // One compiled module, many instances (registry-style sharing).
  const Kernel& kernel = PolybenchKernels()[0];
  auto module = kernel.build_wasm();
  ASSERT_TRUE(module.ok());
  const double first = RunKernelWasm(module.value(), 20).value();
  const double second = RunKernelWasm(module.value(), 20).value();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace faasm
