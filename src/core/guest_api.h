// GuestApi: declares the full "faasm" host-interface import set on a
// ModuleBuilder with the correct signatures, returning the import indices.
// Guest programs authored with the builder use this to call the Table 2 API.
#ifndef FAASM_CORE_GUEST_API_H_
#define FAASM_CORE_GUEST_API_H_

#include "wasm/builder.h"

namespace faasm {

struct GuestApi {
  uint32_t input_size;
  uint32_t read_input;
  uint32_t write_output;
  uint32_t chain_call;
  uint32_t await_call;
  uint32_t get_call_output;
  uint32_t get_state;
  uint32_t set_state;
  uint32_t pull_state;
  uint32_t push_state;
  uint32_t pull_state_offset;
  uint32_t push_state_offset;
  uint32_t append_state;
  uint32_t lock_state_read;
  uint32_t unlock_state_read;
  uint32_t lock_state_write;
  uint32_t unlock_state_write;
  uint32_t lock_state_global_read;
  uint32_t unlock_state_global_read;
  uint32_t lock_state_global_write;
  uint32_t unlock_state_global_write;
  uint32_t sbrk;
  uint32_t socket;
  uint32_t connect;
  uint32_t send;
  uint32_t recv;
  uint32_t socket_close;
  uint32_t open;
  uint32_t read;
  uint32_t write;
  uint32_t close;
  uint32_t dup;
  uint32_t seek;
  uint32_t stat_size;
  uint32_t dlopen;
  uint32_t dlsym;
  uint32_t dyn_call;
  uint32_t dlclose;
  uint32_t gettime;
  uint32_t getrandom;

  // Must be called before any defined function is added to the builder.
  static GuestApi ImportAll(wasm::ModuleBuilder& b) {
    using wasm::ValType;
    const ValType kI32 = ValType::kI32;
    const ValType kI64 = ValType::kI64;
    GuestApi api{};
    auto imp = [&b](const char* name, std::vector<ValType> params,
                    std::vector<ValType> results) {
      return b.ImportFunction("faasm", name, params, results);
    };
    api.input_size = imp("input_size", {}, {kI32});
    api.read_input = imp("read_input", {kI32, kI32}, {kI32});
    api.write_output = imp("write_output", {kI32, kI32}, {});
    api.chain_call = imp("chain_call", {kI32, kI32, kI32, kI32}, {kI64});
    api.await_call = imp("await_call", {kI64}, {kI32});
    api.get_call_output = imp("get_call_output", {kI64, kI32, kI32}, {kI32});
    api.get_state = imp("get_state", {kI32, kI32, kI32}, {kI32});
    api.set_state = imp("set_state", {kI32, kI32, kI32, kI32}, {});
    api.pull_state = imp("pull_state", {kI32, kI32}, {});
    api.push_state = imp("push_state", {kI32, kI32}, {});
    api.pull_state_offset = imp("pull_state_offset", {kI32, kI32, kI32, kI32}, {});
    api.push_state_offset = imp("push_state_offset", {kI32, kI32, kI32, kI32}, {});
    api.append_state = imp("append_state", {kI32, kI32, kI32, kI32}, {});
    api.lock_state_read = imp("lock_state_read", {kI32, kI32}, {});
    api.unlock_state_read = imp("unlock_state_read", {kI32, kI32}, {});
    api.lock_state_write = imp("lock_state_write", {kI32, kI32}, {});
    api.unlock_state_write = imp("unlock_state_write", {kI32, kI32}, {});
    api.lock_state_global_read = imp("lock_state_global_read", {kI32, kI32}, {});
    api.unlock_state_global_read = imp("unlock_state_global_read", {kI32, kI32}, {});
    api.lock_state_global_write = imp("lock_state_global_write", {kI32, kI32}, {});
    api.unlock_state_global_write = imp("unlock_state_global_write", {kI32, kI32}, {});
    api.sbrk = imp("sbrk", {kI32}, {kI32});
    api.socket = imp("socket", {}, {kI32});
    api.connect = imp("connect", {kI32, kI32, kI32}, {kI32});
    api.send = imp("send", {kI32, kI32, kI32}, {kI32});
    api.recv = imp("recv", {kI32, kI32, kI32}, {kI32});
    api.socket_close = imp("socket_close", {kI32}, {kI32});
    api.open = imp("open", {kI32, kI32, kI32}, {kI32});
    api.read = imp("read", {kI32, kI32, kI32}, {kI32});
    api.write = imp("write", {kI32, kI32, kI32}, {kI32});
    api.close = imp("close", {kI32}, {kI32});
    api.dup = imp("dup", {kI32}, {kI32});
    api.seek = imp("seek", {kI32, kI32}, {kI32});
    api.stat_size = imp("stat_size", {kI32, kI32}, {kI32});
    api.dlopen = imp("dlopen", {kI32, kI32}, {kI32});
    api.dlsym = imp("dlsym", {kI32, kI32, kI32}, {kI32});
    api.dyn_call = imp("dyn_call", {kI32, kI32}, {kI32});
    api.dlclose = imp("dlclose", {kI32}, {kI32});
    api.gettime = imp("gettime", {}, {kI64});
    api.getrandom = imp("getrandom", {kI32, kI32}, {kI32});
    return api;
  }
};

// Emits a data segment holding `text` at `offset` and returns (offset, len)
// for passing guest strings to host-interface calls.
inline std::pair<uint32_t, uint32_t> GuestString(wasm::ModuleBuilder& b, uint32_t offset,
                                                 const std::string& text) {
  b.AddData(offset, BytesFromString(text));
  return {offset, static_cast<uint32_t>(text.size())};
}

}  // namespace faasm

#endif  // FAASM_CORE_GUEST_API_H_
