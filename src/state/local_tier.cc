#include "state/local_tier.h"

namespace faasm {

std::shared_ptr<StateKeyValue> LocalTier::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = values_.find(key);
  if (it != values_.end()) {
    return it->second;
  }
  auto value = std::make_shared<StateKeyValue>(key, kvs_, clock_);
  values_[key] = value;
  return value;
}

bool LocalTier::Contains(const std::string& key) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return values_.count(key) > 0;
}

size_t LocalTier::resident_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  size_t bytes = 0;
  for (const auto& [key, value] : values_) {
    if (value->allocated()) {
      bytes += value->size();
    }
  }
  return bytes;
}

size_t LocalTier::key_count() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return values_.size();
}

void LocalTier::Clear() {
  // Settle pending batched pushes first: their acks re-mark/mark-present
  // against the replicas about to be dropped.
  (void)kvs_->FlushBatch();
  std::lock_guard<std::mutex> guard(mutex_);
  values_.clear();
}

}  // namespace faasm
