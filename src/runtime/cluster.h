// FaasmCluster: the whole deployment — N FaasmInstance hosts, the sharded
// global tier (one byte-accounted KvsServer shard per host, per-key
// mastership via a consistent-hash ShardMap — see kvs/router.h), a global
// file store, the function registry and the shared virtual-time executor.
// Benchmarks drive it through Frontend, a simulated external client.
//
// MEMBERSHIP IS ELASTIC: AddHost()/RemoveHost() resize the cluster while it
// serves traffic. In sharded mode each change migrates the affected keys
// between shards (kvs/migration.h) and bumps the ShardMap epoch; removal
// drains the host first (warm-set withdrawal, in-flight calls and mailbox
// run down) so no acknowledged work is lost. Retired instances stay alive
// (inert) until Shutdown so outstanding Awaits and metrics keep working.
//
// MEMBERSHIP CAN ALSO FAIL: a host can crash — no drain, no handoff, mail
// dropped. Two paths lead from a crash to recovery:
//
//   - ORACLE (KillHost): the driver both crashes the host and runs recovery
//     synchronously, as an omniscient test harness can. Deterministic; kept
//     as the baseline.
//   - DETECTION (CrashHost + failure_detection): the driver only pulls the
//     plug. Every host publishes heartbeats (HostConfig::heartbeat_interval_ns)
//     to a FailureDetector activity, which moves silent hosts through
//     alive → suspect → dead (runtime/failure_detector.h): silence past
//     suspicion_timeout_ns raises suspicion, a direct probe corroborates it
//     (slow-but-alive hosts answer and clear — no false-positive failover),
//     and kUnavailable bounces reported by every host's KvsClient accelerate
//     the probe. On confirmation the detector drives HandleConfirmedDeath —
//     the same fence → quiesce → Failover → Reconcile recovery KillHost
//     runs — so the cluster self-heals with no oracle in the loop.
//
// Either way, with replication_factor > 1 the replication substrate
// (kvs/replication.h) promotes every key the dead shard mastered from a
// live backup copy before the epoch flips, so no acknowledged update is
// lost; at factor 1 the dead shard's keys are gone and counted. Both of the
// corpse's stores are fenced first: its primary shard (migration filter —
// zombie writes bounce kWrongMaster) and its replica mirror
// (ReplicaShard::Fence — backups it held for other shards are dropped and
// re-homed by Reconcile, never promoted from a corpse).
#ifndef FAASM_RUNTIME_CLUSTER_H_
#define FAASM_RUNTIME_CLUSTER_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "common/poll_lock.h"
#include "core/vfs.h"
#include "kvs/kvs_client.h"
#include "kvs/migration.h"
#include "kvs/replication.h"
#include "kvs/router.h"
#include "net/network.h"
#include "runtime/call_table.h"
#include "runtime/failure_detector.h"
#include "runtime/instance.h"
#include "runtime/registry.h"
#include "sim/sim_clock.h"

namespace faasm {

// Layout of the global state tier.
enum class StateTier {
  // One KVS endpoint ("kvs") serves the whole cluster — the pre-sharding
  // serialisation point, kept as the ablation baseline (--tier=central).
  kCentral,
  // One shard per host ("kvs:<host>"); each key is mastered by one shard
  // and ops on locally-mastered keys bypass the network entirely.
  kSharded,
};

struct ClusterConfig {
  int hosts = 4;
  int cores_per_host = 4;
  size_t host_memory_bytes = size_t{16} * 1024 * 1024 * 1024;
  int max_concurrent_per_host = 64;
  StateTier state_tier = StateTier::kSharded;
  // Scheduler warm-set cache TTL (see HostConfig::warm_set_ttl_ns).
  TimeNs warm_set_ttl_ns = 2 * kMillisecond;
  // Batched state-op protocol (see HostConfig::batch_state_ops). Off is the
  // one-RPC-per-op baseline kept for the --batch=off ablation.
  bool batch_state_ops = true;
  // Read half (kGetBatch prefetch grouping; HostConfig::batch_state_reads).
  bool batch_state_reads = true;
  // Per-host read cache + lease (HostConfig::read_cache / read_lease_ns).
  // Opt-in: see the coherence rules in kvs_client.h.
  bool read_cache = false;
  TimeNs read_lease_ns = 2 * kMillisecond;
  // Copies per shard, primary included (kvs/replication.h). 1 = no
  // replication: no replica endpoints, no forwarding hooks — byte-for-byte
  // today's behaviour. >1 keeps R-1 live backups per shard and makes
  // KillHost lossless for acknowledged updates. Sharded tier only.
  int replication_factor = 1;
  // Sync forwarding (ack covers backups) vs bounded-lag async (the
  // ablation; a crash may lose up to replication_max_lag_ops queued ops).
  bool replication_sync = true;
  int replication_max_lag_ops = 32;
  // Replica reads (the three-tier read path, kvs_client.h): a host that
  // backs a key's shard serves reads from its local mirror in-process, zero
  // network bytes. Sound in sync mode because the ack already covers every
  // live backup; in async mode a replica read additionally requires the
  // read's max_staleness to cover replication_async_lag_bound_ns AND the
  // copy to have provably caught up on that key. Only meaningful at
  // replication_factor > 1. Off = every cross-host read pays the master RPC.
  bool replica_reads = true;
  // The lag bound async-mode replica reads are gated on (see above).
  TimeNs replication_async_lag_bound_ns = 5 * kMillisecond;
  // Heartbeat failure detection (runtime/failure_detector.h). When on, every
  // host heartbeats a detector activity that confirms crashes autonomously
  // and runs the KillHost recovery itself — CrashHost() with no further
  // driver involvement self-heals. Detection latency is bounded by
  // suspicion_timeout + one heartbeat interval (the detector sweeps every
  // heartbeat_interval / 2). Off: the oracle KillHost is the only recovery
  // path, byte-for-byte today's behaviour.
  bool failure_detection = false;
  TimeNs heartbeat_interval_ns = 5 * kMillisecond;
  TimeNs suspicion_timeout_ns = 20 * kMillisecond;
  NetworkConfig network;
};

// Simulated external client (e.g. the platform's HTTP frontend): submits
// calls round-robin across hosts, as Knative's default endpoints do (§6.1).
// Tracks submissions by instance pointer, not index: the host vector may
// grow and shrink under it (AddHost/RemoveHost from the same driver
// activity), and a retired instance stays alive for pending Awaits.
class Frontend {
 public:
  Frontend(std::vector<std::unique_ptr<FaasmInstance>>* hosts, CallTable* calls)
      : hosts_(hosts), calls_(calls) {}

  Result<uint64_t> Submit(const std::string& function, Bytes input) {
    const size_t host_index = next_++ % hosts_->size();
    FaasmInstance* host = (*hosts_)[host_index].get();
    FAASM_ASSIGN_OR_RETURN(uint64_t id, host->Submit(function, std::move(input)));
    // Bound the map for fire-and-forget drivers that never Await: finished
    // calls fall back to the call_id spread below, so dropping them is safe.
    if (submitted_on_.size() >= kMaxTrackedSubmissions) {
      for (auto it = submitted_on_.begin(); it != submitted_on_.end();) {
        it = calls_->IsFinished(it->first) ? submitted_on_.erase(it) : std::next(it);
      }
    }
    submitted_on_[id] = host;
    return id;
  }

  // Awaits on the host the call was submitted to, so no single host becomes
  // a hidden serialisation point for every client await.
  Result<int> Await(uint64_t call_id) {
    FaasmInstance* host = (*hosts_)[call_id % hosts_->size()].get();  // spread unknown ids
    auto it = submitted_on_.find(call_id);
    if (it != submitted_on_.end()) {
      host = it->second;
    }
    auto code = host->Await(call_id);
    if (it != submitted_on_.end()) {
      submitted_on_.erase(it);
    }
    return code;
  }

  Result<int> Invoke(const std::string& function, Bytes input) {
    FAASM_ASSIGN_OR_RETURN(uint64_t id, Submit(function, std::move(input)));
    return Await(id);
  }

  Result<Bytes> Output(uint64_t call_id) { return calls_->Output(call_id); }

 private:
  static constexpr size_t kMaxTrackedSubmissions = 1 << 16;

  std::vector<std::unique_ptr<FaasmInstance>>* hosts_;
  CallTable* calls_;
  size_t next_ = 0;
  // call id -> host it was submitted to (one driver activity per Frontend,
  // so no locking; pointers stay valid — retired hosts outlive their calls).
  std::map<uint64_t, FaasmInstance*> submitted_on_;
};

class FaasmCluster {
 public:
  explicit FaasmCluster(ClusterConfig config = {});
  ~FaasmCluster();

  FaasmCluster(const FaasmCluster&) = delete;
  FaasmCluster& operator=(const FaasmCluster&) = delete;

  // --- Components ---------------------------------------------------------------
  FunctionRegistry& registry() { return registry_; }
  GlobalFileStore& files() { return files_; }
  // Direct, unaccounted view over every global-tier shard, routed by the
  // same ShardMap the hosts use (dataset seeding and test inspection).
  ShardedKvs& kvs() { return kvs_; }
  const ShardMap& shard_map() const { return shard_map_; }
  InProcNetwork& network() { return *network_; }
  SimClock& clock() { return executor_.clock(); }
  SimExecutor& executor() { return executor_; }
  CallTable& calls() { return calls_; }
  FaasmInstance& host(size_t index) { return *hosts_[index]; }
  size_t host_count() const { return hosts_.size(); }

  // Runs `driver` as a simulated client activity and blocks (in real time)
  // until it completes. Virtual time advances as needed.
  void Run(const std::function<void(Frontend&)>& driver);

  // --- Elastic membership ------------------------------------------------------
  // Adds a host (named "host-<n>", n monotonically increasing). In sharded
  // mode the new host serves a fresh shard: the ~1/N keys it now masters
  // are streamed onto it BEFORE the ShardMap epoch flips, so a route
  // resolved at either epoch finds the data (stale routes get kWrongMaster
  // redirects). In central mode this only adds compute — the tier is
  // untouched and the epoch does not move. Call from the driver activity.
  Result<std::string> AddHost();
  // Gracefully removes `name`: the host withdraws from every warm set,
  // in-flight calls (and the work-sharing mailbox) run down, then — in
  // sharded mode — every key its shard masters is streamed to the
  // survivors and the epoch flips. The instance is retired, not destroyed:
  // pending Awaits against it stay valid until Shutdown. Refuses to remove
  // the last host. Call from the driver activity.
  Status RemoveHost(const std::string& name);
  // Abruptly kills `name` AND runs recovery — the oracle path: no drain, no
  // handoff. The host's endpoints vanish (peers and clients fail fast with
  // kUnavailable and re-route), calls sitting unexecuted in its mailbox fail
  // with Internal, in-flight executions run to completion as zombies. In
  // sharded mode the dead shard's keys are then recovered: with replication
  // every key it mastered is promoted from a surviving backup BEFORE the
  // epoch flips (acked updates survive); at factor 1 they are lost and
  // counted. Refuses to kill the last host. Call from the driver activity.
  // Under failure_detection the detector is told to stand down for this
  // host (Forget) — the oracle beat it to the recovery.
  Result<FailoverStats> KillHost(const std::string& name);
  // Crashes `name` WITHOUT recovery or any oracle notification: the pulled
  // plug. The host's endpoints vanish and its mail fails exactly as in
  // KillHost, and its stores are sealed — the machine's memory is gone, so
  // its own zombies bounce off the local fast path and its replica copies
  // can never again source a promotion. But the shard map, backup sets and
  // failover stats are untouched: recovery happens only when the failure
  // detector confirms the death (requires failure_detection; without it the
  // dead shard stays orphaned and every op on it retries into a deadline
  // error). Refuses to crash the last host. Call from the driver activity.
  Status CrashHost(const std::string& name);
  // Cumulative shard-migration accounting across every membership change.
  const MigrationStats& migration_stats() const { return migration_stats_; }
  // Cumulative failover accounting across every KillHost.
  const FailoverStats& failover_stats() const { return failover_stats_; }
  // The replication substrate, or null at replication_factor 1 (and in
  // central mode). Tests and benches read its stats().
  const ReplicationManager* replication() const { return replication_.get(); }
  // The failure detector, or null unless failure_detection is on. Benches
  // read deaths() for detection-latency accounting; a death is published
  // there only AFTER its recovery completed, so waiting out death_count()
  // also waits out the failover.
  const FailureDetector* failure_detector() const { return detector_.get(); }

  // --- Cluster-wide metrics --------------------------------------------------------
  uint64_t network_bytes() const { return network_->total_bytes(); }
  double billable_gb_seconds() const;
  size_t cold_start_count() const;
  size_t warm_faaslet_count() const;

  void Shutdown();

 private:
  // Builds (but does not start) a host with the cluster-wide HostConfig.
  std::unique_ptr<FaasmInstance> MakeHost(const std::string& name, KvStore* local_shard);
  // Allocates and wires `name`'s global-tier shard: store table, seeding
  // view, and the live-map ownership guard. Returns the store.
  KvStore* RegisterShard(const std::string& name);
  // The detector's DeathHandler: takes the membership lock and recovers the
  // confirmed-dead host's shard. Runs on the detector activity.
  void HandleConfirmedDeath(const std::string& name);
  // The shared recovery entry both KillHost (oracle) and HandleConfirmedDeath
  // (detection) drive: fence the dead primary AND its replica mirror,
  // quiesce, promote from surviving backups (or count the loss at factor 1),
  // flip the epoch, Reconcile, accumulate failover stats. Idempotent per
  // host name — whichever path arrives second is a no-op. Caller must hold
  // membership_lock_.
  FailoverStats RecoverDeadShardLocked(const std::string& name);
  // `key`'s last forwarded-mutation seq at its current master, or ~0 when
  // the master's store cannot be resolved (forces async replica reads to
  // fall through). The freshness probe async-mode replica reads are gated
  // on: models the seq metadata the replication channel already carries, so
  // it is unaccounted. Runs on client threads — touches shard_stores_ only
  // under shard_stores_mutex_.
  uint64_t PrimaryKeySeq(const std::string& key);

  ClusterConfig config_;
  SimExecutor executor_;
  std::unique_ptr<InProcNetwork> network_;
  // Global tier: per-host shards (kSharded) or one store (kCentral). The
  // shards outlive hosts_ (each host serves its shard on "kvs:<host>");
  // shards of removed hosts stay allocated (empty, ownership-guarded) so
  // straggler ops bounce instead of faulting.
  ShardMap shard_map_;
  std::vector<std::unique_ptr<KvStore>> kvs_shards_;
  std::map<std::string, KvStore*> shard_stores_;  // endpoint -> shard (migration)
  // Guards shard_stores_ between AddHost's insert (driver activity, under
  // membership_lock_) and PrimaryKeySeq's lookup (client threads, which hold
  // no membership lock). Other readers run under membership_lock_ and need
  // no extra guard; store pointers themselves are stable for the cluster's
  // lifetime (kvs_shards_ only grows).
  mutable std::mutex shard_stores_mutex_;
  std::unique_ptr<KvsServer> central_kvs_server_;  // kCentral only
  // Replication substrate (sharded mode, replication_factor > 1): owns every
  // host's replica shard/server/replicator. Constructed before the first
  // RegisterShard so hosts attach as their shards appear.
  std::unique_ptr<ReplicationManager> replication_;
  // Failure detector (failure_detection only). Declared after network_ so it
  // unregisters its endpoint before the network dies.
  std::unique_ptr<FailureDetector> detector_;
  // Serialises every membership-changing flow — AddHost, RemoveHost,
  // KillHost, CrashHost and the detector's HandleConfirmedDeath — against
  // each other. A PollLock, not a std::mutex: these flows sleep virtual time
  // inside (drain waits, quiesce waits, failover streams), and a registered
  // thread parked in a kernel mutex would stall the virtual clock.
  PollLock membership_lock_{&executor_.clock()};
  // Host names whose crash recovery already ran (oracle or detection),
  // guarded by membership_lock_: makes the two recovery paths idempotent
  // when both notice the same death.
  std::set<std::string> recovered_hosts_;
  ShardedKvs kvs_;
  GlobalFileStore files_;
  FunctionRegistry registry_;
  CallTable calls_;
  std::vector<std::unique_ptr<FaasmInstance>> hosts_;
  // Removed-but-alive instances: their dispatchers are stopped and their
  // endpoints unregistered, but Awaits and metric reads remain valid.
  std::vector<std::unique_ptr<FaasmInstance>> retired_hosts_;
  int next_host_index_ = 0;
  MigrationStats migration_stats_;
  FailoverStats failover_stats_;
  bool shut_down_ = false;
};

}  // namespace faasm

#endif  // FAASM_RUNTIME_CLUSTER_H_
