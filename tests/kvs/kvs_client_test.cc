#include "kvs/kvs_client.h"

#include <gtest/gtest.h>

#include "runtime/cluster.h"

namespace faasm {
namespace {

class KvsClientTest : public ::testing::Test {
 protected:
  KvsClientTest() : network_(&clock_, NoLatency()), server_(&store_, &network_) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore store_;
  KvsServer server_;
};

TEST_F(KvsClientTest, SetGetRoundTrip) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("key", Bytes{5, 6, 7}).ok());
  EXPECT_EQ(client.Get("key").value(), (Bytes{5, 6, 7}));
  EXPECT_EQ(store_.Get("key").value(), (Bytes{5, 6, 7}));  // really server-side
}

TEST_F(KvsClientTest, MissingKeyPropagatesNotFound) {
  KvsClient client(&network_, "host-0");
  EXPECT_EQ(client.Get("missing").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Size("missing").status().code(), StatusCode::kNotFound);
}

TEST_F(KvsClientTest, RangedOps) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("key", Bytes{0, 1, 2, 3, 4}).ok());
  EXPECT_EQ(client.GetRange("key", 1, 3).value(), (Bytes{1, 2, 3}));
  ASSERT_TRUE(client.SetRange("key", 4, Bytes{9, 9}).ok());
  EXPECT_EQ(client.Size("key").value(), 6u);
}

TEST_F(KvsClientTest, SetRangesAppliesAllRangesInOneRoundTrip) {
  KvsClient client(&network_, "host-0");
  ASSERT_TRUE(client.Set("key", Bytes(6, 0)).ok());
  network_.ResetStats();
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{1, Bytes{7, 7}});
  ranges.push_back(ValueRange{4, Bytes{8, 8, 8}});  // extends the value to 7
  ASSERT_TRUE(client.SetRanges("key", ranges).ok());
  EXPECT_EQ(store_.Get("key").value(), (Bytes{0, 7, 7, 0, 8, 8, 8}));
  // The whole batch costs one request/response pair.
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 1u);
  EXPECT_EQ(network_.StatsFor("host-0").rx_messages, 1u);
}

TEST_F(KvsClientTest, AbsurdRangeOffsetsRejected) {
  // Offsets come off the wire: an overflowing offset + length must be
  // rejected, not wrap around and scribble past the value buffer.
  KvsClient client(&network_, "host-0");
  EXPECT_FALSE(client.SetRange("key", ~uint64_t{0} - 1, Bytes{1, 2}).ok());
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{~uint64_t{0} - 1, Bytes{1, 2}});
  EXPECT_FALSE(client.SetRanges("key", ranges).ok());
  EXPECT_FALSE(store_.Exists("key"));
}

TEST_F(KvsClientTest, SetRangesOnMissingKeyCreatesIt) {
  KvsClient client(&network_, "host-0");
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{2, Bytes{9}});
  ASSERT_TRUE(client.SetRanges("fresh", ranges).ok());
  EXPECT_EQ(store_.Get("fresh").value(), (Bytes{0, 0, 9}));
}

TEST_F(KvsClientTest, AppendReturnsNewLength) {
  KvsClient client(&network_, "host-0");
  EXPECT_EQ(client.Append("log", Bytes{1, 2}).value(), 2u);
  EXPECT_EQ(client.Append("log", Bytes{3}).value(), 3u);
}

TEST_F(KvsClientTest, ExistsAndDelete) {
  KvsClient client(&network_, "host-0");
  EXPECT_FALSE(client.Exists("k").value());
  ASSERT_TRUE(client.Set("k", Bytes{1}).ok());
  EXPECT_TRUE(client.Exists("k").value());
  ASSERT_TRUE(client.Delete("k").ok());
  EXPECT_FALSE(client.Exists("k").value());
}

TEST_F(KvsClientTest, DistributedLocks) {
  KvsClient host_a(&network_, "host-a");
  KvsClient host_b(&network_, "host-b");
  EXPECT_TRUE(host_a.TryLockWrite("key").value());
  EXPECT_FALSE(host_b.TryLockWrite("key").value());
  EXPECT_FALSE(host_b.TryLockRead("key").value());
  ASSERT_TRUE(host_a.UnlockWrite("key").ok());
  EXPECT_TRUE(host_b.TryLockRead("key").value());
  ASSERT_TRUE(host_b.UnlockRead("key").ok());
}

TEST_F(KvsClientTest, SetOps) {
  KvsClient client(&network_, "host-0");
  EXPECT_TRUE(client.SetAdd("warm:f", "host-0").value());
  EXPECT_FALSE(client.SetAdd("warm:f", "host-0").value());
  auto members = client.SetMembers("warm:f");
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(members.value(), (std::vector<std::string>{"host-0"}));
  EXPECT_TRUE(client.SetRemove("warm:f", "host-0").value());
}

// --- kWrongMaster redirect path ------------------------------------------------

TEST_F(KvsClientTest, WrongMasterSurfacesImmediatelyWithoutShardMap) {
  // A centralised client has no alternate route: when its one server
  // answers kWrongMaster (here: an ownership-checking shard server that
  // does not master the key), the error surfaces instead of retrying.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  map.AddShard(ShardMap::EndpointForHost("host-2"));
  KvStore shard;
  KvsServer shard_server(&shard, &network_, ShardMap::EndpointForHost("host-1"), &map);

  std::string foreign_key;
  for (int i = 0; i < 100000 && foreign_key.empty(); ++i) {
    std::string probe = "probe-" + std::to_string(i);
    if (map.MasterFor(probe) == ShardMap::EndpointForHost("host-2")) {
      foreign_key = std::move(probe);
    }
  }
  ASSERT_FALSE(foreign_key.empty());

  KvsClient pinned(&network_, "host-0", ShardMap::EndpointForHost("host-1"));
  network_.ResetStats();
  EXPECT_EQ(pinned.Set(foreign_key, Bytes{1}).code(), StatusCode::kWrongMaster);
  EXPECT_EQ(pinned.Get(foreign_key).status().code(), StatusCode::kWrongMaster);
  // No retry storm: exactly one round trip per op.
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 2u);
  EXPECT_FALSE(shard.Exists(foreign_key));
}

TEST_F(KvsClientTest, RoutedClientRetriesWrongMasterUntilOpLands) {
  // A sharded client that gets kWrongMaster (stale route / key frozen
  // mid-migration) backs off and retries the op; when the redirect clears
  // (here: a scripted endpoint that bounces the first two attempts, as a
  // mid-handoff shard would) the op lands. This is the client half of the
  // redirect protocol; the store half is covered by kv_store_test.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  int attempts = 0;
  network_.RegisterEndpoint(ShardMap::EndpointForHost("host-1"), [&](const Bytes&) {
    ++attempts;
    const StatusCode code = attempts <= 2 ? StatusCode::kWrongMaster : StatusCode::kOk;
    return Bytes{static_cast<uint8_t>(code)};
  });
  KvsClient client(&network_, "host-0", &map, /*local_store=*/nullptr);
  Status status = client.Set("migrating-key", Bytes{7});
  ASSERT_TRUE(status.ok()) << status.ToString();
  EXPECT_EQ(attempts, 3);  // two redirects, then the op landed
  network_.UnregisterEndpoint(ShardMap::EndpointForHost("host-1"));
}

// --- Central-tier no-op membership behaviour -----------------------------------

TEST_F(KvsClientTest, CentralTierAddRemoveHostLeavesTierUntouched) {
  // With state_tier = kCentral, AddHost/RemoveHost change compute only: the
  // single "kvs" endpoint keeps mastering everything, the epoch never
  // moves, nothing migrates, and clients never see a redirect.
  ClusterConfig config;
  config.hosts = 2;
  config.state_tier = StateTier::kCentral;
  FaasmCluster cluster(config);
  ASSERT_TRUE(cluster.kvs().Set("stable", Bytes{4, 2}).ok());
  const uint64_t epoch_before = cluster.shard_map().epoch();

  cluster.Run([&](Frontend&) {
    auto added = cluster.AddHost();
    ASSERT_TRUE(added.ok());
    EXPECT_EQ(cluster.host(cluster.host_count() - 1).name(), added.value());
    // The new host's client routes to the central endpoint like everyone.
    EXPECT_FALSE(cluster.host(cluster.host_count() - 1).kvs().MasterLocal("stable"));
    EXPECT_EQ(cluster.host(0).kvs().Get("stable").value(), (Bytes{4, 2}));

    ASSERT_TRUE(cluster.RemoveHost(added.value()).ok());
    EXPECT_EQ(cluster.host(0).kvs().Get("stable").value(), (Bytes{4, 2}));
  });

  EXPECT_EQ(cluster.shard_map().epoch(), epoch_before);
  EXPECT_EQ(cluster.shard_map().MasterFor("stable"), "kvs");
  EXPECT_EQ(cluster.migration_stats().epoch_flips, 0u);
  EXPECT_EQ(cluster.migration_stats().keys_moved, 0u);
  EXPECT_EQ(cluster.migration_stats().bytes_moved, 0u);
}

TEST_F(KvsClientTest, TrafficIsAccounted) {
  KvsClient client(&network_, "host-0");
  network_.ResetStats();
  ASSERT_TRUE(client.Set("key", Bytes(1000)).ok());
  // Request carries at least the 1000-byte value.
  EXPECT_GT(network_.StatsFor("host-0").tx_bytes, 1000u);
  const uint64_t after_set = network_.total_bytes();
  auto value = client.Get("key");
  ASSERT_TRUE(value.ok());
  EXPECT_GT(network_.total_bytes(), after_set + 1000);  // response carries value
}

}  // namespace
}  // namespace faasm
