// DirtyTracker tests: marking, run coalescing (adjacent and disjoint),
// clipping, clear semantics and the grab-and-clear collection used by delta
// push.
#include "mem/dirty_tracker.h"

#include <gtest/gtest.h>

#include <thread>

namespace faasm {
namespace {

constexpr size_t kPage = 4096;

TEST(DirtyTrackerTest, StartsClean) {
  DirtyTracker tracker(16 * kPage);
  EXPECT_FALSE(tracker.ever_marked());
  EXPECT_FALSE(tracker.any_dirty());
  EXPECT_EQ(tracker.dirty_page_count(), 0u);
  EXPECT_TRUE(tracker.CollectDirtyRuns().empty());
}

TEST(DirtyTrackerTest, MarkCoversEveryTouchedPage) {
  DirtyTracker tracker(16 * kPage);
  // 2 bytes straddling the page 1/2 boundary dirty both pages.
  tracker.MarkDirty(2 * kPage - 1, 2);
  EXPECT_TRUE(tracker.ever_marked());
  EXPECT_EQ(tracker.dirty_page_count(), 2u);
  const auto runs = tracker.CollectDirtyRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (DirtyRun{kPage, 2 * kPage}));
}

TEST(DirtyTrackerTest, AdjacentMarksCoalesceIntoOneRun) {
  DirtyTracker tracker(16 * kPage);
  tracker.MarkDirty(3 * kPage, kPage);
  tracker.MarkDirty(4 * kPage, 10);
  tracker.MarkDirty(5 * kPage + 100, 50);
  const auto runs = tracker.CollectDirtyRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (DirtyRun{3 * kPage, 3 * kPage}));
}

TEST(DirtyTrackerTest, DisjointMarksStayDisjointRuns) {
  DirtyTracker tracker(16 * kPage);
  tracker.MarkDirty(0, 1);
  tracker.MarkDirty(5 * kPage, 1);
  tracker.MarkDirty(15 * kPage, kPage);
  const auto runs = tracker.CollectDirtyRuns();
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(runs[0], (DirtyRun{0, kPage}));
  EXPECT_EQ(runs[1], (DirtyRun{5 * kPage, kPage}));
  EXPECT_EQ(runs[2], (DirtyRun{15 * kPage, kPage}));
}

TEST(DirtyTrackerTest, RunsSpanWordBoundaries) {
  // 200 pages > three 64-page bitmap words; one run across all of them.
  DirtyTracker tracker(200 * kPage);
  tracker.MarkDirty(10 * kPage, 180 * kPage);
  const auto runs = tracker.CollectDirtyRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (DirtyRun{10 * kPage, 180 * kPage}));
}

TEST(DirtyTrackerTest, FullExtentRunClosesAtLastPage) {
  DirtyTracker tracker(64 * kPage);  // exactly one bitmap word
  tracker.MarkDirty(0, 64 * kPage);
  const auto runs = tracker.CollectDirtyRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (DirtyRun{0, 64 * kPage}));
}

TEST(DirtyTrackerTest, MarksPastExtentAreClipped) {
  DirtyTracker tracker(4 * kPage);
  tracker.MarkDirty(10 * kPage, kPage);  // entirely past: dropped
  EXPECT_FALSE(tracker.any_dirty());
  tracker.MarkDirty(3 * kPage + 1, 4 * kPage);  // straddles the end: clipped
  const auto runs = tracker.CollectDirtyRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (DirtyRun{3 * kPage, kPage}));
}

TEST(DirtyTrackerTest, ClearDirtyKeepsEverMarked) {
  DirtyTracker tracker(16 * kPage);
  tracker.MarkDirty(0, 1);
  tracker.ClearDirty();
  EXPECT_FALSE(tracker.any_dirty());
  EXPECT_TRUE(tracker.CollectDirtyRuns().empty());
  // ever_marked survives: consumers still know this value has a reporting
  // writer and must not fall back to full transfers.
  EXPECT_TRUE(tracker.ever_marked());
}

TEST(DirtyTrackerTest, CollectAndClearGrabsAtomically) {
  DirtyTracker tracker(16 * kPage);
  tracker.MarkDirty(2 * kPage, kPage);
  const auto runs = tracker.CollectAndClearDirtyRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_FALSE(tracker.any_dirty());
  // A failed downstream transfer re-marks the runs and the next collection
  // sees them again.
  tracker.MarkDirty(runs[0].offset, runs[0].len);
  EXPECT_EQ(tracker.CollectDirtyRuns(), runs);
}

TEST(DirtyTrackerTest, ConcurrentMarksAllLand) {
  DirtyTracker tracker(256 * kPage);
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&tracker, t] {
      for (size_t page = t; page < 256; page += 4) {
        tracker.MarkDirty(page * kPage, 1);
      }
    });
  }
  for (auto& writer : writers) {
    writer.join();
  }
  EXPECT_EQ(tracker.dirty_page_count(), 256u);
  const auto runs = tracker.CollectDirtyRuns();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0], (DirtyRun{0, 256 * kPage}));
}

}  // namespace
}  // namespace faasm
