#include "state/state_key_value.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"

namespace faasm {

StateKeyValue::StateKeyValue(std::string key, KvsClient* kvs, Clock* clock)
    : key_(std::move(key)), kvs_(kvs), clock_(clock), local_lock_(clock) {}

Status StateKeyValue::EnsureCapacity(size_t size) {
  if (region_ != nullptr) {
    if (size > region_->mapped_size()) {
      return ResourceExhausted("state value '" + key_ + "' exceeds replica capacity");
    }
    size_ = std::max(size_, size);
    return OkStatus();
  }
  FAASM_ASSIGN_OR_RETURN(auto region, SharedRegion::Create("state:" + key_, size));
  region_ = std::move(region);
  size_ = size;
  {
    std::lock_guard<std::mutex> guard(pages_mutex_);
    page_present_.assign((size + kStatePageBytes - 1) / kStatePageBytes, false);
  }
  return OkStatus();
}

uint8_t* StateKeyValue::data() { return region_ == nullptr ? nullptr : region_->host_view(); }

uint8_t* StateKeyValue::WritableData(size_t offset, size_t len) {
  if (region_ == nullptr || offset + len > size_ || offset + len < offset) {
    return nullptr;
  }
  // Write-allocate the partially covered boundary pages: a delta push ships
  // whole pages, so a dirty page the replica never pulled would push local
  // zeros over live bytes in the global tier. Filling the page first makes
  // the later page-granular push a faithful read-modify-write. (A missing
  // global value has nothing to clobber; that pull failure is ignored.)
  if (len > 0) {
    auto fill_if_partial = [this](size_t page_start, size_t covered_from, size_t covered_to) {
      const size_t page_end = std::min(page_start + kStatePageBytes, size_);
      if (covered_from <= page_start && covered_to >= page_end) {
        return;  // fully covered: the caller overwrites every byte
      }
      {
        std::lock_guard<std::mutex> guard(pages_mutex_);
        const size_t page = page_start / kStatePageBytes;
        if (page >= page_present_.size() || page_present_[page]) {
          return;
        }
      }
      (void)PullChunk(page_start, page_end - page_start);
    };
    const size_t first_page_start = (offset / kStatePageBytes) * kStatePageBytes;
    const size_t last_page_start = ((offset + len - 1) / kStatePageBytes) * kStatePageBytes;
    fill_if_partial(first_page_start, offset, offset + len);
    if (last_page_start != first_page_start) {
      fill_if_partial(last_page_start, offset, offset + len);
    }
  }
  MarkDirty(offset, len);
  return region_->host_view() + offset;
}

void StateKeyValue::MarkDirty(size_t offset, size_t len) {
  if (region_ != nullptr) {
    region_->dirty().MarkDirty(offset, len);
  }
}

Status StateKeyValue::FetchRange(size_t offset, size_t len) {
  // Whole-value fetches go out as whole-value reads so the per-host read
  // cache (when enabled) can serve and be refreshed by them; partial fetches
  // stay ranged and never populate the cache.
  ReadOptions options;
  options.offset = offset;
  if (offset != 0 || len < size_) {
    options.len = len;
  }
  FAASM_ASSIGN_OR_RETURN(Bytes chunk, kvs_->Read(key_, options));
  if (chunk.size() > len) {
    chunk.resize(len);  // whole-value read of a value grown since sizing
  }
  if (offset + chunk.size() > region_->mapped_size()) {
    return Internal("state fetch larger than replica");
  }
  LockWrite();
  std::memcpy(region_->host_view() + offset, chunk.data(), chunk.size());
  UnlockWrite();
  return OkStatus();
}

Status StateKeyValue::Pull() {
  // Sync point: a pull must observe this host's own earlier (possibly still
  // batched) pushes, so the pending batch flushes first.
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());
  if (pulled_fresh_.exchange(false)) {
    return OkStatus();  // a Prefetch installed the value since the last invalidation
  }
  FAASM_ASSIGN_OR_RETURN(uint64_t global_size, kvs_->Size(key_));
  FAASM_RETURN_IF_ERROR(EnsureCapacity(global_size));
  return PullChunk(0, global_size);
}

Status StateKeyValue::InstallPulled(const Bytes& value) {
  FAASM_RETURN_IF_ERROR(EnsureCapacity(value.size()));
  LockWrite();
  std::memcpy(region_->host_view(), value.data(), value.size());
  UnlockWrite();
  {
    std::lock_guard<std::mutex> guard(pages_mutex_);
    std::fill(page_present_.begin(), page_present_.end(), false);
    MarkPushedRangePresentLocked(0, value.size());
  }
  pulled_fresh_.store(true, std::memory_order_release);
  return OkStatus();
}

Status StateKeyValue::PullChunk(size_t offset, size_t len) {
  // Sync point, as in Pull(). FlushBatch is a cheap no-op when idle, so the
  // hot chunked-pull path pays only an uncontended lock when not batching.
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());
  if (region_ == nullptr) {
    // Chunked access without prior sizing: allocate at the global size.
    FAASM_ASSIGN_OR_RETURN(uint64_t global_size, kvs_->Size(key_));
    FAASM_RETURN_IF_ERROR(EnsureCapacity(global_size));
  }
  if (len == 0) {
    return OkStatus();
  }
  if (offset + len > size_) {
    return OutOfRange("pull chunk past end of state value '" + key_ + "'");
  }
  const size_t first_page = offset / kStatePageBytes;
  const size_t last_page = (offset + len - 1) / kStatePageBytes;

  // Coalesce runs of missing pages into single ranged fetches.
  size_t run_start = SIZE_MAX;
  for (size_t page = first_page; page <= last_page + 1; ++page) {
    bool missing = false;
    if (page <= last_page) {
      std::lock_guard<std::mutex> guard(pages_mutex_);
      missing = !page_present_[page];
    }
    if (missing && run_start == SIZE_MAX) {
      run_start = page;
    } else if (!missing && run_start != SIZE_MAX) {
      const size_t byte_start = run_start * kStatePageBytes;
      const size_t byte_end = std::min(size_, page * kStatePageBytes);
      FAASM_RETURN_IF_ERROR(FetchRange(byte_start, byte_end - byte_start));
      {
        std::lock_guard<std::mutex> guard(pages_mutex_);
        for (size_t p = run_start; p < page; ++p) {
          page_present_[p] = true;
        }
      }
      run_start = SIZE_MAX;
    }
  }
  return OkStatus();
}

Status StateKeyValue::Push() {
  if (region_ == nullptr) {
    return FailedPrecondition("push before any local write to '" + key_ + "'");
  }
  if (!region_->dirty().ever_marked()) {
    // No writer has ever reported through the write API: the tracker is
    // blind, so the only safe push is the whole value.
    return PushChunk(0, size_);
  }
  std::vector<DirtyRun> runs = region_->dirty().CollectAndClearDirtyRuns();
  // The tracker covers the whole mapped region; clip runs to the value.
  std::vector<ValueRange> ranges;
  ranges.reserve(runs.size());
  LockRead();
  for (DirtyRun& run : runs) {
    if (run.offset >= size_) {
      run.len = 0;
      continue;
    }
    run.len = std::min(run.len, size_ - run.offset);
    Bytes staging(run.len);
    std::memcpy(staging.data(), region_->host_view() + run.offset, run.len);
    ranges.push_back(ValueRange{run.offset, std::move(staging)});
  }
  UnlockRead();
  // Adjacent/overlapping runs fuse into maximal wire ranges (runs clipped at
  // the value tail, or re-marked after a failed push, can touch).
  ranges = MergeValueRanges(std::move(ranges));
  if (ranges.empty()) {
    return OkStatus();  // nothing dirtied since the last push
  }

  if (kvs_->batching_enabled()) {
    return PushRangesBatched(std::move(ranges));
  }

  Status pushed = kvs_->SetRanges(key_, ranges);
  if (!pushed.ok()) {
    // The global tier never saw the runs; put them back for the next push.
    RemarkRanges(ranges);
    return pushed;
  }
  MarkRangesPresent(ranges);
  return OkStatus();
}

Status StateKeyValue::PushRangesBatched(std::vector<ValueRange> ranges) {
  // Enqueue into the client's ambient batch. The ack fires exactly once with
  // the op's final status (after any kWrongMaster redirects) and settles the
  // replica bookkeeping; it may run on another activity's flush, so it only
  // touches thread-safe members. The shared_ptr keeps the region alive even
  // if this replica is dropped before a late flush.
  auto ack = std::make_shared<PushAck>();
  std::vector<DirtyRun> runs;  // offsets/lengths only, for the bookkeeping
  runs.reserve(ranges.size());
  for (const ValueRange& range : ranges) {
    runs.push_back(DirtyRun{range.offset, range.bytes.size()});
  }
  kvs_->EnqueueSetRanges(
      key_, std::move(ranges),
      [this, region = region_, runs = std::move(runs), ack](const Status& status) {
        if (status.ok()) {
          std::lock_guard<std::mutex> guard(pages_mutex_);
          for (const DirtyRun& run : runs) {
            MarkPushedRangePresentLocked(run.offset, run.len);
          }
        } else {
          // The global tier never saw the runs; put them back for the next
          // push.
          for (const DirtyRun& run : runs) {
            region->dirty().MarkDirty(run.offset, run.len);
          }
        }
        ack->status = status;
        ack->done.store(true, std::memory_order_release);
      });

  if (kvs_->InBatchScope()) {
    // Deferred: the op is acked at the scope's flush barrier (or any other
    // sync-point flush). "Accepted", not yet durable.
    return OkStatus();
  }
  // No scope open: every push is its own barrier — flush now and report THIS
  // op's status (a concurrent flush may have taken the op; wait for its ack
  // rather than trusting the aggregate).
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());
  while (!ack->done.load(std::memory_order_acquire)) {
    clock_->SleepFor(50 * kMicrosecond);
  }
  return ack->status;
}

void StateKeyValue::RemarkRanges(const std::vector<ValueRange>& ranges) {
  for (const ValueRange& range : ranges) {
    region_->dirty().MarkDirty(range.offset, range.bytes.size());
  }
}

void StateKeyValue::MarkRangesPresent(const std::vector<ValueRange>& ranges) {
  std::lock_guard<std::mutex> guard(pages_mutex_);
  for (const ValueRange& range : ranges) {
    MarkPushedRangePresentLocked(range.offset, range.bytes.size());
  }
}

Status StateKeyValue::PushFull() {
  if (region_ == nullptr) {
    return FailedPrecondition("push before any local write to '" + key_ + "'");
  }
  // The full value supersedes any pending delta.
  region_->dirty().ClearDirty();
  return PushChunk(0, size_);
}

Status StateKeyValue::PushChunk(size_t offset, size_t len) {
  if (region_ == nullptr) {
    return FailedPrecondition("push before any local write to '" + key_ + "'");
  }
  if (offset + len > size_) {
    return OutOfRange("push chunk past end of state value '" + key_ + "'");
  }
  Bytes staging(len);
  LockRead();
  std::memcpy(staging.data(), region_->host_view() + offset, len);
  UnlockRead();
  FAASM_RETURN_IF_ERROR(kvs_->SetRange(key_, offset, staging));
  std::lock_guard<std::mutex> guard(pages_mutex_);
  MarkPushedRangePresentLocked(offset, len);
  return OkStatus();
}

void StateKeyValue::MarkPushedRangePresentLocked(size_t offset, size_t len) {
  if (len == 0) {
    return;
  }
  // Only pages the push covered END TO END are now guaranteed in sync with
  // the global tier. A boundary page covered partially may still hold bytes
  // the replica never pulled; marking it present would make a later
  // PullChunk skip the fetch and read local zeros (the partial-page bug).
  const size_t end = offset + len;
  const size_t first_full = (offset + kStatePageBytes - 1) / kStatePageBytes;
  for (size_t p = first_full; p < page_present_.size(); ++p) {
    const size_t page_end = std::min((p + 1) * kStatePageBytes, size_);
    if (page_end > end) {
      break;
    }
    page_present_[p] = true;
  }
}

Status StateKeyValue::Append(const Bytes& bytes) {
  auto result = kvs_->Append(key_ + ":log", bytes);
  return result.status();
}

Result<Bytes> StateKeyValue::ReadAppended() { return kvs_->Read(key_ + ":log"); }

Status StateKeyValue::LockGlobalRead() {
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());  // sync point
  while (true) {
    FAASM_ASSIGN_OR_RETURN(bool acquired, kvs_->TryLockRead(key_));
    if (acquired) {
      RefreshForLock();
      return OkStatus();
    }
    clock_->SleepFor(100 * kMicrosecond);
  }
}

Status StateKeyValue::LockGlobalWrite() {
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());  // sync point
  while (true) {
    FAASM_ASSIGN_OR_RETURN(bool acquired, kvs_->TryLockWrite(key_));
    if (acquired) {
      RefreshForLock();
      return OkStatus();
    }
    clock_->SleepFor(100 * kMicrosecond);
  }
}

void StateKeyValue::RefreshForLock() {
  // Under a freshly acquired global lock the replica must re-pull anything it
  // cached before the lock (the lock holder it waited on may have pushed).
  // Clean pages lose their present bit; pages overlapping unpushed local
  // writes stay, or the refetch would read global bytes over them.
  pulled_fresh_.store(false, std::memory_order_release);
  if (region_ == nullptr) {
    return;
  }
  std::vector<DirtyRun> dirty = region_->dirty().CollectDirtyRuns();
  std::lock_guard<std::mutex> guard(pages_mutex_);
  std::fill(page_present_.begin(), page_present_.end(), false);
  for (const DirtyRun& run : dirty) {
    if (run.len == 0 || run.offset >= size_) {
      continue;
    }
    const size_t first = run.offset / kStatePageBytes;
    const size_t last = (run.offset + run.len - 1) / kStatePageBytes;
    for (size_t p = first; p <= last && p < page_present_.size(); ++p) {
      page_present_[p] = true;
    }
  }
}

Status StateKeyValue::UnlockGlobalRead() {
  // Sync point: updates made under the lock must be durable before the lock
  // is released, or the next acquirer could read stale global bytes.
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());
  return kvs_->UnlockRead(key_);
}
Status StateKeyValue::UnlockGlobalWrite() {
  FAASM_RETURN_IF_ERROR(kvs_->FlushBatch());  // sync point (see UnlockGlobalRead)
  return kvs_->UnlockWrite(key_);
}

void StateKeyValue::InvalidateReplica() {
  pulled_fresh_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> guard(pages_mutex_);
  std::fill(page_present_.begin(), page_present_.end(), false);
}

size_t StateKeyValue::resident_pages() const {
  std::lock_guard<std::mutex> guard(pages_mutex_);
  size_t count = 0;
  for (bool present : page_present_) {
    count += present ? 1 : 0;
  }
  return count;
}

}  // namespace faasm
