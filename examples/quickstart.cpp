// Quickstart: author a WebAssembly function, upload it to a FAASM cluster,
// invoke it, and read the result — the minimal end-to-end path.
#include <cstdio>

#include "core/guest_api.h"
#include "runtime/cluster.h"

using namespace faasm;

int main() {
  // 1. A two-host FAASM deployment (virtual-time executor, in-proc network,
  //    KVS-backed global state tier).
  FaasmCluster cluster;

  // 2. Author a function: reads its input bytes, doubles each one, writes
  //    the result. The builder emits a genuine wasm binary.
  wasm::ModuleBuilder builder;
  GuestApi api = GuestApi::ImportAll(builder);
  builder.AddMemory(1, 4);
  auto& f = builder.AddFunction("main", {}, {wasm::ValType::kI32});
  const uint32_t len = f.AddLocal(wasm::ValType::kI32);
  const uint32_t i = f.AddLocal(wasm::ValType::kI32);
  f.I32Const(64);
  f.I32Const(1024);
  f.Call(api.read_input);
  f.LocalSet(len);
  f.ForLocalLimit(i, 0, len, [&] {
    f.LocalGet(i);        // address (offset immediate 64)
    f.LocalGet(i);
    f.Load(wasm::Op::kI32Load8U, 64);
    f.I32Const(2);
    f.Emit(wasm::Op::kI32Mul);
    f.Store(wasm::Op::kI32Store8, 64);
  });
  f.I32Const(64);
  f.LocalGet(len);
  f.Call(api.write_output);
  f.I32Const(0);
  f.End();

  // 3. Upload: the binary is decoded, validated and code-generated once;
  //    every Faaslet that runs it shares the compiled module.
  Status uploaded = cluster.registry().UploadWasm("double_bytes", builder.Build());
  if (!uploaded.ok()) {
    std::fprintf(stderr, "upload failed: %s\n", uploaded.ToString().c_str());
    return 1;
  }

  // 4. Invoke through the frontend and print the output.
  cluster.Run([](Frontend& frontend) {
    auto id = frontend.Submit("double_bytes", Bytes{1, 2, 3, 40});
    if (!id.ok()) {
      return;
    }
    auto code = frontend.Await(id.value());
    auto output = frontend.Output(id.value());
    if (code.ok() && output.ok()) {
      std::printf("exit code %d, output:", code.value());
      for (uint8_t byte : output.value()) {
        std::printf(" %u", byte);
      }
      std::printf("\n");
    }
  });

  std::printf("cold starts: %zu, network bytes: %llu\n", cluster.cold_start_count(),
              static_cast<unsigned long long>(cluster.network_bytes()));
  return 0;
}
