#include "mem/meminfo.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>

namespace faasm {

size_t CurrentRssBytes() {
  FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr) {
    return 0;
  }
  long total = 0;
  long resident = 0;
  const int n = std::fscanf(f, "%ld %ld", &total, &resident);
  std::fclose(f);
  if (n != 2) {
    return 0;
  }
  return static_cast<size_t>(resident) * static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

size_t CurrentPssBytes() {
  FILE* f = std::fopen("/proc/self/smaps_rollup", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  size_t pss_kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "Pss:", 4) == 0) {
      std::sscanf(line + 4, "%zu", &pss_kb);
      break;
    }
  }
  std::fclose(f);
  return pss_kb * 1024;
}

}  // namespace faasm
