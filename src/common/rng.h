// Deterministic, seedable PRNG (xoshiro256**). Experiments must be
// reproducible run-to-run, so workloads never use std::random_device.
#ifndef FAASM_COMMON_RNG_H_
#define FAASM_COMMON_RNG_H_

#include <cstdint>

namespace faasm {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  uint64_t NextU64() {
    uint64_t* s = state_;
    const uint64_t result = Rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;
    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = Rotl(s[3], 45);
    return result;
  }

  // Uniform in [0, bound).
  uint64_t NextBelow(uint64_t bound) { return bound == 0 ? 0 : NextU64() % bound; }

  uint32_t NextU32() { return static_cast<uint32_t>(NextU64() >> 32); }

  // Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

  // Exponentially distributed value with the given mean (Poisson inter-arrivals).
  double NextExponential(double mean);

  // Standard normal via Box-Muller.
  double NextGaussian();

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace faasm

#endif  // FAASM_COMMON_RNG_H_
