// Machine-learning inference serving (§6.3). The paper serves MobileNet with
// TensorFlow Lite; the offline stand-in is a 784-128-64-10 MLP classifier
// whose weights live in FAASM state (pulled once per host into the shared
// local tier, mapped zero-copy into each Faaslet's linear memory).
//
// Two implementations of the same model:
//   - a genuine WebAssembly function authored with the module builder, which
//     exercises get_state/pull_state/read_input/write_output from guest code;
//   - a native twin used by the container baseline (and for correctness
//     cross-checks).
#ifndef FAASM_WORKLOADS_INFERENCE_H_
#define FAASM_WORKLOADS_INFERENCE_H_

#include "core/invocation_context.h"
#include "kvs/router.h"
#include "runtime/registry.h"
#include "wasm/compiled.h"

namespace faasm {

struct MlpDims {
  uint32_t input = 784;
  uint32_t hidden1 = 128;
  uint32_t hidden2 = 64;
  uint32_t output = 10;
};

// Seeds random-but-deterministic weights into the global tier; returns bytes.
size_t SeedMlpWeights(ShardedKvs& kvs, const MlpDims& dims, uint64_t seed = 99);

// Builds the wasm inference module (entrypoint "main").
Result<std::shared_ptr<const wasm::CompiledModule>> BuildMlpWasmModule(const MlpDims& dims);

// Native twin ("infer" on the container baseline).
int MlpInferNative(InvocationContext& ctx);

// Reference forward pass for correctness checks.
uint32_t MlpReference(const ShardedKvs& kvs, const MlpDims& dims, const std::vector<float>& image);

// Deterministic synthetic "image" for request i.
std::vector<float> SyntheticImage(const MlpDims& dims, uint64_t index);
Bytes EncodeImage(const std::vector<float>& image);

// Registers the wasm function under `name` on a FAASM registry.
Status RegisterMlpWasm(FunctionRegistry& registry, const std::string& name, const MlpDims& dims);
// Registers the native twin under `name` (baseline registry).
Status RegisterMlpNative(FunctionRegistry& registry, const std::string& name);

}  // namespace faasm

#endif  // FAASM_WORKLOADS_INFERENCE_H_
