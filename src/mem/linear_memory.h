// LinearMemory: a WebAssembly linear memory backed by a large PROT_NONE
// virtual reservation. Pages are committed on memory.grow; shared regions
// (memfd-backed) can be mapped MAP_SHARED | MAP_FIXED at wasm-page-aligned
// guest offsets so the function sees one dense linear address space whose
// tail pages alias shared physical memory (paper §3.3, Fig. 2).
//
// Out-of-bounds enforcement depends on the interpreter's bounds tier
// (wasm/instance.h GuestBounds). The checked tier tests InBounds() before
// every access. The guard-page tier elides those tests: the reservation
// spans the entire reachable range of a 32-bit address plus a 32-bit static
// offset, so any unchecked guest access past the committed frontier lands on
// a PROT_NONE page and raises SIGSEGV, which a scoped handler
// (wasm/guard_trap.h) converts back into an ordinary out-of-bounds trap.
// Either way the fault never escapes the sandbox; only the mechanism —
// branch vs. signal — differs.
#ifndef FAASM_MEM_LINEAR_MEMORY_H_
#define FAASM_MEM_LINEAR_MEMORY_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "common/status.h"
#include "mem/dirty_tracker.h"
#include "mem/page.h"
#include "mem/shared_region.h"

namespace faasm {

class LinearMemory {
 public:
  // Committed memory can cover at most the full 32-bit wasm address space.
  static constexpr size_t kMaxLinearBytes = size_t{1} << 32;

  // The reservation covers every address the interpreter's guard-page tier
  // can compute without a bounds check: a u32 base address plus a u32 static
  // offset (< 2^33), plus one wasm page of redzone for the widest access.
  // Everything past kMaxLinearBytes is permanently PROT_NONE.
  static constexpr size_t kReservationBytes = (size_t{1} << 33) + kWasmPageBytes;

  // `initial_pages`/`max_pages` are wasm (64 KiB) pages. `max_pages` is the
  // per-function memory limit enforced on grow (§3.2 "Memory").
  static Result<std::unique_ptr<LinearMemory>> Create(uint32_t initial_pages, uint32_t max_pages);

  ~LinearMemory();

  LinearMemory(const LinearMemory&) = delete;
  LinearMemory& operator=(const LinearMemory&) = delete;

  uint32_t size_pages() const { return size_pages_; }
  uint32_t max_pages() const { return max_pages_; }
  size_t size_bytes() const { return static_cast<size_t>(size_pages_) * kWasmPageBytes; }

  // memory.grow semantics: returns previous size in pages, or -1 (as u32)
  // when the limit would be exceeded.
  uint32_t Grow(uint32_t delta_pages);

  // Bounds check a guest range [offset, offset+len).
  bool InBounds(uint64_t offset, uint64_t len) const {
    return offset + len <= size_bytes() && offset + len >= offset;
  }

  // Raw base pointer; callers must bounds check first (the interpreter and
  // host interface do so on every access).
  uint8_t* base() { return base_; }
  const uint8_t* base() const { return base_; }

  // Checked typed accessors used by the host interface.
  Status Read(uint64_t offset, void* dst, size_t len) const;
  Status Write(uint64_t offset, const void* src, size_t len);

  // --- Dirty tracking -------------------------------------------------------
  //
  // Every write path (host-interface Write, interpreter stores) records the
  // touched host pages here. Marks inside a shared-region mapping are
  // forwarded to the region's own tracker (so state delta pushes see guest
  // stores); marks in the private prefix feed the delta reset, which restores
  // only dirtied pages from the creation snapshot.
  void MarkDirty(uint64_t offset, uint64_t len) {
    if (shared_mappings_.empty() ||
        offset + len <= shared_mappings_.front().guest_offset) {
      dirty_->MarkDirty(offset, len);
      return;
    }
    MarkDirtySlow(offset, len);
  }
  DirtyTracker& dirty() { return *dirty_; }

  // Restores dirty private pages from `src` (the creation snapshot image):
  // pages below `len` are copied back, dirty pages past the snapshot are
  // zeroed. Only valid when the non-dirty pages already match the snapshot,
  // i.e. after a prior full restore or capture. Unmaps shared regions and
  // clears the tracker.
  Status RestoreDirtyFrom(const uint8_t* src, size_t len);

  // Reads a NUL-terminated guest string with an upper bound.
  Result<std::string> ReadCString(uint32_t offset, uint32_t max_len = 4096) const;

  // --- Shared regions -------------------------------------------------------
  //
  // Extends the linear memory by `region->size()` (rounded up to whole wasm
  // pages) and maps the region's pages at the new offset. Returns the guest
  // offset at which the region is visible. The mapping is recorded so that
  // snapshots and resets can restore a pristine private memory.
  Result<uint32_t> MapSharedRegion(std::shared_ptr<SharedRegion> region);

  // Removes all shared-region mappings and shrinks memory back to the private
  // prefix, restoring anonymous pages underneath. Used on Faaslet reset.
  Status UnmapSharedRegions();

  struct SharedMapping {
    uint32_t guest_offset;
    uint32_t mapped_pages;  // wasm pages
    std::shared_ptr<SharedRegion> region;
  };
  const std::vector<SharedMapping>& shared_mappings() const { return shared_mappings_; }

  // Size of the private region (bytes before the first shared mapping).
  size_t private_bytes() const;

  // --- Snapshot support -----------------------------------------------------
  //
  // Restores the first `len` bytes from `src` and zeroes the rest of the
  // committed private prefix. Grows if needed. Used by memcpy-based restore.
  Status RestoreFromBytes(const uint8_t* src, size_t len);

  // Maps `fd` (a snapshot memfd of `len` bytes) copy-on-write over the start
  // of memory. Pages are shared with the snapshot until first write.
  Status RestoreCopyOnWrite(int fd, size_t len);

 private:
  LinearMemory(uint8_t* base, uint32_t initial_pages, uint32_t max_pages)
      : base_(base),
        size_pages_(initial_pages),
        max_pages_(max_pages),
        dirty_(std::make_unique<DirtyTracker>(static_cast<size_t>(max_pages) * kWasmPageBytes,
                                              kHostPageBytes)) {}

  Status CommitPages(size_t from_byte, size_t to_byte);
  void MarkDirtySlow(uint64_t offset, uint64_t len);

  uint8_t* base_;
  uint32_t size_pages_;
  uint32_t max_pages_;
  std::unique_ptr<DirtyTracker> dirty_;
  std::vector<SharedMapping> shared_mappings_;
};

}  // namespace faasm

#endif  // FAASM_MEM_LINEAR_MEMORY_H_
