#include "wasm/guard_trap.h"

#include <signal.h>

#include <cstring>
#include <mutex>

namespace faasm::wasm {

namespace {

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

thread_local internal::GuardWindow* g_active_window = nullptr;

// Async-signal context: reads only the faulting address and the thread's
// window stack head, then either longjmps out or restores the default
// disposition so the re-executed access crashes normally.
void GuardSignalHandler(int sig, siginfo_t* info, void* /*ucontext*/) {
  internal::GuardWindow* window = g_active_window;
  const uint8_t* addr = static_cast<const uint8_t*>(info->si_addr);
  if (window != nullptr && addr >= window->base && addr < window->base + window->len) {
    siglongjmp(window->jump_buffer, 1);
  }
  signal(sig, SIG_DFL);
}

std::once_flag g_install_once;

void InstallGuardHandler() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_sigaction = GuardSignalHandler;
  sa.sa_flags = SA_SIGINFO;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGSEGV, &sa, nullptr);
  sigaction(SIGBUS, &sa, nullptr);
}

}  // namespace

bool GuardTrapSupported() { return !kSanitized; }

GuardTrapScope::GuardTrapScope(const uint8_t* base, size_t len) {
  std::call_once(g_install_once, InstallGuardHandler);
  window_.base = base;
  window_.len = len;
  window_.prev = g_active_window;
  g_active_window = &window_;
}

GuardTrapScope::~GuardTrapScope() { g_active_window = window_.prev; }

}  // namespace faasm::wasm
