// Instance: an executing instantiation of a compiled module — globals, table,
// linear memory and a value/call stack. One Faaslet owns one Instance; many
// instances share one immutable CompiledModule.
//
// Execution is a pre-decoded switch interpreter. It enforces the wasm
// security model at run time: every memory access is bounds checked against
// the Faaslet's LinearMemory, control flow can only follow validated edges,
// and indirect calls check signatures. An optional fuel limit bounds
// execution for tests and fair scheduling.
#ifndef FAASM_WASM_INSTANCE_H_
#define FAASM_WASM_INSTANCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "mem/linear_memory.h"
#include "wasm/compiled.h"

namespace faasm::wasm {

class Instance;

// A host function made available to the guest as a function import. `args`
// holds `n_args` values in declaration order; results (0 or 1) are written to
// `results`. A non-OK return becomes a trap in the guest.
using HostFn = std::function<Status(Instance&, const Value* args, size_t n_args, Value* results)>;

// Resolves module/name import pairs to host functions at instantiation time.
class ImportResolver {
 public:
  virtual ~ImportResolver() = default;
  virtual Result<HostFn> Resolve(const Import& import, const FuncType& type) = 0;
};

// Convenience resolver backed by a map of "module.name" -> HostFn.
class MapImportResolver : public ImportResolver {
 public:
  void Register(const std::string& module, const std::string& name, HostFn fn);
  Result<HostFn> Resolve(const Import& import, const FuncType& type) override;

 private:
  std::vector<std::tuple<std::string, std::string, HostFn>> entries_;
};

struct InstanceOptions {
  // Maximum call-frame depth before a stack-exhaustion trap.
  uint32_t max_call_depth = 1024;
  // Maximum operand stack entries (8 bytes each).
  uint32_t max_stack_values = 1u << 20;
  // Default memory max (wasm pages) when the module declares none.
  uint32_t default_max_pages = 1u << 12;  // 256 MiB
};

class Instance {
 public:
  // `external_memory` lets the embedder (the Faaslet) own the linear memory;
  // when null the instance creates and owns one from the module's limits.
  static Result<std::unique_ptr<Instance>> Create(
      std::shared_ptr<const CompiledModule> compiled, ImportResolver* resolver,
      LinearMemory* external_memory = nullptr, const InstanceOptions& options = {});

  // Invokes an exported function.
  Result<std::vector<Value>> CallExport(const std::string& name, std::vector<Value> args);

  // Invokes any function by index (imports included).
  Result<std::vector<Value>> CallFunction(uint32_t func_index, std::vector<Value> args);

  LinearMemory& memory() { return *memory_; }
  const CompiledModule& compiled() const { return *compiled_; }

  // --- Globals (snapshot support) -------------------------------------------
  const std::vector<Value>& globals() const { return globals_; }
  Status SetGlobals(std::vector<Value> globals);

  // --- Execution accounting --------------------------------------------------
  // 0 disables the limit. The budget applies per CallExport/CallFunction.
  void set_fuel_limit(uint64_t fuel) { fuel_limit_ = fuel; }
  uint64_t instructions_retired() const { return instructions_retired_; }

 private:
  struct Frame {
    const CompiledFunction* fn;
    uint32_t pc;
    uint32_t locals_base;   // stack index of param 0
    uint32_t operand_base;  // stack index of the first operand slot
  };

  Instance(std::shared_ptr<const CompiledModule> compiled, const InstanceOptions& options)
      : compiled_(std::move(compiled)), options_(options) {}

  Status Instantiate(ImportResolver* resolver, LinearMemory* external_memory);

  // Runs the interpreter until the entry frame returns.
  Status Run();

  Status CallHostFunction(uint32_t func_index);

  // Pushes a wasm call frame; args must already be on the stack.
  Status PushFrame(uint32_t func_index);

  bool EnsureStack(size_t needed_slots);

  std::shared_ptr<const CompiledModule> compiled_;
  InstanceOptions options_;

  std::unique_ptr<LinearMemory> owned_memory_;
  LinearMemory* memory_ = nullptr;

  std::vector<Value> globals_;
  std::vector<uint32_t> table_;  // function indices; UINT32_MAX = null
  std::vector<HostFn> host_functions_;

  std::vector<Value> stack_;
  size_t sp_ = 0;
  std::vector<Frame> frames_;

  uint64_t fuel_limit_ = 0;
  uint64_t instructions_retired_ = 0;
};

}  // namespace faasm::wasm

#endif  // FAASM_WASM_INSTANCE_H_
