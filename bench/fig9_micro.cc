// Figure 9: execution overhead of the wasm substrate vs native —
// (a) Polybench-style kernels, (b) the MiniVM dynamic-language runtime
// (CPython analogue). google-benchmark binary; each wasm benchmark reports a
// "vs_native" counter with the slowdown factor.
//
// NOTE (EXPERIMENTS.md): this substrate is an *interpreter*, the paper used
// the WAVM JIT, so absolute factors are larger than the paper's 1-1.6x; the
// relative shape across kernels is what this figure reproduces.
//
// STATE-OP MICRO MODE (`--state-batch`, implied by `--json`): instead of the
// google-benchmark kernels, runs the batched-vs-unbatched KVS protocol
// microbenchmark (bench/state_batch_util.h) — K counters mastered across M
// shards, pushed per round through one StateBatch barrier vs one RPC per
// key — and writes the columns as the CI artifact BENCH_batch.json:
//
//   fig9_micro --state-batch [--tiny] [--json BENCH_batch.json]
#include <benchmark/benchmark.h>

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/state_batch_util.h"
#include "common/clock.h"
#include "wasm/instance.h"
#include "workloads/kernels.h"
#include "workloads/minivm.h"

namespace faasm {
namespace {

constexpr uint32_t kKernelSize = 48;

double NativeKernelTimeNs(size_t index) {
  static std::map<size_t, double> cache;
  auto it = cache.find(index);
  if (it != cache.end()) {
    return it->second;
  }
  const Kernel& kernel = PolybenchKernels()[index];
  Stopwatch watch;
  int reps = 0;
  double sink = 0;
  while (watch.ElapsedNs() < 50 * kMillisecond) {
    sink += kernel.native(kKernelSize);
    ++reps;
  }
  benchmark::DoNotOptimize(sink);
  const double per_rep = static_cast<double>(watch.ElapsedNs()) / reps;
  cache[index] = per_rep;
  return per_rep;
}

void BM_KernelNative(benchmark::State& state) {
  const Kernel& kernel = PolybenchKernels()[state.range(0)];
  state.SetLabel(kernel.name + "/native");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.native(kKernelSize));
  }
}

void BM_KernelWasm(benchmark::State& state) {
  const Kernel& kernel = PolybenchKernels()[state.range(0)];
  state.SetLabel(kernel.name + "/wasm");
  auto module = kernel.build_wasm().value();
  double total_ns = 0;
  int reps = 0;
  for (auto _ : state) {
    Stopwatch watch;
    benchmark::DoNotOptimize(RunKernelWasm(module, kKernelSize).value());
    total_ns += static_cast<double>(watch.ElapsedNs());
    ++reps;
  }
  state.counters["vs_native"] = (total_ns / reps) / NativeKernelTimeNs(state.range(0));
}

double NativeMiniVmTimeNs(size_t index) {
  static std::map<size_t, double> cache;
  auto it = cache.find(index);
  if (it != cache.end()) {
    return it->second;
  }
  const MviProgram& program = MiniVmBenchmarks()[index];
  Stopwatch watch;
  int reps = 0;
  while (watch.ElapsedNs() < 50 * kMillisecond) {
    benchmark::DoNotOptimize(RunMiniVmNative(program.code).value());
    ++reps;
  }
  const double per_rep = static_cast<double>(watch.ElapsedNs()) / reps;
  cache[index] = per_rep;
  return per_rep;
}

void BM_MiniVmNative(benchmark::State& state) {
  const MviProgram& program = MiniVmBenchmarks()[state.range(0)];
  state.SetLabel(program.name + "/native-runtime");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMiniVmNative(program.code).value());
  }
}

void BM_MiniVmWasm(benchmark::State& state) {
  const MviProgram& program = MiniVmBenchmarks()[state.range(0)];
  state.SetLabel(program.name + "/runtime-in-faaslet");
  auto module = BuildMiniVmWasm(program.code).value();
  double total_ns = 0;
  int reps = 0;
  for (auto _ : state) {
    Stopwatch watch;
    auto instance = wasm::Instance::Create(module, nullptr).value();
    benchmark::DoNotOptimize(instance->CallExport("run", {}).value()[0].i32);
    total_ns += static_cast<double>(watch.ElapsedNs());
    ++reps;
  }
  state.counters["vs_native"] = (total_ns / reps) / NativeMiniVmTimeNs(state.range(0));
}

BENCHMARK(BM_KernelNative)->DenseRange(0, 7)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KernelWasm)->DenseRange(0, 7)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniVmNative)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniVmWasm)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

// Writes the perf-trajectory artifact (CI uploads it as BENCH_batch.json).
bool WriteBatchJson(const std::string& path, bool tiny, const BatchMicroConfig& config,
                    const BatchMicroPoint& batched, const BatchMicroPoint& unbatched) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(f, "{\n  \"bench\": \"fig9_micro_state_batch\",\n  \"tiny\": %s,\n",
               tiny ? "true" : "false");
  std::fprintf(f, "  \"hosts\": %d,\n  \"keys\": %d,\n  \"rounds\": %d,\n", config.hosts,
               config.keys, config.rounds);
  std::fprintf(f, "  \"columns\": {\n");
  WriteBatchMicroPointJson(f, "batched", batched, ",");
  WriteBatchMicroPointJson(f, "unbatched", unbatched, "");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  std::printf("\n[wrote %s]\n", path.c_str());
  return true;
}

// Returns 0 when the batched column beats unbatched on RPCs and bytes at
// zero loss — the acceptance gate the CI bench smoke enforces.
int RunStateBatchMicroMode(bool tiny, const std::string& json_path) {
  PrintHeader("State-op micro: batched vs unbatched KVS protocol (kBatch)");
  const BatchMicroConfig batched_config = BatchMicroConfig::ForScale(tiny, /*batched=*/true);
  const BatchMicroConfig unbatched_config = BatchMicroConfig::ForScale(tiny, /*batched=*/false);
  std::printf("[%d counters across %d hosts, %d rounds of increment-all]\n",
              batched_config.keys, batched_config.hosts, batched_config.rounds);
  std::printf("%10s | %10s %12s %12s %8s\n", "protocol", "tier RPCs", "net (MB)", "time (ms)",
              "lost");
  const BatchMicroPoint batched = RunStateBatchMicro(batched_config);
  PrintBatchMicroRow("batched", batched);
  const BatchMicroPoint unbatched = RunStateBatchMicro(unbatched_config);
  PrintBatchMicroRow("unbatched", unbatched);
  std::printf("(each batched barrier groups K cross-shard pushes into at most one RPC\n"
              " per master shard, pipelined; unbatched pays one round trip per key)\n");

  if (!json_path.empty() &&
      !WriteBatchJson(json_path, tiny, batched_config, batched, unbatched)) {
    return 1;
  }
  if (batched.lost_updates != 0 || unbatched.lost_updates != 0) {
    std::fprintf(stderr, "FAIL: lost updates (batched=%llu unbatched=%llu)\n",
                 static_cast<unsigned long long>(batched.lost_updates),
                 static_cast<unsigned long long>(unbatched.lost_updates));
    return 1;
  }
  if (batched.tier_rpcs >= unbatched.tier_rpcs) {
    std::fprintf(stderr, "FAIL: batched protocol did not reduce tier RPCs (%llu >= %llu)\n",
                 static_cast<unsigned long long>(batched.tier_rpcs),
                 static_cast<unsigned long long>(unbatched.tier_rpcs));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace faasm

int main(int argc, char** argv) {
  // Our flags select the state-op micro mode; anything else goes to
  // google-benchmark unchanged.
  bool state_batch = false;
  bool tiny = false;
  std::string json_path;
  std::vector<char*> forwarded;
  forwarded.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--state-batch") {
      state_batch = true;
    } else if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--json" && i + 1 < argc) {
      state_batch = true;  // --json implies the micro mode (CI artifact)
      json_path = argv[++i];
    } else {
      forwarded.push_back(argv[i]);
    }
  }
  if (state_batch) {
    return faasm::RunStateBatchMicroMode(tiny, json_path);
  }
  int forwarded_argc = static_cast<int>(forwarded.size());
  benchmark::Initialize(&forwarded_argc, forwarded.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded_argc, forwarded.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
