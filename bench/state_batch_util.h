// Shared runner for the batched-vs-unbatched state-protocol columns
// (fig9_micro --state-batch and ablation_state ablation 4).
//
// Workload: K counters spread across the sharded tier by consistent
// hashing; each round one function call increments EVERY counter and pushes
// them — through a StateBatch scope (batched: at most one RPC per master
// shard per barrier) or one push-RPC per key (unbatched, --batch=off). The
// columns must show fewer tier RPCs and bytes at ZERO lost updates: the
// protocol trades nothing for the grouping.
#ifndef FAASM_BENCH_STATE_BATCH_UTIL_H_
#define FAASM_BENCH_STATE_BATCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "runtime/cluster.h"
#include "state/ddo.h"

namespace faasm {

struct BatchMicroPoint {
  uint64_t tier_rpcs = 0;  // requests received by the kvs shard endpoints
  double network_mb = 0;
  double seconds = 0;
  uint64_t lost_updates = 0;
};

struct BatchMicroConfig {
  int hosts = 4;
  int keys = 64;
  int rounds = 32;
  bool batched = true;

  static BatchMicroConfig ForScale(bool tiny, bool batched) {
    BatchMicroConfig config;
    if (tiny) {
      config.keys = 16;
      config.rounds = 8;
    }
    config.batched = batched;
    return config;
  }
};

inline std::string BatchMicroKey(int i) { return "bm-counter-" + std::to_string(i); }

// Table row / JSON serialisation shared by fig9_micro and ablation_state, so
// the BENCH_batch.json and BENCH_state.json "batch" columns cannot drift.
inline void PrintBatchMicroRow(const char* name, const BatchMicroPoint& point) {
  std::printf("%10s | %10llu %12.2f %12.0f %8llu\n", name,
              static_cast<unsigned long long>(point.tier_rpcs), point.network_mb,
              point.seconds * 1e3, static_cast<unsigned long long>(point.lost_updates));
}

inline void WriteBatchMicroPointJson(std::FILE* f, const char* name, const BatchMicroPoint& p,
                                     const char* suffix) {
  std::fprintf(f,
               "    \"%s\": {\"tier_rpcs\": %llu, \"network_mb\": %.3f, "
               "\"seconds\": %.4f, \"lost_updates\": %llu}%s\n",
               name, static_cast<unsigned long long>(p.tier_rpcs), p.network_mb, p.seconds,
               static_cast<unsigned long long>(p.lost_updates), suffix);
}

inline BatchMicroPoint RunStateBatchMicro(const BatchMicroConfig& micro) {
  ClusterConfig cluster_config;
  cluster_config.hosts = micro.hosts;
  cluster_config.state_tier = StateTier::kSharded;
  cluster_config.batch_state_ops = micro.batched;
  FaasmCluster cluster(cluster_config);

  for (int i = 0; i < micro.keys; ++i) {
    cluster.kvs().Set(BatchMicroKey(i), Bytes(sizeof(uint64_t), 0));
  }

  const int keys = micro.keys;
  (void)cluster.registry().RegisterNative("touch_all", [keys](InvocationContext& ctx) {
    std::vector<std::unique_ptr<SharedArray<uint64_t>>> counters;
    counters.reserve(keys);
    // Pull + increment first (Pull is a flush barrier), then push the whole
    // working set through one batch scope.
    for (int i = 0; i < keys; ++i) {
      counters.push_back(
          std::make_unique<SharedArray<uint64_t>>(&ctx.state(), BatchMicroKey(i)));
      counters.back()->kv().InvalidateReplica();
      if (!counters.back()->Attach().ok()) {
        return 2;
      }
      uint64_t* value = counters.back()->WritableElements(0, 1);
      if (value == nullptr) {
        return 3;
      }
      *value += 1;
      counters.back()->MarkDirtyElements(0, 1);
    }
    StateBatch batch(ctx.state());
    for (auto& counter : counters) {
      if (!counter->Push().ok()) {
        return 4;
      }
    }
    return batch.Close().ok() ? 0 : 5;
  });

  BatchMicroPoint point;
  uint64_t acked_rounds = 0;
  cluster.network().ResetStats();
  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    for (int round = 0; round < micro.rounds; ++round) {
      auto code = frontend.Invoke("touch_all", Bytes{});
      if (code.ok() && code.value() == 0) {
        acked_rounds += 1;
      }
    }
    point.seconds = static_cast<double>(cluster.clock().Now() - start) / 1e9;
  });

  for (size_t host = 0; host < cluster.host_count(); ++host) {
    point.tier_rpcs +=
        cluster.network().StatsFor(ShardMap::EndpointForHost(cluster.host(host).name()))
            .rx_messages;
  }
  point.network_mb = static_cast<double>(cluster.network_bytes()) / 1e6;

  // Loss audit: every acked round incremented every counter exactly once —
  // any deviation (lost OR doubled) counts against the column.
  for (int i = 0; i < micro.keys; ++i) {
    auto value = cluster.kvs().Get(BatchMicroKey(i));
    uint64_t count = 0;
    if (value.ok() && value.value().size() == sizeof(uint64_t)) {
      std::memcpy(&count, value.value().data(), sizeof(count));
    }
    point.lost_updates += acked_rounds > count ? acked_rounds - count : count - acked_rounds;
  }
  return point;
}

}  // namespace faasm

#endif  // FAASM_BENCH_STATE_BATCH_UTIL_H_
