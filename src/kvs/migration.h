// Shard migration: the data-plane half of dynamic cluster membership — and
// the SHARED STREAM CORE of the replication substrate (kvs/replication.h).
//
// One mechanism moves key footprints between stores everywhere in this
// codebase: a frozen, consistent KeyExport snapshot (value bytes, lock
// ownership, set members) shipped as a kMigrateInstall RPC and installed
// before any routing change becomes visible. ShardMigrator built it for
// planned membership changes; the replication layer reuses the identical
// wire op and record for backup catch-up (Reconcile streams a lagging
// replica the same bytes a migration would) and for crash failover
// (promoting a backup copy into a new master IS a migration stream whose
// source happens to be a replica). Two guarantees are therefore inherited,
// not re-implemented, by every consumer of the stream:
//
//   - PRE-FLIP INSTALLS: data lands on its destination before the epoch
//     flip that routes clients at it, so a post-flip write can never be
//     clobbered by a stale install;
//   - FILTER-BEFORE-ENUMERATE: the migration filter goes up before any key
//     listing, bouncing creations of moving keys, so no key can be created
//     behind the plan and stranded (the enumeration race).
//
// When a host joins or leaves the sharded global tier (runtime/cluster.h
// AddHost/RemoveHost), ~1/N of the keyspace changes master. ShardMigrator
// performs the handoff so that no acknowledged update is lost and held
// distributed locks keep excluding:
//
//   1. FILTER  — every source store gets a migration filter built from the
//                PROSPECTIVE assignment: ops on any key that will change
//                master bounce with kWrongMaster from here on, including
//                keys that do not exist yet. This closes the enumeration
//                race — no moving key can be created behind the listing in
//                step 2, so nothing is ever stranded on a stale master.
//   2. PLAN    — list the keys actually present on the source shards and
//                DiffKeys them against the prospective assignment
//                (kvs/router.h): only moving keys are touched.
//   3. FREEZE  — each moving key is frozen on its source store; the check
//                runs under the store's shard mutex, so no write can land
//                between the export and the handoff.
//   4. STREAM  — the source shard streams each key's full footprint (value
//                bytes, lock ownership, set members) to the destination
//                server as a kMigrateInstall RPC over the cluster
//                interconnect: migration traffic is byte-accounted and
//                latency-charged like any other cross-host transfer. All
//                installs complete BEFORE the flip, so a post-flip write on
//                the new master can never be clobbered by a stale install.
//   5. FLIP    — the live ShardMap adds/removes the shard, bumping the
//                epoch. Every fresh route now resolves to the new master,
//                which already holds the data.
//   6. ERASE   — migrated keys are dropped from their source stores and the
//                filters come off. Straggler ops that still reach a stale
//                shard bounce on its live-map ownership guard
//                (KvStore::SetOwnershipGuard) and retry against the new
//                route.
//
// A failure before the flip rolls everything back (unfreeze, drop the
// half-streamed installs, clear the filters) and leaves the old epoch fully
// serving; after the flip nothing can fail — erase and filter-clear are
// local and infallible. The coordinator runs in the control plane (the
// cluster driver); only the key streams themselves touch the network.
#ifndef FAASM_KVS_MIGRATION_H_
#define FAASM_KVS_MIGRATION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "kvs/kvs_client.h"
#include "kvs/router.h"
#include "net/network.h"

namespace faasm {

// Cumulative migration accounting (the fig10 churn bench reports these).
struct MigrationStats {
  uint64_t epoch_flips = 0;   // membership changes applied
  uint64_t keys_moved = 0;    // keys handed to a new master
  uint64_t bytes_moved = 0;   // payload bytes streamed between shards

  MigrationStats& operator+=(const MigrationStats& other) {
    epoch_flips += other.epoch_flips;
    keys_moved += other.keys_moved;
    bytes_moved += other.bytes_moved;
    return *this;
  }
};

// Executes shard add/remove handoffs against a live ShardMap and its
// endpoint->store table. Not thread safe: one membership change at a time
// (the cluster serialises AddHost/RemoveHost through the driver).
class ShardMigrator {
 public:
  ShardMigrator(InProcNetwork* network, ShardMap* map,
                std::map<std::string, KvStore*>* stores)
      : network_(network), map_(map), stores_(stores) {}

  // Brings `endpoint` (already registered as a server, store already in the
  // table) into the assignment: migrates every key whose master becomes the
  // new shard, then flips the epoch.
  Result<MigrationStats> AddShard(const std::string& endpoint);

  // Takes `endpoint` out of the assignment: migrates every key it masters
  // to the survivors, then flips the epoch. Fails on the last shard (the
  // keys would have nowhere to go).
  Result<MigrationStats> RemoveShard(const std::string& endpoint);

 private:
  // Runs the filter→plan→freeze→stream→flip→erase sequence for one
  // membership change: `sources` are the endpoints keys can move away
  // from, `after` the prospective assignment, `flip` the map mutation.
  Result<MigrationStats> Execute(const std::vector<std::string>& sources,
                                 const ShardAssignment& after,
                                 const std::function<void()>& flip);

  // Streams one frozen key from its source shard to its destination server
  // (kMigrateInstall). Returns payload bytes.
  Result<uint64_t> Stream(const KeyMove& move);

  KvStore* StoreAt(const std::string& endpoint) const;

  InProcNetwork* network_;
  ShardMap* map_;
  std::map<std::string, KvStore*>* stores_;
};

}  // namespace faasm

#endif  // FAASM_KVS_MIGRATION_H_
