// Knative-like container baseline (§6.1). The same workload code (written
// against InvocationContext) runs here, but the platform differs in exactly
// the ways the paper contrasts:
//   - each container has a PRIVATE state tier: no in-memory sharing between
//     functions, so every container pulls its own copy of state from the
//     global tier (the data-shipping architecture of §1),
//   - cold starts cost seconds (calibrated, ContainerModel) and are limited
//     in parallelism by the container daemon,
//   - chained calls travel through an HTTP ingress with per-call overhead,
//     and awaiting results polls the provider API over the network,
//   - containers are NOT reset between calls (recycled warm), trading the
//     isolation guarantee FAASM provides for speed, as the paper notes.
#ifndef FAASM_BASELINE_KNATIVE_H_
#define FAASM_BASELINE_KNATIVE_H_

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baseline/container_model.h"
#include "core/invocation_context.h"
#include "core/vfs.h"
#include "kvs/kvs_client.h"
#include "net/network.h"
#include "runtime/call_table.h"
#include "runtime/cluster.h"
#include "runtime/memory_accountant.h"
#include "runtime/registry.h"
#include "sim/cpu_model.h"
#include "sim/sim_clock.h"

namespace faasm {

class KnativeInstance;
class KnativeCluster;

// One container: a process-isolated function replica with its own private
// state tier.
class Container : public InvocationContext {
 public:
  struct Env {
    Clock* clock = nullptr;
    KvsClient* kvs = nullptr;
    HostCpuModel* cpu = nullptr;
    uint64_t rng_seed = 1;
    std::function<Result<uint64_t>(const std::string&, Bytes)> chain;
    std::function<Result<int>(uint64_t)> await;
    std::function<Result<Bytes>(uint64_t)> get_output;
  };

  Container(FunctionSpec spec, Env env)
      : spec_(std::move(spec)),
        env_(std::move(env)),
        rng_(env_.rng_seed),
        tier_(std::make_unique<LocalTier>(env_.kvs, env_.clock)) {}

  Result<int> Execute(Bytes input) {
    input_ = std::move(input);
    output_.clear();
    if (!spec_.native) {
      return Unimplemented("container baseline runs native functions only");
    }
    return spec_.native(*this);
  }

  Bytes TakeOutput() { return std::move(output_); }
  const std::string& function() const { return spec_.name; }

  // Container + its private state copies.
  size_t FootprintBytes(size_t base) const { return base + tier_->resident_bytes(); }
  size_t tier_bytes() const { return tier_->resident_bytes(); }

  // --- InvocationContext ------------------------------------------------------
  const Bytes& Input() const override { return input_; }
  void WriteOutput(Bytes output) override { output_ = std::move(output); }
  Result<uint64_t> ChainCall(const std::string& function, Bytes input) override {
    return env_.chain(function, std::move(input));
  }
  Result<int> AwaitCall(uint64_t call_id) override { return env_.await(call_id); }
  Result<Bytes> GetCallOutput(uint64_t call_id) override { return env_.get_output(call_id); }
  LocalTier& state() override { return *tier_; }
  Clock& clock() override { return *env_.clock; }
  Rng& rng() override { return rng_; }
  void ChargeCompute(TimeNs ns) override {
    if (env_.cpu != nullptr) {
      env_.cpu->Charge(ns);
    }
  }

 private:
  FunctionSpec spec_;
  Env env_;
  Rng rng_;
  std::unique_ptr<LocalTier> tier_;  // private: the defining difference
  Bytes input_;
  Bytes output_;
};

class KnativeInstance {
 public:
  KnativeInstance(HostConfig config, ContainerModel model, SimExecutor* executor,
                  InProcNetwork* network, FunctionRegistry* registry, CallTable* calls,
                  KnativeCluster* cluster);
  ~KnativeInstance();

  void Start();
  void Stop();
  // Stops the dispatcher and unregisters the host endpoint (graceful
  // removal; call once the autoscaler has drained the host's pods).
  void Retire();

  const std::string& name() const { return config_.name; }
  MemoryAccountant& memory_accountant() { return memory_; }
  const MemoryAccountant& memory_accountant() const { return memory_; }
  size_t cold_start_count() const { return cold_starts_.load(); }
  size_t container_count() const;

 private:
  friend class KnativeCluster;
  void DispatchLoop();
  void ExecuteLocal(uint64_t call_id, const std::string& function, Bytes input);
  size_t host_index_ = 0;  // set by the owning cluster
  Result<std::unique_ptr<Container>> AcquireContainer(const std::string& function, bool* cold);
  void ReleaseContainer(std::unique_ptr<Container> container);

  HostConfig config_;
  ContainerModel model_;
  SimExecutor* executor_;
  InProcNetwork* network_;
  FunctionRegistry* registry_;
  CallTable* calls_;
  KnativeCluster* cluster_;

  KvsClient kvs_;
  MemoryAccountant memory_;
  HostCpuModel cpu_;

  mutable std::mutex pools_mutex_;
  std::map<std::string, std::vector<std::unique_ptr<Container>>> idle_;
  std::map<const Container*, size_t> accounted_tier_bytes_;
  int total_containers_ = 0;

  std::atomic<int> concurrent_cold_starts_{0};
  std::atomic<size_t> cold_starts_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
};

// The whole Knative deployment: ingress + N hosts + global tier.
class KnativeCluster {
 public:
  explicit KnativeCluster(ClusterConfig cluster_config = {}, ContainerModel model = {});
  ~KnativeCluster();

  KnativeCluster(const KnativeCluster&) = delete;
  KnativeCluster& operator=(const KnativeCluster&) = delete;

  FunctionRegistry& registry() { return registry_; }
  // Single-store view: the baseline keeps the centralised tier the paper's
  // platforms use, but presents the same seeding interface as FaasmCluster.
  ShardedKvs& kvs() { return kvs_view_; }
  InProcNetwork& network() { return *network_; }
  SimClock& clock() { return executor_.clock(); }
  SimExecutor& executor() { return executor_; }
  CallTable& calls() { return calls_; }
  const ContainerModel& model() const { return model_; }

  // Submits through the HTTP ingress (charges envelope + transfer), from
  // `source` (a host name or "client").
  Result<uint64_t> Submit(const std::string& source, const std::string& function, Bytes input);
  // Awaits by polling the provider API (charges poll traffic).
  Result<int> Await(const std::string& source, uint64_t call_id);
  Result<Bytes> Output(uint64_t call_id) { return calls_.Output(call_id); }

  struct Client {
    KnativeCluster* cluster;
    Result<uint64_t> Submit(const std::string& function, Bytes input) {
      return cluster->Submit("client", function, std::move(input));
    }
    Result<int> Await(uint64_t id) { return cluster->Await("client", id); }
    Result<int> Invoke(const std::string& function, Bytes input) {
      FAASM_ASSIGN_OR_RETURN(uint64_t id, Submit(function, std::move(input)));
      return Await(id);
    }
    Result<Bytes> Output(uint64_t id) { return cluster->Output(id); }
  };

  void Run(const std::function<void(Client&)>& driver);

  // --- Elastic membership (baseline parity with FaasmCluster) -----------------
  // Adds a host to the autoscaler's routing pool. The global tier is the
  // single central KVS either way, so membership changes never touch state —
  // the baseline's "no-op tier" behaviour the ablations contrast against.
  Result<std::string> AddHost();
  // Gracefully removes `name`: the router stops placing pods there, the
  // host's in-flight calls drain, then it retires (its containers are
  // discarded with it). Refuses to remove the last active host.
  Status RemoveHost(const std::string& name);

  uint64_t network_bytes() const { return network_->total_bytes(); }
  double billable_gb_seconds() const;
  size_t cold_start_count() const;
  size_t failed_call_count() const;

  void Shutdown();

 private:
  friend class KnativeInstance;

  // Concurrency-aware per-function routing (the Knative autoscaler model):
  // route to the least-loaded existing pod host; scale out to a new host
  // when every pod is busy. Returns the chosen host's endpoint name —
  // resolved under routing_mutex_, because chained-call Submits run on
  // instance threads concurrently with AddHost growing hosts_.
  std::string RouteCall(const std::string& function);
  void NotifyDone(const std::string& function, size_t host_index);

  // In-flight calls routed to host `index` (any function).
  int HostLoadLocked(size_t index) const;

  ClusterConfig config_;
  ContainerModel model_;
  SimExecutor executor_;
  std::unique_ptr<InProcNetwork> network_;
  KvStore kvs_;
  ShardedKvs kvs_view_{&kvs_};
  std::unique_ptr<KvsServer> kvs_server_;
  FunctionRegistry registry_;
  CallTable calls_;
  // The vector only grows (routing state stores indices); removed hosts are
  // marked retired and skipped by RouteCall. Mutated and searched under
  // routing_mutex_ — Submits arrive from instance threads.
  std::vector<std::unique_ptr<KnativeInstance>> hosts_;
  std::set<size_t> retired_;
  int next_host_index_ = 0;
  mutable std::mutex routing_mutex_;
  std::map<std::string, std::map<size_t, int>> in_flight_;  // fn -> host -> count
  bool shut_down_ = false;
};

}  // namespace faasm

#endif  // FAASM_BASELINE_KNATIVE_H_
