// Workload correctness: SGD convergence on both platforms, distributed
// matmul vs single-node reference, MLP wasm == native == reference.
#include <gtest/gtest.h>

#include "baseline/knative.h"
#include "runtime/cluster.h"
#include "workloads/inference.h"
#include "workloads/matmul.h"
#include "workloads/sgd.h"

namespace faasm {
namespace {

ClusterConfig SmallCluster(int hosts) {
  ClusterConfig config;
  config.hosts = hosts;
  config.cores_per_host = 2;
  return config;
}

SgdConfig TinySgd() {
  SgdConfig config;
  config.n_examples = 512;
  config.n_features = 128;
  config.nnz_per_example = 8;
  config.n_workers = 4;
  config.n_epochs = 2;
  return config;
}

TEST(SgdWorkloadTest, ConvergesOnFaasm) {
  FaasmCluster cluster(SmallCluster(2));
  const SgdConfig config = TinySgd();
  SeedSgdDataset(cluster.kvs(), config);
  ASSERT_TRUE(RegisterSgdFunctions(cluster.registry()).ok());

  double loss = -1;
  cluster.Run([&](Frontend& frontend) {
    auto result = RunSgdTraining(frontend, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    loss = result.value();
  });
  // Labels have ~0.01 noise variance; untrained loss is >> 1.
  EXPECT_GE(loss, 0.0);
  EXPECT_LT(loss, 1.0);
}

TEST(SgdWorkloadTest, ConvergesOnKnative) {
  ContainerModel model;
  model.cold_start_ns = 10 * kMillisecond;  // keep the test quick
  KnativeCluster cluster(SmallCluster(2), model);
  const SgdConfig config = TinySgd();
  SeedSgdDataset(cluster.kvs(), config);
  ASSERT_TRUE(RegisterSgdFunctions(cluster.registry()).ok());

  double loss = -1;
  cluster.Run([&](KnativeCluster::Client& client) {
    auto result = RunSgdTraining(client, config);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    loss = result.value();
  });
  EXPECT_GE(loss, 0.0);
  // Containers train on private weight replicas (no HOGWILD sharing), so the
  // baseline converges more slowly than FAASM — the untrained loss is ~15.
  EXPECT_LT(loss, 3.0);
}

TEST(SgdWorkloadTest, FaasmShipsLessDataThanKnative) {
  const SgdConfig config = TinySgd();
  uint64_t faasm_bytes = 0;
  uint64_t knative_bytes = 0;
  {
    FaasmCluster cluster(SmallCluster(2));
    SeedSgdDataset(cluster.kvs(), config);
    ASSERT_TRUE(RegisterSgdFunctions(cluster.registry()).ok());
    cluster.Run([&](Frontend& frontend) {
      ASSERT_TRUE(RunSgdTraining(frontend, config).ok());
      faasm_bytes = cluster.network_bytes();
    });
  }
  {
    ContainerModel model;
    model.cold_start_ns = 10 * kMillisecond;
    KnativeCluster cluster(SmallCluster(2), model);
    SeedSgdDataset(cluster.kvs(), config);
    ASSERT_TRUE(RegisterSgdFunctions(cluster.registry()).ok());
    cluster.Run([&](KnativeCluster::Client& client) {
      ASSERT_TRUE(RunSgdTraining(client, config).ok());
      knative_bytes = cluster.network_bytes();
    });
  }
  // The headline Fig. 6b property: the shared local tier ships less data.
  EXPECT_LT(faasm_bytes, knative_bytes);
}

class MatmulSizes : public ::testing::TestWithParam<uint32_t> {};

TEST_P(MatmulSizes, DistributedMatchesReference) {
  const uint32_t n = GetParam();
  FaasmCluster cluster(SmallCluster(2));
  MatmulConfig config;
  config.n = n;
  config.split_levels = n >= 64 ? 2 : 1;
  SeedMatmulInputs(cluster.kvs(), config);
  ASSERT_TRUE(RegisterMatmulFunctions(cluster.registry()).ok());

  cluster.Run([&](Frontend& frontend) {
    auto out_key = RunMatmul(frontend, config);
    ASSERT_TRUE(out_key.ok()) << out_key.status().ToString();
  });

  // Compare the distributed result against a single-node multiply.
  auto a_bytes = cluster.kvs().Get(kMatmulAKey).value();
  auto b_bytes = cluster.kvs().Get(kMatmulBKey).value();
  std::vector<double> a(n * n);
  std::vector<double> b(n * n);
  std::memcpy(a.data(), a_bytes.data(), a_bytes.size());
  std::memcpy(b.data(), b_bytes.data(), b_bytes.size());
  const std::vector<double> expected = ReferenceMatmul(a, b, n);

  auto c_bytes = cluster.kvs().Get(std::string(kMatmulOutPrefix) + "root").value();
  ASSERT_EQ(c_bytes.size(), n * n * sizeof(double));
  std::vector<double> c(n * n);
  std::memcpy(c.data(), c_bytes.data(), c_bytes.size());
  for (size_t i = 0; i < c.size(); i += 17) {
    EXPECT_NEAR(c[i], expected[i], 1e-9) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MatmulSizes, ::testing::Values(32, 64, 128));

TEST(MatmulWorkloadTest, CallCountMatchesPaperShape) {
  // Two split levels: 64 leaf multiplications + 9 merges (+ 9 divides).
  FaasmCluster cluster(SmallCluster(2));
  MatmulConfig config;
  config.n = 64;
  config.split_levels = 2;
  SeedMatmulInputs(cluster.kvs(), config);
  ASSERT_TRUE(RegisterMatmulFunctions(cluster.registry()).ok());
  cluster.Run([&](Frontend& frontend) {
    ASSERT_TRUE(RunMatmul(frontend, config).ok());
  });
  size_t mults = 0;
  size_t merges = 0;
  for (const CallRecord& record : cluster.calls().FinishedRecords()) {
    if (record.function == "mm_div") {
      ++mults;
    } else if (record.function == "mm_merge") {
      ++merges;
    }
  }
  EXPECT_EQ(mults, 1u + 8u + 64u);  // root + internal + leaves
  EXPECT_EQ(merges, 9u);
}

TEST(InferenceWorkloadTest, WasmMatchesNativeAndReference) {
  const MlpDims dims;
  FaasmCluster cluster(SmallCluster(1));
  SeedMlpWeights(cluster.kvs(), dims);
  ASSERT_TRUE(RegisterMlpWasm(cluster.registry(), "infer", dims).ok());

  std::vector<uint32_t> wasm_results;
  cluster.Run([&](Frontend& frontend) {
    for (uint64_t request = 0; request < 5; ++request) {
      auto image = SyntheticImage(dims, request);
      auto id = frontend.Submit("infer", EncodeImage(image));
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(frontend.Await(id.value()).value(), 0);
      auto output = frontend.Output(id.value());
      ASSERT_TRUE(output.ok());
      uint32_t result = 0;
      std::memcpy(&result, output.value().data(), 4);
      wasm_results.push_back(result);
    }
  });

  for (uint64_t request = 0; request < 5; ++request) {
    const auto image = SyntheticImage(dims, request);
    EXPECT_EQ(wasm_results[request], MlpReference(cluster.kvs(), dims, image))
        << "request " << request;
  }
}

TEST(InferenceWorkloadTest, NativeTwinMatchesReference) {
  const MlpDims dims;
  ContainerModel model;
  model.cold_start_ns = 5 * kMillisecond;
  KnativeCluster cluster(SmallCluster(1), model);
  SeedMlpWeights(cluster.kvs(), dims);
  ASSERT_TRUE(RegisterMlpNative(cluster.registry(), "infer").ok());

  cluster.Run([&](KnativeCluster::Client& client) {
    for (uint64_t request = 0; request < 3; ++request) {
      auto image = SyntheticImage(dims, request);
      auto id = client.Submit("infer", EncodeImage(image));
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(client.Await(id.value()).value(), 0);
      uint32_t result = 0;
      std::memcpy(&result, client.Output(id.value()).value().data(), 4);
      EXPECT_EQ(result, MlpReference(cluster.kvs(), dims, image));
    }
  });
}

}  // namespace
}  // namespace faasm
