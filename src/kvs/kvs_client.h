// KvsServer / KvsClient: the wire between hosts and the global tier.
//
// The global tier is sharded (kvs/router.h): each host serves a KvStore
// shard on "kvs:<host>", and a ShardMap assigns every key a master shard by
// consistent hashing. KvsClient is the routing client — each operation
// resolves its key's master and either
//
//   - takes the LOCAL FAST PATH: when the master is the calling host's own
//     shard, the op is a direct in-process KvStore call. No InProcNetwork
//     round trip, zero accounted network bytes — a replica co-located with
//     its key's master syncs for free (§4.3); or
//   - is serialised through InProcNetwork to the owning endpoint, so the
//     experiments' network-transfer numbers include exactly the cross-host
//     global-tier traffic a sharded Redis/Anna deployment would generate.
//
// MEMBERSHIP CHANGES (kvs/migration.h) make routes stale: an op can resolve
// its master at epoch N and land on a shard that flipped to epoch N+1, or
// reach a key frozen mid-handoff. Both answer kWrongMaster — a server given
// a ShardMap rejects ops for keys it does not master, and the store bounces
// mutations of frozen keys (the local fast path hits the same store-level
// check, so in-process writers cannot slip past a migration either). The
// client treats kWrongMaster as "re-resolve and retry": it backs off a
// quantum of virtual time and routes against the map's current epoch,
// surfacing the error only after kMaxRedirectRetries (a membership change
// that never converges). The kMigrateInstall op is exempt from the
// ownership check: it is how the migration subsystem streams a key into its
// new master before the epoch flips.
//
// Constructed without a ShardMap, the client degenerates to the centralised
// single-endpoint layout (the pre-sharding baseline, kept for ablations and
// component tests); with no map there is no alternate route, so kWrongMaster
// surfaces to the caller immediately.
#ifndef FAASM_KVS_KVS_CLIENT_H_
#define FAASM_KVS_KVS_CLIENT_H_

#include <memory>
#include <string>
#include <utility>

#include "kvs/kv_store.h"
#include "kvs/router.h"
#include "net/network.h"

namespace faasm {

// Operation codes shared by client and server.
enum class KvsOp : uint8_t {
  kGet = 1,
  kSet = 2,
  kGetRange = 3,
  kSetRange = 4,
  kAppend = 5,
  kDelete = 6,
  kExists = 7,
  kSize = 8,
  kLockRead = 9,
  kLockWrite = 10,
  kUnlockRead = 11,
  kUnlockWrite = 12,
  kSetAdd = 13,
  kSetRemove = 14,
  kSetMembers = 15,
  kSetRanges = 16,
  // Shard migration: installs a KeyExport streamed from the key's previous
  // master. Exempt from the server's ownership check (it arrives BEFORE the
  // epoch flips the key to this shard).
  kMigrateInstall = 17,
};

// Registers an RPC endpoint (default name "kvs") that serves a KvStore
// shard. Sharded clusters run one per host on "kvs:<host>". When `map` is
// given, the server validates per-op that it still masters the key under
// the map's current epoch and answers kWrongMaster otherwise, which is what
// redirects clients that raced a membership change.
class KvsServer {
 public:
  KvsServer(KvStore* store, InProcNetwork* network, std::string endpoint = "kvs",
            const ShardMap* map = nullptr);
  ~KvsServer();

  const std::string& endpoint() const { return endpoint_; }

 private:
  Bytes Handle(const Bytes& request);

  KvStore* store_;
  InProcNetwork* network_;
  std::string endpoint_;
  const ShardMap* map_;
};

// Routing client stub. `source` is the calling host's endpoint name (for
// accounting and lock ownership).
class KvsClient {
 public:
  // Centralised mode: every key lives behind the single `server` endpoint.
  KvsClient(InProcNetwork* network, std::string source, std::string server = "kvs");
  // Sharded mode: `shards` maps keys to master endpoints; `local_store` is
  // the shard this host serves on "kvs:<source>" (may be null when the host
  // serves no shard — e.g. an external client — disabling the fast path).
  KvsClient(InProcNetwork* network, std::string source, const ShardMap* shards,
            KvStore* local_store);

  Status Set(const std::string& key, const Bytes& value);
  Result<Bytes> Get(const std::string& key);
  Result<Bytes> GetRange(const std::string& key, uint64_t offset, uint64_t len);
  Status SetRange(const std::string& key, uint64_t offset, const Bytes& bytes);
  // Batched multi-range write: N ranges cost one round trip (delta push).
  Status SetRanges(const std::string& key, const std::vector<ValueRange>& ranges);
  Result<uint64_t> Append(const std::string& key, const Bytes& bytes);
  Status Delete(const std::string& key);
  Result<bool> Exists(const std::string& key);
  Result<uint64_t> Size(const std::string& key);

  Result<bool> TryLockRead(const std::string& key);
  Result<bool> TryLockWrite(const std::string& key);
  Status UnlockRead(const std::string& key);
  Status UnlockWrite(const std::string& key);

  Result<bool> SetAdd(const std::string& key, const std::string& member);
  Result<bool> SetRemove(const std::string& key, const std::string& member);
  Result<std::vector<std::string>> SetMembers(const std::string& key);

  // --- Mastership hints (locality-aware scheduling) ---------------------------
  // True when `key` is mastered by this host's own shard: ops on it are
  // in-process and move zero network bytes.
  bool MasterLocal(const std::string& key) const;
  // Host name mastering `key`, or "" when the master is not a host-colocated
  // shard (centralised mode). Pure local computation — no network.
  std::string MasterHostFor(const std::string& key) const;

  const std::string& source() const { return source_; }

  // Bound on kWrongMaster redirect retries before the error surfaces. The
  // op stalls while its key is frozen mid-migration, so the retry budget
  // (kMaxRedirectRetries × kRedirectBackoffNs of virtual time) must cover a
  // full migration batch: freeze → stream → epoch flip.
  static constexpr int kMaxRedirectRetries = 2048;
  static constexpr TimeNs kRedirectBackoffNs = 200 * kMicrosecond;

 private:
  // Resolved destination of one key's op: in-process store, or endpoint.
  struct Route {
    KvStore* local = nullptr;
    std::string endpoint;
  };
  Route RouteFor(const std::string& key) const;

  static bool IsWrongMaster(const Status& status) {
    return status.code() == StatusCode::kWrongMaster;
  }
  template <typename T>
  static bool IsWrongMaster(const Result<T>& result) {
    return !result.ok() && result.status().code() == StatusCode::kWrongMaster;
  }

  // Resolves `key`'s route and dispatches: master-local ops run `local`
  // against the in-process store (zero network bytes), the rest run
  // `remote` against the owning endpoint. Every public op goes through this
  // so none can forget the fast path. Both callables must return the same
  // type (annotate the remote lambda when its returns mix Status/Result).
  //
  // A kWrongMaster answer means the route went stale (membership change) or
  // the key is frozen mid-migration: back off one virtual-time quantum and
  // retry against the map's CURRENT epoch. Without a map there is no other
  // route, so the error surfaces immediately.
  template <typename LocalOp, typename RemoteOp>
  auto Routed(const std::string& key, LocalOp&& local, RemoteOp&& remote) {
    using R = decltype(remote(std::declval<const std::string&>()));
    int attempt = 0;
    while (true) {
      Route route = RouteFor(key);
      R result = route.local != nullptr ? R(local(*route.local)) : R(remote(route.endpoint));
      if (!IsWrongMaster(result) || shards_ == nullptr || attempt >= kMaxRedirectRetries) {
        return result;
      }
      ++attempt;
      network_->clock().SleepFor(kRedirectBackoffNs);
    }
  }

  Result<Bytes> Invoke(const std::string& server, KvsOp op,
                       const std::function<void(ByteWriter&)>& write_args);
  Result<bool> BoolOp(const std::string& server, KvsOp op, const std::string& key,
                      const std::string& arg);

  InProcNetwork* network_;
  std::string source_;
  std::string server_;  // centralised mode only
  const ShardMap* shards_ = nullptr;
  KvStore* local_store_ = nullptr;
  std::string local_endpoint_;  // "kvs:<source>"
};

}  // namespace faasm

#endif  // FAASM_KVS_KVS_CLIENT_H_
