#include "net/framing.h"

#include <algorithm>

namespace faasm {

void BeginFrameBatch(ByteWriter& writer, uint32_t count) { writer.Put<uint32_t>(count); }

void AppendFrame(ByteWriter& writer, const Bytes& part) { writer.PutBytes(part); }

void WriteFrameBatch(ByteWriter& writer, const std::vector<Bytes>& parts) {
  BeginFrameBatch(writer, static_cast<uint32_t>(parts.size()));
  for (const Bytes& part : parts) {
    AppendFrame(writer, part);
  }
}

Result<std::vector<Bytes>> ReadFrameBatch(ByteReader& reader) {
  FAASM_ASSIGN_OR_RETURN(uint32_t count, reader.Get<uint32_t>());
  std::vector<Bytes> parts;
  parts.reserve(std::min<uint32_t>(count, 1024));
  for (uint32_t i = 0; i < count; ++i) {
    FAASM_ASSIGN_OR_RETURN(Bytes part, reader.GetBytes());
    parts.push_back(std::move(part));
  }
  return parts;
}

size_t FrameOverheadBytes(size_t parts) { return sizeof(uint32_t) * (1 + parts); }

}  // namespace faasm
