#include "kvs/read_cache.h"

#include <gtest/gtest.h>

#include "kvs/router.h"

namespace faasm {
namespace {

// Hand-cranked clock: lease expiry is tested by moving time, not sleeping.
class ManualClock final : public Clock {
 public:
  TimeNs Now() const override { return now_; }
  void SleepFor(TimeNs duration_ns) override { now_ += duration_ns; }
  void Advance(TimeNs delta_ns) { now_ += delta_ns; }

 private:
  TimeNs now_ = 0;
};

constexpr TimeNs kLease = 2 * kMillisecond;
constexpr uint64_t kWhole = ~uint64_t{0};  // ReadOptions::kWholeValue

class ReadCacheTest : public ::testing::Test {
 protected:
  ReadCacheTest() : cache_(&clock_, nullptr) { cache_.set_lease(kLease); }

  ManualClock clock_;
  ReadCache cache_;
};

TEST_F(ReadCacheTest, DisabledUntilPositiveLease) {
  ReadCache off(&clock_, nullptr);
  EXPECT_FALSE(off.enabled());
  off.InsertFull("k", Bytes{1, 2, 3});
  EXPECT_FALSE(off.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
  off.set_lease(kLease);
  EXPECT_TRUE(off.enabled());
}

TEST_F(ReadCacheTest, ServesWithinLeaseThenExpires) {
  cache_.InsertFull("k", Bytes{1, 2, 3});
  auto hit = cache_.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Bytes{1, 2, 3}));
  EXPECT_EQ(cache_.hits(), 1u);

  // Still inside the lease after most of it elapses...
  clock_.Advance(kLease - 1);
  EXPECT_TRUE(cache_.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
  // ...but one tick past it the entry no longer serves.
  clock_.Advance(2);
  EXPECT_FALSE(cache_.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
  EXPECT_EQ(cache_.misses(), 1u);
}

TEST_F(ReadCacheTest, MaxStalenessTightensTheLease) {
  cache_.InsertFull("k", Bytes{9});
  clock_.Advance(kMillisecond);  // entry is 1ms old, lease is 2ms
  EXPECT_TRUE(cache_.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
  // A reader demanding at most 0.5ms of staleness is not served...
  EXPECT_FALSE(cache_.Lookup("k", 0, kWhole, kMillisecond / 2).has_value());
  // ...and max_staleness = 0 always forces a fetch, even on a fresh entry.
  EXPECT_FALSE(cache_.Lookup("k", 0, kWhole, 0).has_value());
}

TEST_F(ReadCacheTest, SlicesRangedReadsFromTheFullValue) {
  cache_.InsertFull("k", Bytes{0, 1, 2, 3, 4, 5});
  auto middle = cache_.Lookup("k", 2, 3, ReadCache::kLeaseStaleness);
  ASSERT_TRUE(middle.has_value());
  EXPECT_EQ(*middle, (Bytes{2, 3, 4}));
  // A tail read past the end clamps (the store's GetRange does the same).
  auto tail = cache_.Lookup("k", 4, 100, ReadCache::kLeaseStaleness);
  ASSERT_TRUE(tail.has_value());
  EXPECT_EQ(*tail, (Bytes{4, 5}));
  // An offset beyond the value misses: the master owns the error surface.
  EXPECT_FALSE(cache_.Lookup("k", 7, 1, ReadCache::kLeaseStaleness).has_value());
}

TEST_F(ReadCacheTest, InvalidateDropsTheEntry) {
  cache_.InsertFull("k", Bytes{1});
  cache_.Invalidate("k");
  EXPECT_EQ(cache_.invalidations(), 1u);
  EXPECT_FALSE(cache_.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
  // Invalidating a key that holds nothing counts nothing.
  cache_.Invalidate("absent");
  EXPECT_EQ(cache_.invalidations(), 1u);
}

TEST_F(ReadCacheTest, EpochFlipInvalidatesImplicitly) {
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-0"));
  ReadCache cache(&clock_, &map);
  cache.set_lease(kLease);

  cache.InsertFull("k", Bytes{7});
  EXPECT_TRUE(cache.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());

  // A membership change bumps the map epoch: the entry was installed under
  // the old epoch, so it must never serve again (its key's mastership — and
  // possibly its value, through the new master — may have changed).
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  EXPECT_FALSE(cache.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
  EXPECT_EQ(cache.invalidations(), 1u);

  // Reinstalling under the new epoch serves again.
  cache.InsertFull("k", Bytes{8});
  auto hit = cache.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Bytes{8}));
}

TEST_F(ReadCacheTest, FailoverPromotionInvalidatesLikeAnyEpochFlip) {
  // A crash failover is a shard REMOVAL with a backup promoted in its place
  // (runtime/cluster.h KillHost): the epoch bumps exactly once, and a value
  // cached against the dead master's epoch must not be served from the
  // promoted copy's era — the backup may already have taken newer writes.
  ShardMap map;
  map.AddShard(ShardMap::EndpointForHost("host-0"));
  map.AddShard(ShardMap::EndpointForHost("host-1"));
  ReadCache cache(&clock_, &map);
  cache.set_lease(kLease);

  cache.InsertFull("k", Bytes{1});  // read while host-1 was alive
  const uint64_t epoch_before = map.epoch();

  // host-1 dies; Failover promotes its keys elsewhere and removes the shard.
  map.RemoveShard(ShardMap::EndpointForHost("host-1"));
  EXPECT_EQ(map.epoch(), epoch_before + 1);

  // Well inside the lease window, yet the pre-crash value is refused.
  clock_.Advance(1);
  EXPECT_FALSE(cache.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
  EXPECT_EQ(cache.invalidations(), 1u);

  // The first post-promotion read repopulates under the survivor epoch and
  // serves normally from then on.
  cache.InsertFull("k", Bytes{2});
  auto hit = cache.Lookup("k", 0, kWhole, ReadCache::kLeaseStaleness);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, (Bytes{2}));
}

TEST_F(ReadCacheTest, LookupSizeFallsBackToTheCachedValue) {
  cache_.InsertFull("k", Bytes{1, 2, 3, 4});
  auto size = cache_.LookupSize("k", ReadCache::kLeaseStaleness);
  ASSERT_TRUE(size.has_value());
  EXPECT_EQ(*size, 4u);

  // A size-only entry serves Size() but never a value read.
  cache_.InsertSize("s", 9);
  EXPECT_EQ(cache_.LookupSize("s", ReadCache::kLeaseStaleness).value_or(0), 9u);
  EXPECT_FALSE(cache_.Lookup("s", 0, kWhole, ReadCache::kLeaseStaleness).has_value());
}

}  // namespace
}  // namespace faasm
