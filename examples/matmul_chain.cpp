// Chained serverless composition: divide-and-conquer matrix multiplication
// (64 multiplication + 9 merge functions), with operands and intermediate
// results flowing through the two-tier state (§6.4).
#include <cstdio>
#include <cstring>

#include "runtime/cluster.h"
#include "workloads/matmul.h"

using namespace faasm;

int main() {
  ClusterConfig cluster_config;
  cluster_config.hosts = 4;
  cluster_config.max_concurrent_per_host = 64;
  FaasmCluster cluster(cluster_config);

  MatmulConfig config;
  config.n = 256;
  config.split_levels = 2;

  SeedMatmulInputs(cluster.kvs(), config);
  if (!RegisterMatmulFunctions(cluster.registry()).ok()) {
    return 1;
  }

  cluster.Run([&](Frontend& frontend) {
    const TimeNs start = cluster.clock().Now();
    auto out_key = RunMatmul(frontend, config);
    if (!out_key.ok()) {
      std::fprintf(stderr, "matmul failed: %s\n", out_key.status().ToString().c_str());
      return;
    }
    std::printf("%ux%u multiply finished in %.2f virtual seconds\n", config.n, config.n,
                (cluster.clock().Now() - start) / 1e9);
  });

  // Verify against a single-node reference multiply.
  auto a_bytes = cluster.kvs().Get(kMatmulAKey).value();
  auto b_bytes = cluster.kvs().Get(kMatmulBKey).value();
  std::vector<double> a(config.n * config.n);
  std::vector<double> b(config.n * config.n);
  std::memcpy(a.data(), a_bytes.data(), a_bytes.size());
  std::memcpy(b.data(), b_bytes.data(), b_bytes.size());
  const auto expected = ReferenceMatmul(a, b, config.n);
  auto c_bytes = cluster.kvs().Get(std::string(kMatmulOutPrefix) + "root").value();
  std::vector<double> c(config.n * config.n);
  std::memcpy(c.data(), c_bytes.data(), c_bytes.size());
  double max_err = 0;
  for (size_t i = 0; i < c.size(); ++i) {
    max_err = std::max(max_err, std::abs(c[i] - expected[i]));
  }
  std::printf("max abs error vs reference: %.2e\n", max_err);

  size_t mults = 0;
  size_t merges = 0;
  for (const CallRecord& record : cluster.calls().FinishedRecords()) {
    mults += record.function == "mm_div" ? 1 : 0;
    merges += record.function == "mm_merge" ? 1 : 0;
  }
  std::printf("functions executed: %zu mm_div (1 root + 8 internal + 64 leaves), %zu merges\n",
              mults, merges);
  std::printf("network: %.1f MB, cold starts: %zu\n", cluster.network_bytes() / 1e6,
              cluster.cold_start_count());
  return 0;
}
