#include "runtime/cluster.h"

#include <chrono>
#include <thread>

namespace faasm {

FaasmCluster::FaasmCluster(ClusterConfig config)
    : config_(config),
      network_(std::make_unique<InProcNetwork>(&executor_.clock(), config.network)),
      calls_(&executor_.clock()) {
  const bool sharded = config.state_tier == StateTier::kSharded;
  if (sharded) {
    // One shard per host, mastered by consistent hashing. Each host serves
    // its shard on "kvs:<host>" (the FaasmInstance registers the server).
    for (int i = 0; i < config.hosts; ++i) {
      const std::string endpoint = ShardMap::EndpointForHost("host-" + std::to_string(i));
      kvs_shards_.push_back(std::make_unique<KvStore>());
      shard_map_.AddShard(endpoint);
      kvs_.AddStore(endpoint, kvs_shards_.back().get());
    }
  } else {
    // Centralised baseline: every key is mastered by the standalone "kvs"
    // endpoint, which is co-located with no host — all tier traffic crosses
    // the network, exactly the pre-sharding serialisation point.
    kvs_shards_.push_back(std::make_unique<KvStore>());
    shard_map_.AddShard("kvs");
    kvs_.AddStore("kvs", kvs_shards_.back().get());
    central_kvs_server_ =
        std::make_unique<KvsServer>(kvs_shards_.back().get(), network_.get());
  }
  kvs_.Attach(&shard_map_);

  for (int i = 0; i < config.hosts; ++i) {
    HostConfig host_config;
    host_config.name = "host-" + std::to_string(i);
    host_config.cores = config.cores_per_host;
    host_config.memory_bytes = config.host_memory_bytes;
    host_config.max_concurrent_calls = config.max_concurrent_per_host;
    host_config.warm_set_ttl_ns = config.warm_set_ttl_ns;
    hosts_.push_back(std::make_unique<FaasmInstance>(
        host_config, &executor_, network_.get(), &registry_, &calls_, &files_, &shard_map_,
        sharded ? kvs_shards_[i].get() : nullptr));
  }
  for (auto& host : hosts_) {
    host->Start();
  }
}

FaasmCluster::~FaasmCluster() { Shutdown(); }

void FaasmCluster::Shutdown() {
  if (shut_down_) {
    return;
  }
  shut_down_ = true;
  for (auto& host : hosts_) {
    host->Stop();
  }
  executor_.JoinAll();
}

void FaasmCluster::Run(const std::function<void(Frontend&)>& driver) {
  std::atomic<bool> done{false};
  executor_.Spawn([this, &driver, &done] {
    Frontend frontend(&hosts_, &calls_);
    driver(frontend);
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
}

double FaasmCluster::billable_gb_seconds() const {
  double total = 0;
  for (const auto& host : hosts_) {
    const FaasmInstance& instance = *host;
    total += instance.memory_accountant().GbSeconds();
  }
  return total;
}

size_t FaasmCluster::cold_start_count() const {
  size_t count = 0;
  for (const auto& host : hosts_) {
    count += host->cold_start_count();
  }
  return count;
}

size_t FaasmCluster::warm_faaslet_count() const {
  size_t count = 0;
  for (const auto& host : hosts_) {
    count += host->warm_faaslet_count();
  }
  return count;
}

}  // namespace faasm
