// DirtyTracker: a page-granular write bitmap. One tracker sits behind every
// SharedRegion (state replicas: which pages diverged from the global tier
// since the last push) and every LinearMemory (Faaslet private memory: which
// pages diverged from the creation snapshot since the last reset). Both
// consumers turn the bitmap into coalesced byte runs — the delta-push wire
// ranges and the delta-reset restore ranges respectively.
//
// Marking is lock-free (relaxed fetch_or on 64-bit words) so HOGWILD-style
// writers on many executor threads can mark concurrently with a push
// collecting runs. CollectAndClearDirtyRuns grabs-and-zeroes each word
// atomically: a mark racing with a collection lands either in this
// collection or the next, never nowhere.
#ifndef FAASM_MEM_DIRTY_TRACKER_H_
#define FAASM_MEM_DIRTY_TRACKER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace faasm {

// A byte range [offset, offset + len), page-aligned except where clipped at
// the tracked extent.
struct DirtyRun {
  size_t offset = 0;
  size_t len = 0;

  bool operator==(const DirtyRun& other) const {
    return offset == other.offset && len == other.len;
  }
};

class DirtyTracker {
 public:
  // Tracks writes to [0, size_bytes) at `page_bytes` granularity (must be a
  // power of two). The extent is fixed at construction; marks past it are
  // clipped (writers may address a rounded-up mapping tail).
  explicit DirtyTracker(size_t size_bytes, size_t page_bytes = 4096);

  DirtyTracker(const DirtyTracker&) = delete;
  DirtyTracker& operator=(const DirtyTracker&) = delete;

  size_t page_bytes() const { return page_bytes_; }
  size_t page_count() const { return page_count_; }

  // Marks every page overlapping [offset, offset + len) dirty. Thread safe.
  void MarkDirty(size_t offset, size_t len);

  // True once MarkDirty has ever been called (not reset by ClearDirty). Lets
  // consumers distinguish "no writes since last collection" from "writers
  // that never report" and fall back to conservative full transfers for the
  // latter.
  bool ever_marked() const { return ever_marked_.load(std::memory_order_relaxed); }

  bool any_dirty() const;
  size_t dirty_page_count() const;

  // Coalesces runs of adjacent dirty pages into byte ranges, ascending by
  // offset. Does not clear the bitmap.
  std::vector<DirtyRun> CollectDirtyRuns() const;

  // Atomically grabs and clears the bitmap, returning the coalesced runs.
  // Marks racing with the collection survive into the next collection.
  // On a failed downstream transfer, re-mark the returned runs.
  std::vector<DirtyRun> CollectAndClearDirtyRuns();

  void ClearDirty();

 private:
  std::vector<DirtyRun> ScanRuns(bool clear);

  size_t page_bytes_;
  size_t page_shift_;
  size_t page_count_;
  std::unique_ptr<std::atomic<uint64_t>[]> words_;
  size_t word_count_;
  std::atomic<bool> ever_marked_{false};
};

}  // namespace faasm

#endif  // FAASM_MEM_DIRTY_TRACKER_H_
