#include "kvs/kv_store.h"

#include <algorithm>

namespace faasm {

namespace {
// Upper bound on a single value's extent. Offsets come straight off the wire
// in the range ops; without a bound an overflowing (or merely huge) offset
// would corrupt memory or force an absurd resize.
constexpr size_t kMaxValueBytes = size_t{1} << 34;  // 16 GiB

bool RangeIsSane(size_t offset, size_t len) {
  return offset <= kMaxValueBytes && len <= kMaxValueBytes - offset;
}

// Counts a mutation as in flight from store entry until the update hook
// returned, which is the window the failover quiesce barrier waits out.
struct MutationScope {
  explicit MutationScope(std::atomic<int>& inflight) : inflight_(inflight) {
    inflight_.fetch_add(1, std::memory_order_relaxed);
  }
  ~MutationScope() { inflight_.fetch_sub(1, std::memory_order_relaxed); }
  std::atomic<int>& inflight_;
};
}  // namespace

int& KvStore::HookPause::Depth() {
  static thread_local int depth = 0;
  return depth;
}

Bytes KeyExport::Serialize() const {
  Bytes out;
  ByteWriter writer(out);
  writer.Put<uint8_t>(has_value ? 1 : 0);
  writer.PutBytes(value);
  writer.Put<int32_t>(lock_readers);
  writer.PutString(lock_writer);
  writer.Put<uint32_t>(static_cast<uint32_t>(set_members.size()));
  for (const std::string& member : set_members) {
    writer.PutString(member);
  }
  writer.Put<uint64_t>(seq);
  return out;
}

Result<KeyExport> KeyExport::Deserialize(const Bytes& bytes) {
  KeyExport record;
  ByteReader reader(bytes);
  FAASM_ASSIGN_OR_RETURN(uint8_t has_value, reader.Get<uint8_t>());
  record.has_value = has_value != 0;
  FAASM_ASSIGN_OR_RETURN(record.value, reader.GetBytes());
  FAASM_ASSIGN_OR_RETURN(record.lock_readers, reader.Get<int32_t>());
  FAASM_ASSIGN_OR_RETURN(record.lock_writer, reader.GetString());
  FAASM_ASSIGN_OR_RETURN(uint32_t member_count, reader.Get<uint32_t>());
  record.set_members.reserve(std::min<uint32_t>(member_count, 1024));
  for (uint32_t i = 0; i < member_count; ++i) {
    FAASM_ASSIGN_OR_RETURN(std::string member, reader.GetString());
    record.set_members.push_back(std::move(member));
  }
  FAASM_ASSIGN_OR_RETURN(record.seq, reader.Get<uint64_t>());
  return record;
}

bool KeyExport::SameContent(const KeyExport& other) const {
  return has_value == other.has_value && value == other.value &&
         lock_readers == other.lock_readers && lock_writer == other.lock_writer &&
         set_members == other.set_members;
}

std::vector<ValueRange> MergeValueRanges(std::vector<ValueRange> ranges) {
  // Drop empty ranges up front; they carry no bytes and would only split
  // otherwise-mergeable neighbours.
  ranges.erase(std::remove_if(ranges.begin(), ranges.end(),
                              [](const ValueRange& r) { return r.bytes.empty(); }),
               ranges.end());
  if (ranges.size() <= 1) {
    return ranges;
  }

  // Compute the merged extents: the union of the input intervals, with
  // adjacent ([a,b) + [b,c)) and overlapping intervals fused.
  struct Extent {
    uint64_t start;
    uint64_t end;
  };
  std::vector<Extent> extents;
  extents.reserve(ranges.size());
  for (const ValueRange& range : ranges) {
    extents.push_back(Extent{range.offset, range.offset + range.bytes.size()});
  }
  std::sort(extents.begin(), extents.end(),
            [](const Extent& a, const Extent& b) { return a.start < b.start; });
  std::vector<Extent> merged;
  merged.push_back(extents[0]);
  for (size_t i = 1; i < extents.size(); ++i) {
    if (extents[i].start <= merged.back().end) {
      merged.back().end = std::max(merged.back().end, extents[i].end);
    } else {
      merged.push_back(extents[i]);
    }
  }
  if (merged.size() == ranges.size()) {
    // Nothing adjacent or overlapping; only the documented sort remains.
    std::sort(ranges.begin(), ranges.end(),
              [](const ValueRange& a, const ValueRange& b) { return a.offset < b.offset; });
    return ranges;
  }

  // Materialise each merged extent, then replay the inputs IN ORIGINAL
  // ORDER so a later (newer) write wins wherever ranges overlapped —
  // exactly what applying them sequentially through SetRanges would do.
  // Every byte of a merged extent is covered by at least one input, so no
  // filler bytes are invented.
  std::vector<ValueRange> out;
  out.reserve(merged.size());
  for (const Extent& extent : merged) {
    out.push_back(ValueRange{extent.start, Bytes(extent.end - extent.start)});
  }
  for (const ValueRange& range : ranges) {
    const auto it = std::upper_bound(
        merged.begin(), merged.end(), range.offset,
        [](uint64_t offset, const Extent& e) { return offset < e.start; });
    const size_t slot = static_cast<size_t>(it - merged.begin()) - 1;
    std::copy(range.bytes.begin(), range.bytes.end(),
              out[slot].bytes.begin() + (range.offset - merged[slot].start));
  }
  return out;
}

bool KvStore::ShouldForward(const KvsBatchOp& op, const KvsBatchResult& result) {
  if (!result.status.ok() || !IsMutatingOp(op.op)) {
    return false;
  }
  // A lock try that did not acquire is a successful op that changed nothing.
  if ((op.op == KvsOp::kLockRead || op.op == KvsOp::kLockWrite) && !result.flag) {
    return false;
  }
  return true;
}

KvsBatchResult KvStore::MutateOne(const KvsBatchOp& op) {
  MutationScope scope(inflight_);
  const bool forwarding = ForwardingActive();
  KvsBatchResult result;
  uint64_t seq = 0;
  {
    Shard& shard = ShardFor(op.key);
    std::lock_guard<std::mutex> guard(shard.mutex);
    result.status = CheckServableLocked(shard, op.key);
    if (result.status.ok()) {
      result = ApplyLocked(shard, op);
      if (forwarding && ShouldForward(op, result)) {
        // Captured under the shard mutex: for any key, seq order == apply
        // order, which is what lets a backup drop duplicates by floor.
        seq = mutation_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
        shard.key_seq[op.key] = seq;
      }
    }
  }
  if (seq != 0) {
    // Outside the mutex: the hook may cross the network (sync replication
    // acks after the backups applied) and must never hold a shard lock.
    hook_({ForwardedOp{&op, seq}});
  }
  return result;
}

Status KvStore::Set(const std::string& key, Bytes value) {
  KvsBatchOp op;
  op.op = KvsOp::kSet;
  op.key = key;
  op.bytes = std::move(value);
  return MutateOne(op).status;
}

Status KvStore::SetLocked(Shard& shard, const std::string& key, Bytes value) {
  shard.values[key] = std::move(value);
  return OkStatus();
}

Result<Bytes> KvStore::Get(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  return GetLocked(shard, key);
}

Result<Bytes> KvStore::GetLocked(const Shard& shard, const std::string& key) {
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  return it->second;
}

bool KvStore::Exists(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  return shard.values.count(key) > 0;
}

Result<size_t> KvStore::Size(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  return it->second.size();
}

Status KvStore::Delete(const std::string& key) {
  KvsBatchOp op;
  op.op = KvsOp::kDelete;
  op.key = key;
  return MutateOne(op).status;
}

Status KvStore::DeleteLocked(Shard& shard, const std::string& key) {
  return shard.values.erase(key) > 0 ? OkStatus() : NotFound("kvs: no such key: " + key);
}

Result<Bytes> KvStore::GetRange(const std::string& key, size_t offset, size_t len) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  FAASM_RETURN_IF_ERROR(CheckServableLocked(shard, key));
  return GetRangeLocked(shard, key, offset, len);
}

Result<Bytes> KvStore::GetRangeLocked(const Shard& shard, const std::string& key, size_t offset,
                                      size_t len) {
  auto it = shard.values.find(key);
  if (it == shard.values.end()) {
    return NotFound("kvs: no such key: " + key);
  }
  const Bytes& value = it->second;
  if (offset > value.size()) {
    return OutOfRange("kvs: range start past end of value");
  }
  // `len` may be the whole-value sentinel (UINT64_MAX): clamp without
  // computing offset + len, which would wrap.
  const size_t end = len >= value.size() - offset ? value.size() : offset + len;
  return Bytes(value.begin() + offset, value.begin() + end);
}

Status KvStore::SetRange(const std::string& key, size_t offset, const Bytes& bytes) {
  KvsBatchOp op;
  op.op = KvsOp::kSetRange;
  op.key = key;
  op.offset = offset;
  op.bytes = bytes;
  return MutateOne(op).status;
}

Status KvStore::SetRangeLocked(Shard& shard, const std::string& key, size_t offset,
                               const Bytes& bytes) {
  if (!RangeIsSane(offset, bytes.size())) {
    return InvalidArgument("kvs: range write exceeds maximum value size");
  }
  Bytes& value = shard.values[key];
  if (value.size() < offset + bytes.size()) {
    value.resize(offset + bytes.size());
  }
  std::copy(bytes.begin(), bytes.end(), value.begin() + offset);
  return OkStatus();
}

Status KvStore::SetRanges(const std::string& key, const std::vector<ValueRange>& ranges) {
  KvsBatchOp op;
  op.op = KvsOp::kSetRanges;
  op.key = key;
  op.ranges = ranges;
  return MutateOne(op).status;
}

Status KvStore::SetRangesLocked(Shard& shard, const std::string& key,
                                const std::vector<ValueRange>& ranges) {
  for (const ValueRange& range : ranges) {
    if (!RangeIsSane(range.offset, range.bytes.size())) {
      return InvalidArgument("kvs: range write exceeds maximum value size");
    }
  }
  Bytes& value = shard.values[key];
  size_t needed = value.size();
  for (const ValueRange& range : ranges) {
    needed = std::max(needed, static_cast<size_t>(range.offset) + range.bytes.size());
  }
  if (value.size() < needed) {
    value.resize(needed);
  }
  for (const ValueRange& range : ranges) {
    std::copy(range.bytes.begin(), range.bytes.end(), value.begin() + range.offset);
  }
  return OkStatus();
}

Result<size_t> KvStore::Append(const std::string& key, const Bytes& bytes) {
  KvsBatchOp op;
  op.op = KvsOp::kAppend;
  op.key = key;
  op.bytes = bytes;
  KvsBatchResult result = MutateOne(op);
  FAASM_RETURN_IF_ERROR(result.status);
  return static_cast<size_t>(result.length);
}

Result<size_t> KvStore::AppendLocked(Shard& shard, const std::string& key, const Bytes& bytes) {
  Bytes& value = shard.values[key];
  value.insert(value.end(), bytes.begin(), bytes.end());
  return value.size();
}

Result<bool> KvStore::TryLockRead(const std::string& key, const std::string& owner) {
  KvsBatchOp op;
  op.op = KvsOp::kLockRead;
  op.key = key;
  op.member = owner;
  KvsBatchResult result = MutateOne(op);
  FAASM_RETURN_IF_ERROR(result.status);
  return result.flag;
}

Result<bool> KvStore::TryLockWrite(const std::string& key, const std::string& owner) {
  KvsBatchOp op;
  op.op = KvsOp::kLockWrite;
  op.key = key;
  op.member = owner;
  KvsBatchResult result = MutateOne(op);
  FAASM_RETURN_IF_ERROR(result.status);
  return result.flag;
}

Status KvStore::UnlockRead(const std::string& key, const std::string& owner) {
  KvsBatchOp op;
  op.op = KvsOp::kUnlockRead;
  op.key = key;
  op.member = owner;
  return MutateOne(op).status;
}

Status KvStore::UnlockWrite(const std::string& key, const std::string& owner) {
  KvsBatchOp op;
  op.op = KvsOp::kUnlockWrite;
  op.key = key;
  op.member = owner;
  return MutateOne(op).status;
}

Result<bool> KvStore::SetAdd(const std::string& key, const std::string& member) {
  KvsBatchOp op;
  op.op = KvsOp::kSetAdd;
  op.key = key;
  op.member = member;
  KvsBatchResult result = MutateOne(op);
  FAASM_RETURN_IF_ERROR(result.status);
  return result.flag;
}

Result<bool> KvStore::SetAddLocked(Shard& shard, const std::string& key,
                                   const std::string& member) {
  return shard.sets[key].insert(member).second;
}

Result<bool> KvStore::SetRemove(const std::string& key, const std::string& member) {
  KvsBatchOp op;
  op.op = KvsOp::kSetRemove;
  op.key = key;
  op.member = member;
  KvsBatchResult result = MutateOne(op);
  FAASM_RETURN_IF_ERROR(result.status);
  return result.flag;
}

Result<bool> KvStore::SetRemoveLocked(Shard& shard, const std::string& key,
                                      const std::string& member) {
  auto it = shard.sets.find(key);
  if (it == shard.sets.end()) {
    return false;
  }
  return it->second.erase(member) > 0;
}

// --- Batched execution ----------------------------------------------------------

KvsBatchResult KvStore::ApplyLocked(Shard& shard, const KvsBatchOp& op) {
  KvsBatchResult result;
  switch (op.op) {
    case KvsOp::kGet: {
      auto value = GetLocked(shard, op.key);
      result.status = value.status();
      if (value.ok()) {
        result.value = std::move(value).value();
      }
      break;
    }
    case KvsOp::kGetRange: {
      auto value = GetRangeLocked(shard, op.key, op.offset, op.len);
      result.status = value.status();
      if (value.ok()) {
        result.value = std::move(value).value();
      }
      break;
    }
    case KvsOp::kSet:
      result.status = SetLocked(shard, op.key, op.bytes);
      break;
    case KvsOp::kSetRange:
      result.status = SetRangeLocked(shard, op.key, op.offset, op.bytes);
      break;
    case KvsOp::kSetRanges:
      result.status = SetRangesLocked(shard, op.key, op.ranges);
      break;
    case KvsOp::kAppend: {
      auto length = AppendLocked(shard, op.key, op.bytes);
      result.status = length.status();
      if (length.ok()) {
        result.length = length.value();
      }
      break;
    }
    case KvsOp::kDelete:
      result.status = DeleteLocked(shard, op.key);
      break;
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove: {
      auto changed = op.op == KvsOp::kSetAdd ? SetAddLocked(shard, op.key, op.member)
                                             : SetRemoveLocked(shard, op.key, op.member);
      result.status = changed.status();
      if (changed.ok()) {
        result.flag = changed.value();
      }
      break;
    }
    // Lock ops, with the owner in `member`. Unreachable from the public
    // batch wire (its decode rejects them); they arrive here from the
    // single-op funnel (MutateOne) and the replication forward channel.
    case KvsOp::kLockRead: {
      LockState& lock = shard.locks[op.key];
      result.flag = lock.writer.empty();
      if (result.flag) {
        ++lock.readers;
      }
      break;
    }
    case KvsOp::kLockWrite: {
      LockState& lock = shard.locks[op.key];
      result.flag = lock.writer.empty() && lock.readers == 0;
      if (result.flag) {
        lock.writer = op.member;
      }
      break;
    }
    case KvsOp::kUnlockRead: {
      LockState& lock = shard.locks[op.key];
      if (lock.readers <= 0) {
        result.status = FailedPrecondition("kvs: read-unlock without lock: " + op.key);
        break;
      }
      --lock.readers;
      break;
    }
    case KvsOp::kUnlockWrite: {
      LockState& lock = shard.locks[op.key];
      if (lock.writer != op.member) {
        result.status = FailedPrecondition("kvs: write-unlock by non-owner: " + op.key);
        break;
      }
      lock.writer.clear();
      break;
    }
    default:
      result.status = InvalidArgument("kvs: op not batchable");
      break;
  }
  return result;
}

std::vector<KvsBatchResult> KvStore::ExecuteBatch(const std::vector<const KvsBatchOp*>& ops) {
  MutationScope scope(inflight_);
  const bool forwarding = ForwardingActive();
  std::vector<KvsBatchResult> results(ops.size());
  // Per-op apply sequences, captured under each bucket's shard mutex
  // (0 = not forwarded). The hook fires ONCE for the whole batch, after
  // every mutex is released, so one forward RPC can carry the batch.
  std::vector<uint64_t> seqs;
  if (forwarding) {
    seqs.assign(ops.size(), 0);
  }
  // Bucket op indices by internal shard, preserving request order within
  // each bucket (ops on the same key always share a bucket, so their
  // relative order survives the grouping).
  std::vector<std::vector<size_t>> buckets(kShards);
  for (size_t i = 0; i < ops.size(); ++i) {
    buckets[ShardIndexFor(ops[i]->key)].push_back(i);
  }
  for (size_t s = 0; s < kShards; ++s) {
    if (buckets[s].empty()) {
      continue;
    }
    // One mutex acquisition per touched shard: the whole bucket executes
    // against a single consistent view of the freeze set, migration filter
    // and ownership guard.
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> guard(shard.mutex);
    for (size_t i : buckets[s]) {
      const KvsBatchOp& op = *ops[i];
      Status servable = CheckServableLocked(shard, op.key);
      if (servable.ok()) {
        results[i] = ApplyLocked(shard, op);
        if (forwarding && ShouldForward(op, results[i])) {
          seqs[i] = mutation_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
          shard.key_seq[op.key] = seqs[i];
        }
      } else {
        results[i].status = std::move(servable);
      }
    }
  }
  if (forwarding) {
    std::vector<ForwardedOp> applied;
    for (size_t i = 0; i < ops.size(); ++i) {
      if (seqs[i] != 0) {
        applied.push_back(ForwardedOp{ops[i], seqs[i]});
      }
    }
    if (!applied.empty()) {
      hook_(applied);
    }
  }
  return results;
}

std::vector<KvsBatchResult> KvStore::ExecuteBatch(const std::vector<KvsBatchOp>& ops) {
  std::vector<const KvsBatchOp*> pointers;
  pointers.reserve(ops.size());
  for (const KvsBatchOp& op : ops) {
    pointers.push_back(&op);
  }
  return ExecuteBatch(pointers);
}

std::vector<std::string> KvStore::SetMembers(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.sets.find(key);
  if (it == shard.sets.end()) {
    return {};
  }
  return std::vector<std::string>(it->second.begin(), it->second.end());
}

std::vector<std::string> KvStore::Keys() const {
  std::set<std::string> keys;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    for (const auto& [key, value] : shard.values) {
      keys.insert(key);
    }
    for (const auto& [key, lock] : shard.locks) {
      if (lock.readers > 0 || !lock.writer.empty()) {
        keys.insert(key);
      }
    }
    for (const auto& [key, members] : shard.sets) {
      if (!members.empty()) {
        keys.insert(key);
      }
    }
  }
  return std::vector<std::string>(keys.begin(), keys.end());
}

void KvStore::FreezeKey(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.frozen.insert(key);
}

void KvStore::UnfreezeKey(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.frozen.erase(key);
}

bool KvStore::IsFrozen(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  return shard.frozen.count(key) > 0;
}

void KvStore::SetMigrationFilter(std::function<bool(const std::string&)> filter) {
  KeyPredicate shared =
      filter ? std::make_shared<const std::function<bool(const std::string&)>>(std::move(filter))
             : nullptr;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.filter = shared;
  }
}

void KvStore::SetOwnershipGuard(std::function<bool(const std::string&)> owns) {
  KeyPredicate shared =
      owns ? std::make_shared<const std::function<bool(const std::string&)>>(std::move(owns))
           : nullptr;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    shard.owns = shared;
  }
}

KeyExport KvStore::ExportKey(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  KeyExport record;
  // Floor for the installing backup's duplicate filter: any op on this key
  // with seq <= the snapshot's is already folded in (the key's own shard
  // mutex is held, so no smaller-seq op on it can still be mid-apply).
  record.seq = mutation_seq_.load(std::memory_order_relaxed);
  if (auto it = shard.values.find(key); it != shard.values.end()) {
    record.has_value = true;
    record.value = it->second;
  }
  if (auto it = shard.locks.find(key); it != shard.locks.end()) {
    record.lock_readers = it->second.readers;
    record.lock_writer = it->second.writer;
  }
  if (auto it = shard.sets.find(key); it != shard.sets.end()) {
    record.set_members.assign(it->second.begin(), it->second.end());
  }
  return record;
}

void KvStore::InstallKey(const std::string& key, const KeyExport& record) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.frozen.erase(key);  // the key is moving (back) in
  // Re-base the per-key sequence into THIS store's space: the installed
  // footprint is current as of this store's present sequence, which is what
  // a later ExportKey of the key would stamp — so a floor anchored from such
  // an export compares >= against KeySeq, never across sequence spaces.
  shard.key_seq[key] = mutation_seq_.load(std::memory_order_relaxed);
  if (record.has_value) {
    shard.values[key] = record.value;
  } else {
    shard.values.erase(key);
  }
  if (record.lock_readers > 0 || !record.lock_writer.empty()) {
    shard.locks[key] = LockState{record.lock_readers, record.lock_writer};
  } else {
    shard.locks.erase(key);
  }
  if (!record.set_members.empty()) {
    shard.sets[key] =
        std::set<std::string>(record.set_members.begin(), record.set_members.end());
  } else {
    shard.sets.erase(key);
  }
}

void KvStore::EraseKey(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  shard.values.erase(key);
  shard.locks.erase(key);
  shard.sets.erase(key);
  shard.key_seq.erase(key);
  // The ownership guard — not a per-key marker — keeps stragglers off the
  // moved key, and keeps working if mastership later returns here.
  shard.frozen.erase(key);
}

uint64_t KvStore::KeySeq(const std::string& key) const {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> guard(shard.mutex);
  auto it = shard.key_seq.find(key);
  return it == shard.key_seq.end() ? 0 : it->second;
}

size_t KvStore::key_count() const {
  size_t count = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    count += shard.values.size();
  }
  return count;
}

size_t KvStore::total_bytes() const {
  size_t bytes = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> guard(shard.mutex);
    for (const auto& [key, value] : shard.values) {
      bytes += value.size();
    }
  }
  return bytes;
}

}  // namespace faasm
