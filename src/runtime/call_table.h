// CallTable: cluster-wide call lifecycle bookkeeping (submit -> running ->
// done/failed) plus the per-call metrics (durations, footprints, cold starts)
// the benchmark harnesses aggregate.
#ifndef FAASM_RUNTIME_CALL_TABLE_H_
#define FAASM_RUNTIME_CALL_TABLE_H_

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"

namespace faasm {

enum class CallState { kPending, kRunning, kDone, kFailed };

struct CallRecord {
  uint64_t id = 0;
  std::string function;
  Bytes input;
  Bytes output;
  int return_code = 0;
  CallState state = CallState::kPending;
  std::string error;
  std::string executed_on;
  bool cold_start = false;
  TimeNs submitted_at = 0;
  TimeNs started_at = 0;
  TimeNs finished_at = 0;
};

class CallTable {
 public:
  explicit CallTable(Clock* clock) : clock_(clock) {}

  uint64_t Create(const std::string& function, Bytes input);

  // Takes the input out of the record (the executor consumes it once).
  Result<Bytes> TakeInput(uint64_t id);

  Status MarkRunning(uint64_t id, const std::string& host, bool cold_start);
  Status Complete(uint64_t id, int return_code, Bytes output);
  Status Fail(uint64_t id, const std::string& error);

  bool IsFinished(uint64_t id) const;
  Result<CallRecord> Get(uint64_t id) const;  // copies the record
  Result<Bytes> Output(uint64_t id) const;

  std::vector<CallRecord> FinishedRecords() const;
  size_t cold_start_count() const;

 private:
  Clock* clock_;
  mutable std::mutex mutex_;
  std::map<uint64_t, CallRecord> calls_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace faasm

#endif  // FAASM_RUNTIME_CALL_TABLE_H_
