#include "kvs/router.h"

#include <cstdlib>

#include "common/bytes.h"
#include "common/log.h"

namespace faasm {

namespace {
constexpr char kShardEndpointPrefix[] = "kvs:";

// Murmur3 finaliser: full-avalanche mix. The repo-wide FNV-1a leaves
// near-identical strings ("kvs:host-3#41" vs "#42") with near-identical
// hashes, which would cluster every vnode of a host into one tight ring arc
// and wreck the balance consistent hashing depends on; the finaliser
// scatters them uniformly.
uint64_t Mix64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdull;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ull;
  x ^= x >> 33;
  return x;
}

uint64_t HashString(const std::string& s) {
  return Mix64(HashBytes(reinterpret_cast<const uint8_t*>(s.data()), s.size()));
}

// Ring point of virtual node `vnode` of `endpoint`.
uint64_t RingPoint(const std::string& endpoint, int vnode) {
  return HashString(endpoint + "#" + std::to_string(vnode));
}
}  // namespace

ShardMap::ShardMap(const std::vector<std::string>& endpoints) {
  for (const std::string& endpoint : endpoints) {
    AddShard(endpoint);
  }
}

std::string ShardMap::EndpointForHost(const std::string& host) {
  return kShardEndpointPrefix + host;
}

std::string ShardMap::HostForEndpoint(const std::string& endpoint) {
  const size_t prefix_len = sizeof(kShardEndpointPrefix) - 1;
  if (endpoint.compare(0, prefix_len, kShardEndpointPrefix) != 0) {
    return "";
  }
  return endpoint.substr(prefix_len);
}

void ShardMap::AddShard(const std::string& endpoint) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  if (!endpoints_.insert(endpoint).second) {
    return;
  }
  for (int vnode = 0; vnode < kVirtualNodes; ++vnode) {
    // Hash collisions between distinct endpoints are theoretically possible;
    // first-placed wins, which only shifts a sliver of keyspace.
    ring_.emplace(RingPoint(endpoint, vnode), endpoint);
  }
}

void ShardMap::RemoveShard(const std::string& endpoint) {
  std::unique_lock<std::shared_mutex> guard(mutex_);
  if (endpoints_.erase(endpoint) == 0) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == endpoint ? ring_.erase(it) : std::next(it);
  }
}

std::string ShardMap::MasterFor(const std::string& key) const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  if (ring_.empty()) {
    return "";
  }
  // First shard clockwise from the key's hash, wrapping past the top.
  auto it = ring_.lower_bound(HashString(key));
  if (it == ring_.end()) {
    it = ring_.begin();
  }
  return it->second;
}

std::vector<std::string> ShardMap::shards() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return std::vector<std::string>(endpoints_.begin(), endpoints_.end());
}

size_t ShardMap::shard_count() const {
  std::shared_lock<std::shared_mutex> guard(mutex_);
  return endpoints_.size();
}

KvStore* ShardedKvs::StoreFor(const std::string& key) const {
  if (map_ != nullptr && !stores_.empty()) {
    const std::string master = map_->MasterFor(key);
    auto it = stores_.find(master);
    if (it != stores_.end()) {
      return it->second;
    }
    if (single_ == nullptr) {
      // Misconfiguration (a shard was added to the map with no attached
      // store): every caller dereferences the result, so fail loudly here
      // rather than segfault downstream.
      LOG_ERROR << "sharded kvs: no store attached for '" << master << "' (master of '" << key
                << "'); map and stores are out of sync";
      std::abort();
    }
    LOG_ERROR << "sharded kvs: no store attached for master of '" << key
              << "'; falling back to the single store";
  }
  return single_;
}

size_t ShardedKvs::key_count() const {
  if (stores_.empty()) {
    return single_ != nullptr ? single_->key_count() : 0;
  }
  size_t count = 0;
  for (const auto& [endpoint, store] : stores_) {
    count += store->key_count();
  }
  return count;
}

size_t ShardedKvs::total_bytes() const {
  if (stores_.empty()) {
    return single_ != nullptr ? single_->total_bytes() : 0;
  }
  size_t bytes = 0;
  for (const auto& [endpoint, store] : stores_) {
    bytes += store->total_bytes();
  }
  return bytes;
}

}  // namespace faasm
