// Latency-sensitive serving: the wasm MLP classifier with weights in shared
// state, demonstrating warm-path latency and sub-millisecond Proto-Faaslet
// cold starts (§6.3).
#include <cstdio>

#include "runtime/cluster.h"
#include "workloads/inference.h"

using namespace faasm;

int main() {
  // Serving weights are written once and read forever: the canonical
  // workload for the leased per-host read cache (repeat weight pulls are
  // served with zero tier RPCs; an epoch flip or local write still
  // invalidates). Read-modify-write workloads must NOT set this.
  ClusterConfig config;
  config.read_cache = true;
  config.read_lease_ns = 50 * kMillisecond;
  FaasmCluster cluster(config);
  const MlpDims dims;
  SeedMlpWeights(cluster.kvs(), dims);
  if (!RegisterMlpWasm(cluster.registry(), "infer", dims).ok()) {
    return 1;
  }

  cluster.Run([&](Frontend& frontend) {
    for (uint64_t request = 0; request < 10; ++request) {
      const auto image = SyntheticImage(dims, request);
      const TimeNs start = cluster.clock().Now();
      auto id = frontend.Submit("infer", EncodeImage(image));
      if (!id.ok()) {
        return;
      }
      auto code = frontend.Await(id.value());
      const double latency_ms = (cluster.clock().Now() - start) / 1e6;
      auto output = frontend.Output(id.value());
      if (code.ok() && output.ok() && output.value().size() >= 4) {
        uint32_t predicted = 0;
        std::memcpy(&predicted, output.value().data(), 4);
        const uint32_t expected = MlpReference(cluster.kvs(), dims, image);
        std::printf("request %2llu: class %u (%s) latency %.2f ms%s\n",
                    static_cast<unsigned long long>(request), predicted,
                    predicted == expected ? "correct" : "MISMATCH", latency_ms,
                    request == 0 ? "  <- cold start" : "");
      }
    }
  });

  std::printf("\nweights stay in one shared local-tier replica per host; every Faaslet maps\n"
              "them zero-copy into its linear memory via get_state().\n");
  return 0;
}
