// Ablation on the Proto-Faaslet restore mechanism (§5.2): copy-on-write
// mapping of the snapshot memfd vs an eager memcpy restore, across function
// image sizes. google-benchmark binary.
#include <benchmark/benchmark.h>

#include "mem/snapshot.h"

namespace faasm {
namespace {

void BM_RestoreCow(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  auto memory = LinearMemory::Create(pages, pages * 2).value();
  std::memset(memory->base(), 0x5C, memory->size_bytes());
  auto snapshot = MemorySnapshot::Capture("bench", memory->base(), memory->size_bytes()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot->RestoreInto(*memory).ok());
    // Touch one byte to fault in at least one page, as a restored function's
    // first instruction would.
    memory->base()[0] = 1;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * memory->size_bytes());
  state.SetLabel(std::to_string(pages * 64) + "KiB image");
}

void BM_RestoreEager(benchmark::State& state) {
  const uint32_t pages = static_cast<uint32_t>(state.range(0));
  auto memory = LinearMemory::Create(pages, pages * 2).value();
  std::memset(memory->base(), 0x5C, memory->size_bytes());
  auto snapshot = MemorySnapshot::Capture("bench", memory->base(), memory->size_bytes()).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(snapshot->RestoreIntoEager(*memory).ok());
    memory->base()[0] = 1;
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * memory->size_bytes());
  state.SetLabel(std::to_string(pages * 64) + "KiB image");
}

// 64 KiB (no-op wasm) .. 16 MiB (large language-runtime image).
BENCHMARK(BM_RestoreCow)->RangeMultiplier(4)->Range(1, 256)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_RestoreEager)->RangeMultiplier(4)->Range(1, 256)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace faasm

BENCHMARK_MAIN();
