// Two-tier state tests: replica lifecycle, push/pull (full + chunked), page
// tracking, local and global locks, append.
#include <gtest/gtest.h>

#include "state/local_tier.h"

namespace faasm {
namespace {

class StateTest : public ::testing::Test {
 protected:
  StateTest()
      : network_(&clock_, NoLatency()),
        server_(&store_, &network_),
        kvs_(&network_, "host-0"),
        tier_(&kvs_, &clock_) {}

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  void SeedGlobal(const std::string& key, size_t size, uint8_t fill) {
    store_.Set(key, Bytes(size, fill));
  }

  RealClock clock_;
  InProcNetwork network_;
  KvStore store_;
  KvsServer server_;
  KvsClient kvs_;
  LocalTier tier_;
};

TEST_F(StateTest, PullCreatesSizedReplica) {
  SeedGlobal("k", 10000, 0x5A);
  auto kv = tier_.Lookup("k");
  EXPECT_FALSE(kv->allocated());
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_TRUE(kv->allocated());
  EXPECT_EQ(kv->size(), 10000u);
  EXPECT_EQ(kv->data()[0], 0x5A);
  EXPECT_EQ(kv->data()[9999], 0x5A);
}

TEST_F(StateTest, LookupIsSharedPerKey) {
  auto a = tier_.Lookup("k");
  auto b = tier_.Lookup("k");
  EXPECT_EQ(a.get(), b.get());  // same replica object: in-memory sharing
  EXPECT_NE(tier_.Lookup("other").get(), a.get());
}

TEST_F(StateTest, PushWritesGlobal) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(128).ok());
  std::memset(kv->data(), 0x7B, 128);
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(store_.Get("k").value(), Bytes(128, 0x7B));
}

TEST_F(StateTest, ChunkedPullFetchesOnlyTouchedPages) {
  const size_t size = 64 * StateKeyValue::kStatePageBytes;
  SeedGlobal("big", size, 0x11);
  auto kv = tier_.Lookup("big");
  network_.ResetStats();
  // Pull a 2-page window in the middle.
  ASSERT_TRUE(kv->PullChunk(10 * StateKeyValue::kStatePageBytes, 2 * StateKeyValue::kStatePageBytes)
                  .ok());
  EXPECT_EQ(kv->resident_pages(), 2u);
  const uint64_t bytes_after_chunk = network_.total_bytes();
  // Two pages (+ size probe) — far less than the full 256 KiB value.
  EXPECT_LT(bytes_after_chunk, 3 * StateKeyValue::kStatePageBytes);
  EXPECT_EQ(kv->data()[10 * StateKeyValue::kStatePageBytes], 0x11);

  // Re-pulling the same chunk is free (pages resident).
  ASSERT_TRUE(kv->PullChunk(10 * StateKeyValue::kStatePageBytes, StateKeyValue::kStatePageBytes)
                  .ok());
  EXPECT_EQ(network_.total_bytes(), bytes_after_chunk);
}

TEST_F(StateTest, PullAfterInvalidateRefetches) {
  SeedGlobal("k", StateKeyValue::kStatePageBytes, 0x22);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  store_.Set("k", Bytes(StateKeyValue::kStatePageBytes, 0x33));
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x22);  // cached: pages resident, no refetch
  kv->InvalidateReplica();
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->data()[0], 0x33);
}

TEST_F(StateTest, PushChunkWritesRange) {
  SeedGlobal("k", 8192, 0x00);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  std::memset(kv->data() + 4096, 0xEE, 100);
  ASSERT_TRUE(kv->PushChunk(4096, 100).ok());
  auto global = store_.Get("k").value();
  EXPECT_EQ(global[4095], 0x00);
  EXPECT_EQ(global[4096], 0xEE);
  EXPECT_EQ(global[4195], 0xEE);
  EXPECT_EQ(global[4196], 0x00);
}

TEST_F(StateTest, PartialPagePushDoesNotMarkPagePresent) {
  // Regression: pushing [0, 100) used to mark all of page 0 present, so a
  // later pull skipped fetching bytes the replica never held and read zeros.
  SeedGlobal("k", 2 * StateKeyValue::kStatePageBytes, 0xAA);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(2 * StateKeyValue::kStatePageBytes).ok());
  std::memset(kv->data(), 0xBB, 100);
  ASSERT_TRUE(kv->PushChunk(0, 100).ok());
  EXPECT_EQ(kv->resident_pages(), 0u);  // page 0 only partially covered
  ASSERT_TRUE(kv->PullChunk(0, StateKeyValue::kStatePageBytes).ok());
  EXPECT_EQ(kv->data()[0], 0xBB);    // the pushed bytes round-trip via the global tier
  EXPECT_EQ(kv->data()[200], 0xAA);  // bytes the replica never held are fetched, not zeros
}

TEST_F(StateTest, FullyCoveredPagesMarkedPresentByPush) {
  SeedGlobal("k", 3 * StateKeyValue::kStatePageBytes, 0x00);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(3 * StateKeyValue::kStatePageBytes).ok());
  // [0, page+100): page 0 fully covered, page 1 partially.
  ASSERT_TRUE(kv->PushChunk(0, StateKeyValue::kStatePageBytes + 100).ok());
  EXPECT_EQ(kv->resident_pages(), 1u);
}

TEST_F(StateTest, PushTailPageOfValueCountsAsCovered) {
  // A value ending mid-page: pushing through the end covers the tail page.
  SeedGlobal("k", StateKeyValue::kStatePageBytes + 100, 0x00);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  kv->InvalidateReplica();
  ASSERT_TRUE(kv->PushChunk(StateKeyValue::kStatePageBytes, 100).ok());
  EXPECT_EQ(kv->resident_pages(), 1u);
}

TEST_F(StateTest, DeltaPushShipsOnlyDirtyRuns) {
  const size_t size = 16 * StateKeyValue::kStatePageBytes;
  SeedGlobal("k", size, 0x00);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());

  // Two disjoint dirty runs via the write API.
  uint8_t* first = kv->WritableData(StateKeyValue::kStatePageBytes, 10);
  ASSERT_NE(first, nullptr);
  std::memset(first, 0x11, 10);
  uint8_t* second = kv->WritableData(5 * StateKeyValue::kStatePageBytes,
                                     2 * StateKeyValue::kStatePageBytes);
  ASSERT_NE(second, nullptr);
  std::memset(second, 0x22, 2 * StateKeyValue::kStatePageBytes);

  network_.ResetStats();
  ASSERT_TRUE(kv->Push().ok());
  // Three dirty pages shipped in ONE round trip — not the 64 KiB value, not
  // one RPC per run.
  EXPECT_LT(network_.total_bytes(), 4 * StateKeyValue::kStatePageBytes);
  EXPECT_EQ(network_.StatsFor("host-0").tx_messages, 1u);

  auto global = store_.Get("k").value();
  EXPECT_EQ(global[StateKeyValue::kStatePageBytes], 0x11);
  EXPECT_EQ(global[5 * StateKeyValue::kStatePageBytes], 0x22);
  EXPECT_EQ(global[7 * StateKeyValue::kStatePageBytes - 1], 0x22);
  EXPECT_EQ(global[0], 0x00);
}

TEST_F(StateTest, DeltaPushClearsDirtyAfterSuccess) {
  SeedGlobal("k", 8 * StateKeyValue::kStatePageBytes, 0x00);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  std::memset(kv->WritableData(0, 100), 0x33, 100);
  ASSERT_TRUE(kv->Push().ok());
  // Nothing dirtied since: a second push moves no bytes at all.
  network_.ResetStats();
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(network_.total_bytes(), 0u);
}

TEST_F(StateTest, SparseTrackedWriteDoesNotClobberGlobalNeighbours) {
  // Delta pushes ship whole pages, so WritableData on a never-pulled page
  // must fill it from the global tier first (write-allocate) — otherwise the
  // push would overwrite live global bytes with local zeros.
  SeedGlobal("k", 2 * StateKeyValue::kStatePageBytes, 0xAA);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(2 * StateKeyValue::kStatePageBytes).ok());
  uint8_t* dst = kv->WritableData(0, 10);
  ASSERT_NE(dst, nullptr);
  std::memset(dst, 0xBB, 10);
  ASSERT_TRUE(kv->Push().ok());
  auto global = store_.Get("k").value();
  EXPECT_EQ(global[0], 0xBB);
  EXPECT_EQ(global[9], 0xBB);
  // Bytes of page 0 the writer did not touch keep their global value.
  EXPECT_EQ(global[10], 0xAA);
  EXPECT_EQ(global[StateKeyValue::kStatePageBytes - 1], 0xAA);
}

TEST_F(StateTest, WritableDataOnMissingGlobalValueStillWorks) {
  // Brand-new value: nothing in the global tier to fill from; the pull
  // failure is tolerated and the push creates the value.
  auto kv = tier_.Lookup("fresh");
  ASSERT_TRUE(kv->EnsureCapacity(100).ok());
  uint8_t* dst = kv->WritableData(0, 10);
  ASSERT_NE(dst, nullptr);
  std::memset(dst, 0xCC, 10);
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(store_.Get("fresh").value()[0], 0xCC);
}

TEST_F(StateTest, UntrackedWritersFallBackToFullPush) {
  // Legacy writers bypass the write API entirely; with no dirty information
  // ever recorded, Push must conservatively ship the whole value.
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(2 * StateKeyValue::kStatePageBytes).ok());
  std::memset(kv->data(), 0x44, 2 * StateKeyValue::kStatePageBytes);
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(store_.Get("k").value(),
            Bytes(2 * StateKeyValue::kStatePageBytes, 0x44));
}

TEST_F(StateTest, PushFullShipsWholeValueDespiteTracking) {
  SeedGlobal("k", 4 * StateKeyValue::kStatePageBytes, 0x00);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  std::memset(kv->WritableData(0, 10), 0x55, 10);
  // Out-of-band (untracked) write on another page.
  kv->data()[3 * StateKeyValue::kStatePageBytes] = 0x66;
  ASSERT_TRUE(kv->PushFull().ok());
  auto global = store_.Get("k").value();
  EXPECT_EQ(global[0], 0x55);
  EXPECT_EQ(global[3 * StateKeyValue::kStatePageBytes], 0x66);
  // The full push superseded the pending delta: nothing left to push.
  network_.ResetStats();
  ASSERT_TRUE(kv->Push().ok());
  EXPECT_EQ(network_.total_bytes(), 0u);
}

TEST_F(StateTest, OutOfRangeChunksRejected) {
  SeedGlobal("k", 100, 0x01);
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->Pull().ok());
  EXPECT_EQ(kv->PullChunk(90, 20).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(kv->PushChunk(90, 20).code(), StatusCode::kOutOfRange);
}

TEST_F(StateTest, PushBeforeAllocationFails) {
  auto kv = tier_.Lookup("k");
  EXPECT_EQ(kv->Push().code(), StatusCode::kFailedPrecondition);
}

TEST_F(StateTest, CapacityIsFixedByFirstAllocation) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(4096).ok());
  EXPECT_TRUE(kv->EnsureCapacity(2000).ok());  // shrink request is fine
  EXPECT_EQ(kv->EnsureCapacity(1 << 20).code(), StatusCode::kResourceExhausted);
}

TEST_F(StateTest, AppendBypassesReplica) {
  auto kv = tier_.Lookup("events");
  ASSERT_TRUE(kv->Append(Bytes{1, 2}).ok());
  ASSERT_TRUE(kv->Append(Bytes{3}).ok());
  EXPECT_EQ(kv->ReadAppended().value(), (Bytes{1, 2, 3}));
}

TEST_F(StateTest, GlobalLocksSerialiseAcrossTiers) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->LockGlobalWrite().ok());
  // Another host cannot take the lock now.
  KvsClient other(&network_, "host-1");
  EXPECT_FALSE(other.TryLockWrite("k").value());
  ASSERT_TRUE(kv->UnlockGlobalWrite().ok());
  EXPECT_TRUE(other.TryLockWrite("k").value());
  ASSERT_TRUE(other.UnlockWrite("k").ok());
}

TEST_F(StateTest, LocalLocksAllowSharedReaders) {
  auto kv = tier_.Lookup("k");
  ASSERT_TRUE(kv->EnsureCapacity(16).ok());
  kv->LockRead();
  kv->LockRead();  // second reader does not deadlock
  kv->UnlockRead();
  kv->UnlockRead();
  kv->LockWrite();
  kv->UnlockWrite();
}

TEST_F(StateTest, TierAccounting) {
  SeedGlobal("a", 1000, 1);
  SeedGlobal("b", 2000, 2);
  ASSERT_TRUE(tier_.Lookup("a")->Pull().ok());
  ASSERT_TRUE(tier_.Lookup("b")->Pull().ok());
  EXPECT_EQ(tier_.key_count(), 2u);
  EXPECT_EQ(tier_.resident_bytes(), 3000u);
  tier_.Clear();
  EXPECT_EQ(tier_.key_count(), 0u);
}

}  // namespace
}  // namespace faasm
