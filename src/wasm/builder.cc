#include "wasm/builder.h"

#include <cassert>

#include "wasm/encoder.h"
#include "wasm/leb128.h"

namespace faasm::wasm {

// --- FunctionBuilder ----------------------------------------------------------

uint32_t FunctionBuilder::AddLocal(ValType type) {
  extra_locals_.push_back(type);
  return param_count_ + static_cast<uint32_t>(extra_locals_.size()) - 1;
}

void FunctionBuilder::I32Const(int32_t v) {
  EmitByte(Op::kI32Const);
  WriteVarS32(body_, v);
}
void FunctionBuilder::I64Const(int64_t v) {
  EmitByte(Op::kI64Const);
  WriteVarS64(body_, v);
}
void FunctionBuilder::F32Const(float v) {
  EmitByte(Op::kF32Const);
  AppendScalar(body_, v);
}
void FunctionBuilder::F64Const(double v) {
  EmitByte(Op::kF64Const);
  AppendScalar(body_, v);
}
void FunctionBuilder::LocalGet(uint32_t index) {
  EmitByte(Op::kLocalGet);
  WriteVarU32(body_, index);
}
void FunctionBuilder::LocalSet(uint32_t index) {
  EmitByte(Op::kLocalSet);
  WriteVarU32(body_, index);
}
void FunctionBuilder::LocalTee(uint32_t index) {
  EmitByte(Op::kLocalTee);
  WriteVarU32(body_, index);
}
void FunctionBuilder::GlobalGet(uint32_t index) {
  EmitByte(Op::kGlobalGet);
  WriteVarU32(body_, index);
}
void FunctionBuilder::GlobalSet(uint32_t index) {
  EmitByte(Op::kGlobalSet);
  WriteVarU32(body_, index);
}

void FunctionBuilder::Emit(Op op) { EmitByte(op); }

namespace {
uint32_t NaturalAlignLog2(Op op) {
  switch (op) {
    case Op::kI32Load8S:
    case Op::kI32Load8U:
    case Op::kI64Load8S:
    case Op::kI64Load8U:
    case Op::kI32Store8:
    case Op::kI64Store8:
      return 0;
    case Op::kI32Load16S:
    case Op::kI32Load16U:
    case Op::kI64Load16S:
    case Op::kI64Load16U:
    case Op::kI32Store16:
    case Op::kI64Store16:
      return 1;
    case Op::kI64Load:
    case Op::kF64Load:
    case Op::kI64Store:
    case Op::kF64Store:
      return 3;
    default:
      return 2;
  }
}
}  // namespace

void FunctionBuilder::Load(Op op, uint32_t offset) {
  EmitByte(op);
  WriteVarU32(body_, NaturalAlignLog2(op));
  WriteVarU32(body_, offset);
}
void FunctionBuilder::Store(Op op, uint32_t offset) {
  EmitByte(op);
  WriteVarU32(body_, NaturalAlignLog2(op));
  WriteVarU32(body_, offset);
}
void FunctionBuilder::MemorySize() {
  EmitByte(Op::kMemorySize);
  body_.push_back(0);
}
void FunctionBuilder::MemoryGrow() {
  EmitByte(Op::kMemoryGrow);
  body_.push_back(0);
}

namespace {
void EmitBlockType(Bytes& body, BlockType type) {
  body.push_back(type.has_result ? static_cast<uint8_t>(type.result) : kBlockTypeEmpty);
}
}  // namespace

void FunctionBuilder::Block(BlockType type) {
  EmitByte(Op::kBlock);
  EmitBlockType(body_, type);
  ++open_frames_;
}
void FunctionBuilder::Loop(BlockType type) {
  EmitByte(Op::kLoop);
  EmitBlockType(body_, type);
  ++open_frames_;
}
void FunctionBuilder::If(BlockType type) {
  EmitByte(Op::kIf);
  EmitBlockType(body_, type);
  ++open_frames_;
}
void FunctionBuilder::Else() { EmitByte(Op::kElse); }
void FunctionBuilder::End() {
  EmitByte(Op::kEnd);
  --open_frames_;
}
void FunctionBuilder::Br(uint32_t depth) {
  EmitByte(Op::kBr);
  WriteVarU32(body_, depth);
}
void FunctionBuilder::BrIf(uint32_t depth) {
  EmitByte(Op::kBrIf);
  WriteVarU32(body_, depth);
}
void FunctionBuilder::BrTable(const std::vector<uint32_t>& depths, uint32_t default_depth) {
  EmitByte(Op::kBrTable);
  WriteVarU32(body_, static_cast<uint32_t>(depths.size()));
  for (uint32_t d : depths) {
    WriteVarU32(body_, d);
  }
  WriteVarU32(body_, default_depth);
}
void FunctionBuilder::Return() { EmitByte(Op::kReturn); }
void FunctionBuilder::Unreachable() { EmitByte(Op::kUnreachable); }
void FunctionBuilder::Drop() { EmitByte(Op::kDrop); }
void FunctionBuilder::Select() { EmitByte(Op::kSelect); }
void FunctionBuilder::Call(uint32_t func_index) {
  EmitByte(Op::kCall);
  WriteVarU32(body_, func_index);
}
void FunctionBuilder::CallIndirect(uint32_t type_index) {
  EmitByte(Op::kCallIndirect);
  WriteVarU32(body_, type_index);
  body_.push_back(0);  // reserved table index
}

void FunctionBuilder::ForLocalLimit(uint32_t i_local, int32_t start, uint32_t limit_local,
                                    const std::function<void()>& body, int32_t step) {
  I32Const(start);
  LocalSet(i_local);
  Block();
  Loop();
  LocalGet(i_local);
  LocalGet(limit_local);
  Emit(Op::kI32GeS);
  BrIf(1);  // exit the block when i >= limit
  body();
  LocalGet(i_local);
  I32Const(step);
  Emit(Op::kI32Add);
  LocalSet(i_local);
  Br(0);  // continue the loop
  End();
  End();
}

void FunctionBuilder::ForConstLimit(uint32_t i_local, int32_t start, int32_t limit,
                                    const std::function<void()>& body, int32_t step) {
  I32Const(start);
  LocalSet(i_local);
  Block();
  Loop();
  LocalGet(i_local);
  I32Const(limit);
  Emit(Op::kI32GeS);
  BrIf(1);
  body();
  LocalGet(i_local);
  I32Const(step);
  Emit(Op::kI32Add);
  LocalSet(i_local);
  Br(0);
  End();
  End();
}

void FunctionBuilder::While(const std::function<void()>& cond, const std::function<void()>& body) {
  Block();
  Loop();
  cond();
  Emit(Op::kI32Eqz);
  BrIf(1);  // exit when condition is false
  body();
  Br(0);
  End();
  End();
}

// --- ModuleBuilder -----------------------------------------------------------

ModuleBuilder::ModuleBuilder() = default;

uint32_t ModuleBuilder::AddType(const std::vector<ValType>& params,
                                const std::vector<ValType>& results) {
  FuncType type{params, results};
  for (uint32_t i = 0; i < module_.types.size(); ++i) {
    if (module_.types[i] == type) {
      return i;
    }
  }
  module_.types.push_back(std::move(type));
  return static_cast<uint32_t>(module_.types.size() - 1);
}

uint32_t ModuleBuilder::ImportFunction(const std::string& module, const std::string& name,
                                       const std::vector<ValType>& params,
                                       const std::vector<ValType>& results) {
  assert(functions_.empty() && "imports must be declared before defined functions");
  Import import;
  import.module = module;
  import.name = name;
  import.kind = ExternalKind::kFunction;
  import.type_index = AddType(params, results);
  module_.imports.push_back(std::move(import));
  return static_cast<uint32_t>(module_.imports.size() - 1);
}

FunctionBuilder& ModuleBuilder::AddFunction(const std::string& export_name,
                                            const std::vector<ValType>& params,
                                            const std::vector<ValType>& results) {
  const uint32_t type_index = AddType(params, results);
  const uint32_t func_index =
      static_cast<uint32_t>(module_.imports.size() + functions_.size());
  module_.function_types.push_back(type_index);
  functions_.push_back(std::unique_ptr<FunctionBuilder>(
      new FunctionBuilder(func_index, static_cast<uint32_t>(params.size()), params)));
  if (!export_name.empty()) {
    ExportFunction(export_name, func_index);
  }
  return *functions_.back();
}

void ModuleBuilder::AddMemory(uint32_t min_pages, uint32_t max_pages) {
  Limits limits;
  limits.min = min_pages;
  limits.has_max = true;
  limits.max = max_pages;
  module_.memory = limits;
}

void ModuleBuilder::ExportMemory(const std::string& name) {
  module_.exports.push_back(Export{name, ExternalKind::kMemory, 0});
}

uint32_t ModuleBuilder::AddGlobal(ValType type, bool mutable_, Value init) {
  module_.globals.push_back(GlobalDef{type, mutable_, init});
  return static_cast<uint32_t>(module_.globals.size() - 1);
}

void ModuleBuilder::AddData(uint32_t offset, Bytes bytes) {
  module_.data.push_back(DataSegment{0, offset, std::move(bytes)});
}

void ModuleBuilder::AddTable(uint32_t min_entries) {
  Limits limits;
  limits.min = min_entries;
  limits.has_max = true;
  limits.max = min_entries;
  module_.table = limits;
}

void ModuleBuilder::AddElementSegment(uint32_t offset,
                                      const std::vector<uint32_t>& func_indices) {
  module_.elements.push_back(ElementSegment{0, offset, func_indices});
}

void ModuleBuilder::SetStart(uint32_t func_index) { module_.start_function = func_index; }

void ModuleBuilder::ExportFunction(const std::string& name, uint32_t func_index) {
  module_.exports.push_back(Export{name, ExternalKind::kFunction, func_index});
}

Module ModuleBuilder::BuildModule() {
  Module out = module_;
  out.bodies.clear();
  for (const auto& fn : functions_) {
    FunctionBody body;
    // Compress locals into (count, type) runs.
    size_t i = 0;
    while (i < fn->extra_locals_.size()) {
      size_t j = i;
      while (j < fn->extra_locals_.size() && fn->extra_locals_[j] == fn->extra_locals_[i]) {
        ++j;
      }
      body.locals.emplace_back(static_cast<uint32_t>(j - i), fn->extra_locals_[i]);
      i = j;
    }
    body.code = fn->body_;
    // Close any control frames (including the function frame) the author
    // left open; keeps BuildModule idempotent by not touching fn->body_.
    for (int d = 0; d < fn->open_frames_; ++d) {
      body.code.push_back(static_cast<uint8_t>(Op::kEnd));
    }
    out.bodies.push_back(std::move(body));
  }
  return out;
}

Bytes ModuleBuilder::Build() { return EncodeModule(BuildModule()); }

}  // namespace faasm::wasm
