// Cluster-level lock-in of the sharded global tier (§4.3): a replica whose
// key is mastered on its own host completes Push/Pull with ZERO network
// bytes, while a replica on any other host pays the cross-host round trips;
// the centralised ablation tier pays from every host.
#include <gtest/gtest.h>

#include "runtime/cluster.h"
#include "state/ddo.h"

namespace faasm {
namespace {

constexpr size_t kValueBytes = 64 * 1024;

// Index of the cluster host mastering `key`'s shard (sharded tier only).
size_t MasterIndex(FaasmCluster& cluster, const std::string& key) {
  const std::string master = ShardMap::HostForEndpoint(cluster.shard_map().MasterFor(key));
  for (size_t i = 0; i < cluster.host_count(); ++i) {
    if (cluster.host(i).name() == master) {
      return i;
    }
  }
  ADD_FAILURE() << "key '" << key << "' mastered by no host (" << master << ")";
  return 0;
}

TEST(ShardedTierTest, MasterLocalPushPullMovesZeroNetworkBytes) {
  ClusterConfig config;
  config.hosts = 4;  // kSharded is the default tier
  FaasmCluster cluster(config);

  const std::string key = "colocated";
  cluster.kvs().Set(key, Bytes(kValueBytes, 7));
  const size_t master = MasterIndex(cluster, key);
  const size_t other = (master + 1) % cluster.host_count();

  cluster.Run([&](Frontend&) {
    // Replica on the key's master host: pull, dirty a page, delta-push,
    // re-pull — all against the in-process shard.
    auto kv = cluster.host(master).tier().Lookup(key);
    EXPECT_TRUE(kv->master_local());
    EXPECT_TRUE(cluster.host(master).tier().MasterLocal(key));
    const uint64_t before = cluster.network_bytes();
    ASSERT_TRUE(kv->Pull().ok());
    uint8_t* page = kv->WritableData(0, StateKeyValue::kStatePageBytes);
    ASSERT_NE(page, nullptr);
    page[0] = 42;
    kv->MarkDirty(0, StateKeyValue::kStatePageBytes);
    ASSERT_TRUE(kv->Push().ok());
    kv->InvalidateReplica();
    ASSERT_TRUE(kv->Pull().ok());
    EXPECT_EQ(cluster.network_bytes(), before)
        << "master-local push/pull must move zero network bytes";

    // The same sequence from a non-master host crosses the network.
    auto remote = cluster.host(other).tier().Lookup(key);
    EXPECT_FALSE(remote->master_local());
    ASSERT_TRUE(remote->Pull().ok());
    EXPECT_GT(cluster.network_bytes(), before + kValueBytes)
        << "a remote replica's pull must pay the transfer";
    // And the master's write is visible through the remote pull.
    EXPECT_EQ(remote->data()[0], 42);
  });
}

TEST(ShardedTierTest, CentralTierPaysFromEveryHost) {
  ClusterConfig config;
  config.hosts = 4;
  config.state_tier = StateTier::kCentral;
  FaasmCluster cluster(config);

  const std::string key = "colocated";
  cluster.kvs().Set(key, Bytes(kValueBytes, 7));
  cluster.Run([&](Frontend&) {
    for (size_t i = 0; i < cluster.host_count(); ++i) {
      const uint64_t before = cluster.network_bytes();
      auto kv = cluster.host(i).tier().Lookup(key);
      EXPECT_FALSE(kv->master_local());
      ASSERT_TRUE(kv->Pull().ok());
      EXPECT_GT(cluster.network_bytes(), before + kValueBytes) << "host " << i;
    }
  });
}

TEST(ShardedTierTest, GlobalLocksSerialiseAcrossHostsUnderSharding) {
  ClusterConfig config;
  config.hosts = 4;
  FaasmCluster cluster(config);
  const std::string key = "locked";
  cluster.kvs().Set(key, Bytes(8, 0));
  const size_t master = MasterIndex(cluster, key);
  const size_t other = (master + 2) % cluster.host_count();

  cluster.Run([&](Frontend&) {
    auto on_master = cluster.host(master).tier().Lookup(key);
    auto on_other = cluster.host(other).tier().Lookup(key);
    ASSERT_TRUE(on_master->LockGlobalWrite().ok());
    // The non-master host contends through the network against the same
    // master shard — it must NOT acquire.
    EXPECT_FALSE(cluster.host(other).kvs().TryLockWrite(key).value());
    ASSERT_TRUE(on_master->UnlockGlobalWrite().ok());
    ASSERT_TRUE(on_other->LockGlobalWrite().ok());
    ASSERT_TRUE(on_other->UnlockGlobalWrite().ok());
  });
}

TEST(ShardedTierTest, SeedingThroughRouterIsVisibleToFunctions) {
  // cluster.kvs() seeds through the router: a value seeded before any
  // traffic must be readable by a function wherever it runs.
  ClusterConfig config;
  config.hosts = 4;
  FaasmCluster cluster(config);
  cluster.kvs().Set("seeded", Bytes{1, 2, 3, 4});
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("reader",
                                  [](InvocationContext& ctx) {
                                    auto kv = ctx.state().Lookup("seeded");
                                    if (!kv->Pull().ok() || kv->size() != 4) {
                                      return 1;
                                    }
                                    return kv->data()[3] == 4 ? 0 : 2;
                                  })
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(frontend.Invoke("reader", {}).value(), 0);
    }
  });
}

}  // namespace
}  // namespace faasm
