// InProcNetwork: the cluster interconnect. All cross-host traffic (KVS
// access, state push/pull, scheduler work sharing, chained calls) flows
// through this layer, which (i) counts every byte — producing the
// "network transfers" series of Figs. 6b and 8b — and (ii) charges
// latency + bandwidth delay to the caller's clock, which under the
// virtual-time executor reproduces the paper's 1 Gbps testbed.
//
// RPC handlers execute synchronously on the caller's thread; services
// (KVS, file server) are internally thread safe.
#ifndef FAASM_NET_NETWORK_H_
#define FAASM_NET_NETWORK_H_

#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/status.h"

namespace faasm {

struct NetworkConfig {
  // One-way base latency per message.
  TimeNs base_latency_ns = 100 * kMicrosecond;
  // Link bandwidth; 1 Gbps = 125e6 B/s (the paper's testbed interconnect).
  double bandwidth_bytes_per_sec = 125e6;
  // Fixed per-message envelope (Ethernet + IP + TCP headers and the RPC
  // frame) charged on every request, response and send IN ADDITION to the
  // payload. This is what makes batching visible in the byte accounting: a
  // kBatch RPC pays the envelope once for N ops where N single ops pay it N
  // times. 64 B approximates the testbed's minimum header cost.
  size_t per_message_overhead_bytes = 64;
  // When false, Call/Send never sleep (pure byte accounting; real-time mode).
  bool charge_latency = true;
};

struct EndpointStats {
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
  uint64_t tx_messages = 0;
  uint64_t rx_messages = 0;
};

class InProcNetwork {
 public:
  using RpcHandler = std::function<Bytes(const Bytes& request)>;

  explicit InProcNetwork(Clock* clock, NetworkConfig config = {});

  // --- Endpoints -------------------------------------------------------------
  void RegisterEndpoint(const std::string& name, RpcHandler handler);
  void UnregisterEndpoint(const std::string& name);
  // True while `name` is registered. A crashed host's endpoints unregister
  // atomically with the crash, so this doubles as the cheap reachability
  // probe recovery flows use to tell "dead" from "slow" without an RPC.
  bool HasEndpoint(const std::string& name) const;

  // --- Synchronous RPC -------------------------------------------------------
  // Sends `request` from `from` to `to`, runs the handler, returns the
  // response. Charges round-trip latency and transfer time to the caller.
  Result<Bytes> Call(const std::string& from, const std::string& to, const Bytes& request);

  // --- Asynchronous messages (scheduler work sharing, chained calls) ---------
  // Fails with kUnavailable when `to` is not a registered endpoint, so work
  // shared towards a host that already left the cluster bounces to the
  // sender instead of rotting in a dead mailbox.
  Status Send(const std::string& from, const std::string& to, Bytes message);
  std::optional<Bytes> Poll(const std::string& name);
  // Messages queued for `name` but not yet polled (drain barrier: a host may
  // only retire once its mailbox is empty AND its in-flight calls finished).
  size_t PendingCount(const std::string& name) const;

  // --- Accounting -------------------------------------------------------------
  uint64_t total_bytes() const;
  EndpointStats StatsFor(const std::string& name) const;
  void ResetStats();

  Clock& clock() { return *clock_; }
  const NetworkConfig& config() const { return config_; }

 private:
  void ChargeTransfer(size_t bytes);
  void AccountLocked(const std::string& from, const std::string& to, size_t bytes);

  Clock* clock_;
  NetworkConfig config_;

  mutable std::mutex mutex_;
  std::map<std::string, RpcHandler> endpoints_;
  std::map<std::string, std::deque<Bytes>> mailboxes_;
  std::map<std::string, EndpointStats> stats_;
  uint64_t total_bytes_ = 0;
};

}  // namespace faasm

#endif  // FAASM_NET_NETWORK_H_
