// The global-tier routing layer: per-key mastership over host-colocated KVS
// shards (§4.3).
//
// Instead of one central KVS endpoint, every FAASM host runs a KvsServer
// over its own KvStore shard, registered on the endpoint "kvs:<host>"
// (ShardMap::EndpointForHost). A ShardMap assigns each state key a *master
// shard* by consistent hashing:
//
//   - the shard endpoints are placed on a 64-bit hash ring (kVirtualNodes
//     points each, so load spreads evenly), and a key is mastered by the
//     first shard clockwise from its hash;
//   - adding or removing a host therefore remaps only the ~1/N keys whose
//     ring arc changed — every other key keeps its master, so warm replicas
//     and locks stay put under cluster resizing;
//   - mastership is a pure function of (key, shard set): every host resolves
//     the same master with zero coordination traffic.
//
// KvsClient resolves the master per key through an injected ShardMap. Ops
// whose master is the calling host's own shard take the local fast path —
// direct in-process KvStore calls, no InProcNetwork round trip — so a
// replica co-located with its key's master syncs with ZERO network bytes
// (the paper's co-location win). All other ops are sent to the owning
// endpoint. Multi-key users (scheduler warm sets, the proto: snapshot
// cache, distributed locks) route each key independently.
//
// ShardedKvs is the direct, unaccounted cluster-wide view of the same
// shards (dataset seeding and test inspection): it routes through the same
// ShardMap but always calls the owning KvStore in process. A ShardedKvs
// wrapping a single KvStore (no map) models the centralised baseline tier.
#ifndef FAASM_KVS_ROUTER_H_
#define FAASM_KVS_ROUTER_H_

#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <vector>

#include "kvs/kv_store.h"

namespace faasm {

// Key -> master-shard-endpoint assignment by consistent hashing. Thread
// safe; injectable into KvsClient so tests can pin mastership.
class ShardMap {
 public:
  // Ring points per shard. Enough that an 8-host cluster balances within a
  // few percent while keeping AddShard cheap.
  static constexpr int kVirtualNodes = 64;

  ShardMap() = default;
  explicit ShardMap(const std::vector<std::string>& endpoints);

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  // Canonical endpoint name of the shard hosted by `host` ("kvs:<host>").
  static std::string EndpointForHost(const std::string& host);
  // Inverse of EndpointForHost; empty for endpoints that are not
  // host-colocated shards (e.g. the centralised "kvs" endpoint).
  static std::string HostForEndpoint(const std::string& endpoint);

  void AddShard(const std::string& endpoint);
  void RemoveShard(const std::string& endpoint);

  // Master shard endpoint for `key`; empty when the map has no shards.
  std::string MasterFor(const std::string& key) const;

  std::vector<std::string> shards() const;
  size_t shard_count() const;

 private:
  // Read-mostly: MasterFor sits on every KVS op's hot path, while the ring
  // only mutates at cluster (re)configuration — readers share the lock.
  mutable std::shared_mutex mutex_;
  std::map<uint64_t, std::string> ring_;  // hash point -> endpoint
  std::set<std::string> endpoints_;
};

// Direct in-process view over every shard of the global tier, routed by the
// same ShardMap the cluster uses. Bypasses the network on purpose: dataset
// seeding and test inspection are not experiment traffic. With no map
// attached it degenerates to a view over one centralised store.
class ShardedKvs {
 public:
  ShardedKvs() = default;
  // Centralised view: every key lives in `single` (baseline clusters).
  explicit ShardedKvs(KvStore* single) : single_(single) {}

  void Attach(const ShardMap* map) { map_ = map; }
  void AddStore(const std::string& endpoint, KvStore* store) { stores_[endpoint] = store; }

  // Owning store for `key` (never null once configured).
  KvStore* StoreFor(const std::string& key) const;

  // --- KvStore API, routed per key --------------------------------------------
  void Set(const std::string& key, Bytes value) { StoreFor(key)->Set(key, std::move(value)); }
  Result<Bytes> Get(const std::string& key) const { return StoreFor(key)->Get(key); }
  bool Exists(const std::string& key) const { return StoreFor(key)->Exists(key); }
  Result<size_t> Size(const std::string& key) const { return StoreFor(key)->Size(key); }
  Status Delete(const std::string& key) { return StoreFor(key)->Delete(key); }
  Result<Bytes> GetRange(const std::string& key, size_t offset, size_t len) const {
    return StoreFor(key)->GetRange(key, offset, len);
  }
  Status SetRange(const std::string& key, size_t offset, const Bytes& bytes) {
    return StoreFor(key)->SetRange(key, offset, bytes);
  }
  Status SetRanges(const std::string& key, const std::vector<ValueRange>& ranges) {
    return StoreFor(key)->SetRanges(key, ranges);
  }
  size_t Append(const std::string& key, const Bytes& bytes) {
    return StoreFor(key)->Append(key, bytes);
  }
  bool SetAdd(const std::string& key, const std::string& member) {
    return StoreFor(key)->SetAdd(key, member);
  }
  bool SetRemove(const std::string& key, const std::string& member) {
    return StoreFor(key)->SetRemove(key, member);
  }
  std::vector<std::string> SetMembers(const std::string& key) const {
    return StoreFor(key)->SetMembers(key);
  }

  // --- Cluster-wide introspection (sums over shards) ---------------------------
  size_t key_count() const;
  size_t total_bytes() const;

 private:
  const ShardMap* map_ = nullptr;
  KvStore* single_ = nullptr;
  std::map<std::string, KvStore*> stores_;  // endpoint -> shard
};

}  // namespace faasm

#endif  // FAASM_KVS_ROUTER_H_
