// The global-tier routing layer: per-key mastership over host-colocated KVS
// shards (§4.3).
//
// Instead of one central KVS endpoint, every FAASM host runs a KvsServer
// over its own KvStore shard, registered on the endpoint "kvs:<host>"
// (ShardMap::EndpointForHost). A ShardMap assigns each state key a *master
// shard* by consistent hashing:
//
//   - the shard endpoints are placed on a 64-bit hash ring (kVirtualNodes
//     points each, so load spreads evenly), and a key is mastered by the
//     first shard clockwise from its hash;
//   - adding or removing a host therefore remaps only the ~1/N keys whose
//     ring arc changed — every other key keeps its master, so warm replicas
//     and locks stay put under cluster resizing;
//   - mastership is a pure function of (key, shard set): every host resolves
//     the same master with zero coordination traffic.
//
// MEMBERSHIP IS DYNAMIC: AddShard/RemoveShard may be called while the
// cluster serves traffic. Every membership change bumps the map's EPOCH, and
// keys whose master moved are handed over by the migration subsystem
// (kvs/migration.h): the source shard freezes + streams each moving key to
// its new master, the epoch flips, and in-flight ops that raced the change
// get a kWrongMaster redirect from the stale shard and retry against the new
// epoch's route (kvs/kvs_client.h). ShardAssignment captures one epoch's
// ring as an immutable snapshot; DiffKeys computes the exact old→new key
// moves from the ring arcs that changed ownership (not by rehashing every
// key).
//
// KvsClient resolves the master per key through an injected ShardMap. Ops
// whose master is the calling host's own shard take the local fast path —
// direct in-process KvStore calls, no InProcNetwork round trip — so a
// replica co-located with its key's master syncs with ZERO network bytes
// (the paper's co-location win). All other ops are sent to the owning
// endpoint. Multi-key users (scheduler warm sets, the proto: snapshot
// cache, distributed locks) route each key independently.
//
// ShardedKvs is the direct, unaccounted cluster-wide view of the same
// shards (dataset seeding and test inspection): it routes through the same
// ShardMap but always calls the owning KvStore in process. A ShardedKvs
// wrapping a single KvStore (no map) models the centralised baseline tier.
#ifndef FAASM_KVS_ROUTER_H_
#define FAASM_KVS_ROUTER_H_

#include <functional>
#include <map>
#include <set>
#include <shared_mutex>
#include <string>
#include <utility>
#include <vector>

#include "kvs/kv_store.h"

namespace faasm {

// Immutable snapshot of one epoch's key→master assignment: the consistent-
// hash ring over a fixed endpoint set. Cheap to copy around migration plans;
// a ShardMap's live assignment at any instant equals the ShardAssignment
// built from its endpoint set.
class ShardAssignment {
 public:
  ShardAssignment() = default;
  explicit ShardAssignment(const std::set<std::string>& endpoints, uint64_t epoch = 0);

  // Master shard endpoint for `key`; empty when there are no shards.
  std::string MasterFor(const std::string& key) const;

  // The assignment with `endpoint` added / removed (ring points are a pure
  // function of the endpoint set, so snapshots compose without the map).
  // Derived assignments are hypothetical — they carry no epoch (0).
  ShardAssignment With(const std::string& endpoint) const;
  ShardAssignment Without(const std::string& endpoint) const;

  const std::set<std::string>& endpoints() const { return endpoints_; }
  bool empty() const { return ring_.empty(); }
  // The map epoch this snapshot was taken at (ShardMap::Snapshot stamps it;
  // replica-read validity stamps installs with it so a copy installed from a
  // stale snapshot can never pass the current-epoch check).
  uint64_t epoch() const { return epoch_; }

 private:
  friend std::vector<struct KeyMove> DiffKeys(const ShardAssignment& before,
                                              const ShardAssignment& after,
                                              const std::vector<std::string>& keys);
  // Owner of hash point `h` in this ring (first point clockwise, wrapping).
  const std::string& OwnerOf(uint64_t h) const;

  std::map<uint64_t, std::string> ring_;  // hash point -> endpoint
  std::set<std::string> endpoints_;
  uint64_t epoch_ = 0;
};

// The R-1 backup endpoints for `primary`: the next distinct endpoints
// clockwise from it in sorted order (wrapping), primary excluded. Pure
// function of the endpoint set, so every host computes the same backups
// with zero coordination — the same property mastership itself has. Works
// when `primary` is absent from the set (mid-failover lookups). Lives with
// the routing layer because holder resolution (master OR backup) is a
// routing question: the replication substrate (kvs/replication.h) places
// copies with it and the client/scheduler resolve read-serving hosts with it.
std::vector<std::string> BackupsFor(const std::set<std::string>& endpoints,
                                    const std::string& primary, int factor);

// One key whose master changes between two assignments.
struct KeyMove {
  std::string key;
  std::string from;  // master endpoint before
  std::string to;    // master endpoint after
};

// The keys (among `keys`) whose master differs between `before` and `after`,
// with their old and new masters. Computed from the ring arcs whose owner
// changed — a key is examined against the merged arc table, not rehashed
// against both rings — so the result provably equals the brute-force per-key
// comparison (locked in by tests/kvs/router_epoch_test.cc).
std::vector<KeyMove> DiffKeys(const ShardAssignment& before, const ShardAssignment& after,
                              const std::vector<std::string>& keys);

// Key -> master-shard-endpoint assignment by consistent hashing. Thread
// safe; injectable into KvsClient so tests can pin mastership. Membership
// changes bump epoch() so observers can tell assignments apart.
class ShardMap {
 public:
  // Ring points per shard. Enough that an 8-host cluster balances within a
  // few percent while keeping AddShard cheap.
  static constexpr int kVirtualNodes = 64;

  ShardMap() = default;
  explicit ShardMap(const std::vector<std::string>& endpoints);

  ShardMap(const ShardMap&) = delete;
  ShardMap& operator=(const ShardMap&) = delete;

  // Canonical endpoint name of the shard hosted by `host` ("kvs:<host>").
  static std::string EndpointForHost(const std::string& host);
  // Inverse of EndpointForHost; empty for endpoints that are not
  // host-colocated shards (e.g. the centralised "kvs" endpoint).
  static std::string HostForEndpoint(const std::string& endpoint);

  // Membership changes. Each effective change (a shard actually added or
  // removed) bumps the epoch; duplicate adds / missing removes are no-ops.
  void AddShard(const std::string& endpoint);
  void RemoveShard(const std::string& endpoint);

  // Master shard endpoint for `key`; empty when the map has no shards.
  std::string MasterFor(const std::string& key) const;

  // The endpoints holding a copy of `key` under the current epoch: its
  // master first, then its replication_factor()-1 backups in BackupsFor
  // order. With factor 1 this is just {master}. Locality consumers (the
  // scheduler's read-mostly affinity widening, the client's replica-read
  // membership check) resolve serving hosts with this.
  std::vector<std::string> HoldersFor(const std::string& key) const;

  // The cluster's replication factor, used by HoldersFor. Set once at
  // cluster construction (default 1 = no backups).
  void set_replication_factor(int factor);
  int replication_factor() const;

  // Monotonic assignment version: starts at 0, +1 per effective membership
  // change. Routing is deterministic within an epoch.
  uint64_t epoch() const;

  // The current assignment as an immutable snapshot (migration planning).
  ShardAssignment Snapshot() const;

  std::vector<std::string> shards() const;
  size_t shard_count() const;

 private:
  // Read-mostly: MasterFor sits on every KVS op's hot path, while the ring
  // only mutates at cluster (re)configuration — readers share the lock.
  mutable std::shared_mutex mutex_;
  std::map<uint64_t, std::string> ring_;  // hash point -> endpoint
  std::set<std::string> endpoints_;
  uint64_t epoch_ = 0;
  int replication_factor_ = 1;
};

// Direct in-process view over every shard of the global tier, routed by the
// same ShardMap the cluster uses. Bypasses the network on purpose: dataset
// seeding and test inspection are not experiment traffic. With no map
// attached it degenerates to a view over one centralised store. Routing
// follows the map's CURRENT epoch, so after a migration the view finds each
// key on its new master.
class ShardedKvs {
 public:
  ShardedKvs() = default;
  // Centralised view: every key lives in `single` (baseline clusters).
  explicit ShardedKvs(KvStore* single) : single_(single) {}

  void Attach(const ShardMap* map) { map_ = map; }
  void AddStore(const std::string& endpoint, KvStore* store) { stores_[endpoint] = store; }

  // Observer of this view's successful mutations, fired with the key after
  // the store call returns. The replication layer wires this to its
  // in-process mirror (ReplicationManager::MirrorKey) so seeded data has
  // backups too. Mutations run under a KvStore::HookPause: the seeding
  // thread is typically not clock-registered, so the network forwarding
  // hook must not fire for these writes — the observer's in-process mirror
  // replaces it.
  using MutationObserver = std::function<void(const std::string&)>;
  void SetMutationObserver(MutationObserver observer) { observer_ = std::move(observer); }

  // Owning store for `key` (never null once configured).
  KvStore* StoreFor(const std::string& key) const;

  // --- KvStore API, routed per key --------------------------------------------
  Status Set(const std::string& key, Bytes value) {
    Status status = [&] {
      KvStore::HookPause pause;
      return StoreFor(key)->Set(key, std::move(value));
    }();
    Observed(key, status.ok());
    return status;
  }
  Result<Bytes> Get(const std::string& key) const { return StoreFor(key)->Get(key); }
  bool Exists(const std::string& key) const { return StoreFor(key)->Exists(key); }
  Result<size_t> Size(const std::string& key) const { return StoreFor(key)->Size(key); }
  Status Delete(const std::string& key) {
    Status status = [&] {
      KvStore::HookPause pause;
      return StoreFor(key)->Delete(key);
    }();
    Observed(key, status.ok());
    return status;
  }
  Result<Bytes> GetRange(const std::string& key, size_t offset, size_t len) const {
    return StoreFor(key)->GetRange(key, offset, len);
  }
  Status SetRange(const std::string& key, size_t offset, const Bytes& bytes) {
    Status status = [&] {
      KvStore::HookPause pause;
      return StoreFor(key)->SetRange(key, offset, bytes);
    }();
    Observed(key, status.ok());
    return status;
  }
  Status SetRanges(const std::string& key, const std::vector<ValueRange>& ranges) {
    Status status = [&] {
      KvStore::HookPause pause;
      return StoreFor(key)->SetRanges(key, ranges);
    }();
    Observed(key, status.ok());
    return status;
  }
  Result<size_t> Append(const std::string& key, const Bytes& bytes) {
    Result<size_t> length = [&] {
      KvStore::HookPause pause;
      return StoreFor(key)->Append(key, bytes);
    }();
    Observed(key, length.ok());
    return length;
  }
  Result<bool> SetAdd(const std::string& key, const std::string& member) {
    Result<bool> changed = [&] {
      KvStore::HookPause pause;
      return StoreFor(key)->SetAdd(key, member);
    }();
    Observed(key, changed.ok());
    return changed;
  }
  Result<bool> SetRemove(const std::string& key, const std::string& member) {
    Result<bool> changed = [&] {
      KvStore::HookPause pause;
      return StoreFor(key)->SetRemove(key, member);
    }();
    Observed(key, changed.ok());
    return changed;
  }
  std::vector<std::string> SetMembers(const std::string& key) const {
    return StoreFor(key)->SetMembers(key);
  }

  // --- Cluster-wide introspection (sums over shards) ---------------------------
  size_t key_count() const;
  size_t total_bytes() const;

 private:
  void Observed(const std::string& key, bool ok) const {
    if (ok && observer_ != nullptr) {
      observer_(key);
    }
  }

  const ShardMap* map_ = nullptr;
  KvStore* single_ = nullptr;
  std::map<std::string, KvStore*> stores_;  // endpoint -> shard
  MutationObserver observer_;
};

}  // namespace faasm

#endif  // FAASM_KVS_ROUTER_H_
