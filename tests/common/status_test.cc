#include "common/status.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("key missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "key missing");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: key missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int code = 0; code <= static_cast<int>(StatusCode::kPermissionDenied); ++code) {
    EXPECT_STRNE(StatusCodeName(static_cast<StatusCode>(code)), "UNKNOWN");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgument("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status Helper(bool fail) {
  FAASM_RETURN_IF_ERROR(fail ? Internal("inner") : OkStatus());
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_EQ(Helper(true).code(), StatusCode::kInternal);
}

Result<int> Doubler(Result<int> in) {
  FAASM_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(StatusTest, AssignOrReturnMacro) {
  auto ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  auto err = Doubler(OutOfRange("nope"));
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace faasm
