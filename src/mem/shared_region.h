// SharedRegion: a memfd-backed block of physical memory that can be mapped
// simultaneously into many Faaslet linear memories (MAP_SHARED | MAP_FIXED)
// and into a host-side view. This is the mechanism behind Fig. 2 of the
// paper: Faaslets A and B both see region S at different guest offsets while
// the bytes exist exactly once.
#ifndef FAASM_MEM_SHARED_REGION_H_
#define FAASM_MEM_SHARED_REGION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "mem/dirty_tracker.h"

namespace faasm {

class SharedRegion {
 public:
  // Creates a region of `size` bytes (rounded up to whole host pages) backed
  // by an anonymous memfd, plus a host-side MAP_SHARED view for direct access
  // by the local state tier.
  static Result<std::unique_ptr<SharedRegion>> Create(const std::string& name, size_t size);

  ~SharedRegion();

  SharedRegion(const SharedRegion&) = delete;
  SharedRegion& operator=(const SharedRegion&) = delete;

  int fd() const { return fd_; }
  size_t size() const { return size_; }
  // Mapped length (size rounded up to host pages).
  size_t mapped_size() const { return mapped_size_; }

  uint8_t* host_view() { return host_view_; }
  const uint8_t* host_view() const { return host_view_; }

  // Write bitmap shared by every writer of the region — host-side state API
  // writes and guest stores through MAP_SHARED mappings both mark here, so a
  // delta push sees the union of all Faaslets' writes on this host.
  DirtyTracker& dirty() { return dirty_; }
  const DirtyTracker& dirty() const { return dirty_; }

 private:
  SharedRegion(int fd, size_t size, size_t mapped_size, uint8_t* host_view)
      : fd_(fd),
        size_(size),
        mapped_size_(mapped_size),
        host_view_(host_view),
        dirty_(mapped_size) {}

  int fd_;
  size_t size_;
  size_t mapped_size_;
  uint8_t* host_view_;
  DirtyTracker dirty_;
};

}  // namespace faasm

#endif  // FAASM_MEM_SHARED_REGION_H_
