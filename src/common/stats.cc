#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace faasm {

void Summary::Add(double value) {
  values_.push_back(value);
  sorted_ = false;
}

void Summary::Merge(const Summary& other) {
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  sorted_ = false;
}

void Summary::EnsureSorted() const {
  if (!sorted_) {
    auto& mutable_values = const_cast<std::vector<double>&>(values_);
    std::sort(mutable_values.begin(), mutable_values.end());
    const_cast<bool&>(sorted_) = true;
  }
}

double Summary::Min() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.front();
}

double Summary::Max() const {
  EnsureSorted();
  return values_.empty() ? 0.0 : values_.back();
}

double Summary::Sum() const { return std::accumulate(values_.begin(), values_.end(), 0.0); }

double Summary::Mean() const { return values_.empty() ? 0.0 : Sum() / values_.size(); }

double Summary::Percentile(double p) const {
  if (values_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (p <= 0.0) {
    return values_.front();
  }
  if (p >= 100.0) {
    return values_.back();
  }
  const double rank = p / 100.0 * static_cast<double>(values_.size() - 1);
  const size_t lo = static_cast<size_t>(std::floor(rank));
  const size_t hi = static_cast<size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return values_[lo] + (values_[hi] - values_[lo]) * frac;
}

std::vector<std::pair<double, double>> Summary::Cdf() const {
  EnsureSorted();
  std::vector<std::pair<double, double>> out;
  out.reserve(values_.size());
  for (size_t i = 0; i < values_.size(); ++i) {
    out.emplace_back(values_[i], static_cast<double>(i + 1) / static_cast<double>(values_.size()));
  }
  return out;
}

}  // namespace faasm
