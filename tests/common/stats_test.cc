#include "common/stats.h"

#include <gtest/gtest.h>

namespace faasm {
namespace {

TEST(SummaryTest, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.Median(), 0.0);
  EXPECT_EQ(s.Mean(), 0.0);
}

TEST(SummaryTest, BasicMoments) {
  Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 5u);
  EXPECT_EQ(s.Min(), 1.0);
  EXPECT_EQ(s.Max(), 5.0);
  EXPECT_EQ(s.Mean(), 3.0);
  EXPECT_EQ(s.Median(), 3.0);
  EXPECT_EQ(s.Sum(), 15.0);
}

TEST(SummaryTest, PercentileInterpolates) {
  Summary s;
  s.Add(0.0);
  s.Add(10.0);
  EXPECT_EQ(s.Percentile(0), 0.0);
  EXPECT_EQ(s.Percentile(50), 5.0);
  EXPECT_EQ(s.Percentile(100), 10.0);
  EXPECT_NEAR(s.Percentile(90), 9.0, 1e-9);
}

TEST(SummaryTest, TailPercentile) {
  Summary s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_NEAR(s.Percentile(99), 99.01, 0.05);
  EXPECT_EQ(s.Max(), 100.0);
}

TEST(SummaryTest, MergeCombines) {
  Summary a;
  Summary b;
  a.Add(1.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.Mean(), 2.0);
}

TEST(SummaryTest, CdfIsMonotone) {
  Summary s;
  for (double v : {5.0, 1.0, 3.0, 2.0, 4.0}) {
    s.Add(v);
  }
  auto cdf = s.Cdf();
  ASSERT_EQ(cdf.size(), 5u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_LE(cdf[i - 1].first, cdf[i].first);
    EXPECT_LT(cdf[i - 1].second, cdf[i].second);
  }
  EXPECT_EQ(cdf.back().second, 1.0);
}

TEST(SummaryTest, AddAfterQueryResorts) {
  Summary s;
  s.Add(10.0);
  EXPECT_EQ(s.Median(), 10.0);
  s.Add(0.0);
  EXPECT_EQ(s.Min(), 0.0);
  EXPECT_EQ(s.Median(), 5.0);
}

}  // namespace
}  // namespace faasm
