#include "workloads/minivm.h"

#include <cstring>
#include <map>

#include "wasm/builder.h"
#include "wasm/decoder.h"
#include "wasm/instance.h"

namespace faasm {

// --- Assembler -------------------------------------------------------------------

void MviAssembler::Push(int32_t value) {
  code_.push_back(static_cast<uint8_t>(MviOp::kPush));
  AppendScalar(code_, value);
}
void MviAssembler::Load(uint8_t global) {
  code_.push_back(static_cast<uint8_t>(MviOp::kLoad));
  code_.push_back(global);
}
void MviAssembler::Store(uint8_t global) {
  code_.push_back(static_cast<uint8_t>(MviOp::kStore));
  code_.push_back(global);
}
void MviAssembler::Op(MviOp op) { code_.push_back(static_cast<uint8_t>(op)); }
void MviAssembler::Label(const std::string& name) {
  labels_[name] = static_cast<uint16_t>(code_.size());
}
void MviAssembler::Jmp(const std::string& label) {
  code_.push_back(static_cast<uint8_t>(MviOp::kJmp));
  fixups_.emplace_back(code_.size(), label);
  AppendScalar<uint16_t>(code_, 0);
}
void MviAssembler::Jz(const std::string& label) {
  code_.push_back(static_cast<uint8_t>(MviOp::kJz));
  fixups_.emplace_back(code_.size(), label);
  AppendScalar<uint16_t>(code_, 0);
}
void MviAssembler::Halt() { code_.push_back(static_cast<uint8_t>(MviOp::kHalt)); }

Result<Bytes> MviAssembler::Assemble() {
  for (const auto& [position, label] : fixups_) {
    auto it = labels_.find(label);
    if (it == labels_.end()) {
      return NotFound("minivm: undefined label '" + label + "'");
    }
    std::memcpy(code_.data() + position, &it->second, 2);
  }
  return code_;
}

// --- Native interpreter --------------------------------------------------------------

Result<int32_t> RunMiniVmNative(const Bytes& program, uint64_t max_steps) {
  std::vector<int32_t> stack;
  stack.reserve(256);
  std::vector<int32_t> globals(kMviGlobalSlots, 0);
  std::vector<int32_t> heap(kMviHeapSlots, 0);

  size_t pc = 0;
  auto pop = [&stack]() {
    const int32_t v = stack.back();
    stack.pop_back();
    return v;
  };

  for (uint64_t step = 0; step < max_steps; ++step) {
    if (pc >= program.size()) {
      return OutOfRange("minivm: pc past end of program");
    }
    const MviOp op = static_cast<MviOp>(program[pc++]);
    switch (op) {
      case MviOp::kHalt:
        return stack.empty() ? 0 : pop();
      case MviOp::kPush: {
        int32_t imm;
        std::memcpy(&imm, program.data() + pc, 4);
        pc += 4;
        stack.push_back(imm);
        break;
      }
      case MviOp::kLoad:
        stack.push_back(globals[program[pc++] % kMviGlobalSlots]);
        break;
      case MviOp::kStore:
        globals[program[pc++] % kMviGlobalSlots] = pop();
        break;
      case MviOp::kAdd: {
        const int32_t b = pop();
        // Two's-complement wrap-around, matching wasm i32 semantics.
        stack.back() = static_cast<int32_t>(static_cast<uint32_t>(stack.back()) +
                                            static_cast<uint32_t>(b));
        break;
      }
      case MviOp::kSub: {
        const int32_t b = pop();
        stack.back() = static_cast<int32_t>(static_cast<uint32_t>(stack.back()) -
                                            static_cast<uint32_t>(b));
        break;
      }
      case MviOp::kMul: {
        const int32_t b = pop();
        stack.back() = static_cast<int32_t>(static_cast<uint32_t>(stack.back()) *
                                            static_cast<uint32_t>(b));
        break;
      }
      case MviOp::kDiv: {
        const int32_t b = pop();
        if (b == 0) {
          return InvalidArgument("minivm: divide by zero");
        }
        stack.back() /= b;
        break;
      }
      case MviOp::kMod: {
        const int32_t b = pop();
        if (b == 0) {
          return InvalidArgument("minivm: modulo by zero");
        }
        stack.back() %= b;
        break;
      }
      case MviOp::kEq: {
        const int32_t b = pop();
        stack.back() = stack.back() == b ? 1 : 0;
        break;
      }
      case MviOp::kNe: {
        const int32_t b = pop();
        stack.back() = stack.back() != b ? 1 : 0;
        break;
      }
      case MviOp::kLt: {
        const int32_t b = pop();
        stack.back() = stack.back() < b ? 1 : 0;
        break;
      }
      case MviOp::kLe: {
        const int32_t b = pop();
        stack.back() = stack.back() <= b ? 1 : 0;
        break;
      }
      case MviOp::kGt: {
        const int32_t b = pop();
        stack.back() = stack.back() > b ? 1 : 0;
        break;
      }
      case MviOp::kGe: {
        const int32_t b = pop();
        stack.back() = stack.back() >= b ? 1 : 0;
        break;
      }
      case MviOp::kJmp: {
        uint16_t target;
        std::memcpy(&target, program.data() + pc, 2);
        pc = target;
        break;
      }
      case MviOp::kJz: {
        uint16_t target;
        std::memcpy(&target, program.data() + pc, 2);
        pc += 2;
        if (pop() == 0) {
          pc = target;
        }
        break;
      }
      case MviOp::kALoad: {
        const uint32_t index = static_cast<uint32_t>(pop()) % kMviHeapSlots;
        stack.push_back(heap[index]);
        break;
      }
      case MviOp::kAStore: {
        const int32_t value = pop();
        const uint32_t index = static_cast<uint32_t>(pop()) % kMviHeapSlots;
        heap[index] = value;
        break;
      }
      default:
        return InvalidArgument("minivm: bad opcode");
    }
  }
  return ResourceExhausted("minivm: step limit exceeded");
}

// --- Guest-wasm interpreter -------------------------------------------------------------

namespace {
// Guest memory layout of the MiniVM interpreter module.
constexpr uint32_t kCodeOff = 0x1000;
constexpr uint32_t kGlobalsOff = 0x10000;
constexpr uint32_t kStackOff = 0x11000;
constexpr uint32_t kHeapOff = 0x20000;
}  // namespace

Result<std::shared_ptr<const wasm::CompiledModule>> BuildMiniVmWasm(const Bytes& program) {
  using wasm::BlockType;
  using wasm::Op;
  using wasm::ValType;

  if (program.size() > 0xE000) {
    return InvalidArgument("minivm: program too large for guest image");
  }

  wasm::ModuleBuilder b;
  // Heap ends at kHeapOff + 64K slots * 4B = 0x20000 + 0x40000.
  b.AddMemory(8, 8);  // 512 KiB
  b.AddData(kCodeOff, program);

  auto& f = b.AddFunction("run", {}, {ValType::kI32});
  const uint32_t pc = f.AddLocal(ValType::kI32);
  const uint32_t sp = f.AddLocal(ValType::kI32);
  const uint32_t va = f.AddLocal(ValType::kI32);
  const uint32_t vb = f.AddLocal(ValType::kI32);
  const uint32_t result = f.AddLocal(ValType::kI32);

  f.I32Const(static_cast<int32_t>(kCodeOff));
  f.LocalSet(pc);

  // vm_pop -> leaves value in va (and decrements sp)
  auto emit_pop_to = [&](uint32_t dst) {
    f.LocalGet(sp);
    f.I32Const(1);
    f.Emit(Op::kI32Sub);
    f.LocalTee(sp);
    f.I32Const(4);
    f.Emit(Op::kI32Mul);
    f.Load(Op::kI32Load, kStackOff);
    f.LocalSet(dst);
  };
  // vm_push from expression already emitted? We need addr before value: use
  // helper that wraps: push(expr_emitter).
  auto emit_push = [&](const std::function<void()>& value) {
    f.LocalGet(sp);
    f.I32Const(4);
    f.Emit(Op::kI32Mul);
    value();
    f.Store(Op::kI32Store, kStackOff);
    f.LocalGet(sp);
    f.I32Const(1);
    f.Emit(Op::kI32Add);
    f.LocalSet(sp);
  };

  // Dispatch structure: exit block, loop, default block, one block per op.
  f.Block();  // exit
  f.Loop();   // top
  f.Block();  // bad opcode
  for (int k = 0; k < kMviOpCount; ++k) {
    f.Block();
  }
  // Fetch opcode, advance pc.
  f.LocalGet(pc);
  f.Load(Op::kI32Load8U);
  f.LocalGet(pc);
  f.I32Const(1);
  f.Emit(Op::kI32Add);
  f.LocalSet(pc);
  std::vector<uint32_t> depths(kMviOpCount);
  for (int k = 0; k < kMviOpCount; ++k) {
    depths[k] = static_cast<uint32_t>(k);
  }
  f.BrTable(depths, kMviOpCount);  // default -> bad-opcode block

  // Handler for op k is emitted after closing block k. Open blocks at that
  // point: remaining op blocks + bad + top + exit.
  auto br_top = [&](int k) { return static_cast<uint32_t>(kMviOpCount - k - 1 + 1); };
  auto br_exit = [&](int k) { return static_cast<uint32_t>(kMviOpCount - k - 1 + 2); };

  auto binary_op = [&](int k, Op op) {
    f.End();
    emit_pop_to(vb);
    emit_pop_to(va);
    emit_push([&] {
      f.LocalGet(va);
      f.LocalGet(vb);
      f.Emit(op);
    });
    f.Br(br_top(k));
  };

  // 0 HALT: result = pop; br exit.
  f.End();
  emit_pop_to(result);
  f.Br(br_exit(0));

  // 1 PUSH imm32.
  f.End();
  emit_push([&] {
    f.LocalGet(pc);
    f.Load(Op::kI32Load);
  });
  f.LocalGet(pc);
  f.I32Const(4);
  f.Emit(Op::kI32Add);
  f.LocalSet(pc);
  f.Br(br_top(1));

  // 2 LOAD g.
  f.End();
  emit_push([&] {
    f.LocalGet(pc);
    f.Load(Op::kI32Load8U);
    f.I32Const(4);
    f.Emit(Op::kI32Mul);
    f.Load(Op::kI32Load, kGlobalsOff);
  });
  f.LocalGet(pc);
  f.I32Const(1);
  f.Emit(Op::kI32Add);
  f.LocalSet(pc);
  f.Br(br_top(2));

  // 3 STORE g.
  f.End();
  emit_pop_to(va);
  f.LocalGet(pc);
  f.Load(Op::kI32Load8U);
  f.I32Const(4);
  f.Emit(Op::kI32Mul);
  f.LocalGet(va);
  f.Store(Op::kI32Store, kGlobalsOff);
  f.LocalGet(pc);
  f.I32Const(1);
  f.Emit(Op::kI32Add);
  f.LocalSet(pc);
  f.Br(br_top(3));

  binary_op(4, Op::kI32Add);
  binary_op(5, Op::kI32Sub);
  binary_op(6, Op::kI32Mul);
  binary_op(7, Op::kI32DivS);
  binary_op(8, Op::kI32RemS);
  binary_op(9, Op::kI32Eq);
  binary_op(10, Op::kI32Ne);
  binary_op(11, Op::kI32LtS);
  binary_op(12, Op::kI32LeS);
  binary_op(13, Op::kI32GtS);
  binary_op(14, Op::kI32GeS);

  // 15 JMP target16: pc = code_base + target.
  f.End();
  f.LocalGet(pc);
  f.Load(Op::kI32Load16U);
  f.I32Const(static_cast<int32_t>(kCodeOff));
  f.Emit(Op::kI32Add);
  f.LocalSet(pc);
  f.Br(br_top(15));

  // 16 JZ target16.
  f.End();
  f.LocalGet(pc);
  f.Load(Op::kI32Load16U);
  f.LocalSet(vb);  // target (relative to code base)
  f.LocalGet(pc);
  f.I32Const(2);
  f.Emit(Op::kI32Add);
  f.LocalSet(pc);
  emit_pop_to(va);
  f.LocalGet(va);
  f.Emit(Op::kI32Eqz);
  f.If();
  f.LocalGet(vb);
  f.I32Const(static_cast<int32_t>(kCodeOff));
  f.Emit(Op::kI32Add);
  f.LocalSet(pc);
  f.End();
  f.Br(br_top(16));

  // 17 ALOAD: idx = pop; push heap[idx].
  f.End();
  emit_pop_to(va);
  emit_push([&] {
    f.LocalGet(va);
    f.I32Const(static_cast<int32_t>(kMviHeapSlots - 1));
    f.Emit(Op::kI32And);
    f.I32Const(4);
    f.Emit(Op::kI32Mul);
    f.Load(Op::kI32Load, kHeapOff);
  });
  f.Br(br_top(17));

  // 18 ASTORE: value = pop; idx = pop; heap[idx] = value.
  f.End();
  emit_pop_to(vb);  // value
  emit_pop_to(va);  // index
  f.LocalGet(va);
  f.I32Const(static_cast<int32_t>(kMviHeapSlots - 1));
  f.Emit(Op::kI32And);
  f.I32Const(4);
  f.Emit(Op::kI32Mul);
  f.LocalGet(vb);
  f.Store(Op::kI32Store, kHeapOff);
  f.Br(br_top(18));

  // Bad opcode block.
  f.End();
  f.Unreachable();
  f.End();  // loop
  f.End();  // exit
  f.LocalGet(result);
  f.End();  // function

  FAASM_ASSIGN_OR_RETURN(wasm::Module module, wasm::DecodeModule(b.Build()));
  return wasm::CompileModule(std::move(module));
}

Result<int32_t> RunMiniVmWasm(const Bytes& program) {
  FAASM_ASSIGN_OR_RETURN(auto module, BuildMiniVmWasm(program));
  FAASM_ASSIGN_OR_RETURN(auto instance, wasm::Instance::Create(std::move(module), nullptr));
  auto out = instance->CallExport("run", {});
  if (!out.ok()) {
    return out.status();
  }
  return static_cast<int32_t>(out.value()[0].i32);
}

// --- Benchmark programs ---------------------------------------------------------------------

namespace {

// g0 = result accumulator by convention.
Bytes FibProgram(int32_t n) {
  // a=0 b=1; repeat n: t=a+b; a=b; b=t. result = a (mod arithmetic wraps).
  MviAssembler a;
  a.Push(0);
  a.Store(0);  // a
  a.Push(1);
  a.Store(1);  // b
  a.Push(n);
  a.Store(2);  // counter
  a.Label("loop");
  a.Load(2);
  a.Jz("done");
  a.Load(0);
  a.Load(1);
  a.Op(MviOp::kAdd);
  a.Store(3);  // t
  a.Load(1);
  a.Store(0);
  a.Load(3);
  a.Store(1);
  a.Load(2);
  a.Push(1);
  a.Op(MviOp::kSub);
  a.Store(2);
  a.Jmp("loop");
  a.Label("done");
  a.Load(0);
  a.Halt();
  return a.Assemble().value();
}

Bytes SieveProgram(int32_t n) {
  // Classic sieve over heap[2..n); result = prime count.
  MviAssembler a;
  a.Push(2);
  a.Store(0);  // i
  a.Label("outer");
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("count");
  // if heap[i] == 0 (not marked): mark multiples
  a.Load(0);
  a.Op(MviOp::kALoad);
  a.Jz("mark");
  a.Jmp("next");
  a.Label("mark");
  a.Load(0);
  a.Load(0);
  a.Op(MviOp::kMul);
  a.Store(1);  // j = i*i
  a.Label("mark_loop");
  a.Load(1);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("next");
  a.Load(1);
  a.Push(1);
  a.Op(MviOp::kAStore);  // heap[j] = 1
  a.Load(1);
  a.Load(0);
  a.Op(MviOp::kAdd);
  a.Store(1);
  a.Jmp("mark_loop");
  a.Label("next");
  a.Load(0);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(0);
  a.Jmp("outer");
  // Count unmarked entries in [2, n).
  a.Label("count");
  a.Push(2);
  a.Store(0);
  a.Push(0);
  a.Store(2);  // count
  a.Label("count_loop");
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("done");
  a.Load(0);
  a.Op(MviOp::kALoad);
  a.Jz("is_prime");
  a.Jmp("count_next");
  a.Label("is_prime");
  a.Load(2);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(2);
  a.Label("count_next");
  a.Load(0);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(0);
  a.Jmp("count_loop");
  a.Label("done");
  a.Load(2);
  a.Halt();
  return a.Assemble().value();
}

Bytes CollatzProgram(int32_t seeds) {
  // total steps to reach 1 for every seed in [1, seeds].
  MviAssembler a;
  a.Push(1);
  a.Store(0);  // seed
  a.Push(0);
  a.Store(1);  // total
  a.Label("seed_loop");
  a.Load(0);
  a.Push(seeds);
  a.Op(MviOp::kLe);
  a.Jz("done");
  a.Load(0);
  a.Store(2);  // n = seed
  a.Label("collatz");
  a.Load(2);
  a.Push(1);
  a.Op(MviOp::kEq);
  a.Jz("step");
  a.Jmp("next_seed");
  a.Label("step");
  a.Load(2);
  a.Push(2);
  a.Op(MviOp::kMod);
  a.Jz("even");
  // odd: n = 3n + 1
  a.Load(2);
  a.Push(3);
  a.Op(MviOp::kMul);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(2);
  a.Jmp("bump");
  a.Label("even");
  a.Load(2);
  a.Push(2);
  a.Op(MviOp::kDiv);
  a.Store(2);
  a.Label("bump");
  a.Load(1);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(1);
  a.Jmp("collatz");
  a.Label("next_seed");
  a.Load(0);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(0);
  a.Jmp("seed_loop");
  a.Label("done");
  a.Load(1);
  a.Halt();
  return a.Assemble().value();
}

Bytes GcdSumProgram(int32_t n) {
  // sum of gcd(i, 123456) for i in [1, n].
  MviAssembler a;
  a.Push(1);
  a.Store(0);  // i
  a.Push(0);
  a.Store(1);  // sum
  a.Label("loop");
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kLe);
  a.Jz("done");
  a.Load(0);
  a.Store(2);  // x = i
  a.Push(123456);
  a.Store(3);  // y
  a.Label("gcd");
  a.Load(3);
  a.Jz("gcd_done");
  a.Load(2);
  a.Load(3);
  a.Op(MviOp::kMod);
  a.Store(4);  // t = x % y
  a.Load(3);
  a.Store(2);  // x = y
  a.Load(4);
  a.Store(3);  // y = t
  a.Jmp("gcd");
  a.Label("gcd_done");
  a.Load(1);
  a.Load(2);
  a.Op(MviOp::kAdd);
  a.Store(1);
  a.Load(0);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(0);
  a.Jmp("loop");
  a.Label("done");
  a.Load(1);
  a.Halt();
  return a.Assemble().value();
}

Bytes MatmulIntProgram(int32_t n) {
  // C = A*B for n x n i32 matrices on the heap; A at 0, B at n*n, C at 2n*n.
  // A[i][j] = (i + 2j) % 7, B[i][j] = (3i + j) % 5. Result = sum(C).
  MviAssembler a;
  const int32_t nn = n * n;
  // init loops
  a.Push(0);
  a.Store(0);  // i
  a.Label("init_i");
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("mul_start");
  a.Push(0);
  a.Store(1);  // j
  a.Label("init_j");
  a.Load(1);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("init_i_next");
  // A[i*n+j] = (i + 2j) % 7
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kMul);
  a.Load(1);
  a.Op(MviOp::kAdd);
  a.Load(0);
  a.Load(1);
  a.Push(2);
  a.Op(MviOp::kMul);
  a.Op(MviOp::kAdd);
  a.Push(7);
  a.Op(MviOp::kMod);
  a.Op(MviOp::kAStore);
  // B[nn + i*n+j] = (3i + j) % 5
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kMul);
  a.Load(1);
  a.Op(MviOp::kAdd);
  a.Push(nn);
  a.Op(MviOp::kAdd);
  a.Load(0);
  a.Push(3);
  a.Op(MviOp::kMul);
  a.Load(1);
  a.Op(MviOp::kAdd);
  a.Push(5);
  a.Op(MviOp::kMod);
  a.Op(MviOp::kAStore);
  a.Load(1);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(1);
  a.Jmp("init_j");
  a.Label("init_i_next");
  a.Load(0);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(0);
  a.Jmp("init_i");
  // triple loop: g0=i g1=j g2=k g3=acc g5=sum
  a.Label("mul_start");
  a.Push(0);
  a.Store(5);  // sum
  a.Push(0);
  a.Store(0);
  a.Label("mi");
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("done");
  a.Push(0);
  a.Store(1);
  a.Label("mj");
  a.Load(1);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("mi_next");
  a.Push(0);
  a.Store(3);  // acc
  a.Push(0);
  a.Store(2);
  a.Label("mk");
  a.Load(2);
  a.Push(n);
  a.Op(MviOp::kLt);
  a.Jz("mj_store");
  // acc += A[i*n+k] * B[nn + k*n+j]
  a.Load(3);
  a.Load(0);
  a.Push(n);
  a.Op(MviOp::kMul);
  a.Load(2);
  a.Op(MviOp::kAdd);
  a.Op(MviOp::kALoad);
  a.Load(2);
  a.Push(n);
  a.Op(MviOp::kMul);
  a.Load(1);
  a.Op(MviOp::kAdd);
  a.Push(nn);
  a.Op(MviOp::kAdd);
  a.Op(MviOp::kALoad);
  a.Op(MviOp::kMul);
  a.Op(MviOp::kAdd);
  a.Store(3);
  a.Load(2);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(2);
  a.Jmp("mk");
  a.Label("mj_store");
  // sum += acc  (C not stored separately; checksum accumulates directly)
  a.Load(5);
  a.Load(3);
  a.Op(MviOp::kAdd);
  a.Store(5);
  a.Load(1);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(1);
  a.Jmp("mj");
  a.Label("mi_next");
  a.Load(0);
  a.Push(1);
  a.Op(MviOp::kAdd);
  a.Store(0);
  a.Jmp("mi");
  a.Label("done");
  a.Load(5);
  a.Halt();
  return a.Assemble().value();
}

}  // namespace

const std::vector<MviProgram>& MiniVmBenchmarks() {
  static const std::vector<MviProgram> programs = {
      {"fib", FibProgram(100000)},
      {"sieve", SieveProgram(20000)},
      {"collatz", CollatzProgram(3000)},
      {"gcd", GcdSumProgram(20000)},
      {"matmul-int", MatmulIntProgram(24)},
  };
  return programs;
}

}  // namespace faasm
