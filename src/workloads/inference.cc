#include "workloads/inference.h"

#include <cstring>

#include "common/rng.h"
#include "core/guest_api.h"
#include "state/ddo.h"
#include "wasm/decoder.h"

namespace faasm {

namespace {

// Guest memory layout of the wasm inference module (private region).
constexpr uint32_t kKeyBase = 16;       // key strings
constexpr uint32_t kInputOff = 1024;    // input image (f32)
constexpr uint32_t kH1Off = 8192;       // hidden 1 activations
constexpr uint32_t kH2Off = 12288;      // hidden 2 activations
constexpr uint32_t kLogitsOff = 16384;  // output activations
constexpr uint32_t kResultOff = 20480;  // argmax result (u32)

const char* const kWeightKeys[6] = {"mlp:w1", "mlp:b1", "mlp:w2", "mlp:b2", "mlp:w3", "mlp:b3"};

size_t WeightBytes(const MlpDims& d, int index) {
  switch (index) {
    case 0: return size_t{d.input} * d.hidden1 * 4;
    case 1: return size_t{d.hidden1} * 4;
    case 2: return size_t{d.hidden1} * d.hidden2 * 4;
    case 3: return size_t{d.hidden2} * 4;
    case 4: return size_t{d.hidden2} * d.output * 4;
    default: return size_t{d.output} * 4;
  }
}

std::vector<float> RandomWeights(size_t count, Rng& rng) {
  std::vector<float> weights(count);
  for (auto& w : weights) {
    w = static_cast<float>(rng.NextGaussian() * 0.2);
  }
  return weights;
}

void DenseLayer(const float* in, uint32_t n_in, const float* weights, const float* bias,
                uint32_t n_out, bool relu, float* out) {
  for (uint32_t j = 0; j < n_out; ++j) {
    float acc = bias[j];
    for (uint32_t i = 0; i < n_in; ++i) {
      acc += in[i] * weights[static_cast<size_t>(i) * n_out + j];
    }
    out[j] = relu && acc < 0 ? 0 : acc;
  }
}

}  // namespace

size_t SeedMlpWeights(ShardedKvs& kvs, const MlpDims& dims, uint64_t seed) {
  Rng rng(seed);
  size_t total = 0;
  for (int k = 0; k < 6; ++k) {
    const size_t bytes = WeightBytes(dims, k);
    std::vector<float> weights = RandomWeights(bytes / 4, rng);
    const auto* p = reinterpret_cast<const uint8_t*>(weights.data());
    kvs.Set(kWeightKeys[k], Bytes(p, p + bytes));
    total += bytes;
  }
  return total;
}

std::vector<float> SyntheticImage(const MlpDims& dims, uint64_t index) {
  Rng rng(index * 0x9E3779B97F4A7C15ull + 1);
  std::vector<float> image(dims.input);
  for (auto& pixel : image) {
    pixel = static_cast<float>(rng.NextDouble());
  }
  return image;
}

Bytes EncodeImage(const std::vector<float>& image) {
  const auto* p = reinterpret_cast<const uint8_t*>(image.data());
  return Bytes(p, p + image.size() * 4);
}

// --- Wasm implementation ---------------------------------------------------------

Result<std::shared_ptr<const wasm::CompiledModule>> BuildMlpWasmModule(const MlpDims& dims) {
  using wasm::BlockType;
  using wasm::Op;
  using wasm::ValType;

  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 64);

  // Key strings in guest data.
  uint32_t key_offsets[6];
  uint32_t key_lens[6];
  for (int k = 0; k < 6; ++k) {
    key_offsets[k] = kKeyBase + 16 * k;
    key_lens[k] = static_cast<uint32_t>(std::strlen(kWeightKeys[k]));
    b.AddData(key_offsets[k], BytesFromString(kWeightKeys[k]));
  }

  auto& f = b.AddFunction("main", {}, {ValType::kI32});
  // Locals: 6 weight offsets + loop indices + accumulators.
  uint32_t w_local[6];
  for (int k = 0; k < 6; ++k) {
    w_local[k] = f.AddLocal(ValType::kI32);
  }
  const uint32_t i = f.AddLocal(ValType::kI32);
  const uint32_t j = f.AddLocal(ValType::kI32);
  const uint32_t acc = f.AddLocal(ValType::kF32);
  const uint32_t best = f.AddLocal(ValType::kI32);
  const uint32_t best_val = f.AddLocal(ValType::kF32);
  const uint32_t n_in_local = f.AddLocal(ValType::kI32);

  // Map + pull each weight tensor from two-tier state.
  for (int k = 0; k < 6; ++k) {
    f.I32Const(static_cast<int32_t>(key_offsets[k]));
    f.I32Const(static_cast<int32_t>(key_lens[k]));
    f.I32Const(static_cast<int32_t>(WeightBytes(dims, k)));
    f.Call(api.get_state);
    f.LocalSet(w_local[k]);
    f.I32Const(static_cast<int32_t>(key_offsets[k]));
    f.I32Const(static_cast<int32_t>(key_lens[k]));
    f.Call(api.pull_state);
  }

  // Read the request image into the input buffer.
  f.I32Const(static_cast<int32_t>(kInputOff));
  f.I32Const(static_cast<int32_t>(dims.input * 4));
  f.Call(api.read_input);
  f.Drop();

  // Emits one dense layer: out[j] = act(bias[j] + sum_i in[i] * w[i*n_out+j]).
  auto emit_layer = [&](uint32_t in_off, uint32_t n_in, uint32_t weights, uint32_t bias,
                        uint32_t out_off, uint32_t n_out, bool relu) {
    f.ForConstLimit(j, 0, static_cast<int32_t>(n_out), [&] {
      // acc = bias[j]
      f.LocalGet(j);
      f.I32Const(4);
      f.Emit(Op::kI32Mul);
      f.LocalGet(bias);
      f.Emit(Op::kI32Add);
      f.Load(Op::kF32Load);
      f.LocalSet(acc);
      // inner product
      f.I32Const(static_cast<int32_t>(n_in));
      f.LocalSet(n_in_local);
      f.ForLocalLimit(i, 0, n_in_local, [&] {
        // in[i]
        f.LocalGet(i);
        f.I32Const(4);
        f.Emit(Op::kI32Mul);
        f.Load(Op::kF32Load, in_off);
        // w[(i*n_out + j)*4]
        f.LocalGet(i);
        f.I32Const(static_cast<int32_t>(n_out));
        f.Emit(Op::kI32Mul);
        f.LocalGet(j);
        f.Emit(Op::kI32Add);
        f.I32Const(4);
        f.Emit(Op::kI32Mul);
        f.LocalGet(weights);
        f.Emit(Op::kI32Add);
        f.Load(Op::kF32Load);
        f.Emit(Op::kF32Mul);
        f.LocalGet(acc);
        f.Emit(Op::kF32Add);
        f.LocalSet(acc);
      });
      if (relu) {
        f.LocalGet(acc);
        f.F32Const(0.0f);
        f.Emit(Op::kF32Max);
        f.LocalSet(acc);
      }
      // out[j] = acc
      f.LocalGet(j);
      f.I32Const(4);
      f.Emit(Op::kI32Mul);
      f.LocalGet(acc);
      f.Store(Op::kF32Store, out_off);
    });
  };

  emit_layer(kInputOff, dims.input, w_local[0], w_local[1], kH1Off, dims.hidden1, true);
  emit_layer(kH1Off, dims.hidden1, w_local[2], w_local[3], kH2Off, dims.hidden2, true);
  emit_layer(kH2Off, dims.hidden2, w_local[4], w_local[5], kLogitsOff, dims.output, false);

  // Argmax over the logits.
  f.I32Const(0);
  f.LocalSet(best);
  f.I32Const(0);
  f.Load(Op::kF32Load, kLogitsOff);
  f.LocalSet(best_val);
  f.ForConstLimit(j, 1, static_cast<int32_t>(dims.output), [&] {
    f.LocalGet(j);
    f.I32Const(4);
    f.Emit(Op::kI32Mul);
    f.Load(Op::kF32Load, kLogitsOff);
    f.LocalGet(best_val);
    f.Emit(Op::kF32Gt);
    f.If();
    f.LocalGet(j);
    f.I32Const(4);
    f.Emit(Op::kI32Mul);
    f.Load(Op::kF32Load, kLogitsOff);
    f.LocalSet(best_val);
    f.LocalGet(j);
    f.LocalSet(best);
    f.End();
  });

  // Publish the class id as the call output.
  f.I32Const(static_cast<int32_t>(kResultOff));
  f.LocalGet(best);
  f.Store(Op::kI32Store);
  f.I32Const(static_cast<int32_t>(kResultOff));
  f.I32Const(4);
  f.Call(api.write_output);

  f.I32Const(0);  // exit code
  f.End();

  // Full upload pipeline: encode -> decode -> validate/compile.
  FAASM_ASSIGN_OR_RETURN(wasm::Module module, wasm::DecodeModule(b.Build()));
  return wasm::CompileModule(std::move(module));
}

// --- Native twin --------------------------------------------------------------------

int MlpInferNative(InvocationContext& ctx) {
  const MlpDims dims;
  SharedArray<float> tensors[6] = {
      {&ctx.state(), kWeightKeys[0]}, {&ctx.state(), kWeightKeys[1]},
      {&ctx.state(), kWeightKeys[2]}, {&ctx.state(), kWeightKeys[3]},
      {&ctx.state(), kWeightKeys[4]}, {&ctx.state(), kWeightKeys[5]},
  };
  for (auto& tensor : tensors) {
    if (!tensor.Attach().ok()) {
      return 3;
    }
  }
  if (ctx.Input().size() < size_t{dims.input} * 4) {
    return 2;
  }
  const auto* image = reinterpret_cast<const float*>(ctx.Input().data());

  Stopwatch compute;
  std::vector<float> h1(dims.hidden1);
  std::vector<float> h2(dims.hidden2);
  std::vector<float> logits(dims.output);
  DenseLayer(image, dims.input, tensors[0].data(), tensors[1].data(), dims.hidden1, true,
             h1.data());
  DenseLayer(h1.data(), dims.hidden1, tensors[2].data(), tensors[3].data(), dims.hidden2, true,
             h2.data());
  DenseLayer(h2.data(), dims.hidden2, tensors[4].data(), tensors[5].data(), dims.output, false,
             logits.data());
  uint32_t best = 0;
  for (uint32_t j = 1; j < dims.output; ++j) {
    if (logits[j] > logits[best]) {
      best = j;
    }
  }
  ctx.ChargeCompute(compute.ElapsedNs());

  Bytes out(4);
  std::memcpy(out.data(), &best, 4);
  ctx.WriteOutput(std::move(out));
  return 0;
}

uint32_t MlpReference(const ShardedKvs& kvs, const MlpDims& dims, const std::vector<float>& image) {
  std::vector<float> tensors[6];
  for (int k = 0; k < 6; ++k) {
    auto bytes = kvs.Get(kWeightKeys[k]);
    tensors[k].resize(bytes.value().size() / 4);
    std::memcpy(tensors[k].data(), bytes.value().data(), bytes.value().size());
  }
  std::vector<float> h1(dims.hidden1);
  std::vector<float> h2(dims.hidden2);
  std::vector<float> logits(dims.output);
  DenseLayer(image.data(), dims.input, tensors[0].data(), tensors[1].data(), dims.hidden1, true,
             h1.data());
  DenseLayer(h1.data(), dims.hidden1, tensors[2].data(), tensors[3].data(), dims.hidden2, true,
             h2.data());
  DenseLayer(h2.data(), dims.hidden2, tensors[4].data(), tensors[5].data(), dims.output, false,
             logits.data());
  uint32_t best = 0;
  for (uint32_t j = 1; j < dims.output; ++j) {
    if (logits[j] > logits[best]) {
      best = j;
    }
  }
  return best;
}

Status RegisterMlpWasm(FunctionRegistry& registry, const std::string& name, const MlpDims& dims) {
  FAASM_ASSIGN_OR_RETURN(auto module, BuildMlpWasmModule(dims));
  return registry.RegisterWasm(name, std::move(module));
}

Status RegisterMlpNative(FunctionRegistry& registry, const std::string& name) {
  return registry.RegisterNative(name, MlpInferNative);
}

}  // namespace faasm
