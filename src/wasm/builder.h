// ModuleBuilder / FunctionBuilder: an in-process assembler for WebAssembly
// binaries. The offline environment has no C-to-wasm toolchain, so kernels,
// guest programs and test modules are authored with this DSL, encoded to real
// wasm bytes, and then decoded + validated + executed exactly like an
// uploaded binary would be (paper §3.4 pipeline).
#ifndef FAASM_WASM_BUILDER_H_
#define FAASM_WASM_BUILDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "wasm/module.h"
#include "wasm/opcodes.h"

namespace faasm::wasm {

class ModuleBuilder;

// Emits the raw body bytes of one function. Low-level methods map 1:1 to
// instructions; the For* helpers emit the standard counted-loop skeleton.
class FunctionBuilder {
 public:
  uint32_t index() const { return index_; }

  // Declares an additional (non-parameter) local; returns its index.
  uint32_t AddLocal(ValType type);

  // --- Constants / variables ---
  void I32Const(int32_t v);
  void I64Const(int64_t v);
  void F32Const(float v);
  void F64Const(double v);
  void LocalGet(uint32_t index);
  void LocalSet(uint32_t index);
  void LocalTee(uint32_t index);
  void GlobalGet(uint32_t index);
  void GlobalSet(uint32_t index);

  // --- Generic operator with no immediate (arithmetic, comparison, etc.) ---
  void Emit(Op op);

  // --- Memory ---
  void Load(Op op, uint32_t offset = 0);
  void Store(Op op, uint32_t offset = 0);
  void MemorySize();
  void MemoryGrow();

  // --- Control ---
  void Block(BlockType type = BlockType::Empty());
  void Loop(BlockType type = BlockType::Empty());
  void If(BlockType type = BlockType::Empty());
  void Else();
  void End();
  void Br(uint32_t depth);
  void BrIf(uint32_t depth);
  void BrTable(const std::vector<uint32_t>& depths, uint32_t default_depth);
  void Return();
  void Unreachable();
  void Drop();
  void Select();
  void Call(uint32_t func_index);
  void CallIndirect(uint32_t type_index);

  // --- Structured helpers ---
  //
  // for (i = start; i < limit_local; i += step) { body(); }
  void ForLocalLimit(uint32_t i_local, int32_t start, uint32_t limit_local,
                     const std::function<void()>& body, int32_t step = 1);
  // for (i = start; i < limit; i += step) { body(); }
  void ForConstLimit(uint32_t i_local, int32_t start, int32_t limit,
                     const std::function<void()>& body, int32_t step = 1);
  // while (cond()) { body(); }  — cond must leave one i32 on the stack.
  void While(const std::function<void()>& cond, const std::function<void()>& body);

  const Bytes& body() const { return body_; }

 private:
  friend class ModuleBuilder;
  FunctionBuilder(uint32_t index, uint32_t param_count, std::vector<ValType> param_types)
      : index_(index), param_count_(param_count), param_types_(std::move(param_types)) {}

  void EmitByte(Op op) { body_.push_back(static_cast<uint8_t>(op)); }

  uint32_t index_;
  uint32_t param_count_;
  std::vector<ValType> param_types_;
  std::vector<ValType> extra_locals_;
  Bytes body_;
  // Open control frames (function frame included); BuildModule closes any
  // that the author left open with implicit `end`s.
  int open_frames_ = 1;
};

class ModuleBuilder {
 public:
  ModuleBuilder();

  // Returns (possibly deduplicated) type index.
  uint32_t AddType(const std::vector<ValType>& params, const std::vector<ValType>& results);

  // Function imports must be declared before any defined function.
  uint32_t ImportFunction(const std::string& module, const std::string& name,
                          const std::vector<ValType>& params,
                          const std::vector<ValType>& results);

  // Defines a function; `export_name` empty means unexported.
  FunctionBuilder& AddFunction(const std::string& export_name, const std::vector<ValType>& params,
                               const std::vector<ValType>& results);

  void AddMemory(uint32_t min_pages, uint32_t max_pages);
  void ExportMemory(const std::string& name);
  uint32_t AddGlobal(ValType type, bool mutable_, Value init);
  void AddData(uint32_t offset, Bytes bytes);
  void AddTable(uint32_t min_entries);
  void AddElementSegment(uint32_t offset, const std::vector<uint32_t>& func_indices);
  void SetStart(uint32_t func_index);
  void ExportFunction(const std::string& name, uint32_t func_index);

  uint32_t num_imports() const { return static_cast<uint32_t>(module_.imports.size()); }

  // Assembles the module structure.
  Module BuildModule();
  // Assembles and encodes to wasm binary bytes.
  Bytes Build();

 private:
  Module module_;
  std::vector<std::unique_ptr<FunctionBuilder>> functions_;
};

}  // namespace faasm::wasm

#endif  // FAASM_WASM_BUILDER_H_
