// Property-style tests for epoch-versioned shard assignments: under random
// sequences of host add/remove, (a) a single-host change remaps only ~1/N
// of the keyspace, (b) routing is deterministic within an epoch, and (c)
// the router's arc-computed old→new diff exactly matches a brute-force
// per-key comparison of the two assignments.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "common/rng.h"
#include "kvs/router.h"

namespace faasm {
namespace {

std::string Endpoint(int i) { return ShardMap::EndpointForHost("host-" + std::to_string(i)); }

std::vector<std::string> ProbeKeys(int n) {
  std::vector<std::string> keys;
  keys.reserve(n);
  for (int i = 0; i < n; ++i) {
    keys.push_back("key-" + std::to_string(i));
  }
  return keys;
}

// Brute force: rehash every key against both assignments.
std::vector<KeyMove> BruteForceDiff(const ShardAssignment& before, const ShardAssignment& after,
                                    const std::vector<std::string>& keys) {
  std::vector<KeyMove> moves;
  for (const std::string& key : keys) {
    const std::string from = before.MasterFor(key);
    const std::string to = after.MasterFor(key);
    if (from != to) {
      moves.push_back(KeyMove{key, from, to});
    }
  }
  return moves;
}

void ExpectSameMoves(const std::vector<KeyMove>& actual, const std::vector<KeyMove>& expected) {
  ASSERT_EQ(actual.size(), expected.size());
  // DiffKeys preserves the input key order, as does the brute force.
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].key, expected[i].key);
    EXPECT_EQ(actual[i].from, expected[i].from);
    EXPECT_EQ(actual[i].to, expected[i].to);
  }
}

TEST(RouterEpochTest, EpochBumpsOnlyOnEffectiveMembershipChanges) {
  ShardMap map;
  EXPECT_EQ(map.epoch(), 0u);
  map.AddShard(Endpoint(0));
  EXPECT_EQ(map.epoch(), 1u);
  map.AddShard(Endpoint(0));  // duplicate: no change, no bump
  EXPECT_EQ(map.epoch(), 1u);
  map.RemoveShard(Endpoint(7));  // not a member: no bump
  EXPECT_EQ(map.epoch(), 1u);
  map.AddShard(Endpoint(1));
  map.RemoveShard(Endpoint(1));
  EXPECT_EQ(map.epoch(), 3u);
}

TEST(RouterEpochTest, RoutingIsDeterministicWithinAnEpoch) {
  Rng rng(7);
  ShardMap map;
  for (int i = 0; i < 5; ++i) {
    map.AddShard(Endpoint(i));
  }
  const auto keys = ProbeKeys(2000);
  const uint64_t epoch = map.epoch();
  std::map<std::string, std::string> first;
  for (const std::string& key : keys) {
    first[key] = map.MasterFor(key);
  }
  // Re-resolution in any order gives identical masters while the epoch
  // stands, and the live map agrees with its own snapshot.
  const ShardAssignment snapshot = map.Snapshot();
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 0; i < keys.size(); ++i) {
      const std::string& key = keys[rng.NextBelow(keys.size())];
      EXPECT_EQ(map.MasterFor(key), first[key]);
      EXPECT_EQ(snapshot.MasterFor(key), first[key]);
    }
  }
  EXPECT_EQ(map.epoch(), epoch);
}

TEST(RouterEpochTest, SingleHostChangeMovesAboutOneNth) {
  // Adding one host to an 8-host map must migrate well under 2/8 of keys
  // (the ISSUE acceptance bound), and removing one from N+1 the same.
  const auto keys = ProbeKeys(20000);
  std::set<std::string> endpoints;
  for (int i = 0; i < 8; ++i) {
    endpoints.insert(Endpoint(i));
  }
  const ShardAssignment eight(endpoints);
  const ShardAssignment nine = eight.With(Endpoint(8));

  const auto added = DiffKeys(eight, nine, keys);
  // Expected share 1/9 ≈ 11%; the hard ceiling is 2/8 = 25%.
  EXPECT_GT(added.size(), keys.size() / 50);
  EXPECT_LT(added.size(), keys.size() * 2 / 8);
  for (const KeyMove& move : added) {
    EXPECT_EQ(move.to, Endpoint(8));  // keys only move TO the new shard
  }

  const auto removed = DiffKeys(nine, eight, keys);
  EXPECT_EQ(removed.size(), added.size());  // exact inverse
  for (const KeyMove& move : removed) {
    EXPECT_EQ(move.from, Endpoint(8));  // keys only move OFF the leaver
  }
}

TEST(RouterEpochTest, DiffMatchesBruteForceUnderRandomChurn) {
  Rng rng(42);
  const auto keys = ProbeKeys(5000);

  std::set<std::string> members;
  ShardMap map;
  for (int i = 0; i < 4; ++i) {
    members.insert(Endpoint(i));
    map.AddShard(Endpoint(i));
  }
  int next_host = 4;

  for (int step = 0; step < 40; ++step) {
    const ShardAssignment before = map.Snapshot();
    // Random single-host membership change (grow-biased so the cluster
    // wanders between a few and a dozen hosts).
    const bool grow = members.size() <= 2 || rng.NextBelow(100) < 55;
    std::string changed;
    if (grow) {
      changed = Endpoint(next_host++);
      members.insert(changed);
      map.AddShard(changed);
    } else {
      auto it = members.begin();
      std::advance(it, rng.NextBelow(members.size()));
      changed = *it;
      members.erase(it);
      map.RemoveShard(changed);
    }
    const ShardAssignment after = map.Snapshot();

    // (c) The arc-computed diff equals the brute-force rehash, exactly.
    const auto diff = DiffKeys(before, after, keys);
    ExpectSameMoves(diff, BruteForceDiff(before, after, keys));

    // (a) A single-host change moves roughly the changed host's share —
    // never more than twice 1/N of the keyspace (vnode variance allowed).
    const size_t n_after = members.size();
    const size_t n_smaller = std::min(before.endpoints().size(), n_after);
    EXPECT_LT(diff.size(), 2 * keys.size() / n_smaller)
        << "step " << step << " resized to " << n_after << " hosts";
    // Every move involves the changed endpoint on the correct side.
    for (const KeyMove& move : diff) {
      EXPECT_EQ(grow ? move.to : move.from, changed);
    }

    // (b) Within the new epoch, the live map and snapshot agree.
    for (int probe = 0; probe < 200; ++probe) {
      const std::string& key = keys[rng.NextBelow(keys.size())];
      EXPECT_EQ(map.MasterFor(key), after.MasterFor(key));
    }
  }
}

}  // namespace
}  // namespace faasm
