// ReadCache: the per-host cache over global-tier reads (kvs_client.h).
//
// Entries cache WHOLE values (plus the value size) keyed by (key, shard-map
// epoch) and stamped with the virtual time they were fetched. A lookup is
// served only when ALL of these hold:
//
//   - the entry was installed under the map's CURRENT epoch — a membership
//     change invalidates every older entry implicitly, because a cached
//     value may have been written through its new master since;
//   - the entry is younger than min(lease, the read's max_staleness bound),
//     so a cached read is stale by at most the configured lease (bounded
//     staleness, the Cloudburst-style contract for read-mostly keys);
//   - the requested range lies inside the cached value (ranged reads are
//     served by slicing a cached full value; partial reads never populate
//     the cache, so it can never serve bytes it did not fetch).
//
// Coherence is completed by the owning KvsClient, which Invalidate()s a
// key's entry on every local mutation (Set/SetRange/SetRanges/Append/Delete,
// batched or not, at ENQUEUE time so a host's own pending writes are never
// masked by its cache) and on every global-lock acquisition (a reader under
// a lock must observe the bytes the lock serialises — never a lease). Writes
// by OTHER hosts inside the lease window are by design not observed: the
// cache is opt-in, for read-mostly keys that tolerate bounded staleness.
//
// The cache is disabled until set_lease() is given a positive lease; every
// path through it is then counted (hits/misses/invalidations) for the bench
// ablations.
//
// The cache is tier ONE of the client's three-tier read path (kvs_client.h):
// a miss may still be served in-process by a co-located replica (tier two)
// before any RPC is paid, and a whole-value replica serve re-populates this
// cache under the same rules as a remote fetch — tier two refreshes tier
// one.
#ifndef FAASM_KVS_READ_CACHE_H_
#define FAASM_KVS_READ_CACHE_H_

#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/stats.h"
#include "kvs/router.h"

namespace faasm {

class ReadCache {
 public:
  // max_staleness sentinel: bound the read by the lease alone.
  static constexpr TimeNs kLeaseStaleness = -1;
  // Total cached bytes across entries; the stalest entries are evicted when
  // an insert would exceed this.
  static constexpr size_t kMaxCachedBytes = size_t{256} * 1024 * 1024;

  // `shards` may be null (centralised mode): the epoch is then constant 0
  // and entries only ever expire by lease or invalidation.
  ReadCache(Clock* clock, const ShardMap* shards) : clock_(clock), shards_(shards) {}

  // A non-positive lease disables the cache.
  void set_lease(TimeNs lease_ns) { lease_ = lease_ns; }
  TimeNs lease() const { return lease_; }
  bool enabled() const { return lease_ > 0; }

  // Serves [offset, offset+len) sliced out of a fresh full-value entry
  // (len may be the whole-value sentinel). Counts a hit or a miss.
  std::optional<Bytes> Lookup(const std::string& key, uint64_t offset, uint64_t len,
                              TimeNs max_staleness);
  // Serves the value size from a fresh entry. Counts a hit or a miss.
  std::optional<uint64_t> LookupSize(const std::string& key, TimeNs max_staleness);

  // Installs a full value fetched from the key's master (stamps it with the
  // current epoch and virtual time; the size comes with it for free).
  void InsertFull(const std::string& key, Bytes value);
  // Installs just the size (a remote Size() answer).
  void InsertSize(const std::string& key, uint64_t size);

  // Drops the key's entry (local write / global-lock acquisition).
  void Invalidate(const std::string& key);
  void Clear();

  uint64_t hits() const { return hits_.value(); }
  uint64_t misses() const { return misses_.value(); }
  uint64_t invalidations() const { return invalidations_.value(); }

 private:
  struct Entry {
    uint64_t epoch = 0;
    bool has_value = false;
    Bytes value;
    TimeNs value_at = 0;
    bool has_size = false;
    uint64_t size = 0;
    TimeNs size_at = 0;
  };

  uint64_t CurrentEpoch() const { return shards_ == nullptr ? 0 : shards_->epoch(); }
  // Requires mutex_. Returns the key's entry if it survives the epoch check,
  // dropping (and counting) it otherwise.
  Entry* LiveEntryLocked(const std::string& key);
  bool FreshLocked(TimeNs stamp, TimeNs max_staleness) const;
  void EvictForLocked(size_t incoming_bytes);

  Clock* clock_;
  const ShardMap* shards_;
  TimeNs lease_ = 0;

  mutable std::mutex mutex_;
  std::map<std::string, Entry> entries_;
  size_t cached_bytes_ = 0;

  Counter hits_;
  Counter misses_;
  Counter invalidations_;
};

}  // namespace faasm

#endif  // FAASM_KVS_READ_CACHE_H_
