#include "wasm/encoder.h"

#include "wasm/leb128.h"
#include "wasm/opcodes.h"

namespace faasm::wasm {

namespace {

void WriteName(Bytes& out, const std::string& name) {
  WriteVarU32(out, static_cast<uint32_t>(name.size()));
  out.insert(out.end(), name.begin(), name.end());
}

void WriteLimits(Bytes& out, const Limits& limits) {
  out.push_back(limits.has_max ? 1 : 0);
  WriteVarU32(out, limits.min);
  if (limits.has_max) {
    WriteVarU32(out, limits.max);
  }
}

void WriteConstExpr(Bytes& out, ValType type, Value value) {
  switch (type) {
    case ValType::kI32:
      out.push_back(static_cast<uint8_t>(Op::kI32Const));
      WriteVarS32(out, static_cast<int32_t>(value.i32));
      break;
    case ValType::kI64:
      out.push_back(static_cast<uint8_t>(Op::kI64Const));
      WriteVarS64(out, static_cast<int64_t>(value.i64));
      break;
    case ValType::kF32:
      out.push_back(static_cast<uint8_t>(Op::kF32Const));
      AppendScalar(out, value.f32);
      break;
    case ValType::kF64:
      out.push_back(static_cast<uint8_t>(Op::kF64Const));
      AppendScalar(out, value.f64);
      break;
  }
  out.push_back(static_cast<uint8_t>(Op::kEnd));
}

void WriteSection(Bytes& out, uint8_t id, const Bytes& payload) {
  if (payload.empty()) {
    return;
  }
  out.push_back(id);
  WriteVarU32(out, static_cast<uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

}  // namespace

Bytes EncodeModule(const Module& module) {
  Bytes out;
  AppendScalar(out, kWasmMagic);
  AppendScalar(out, kWasmVersion);

  // Type section.
  if (!module.types.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.types.size()));
    for (const auto& type : module.types) {
      payload.push_back(kFuncTypeTag);
      WriteVarU32(payload, static_cast<uint32_t>(type.params.size()));
      for (ValType t : type.params) {
        payload.push_back(static_cast<uint8_t>(t));
      }
      WriteVarU32(payload, static_cast<uint32_t>(type.results.size()));
      for (ValType t : type.results) {
        payload.push_back(static_cast<uint8_t>(t));
      }
    }
    WriteSection(out, 1, payload);
  }

  // Import section.
  if (!module.imports.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.imports.size()));
    for (const auto& import : module.imports) {
      WriteName(payload, import.module);
      WriteName(payload, import.name);
      payload.push_back(static_cast<uint8_t>(import.kind));
      WriteVarU32(payload, import.type_index);
    }
    WriteSection(out, 2, payload);
  }

  // Function section.
  if (!module.function_types.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.function_types.size()));
    for (uint32_t type_index : module.function_types) {
      WriteVarU32(payload, type_index);
    }
    WriteSection(out, 3, payload);
  }

  // Table section.
  if (module.table.has_value()) {
    Bytes payload;
    WriteVarU32(payload, 1);
    payload.push_back(kFuncRefTag);
    WriteLimits(payload, *module.table);
    WriteSection(out, 4, payload);
  }

  // Memory section.
  if (module.memory.has_value()) {
    Bytes payload;
    WriteVarU32(payload, 1);
    WriteLimits(payload, *module.memory);
    WriteSection(out, 5, payload);
  }

  // Global section.
  if (!module.globals.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.globals.size()));
    for (const auto& global : module.globals) {
      payload.push_back(static_cast<uint8_t>(global.type));
      payload.push_back(global.mutable_ ? 1 : 0);
      WriteConstExpr(payload, global.type, global.init);
    }
    WriteSection(out, 6, payload);
  }

  // Export section.
  if (!module.exports.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.exports.size()));
    for (const auto& exp : module.exports) {
      WriteName(payload, exp.name);
      payload.push_back(static_cast<uint8_t>(exp.kind));
      WriteVarU32(payload, exp.index);
    }
    WriteSection(out, 7, payload);
  }

  // Start section.
  if (module.start_function.has_value()) {
    Bytes payload;
    WriteVarU32(payload, *module.start_function);
    WriteSection(out, 8, payload);
  }

  // Element section.
  if (!module.elements.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.elements.size()));
    for (const auto& segment : module.elements) {
      WriteVarU32(payload, segment.table_index);
      WriteConstExpr(payload, ValType::kI32, MakeI32(segment.offset));
      WriteVarU32(payload, static_cast<uint32_t>(segment.func_indices.size()));
      for (uint32_t func_index : segment.func_indices) {
        WriteVarU32(payload, func_index);
      }
    }
    WriteSection(out, 9, payload);
  }

  // Code section.
  if (!module.bodies.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.bodies.size()));
    for (const auto& body : module.bodies) {
      Bytes body_bytes;
      WriteVarU32(body_bytes, static_cast<uint32_t>(body.locals.size()));
      for (const auto& [count, type] : body.locals) {
        WriteVarU32(body_bytes, count);
        body_bytes.push_back(static_cast<uint8_t>(type));
      }
      body_bytes.insert(body_bytes.end(), body.code.begin(), body.code.end());
      WriteVarU32(payload, static_cast<uint32_t>(body_bytes.size()));
      payload.insert(payload.end(), body_bytes.begin(), body_bytes.end());
    }
    WriteSection(out, 10, payload);
  }

  // Data section.
  if (!module.data.empty()) {
    Bytes payload;
    WriteVarU32(payload, static_cast<uint32_t>(module.data.size()));
    for (const auto& segment : module.data) {
      WriteVarU32(payload, segment.memory_index);
      WriteConstExpr(payload, ValType::kI32, MakeI32(segment.offset));
      WriteVarU32(payload, static_cast<uint32_t>(segment.bytes.size()));
      payload.insert(payload.end(), segment.bytes.begin(), segment.bytes.end());
    }
    WriteSection(out, 11, payload);
  }

  // Custom sections are appended at the end (legal anywhere).
  for (const auto& custom : module.custom_sections) {
    Bytes payload;
    WriteName(payload, custom.name);
    payload.insert(payload.end(), custom.bytes.begin(), custom.bytes.end());
    WriteSection(out, 0, payload);
  }

  return out;
}

}  // namespace faasm::wasm
