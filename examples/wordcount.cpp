// Map/reduce-style word count: mapper functions consume document shards from
// the global tier and append partial counts to an event log; a reducer folds
// them. Demonstrates chained fan-out (Listing 1 pattern) + append_state.
#include <cstdio>
#include <map>
#include <sstream>

#include "runtime/cluster.h"
#include "state/ddo.h"

using namespace faasm;

namespace {

// Partial count record appended by mappers.
struct CountRecord {
  uint64_t word_hash;
  uint32_t count;
  uint32_t padding = 0;
};

int MapperFunction(InvocationContext& ctx) {
  ByteReader reader(ctx.Input());
  auto shard = reader.Get<uint32_t>();
  if (!shard.ok()) {
    return 2;
  }
  auto doc = ctx.state().Lookup("docs:" + std::to_string(shard.value()));
  if (!doc->Pull().ok()) {
    return 3;
  }
  std::string text(reinterpret_cast<const char*>(doc->data()), doc->size());

  std::map<uint64_t, uint32_t> counts;
  std::istringstream stream(text);
  std::string word;
  Stopwatch compute;
  while (stream >> word) {
    counts[HashBytes(reinterpret_cast<const uint8_t*>(word.data()), word.size())] += 1;
  }
  ctx.ChargeCompute(compute.ElapsedNs());

  AppendLog<CountRecord> log(&ctx.state(), "wordcounts");
  for (const auto& [hash, count] : counts) {
    if (!log.Append(CountRecord{hash, count}).ok()) {
      return 4;
    }
  }
  return 0;
}

int ReducerFunction(InvocationContext& ctx) {
  AppendLog<CountRecord> log(&ctx.state(), "wordcounts");
  auto records = log.ReadAll();
  if (!records.ok()) {
    return 2;
  }
  std::map<uint64_t, uint64_t> totals;
  for (const CountRecord& record : records.value()) {
    totals[record.word_hash] += record.count;
  }
  uint64_t distinct = totals.size();
  uint64_t total = 0;
  for (const auto& [hash, count] : totals) {
    total += count;
  }
  Bytes out;
  ByteWriter writer(out);
  writer.Put<uint64_t>(distinct);
  writer.Put<uint64_t>(total);
  ctx.WriteOutput(std::move(out));
  return 0;
}

int DriverFunction(InvocationContext& ctx) {
  ByteReader reader(ctx.Input());
  auto shards = reader.Get<uint32_t>();
  if (!shards.ok()) {
    return 2;
  }
  std::vector<Bytes> inputs;
  for (uint32_t shard = 0; shard < shards.value(); ++shard) {
    Bytes input;
    ByteWriter writer(input);
    writer.Put<uint32_t>(shard);
    inputs.push_back(std::move(input));
  }
  auto all = ChainAndAwaitAll(ctx, "wc_map", inputs);
  if (!all.ok() || all.value() != 0) {
    return 3;
  }
  auto reduce_id = ctx.ChainCall("wc_reduce", {});
  if (!reduce_id.ok()) {
    return 4;
  }
  auto code = ctx.AwaitCall(reduce_id.value());
  if (!code.ok() || code.value() != 0) {
    return 5;
  }
  auto output = ctx.GetCallOutput(reduce_id.value());
  if (!output.ok()) {
    return 6;
  }
  ctx.WriteOutput(std::move(output).value());
  return 0;
}

}  // namespace

int main() {
  FaasmCluster cluster;

  // Seed document shards: synthetic text with a Zipf-ish vocabulary.
  constexpr uint32_t kShards = 8;
  Rng rng(2024);
  const char* vocabulary[] = {"serverless", "faaslet",  "state",   "memory", "shared",
                              "wasm",       "snapshot", "cluster", "tier",   "scale"};
  uint64_t words_written = 0;
  for (uint32_t shard = 0; shard < kShards; ++shard) {
    std::string text;
    for (int i = 0; i < 2000; ++i) {
      // Squared uniform draw biases towards low indices (Zipf-ish).
      const double u = rng.NextDouble();
      text += vocabulary[static_cast<int>(u * u * 10)];
      text += ' ';
      ++words_written;
    }
    cluster.kvs().Set("docs:" + std::to_string(shard), BytesFromString(text));
  }

  (void)cluster.registry().RegisterNative("wc_map", MapperFunction);
  (void)cluster.registry().RegisterNative("wc_reduce", ReducerFunction);
  (void)cluster.registry().RegisterNative("wc_driver", DriverFunction);

  cluster.Run([&](Frontend& frontend) {
    Bytes input;
    ByteWriter writer(input);
    writer.Put<uint32_t>(kShards);
    auto id = frontend.Submit("wc_driver", std::move(input));
    if (!id.ok()) {
      return;
    }
    auto code = frontend.Await(id.value());
    auto output = frontend.Output(id.value());
    if (code.ok() && code.value() == 0 && output.ok()) {
      ByteReader out_reader(output.value());
      const uint64_t distinct = out_reader.Get<uint64_t>().value();
      const uint64_t total = out_reader.Get<uint64_t>().value();
      std::printf("counted %llu words (%llu distinct) across %u shards\n",
                  static_cast<unsigned long long>(total),
                  static_cast<unsigned long long>(distinct), kShards);
      std::printf("expected %llu words, 10 distinct: %s\n",
                  static_cast<unsigned long long>(words_written),
                  (total == words_written && distinct == 10) ? "MATCH" : "MISMATCH");
    } else {
      std::printf("wordcount failed\n");
    }
  });
  std::printf("network: %.2f MB, cold starts: %zu\n", cluster.network_bytes() / 1e6,
              cluster.cold_start_count());
  return 0;
}
