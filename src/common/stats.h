// Latency/throughput statistics used by the benchmark harnesses to print the
// same series the paper reports (median, tail percentiles, CDFs).
#ifndef FAASM_COMMON_STATS_H_
#define FAASM_COMMON_STATS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace faasm {

// Monotonic event counter (read-cache hits/misses, server RPC tallies).
// Relaxed atomics: counters feed reports and bench gates, never
// synchronisation.
class Counter {
 public:
  void Increment(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

class Summary {
 public:
  void Add(double value);
  void Merge(const Summary& other);

  size_t count() const { return values_.size(); }
  double Min() const;
  double Max() const;
  double Mean() const;
  double Sum() const;

  // Interpolated percentile; p in [0, 100].
  double Percentile(double p) const;
  double Median() const { return Percentile(50.0); }

  // CDF points as (value, fraction<=value) pairs, one per sample, sorted.
  std::vector<std::pair<double, double>> Cdf() const;

 private:
  void EnsureSorted() const;

  std::vector<double> values_;
  mutable bool sorted_ = true;
};

}  // namespace faasm

#endif  // FAASM_COMMON_STATS_H_
