#!/usr/bin/env bash
# Apply .clang-format to every tracked C++ source. Companion to the CI
# format-check job; run this before flipping that job to blocking.
#
# Usage:
#   scripts/format.sh          # rewrite files in place
#   scripts/format.sh --check  # dry run, nonzero exit on violations (CI mode)
set -euo pipefail

cd "$(dirname "$0")/.."

if ! command -v clang-format >/dev/null; then
  echo "error: clang-format not found in PATH" >&2
  exit 1
fi

case "${1:-}" in
  "") mode=(-i) ;;
  --check) mode=(--dry-run -Werror) ;;
  *)
    echo "usage: scripts/format.sh [--check]" >&2
    exit 2
    ;;
esac

git ls-files -z '*.cc' '*.h' '*.cpp' | xargs -0 clang-format "${mode[@]}"
