// Router-layer tests: consistent-hash stability of the ShardMap, per-key op
// routing through KvsClient (including batched SetRanges), and the
// master-local fast path's zero-network guarantee.
#include "kvs/router.h"

#include <gtest/gtest.h>

#include "kvs/kvs_client.h"

namespace faasm {
namespace {

std::string HostName(int i) { return "host-" + std::to_string(i); }

// First probe key mastered on `endpoint` (bounded so a mapping bug fails
// the test instead of hanging it).
std::string KeyMasteredOn(const ShardMap& map, const std::string& endpoint) {
  for (int i = 0; i < 100000; ++i) {
    std::string key = "probe-" + std::to_string(i);
    if (map.MasterFor(key) == endpoint) {
      return key;
    }
  }
  ADD_FAILURE() << "no key mastered on " << endpoint;
  return "";
}

TEST(ShardMapTest, EndpointNamingRoundTrips) {
  EXPECT_EQ(ShardMap::EndpointForHost("host-3"), "kvs:host-3");
  EXPECT_EQ(ShardMap::HostForEndpoint("kvs:host-3"), "host-3");
  // The centralised endpoint is not a host-colocated shard.
  EXPECT_EQ(ShardMap::HostForEndpoint("kvs"), "");
}

TEST(ShardMapTest, MasterIsDeterministicAndCoversAllShards) {
  ShardMap map;
  constexpr int kShards = 8;
  for (int i = 0; i < kShards; ++i) {
    map.AddShard(ShardMap::EndpointForHost(HostName(i)));
  }
  ASSERT_EQ(map.shard_count(), static_cast<size_t>(kShards));

  std::map<std::string, int> per_shard;
  for (int i = 0; i < 10000; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const std::string master = map.MasterFor(key);
    EXPECT_EQ(master, map.MasterFor(key));  // deterministic
    per_shard[master]++;
  }
  // Every shard masters a nontrivial share (64 vnodes balance within a few
  // percent; 1/8 = 1250, assert a loose floor).
  ASSERT_EQ(per_shard.size(), static_cast<size_t>(kShards));
  for (const auto& [endpoint, count] : per_shard) {
    EXPECT_GT(count, 300) << endpoint;
  }
}

TEST(ShardMapTest, AddingShardRemapsOnlyItsShare) {
  constexpr int kShards = 8;
  constexpr int kKeys = 20000;
  ShardMap map;
  for (int i = 0; i < kShards; ++i) {
    map.AddShard(ShardMap::EndpointForHost(HostName(i)));
  }
  std::vector<std::string> before(kKeys);
  for (int i = 0; i < kKeys; ++i) {
    before[i] = map.MasterFor("key-" + std::to_string(i));
  }

  const std::string added = ShardMap::EndpointForHost(HostName(kShards));
  map.AddShard(added);
  int moved = 0;
  for (int i = 0; i < kKeys; ++i) {
    const std::string after = map.MasterFor("key-" + std::to_string(i));
    if (after != before[i]) {
      ++moved;
      // Consistent hashing only moves keys TO the new shard.
      EXPECT_EQ(after, added);
    }
  }
  // Expected share is 1/9 ≈ 11%; allow vnode variance but lock in "~1/N,
  // not a rehash-everything".
  EXPECT_GT(moved, kKeys / 50);
  EXPECT_LT(moved, kKeys / 4);

  // Removing the shard restores every original assignment.
  map.RemoveShard(added);
  for (int i = 0; i < kKeys; ++i) {
    EXPECT_EQ(map.MasterFor("key-" + std::to_string(i)), before[i]);
  }
}

TEST(ShardedKvsTest, RoutesDirectCallsToOwningStore) {
  ShardMap map;
  KvStore stores[3];
  ShardedKvs kvs;
  for (int i = 0; i < 3; ++i) {
    const std::string endpoint = ShardMap::EndpointForHost(HostName(i));
    map.AddShard(endpoint);
    kvs.AddStore(endpoint, &stores[i]);
  }
  kvs.Attach(&map);

  for (int i = 0; i < 64; ++i) {
    const std::string key = "seed-" + std::to_string(i);
    kvs.Set(key, Bytes{static_cast<uint8_t>(i)});
  }
  size_t total = 0;
  for (int i = 0; i < 64; ++i) {
    const std::string key = "seed-" + std::to_string(i);
    const std::string master = map.MasterFor(key);
    for (int s = 0; s < 3; ++s) {
      const bool owns = ShardMap::EndpointForHost(HostName(s)) == master;
      EXPECT_EQ(stores[s].Exists(key), owns) << key;
    }
    EXPECT_EQ(kvs.Get(key).value(), Bytes{static_cast<uint8_t>(i)});
    total++;
  }
  EXPECT_EQ(kvs.key_count(), total);
}

// Routing client against three host-colocated shard servers.
class KvsRoutingTest : public ::testing::Test {
 protected:
  static constexpr int kHosts = 3;

  KvsRoutingTest() : network_(&clock_, NoLatency()) {
    for (int i = 0; i < kHosts; ++i) {
      const std::string endpoint = ShardMap::EndpointForHost(HostName(i));
      map_.AddShard(endpoint);
      servers_.push_back(std::make_unique<KvsServer>(&stores_[i], &network_, endpoint));
    }
  }

  static NetworkConfig NoLatency() {
    NetworkConfig config;
    config.charge_latency = false;
    return config;
  }

  KvsClient ClientOn(int host) { return KvsClient(&network_, HostName(host), &map_, &stores_[host]); }

  KvStore* StoreMastering(const std::string& key) {
    const std::string master = map_.MasterFor(key);
    for (int i = 0; i < kHosts; ++i) {
      if (ShardMap::EndpointForHost(HostName(i)) == master) {
        return &stores_[i];
      }
    }
    return nullptr;
  }

  RealClock clock_;
  InProcNetwork network_;
  ShardMap map_;
  KvStore stores_[kHosts];
  std::vector<std::unique_ptr<KvsServer>> servers_;
};

TEST_F(KvsRoutingTest, PerKeyOpsLandOnMasterShard) {
  KvsClient client = ClientOn(0);
  for (int i = 0; i < 32; ++i) {
    const std::string key = "k-" + std::to_string(i);
    ASSERT_TRUE(client.Set(key, Bytes{1, 2, 3}).ok());
    EXPECT_TRUE(StoreMastering(key)->Exists(key)) << key;
    EXPECT_EQ(client.Read(key).value(), (Bytes{1, 2, 3}));
  }
}

TEST_F(KvsRoutingTest, SetRangesRoutesToMasterShard) {
  KvsClient client = ClientOn(0);
  const std::string local_key = KeyMasteredOn(map_, ShardMap::EndpointForHost(HostName(0)));
  const std::string remote_key = KeyMasteredOn(map_, ShardMap::EndpointForHost(HostName(1)));
  for (const std::string& key : {local_key, remote_key}) {
    ASSERT_TRUE(client.Set(key, Bytes(6, 0)).ok());
    std::vector<ValueRange> ranges;
    ranges.push_back(ValueRange{1, Bytes{7, 7}});
    ranges.push_back(ValueRange{4, Bytes{8, 8, 8}});
    ASSERT_TRUE(client.SetRanges(key, ranges).ok());
    EXPECT_EQ(StoreMastering(key)->Get(key).value(), (Bytes{0, 7, 7, 0, 8, 8, 8})) << key;
  }
}

TEST_F(KvsRoutingTest, MasterLocalFastPathMovesZeroNetworkBytes) {
  KvsClient client = ClientOn(0);
  const std::string local_key = KeyMasteredOn(map_, ShardMap::EndpointForHost(HostName(0)));
  ASSERT_TRUE(client.MasterLocal(local_key));
  EXPECT_EQ(client.MasterHostFor(local_key), HostName(0));

  network_.ResetStats();
  ASSERT_TRUE(client.Set(local_key, Bytes(4096, 9)).ok());
  EXPECT_EQ(client.Read(local_key).value().size(), 4096u);
  std::vector<ValueRange> ranges;
  ranges.push_back(ValueRange{0, Bytes{1}});
  ASSERT_TRUE(client.SetRanges(local_key, ranges).ok());
  EXPECT_TRUE(client.TryLockWrite(local_key).value());
  ASSERT_TRUE(client.UnlockWrite(local_key).ok());
  EXPECT_TRUE(client.SetAdd(local_key, "member").value());
  EXPECT_EQ(client.SetMembers(local_key).value().size(), 1u);
  EXPECT_TRUE(client.Exists(local_key).value());
  // Every op above targeted a locally-mastered key: all in-process.
  EXPECT_EQ(network_.total_bytes(), 0u);

  // A remote-mastered key pays the round trip.
  const std::string remote_key = KeyMasteredOn(map_, ShardMap::EndpointForHost(HostName(2)));
  ASSERT_FALSE(client.MasterLocal(remote_key));
  network_.ResetStats();
  ASSERT_TRUE(client.Set(remote_key, Bytes(4096, 9)).ok());
  EXPECT_GT(network_.total_bytes(), 4096u);
}

TEST_F(KvsRoutingTest, DistributedLocksAreSharedAcrossRoutes) {
  // host-1 masters the key and locks in process; host-0 contends over the
  // network. Both must see the same lock state.
  KvsClient local = ClientOn(1);
  KvsClient remote = ClientOn(0);
  const std::string key = KeyMasteredOn(map_, ShardMap::EndpointForHost(HostName(1)));
  ASSERT_TRUE(local.MasterLocal(key));
  ASSERT_FALSE(remote.MasterLocal(key));

  EXPECT_TRUE(local.TryLockWrite(key).value());
  EXPECT_FALSE(remote.TryLockWrite(key).value());
  EXPECT_FALSE(remote.TryLockRead(key).value());
  ASSERT_TRUE(local.UnlockWrite(key).ok());
  EXPECT_TRUE(remote.TryLockRead(key).value());
  EXPECT_FALSE(local.TryLockWrite(key).value());
  ASSERT_TRUE(remote.UnlockRead(key).ok());
}

TEST_F(KvsRoutingTest, ClientWithoutLocalShardRoutesEverything) {
  // An external client (no co-located shard) still reaches every key.
  KvsClient client(&network_, "client", &map_, nullptr);
  const std::string key = KeyMasteredOn(map_, ShardMap::EndpointForHost(HostName(0)));
  EXPECT_FALSE(client.MasterLocal(key));
  network_.ResetStats();
  ASSERT_TRUE(client.Set(key, Bytes{5}).ok());
  EXPECT_GT(network_.total_bytes(), 0u);
  EXPECT_EQ(stores_[0].Get(key).value(), (Bytes{5}));
}

}  // namespace
}  // namespace faasm
