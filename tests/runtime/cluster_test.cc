// FAASM cluster integration tests: scheduling, chaining, warm sharing, cold
// starts with cross-host Proto-Faaslet restores, memory accounting.
#include "runtime/cluster.h"

#include <gtest/gtest.h>

#include "core/guest_api.h"
#include "state/ddo.h"

namespace faasm {
namespace {

ClusterConfig SmallCluster(int hosts = 2) {
  ClusterConfig config;
  config.hosts = hosts;
  config.cores_per_host = 2;
  return config;
}

TEST(ClusterTest, InvokeNativeFunction) {
  FaasmCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("double",
                                  [](InvocationContext& ctx) {
                                    ByteReader reader(ctx.Input());
                                    auto v = reader.Get<uint32_t>();
                                    Bytes out;
                                    ByteWriter writer(out);
                                    writer.Put<uint32_t>(v.value() * 2);
                                    ctx.WriteOutput(std::move(out));
                                    return 0;
                                  })
                  .ok());

  uint32_t result = 0;
  cluster.Run([&](Frontend& frontend) {
    Bytes input;
    ByteWriter writer(input);
    writer.Put<uint32_t>(21);
    auto id = frontend.Submit("double", std::move(input));
    ASSERT_TRUE(id.ok());
    auto code = frontend.Await(id.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 0);
    auto output = frontend.Output(id.value());
    ASSERT_TRUE(output.ok());
    ByteReader reader(output.value());
    result = reader.Get<uint32_t>().value();
  });
  EXPECT_EQ(result, 42u);
}

TEST(ClusterTest, UnknownFunctionRejected) {
  FaasmCluster cluster(SmallCluster(1));
  cluster.Run([&](Frontend& frontend) {
    EXPECT_EQ(frontend.Submit("nope", {}).status().code(), StatusCode::kNotFound);
  });
}

TEST(ClusterTest, FailingFunctionReportsError) {
  FaasmCluster cluster(SmallCluster(1));
  ASSERT_TRUE(
      cluster.registry().RegisterNative("boom", [](InvocationContext&) { return 13; }).ok());
  cluster.Run([&](Frontend& frontend) {
    auto code = frontend.Invoke("boom", {});
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 13);
  });
}

TEST(ClusterTest, ChainedCallsAcrossFunctions) {
  FaasmCluster cluster(SmallCluster());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("leaf",
                                  [](InvocationContext& ctx) {
                                    Bytes out = ctx.Input();
                                    out.push_back(1);
                                    ctx.WriteOutput(std::move(out));
                                    return 0;
                                  })
                  .ok());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("parent",
                                  [](InvocationContext& ctx) {
                                    auto id = ctx.ChainCall("leaf", Bytes{7});
                                    if (!id.ok()) {
                                      return 2;
                                    }
                                    auto code = ctx.AwaitCall(id.value());
                                    if (!code.ok() || code.value() != 0) {
                                      return 3;
                                    }
                                    auto out = ctx.GetCallOutput(id.value());
                                    if (!out.ok()) {
                                      return 4;
                                    }
                                    ctx.WriteOutput(std::move(out).value());
                                    return 0;
                                  })
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    auto id = frontend.Submit("parent", {});
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(frontend.Await(id.value()).value(), 0);
    EXPECT_EQ(frontend.Output(id.value()).value(), (Bytes{7, 1}));
  });
}

TEST(ClusterTest, FanOutChainAndAwaitAll) {
  FaasmCluster cluster(SmallCluster(3));
  std::atomic<int> executions{0};
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("work",
                                  [&executions](InvocationContext&) {
                                    executions.fetch_add(1);
                                    return 0;
                                  })
                  .ok());
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("fan",
                                  [](InvocationContext& ctx) {
                                    std::vector<Bytes> inputs(16);
                                    auto out = ChainAndAwaitAll(ctx, "work", inputs);
                                    return out.ok() ? out.value() : 9;
                                  })
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    EXPECT_EQ(frontend.Invoke("fan", {}).value(), 0);
  });
  EXPECT_EQ(executions.load(), 16);
}

TEST(ClusterTest, WarmSchedulingAvoidsRedundantColdStarts) {
  FaasmCluster cluster(SmallCluster(4));
  ASSERT_TRUE(
      cluster.registry().RegisterNative("fn", [](InvocationContext&) { return 0; }).ok());
  cluster.Run([&](Frontend& frontend) {
    // Sequential calls land round-robin on all hosts, but with warm sharing
    // only the first call should cold start; the rest are forwarded to the
    // warm host.
    for (int call = 0; call < 12; ++call) {
      auto id = frontend.Submit("fn", {});
      ASSERT_TRUE(id.ok());
      ASSERT_EQ(frontend.Await(id.value()).value(), 0);
    }
  });
  EXPECT_EQ(cluster.cold_start_count(), 1u);
  EXPECT_EQ(cluster.warm_faaslet_count(), 1u);
  // The warm-host set in the global tier names exactly one host.
  EXPECT_EQ(cluster.kvs().SetMembers("warm:fn").size(), 1u);
}

TEST(ClusterTest, ProtoFaasletPublishedToGlobalTierForWasm) {
  FaasmCluster cluster(SmallCluster(2));
  wasm::ModuleBuilder b;
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {wasm::ValType::kI32});
  f.I32Const(0);
  f.End();
  ASSERT_TRUE(cluster.registry().UploadWasm("fn", b.Build()).ok());
  cluster.Run([&](Frontend& frontend) {
    ASSERT_EQ(frontend.Invoke("fn", {}).value(), 0);
  });
  // The initialised snapshot is in the global tier for cross-host restores.
  EXPECT_TRUE(cluster.kvs().Exists("proto:fn"));
}

TEST(ClusterTest, StateSharedBetweenCallsOnSameHost) {
  FaasmCluster cluster(SmallCluster(1));
  cluster.kvs().Set("counter", Bytes(8, 0));
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("increment",
                                  [](InvocationContext& ctx) {
                                    SharedArray<uint64_t> counter(&ctx.state(), "counter");
                                    if (!counter.Attach().ok()) {
                                      return 1;
                                    }
                                    counter.kv().LockWrite();
                                    counter[0] += 1;
                                    counter.kv().UnlockWrite();
                                    return counter.Push().ok() ? 0 : 2;
                                  })
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    for (int i = 0; i < 10; ++i) {
      ASSERT_EQ(frontend.Invoke("increment", {}).value(), 0);
    }
  });
  auto value = cluster.kvs().Get("counter");
  ASSERT_TRUE(value.ok());
  uint64_t count = 0;
  std::memcpy(&count, value.value().data(), 8);
  EXPECT_EQ(count, 10u);
}

TEST(ClusterTest, BillableMemoryGrowsWithWork) {
  FaasmCluster cluster(SmallCluster(1));
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("sleepy",
                                  [](InvocationContext& ctx) {
                                    ctx.ChargeCompute(50 * kMillisecond);
                                    return 0;
                                  })
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    ASSERT_EQ(frontend.Invoke("sleepy", {}).value(), 0);
  });
  EXPECT_GT(cluster.billable_gb_seconds(), 0.0);
  EXPECT_GT(cluster.host(0).memory_accountant().peak_bytes(), 0u);
}

TEST(ClusterTest, CallRecordsCaptureTimeline) {
  FaasmCluster cluster(SmallCluster(1));
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("timed",
                                  [](InvocationContext& ctx) {
                                    ctx.ChargeCompute(10 * kMillisecond);
                                    return 0;
                                  })
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    ASSERT_EQ(frontend.Invoke("timed", {}).value(), 0);
  });
  auto records = cluster.calls().FinishedRecords();
  ASSERT_EQ(records.size(), 1u);
  const CallRecord& record = records[0];
  EXPECT_TRUE(record.cold_start);
  EXPECT_GE(record.started_at, record.submitted_at);
  EXPECT_GE(record.finished_at - record.started_at, 10 * kMillisecond);
}

TEST(ClusterTest, WasmFunctionThroughUploadService) {
  FaasmCluster cluster(SmallCluster(2));
  // Build a wasm echo binary and push it through the upload path (decode +
  // validate + codegen), then invoke it like any function.
  wasm::ModuleBuilder b;
  GuestApi api = GuestApi::ImportAll(b);
  b.AddMemory(1, 4);
  auto& f = b.AddFunction("main", {}, {wasm::ValType::kI32});
  const uint32_t len = f.AddLocal(wasm::ValType::kI32);
  f.I32Const(64);
  f.I32Const(256);
  f.Call(api.read_input);
  f.LocalSet(len);
  f.I32Const(64);
  f.LocalGet(len);
  f.Call(api.write_output);
  f.I32Const(0);
  f.End();
  ASSERT_TRUE(cluster.registry().UploadWasm("wasm_echo", b.Build()).ok());

  cluster.Run([&](Frontend& frontend) {
    auto id = frontend.Submit("wasm_echo", Bytes{3, 1, 4});
    ASSERT_TRUE(id.ok());
    ASSERT_EQ(frontend.Await(id.value()).value(), 0);
    EXPECT_EQ(frontend.Output(id.value()).value(), (Bytes{3, 1, 4}));
  });
}

TEST(ClusterTest, StateAffinityPlacesFunctionOnStateMasterHost) {
  // With the sharded tier, a function declaring a state-affinity key should
  // land on the host mastering that key's shard — where its push/pull are
  // free — no matter which host the frontend submits it to.
  FaasmCluster cluster(SmallCluster(4));
  const std::string key = "affine-state";
  cluster.kvs().Set(key, Bytes(8, 0));
  std::string master = ShardMap::HostForEndpoint(cluster.shard_map().MasterFor(key));
  ASSERT_FALSE(master.empty());

  FunctionOptions options;
  options.state_affinity_key = key;
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative(
                      "affine",
                      [key](InvocationContext& ctx) {
                        auto kv = ctx.state().Lookup(key);
                        return kv->Pull().ok() && kv->master_local() ? 0 : 1;
                      },
                      options)
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    // Round-robin submissions from every host all converge on the master.
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(frontend.Invoke("affine", {}).value(), 0);
    }
  });
  for (const CallRecord& record : cluster.calls().FinishedRecords()) {
    EXPECT_EQ(record.executed_on, master);
  }
}

TEST(ClusterTest, WarmSetCacheCutsSteadyStateSubmitTraffic) {
  // Steady-state submits must not pay a SetMembers round trip per call: the
  // cached warm-set view serves scheduling decisions within its TTL.
  auto run = [](TimeNs ttl) {
    ClusterConfig config = SmallCluster(4);
    // Centralised tier so every warm-set fetch is a remote, accounted RPC.
    config.state_tier = StateTier::kCentral;
    config.warm_set_ttl_ns = ttl;
    FaasmCluster cluster(config);
    EXPECT_TRUE(
        cluster.registry().RegisterNative("fn", [](InvocationContext&) { return 0; }).ok());
    cluster.Run([&](Frontend& frontend) {
      for (int i = 0; i < 24; ++i) {
        ASSERT_EQ(frontend.Invoke("fn", {}).value(), 0);
      }
    });
    return cluster.network_bytes();
  };
  const uint64_t uncached = run(0);
  const uint64_t cached = run(50 * kMillisecond);
  EXPECT_LT(cached, uncached) << "cached=" << cached << " uncached=" << uncached;
}

TEST(ClusterTest, RemoveHostUnderLoadDrainsInsteadOfAsserting) {
  // Regression (ISSUE 4): removing a host that is actively executing
  // functions must drain — stop new placements, let in-flight calls (and
  // queued mailbox work) finish — and every acknowledged call completes.
  FaasmCluster cluster(SmallCluster(3));
  ASSERT_TRUE(cluster.registry()
                  .RegisterNative("slow",
                                  [](InvocationContext& ctx) {
                                    ctx.ChargeCompute(20 * kMillisecond);
                                    return 0;
                                  })
                  .ok());
  cluster.Run([&](Frontend& frontend) {
    // Saturate all hosts (round-robin lands work on host-1 too), then
    // remove host-1 while its calls are mid-execution.
    std::vector<uint64_t> ids;
    for (int i = 0; i < 18; ++i) {
      auto id = frontend.Submit("slow", {});
      ASSERT_TRUE(id.ok());
      ids.push_back(id.value());
    }
    ASSERT_TRUE(cluster.RemoveHost("host-1").ok());
    // Removing an unknown (or already removed) host is an error, not a
    // crash; the last host may never be removed.
    EXPECT_EQ(cluster.RemoveHost("host-1").code(), StatusCode::kNotFound);
    for (uint64_t id : ids) {
      auto code = frontend.Await(id);
      ASSERT_TRUE(code.ok()) << code.status().ToString();
      EXPECT_EQ(code.value(), 0);
    }
    // The drained host advertises nowhere, and new work still flows.
    for (const std::string& host : cluster.kvs().SetMembers("warm:slow")) {
      EXPECT_NE(host, "host-1");
    }
    EXPECT_EQ(frontend.Invoke("slow", {}).value(), 0);
  });
  EXPECT_EQ(cluster.host_count(), 2u);
  // Every call in the run completed; none were lost in the removal.
  for (const CallRecord& record : cluster.calls().FinishedRecords()) {
    EXPECT_EQ(record.state, CallState::kDone);
  }
}

TEST(ClusterTest, AddHostJoinsWarmSharingAndAffinity) {
  // A host added at runtime serves its shard and participates in affinity
  // placement: a function whose state key is mastered by the NEW host's
  // shard runs there with the master-local fast path.
  FaasmCluster cluster(SmallCluster(2));
  cluster.Run([&](Frontend& frontend) {
    auto added = cluster.AddHost();
    ASSERT_TRUE(added.ok());
    ASSERT_EQ(cluster.host_count(), 3u);

    // Probe a key the new host masters (post-flip map).
    const std::string new_endpoint = ShardMap::EndpointForHost(added.value());
    std::string key;
    for (int i = 0; i < 100000 && key.empty(); ++i) {
      std::string probe = "probe-" + std::to_string(i);
      if (cluster.shard_map().MasterFor(probe) == new_endpoint) {
        key = std::move(probe);
      }
    }
    ASSERT_FALSE(key.empty());
    ASSERT_TRUE(cluster.kvs().Set(key, Bytes(8, 0)).ok());

    FunctionOptions options;
    options.state_affinity_key = key;
    ASSERT_TRUE(cluster.registry()
                    .RegisterNative(
                        "affine-late",
                        [key](InvocationContext& ctx) {
                          auto kv = ctx.state().Lookup(key);
                          return kv->Pull().ok() && kv->master_local() ? 0 : 1;
                        },
                        options)
                    .ok());
    for (int i = 0; i < 6; ++i) {
      EXPECT_EQ(frontend.Invoke("affine-late", {}).value(), 0);
    }
    for (const CallRecord& record : cluster.calls().FinishedRecords()) {
      EXPECT_EQ(record.executed_on, added.value());
    }
  });
}

TEST(ClusterTest, MalformedWasmRejectedAtUpload) {
  FaasmCluster cluster(SmallCluster(1));
  EXPECT_FALSE(cluster.registry().UploadWasm("bad", Bytes{1, 2, 3}).ok());
  wasm::ModuleBuilder b;
  auto& f = b.AddFunction("main", {}, {wasm::ValType::kI32});
  f.End();  // missing result: validation must reject
  EXPECT_FALSE(cluster.registry().UploadWasm("illtyped", b.Build()).ok());
}

}  // namespace
}  // namespace faasm
