#include "kvs/batch_codec.h"

#include <algorithm>

namespace faasm {

namespace {

// One body serving both dialects: the replica channel inserts its apply
// sequence between the key and the args and admits the lock ops.
Bytes EncodeOpImpl(const KvsBatchOp& op, bool replica, uint64_t seq) {
  Bytes out;
  out.reserve(16);  // quiets a GCC 12 -Wstringop-overflow false positive
  ByteWriter writer(out);
  writer.Put<uint8_t>(static_cast<uint8_t>(op.op));
  writer.PutString(op.key);
  if (replica) {
    writer.Put<uint64_t>(seq);
  }
  switch (op.op) {
    case KvsOp::kGet:
    case KvsOp::kDelete:
      break;
    case KvsOp::kGetRange:
      writer.Put<uint64_t>(op.offset);
      writer.Put<uint64_t>(op.len);
      break;
    case KvsOp::kSet:
    case KvsOp::kAppend:
      writer.PutBytes(op.bytes);
      break;
    case KvsOp::kSetRange:
      writer.Put<uint64_t>(op.offset);
      writer.PutBytes(op.bytes);
      break;
    case KvsOp::kSetRanges: {
      writer.Put<uint32_t>(static_cast<uint32_t>(op.ranges.size()));
      for (const ValueRange& range : op.ranges) {
        writer.Put<uint64_t>(range.offset);
        writer.PutBytes(range.bytes);
      }
      break;
    }
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove:
      writer.PutString(op.member);
      break;
    case KvsOp::kLockRead:
    case KvsOp::kLockWrite:
    case KvsOp::kUnlockRead:
    case KvsOp::kUnlockWrite:
      // Replica dialect only: the lock owner (public batches cannot carry
      // lock ops, so this arm never shapes a public byte).
      writer.PutString(op.member);
      break;
    default:
      break;  // not batchable; the server answers InvalidArgument
  }
  return out;
}

Result<KvsBatchOp> DecodeOpImpl(const Bytes& part, bool replica) {
  ByteReader reader(part);
  KvsBatchOp op;
  FAASM_ASSIGN_OR_RETURN(uint8_t code, reader.Get<uint8_t>());
  op.op = static_cast<KvsOp>(code);
  FAASM_ASSIGN_OR_RETURN(op.key, reader.GetString());
  if (replica) {
    FAASM_ASSIGN_OR_RETURN(op.seq, reader.Get<uint64_t>());
  }
  switch (op.op) {
    case KvsOp::kGet:
    case KvsOp::kDelete:
      break;
    case KvsOp::kGetRange: {
      FAASM_ASSIGN_OR_RETURN(op.offset, reader.Get<uint64_t>());
      FAASM_ASSIGN_OR_RETURN(op.len, reader.Get<uint64_t>());
      break;
    }
    case KvsOp::kSet:
    case KvsOp::kAppend: {
      FAASM_ASSIGN_OR_RETURN(op.bytes, reader.GetBytes());
      break;
    }
    case KvsOp::kSetRange: {
      FAASM_ASSIGN_OR_RETURN(op.offset, reader.Get<uint64_t>());
      FAASM_ASSIGN_OR_RETURN(op.bytes, reader.GetBytes());
      break;
    }
    case KvsOp::kSetRanges: {
      FAASM_ASSIGN_OR_RETURN(uint32_t count, reader.Get<uint32_t>());
      op.ranges.reserve(std::min<uint32_t>(count, 1024));
      for (uint32_t i = 0; i < count; ++i) {
        ValueRange range;
        FAASM_ASSIGN_OR_RETURN(range.offset, reader.Get<uint64_t>());
        FAASM_ASSIGN_OR_RETURN(range.bytes, reader.GetBytes());
        op.ranges.push_back(std::move(range));
      }
      break;
    }
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove: {
      FAASM_ASSIGN_OR_RETURN(op.member, reader.GetString());
      break;
    }
    case KvsOp::kLockRead:
    case KvsOp::kLockWrite:
    case KvsOp::kUnlockRead:
    case KvsOp::kUnlockWrite: {
      if (!replica) {
        return InvalidArgument("kvs: op not batchable");
      }
      FAASM_ASSIGN_OR_RETURN(op.member, reader.GetString());
      break;
    }
    default:
      return InvalidArgument("kvs: op not batchable");
  }
  return op;
}

}  // namespace

void WriteStatus(ByteWriter& writer, const Status& status) {
  writer.Put<uint8_t>(static_cast<uint8_t>(status.code()));
}

Status ReadStatus(ByteReader& reader) {
  auto code = reader.Get<uint8_t>();
  if (!code.ok()) {
    return Internal("kvs: malformed response");
  }
  const auto status_code = static_cast<StatusCode>(code.value());
  if (status_code == StatusCode::kOk) {
    return OkStatus();
  }
  return Status(status_code, "kvs remote error");
}

Bytes EncodeBatchOp(const KvsBatchOp& op) { return EncodeOpImpl(op, /*replica=*/false, 0); }

Result<KvsBatchOp> DecodeBatchOp(const Bytes& part) {
  return DecodeOpImpl(part, /*replica=*/false);
}

Bytes EncodeReplicaOp(const KvsBatchOp& op, uint64_t seq) {
  return EncodeOpImpl(op, /*replica=*/true, seq);
}

Result<KvsBatchOp> DecodeReplicaOp(const Bytes& part) {
  return DecodeOpImpl(part, /*replica=*/true);
}

Bytes EncodeBatchResult(const KvsOp op, const KvsBatchResult& result) {
  Bytes out;
  out.reserve(16);  // quiets a GCC 12 -Wstringop-overflow false positive
  ByteWriter writer(out);
  WriteStatus(writer, result.status);
  if (!result.status.ok()) {
    return out;
  }
  switch (op) {
    case KvsOp::kGet:
    case KvsOp::kGetRange:
      writer.PutBytes(result.value);
      break;
    case KvsOp::kAppend:
      writer.Put<uint64_t>(result.length);
      break;
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove:
    case KvsOp::kLockRead:
    case KvsOp::kLockWrite:
      writer.Put<uint8_t>(result.flag ? 1 : 0);
      break;
    default:
      break;
  }
  return out;
}

KvsBatchResult DecodeBatchResult(const KvsOp op, const Bytes& part) {
  KvsBatchResult result;
  ByteReader reader(part);
  result.status = ReadStatus(reader);
  if (!result.status.ok()) {
    return result;
  }
  switch (op) {
    case KvsOp::kGet:
    case KvsOp::kGetRange: {
      auto value = reader.GetBytes();
      if (!value.ok()) {
        result.status = value.status();
      } else {
        result.value = std::move(value).value();
      }
      break;
    }
    case KvsOp::kAppend: {
      auto length = reader.Get<uint64_t>();
      if (!length.ok()) {
        result.status = length.status();
      } else {
        result.length = length.value();
      }
      break;
    }
    case KvsOp::kSetAdd:
    case KvsOp::kSetRemove:
    case KvsOp::kLockRead:
    case KvsOp::kLockWrite: {
      auto flag = reader.Get<uint8_t>();
      if (!flag.ok()) {
        result.status = flag.status();
      } else {
        result.flag = flag.value() != 0;
      }
      break;
    }
    default:
      break;
  }
  return result;
}

}  // namespace faasm
