#include "core/faaslet.h"

#include <algorithm>
#include <cstring>

#include "common/log.h"
#include "wasm/decoder.h"

namespace faasm {

// Declared in host_interface.cc: binds the Table 2 API as wasm imports.
void RegisterHostInterface(Faaslet& faaslet, wasm::MapImportResolver& resolver);

std::atomic<uint64_t> Faaslet::next_id_{1};

Faaslet::Faaslet(FunctionSpec spec, FaasletEnv env)
    : spec_(std::move(spec)),
      env_(std::move(env)),
      id_(next_id_.fetch_add(1)),
      rng_(env_.rng_seed ^ id_),
      vfs_(env_.files),
      vnet_shaper_(env_.vnet_rate_bytes_per_sec, env_.vnet_burst_bytes) {}

Faaslet::~Faaslet() = default;

Result<std::unique_ptr<Faaslet>> Faaslet::Create(FunctionSpec spec, FaasletEnv env) {
  if (env.clock == nullptr || env.tier == nullptr || env.files == nullptr) {
    return InvalidArgument("FaasletEnv requires clock, tier and files");
  }
  auto faaslet = std::unique_ptr<Faaslet>(new Faaslet(std::move(spec), std::move(env)));
  FAASM_RETURN_IF_ERROR(faaslet->Instantiate());
  FAASM_RETURN_IF_ERROR(faaslet->RunInitCode());
  faaslet->created_at_ = faaslet->env_.clock->Now();
  // Capture the creation snapshot used to reset between calls. The memory now
  // matches the snapshot exactly, so future resets only need dirty pages.
  FAASM_ASSIGN_OR_RETURN(faaslet->reset_proto_, ProtoFaaslet::CaptureFrom(*faaslet));
  faaslet->memory_->dirty().ClearDirty();
  faaslet->snapshot_synced_ = true;
  return faaslet;
}

Result<std::unique_ptr<Faaslet>> Faaslet::CreateFromProto(
    FunctionSpec spec, FaasletEnv env, std::shared_ptr<const ProtoFaaslet> proto) {
  if (env.clock == nullptr || env.tier == nullptr || env.files == nullptr) {
    return InvalidArgument("FaasletEnv requires clock, tier and files");
  }
  auto faaslet = std::unique_ptr<Faaslet>(new Faaslet(std::move(spec), std::move(env)));
  FAASM_RETURN_IF_ERROR(faaslet->Instantiate());
  FAASM_RETURN_IF_ERROR(proto->RestoreInto(*faaslet));
  faaslet->created_at_ = faaslet->env_.clock->Now();
  faaslet->reset_proto_ = std::move(proto);
  faaslet->snapshot_synced_ = true;  // full CoW restore just ran
  return faaslet;
}

Status Faaslet::Instantiate() {
  uint32_t min_pages = spec_.min_memory_pages;
  uint32_t max_pages = spec_.max_memory_pages;
  if (spec_.module != nullptr && spec_.module->module.memory.has_value()) {
    min_pages = std::max(min_pages, spec_.module->module.memory->min);
    if (spec_.module->module.memory->has_max) {
      max_pages = std::min(max_pages, spec_.module->module.memory->max);
    }
  }
  FAASM_ASSIGN_OR_RETURN(memory_, LinearMemory::Create(min_pages, max_pages));

  if (spec_.module != nullptr) {
    resolver_ = std::make_unique<wasm::MapImportResolver>();
    RegisterHostInterface(*this, *resolver_);
    wasm::InstanceOptions instance_options;
    instance_options.bounds = env_.guest_bounds;
    instance_options.dispatch = env_.guest_dispatch;
    FAASM_ASSIGN_OR_RETURN(instance_, wasm::Instance::Create(spec_.module, resolver_.get(),
                                                             memory_.get(), instance_options));
  } else if (!spec_.native) {
    return InvalidArgument("FunctionSpec has neither wasm module nor native function");
  }
  return OkStatus();
}

Status Faaslet::RunInitCode() {
  if (spec_.simulated_init_ns > 0) {
    env_.clock->SleepFor(spec_.simulated_init_ns);
  }
  if (instance_ != nullptr && !spec_.wasm_init_export.empty()) {
    auto result = instance_->CallExport(spec_.wasm_init_export, {});
    FAASM_RETURN_IF_ERROR(result.status());
  }
  if (spec_.native && spec_.native_init) {
    FAASM_RETURN_IF_ERROR(spec_.native_init(*this));
  }
  return OkStatus();
}

Result<int> Faaslet::Execute(Bytes input) {
  input_ = std::move(input);
  output_.clear();

  if (instance_ != nullptr) {
    auto result = instance_->CallExport(spec_.entrypoint, {});
    if (!result.ok()) {
      return result.status();
    }
    return result.value().empty() ? 0 : static_cast<int>(result.value()[0].i32);
  }
  return spec_.native(*this);
}

Status Faaslet::Reset() {
  if (reset_proto_ == nullptr) {
    return FailedPrecondition("Faaslet has no creation snapshot");
  }
  if (snapshot_synced_) {
    // Warm reset: non-dirty pages still match the snapshot; restore only the
    // pages written since the last reset.
    return reset_proto_->RestoreDirtyInto(*this);
  }
  FAASM_RETURN_IF_ERROR(reset_proto_->RestoreInto(*this));
  snapshot_synced_ = true;
  return OkStatus();
}

void Faaslet::ChargeCompute(TimeNs ns) {
  if (env_.cpu != nullptr) {
    env_.cpu->Charge(ns);
  }
}

Result<uint64_t> Faaslet::ChainCall(const std::string& function, Bytes input) {
  if (!env_.chain) {
    return Unimplemented("chain_call: Faaslet not attached to a runtime");
  }
  // Host-interface sync point of the batched push protocol: the chained
  // call may read state this call pushed, so pending batched ops must be
  // durable before the chain is submitted.
  if (env_.tier != nullptr) {
    FAASM_RETURN_IF_ERROR(env_.tier->FlushBatched());
  }
  return env_.chain(function, std::move(input));
}

Result<int> Faaslet::AwaitCall(uint64_t call_id) {
  if (!env_.await) {
    return Unimplemented("await_call: Faaslet not attached to a runtime");
  }
  // Sync point (see ChainCall): awaiting establishes ordering with the
  // awaited call's observers.
  if (env_.tier != nullptr) {
    FAASM_RETURN_IF_ERROR(env_.tier->FlushBatched());
  }
  return env_.await(call_id);
}

Result<Bytes> Faaslet::GetCallOutput(uint64_t call_id) {
  if (!env_.get_output) {
    return Unimplemented("get_call_output: Faaslet not attached to a runtime");
  }
  return env_.get_output(call_id);
}

Result<uint32_t> Faaslet::MapStateIntoGuest(const std::string& key, size_t len) {
  auto it = guest_state_offsets_.find(key);
  if (it != guest_state_offsets_.end()) {
    return it->second;
  }
  std::shared_ptr<StateKeyValue> kv = env_.tier->Lookup(key);
  FAASM_RETURN_IF_ERROR(kv->EnsureCapacity(len));
  FAASM_ASSIGN_OR_RETURN(uint32_t offset, memory_->MapSharedRegion(kv->region()));
  guest_state_offsets_[key] = offset;
  return offset;
}

size_t Faaslet::FootprintBytes() const {
  size_t bytes = memory_->private_bytes();
  bytes += sizeof(Faaslet);
  if (instance_ != nullptr) {
    bytes += 4096 * sizeof(wasm::Value);  // interpreter stack reservation
  }
  return bytes;
}

void Faaslet::ShapeTraffic(size_t bytes) {
  const TimeNs now = env_.clock->Now();
  const TimeNs ready = vnet_shaper_.NextAvailable(static_cast<double>(bytes), now);
  if (ready > now) {
    env_.clock->SleepFor(ready - now);
  }
  // Oversized transfers already paid for the overflow as wait time; drain at
  // most one burst from the bucket.
  vnet_shaper_.TryConsume(std::min(static_cast<double>(bytes), vnet_shaper_.burst()), ready);
}

Result<Bytes> Faaslet::VnetCall(const std::string& endpoint, const Bytes& request) {
  if (env_.network == nullptr) {
    return Unavailable("Faaslet has no network attached");
  }
  ShapeTraffic(request.size());
  return env_.network->Call(env_.host_endpoint, endpoint, request);
}

// --- Virtual sockets -----------------------------------------------------------

int Faaslet::SocketOpen() {
  const int fd = next_socket_fd_++;
  sockets_[fd] = VSocket{};
  return fd;
}

Status Faaslet::SocketConnect(int fd, const std::string& endpoint) {
  auto it = sockets_.find(fd);
  if (it == sockets_.end()) {
    return InvalidArgument("connect on unknown socket");
  }
  it->second.endpoint = endpoint;
  return OkStatus();
}

Result<size_t> Faaslet::SocketSend(int fd, const uint8_t* data, size_t len) {
  auto it = sockets_.find(fd);
  if (it == sockets_.end()) {
    return InvalidArgument("send on unknown socket");
  }
  if (it->second.endpoint.empty()) {
    return FailedPrecondition("send on unconnected socket");
  }
  it->second.tx.insert(it->second.tx.end(), data, data + len);
  return len;
}

Result<size_t> Faaslet::SocketRecv(int fd, uint8_t* buf, size_t len) {
  auto it = sockets_.find(fd);
  if (it == sockets_.end()) {
    return InvalidArgument("recv on unknown socket");
  }
  VSocket& sock = it->second;
  if (sock.rx_cursor >= sock.rx.size()) {
    // Flush the buffered request through the shaped interface and buffer the
    // response.
    FAASM_ASSIGN_OR_RETURN(Bytes response, VnetCall(sock.endpoint, sock.tx));
    ShapeTraffic(response.size());
    sock.tx.clear();
    sock.rx = std::move(response);
    sock.rx_cursor = 0;
  }
  const size_t n = std::min(len, sock.rx.size() - sock.rx_cursor);
  std::memcpy(buf, sock.rx.data() + sock.rx_cursor, n);
  sock.rx_cursor += n;
  return n;
}

Status Faaslet::SocketClose(int fd) {
  if (sockets_.erase(fd) == 0) {
    return InvalidArgument("close on unknown socket");
  }
  return OkStatus();
}

// --- Dynamic loading -------------------------------------------------------------

Result<uint32_t> Faaslet::DlOpen(const std::string& path) {
  // Load the binary through the filesystem abstraction (same safety pipeline
  // as any uploaded code: decode, validate, then instantiate).
  FAASM_ASSIGN_OR_RETURN(int fd, vfs_.Open(path, VirtualFilesystem::kOpenRead));
  FAASM_ASSIGN_OR_RETURN(auto stat, vfs_.StatPath(path));
  Bytes binary(stat.size);
  FAASM_ASSIGN_OR_RETURN(size_t n, vfs_.Read(fd, binary.data(), binary.size()));
  (void)vfs_.Close(fd);
  if (n != binary.size()) {
    return Internal("dlopen: short read of " + path);
  }
  FAASM_ASSIGN_OR_RETURN(wasm::Module module, wasm::DecodeModule(binary));
  FAASM_ASSIGN_OR_RETURN(auto compiled, wasm::CompileModule(std::move(module)));
  // The loaded module shares this Faaslet's memory — the dynamic-linking
  // convention of a shared address space. It runs on the same guest tiers as
  // the main instance.
  wasm::InstanceOptions dyn_options;
  dyn_options.bounds = env_.guest_bounds;
  dyn_options.dispatch = env_.guest_dispatch;
  FAASM_ASSIGN_OR_RETURN(auto instance, wasm::Instance::Create(compiled, resolver_.get(),
                                                               memory_.get(), dyn_options));
  DynModule dyn;
  dyn.instance = std::move(instance);
  dyn_modules_.push_back(std::move(dyn));
  return static_cast<uint32_t>(dyn_modules_.size() - 1);
}

Result<uint32_t> Faaslet::DlSym(uint32_t handle, const std::string& symbol) {
  if (handle >= dyn_modules_.size()) {
    return InvalidArgument("dlsym: bad handle");
  }
  DynModule& dyn = dyn_modules_[handle];
  if (dyn.instance == nullptr) {
    return FailedPrecondition("dlsym: module closed");
  }
  auto cached = dyn.symbol_ids.find(symbol);
  if (cached != dyn.symbol_ids.end()) {
    return cached->second;
  }
  auto func = dyn.instance->compiled().module.FindExport(symbol, wasm::ExternalKind::kFunction);
  if (!func.has_value()) {
    return NotFound("dlsym: no symbol '" + symbol + "'");
  }
  dyn_symbols_.emplace_back(handle, *func);
  const uint32_t symbol_id = static_cast<uint32_t>(dyn_symbols_.size() - 1);
  dyn.symbol_ids[symbol] = symbol_id;
  return symbol_id;
}

Result<int32_t> Faaslet::DynCall(uint32_t symbol_id, int32_t arg) {
  if (symbol_id >= dyn_symbols_.size()) {
    return InvalidArgument("dyn_call: bad symbol id");
  }
  const auto [handle, func_index] = dyn_symbols_[symbol_id];
  DynModule& dyn = dyn_modules_[handle];
  if (dyn.instance == nullptr) {
    return FailedPrecondition("dyn_call: module closed");
  }
  auto result =
      dyn.instance->CallFunction(func_index, {wasm::MakeI32(static_cast<uint32_t>(arg))});
  if (!result.ok()) {
    return result.status();
  }
  return result.value().empty() ? 0 : static_cast<int32_t>(result.value()[0].i32);
}

Status Faaslet::DlClose(uint32_t handle) {
  if (handle >= dyn_modules_.size() || dyn_modules_[handle].instance == nullptr) {
    return InvalidArgument("dlclose: bad handle");
  }
  dyn_modules_[handle].instance.reset();
  return OkStatus();
}

TimeNs Faaslet::MonotonicTimeNs() const { return env_.clock->Now() - created_at_; }

// --- ProtoFaaslet ------------------------------------------------------------------

Result<std::shared_ptr<const ProtoFaaslet>> ProtoFaaslet::CaptureFrom(const Faaslet& faaslet) {
  auto proto = std::shared_ptr<ProtoFaaslet>(new ProtoFaaslet());
  proto->function_ = faaslet.function();
  // Snapshot only the private prefix: shared regions belong to the state
  // tier, not to the function image.
  const size_t private_bytes = faaslet.memory().private_bytes();
  FAASM_ASSIGN_OR_RETURN(
      proto->snapshot_,
      MemorySnapshot::Capture("proto:" + proto->function_, faaslet.memory().base(),
                              private_bytes));
  if (faaslet.instance_ != nullptr) {
    proto->globals_ = faaslet.instance_->globals();
  }
  return std::shared_ptr<const ProtoFaaslet>(std::move(proto));
}

Status ProtoFaaslet::RestoreCommon(Faaslet& faaslet,
                                   const std::function<Status()>& restore_memory) const {
  if (faaslet.function() != function_) {
    return InvalidArgument("proto-faaslet function mismatch");
  }
  FAASM_RETURN_IF_ERROR(restore_memory());
  if (faaslet.instance_ != nullptr) {
    FAASM_RETURN_IF_ERROR(faaslet.instance_->SetGlobals(globals_));
  }
  faaslet.guest_state_offsets_.clear();
  faaslet.vfs_.Reset();
  faaslet.sockets_.clear();
  faaslet.input_.clear();
  faaslet.output_.clear();
  return OkStatus();
}

Status ProtoFaaslet::RestoreInto(Faaslet& faaslet) const {
  return RestoreCommon(faaslet, [&] { return snapshot_->RestoreInto(*faaslet.memory_); });
}

Status ProtoFaaslet::RestoreDirtyInto(Faaslet& faaslet) const {
  return RestoreCommon(faaslet, [&] { return snapshot_->RestoreDirty(*faaslet.memory_); });
}

Status ProtoFaaslet::RestoreIntoEager(Faaslet& faaslet) const {
  return RestoreCommon(faaslet, [&] {
    const Bytes image = snapshot_->Serialize();
    return faaslet.memory_->RestoreFromBytes(image.data(), image.size());
  });
}

Bytes ProtoFaaslet::Serialize() const {
  Bytes out;
  ByteWriter writer(out);
  writer.PutString(function_);
  writer.Put<uint32_t>(static_cast<uint32_t>(globals_.size()));
  for (const wasm::Value& global : globals_) {
    writer.Put<uint64_t>(global.i64);
  }
  writer.PutBytes(snapshot_->Serialize());
  return out;
}

Result<std::shared_ptr<const ProtoFaaslet>> ProtoFaaslet::Deserialize(const Bytes& bytes) {
  auto proto = std::shared_ptr<ProtoFaaslet>(new ProtoFaaslet());
  ByteReader reader(bytes);
  FAASM_ASSIGN_OR_RETURN(proto->function_, reader.GetString());
  FAASM_ASSIGN_OR_RETURN(uint32_t n_globals, reader.Get<uint32_t>());
  for (uint32_t i = 0; i < n_globals; ++i) {
    FAASM_ASSIGN_OR_RETURN(uint64_t bits, reader.Get<uint64_t>());
    proto->globals_.push_back(wasm::MakeI64(bits));
  }
  FAASM_ASSIGN_OR_RETURN(Bytes image, reader.GetBytes());
  FAASM_ASSIGN_OR_RETURN(proto->snapshot_,
                         MemorySnapshot::Deserialize("proto:" + proto->function_, image));
  return std::shared_ptr<const ProtoFaaslet>(std::move(proto));
}

}  // namespace faasm
