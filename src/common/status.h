// Status / Result<T>: error propagation without exceptions.
//
// Modules in this codebase never throw across library boundaries; fallible
// operations return Status (or Result<T> when they produce a value). This is
// the same discipline the original FAASM runtime follows for host-interface
// calls, where a guest-visible error must become a trap, not a C++ exception.
#ifndef FAASM_COMMON_STATUS_H_
#define FAASM_COMMON_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace faasm {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kUnavailable,
  kInternal,
  kUnimplemented,
  kPermissionDenied,
  // A sharded-KVS op reached a shard that does not (or no longer does)
  // master the key — the shard map changed, or the key is mid-migration.
  // Routing clients re-resolve the master and retry (kvs/kvs_client.h).
  kWrongMaster,
  // A bounded wait or retry budget ran out before the operation could
  // complete (kvs/kvs_client.h: the redirect budget exhausted during an
  // extended failover window, or a BatchHandle::Wait deadline). The message
  // carries what was being waited for — key, last endpoint, attempt count —
  // so callers can tell "master gone" from "map stale".
  kDeadlineExceeded,
};

const char* StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on success (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Human-readable "CODE: message" rendering for logs and test failures.
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
inline Status InvalidArgument(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
inline Status AlreadyExists(std::string m) {
  return Status(StatusCode::kAlreadyExists, std::move(m));
}
inline Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
inline Status ResourceExhausted(std::string m) {
  return Status(StatusCode::kResourceExhausted, std::move(m));
}
inline Status FailedPrecondition(std::string m) {
  return Status(StatusCode::kFailedPrecondition, std::move(m));
}
inline Status Unavailable(std::string m) { return Status(StatusCode::kUnavailable, std::move(m)); }
inline Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
inline Status Unimplemented(std::string m) {
  return Status(StatusCode::kUnimplemented, std::move(m));
}
inline Status PermissionDenied(std::string m) {
  return Status(StatusCode::kPermissionDenied, std::move(m));
}
inline Status WrongMaster(std::string m) {
  return Status(StatusCode::kWrongMaster, std::move(m));
}
inline Status DeadlineExceeded(std::string m) {
  return Status(StatusCode::kDeadlineExceeded, std::move(m));
}

// Result<T>: holds either a T or a non-OK Status.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT: implicit by design
  Result(Status status) : value_(std::move(status)) {    // NOLINT: implicit by design
    assert(!std::get<Status>(value_).ok() && "Result<T> must not hold an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(value_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(value_);
  }
  T&& value() && {
    assert(ok());
    return std::move(std::get<T>(value_));
  }

  Status status() const {
    if (ok()) {
      return OkStatus();
    }
    return std::get<Status>(value_);
  }

 private:
  std::variant<T, Status> value_;
};

// Propagate a non-OK Status from an expression to the caller.
#define FAASM_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::faasm::Status faasm_status_ = (expr);    \
    if (!faasm_status_.ok()) {                 \
      return faasm_status_;                    \
    }                                          \
  } while (0)

// Evaluate an expression yielding Result<T>; on error return the Status,
// otherwise bind the value to `lhs`.
#define FAASM_CONCAT_INNER(a, b) a##b
#define FAASM_CONCAT(a, b) FAASM_CONCAT_INNER(a, b)
#define FAASM_ASSIGN_OR_RETURN(lhs, expr) \
  FAASM_ASSIGN_OR_RETURN_IMPL(FAASM_CONCAT(faasm_result_, __COUNTER__), lhs, expr)
#define FAASM_ASSIGN_OR_RETURN_IMPL(var, lhs, expr) \
  auto var = (expr);                                \
  if (!var.ok()) {                                  \
    return var.status();                            \
  }                                                 \
  lhs = std::move(var).value()

}  // namespace faasm

#endif  // FAASM_COMMON_STATUS_H_
