// FaasmInstance: one FAASM runtime per host (§5). Manages a pool of warm
// Faaslets, schedules calls with the Omega-style shared-state policy
// (execute locally when warm with capacity, otherwise share with a warm host
// discovered through the global tier), performs cold starts — preferring
// cross-host Proto-Faaslet restores — and accounts host memory.
#ifndef FAASM_RUNTIME_INSTANCE_H_
#define FAASM_RUNTIME_INSTANCE_H_

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/faaslet.h"
#include "kvs/kvs_client.h"
#include "runtime/call_table.h"
#include "runtime/memory_accountant.h"
#include "runtime/registry.h"
#include "sim/sim_clock.h"

namespace faasm {

struct HostConfig {
  std::string name = "host-0";
  int cores = 4;
  size_t memory_bytes = size_t{16} * 1024 * 1024 * 1024;  // paper testbed: 16 GB
  int max_concurrent_calls = 64;
  // Execution overhead charged per call (runtime dispatch, thread wake-up).
  TimeNs per_call_overhead_ns = 50 * kMicrosecond;
  // How long a fetched warm-set view may serve scheduling decisions before
  // it is refetched from the global tier (virtual time). Steady-state
  // submits hit this cache instead of paying a SetMembers round trip per
  // call; 0 disables caching (every submit refetches).
  TimeNs warm_set_ttl_ns = 2 * kMillisecond;
  // Batched state-op protocol (kvs_client.h kBatch): state pushes and the
  // host's warm-set updates group into per-endpoint RPC batches, pipelined
  // across shards. Off = the unbatched one-RPC-per-op baseline (the
  // --batch=off ablation).
  bool batch_state_ops = true;
  // Read half of the batched protocol (kGetBatch): multi-key prefetches
  // group into per-endpoint read-only RPCs. Off = one pull per key (the
  // --read-batch=off ablation). Independent of batch_state_ops.
  bool batch_state_reads = true;
  // Per-host read cache (kvs/read_cache.h). Off by default: cached reads may
  // lag OTHER hosts' writes by up to read_lease_ns, which read-modify-write
  // workloads must not opt into (see the coherence rules in kvs_client.h).
  bool read_cache = false;
  TimeNs read_lease_ns = 2 * kMillisecond;
  // Replica reads (tier two of the read path, kvs_client.h): when on and the
  // cluster runs replication, the cluster hands this host's KvsClient its
  // local ReplicaShard after construction (EnableReplicaReads), so reads of
  // keys this host backs are served in-process. The flag is the per-host
  // mirror of ClusterConfig::replica_reads; the instance itself only carries
  // it so the wiring site can gate on one config object.
  bool replica_reads = true;
  // Guest execution tiers for every Faaslet on this host (wasm/instance.h).
  // Defaults are the fast tiers (guard-page bounds elision + threaded
  // dispatch); the checked/switch tiers are the ablation baselines and the
  // automatic fallback under sanitizers or non-GNU compilers.
  wasm::GuestBounds guest_bounds = wasm::GuestBounds::kGuardPage;
  wasm::GuestDispatch guest_dispatch = wasm::GuestDispatch::kThreaded;
  // Failure detection (runtime/failure_detector.h). When the cluster runs a
  // detector, it names the detector's mailbox endpoint here and the host
  // publishes one heartbeat per interval from a dedicated activity; a crash
  // (Kill) silences it atomically with the endpoints vanishing. Empty
  // endpoint or interval 0 = no heartbeats (oracle-only clusters).
  std::string failure_detector_endpoint;
  TimeNs heartbeat_interval_ns = 5 * kMillisecond;
  // Silence threshold after which the detector suspects this host. Carried
  // in HostConfig so hosts and detector agree on the contract; the instance
  // itself only reads the interval.
  TimeNs suspicion_timeout_ns = 20 * kMillisecond;
};

class FaasmInstance {
 public:
  // `shard_map`/`local_shard` wire the host into the sharded global tier:
  // the instance serves `local_shard` on "kvs:<name>" and its KvsClient
  // routes per key (kvs/router.h). Both null → legacy centralised "kvs"
  // endpoint; shard_map set with null local_shard → routing without a
  // co-located shard (centralised ablation).
  FaasmInstance(HostConfig config, SimExecutor* executor, InProcNetwork* network,
                FunctionRegistry* registry, CallTable* calls, GlobalFileStore* files,
                const ShardMap* shard_map = nullptr, KvStore* local_shard = nullptr);
  ~FaasmInstance();

  FaasmInstance(const FaasmInstance&) = delete;
  FaasmInstance& operator=(const FaasmInstance&) = delete;

  // Registers the host endpoint and starts the dispatcher.
  void Start();
  // Stops the dispatcher (idempotent).
  void Stop();

  // --- Graceful removal (cluster elasticity) ----------------------------------
  // Removal protocol (runtime/cluster.h RemoveHost): BeginDrain →
  // wait(Drained) → [migrate shard] → CloseIntake → wait(Drained) → Stop.
  // The second drain wait matters: a peer with a stale warm-set view can
  // still enqueue work between the first wait and CloseIntake, and that
  // call must execute, not rot in the mailbox.
  //
  // Begins draining: withdraws this host from every warm set (so peers stop
  // sharing work here) and pins the advertisement down. Calls already
  // in flight — including chained calls they spawn — keep executing.
  void BeginDrain();
  // Reverts a drain whose removal was abandoned (failed migration): the
  // host re-advertises its warm pools and serves normally again.
  void CancelDrain();
  // True once nothing is running and the work-sharing mailbox is empty; the
  // host can then be retired without losing an acknowledged call.
  bool Drained() const;
  // Unregisters the host endpoint: late work-sharing sends now fail fast at
  // the sender (which falls back to executing locally), while the still-
  // running dispatcher polls out whatever the mailbox already holds.
  void CloseIntake();
  // Returns the retired host's memory to its accountant — warm Faaslet
  // pools and local-tier replicas die with the host. Without this a removed
  // host would keep accruing billable GB-seconds for the rest of the run
  // (GbSeconds() integrates current bytes over virtual time at read time).
  // Call after Stop() on a drained host.
  void ReleaseRetiredMemory();
  bool draining() const { return draining_.load(); }

  // --- Crash removal (cluster failover) ----------------------------------------
  // The abrupt counterpart of the drain protocol (runtime/cluster.h
  // KillHost): no drain, no handoff. Stops the dispatcher and unregisters
  // every endpoint the host serves — its work-sharing mailbox endpoint, its
  // shard server, and its replica channel — so peers and clients fail fast
  // with kUnavailable instead of queueing on a corpse. In-flight executions
  // become zombies: they run to completion (the simulation cannot reach into
  // a thread), but nothing new is accepted and nothing the host mastered is
  // served again. The server objects stay alive — a handler mid-flight on
  // another thread must not have its server destroyed under it.
  void Kill();
  // Fails every call still sitting in the killed host's mailbox (accepted by
  // Submit, never executed): the frontend's Await gets an Internal error
  // instead of hanging forever. Call after Kill().
  void FailAbandonedMail();

  // Submits a call (from a frontend or a chained call on this host) and
  // schedules it per the distributed policy. Returns the call id.
  Result<uint64_t> Submit(const std::string& function, Bytes input);

  // Blocks (virtually) until the call finishes; returns its exit code.
  Result<int> Await(uint64_t call_id);

  const std::string& name() const { return config_.name; }
  LocalTier& tier() { return *tier_; }
  KvsClient& kvs() { return kvs_; }
  // This host's shard server, or null in centralised mode. Benches read its
  // read_rpc_count() to gate cross-host pull RPC reductions.
  const KvsServer* shard_server() const { return shard_server_.get(); }
  MemoryAccountant& memory_accountant() { return memory_; }
  const MemoryAccountant& memory_accountant() const { return memory_; }
  HostCpuModel& cpu() { return cpu_; }

  size_t warm_faaslet_count() const;
  size_t cold_start_count() const { return cold_starts_.load(); }
  size_t executed_call_count() const { return executed_calls_.load(); }

  // Test hook (detector flap coverage): while suppressed the heartbeat
  // activity skips its Sends but keeps running — a "slow" host whose
  // silence exceeds the suspicion timeout while it stays fully alive.
  void set_heartbeats_suppressed(bool suppressed) { heartbeats_suppressed_.store(suppressed); }

 private:
  struct FunctionPool {
    std::vector<std::unique_ptr<Faaslet>> idle;
    int total = 0;  // idle + busy
  };

  void DispatchLoop();
  // Publishes one heartbeat per heartbeat_interval_ns to the detector's
  // mailbox until the host stops; crash (Kill) silences it via stop_.
  void HeartbeatLoop();
  // Placement decision for a submitted call.
  Status ScheduleCall(uint64_t call_id, const std::string& function, Bytes input);
  // Runs the call on this host (spawning an execution activity).
  void ExecuteLocal(uint64_t call_id, const std::string& function, Bytes input);

  // Pops or creates a Faaslet for `function`; sets `cold` when created.
  Result<std::unique_ptr<Faaslet>> AcquireFaaslet(const std::string& function, bool* cold);
  void ReleaseFaaslet(std::unique_ptr<Faaslet> faaslet);
  Result<std::unique_ptr<Faaslet>> ColdStart(const FunctionSpec& spec);

  // Omega-style shared state hygiene: a saturated host withdraws itself from
  // the warm sets so peers cold start elsewhere instead of piling work onto
  // it; it re-advertises when capacity frees up.
  void UpdateWarmAdvertisement();
  // Adds/removes this host to the warm sets of `functions`, batching the
  // cross-shard membership updates into per-endpoint RPCs when enabled, and
  // invalidates the affected warm-cache entries.
  void UpdateWarmSets(const std::vector<std::string>& functions, bool advertise);

  // Warm-set view for `function`, served from the short-TTL cache when
  // fresh; refetched from the global tier otherwise.
  Result<std::vector<std::string>> WarmMembers(const std::string& function);
  // Drops the cached view after this host mutates the warm set, so its own
  // membership changes are visible to its next scheduling decision.
  void InvalidateWarmCache(const std::string& function);

  FaasletEnv MakeEnv();
  void SyncTierAccounting();

  HostConfig config_;
  SimExecutor* executor_;
  InProcNetwork* network_;
  FunctionRegistry* registry_;
  CallTable* calls_;
  GlobalFileStore* files_;

  // This host's shard of the global tier, served on "kvs:<name>" (null in
  // centralised mode).
  std::unique_ptr<KvsServer> shard_server_;
  KvsClient kvs_;
  std::unique_ptr<LocalTier> tier_;
  MemoryAccountant memory_;
  HostCpuModel cpu_;

  mutable std::mutex pools_mutex_;
  std::map<std::string, FunctionPool> pools_;
  std::map<std::string, std::shared_ptr<const ProtoFaaslet>> proto_cache_;

  struct CachedWarmSet {
    std::vector<std::string> hosts;
    TimeNs fetched_at = 0;
  };
  std::mutex warm_cache_mutex_;
  std::map<std::string, CachedWarmSet> warm_cache_;
  // Functions this host has ever observed warm somewhere. An empty warm set
  // for such a function means hosts withdrew (saturation backpressure), so
  // the scheduler must not keep funnelling cold starts at the state master.
  std::set<std::string> warm_ever_;

  std::atomic<int> running_calls_{0};
  // Dispatcher is between "message left the mailbox" and "call counted in
  // running_calls_" (drain-barrier coverage; see DispatchLoop).
  std::atomic<int> accepting_{0};
  std::atomic<bool> draining_{false};
  std::atomic<bool> advertised_saturated_{false};
  std::atomic<size_t> cold_starts_{0};
  std::atomic<size_t> executed_calls_{0};
  std::atomic<size_t> tier_bytes_accounted_{0};
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<bool> heartbeats_suppressed_{false};
  Rng share_rng_;
};

}  // namespace faasm

#endif  // FAASM_RUNTIME_INSTANCE_H_
