// Figure 9: execution overhead of the wasm substrate vs native —
// (a) Polybench-style kernels, (b) the MiniVM dynamic-language runtime
// (CPython analogue). google-benchmark binary; each wasm benchmark reports a
// "vs_native" counter with the slowdown factor.
//
// NOTE (EXPERIMENTS.md): this substrate is an *interpreter*, the paper used
// the WAVM JIT, so absolute factors are larger than the paper's 1-1.6x; the
// relative shape across kernels is what this figure reproduces.
#include <benchmark/benchmark.h>

#include <map>

#include "common/clock.h"
#include "wasm/instance.h"
#include "workloads/kernels.h"
#include "workloads/minivm.h"

namespace faasm {
namespace {

constexpr uint32_t kKernelSize = 48;

double NativeKernelTimeNs(size_t index) {
  static std::map<size_t, double> cache;
  auto it = cache.find(index);
  if (it != cache.end()) {
    return it->second;
  }
  const Kernel& kernel = PolybenchKernels()[index];
  Stopwatch watch;
  int reps = 0;
  double sink = 0;
  while (watch.ElapsedNs() < 50 * kMillisecond) {
    sink += kernel.native(kKernelSize);
    ++reps;
  }
  benchmark::DoNotOptimize(sink);
  const double per_rep = static_cast<double>(watch.ElapsedNs()) / reps;
  cache[index] = per_rep;
  return per_rep;
}

void BM_KernelNative(benchmark::State& state) {
  const Kernel& kernel = PolybenchKernels()[state.range(0)];
  state.SetLabel(kernel.name + "/native");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.native(kKernelSize));
  }
}

void BM_KernelWasm(benchmark::State& state) {
  const Kernel& kernel = PolybenchKernels()[state.range(0)];
  state.SetLabel(kernel.name + "/wasm");
  auto module = kernel.build_wasm().value();
  double total_ns = 0;
  int reps = 0;
  for (auto _ : state) {
    Stopwatch watch;
    benchmark::DoNotOptimize(RunKernelWasm(module, kKernelSize).value());
    total_ns += static_cast<double>(watch.ElapsedNs());
    ++reps;
  }
  state.counters["vs_native"] = (total_ns / reps) / NativeKernelTimeNs(state.range(0));
}

double NativeMiniVmTimeNs(size_t index) {
  static std::map<size_t, double> cache;
  auto it = cache.find(index);
  if (it != cache.end()) {
    return it->second;
  }
  const MviProgram& program = MiniVmBenchmarks()[index];
  Stopwatch watch;
  int reps = 0;
  while (watch.ElapsedNs() < 50 * kMillisecond) {
    benchmark::DoNotOptimize(RunMiniVmNative(program.code).value());
    ++reps;
  }
  const double per_rep = static_cast<double>(watch.ElapsedNs()) / reps;
  cache[index] = per_rep;
  return per_rep;
}

void BM_MiniVmNative(benchmark::State& state) {
  const MviProgram& program = MiniVmBenchmarks()[state.range(0)];
  state.SetLabel(program.name + "/native-runtime");
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunMiniVmNative(program.code).value());
  }
}

void BM_MiniVmWasm(benchmark::State& state) {
  const MviProgram& program = MiniVmBenchmarks()[state.range(0)];
  state.SetLabel(program.name + "/runtime-in-faaslet");
  auto module = BuildMiniVmWasm(program.code).value();
  double total_ns = 0;
  int reps = 0;
  for (auto _ : state) {
    Stopwatch watch;
    auto instance = wasm::Instance::Create(module, nullptr).value();
    benchmark::DoNotOptimize(instance->CallExport("run", {}).value()[0].i32);
    total_ns += static_cast<double>(watch.ElapsedNs());
    ++reps;
  }
  state.counters["vs_native"] = (total_ns / reps) / NativeMiniVmTimeNs(state.range(0));
}

BENCHMARK(BM_KernelNative)->DenseRange(0, 7)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_KernelWasm)->DenseRange(0, 7)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniVmNative)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_MiniVmWasm)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace faasm

BENCHMARK_MAIN();
