// Stateful serverless machine learning: distributed HOGWILD SGD with the
// shared weights vector in two-tier state (the paper's Listing 1 workload).
#include <cstdio>

#include "runtime/cluster.h"
#include "workloads/sgd.h"

using namespace faasm;

int main() {
  ClusterConfig cluster_config;
  cluster_config.hosts = 4;
  FaasmCluster cluster(cluster_config);

  SgdConfig config;
  config.n_examples = 4096;
  config.n_features = 1024;
  config.nnz_per_example = 16;
  config.n_workers = 8;
  config.n_epochs = 4;

  const size_t dataset_bytes = SeedSgdDataset(cluster.kvs(), config);
  std::printf("dataset: %zu examples x %u features (%.1f MB sparse)\n",
              static_cast<size_t>(config.n_examples), config.n_features, dataset_bytes / 1e6);

  if (!RegisterSgdFunctions(cluster.registry()).ok()) {
    return 1;
  }

  cluster.Run([&](Frontend& frontend) {
    for (uint32_t epoch = 0; epoch < config.n_epochs; ++epoch) {
      SgdConfig one_epoch = config;
      one_epoch.n_epochs = 1;
      auto loss = RunSgdTraining(frontend, one_epoch);
      if (!loss.ok()) {
        std::fprintf(stderr, "epoch %u failed: %s\n", epoch, loss.status().ToString().c_str());
        return;
      }
      std::printf("epoch %u: mse=%.5f  (virtual time %.2f s, network %.1f MB)\n", epoch,
                  loss.value(), cluster.clock().Now() / 1e9, cluster.network_bytes() / 1e6);
    }
  });

  std::printf("billable memory: %.3f GB-s, cold starts: %zu, warm faaslets: %zu\n",
              cluster.billable_gb_seconds(), cluster.cold_start_count(),
              cluster.warm_faaslet_count());
  return 0;
}
