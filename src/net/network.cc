#include "net/network.h"

#include <cmath>

namespace faasm {

InProcNetwork::InProcNetwork(Clock* clock, NetworkConfig config)
    : clock_(clock), config_(config) {}

void InProcNetwork::RegisterEndpoint(const std::string& name, RpcHandler handler) {
  std::lock_guard<std::mutex> guard(mutex_);
  endpoints_[name] = std::move(handler);
}

void InProcNetwork::UnregisterEndpoint(const std::string& name) {
  std::lock_guard<std::mutex> guard(mutex_);
  endpoints_.erase(name);
}

bool InProcNetwork::HasEndpoint(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  return endpoints_.count(name) > 0;
}

void InProcNetwork::ChargeTransfer(size_t bytes) {
  if (!config_.charge_latency) {
    return;
  }
  const double transfer_s = static_cast<double>(bytes) / config_.bandwidth_bytes_per_sec;
  const TimeNs delay =
      config_.base_latency_ns + static_cast<TimeNs>(std::llround(transfer_s * 1e9));
  clock_->SleepFor(delay);
}

void InProcNetwork::AccountLocked(const std::string& from, const std::string& to, size_t bytes) {
  stats_[from].tx_bytes += bytes;
  stats_[from].tx_messages += 1;
  stats_[to].rx_bytes += bytes;
  stats_[to].rx_messages += 1;
  total_bytes_ += bytes;
}

Result<Bytes> InProcNetwork::Call(const std::string& from, const std::string& to,
                                  const Bytes& request) {
  // Every message pays the fixed envelope on top of its payload, so the
  // accounting rewards protocols that move the same bytes in fewer
  // messages (the batched KVS ops).
  const size_t overhead = config_.per_message_overhead_bytes;
  RpcHandler handler;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    auto it = endpoints_.find(to);
    if (it == endpoints_.end()) {
      return Unavailable("no endpoint registered: " + to);
    }
    handler = it->second;
    AccountLocked(from, to, request.size() + overhead);
  }
  ChargeTransfer(request.size() + overhead);
  Bytes response = handler(request);
  {
    std::lock_guard<std::mutex> guard(mutex_);
    AccountLocked(to, from, response.size() + overhead);
  }
  ChargeTransfer(response.size() + overhead);
  return response;
}

Status InProcNetwork::Send(const std::string& from, const std::string& to, Bytes message) {
  const size_t overhead = config_.per_message_overhead_bytes;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (endpoints_.count(to) == 0) {
      // The receiver left (host removal) or never existed: fail fast so the
      // sender can fall back, instead of queueing into a dead mailbox.
      return Unavailable("no endpoint registered: " + to);
    }
    AccountLocked(from, to, message.size() + overhead);
    mailboxes_[to].push_back(std::move(message));
  }
  ChargeTransfer(0);  // latency only; payload + envelope accounted above
  return OkStatus();
}

std::optional<Bytes> InProcNetwork::Poll(const std::string& name) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = mailboxes_.find(name);
  if (it == mailboxes_.end() || it->second.empty()) {
    return std::nullopt;
  }
  Bytes message = std::move(it->second.front());
  it->second.pop_front();
  return message;
}

size_t InProcNetwork::PendingCount(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = mailboxes_.find(name);
  return it == mailboxes_.end() ? 0 : it->second.size();
}

uint64_t InProcNetwork::total_bytes() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return total_bytes_;
}

EndpointStats InProcNetwork::StatsFor(const std::string& name) const {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = stats_.find(name);
  return it == stats_.end() ? EndpointStats{} : it->second;
}

void InProcNetwork::ResetStats() {
  std::lock_guard<std::mutex> guard(mutex_);
  stats_.clear();
  total_bytes_ = 0;
}

}  // namespace faasm
