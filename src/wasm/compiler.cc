// Function-body validator + preprocessor. Implements the type-checking
// algorithm from the WebAssembly spec appendix ("Validation Algorithm"),
// emitting preprocessed instructions as a side effect of validation so the
// two passes cannot disagree.
#include <algorithm>

#include "wasm/compiled.h"
#include "wasm/leb128.h"

namespace faasm::wasm {

namespace {

// Value-type lattice element: a concrete type or Unknown (from unreachable
// code, polymorphic).
struct VType {
  bool known = true;
  ValType type = ValType::kI32;

  static VType Unknown() { return VType{false, ValType::kI32}; }
  static VType Of(ValType t) { return VType{true, t}; }

  bool Matches(ValType expected) const { return !known || type == expected; }
};

struct PatchRef {
  uint32_t instr_index;
  int32_t table_entry;  // -1: patch code[instr_index].a; else br_tables entry
  uint32_t table_index;
};

struct CtrlFrame {
  Op opcode = Op::kBlock;
  BlockType type;
  uint32_t height = 0;  // operand stack height at frame entry
  bool unreachable = false;
  uint32_t loop_start_pc = 0;               // valid when opcode == kLoop
  int64_t else_jump_instr = -1;             // kJumpIfZero emitted at `if`
  std::vector<PatchRef> end_patches;        // forward refs to the frame's end
};

class FunctionCompiler {
 public:
  FunctionCompiler(const Module& module, uint32_t defined_index)
      : module_(module),
        defined_index_(defined_index),
        body_(module.bodies[defined_index]),
        cursor_(body_.code.data(), body_.code.size()) {}

  Result<CompiledFunction> Compile() {
    CompiledFunction out;
    out.type_index = module_.function_types[defined_index_];
    const FuncType& type = module_.types[out.type_index];
    out.param_count = static_cast<uint32_t>(type.params.size());
    out.result_arity = static_cast<uint32_t>(type.results.size());

    locals_.assign(type.params.begin(), type.params.end());
    for (const auto& [count, local_type] : body_.locals) {
      for (uint32_t i = 0; i < count; ++i) {
        locals_.push_back(local_type);
        out.locals.push_back(local_type);
      }
    }
    out.local_count = static_cast<uint32_t>(out.locals.size());

    // Function-level frame: results are the function results.
    BlockType function_block =
        type.results.empty() ? BlockType::Empty() : BlockType::Of(type.results[0]);
    PushCtrl(Op::kBlock, function_block, /*is_function_frame=*/true);

    while (!ctrl_.empty()) {
      if (cursor_.done()) {
        return InvalidArgument("function body ended without end opcode");
      }
      FAASM_RETURN_IF_ERROR(Step());
    }
    if (!cursor_.done()) {
      return InvalidArgument("trailing bytes after function end");
    }
    // The implicit return at the function's end.
    Emit(static_cast<uint16_t>(IOp::kReturnEnd), 0, out.result_arity, 0);

    out.code = std::move(code_);
    out.br_tables = std::move(br_tables_);
    out.max_operand_height = max_height_;
    return out;
  }

 private:
  // --- Operand stack ---------------------------------------------------------

  void PushVal(VType v) {
    vals_.push_back(v);
    max_height_ = std::max<uint32_t>(max_height_, static_cast<uint32_t>(vals_.size()));
  }
  void PushVal(ValType t) { PushVal(VType::Of(t)); }

  Result<VType> PopVal() {
    CtrlFrame& frame = ctrl_.back();
    if (vals_.size() == frame.height) {
      if (frame.unreachable) {
        return VType::Unknown();
      }
      return InvalidArgument("operand stack underflow");
    }
    VType v = vals_.back();
    vals_.pop_back();
    return v;
  }

  Status PopExpect(ValType expected) {
    FAASM_ASSIGN_OR_RETURN(VType v, PopVal());
    if (!v.Matches(expected)) {
      return InvalidArgument(std::string("type mismatch: expected ") + ValTypeName(expected));
    }
    return OkStatus();
  }

  // --- Control stack ---------------------------------------------------------

  void PushCtrl(Op opcode, BlockType type, bool is_function_frame = false) {
    CtrlFrame frame;
    frame.opcode = opcode;
    frame.type = type;
    frame.height = static_cast<uint32_t>(vals_.size());
    frame.loop_start_pc = Pc();
    (void)is_function_frame;
    ctrl_.push_back(std::move(frame));
  }

  // Label arity: loops branch to their start (no label values in MVP);
  // blocks/ifs branch to their end (result values).
  static uint32_t LabelArity(const CtrlFrame& frame) {
    if (frame.opcode == Op::kLoop) {
      return 0;
    }
    return static_cast<uint32_t>(frame.type.arity());
  }

  Status CheckLabelTypes(const CtrlFrame& frame) {
    // Pop label types then push them back (used by br_if / br_table checks).
    if (LabelArity(frame) == 1) {
      FAASM_RETURN_IF_ERROR(PopExpect(frame.type.result));
      PushVal(frame.type.result);
    }
    return OkStatus();
  }

  void SetUnreachable() {
    CtrlFrame& frame = ctrl_.back();
    vals_.resize(frame.height);
    frame.unreachable = true;
  }

  // --- Emission --------------------------------------------------------------

  uint32_t Pc() const { return static_cast<uint32_t>(code_.size()); }

  uint32_t Emit(uint16_t op, uint32_t a = 0, uint32_t b = 0, uint64_t imm = 0) {
    code_.push_back(Instr{op, a, b, imm});
    return static_cast<uint32_t>(code_.size() - 1);
  }

  // Emits a branch to the label `depth` levels up; records a patch if the
  // target pc is not yet known (block/if end).
  Status EmitBranch(uint16_t op, uint32_t depth) {
    if (depth >= ctrl_.size()) {
      return InvalidArgument("branch depth out of range");
    }
    CtrlFrame& frame = ctrl_[ctrl_.size() - 1 - depth];
    const uint32_t arity = LabelArity(frame);
    const uint32_t idx = Emit(op, 0, arity, frame.height);
    if (frame.opcode == Op::kLoop) {
      code_[idx].a = frame.loop_start_pc;
    } else {
      frame.end_patches.push_back(PatchRef{idx, -1, 0});
    }
    return OkStatus();
  }

  // --- Reading immediates ----------------------------------------------------

  Result<BlockType> ReadBlockType() {
    auto byte = cursor_.ReadByte();
    if (!byte.ok()) {
      return byte.status();
    }
    if (byte.value() == kBlockTypeEmpty) {
      return BlockType::Empty();
    }
    if (!IsValidValType(byte.value())) {
      return InvalidArgument("invalid block type");
    }
    return BlockType::Of(static_cast<ValType>(byte.value()));
  }

  Result<std::pair<uint32_t, uint64_t>> ReadMemArg(uint32_t natural_align_log2) {
    auto align = cursor_.ReadVarU32();
    if (!align.ok()) {
      return align.status();
    }
    if (align.value() > natural_align_log2) {
      return InvalidArgument("alignment exceeds natural alignment");
    }
    auto offset = cursor_.ReadVarU32();
    if (!offset.ok()) {
      return offset.status();
    }
    if (!module_.memory.has_value()) {
      return InvalidArgument("memory instruction without memory");
    }
    return std::make_pair(align.value(), static_cast<uint64_t>(offset.value()));
  }

  // --- Per-opcode step -------------------------------------------------------

  Status Step();
  Status StepNumeric(Op op);
  Status HandleLoadStore(Op op);

  const Module& module_;
  uint32_t defined_index_;
  const FunctionBody& body_;
  ByteCursor cursor_;

  std::vector<ValType> locals_;  // params + locals
  std::vector<VType> vals_;
  std::vector<CtrlFrame> ctrl_;
  std::vector<Instr> code_;
  std::vector<BrTableData> br_tables_;
  uint32_t max_height_ = 0;
};

Status FunctionCompiler::HandleLoadStore(Op op) {
  struct MemOpInfo {
    ValType type;
    uint32_t align_log2;
    bool is_store;
  };
  MemOpInfo info{};
  switch (op) {
    case Op::kI32Load: info = {ValType::kI32, 2, false}; break;
    case Op::kI64Load: info = {ValType::kI64, 3, false}; break;
    case Op::kF32Load: info = {ValType::kF32, 2, false}; break;
    case Op::kF64Load: info = {ValType::kF64, 3, false}; break;
    case Op::kI32Load8S:
    case Op::kI32Load8U: info = {ValType::kI32, 0, false}; break;
    case Op::kI32Load16S:
    case Op::kI32Load16U: info = {ValType::kI32, 1, false}; break;
    case Op::kI64Load8S:
    case Op::kI64Load8U: info = {ValType::kI64, 0, false}; break;
    case Op::kI64Load16S:
    case Op::kI64Load16U: info = {ValType::kI64, 1, false}; break;
    case Op::kI64Load32S:
    case Op::kI64Load32U: info = {ValType::kI64, 2, false}; break;
    case Op::kI32Store: info = {ValType::kI32, 2, true}; break;
    case Op::kI64Store: info = {ValType::kI64, 3, true}; break;
    case Op::kF32Store: info = {ValType::kF32, 2, true}; break;
    case Op::kF64Store: info = {ValType::kF64, 3, true}; break;
    case Op::kI32Store8: info = {ValType::kI32, 0, true}; break;
    case Op::kI32Store16: info = {ValType::kI32, 1, true}; break;
    case Op::kI64Store8: info = {ValType::kI64, 0, true}; break;
    case Op::kI64Store16: info = {ValType::kI64, 1, true}; break;
    case Op::kI64Store32: info = {ValType::kI64, 2, true}; break;
    default:
      return Internal("not a memory opcode");
  }
  FAASM_ASSIGN_OR_RETURN(auto memarg, ReadMemArg(info.align_log2));
  if (info.is_store) {
    FAASM_RETURN_IF_ERROR(PopExpect(info.type));
    FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));
  } else {
    FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));
    PushVal(info.type);
  }
  Emit(static_cast<uint16_t>(op), 0, 0, memarg.second);
  return OkStatus();
}

// Handles all value-typed numeric/comparison/conversion operators by their
// (inputs) -> output signatures; emits the opcode unchanged.
Status FunctionCompiler::StepNumeric(Op op) {
  const uint8_t code = static_cast<uint8_t>(op);
  ValType in1 = ValType::kI32;
  ValType in2 = ValType::kI32;
  int n_in = 0;
  ValType out = ValType::kI32;

  auto sig = [&](int n, ValType a, ValType b, ValType o) {
    n_in = n;
    in1 = a;
    in2 = b;
    out = o;
  };

  if (code == 0x45) {
    sig(1, ValType::kI32, in2, ValType::kI32);  // i32.eqz
  } else if (code >= 0x46 && code <= 0x4F) {
    sig(2, ValType::kI32, ValType::kI32, ValType::kI32);
  } else if (code == 0x50) {
    sig(1, ValType::kI64, in2, ValType::kI32);  // i64.eqz
  } else if (code >= 0x51 && code <= 0x5A) {
    sig(2, ValType::kI64, ValType::kI64, ValType::kI32);
  } else if (code >= 0x5B && code <= 0x60) {
    sig(2, ValType::kF32, ValType::kF32, ValType::kI32);
  } else if (code >= 0x61 && code <= 0x66) {
    sig(2, ValType::kF64, ValType::kF64, ValType::kI32);
  } else if (code >= 0x67 && code <= 0x69) {
    sig(1, ValType::kI32, in2, ValType::kI32);
  } else if (code >= 0x6A && code <= 0x78) {
    sig(2, ValType::kI32, ValType::kI32, ValType::kI32);
  } else if (code >= 0x79 && code <= 0x7B) {
    sig(1, ValType::kI64, in2, ValType::kI64);
  } else if (code >= 0x7C && code <= 0x8A) {
    sig(2, ValType::kI64, ValType::kI64, ValType::kI64);
  } else if (code >= 0x8B && code <= 0x91) {
    sig(1, ValType::kF32, in2, ValType::kF32);
  } else if (code >= 0x92 && code <= 0x98) {
    sig(2, ValType::kF32, ValType::kF32, ValType::kF32);
  } else if (code >= 0x99 && code <= 0x9F) {
    sig(1, ValType::kF64, in2, ValType::kF64);
  } else if (code >= 0xA0 && code <= 0xA6) {
    sig(2, ValType::kF64, ValType::kF64, ValType::kF64);
  } else {
    switch (op) {
      case Op::kI32WrapI64: sig(1, ValType::kI64, in2, ValType::kI32); break;
      case Op::kI32TruncF32S:
      case Op::kI32TruncF32U: sig(1, ValType::kF32, in2, ValType::kI32); break;
      case Op::kI32TruncF64S:
      case Op::kI32TruncF64U: sig(1, ValType::kF64, in2, ValType::kI32); break;
      case Op::kI64ExtendI32S:
      case Op::kI64ExtendI32U: sig(1, ValType::kI32, in2, ValType::kI64); break;
      case Op::kI64TruncF32S:
      case Op::kI64TruncF32U: sig(1, ValType::kF32, in2, ValType::kI64); break;
      case Op::kI64TruncF64S:
      case Op::kI64TruncF64U: sig(1, ValType::kF64, in2, ValType::kI64); break;
      case Op::kF32ConvertI32S:
      case Op::kF32ConvertI32U: sig(1, ValType::kI32, in2, ValType::kF32); break;
      case Op::kF32ConvertI64S:
      case Op::kF32ConvertI64U: sig(1, ValType::kI64, in2, ValType::kF32); break;
      case Op::kF32DemoteF64: sig(1, ValType::kF64, in2, ValType::kF32); break;
      case Op::kF64ConvertI32S:
      case Op::kF64ConvertI32U: sig(1, ValType::kI32, in2, ValType::kF64); break;
      case Op::kF64ConvertI64S:
      case Op::kF64ConvertI64U: sig(1, ValType::kI64, in2, ValType::kF64); break;
      case Op::kF64PromoteF32: sig(1, ValType::kF32, in2, ValType::kF64); break;
      case Op::kI32ReinterpretF32: sig(1, ValType::kF32, in2, ValType::kI32); break;
      case Op::kI64ReinterpretF64: sig(1, ValType::kF64, in2, ValType::kI64); break;
      case Op::kF32ReinterpretI32: sig(1, ValType::kI32, in2, ValType::kF32); break;
      case Op::kF64ReinterpretI64: sig(1, ValType::kI64, in2, ValType::kF64); break;
      case Op::kI32Extend8S:
      case Op::kI32Extend16S: sig(1, ValType::kI32, in2, ValType::kI32); break;
      case Op::kI64Extend8S:
      case Op::kI64Extend16S:
      case Op::kI64Extend32S: sig(1, ValType::kI64, in2, ValType::kI64); break;
      default:
        return InvalidArgument("unknown opcode");
    }
  }

  if (n_in == 2) {
    FAASM_RETURN_IF_ERROR(PopExpect(in2));
  }
  FAASM_RETURN_IF_ERROR(PopExpect(in1));
  PushVal(out);
  Emit(static_cast<uint16_t>(op));
  return OkStatus();
}

Status FunctionCompiler::Step() {
  auto op_byte = cursor_.ReadByte();
  if (!op_byte.ok()) {
    return op_byte.status();
  }
  const Op op = static_cast<Op>(op_byte.value());

  switch (op) {
    case Op::kUnreachable:
      Emit(static_cast<uint16_t>(op));
      SetUnreachable();
      return OkStatus();
    case Op::kNop:
      return OkStatus();

    case Op::kBlock: {
      FAASM_ASSIGN_OR_RETURN(BlockType type, ReadBlockType());
      PushCtrl(Op::kBlock, type);
      return OkStatus();
    }
    case Op::kLoop: {
      FAASM_ASSIGN_OR_RETURN(BlockType type, ReadBlockType());
      PushCtrl(Op::kLoop, type);
      return OkStatus();
    }
    case Op::kIf: {
      FAASM_ASSIGN_OR_RETURN(BlockType type, ReadBlockType());
      FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      PushCtrl(Op::kIf, type);
      ctrl_.back().else_jump_instr = Emit(static_cast<uint16_t>(IOp::kJumpIfZero));
      return OkStatus();
    }
    case Op::kElse: {
      if (ctrl_.empty() || ctrl_.back().opcode != Op::kIf) {
        return InvalidArgument("else without if");
      }
      CtrlFrame& frame = ctrl_.back();
      if (frame.else_jump_instr < 0) {
        return InvalidArgument("duplicate else");
      }
      // Check the then-branch produced the results.
      if (frame.type.has_result) {
        FAASM_RETURN_IF_ERROR(PopExpect(frame.type.result));
      }
      if (vals_.size() != frame.height) {
        return InvalidArgument("then branch leaves extra values");
      }
      // Jump over the else branch to the end.
      const uint32_t jump = Emit(static_cast<uint16_t>(IOp::kJump));
      frame.end_patches.push_back(PatchRef{jump, -1, 0});
      // The false path of the `if` lands here.
      code_[frame.else_jump_instr].a = Pc();
      frame.else_jump_instr = -1;
      frame.unreachable = false;
      return OkStatus();
    }
    case Op::kEnd: {
      if (ctrl_.empty()) {
        return InvalidArgument("end without open frame");
      }
      CtrlFrame frame = std::move(ctrl_.back());
      // Check results.
      if (frame.type.has_result) {
        FAASM_RETURN_IF_ERROR(PopExpect(frame.type.result));
      }
      if (vals_.size() != frame.height) {
        return InvalidArgument("block leaves extra values on stack");
      }
      // `if` without `else` must have empty results.
      if (frame.opcode == Op::kIf && frame.else_jump_instr >= 0 && frame.type.has_result) {
        return InvalidArgument("if with result type requires else");
      }
      ctrl_.pop_back();
      // Patch forward references to this end.
      const uint32_t end_pc = Pc();
      if (frame.else_jump_instr >= 0) {
        code_[frame.else_jump_instr].a = end_pc;
      }
      for (const PatchRef& patch : frame.end_patches) {
        if (patch.table_entry < 0) {
          code_[patch.instr_index].a = end_pc;
        } else {
          br_tables_[patch.table_index].targets[patch.table_entry].pc = end_pc;
        }
      }
      // Push results for the enclosing frame.
      if (frame.type.has_result) {
        PushVal(frame.type.result);
      }
      return OkStatus();
    }

    case Op::kBr: {
      auto depth = cursor_.ReadVarU32();
      if (!depth.ok()) {
        return depth.status();
      }
      if (depth.value() >= ctrl_.size()) {
        return InvalidArgument("br depth out of range");
      }
      CtrlFrame& target = ctrl_[ctrl_.size() - 1 - depth.value()];
      if (LabelArity(target) == 1) {
        FAASM_RETURN_IF_ERROR(PopExpect(target.type.result));
      }
      FAASM_RETURN_IF_ERROR(EmitBranch(static_cast<uint16_t>(Op::kBr), depth.value()));
      SetUnreachable();
      return OkStatus();
    }
    case Op::kBrIf: {
      auto depth = cursor_.ReadVarU32();
      if (!depth.ok()) {
        return depth.status();
      }
      FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      if (depth.value() >= ctrl_.size()) {
        return InvalidArgument("br_if depth out of range");
      }
      FAASM_RETURN_IF_ERROR(CheckLabelTypes(ctrl_[ctrl_.size() - 1 - depth.value()]));
      FAASM_RETURN_IF_ERROR(EmitBranch(static_cast<uint16_t>(Op::kBrIf), depth.value()));
      return OkStatus();
    }
    case Op::kBrTable: {
      auto count = cursor_.ReadVarU32();
      if (!count.ok()) {
        return count.status();
      }
      std::vector<uint32_t> depths(count.value());
      for (auto& d : depths) {
        auto depth = cursor_.ReadVarU32();
        if (!depth.ok()) {
          return depth.status();
        }
        d = depth.value();
      }
      auto default_depth = cursor_.ReadVarU32();
      if (!default_depth.ok()) {
        return default_depth.status();
      }
      depths.push_back(default_depth.value());

      FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));

      // All labels must have the same arity (and matching types).
      if (default_depth.value() >= ctrl_.size()) {
        return InvalidArgument("br_table default depth out of range");
      }
      const uint32_t arity = LabelArity(ctrl_[ctrl_.size() - 1 - default_depth.value()]);

      BrTableData table;
      table.arity = arity;
      const uint32_t table_index = static_cast<uint32_t>(br_tables_.size());
      br_tables_.push_back(std::move(table));

      for (uint32_t d : depths) {
        if (d >= ctrl_.size()) {
          return InvalidArgument("br_table depth out of range");
        }
        CtrlFrame& target = ctrl_[ctrl_.size() - 1 - d];
        if (LabelArity(target) != arity) {
          return InvalidArgument("br_table labels have mismatched arity");
        }
        FAASM_RETURN_IF_ERROR(CheckLabelTypes(target));
        BrTableTarget entry{0, target.height};
        const int32_t entry_index =
            static_cast<int32_t>(br_tables_[table_index].targets.size());
        br_tables_[table_index].targets.push_back(entry);
        if (target.opcode == Op::kLoop) {
          br_tables_[table_index].targets[entry_index].pc = target.loop_start_pc;
        } else {
          target.end_patches.push_back(PatchRef{0, entry_index, table_index});
        }
      }
      // Pop the label values (they travel with the branch).
      if (arity == 1) {
        FAASM_ASSIGN_OR_RETURN(VType v, PopVal());
        (void)v;
      }
      Emit(static_cast<uint16_t>(Op::kBrTable), table_index, arity);
      SetUnreachable();
      return OkStatus();
    }
    case Op::kReturn: {
      const FuncType& type = module_.types[module_.function_types[defined_index_]];
      if (!type.results.empty()) {
        FAASM_RETURN_IF_ERROR(PopExpect(type.results[0]));
      }
      Emit(static_cast<uint16_t>(Op::kReturn), 0, static_cast<uint32_t>(type.results.size()));
      SetUnreachable();
      return OkStatus();
    }

    case Op::kCall: {
      auto index = cursor_.ReadVarU32();
      if (!index.ok()) {
        return index.status();
      }
      if (index.value() >= module_.num_functions()) {
        return InvalidArgument("call to unknown function");
      }
      const FuncType& callee = module_.function_type(index.value());
      for (auto it = callee.params.rbegin(); it != callee.params.rend(); ++it) {
        FAASM_RETURN_IF_ERROR(PopExpect(*it));
      }
      for (ValType t : callee.results) {
        PushVal(t);
      }
      Emit(static_cast<uint16_t>(Op::kCall), index.value());
      return OkStatus();
    }
    case Op::kCallIndirect: {
      auto type_index = cursor_.ReadVarU32();
      if (!type_index.ok()) {
        return type_index.status();
      }
      auto reserved = cursor_.ReadByte();
      if (!reserved.ok()) {
        return reserved.status();
      }
      if (reserved.value() != 0) {
        return InvalidArgument("call_indirect reserved byte must be zero");
      }
      if (!module_.table.has_value()) {
        return InvalidArgument("call_indirect without table");
      }
      if (type_index.value() >= module_.types.size()) {
        return InvalidArgument("call_indirect unknown type");
      }
      const FuncType& callee = module_.types[type_index.value()];
      FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      for (auto it = callee.params.rbegin(); it != callee.params.rend(); ++it) {
        FAASM_RETURN_IF_ERROR(PopExpect(*it));
      }
      for (ValType t : callee.results) {
        PushVal(t);
      }
      Emit(static_cast<uint16_t>(Op::kCallIndirect), type_index.value());
      return OkStatus();
    }

    case Op::kDrop: {
      FAASM_ASSIGN_OR_RETURN(VType v, PopVal());
      (void)v;
      Emit(static_cast<uint16_t>(op));
      return OkStatus();
    }
    case Op::kSelect: {
      FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      FAASM_ASSIGN_OR_RETURN(VType v2, PopVal());
      FAASM_ASSIGN_OR_RETURN(VType v1, PopVal());
      if (v1.known && v2.known && v1.type != v2.type) {
        return InvalidArgument("select operands differ in type");
      }
      PushVal(v1.known ? v1 : v2);
      Emit(static_cast<uint16_t>(op));
      return OkStatus();
    }

    case Op::kLocalGet:
    case Op::kLocalSet:
    case Op::kLocalTee: {
      auto index = cursor_.ReadVarU32();
      if (!index.ok()) {
        return index.status();
      }
      if (index.value() >= locals_.size()) {
        return InvalidArgument("local index out of range");
      }
      const ValType t = locals_[index.value()];
      if (op == Op::kLocalGet) {
        PushVal(t);
      } else if (op == Op::kLocalSet) {
        FAASM_RETURN_IF_ERROR(PopExpect(t));
      } else {
        FAASM_RETURN_IF_ERROR(PopExpect(t));
        PushVal(t);
      }
      Emit(static_cast<uint16_t>(op), index.value());
      return OkStatus();
    }

    case Op::kGlobalGet:
    case Op::kGlobalSet: {
      auto index = cursor_.ReadVarU32();
      if (!index.ok()) {
        return index.status();
      }
      if (index.value() >= module_.globals.size()) {
        return InvalidArgument("global index out of range");
      }
      const GlobalDef& global = module_.globals[index.value()];
      if (op == Op::kGlobalGet) {
        PushVal(global.type);
      } else {
        if (!global.mutable_) {
          return InvalidArgument("global.set of immutable global");
        }
        FAASM_RETURN_IF_ERROR(PopExpect(global.type));
      }
      Emit(static_cast<uint16_t>(op), index.value());
      return OkStatus();
    }

    case Op::kMemorySize:
    case Op::kMemoryGrow: {
      auto reserved = cursor_.ReadByte();
      if (!reserved.ok()) {
        return reserved.status();
      }
      if (reserved.value() != 0) {
        return InvalidArgument("memory reserved byte must be zero");
      }
      if (!module_.memory.has_value()) {
        return InvalidArgument("memory instruction without memory");
      }
      if (op == Op::kMemoryGrow) {
        FAASM_RETURN_IF_ERROR(PopExpect(ValType::kI32));
      }
      PushVal(ValType::kI32);
      Emit(static_cast<uint16_t>(op));
      return OkStatus();
    }

    case Op::kI32Const: {
      auto v = cursor_.ReadVarS32();
      if (!v.ok()) {
        return v.status();
      }
      PushVal(ValType::kI32);
      Emit(static_cast<uint16_t>(op), 0, 0, static_cast<uint32_t>(v.value()));
      return OkStatus();
    }
    case Op::kI64Const: {
      auto v = cursor_.ReadVarS64();
      if (!v.ok()) {
        return v.status();
      }
      PushVal(ValType::kI64);
      Emit(static_cast<uint16_t>(op), 0, 0, static_cast<uint64_t>(v.value()));
      return OkStatus();
    }
    case Op::kF32Const: {
      uint32_t bits;
      FAASM_RETURN_IF_ERROR(cursor_.ReadRaw(&bits, 4));
      PushVal(ValType::kF32);
      Emit(static_cast<uint16_t>(op), 0, 0, bits);
      return OkStatus();
    }
    case Op::kF64Const: {
      uint64_t bits;
      FAASM_RETURN_IF_ERROR(cursor_.ReadRaw(&bits, 8));
      PushVal(ValType::kF64);
      Emit(static_cast<uint16_t>(op), 0, 0, bits);
      return OkStatus();
    }

    default:
      if (op >= Op::kI32Load && op <= Op::kI64Store32) {
        return HandleLoadStore(op);
      }
      return StepNumeric(op);
  }
}

// --- Superinstruction fusion --------------------------------------------------
//
// A peephole over the preprocessed Instr stream. Runs after branch targets
// are resolved: it computes the set of branch-target ("leader") pcs, greedily
// replaces runs of 2-4 instructions that do not span a leader with one fused
// opcode (opcodes.h kFuse*), and then remaps every branch target through the
// old-pc -> new-pc map. Operand-stack heights are unchanged — a fused
// sequence pushes and pops exactly what the original run did — so the unwind
// info baked into branches stays valid.

constexpr uint16_t U16(Op op) { return static_cast<uint16_t>(op); }
constexpr uint16_t U16(IOp op) { return static_cast<uint16_t>(op); }

bool IsLocalGet(const Instr& i) { return i.op == U16(Op::kLocalGet); }
bool IsI32Const(const Instr& i) { return i.op == U16(Op::kI32Const); }
bool IsAnyConst(const Instr& i) {
  return i.op >= U16(Op::kI32Const) && i.op <= U16(Op::kF64Const);
}
bool IsLoadOp(uint16_t op) { return op >= U16(Op::kI32Load) && op <= U16(Op::kI64Load32U); }
bool IsStoreOp(uint16_t op) { return op >= U16(Op::kI32Store) && op <= U16(Op::kI64Store32); }

// Numeric operators that pop two values and push one — the only shapes the
// push-two-then-redispatch superinstructions may target.
bool IsBinaryNumeric(uint16_t op) {
  return (op >= U16(Op::kI32Eq) && op <= U16(Op::kF64Ge)) ||       // comparisons (not eqz)
         (op >= U16(Op::kI32Add) && op <= U16(Op::kI32Rotr)) ||    // i32 arith
         (op >= U16(Op::kI64Add) && op <= U16(Op::kI64Rotr)) ||    // i64 arith
         (op >= U16(Op::kF32Add) && op <= U16(Op::kF32Copysign)) ||
         (op >= U16(Op::kF64Add) && op <= U16(Op::kF64Copysign));
}

// Eqz ops sit inside the comparison ranges; exclude them explicitly.
bool IsBinary(uint16_t op) {
  return IsBinaryNumeric(op) && op != U16(Op::kI64Eqz);
}

// Tries to fuse the run starting at `i`. Interior instructions must not be
// branch targets (is_target); the first instruction may be. On success,
// writes the fused instruction and returns the number of inputs consumed.
size_t TryFuse(const std::vector<Instr>& in, const std::vector<uint8_t>& is_target, size_t i,
               Instr* out) {
  const size_t n = in.size();
  const auto interior_clear = [&](size_t count) {
    for (size_t k = 1; k < count; ++k) {
      if (is_target[i + k] != 0) {
        return false;
      }
    }
    return true;
  };
  const Instr& a = in[i];
  const Instr* b = i + 1 < n ? &in[i + 1] : nullptr;
  const Instr* c = i + 2 < n ? &in[i + 2] : nullptr;
  const Instr* d = i + 3 < n ? &in[i + 3] : nullptr;
  const Instr* e = i + 4 < n ? &in[i + 4] : nullptr;
  const Instr* g = i + 5 < n ? &in[i + 5] : nullptr;

  // Row-major address idiom starting at `from`: get a; get n; mul; get b; add.
  const auto is_row_major = [&](size_t from) {
    return IsLocalGet(in[from]) && IsLocalGet(in[from + 1]) &&
           in[from + 2].op == U16(Op::kI32Mul) && IsLocalGet(in[from + 3]) &&
           in[from + 4].op == U16(Op::kI32Add);
  };

  if (g != nullptr && IsLocalGet(a) && interior_clear(6) && is_row_major(i + 1) &&
      a.a < 0x10000 && b->a < 0x10000 && c->a < 0x10000 && e->a < 0x10000) {
    // get x; get a; get n; mul; get b; add — operand push + row-major index.
    *out = Instr{U16(IOp::kFuseGetRowMajor), (a.a << 16) | b->a, (c->a << 16) | e->a, 0};
    return 6;
  }
  if (e != nullptr && interior_clear(5) && is_row_major(i)) {
    *out = Instr{U16(IOp::kFuseRowMajor), a.a, b->a, d->a};
    return 5;
  }
  if (d != nullptr && IsLocalGet(a) && interior_clear(4)) {
    // Counted-loop exit test: get i; (get lim | const lim); ge_s; br_if(0).
    const bool ges_brif =
        c->op == U16(Op::kI32GeS) && d->op == U16(Op::kBrIf) && d->b == 0;
    if (ges_brif && IsLocalGet(*b) && a.a < 0x10000 && b->a < 0x10000) {
      *out = Instr{U16(IOp::kFuseLoopGeSLL), d->a, (a.a << 16) | b->a, d->imm};
      return 4;
    }
    if (ges_brif && IsI32Const(*b)) {
      *out = Instr{U16(IOp::kFuseLoopGeSLC), d->a, a.a,
                   (d->imm << 32) | (b->imm & 0xFFFFFFFFu)};
      return 4;
    }
    // Loop increment: get src; const step; add; set dst.
    if (IsI32Const(*b) && c->op == U16(Op::kI32Add) && d->op == U16(Op::kLocalSet)) {
      *out = Instr{U16(IOp::kFuseIncLocal), a.a, d->a, b->imm & 0xFFFFFFFFu};
      return 4;
    }
  }
  if (c != nullptr && IsLocalGet(a) && interior_clear(3)) {
    if (IsLocalGet(*b) && IsBinary(c->op)) {
      *out = Instr{U16(IOp::kFuseGetGetOp), a.a, b->a, c->op};
      return 3;
    }
    if (IsAnyConst(*b) && IsBinary(c->op)) {
      *out = Instr{U16(IOp::kFuseGetConstOp), a.a, c->op, b->imm};
      return 3;
    }
  }
  if (c != nullptr && interior_clear(3)) {
    // Index scaling feeding a load: const c; i32.mul; <load>. The handler
    // reproduces the multiply's 32-bit wrap, then redispatches to the load.
    if (IsI32Const(a) && b->op == U16(Op::kI32Mul) && IsLoadOp(c->op)) {
      *out = Instr{U16(IOp::kFuseScaleLoad), static_cast<uint32_t>(a.imm), c->op, c->imm};
      return 3;
    }
    // Dot-product accumulation tail: f64.mul; f64.add; local.set.
    if (a.op == U16(Op::kF64Mul) && b->op == U16(Op::kF64Add) &&
        c->op == U16(Op::kLocalSet)) {
      *out = Instr{U16(IOp::kFuseF64MulAddSet), c->a, 0, 0};
      return 3;
    }
  }
  if (b != nullptr && interior_clear(2)) {
    if (b->op == U16(Op::kBrIf)) {
      uint16_t fused = 0;
      switch (a.op) {
        case U16(Op::kI32GeS): fused = U16(IOp::kFuseGeSBrIf); break;
        case U16(Op::kI32LtS): fused = U16(IOp::kFuseLtSBrIf); break;
        case U16(Op::kI32Eqz): fused = U16(IOp::kFuseEqzBrIf); break;
        case U16(Op::kI32Eq): fused = U16(IOp::kFuseEqBrIf); break;
        case U16(Op::kI32Ne): fused = U16(IOp::kFuseNeBrIf); break;
        default: break;
      }
      if (fused != 0) {
        *out = Instr{fused, b->a, b->b, b->imm};
        return 2;
      }
    }
    if (IsLocalGet(a) && (IsLoadOp(b->op) || IsStoreOp(b->op))) {
      *out = Instr{U16(IOp::kFuseGetMem), a.a, b->op, b->imm};
      return 2;
    }
    if (IsI32Const(a) && IsLoadOp(b->op)) {
      // Fold the constant address into the offset; the handler pushes a zero
      // address operand. u64 arithmetic, so the checked tier still sees the
      // exact (possibly >2^32) effective address.
      *out = Instr{U16(IOp::kFuseConstLoad), 0, b->op, (a.imm & 0xFFFFFFFFu) + b->imm};
      return 2;
    }
    if (IsLocalGet(a) && IsLocalGet(*b)) {
      *out = Instr{U16(IOp::kFuseGetGet), a.a, b->a, 0};
      return 2;
    }
    // Generic operand-push prefixes: get/const feeding any binop. These are
    // the fallback when no longer pattern matched; together they cover most
    // address arithmetic (get n; mul / const 8; mul / const base; add).
    if (IsLocalGet(a) && IsBinary(b->op)) {
      *out = Instr{U16(IOp::kFuseGetOp), a.a, b->op, 0};
      return 2;
    }
    if (IsAnyConst(a) && IsBinary(b->op)) {
      *out = Instr{U16(IOp::kFuseConstOp), 0, b->op, a.imm};
      return 2;
    }
  }
  return 0;
}

void FuseFunction(CompiledFunction* fn) {
  const std::vector<Instr>& in = fn->code;
  if (in.empty()) {
    return;
  }

  // Leaders: every pc some branch can land on. Fusing across one would leave
  // a branch pointing into the middle of a superinstruction.
  std::vector<uint8_t> is_target(in.size() + 1, 0);
  for (const Instr& ins : in) {
    switch (ins.op) {
      case U16(IOp::kJump):
      case U16(IOp::kJumpIfZero):
      case U16(Op::kBr):
      case U16(Op::kBrIf):
        is_target[ins.a] = 1;
        break;
      default:
        break;
    }
  }
  for (const BrTableData& table : fn->br_tables) {
    for (const BrTableTarget& target : table.targets) {
      is_target[target.pc] = 1;
    }
  }

  std::vector<Instr> out;
  out.reserve(in.size());
  // pc_map[old_pc] -> new pc. Interior pcs of a fused run map to the fused
  // instruction (no branch targets them — leaders are never interior).
  std::vector<uint32_t> pc_map(in.size() + 1, 0);
  size_t i = 0;
  while (i < in.size()) {
    Instr fused;
    const size_t consumed = TryFuse(in, is_target, i, &fused);
    const auto new_pc = static_cast<uint32_t>(out.size());
    if (consumed > 0) {
      for (size_t k = 0; k < consumed; ++k) {
        pc_map[i + k] = new_pc;
      }
      out.push_back(fused);
      i += consumed;
    } else {
      pc_map[i] = new_pc;
      out.push_back(in[i]);
      ++i;
    }
  }
  pc_map[in.size()] = static_cast<uint32_t>(out.size());

  for (Instr& ins : out) {
    switch (ins.op) {
      case U16(IOp::kJump):
      case U16(IOp::kJumpIfZero):
      case U16(Op::kBr):
      case U16(Op::kBrIf):
      case U16(IOp::kFuseGeSBrIf):
      case U16(IOp::kFuseLtSBrIf):
      case U16(IOp::kFuseEqzBrIf):
      case U16(IOp::kFuseEqBrIf):
      case U16(IOp::kFuseNeBrIf):
      case U16(IOp::kFuseLoopGeSLL):
      case U16(IOp::kFuseLoopGeSLC):
        ins.a = pc_map[ins.a];
        break;
      default:
        break;
    }
  }
  for (BrTableData& table : fn->br_tables) {
    for (BrTableTarget& target : table.targets) {
      target.pc = pc_map[target.pc];
    }
  }
  fn->code = std::move(out);
}

void BuildRetiredPrefix(CompiledFunction* fn) {
  fn->retired_prefix.resize(fn->code.size() + 1);
  uint32_t sum = 0;
  for (size_t k = 0; k < fn->code.size(); ++k) {
    fn->retired_prefix[k] = sum;
    sum += InstrRetireWeight(fn->code[k].op);
  }
  fn->retired_prefix[fn->code.size()] = sum;
}

}  // namespace

uint32_t InstrRetireWeight(uint16_t op) {
  switch (static_cast<IOp>(op)) {
    case IOp::kFuseGetGet:
    case IOp::kFuseGetMem:
    case IOp::kFuseConstLoad:
    case IOp::kFuseGeSBrIf:
    case IOp::kFuseLtSBrIf:
    case IOp::kFuseEqzBrIf:
    case IOp::kFuseEqBrIf:
    case IOp::kFuseNeBrIf:
    case IOp::kFuseGetOp:
    case IOp::kFuseConstOp:
      return 2;
    case IOp::kFuseGetGetOp:
    case IOp::kFuseGetConstOp:
    case IOp::kFuseF64MulAddSet:
    case IOp::kFuseScaleLoad:
      return 3;
    case IOp::kFuseIncLocal:
    case IOp::kFuseLoopGeSLL:
    case IOp::kFuseLoopGeSLC:
      return 4;
    case IOp::kFuseRowMajor:
      return 5;
    case IOp::kFuseGetRowMajor:
      return 6;
    default:
      return 1;
  }
}

Result<std::shared_ptr<const CompiledModule>> CompileModule(Module module,
                                                            const CompileOptions& options) {
  auto compiled = std::make_shared<CompiledModule>();
  compiled->functions.reserve(module.bodies.size());
  for (uint32_t i = 0; i < module.bodies.size(); ++i) {
    FunctionCompiler compiler(module, i);
    auto fn = compiler.Compile();
    if (!fn.ok()) {
      return Status(fn.status().code(), "function #" + std::to_string(i) + ": " +
                                            fn.status().message());
    }
    CompiledFunction compiled_fn = std::move(fn).value();
    if (options.fuse_superinstructions) {
      FuseFunction(&compiled_fn);
    }
    BuildRetiredPrefix(&compiled_fn);
    compiled->functions.push_back(std::move(compiled_fn));
  }
  compiled->module = std::move(module);
  return std::shared_ptr<const CompiledModule>(std::move(compiled));
}

}  // namespace faasm::wasm
